file(REMOVE_RECURSE
  "CMakeFiles/acoustic_test.dir/acoustic_test.cpp.o"
  "CMakeFiles/acoustic_test.dir/acoustic_test.cpp.o.d"
  "acoustic_test"
  "acoustic_test.pdb"
  "acoustic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acoustic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
