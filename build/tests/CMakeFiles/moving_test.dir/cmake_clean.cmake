file(REMOVE_RECURSE
  "CMakeFiles/moving_test.dir/moving_test.cpp.o"
  "CMakeFiles/moving_test.dir/moving_test.cpp.o.d"
  "moving_test"
  "moving_test.pdb"
  "moving_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
