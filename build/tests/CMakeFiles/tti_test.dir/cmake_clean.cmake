file(REMOVE_RECURSE
  "CMakeFiles/tti_test.dir/tti_test.cpp.o"
  "CMakeFiles/tti_test.dir/tti_test.cpp.o.d"
  "tti_test"
  "tti_test.pdb"
  "tti_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
