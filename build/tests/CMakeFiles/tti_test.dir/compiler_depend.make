# Empty compiler generated dependencies file for tti_test.
# This may be replaced when dependencies are built.
