# Empty compiler generated dependencies file for vti_test.
# This may be replaced when dependencies are built.
