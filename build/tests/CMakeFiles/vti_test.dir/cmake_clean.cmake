file(REMOVE_RECURSE
  "CMakeFiles/vti_test.dir/vti_test.cpp.o"
  "CMakeFiles/vti_test.dir/vti_test.cpp.o.d"
  "vti_test"
  "vti_test.pdb"
  "vti_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
