# Empty compiler generated dependencies file for diamond_test.
# This may be replaced when dependencies are built.
