file(REMOVE_RECURSE
  "CMakeFiles/diamond_test.dir/diamond_test.cpp.o"
  "CMakeFiles/diamond_test.dir/diamond_test.cpp.o.d"
  "diamond_test"
  "diamond_test.pdb"
  "diamond_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diamond_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
