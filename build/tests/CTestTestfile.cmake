# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/stencil_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/precompute_test[1]_include.cmake")
include("/root/repo/build/tests/wavefront_test[1]_include.cmake")
include("/root/repo/build/tests/acoustic_test[1]_include.cmake")
include("/root/repo/build/tests/tti_test[1]_include.cmake")
include("/root/repo/build/tests/vti_test[1]_include.cmake")
include("/root/repo/build/tests/elastic_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_test[1]_include.cmake")
include("/root/repo/build/tests/cachesim_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/autotune_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/moving_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/diamond_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
