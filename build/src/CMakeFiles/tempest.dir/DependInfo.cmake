
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tempest/autotune/autotune.cpp" "src/CMakeFiles/tempest.dir/tempest/autotune/autotune.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/autotune/autotune.cpp.o.d"
  "/root/repo/src/tempest/cachesim/cache.cpp" "src/CMakeFiles/tempest.dir/tempest/cachesim/cache.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/cachesim/cache.cpp.o.d"
  "/root/repo/src/tempest/cachesim/instrumented_acoustic.cpp" "src/CMakeFiles/tempest.dir/tempest/cachesim/instrumented_acoustic.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/cachesim/instrumented_acoustic.cpp.o.d"
  "/root/repo/src/tempest/codegen/emit.cpp" "src/CMakeFiles/tempest.dir/tempest/codegen/emit.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/codegen/emit.cpp.o.d"
  "/root/repo/src/tempest/codegen/jit.cpp" "src/CMakeFiles/tempest.dir/tempest/codegen/jit.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/codegen/jit.cpp.o.d"
  "/root/repo/src/tempest/core/compress.cpp" "src/CMakeFiles/tempest.dir/tempest/core/compress.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/core/compress.cpp.o.d"
  "/root/repo/src/tempest/core/diamond.cpp" "src/CMakeFiles/tempest.dir/tempest/core/diamond.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/core/diamond.cpp.o.d"
  "/root/repo/src/tempest/core/moving.cpp" "src/CMakeFiles/tempest.dir/tempest/core/moving.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/core/moving.cpp.o.d"
  "/root/repo/src/tempest/core/precompute.cpp" "src/CMakeFiles/tempest.dir/tempest/core/precompute.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/core/precompute.cpp.o.d"
  "/root/repo/src/tempest/core/wavefront.cpp" "src/CMakeFiles/tempest.dir/tempest/core/wavefront.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/core/wavefront.cpp.o.d"
  "/root/repo/src/tempest/dsl/expr.cpp" "src/CMakeFiles/tempest.dir/tempest/dsl/expr.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/dsl/expr.cpp.o.d"
  "/root/repo/src/tempest/dsl/interpreter.cpp" "src/CMakeFiles/tempest.dir/tempest/dsl/interpreter.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/dsl/interpreter.cpp.o.d"
  "/root/repo/src/tempest/dsl/ir.cpp" "src/CMakeFiles/tempest.dir/tempest/dsl/ir.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/dsl/ir.cpp.o.d"
  "/root/repo/src/tempest/dsl/operator.cpp" "src/CMakeFiles/tempest.dir/tempest/dsl/operator.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/dsl/operator.cpp.o.d"
  "/root/repo/src/tempest/dsl/passes.cpp" "src/CMakeFiles/tempest.dir/tempest/dsl/passes.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/dsl/passes.cpp.o.d"
  "/root/repo/src/tempest/grid/grid3.cpp" "src/CMakeFiles/tempest.dir/tempest/grid/grid3.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/grid/grid3.cpp.o.d"
  "/root/repo/src/tempest/io/io.cpp" "src/CMakeFiles/tempest.dir/tempest/io/io.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/io/io.cpp.o.d"
  "/root/repo/src/tempest/perf/calibrate.cpp" "src/CMakeFiles/tempest.dir/tempest/perf/calibrate.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/perf/calibrate.cpp.o.d"
  "/root/repo/src/tempest/perf/roofline.cpp" "src/CMakeFiles/tempest.dir/tempest/perf/roofline.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/perf/roofline.cpp.o.d"
  "/root/repo/src/tempest/physics/acoustic.cpp" "src/CMakeFiles/tempest.dir/tempest/physics/acoustic.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/physics/acoustic.cpp.o.d"
  "/root/repo/src/tempest/physics/damping.cpp" "src/CMakeFiles/tempest.dir/tempest/physics/damping.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/physics/damping.cpp.o.d"
  "/root/repo/src/tempest/physics/elastic.cpp" "src/CMakeFiles/tempest.dir/tempest/physics/elastic.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/physics/elastic.cpp.o.d"
  "/root/repo/src/tempest/physics/model.cpp" "src/CMakeFiles/tempest.dir/tempest/physics/model.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/physics/model.cpp.o.d"
  "/root/repo/src/tempest/physics/tti.cpp" "src/CMakeFiles/tempest.dir/tempest/physics/tti.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/physics/tti.cpp.o.d"
  "/root/repo/src/tempest/physics/vti.cpp" "src/CMakeFiles/tempest.dir/tempest/physics/vti.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/physics/vti.cpp.o.d"
  "/root/repo/src/tempest/sparse/interp.cpp" "src/CMakeFiles/tempest.dir/tempest/sparse/interp.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/sparse/interp.cpp.o.d"
  "/root/repo/src/tempest/sparse/operators.cpp" "src/CMakeFiles/tempest.dir/tempest/sparse/operators.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/sparse/operators.cpp.o.d"
  "/root/repo/src/tempest/sparse/survey.cpp" "src/CMakeFiles/tempest.dir/tempest/sparse/survey.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/sparse/survey.cpp.o.d"
  "/root/repo/src/tempest/sparse/wavelet.cpp" "src/CMakeFiles/tempest.dir/tempest/sparse/wavelet.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/sparse/wavelet.cpp.o.d"
  "/root/repo/src/tempest/stencil/cfl.cpp" "src/CMakeFiles/tempest.dir/tempest/stencil/cfl.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/stencil/cfl.cpp.o.d"
  "/root/repo/src/tempest/stencil/coefficients.cpp" "src/CMakeFiles/tempest.dir/tempest/stencil/coefficients.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/stencil/coefficients.cpp.o.d"
  "/root/repo/src/tempest/util/cli.cpp" "src/CMakeFiles/tempest.dir/tempest/util/cli.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/util/cli.cpp.o.d"
  "/root/repo/src/tempest/util/stats.cpp" "src/CMakeFiles/tempest.dir/tempest/util/stats.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/util/stats.cpp.o.d"
  "/root/repo/src/tempest/util/table.cpp" "src/CMakeFiles/tempest.dir/tempest/util/table.cpp.o" "gcc" "src/CMakeFiles/tempest.dir/tempest/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
