file(REMOVE_RECURSE
  "libtempest.a"
)
