# Empty compiler generated dependencies file for tempest.
# This may be replaced when dependencies are built.
