file(REMOVE_RECURSE
  "CMakeFiles/elastic_demo.dir/elastic_demo.cpp.o"
  "CMakeFiles/elastic_demo.dir/elastic_demo.cpp.o.d"
  "elastic_demo"
  "elastic_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
