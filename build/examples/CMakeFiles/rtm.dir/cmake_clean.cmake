file(REMOVE_RECURSE
  "CMakeFiles/rtm.dir/rtm.cpp.o"
  "CMakeFiles/rtm.dir/rtm.cpp.o.d"
  "rtm"
  "rtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
