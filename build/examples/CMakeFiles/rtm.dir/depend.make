# Empty dependencies file for rtm.
# This may be replaced when dependencies are built.
