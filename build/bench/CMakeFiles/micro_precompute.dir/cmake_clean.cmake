file(REMOVE_RECURSE
  "CMakeFiles/micro_precompute.dir/micro_precompute.cpp.o"
  "CMakeFiles/micro_precompute.dir/micro_precompute.cpp.o.d"
  "micro_precompute"
  "micro_precompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_precompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
