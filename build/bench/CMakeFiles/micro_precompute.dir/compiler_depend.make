# Empty compiler generated dependencies file for micro_precompute.
# This may be replaced when dependencies are built.
