file(REMOVE_RECURSE
  "CMakeFiles/micro_wavefront.dir/micro_wavefront.cpp.o"
  "CMakeFiles/micro_wavefront.dir/micro_wavefront.cpp.o.d"
  "micro_wavefront"
  "micro_wavefront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_wavefront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
