# Empty compiler generated dependencies file for micro_wavefront.
# This may be replaced when dependencies are built.
