# Empty dependencies file for micro_injection.
# This may be replaced when dependencies are built.
