file(REMOVE_RECURSE
  "CMakeFiles/micro_injection.dir/micro_injection.cpp.o"
  "CMakeFiles/micro_injection.dir/micro_injection.cpp.o.d"
  "micro_injection"
  "micro_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
