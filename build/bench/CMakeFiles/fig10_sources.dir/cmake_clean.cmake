file(REMOVE_RECURSE
  "CMakeFiles/fig10_sources.dir/fig10_sources.cpp.o"
  "CMakeFiles/fig10_sources.dir/fig10_sources.cpp.o.d"
  "fig10_sources"
  "fig10_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
