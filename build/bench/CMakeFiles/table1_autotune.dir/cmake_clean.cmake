file(REMOVE_RECURSE
  "CMakeFiles/table1_autotune.dir/table1_autotune.cpp.o"
  "CMakeFiles/table1_autotune.dir/table1_autotune.cpp.o.d"
  "table1_autotune"
  "table1_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
