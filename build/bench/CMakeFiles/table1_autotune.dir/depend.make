# Empty dependencies file for table1_autotune.
# This may be replaced when dependencies are built.
