// Reverse-time migration (RTM): the application the paper is motivated by
// (Section I: "full-waveform inversion (FWI) and reverse time migration
// (RTM)"). A complete single-shot RTM:
//
//   1. model "observed" data through the *true* model (with a sharp, fast
//      reflector) — this modelling pass uses the paper's wave-front
//      temporally blocked schedule, RTM's hot loop;
//   2. forward-propagate the source through the *smooth* background model,
//      snapshotting the wavefield every few steps;
//   3. back-propagate the time-reversed residual data from the receivers
//      (the adjoint wavefield) and apply the zero-lag cross-correlation
//      imaging condition  I(x) = sum_t u_src(x,t) * u_rec(x,t).
//
// The image's strongest response should localise the reflector depth; the
// example prints the picked depth vs the true one and writes an (x,z) image
// slice as CSV.
//
// Build & run:  ./build/examples/rtm [--size=112] [--steps=220]
//               [--schedule=wavefront|diamond|space-blocked|reference]
//               [--stride=4] [--out=rtm_image.csv]
//               [--checkpoint=rtm.tpck] [--ckpt-every=50]
//               [--trace=rtm_trace.json] [--metrics=rtm_metrics.csv]
//               [--pmu] [--openmetrics=rtm.om]
//
// --trace writes a Chrome trace_event JSON (load in Perfetto or
// chrome://tracing) with per-timestep injection/stencil/interpolation
// spans; --metrics dumps the tempest::trace counters (CSV or JSON by
// extension). --pmu enriches every traced span with hardware-counter
// deltas (cycles, cache misses, ...) where the kernel allows
// perf_event_open, and prints a whole-run counter summary; on machines
// without a PMU it degrades to a one-line notice.
//
// --openmetrics writes the run's trace counters and obs latency histograms
// (tile/band/substep timings, JIT compile latency) — plus the whole-run PMU
// deltas under --pmu — as an OpenMetrics textfile for node-exporter-style
// scraping.
//
// --schedule selects the execution schedule of the two modelling passes
// (any schedule is legal for any physics; wavefront is the default, diamond
// the alternative temporal-blocking family). The snapshotting forward pass
// and the imaging adjoint pass need a per-step callback and therefore stay
// on the space-blocked barrier schedule.
//
// With --checkpoint the adjoint/imaging pass — the long tail of the run —
// checkpoints its wavefield state and the partial image every --ckpt-every
// steps. A restarted run recomputes the deterministic modelling and forward
// passes, then resumes the adjoint pass where it died.

#include <cmath>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <optional>
#include <vector>

#include "tempest/io/io.hpp"
#include "tempest/obs/metrics.hpp"
#include "tempest/obs/openmetrics.hpp"
#include "tempest/perf/pmu.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tempest;
  const util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("size", 96));
  // The record must cover the two-way travel time to the reflector
  // (~0.35*n cells deep): with dt ~1.4 ms the default 420 steps ≈ 590 ms.
  const int nt = static_cast<int>(cli.get_int("steps", 420));
  const int stride = static_cast<int>(cli.get_int("stride", 8));
  const physics::Schedule modelling_sched =
      physics::schedule_from_string(cli.get("schedule", "wavefront"));
  const std::string out = cli.get("out", "rtm_image.csv");
  const std::string ckpt_path = cli.get("checkpoint", "");
  const int ckpt_every = static_cast<int>(cli.get_int("ckpt-every", 50));
  const trace::Session trace_session(cli.get("trace", ""),
                                     cli.get("metrics", ""));
  const std::string openmetrics = cli.get("openmetrics", "");
  if (!openmetrics.empty()) {
    obs::reset_metrics();
    obs::set_enabled(true);
  }
  const bool use_pmu = cli.get_flag("pmu");
  std::optional<perf::pmu::PmuRegion> pmu_run;
  if (use_pmu) {
    const perf::pmu::Availability& avail = perf::pmu::availability();
    if (!avail.any) {
      std::cout << "PMU unavailable (" << avail.reason
                << "); continuing without hardware counters\n";
    } else {
      perf::pmu::enable_span_enrichment();
      pmu_run.emplace();  // whole-run window over this thread's counters
    }
  }

  const grid::Extents3 e{n, n, n};
  physics::Geometry geom{e, 10.0, 4, 10};
  const int reflector_z = static_cast<int>(0.45 * n);

  // Smooth background: gentle velocity gradient. True model: background
  // plus a sharp fast slab below reflector_z (the target to image).
  physics::AcousticModel smooth =
      physics::make_acoustic_layered(geom, 1.5, 2.0, 64);
  physics::AcousticModel truth =
      physics::make_acoustic_layered(geom, 1.5, 2.0, 64);
  truth.vp.for_each_interior([&](int x, int y, int z) {
    if (z >= reflector_z) {
      const real_t v = truth.vp(x, y, z) + 1.2f;
      truth.vp(x, y, z) = v;
      truth.m(x, y, z) = 1.0f / (v * v);
    }
  });

  // One shared dt keeps forward and adjoint time axes aligned.
  physics::PropagatorOptions opts;
  opts.dt = truth.critical_dt();
  opts.tiles = core::TileSpec{8, 32, 32, 8, 8};
  const double dt = opts.dt;

  sparse::SparseTimeSeries src(sparse::single_center_source(e, 0.08), nt);
  src.broadcast_signature(sparse::ricker(nt, dt, 0.012));
  const sparse::CoordList rec_coords = sparse::receiver_carpet(e, 12, 12);
  std::cout << "RTM: " << n << "^3 grid, " << nt << " steps, "
            << rec_coords.size() << " receivers, reflector at z="
            << reflector_z << "\n";

  // --- (1) observed data through the true model (temporally blocked by
  // default: the paper's win) ---
  sparse::SparseTimeSeries d_obs(rec_coords, nt);
  {
    physics::AcousticPropagator prop(truth, opts);
    const physics::RunStats s = prop.run(modelling_sched, src, &d_obs);
    std::cout << "observed-data modelling ("
              << physics::to_string(modelling_sched) << "): " << s.seconds
              << " s\n";
  }
  // Direct arrival removal: subtract data modelled in the smooth model so
  // only the reflection remains (standard practice).
  {
    sparse::SparseTimeSeries d_smooth(rec_coords, nt);
    physics::AcousticPropagator prop(smooth, opts);
    prop.run(modelling_sched, src, &d_smooth);
    for (int t = 0; t < nt; ++t)
      for (int r = 0; r < d_obs.npoints(); ++r)
        d_obs.at(t, r) -= d_smooth.at(t, r);
  }

  // --- (2) forward source wavefield in the smooth model, snapshotted ---
  std::vector<grid::Grid3<real_t>> snaps;
  snaps.reserve(static_cast<std::size_t>(nt / stride) + 1);
  {
    physics::AcousticPropagator prop(smooth, opts);
    const physics::RunStats s = prop.run(
        physics::Schedule::SpaceBlocked, src, nullptr, [&](int t_done) {
          if (t_done % stride == 0) snaps.push_back(prop.wavefield(t_done));
        });
    std::cout << "forward pass (snapshot every " << stride
              << " steps):        " << s.seconds << " s, " << snaps.size()
              << " snapshots\n";
  }

  // --- (3) adjoint wavefield + imaging condition ---
  // Back-propagation == forward propagation of the time-reversed residual
  // injected at the receiver positions.
  sparse::SparseTimeSeries adj_src(rec_coords, nt);
  for (int t = 0; t < nt; ++t)
    for (int r = 0; r < adj_src.npoints(); ++r)
      adj_src.at(t, r) = d_obs.at(nt - 1 - t, r);

  grid::Grid3<double> image(e, 0, 0.0);
  {
    // Passes 1–2 are deterministic and were just recomputed; only the
    // adjoint pass state (wavefield buffer + partial image) needs to
    // persist. The partial image rides in the checkpoint as an aux blob.
    resilience::Fingerprint fpb;
    fpb.add(n).add(nt).add(stride).add(geom.space_order).add(dt);
    const std::uint64_t fp = fpb.value();
    std::optional<resilience::Checkpointer> ckpt;
    if (!ckpt_path.empty()) ckpt.emplace(ckpt_path);

    // Versioned framing for the image aux blob: a stale layout (or a
    // truncated blob) is rejected as a typed CorruptFileError instead of
    // being memcpy'd into the accumulator.
    constexpr std::uint32_t kImageMagic = 0x54504D47u;  // "TPMG"
    constexpr std::uint32_t kImageVersion = 1;

    physics::AcousticPropagator prop(smooth, opts);
    int t_start = 1;
    if (ckpt) {
      if (auto resume = ckpt->try_load(fp)) {
        const auto* blob = resume->find_aux("image");
        const std::size_t want = image.padded_size() * sizeof(double);
        if (blob != nullptr) {
          try {
            const resilience::AuxView view = resilience::aux_unwrap_bytes(
                ckpt->path(), *blob, kImageMagic, kImageVersion);
            if (view.size == want) {
              std::memcpy(image.raw(), view.data, want);
              prop.restore(*resume);
              t_start = resume->step;
              std::cout << "resuming adjoint pass from step " << t_start
                        << "\n";
            }
          } catch (const io::CorruptFileError& err) {
            std::cerr << "ignoring checkpointed image: " << err.what()
                      << "\n";
          }
        }
      }
    }

    const auto imaging = [&](int tau) {
      const int t_fwd = nt - 1 - tau;  // forward time of this adjoint step
      if (t_fwd >= stride && t_fwd % stride == 0) {
        const auto& snap =
            snaps[static_cast<std::size_t>(t_fwd / stride) - 1];
        const auto& adj = prop.wavefield(tau);
        image.for_each_interior([&](int x, int y, int z) {
          image(x, y, z) += static_cast<double>(snap(x, y, z)) *
                            static_cast<double>(adj(x, y, z));
        });
      }
      if (ckpt && ckpt_every > 0 && tau % ckpt_every == 0 && tau < nt) {
        resilience::Checkpoint ck = prop.capture(tau, fp);
        ck.aux.emplace_back(
            "image",
            resilience::aux_wrap_bytes(kImageMagic, kImageVersion,
                                       image.raw(),
                                       image.padded_size() * sizeof(double)));
        ckpt->save(ck);
      }
    };
    const physics::RunStats s =
        t_start > 1 ? prop.run_from(t_start, physics::Schedule::SpaceBlocked,
                                    adj_src, nullptr, imaging)
                    : prop.run(physics::Schedule::SpaceBlocked, adj_src,
                               nullptr, imaging);
    std::cout << "adjoint pass + imaging condition:   " << s.seconds
              << " s\n";
    // Done: a stale checkpoint (any generation) must not shadow the next
    // run.
    if (ckpt) ckpt->remove_all();
  }

  // Depth profile of |image| away from the source cone; pick the peak.
  std::vector<double> profile(static_cast<std::size_t>(e.nz), 0.0);
  image.for_each_interior([&](int x, int y, int z) {
    if (x > geom.nbl && x < e.nx - geom.nbl && y > geom.nbl &&
        y < e.ny - geom.nbl && z > n / 4) {
      profile[static_cast<std::size_t>(z)] += std::fabs(image(x, y, z));
    }
  });
  int z_peak = 0;
  for (int z = 0; z < e.nz; ++z)
    if (profile[static_cast<std::size_t>(z)] >
        profile[static_cast<std::size_t>(z_peak)])
      z_peak = z;
  std::cout << "\nimaged reflector depth: z = " << z_peak << " (true: z = "
            << reflector_z << ", error " << std::abs(z_peak - reflector_z)
            << " cells)\n";

  // (x,z) slice through the source y for plotting.
  grid::Grid3<real_t> image_f(e, 0, 0.0f);
  image.for_each_interior([&](int x, int y, int z) {
    image_f(x, y, z) = static_cast<real_t>(image(x, y, z));
  });
  io::save_slice_csv(out, image_f, e.ny / 2);
  std::cout << "image slice written to " << out << "\n";

  if (!openmetrics.empty()) {
    obs::OpenMetricsOptions om;
    perf::pmu::Sample pmu_sample;
    if (pmu_run) {
      pmu_sample = pmu_run->delta();
      om.pmu = &pmu_sample;
    }
    if (obs::write_openmetrics(openmetrics, om)) {
      std::cout << "OpenMetrics written to " << openmetrics << "\n";
    } else {
      std::cerr << "cannot write OpenMetrics to " << openmetrics << "\n";
    }
  }

  if (pmu_run) {
    const perf::pmu::Sample s = pmu_run->delta();
    std::cout << "\nwhole-run hardware counters:\n";
    for (int i = 0; i < perf::pmu::kNumEvents; ++i) {
      const auto ev = static_cast<perf::pmu::Event>(i);
      if (s.valid(ev)) {
        std::cout << "  " << perf::pmu::to_string(ev) << ": " << s[ev]
                  << "\n";
      }
    }
    if (s.valid(perf::pmu::Event::Cycles) &&
        s.valid(perf::pmu::Event::Instructions)) {
      std::cout << "  ipc: " << s.ipc() << "\n";
    }
    perf::pmu::disable_span_enrichment();
  }
  return 0;
}
