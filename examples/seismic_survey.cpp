// Seismic survey: a multi-shot forward-modelling run, the workload that
// motivates the paper (the forward half of FWI/RTM). For each shot position
// the acoustic wavefield is propagated through a layered subsurface model
// and recorded on a receiver carpet; the example runs every shot twice —
// spatially-blocked baseline and wave-front temporal blocking — verifies the
// gathers agree, reports the speed-up, and writes the final shot gather as
// CSV for plotting.
//
// Build & run:  ./build/examples/seismic_survey [--size=160] [--steps=160]
//               [--shots=3] [--out=gather.csv]

#include <cmath>
#include <iostream>

#include "tempest/io/io.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tempest;
  const util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("size", 160));
  const int nt = static_cast<int>(cli.get_int("steps", 160));
  const int n_shots = static_cast<int>(cli.get_int("shots", 3));
  const std::string out = cli.get("out", "gather.csv");

  physics::Geometry geom{{n, n, n}, 10.0, 8, 10};
  const physics::AcousticModel model =
      physics::make_acoustic_layered(geom, 1.5, 4.0, 6);
  const double dt = model.critical_dt();
  const auto wavelet = sparse::ricker(nt, dt, 0.008);

  physics::PropagatorOptions opts;
  opts.tiles = core::TileSpec{8, 64, 64, 8, 8};
  physics::AcousticPropagator prop(model, opts);

  const sparse::CoordList rec_coords =
      sparse::receiver_carpet(geom.extents, 16, 8);
  std::cout << n_shots << " shots, " << rec_coords.size()
            << " receivers, grid " << n << "^3, " << nt << " steps of "
            << dt << " ms\n\n";

  double total_base = 0.0, total_wave = 0.0, worst_mismatch = 0.0;
  sparse::SparseTimeSeries last_gather(rec_coords, nt);

  for (int shot = 0; shot < n_shots; ++shot) {
    // Shots march along x at 1/4 .. 3/4 of the line, off-the-grid.
    const double fx = 0.25 + 0.5 * shot / std::max(1, n_shots - 1);
    sparse::SparseTimeSeries src(
        {{fx * (n - 1) + 0.37, 0.5 * (n - 1) + 0.61, 0.1 * (n - 1) + 0.43}},
        nt);
    src.broadcast_signature(wavelet);

    sparse::SparseTimeSeries gather_base(rec_coords, nt);
    const physics::RunStats base =
        prop.run(physics::Schedule::SpaceBlocked, src, &gather_base);

    sparse::SparseTimeSeries gather_wave(rec_coords, nt);
    const physics::RunStats wave =
        prop.run(physics::Schedule::Wavefront, src, &gather_wave);

    // The two schedules must record the same physics.
    double scale = 1e-20, diff = 0.0;
    for (int t = 0; t < nt; ++t) {
      for (int r = 0; r < gather_base.npoints(); ++r) {
        scale = std::max(scale,
                         std::fabs(static_cast<double>(gather_base.at(t, r))));
        diff = std::max(diff,
                        std::fabs(static_cast<double>(gather_base.at(t, r)) -
                                  static_cast<double>(gather_wave.at(t, r))));
      }
    }
    worst_mismatch = std::max(worst_mismatch, diff / scale);
    total_base += base.seconds;
    total_wave += wave.seconds;
    std::cout << "shot " << shot << " @ x=" << fx * (n - 1)
              << ": baseline " << base.seconds << " s, WTB " << wave.seconds
              << " s (speed-up " << base.seconds / wave.seconds
              << "x), gather rel-diff " << diff / scale << "\n";
    last_gather = gather_wave;
  }

  std::cout << "\nsurvey total: baseline " << total_base << " s, WTB "
            << total_wave << " s -> speed-up "
            << total_base / total_wave << "x; worst gather mismatch "
            << worst_mismatch << " (relative)\n";

  io::save_gather_csv(out, last_gather, dt);
  io::save_gather(out + ".tpg", last_gather);
  std::cout << "last shot gather written to " << out << " (+ binary .tpg)\n";
  return 0;
}
