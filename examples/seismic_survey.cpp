// Seismic survey: a multi-shot forward-modelling run, the workload that
// motivates the paper (the forward half of FWI/RTM) — now a thin CLI over
// the crash-tolerant tempest::jobs survey runtime.
//
// Every shot is a journaled job: its state transitions are appended to a
// CRC-framed write-ahead journal under --jobs-dir before they are acted
// on, barrier-schedule shots checkpoint their full propagation state every
// --ckpt-every steps (two rotated generations), and a killed run restarted
// with the same flags resumes exactly where it died — finished shots are
// skipped, the in-flight shot re-enters mid-run from its checkpoint, and
// the final gathers are bit-identical to an uninterrupted run.
//
// Failures are classified, not fatal: transient faults (JIT compile
// hiccups, checkpoint I/O errors) are retried with exponential backoff
// (--retries / --retry-base-ms, or $TEMPEST_JOB_RETRIES /
// $TEMPEST_JOB_RETRY_BASE_MS); slow or numerically diverging shots step
// down a degradation ladder (requested schedule -> space-blocked ->
// reference, JIT -> AOT) and are reported as degraded; deterministic
// rejections (illegal schedule, bad config) are quarantined with
// diagnostics and never retried.
//
// Build & run:  ./build/examples/seismic_survey [--size=160] [--steps=160]
//               [--shots=3] [--physics=acoustic|tti|vti|elastic]
//               [--schedule=reference|space-blocked|wavefront|diamond]
//               [--jobs-dir=survey_jobs] [--ckpt-every=40]
//               [--health-every=8] [--watchdog-ms=0] [--jit]
//               [--retries=3] [--retry-base-ms=50]
//               [--survey-json=BENCH_survey.json] [--out=gather.csv]
//               [--trace=survey_trace.json] [--metrics=survey_metrics.csv]
//               [--openmetrics=survey.om] [--no-obs]
//
// --survey-json writes the schema-versioned machine-readable report
// (shots/hour, p50/p99 shot latency, per-shot outcomes). --out exports the
// last shot's gather as CSV for plotting. Exit status is nonzero when any
// shot was quarantined.
//
// Observability is on by default: every attempt runs under a
// crash-persistent flight recorder (<jobs-dir>/blackbox/shot_<k>.tfbr,
// decode with tools/blackbox_dump), the report uses the v2 schema with
// latency histograms, and --openmetrics exports the survey-wide counters
// and histograms as an OpenMetrics textfile for Prometheus scraping.
// --no-obs restores the exact v1 behaviour and output.

#include <cstdio>
#include <iostream>
#include <string>

#include "tempest/io/io.hpp"
#include "tempest/jobs/survey.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tempest;
  const util::Cli cli(argc, argv);
  jobs::SurveySpec spec;
  spec.n = static_cast<int>(cli.get_int("size", 160));
  spec.nt = static_cast<int>(cli.get_int("steps", 160));
  spec.n_shots = static_cast<int>(cli.get_int("shots", 3));
  spec.space_order = static_cast<int>(cli.get_int("so", 8));
  spec.physics = cli.get("physics", "acoustic");
  spec.schedule = physics::schedule_from_string(cli.get("schedule", "wavefront"));
  spec.use_jit = cli.get_flag("jit");
  spec.jobs_dir = cli.get("jobs-dir", "survey_jobs");
  spec.ckpt_every = static_cast<int>(cli.get_int("ckpt-every", 40));
  spec.health_every = static_cast<int>(cli.get_int("health-every", 8));
  spec.watchdog_ms = cli.get_double("watchdog-ms", 0.0);
  spec.retry.max_attempts = static_cast<int>(cli.get_int("retries", 3));
  spec.retry.base_ms = cli.get_double("retry-base-ms", 50.0);
  spec.survey_json = cli.get("survey-json", "");
  spec.obs = !cli.get_flag("no-obs");
  spec.openmetrics = cli.get("openmetrics", "");
  const std::string out_csv = cli.get("out", "");
  const trace::Session trace_session(cli.get("trace", ""),
                                     cli.get("metrics", ""));

  std::cout << spec.n_shots << " shots, grid " << spec.n << "^3, "
            << spec.nt << " steps, physics " << spec.physics
            << ", schedule " << physics::to_string(spec.schedule)
            << ", jobs dir " << spec.jobs_dir << "\n";

  const jobs::SurveyReport report = jobs::run_survey(spec);

  for (const jobs::ShotReport& s : report.shots) {
    std::cout << "shot " << s.shot << ": " << s.state << " on '"
              << s.level_name << "' after " << s.attempts << " attempt(s), "
              << s.seconds << " s" << (s.degraded ? " [degraded]" : "");
    if (s.state != "done") std::cout << " — " << s.detail;
    std::cout << "\n";
  }
  std::cout << "\nsurvey: " << report.done << "/" << report.n_shots
            << " shots done (" << report.degraded << " degraded, "
            << report.quarantined << " quarantined) in "
            << report.total_seconds << " s — " << report.shots_per_hour
            << " shots/hour, shot latency p50 " << report.p50_shot_seconds
            << " s / p99 " << report.p99_shot_seconds << " s\n";

  if (!out_csv.empty() && report.done > 0) {
    // Export the last completed shot's gather for plotting.
    for (int i = report.n_shots - 1; i >= 0; --i) {
      if (report.shots[static_cast<std::size_t>(i)].state != "done") continue;
      const auto gather = io::load_gather(jobs::shot_gather_path(spec, i));
      // Time column in timesteps (dt is model-dependent).
      io::save_gather_csv(out_csv, gather, 1.0);
      std::cout << "shot " << i << " gather written to " << out_csv << "\n";
      break;
    }
  }
  return report.quarantined == 0 ? 0 : 2;
}
