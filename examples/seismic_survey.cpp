// Seismic survey: a multi-shot forward-modelling run, the workload that
// motivates the paper (the forward half of FWI/RTM). For each shot position
// the wavefield is propagated through a layered subsurface model and
// recorded on a receiver carpet; the example runs every shot twice —
// spatially-blocked baseline and a temporally blocked schedule — verifies
// the gathers agree, reports the speed-up, and writes the final shot gather
// as CSV for plotting.
//
// Build & run:  ./build/examples/seismic_survey [--size=160] [--steps=160]
//               [--shots=3] [--physics=acoustic|tti|vti|elastic]
//               [--schedule=wavefront|diamond] [--out=gather.csv]
//               [--checkpoint=survey.tpck] [--ckpt-every=40]
//               [--trace=survey_trace.json] [--metrics=survey_metrics.csv]
//
// --physics picks the propagator; the whole shot loop is generic over the
// uniform propagator surface (run/run_from/capture/restore), so every
// physics gets the same baseline-vs-temporal-blocking comparison and the
// same mid-shot resume. --schedule picks the temporally blocked schedule
// compared against the baseline (any schedule is legal for any physics).
//
// --trace writes a Chrome trace_event JSON (Perfetto / chrome://tracing);
// --metrics dumps the tempest::trace counters (CSV or JSON by extension).
//
// With --checkpoint the baseline pass of every shot checkpoints its full
// state every --ckpt-every steps; an interrupted run restarted with the
// same flags resumes mid-shot and produces the identical gathers.

#include <cmath>
#include <cstdio>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>

#include "tempest/io/io.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/cli.hpp"

namespace {

using namespace tempest;

/// Cross-shot progress carried in the checkpoint's auxiliary blob: which
/// shot the checkpointed propagator state belongs to, plus the totals
/// accumulated over the shots already finished.
struct SurveyState {
  std::int32_t shot = 0;
  double total_base = 0.0;
  double total_tb = 0.0;
  double worst_mismatch = 0.0;
};

struct SurveyConfig {
  int n = 0;
  int nt = 0;
  int n_shots = 0;
  int ckpt_every = 0;
  physics::Schedule tb_sched = physics::Schedule::Wavefront;
  std::string out;
  std::string ckpt_path;
  std::uint64_t fingerprint = 0;
};

/// The shot loop, generic over the uniform propagator surface: any physics
/// whose propagator provides run/run_from/capture/restore slots in here.
template <typename Propagator, typename Model>
int run_survey(const Model& model, const physics::Geometry& geom,
               const SurveyConfig& cfg) {
  const int n = cfg.n;
  const int nt = cfg.nt;
  const double dt = model.critical_dt();
  const auto wavelet = sparse::ricker(nt, dt, 0.008);

  physics::PropagatorOptions opts;
  opts.tiles = core::TileSpec{8, 64, 64, 8, 8};
  Propagator prop(model, opts);

  const sparse::CoordList rec_coords =
      sparse::receiver_carpet(geom.extents, 16, 8);
  std::cout << cfg.n_shots << " shots, " << rec_coords.size()
            << " receivers, grid " << n << "^3, " << nt << " steps of "
            << dt << " ms\n\n";

  const std::uint64_t fp = cfg.fingerprint;
  std::optional<resilience::Checkpointer> ckpt;
  if (!cfg.ckpt_path.empty()) ckpt.emplace(cfg.ckpt_path);

  SurveyState state;
  std::optional<resilience::Checkpoint> resume;
  if (ckpt) {
    resume = ckpt->try_load(fp);
    if (resume) {
      if (const auto* blob = resume->find_aux("survey-state")) {
        if (const auto s = resilience::aux_unpack<SurveyState>(*blob)) {
          state = *s;
          std::cout << "resuming from " << cfg.ckpt_path << ": shot "
                    << state.shot << ", step " << resume->step << "\n";
        } else {
          resume.reset();
        }
      } else {
        resume.reset();
      }
    }
  }

  sparse::SparseTimeSeries last_gather(rec_coords, nt);

  for (int shot = state.shot; shot < cfg.n_shots; ++shot) {
    // Shots march along x at 1/4 .. 3/4 of the line, off-the-grid.
    const double fx = 0.25 + 0.5 * shot / std::max(1, cfg.n_shots - 1);
    sparse::SparseTimeSeries src(
        {{fx * (n - 1) + 0.37, 0.5 * (n - 1) + 0.61, 0.1 * (n - 1) + 0.43}},
        nt);
    src.broadcast_signature(wavelet);

    sparse::SparseTimeSeries gather_base(rec_coords, nt);
    // Checkpoint during the baseline (barrier) pass: capture at a completed
    // timestep, with the shot/totals state riding along as an aux blob. The
    // temporally blocked pass is re-run from scratch on resume — it has no
    // global per-timestep barrier to checkpoint at (the point of the paper).
    const auto save_ckpt = [&](int t_done) {
      if (!ckpt || cfg.ckpt_every <= 0 || t_done % cfg.ckpt_every != 0 ||
          t_done >= nt) {
        return;
      }
      resilience::Checkpoint ck = prop.capture(t_done, fp, &gather_base);
      SurveyState at_save = state;
      at_save.shot = shot;
      ck.aux.emplace_back("survey-state", resilience::aux_pack(at_save));
      ckpt->save(ck);
    };

    physics::RunStats base;
    if (resume && shot == state.shot) {
      prop.restore(*resume);
      if (resume->has_rec) gather_base = resume->rec;
      const int t_start = resume->step;
      resume.reset();
      base = prop.run_from(t_start, physics::Schedule::SpaceBlocked, src,
                           &gather_base, save_ckpt);
    } else {
      base = prop.run(physics::Schedule::SpaceBlocked, src, &gather_base,
                      save_ckpt);
    }

    sparse::SparseTimeSeries gather_tb(rec_coords, nt);
    const physics::RunStats tb = prop.run(cfg.tb_sched, src, &gather_tb);

    // The two schedules must record the same physics.
    double scale = 1e-20, diff = 0.0;
    for (int t = 0; t < nt; ++t) {
      for (int r = 0; r < gather_base.npoints(); ++r) {
        scale = std::max(scale,
                         std::fabs(static_cast<double>(gather_base.at(t, r))));
        diff = std::max(diff,
                        std::fabs(static_cast<double>(gather_base.at(t, r)) -
                                  static_cast<double>(gather_tb.at(t, r))));
      }
    }
    state.worst_mismatch = std::max(state.worst_mismatch, diff / scale);
    state.total_base += base.seconds;
    state.total_tb += tb.seconds;
    state.shot = shot + 1;
    std::cout << "shot " << shot << " @ x=" << fx * (n - 1)
              << ": baseline " << base.seconds << " s, "
              << physics::to_string(cfg.tb_sched) << " " << tb.seconds
              << " s (speed-up " << base.seconds / tb.seconds
              << "x), gather rel-diff " << diff / scale << "\n";
    last_gather = gather_tb;
  }

  std::cout << "\nsurvey total: baseline " << state.total_base << " s, "
            << physics::to_string(cfg.tb_sched) << " " << state.total_tb
            << " s -> speed-up " << state.total_base / state.total_tb
            << "x; worst gather mismatch " << state.worst_mismatch
            << " (relative)\n";

  io::save_gather_csv(cfg.out, last_gather, dt);
  io::save_gather(cfg.out + ".tpg", last_gather);
  std::cout << "last shot gather written to " << cfg.out
            << " (+ binary .tpg)\n";
  // The survey finished: a stale checkpoint must not shadow the next run.
  if (ckpt && ckpt->exists()) std::remove(ckpt->path().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  SurveyConfig cfg;
  cfg.n = static_cast<int>(cli.get_int("size", 160));
  cfg.nt = static_cast<int>(cli.get_int("steps", 160));
  cfg.n_shots = static_cast<int>(cli.get_int("shots", 3));
  cfg.out = cli.get("out", "gather.csv");
  cfg.ckpt_path = cli.get("checkpoint", "");
  cfg.ckpt_every = static_cast<int>(cli.get_int("ckpt-every", 40));
  cfg.tb_sched = physics::schedule_from_string(cli.get("schedule", "wavefront"));
  const std::string phys = cli.get("physics", "acoustic");
  const trace::Session trace_session(cli.get("trace", ""),
                                     cli.get("metrics", ""));

  physics::Geometry geom{{cfg.n, cfg.n, cfg.n}, 10.0, 8, 10};

  // Everything a resumed run must reproduce bitwise goes into the
  // fingerprint; a checkpoint from different flags (or a different physics)
  // is rejected, not silently resumed.
  resilience::Fingerprint fpb;
  for (const char c : phys) fpb.add(static_cast<int>(c));
  fpb.add(cfg.n).add(cfg.nt).add(cfg.n_shots).add(geom.space_order);

  if (phys == "acoustic") {
    const physics::AcousticModel model =
        physics::make_acoustic_layered(geom, 1.5, 4.0, 6);
    fpb.add(model.critical_dt());
    cfg.fingerprint = fpb.value();
    return run_survey<physics::AcousticPropagator>(model, geom, cfg);
  }
  if (phys == "tti" || phys == "vti") {
    physics::TTIModel model = physics::make_tti_layered(geom, 1.5, 4.0, 6);
    if (phys == "vti") {
      model.theta.fill(0.0f);  // untilted: a genuine VTI medium
      model.phi.fill(0.0f);
    }
    fpb.add(model.critical_dt());
    cfg.fingerprint = fpb.value();
    return phys == "vti"
               ? run_survey<physics::VTIPropagator>(model, geom, cfg)
               : run_survey<physics::TTIPropagator>(model, geom, cfg);
  }
  if (phys == "elastic") {
    const physics::ElasticModel model =
        physics::make_elastic_layered(geom, 1.5, 4.0, 6);
    fpb.add(model.critical_dt());
    cfg.fingerprint = fpb.value();
    return run_survey<physics::ElasticPropagator>(model, geom, cfg);
  }
  std::cerr << "unknown --physics '" << phys
            << "' (expected acoustic, tti, vti or elastic)\n";
  return 1;
}
