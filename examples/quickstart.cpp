// Quickstart: the paper's workflow end to end in ~60 lines of user code.
//
// 1. State the acoustic wave equation symbolically (the DSL mirror of the
//    paper's Devito listing).
// 2. Build an Operator with the wave-front temporal-blocking schedule: the
//    lowering runs the paper's passes (precompute sparse sources, fuse,
//    compress, time-tile) and the printed schedule shows the Listing 6 nest.
// 3. Apply it to a layered velocity model with one off-the-grid source and
//    a line of off-the-grid receivers.
//
// Build & run:  ./build/examples/quickstart [--size=128] [--steps=120]

#include <iostream>

#include "tempest/dsl/operator.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tempest;
  const util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("size", 128));
  const int nt = static_cast<int>(cli.get_int("steps", 120));

  // --- the physical setup: 10 m grid, velocity increasing with depth ---
  physics::Geometry geom{{n, n, n}, 10.0, /*space_order=*/4, /*nbl=*/10};
  const physics::AcousticModel model =
      physics::make_acoustic_layered(geom, 1.5, 3.5, 5);
  const double dt = model.critical_dt();
  std::cout << "grid " << n << "^3, dt = " << dt << " ms, " << nt
            << " timesteps (" << nt * dt << " ms of wave propagation)\n";

  // --- the symbolic problem definition (paper Listing 1 of Section III) ---
  dsl::Grid grid{geom.extents, geom.spacing};
  dsl::TimeFunction u("u", grid, geom.space_order, 2);
  const dsl::Expr pde =
      dsl::param("m") * u.dt2() + dsl::param("damp") * u.dt() - u.laplace();
  const dsl::Eq update = dsl::solve(pde, u.forward());
  std::cout << "\nsymbolic update: " << update.str() << "\n";

  // --- off-the-grid sources and receivers ---
  sparse::SparseTimeSeries src(sparse::single_center_source(geom.extents),
                               nt);
  src.broadcast_signature(sparse::ricker(nt, dt, /*f0=*/0.010));
  sparse::SparseTimeSeries rec(sparse::receiver_line(geom.extents, 64), nt);

  dsl::SparseTimeFunction s("src", src.coords(), nt);
  dsl::SparseTimeFunction d("rec", rec.coords(), nt);

  // --- the Operator with the paper's temporally blocked schedule ---
  dsl::OperatorOptions opts;
  opts.schedule = physics::Schedule::Wavefront;
  opts.tiles = core::TileSpec{8, 64, 64, 8, 8};
  dsl::Operator op({update}, {s.inject(u, dsl::param("dt2_over_m"))},
                   {d.interpolate(u)}, opts);

  std::cout << "\nlowered schedule (" << dsl::to_string(op.kernel_class())
            << ", wave-front temporal blocking):\n"
            << op.ccode() << "\n";

  const physics::RunStats stats = op.apply(model, src, &rec);
  std::cout << "propagation: " << stats.seconds << " s  ("
            << stats.gpoints_per_s() << " GPts/s), sparse precompute "
            << stats.precompute_seconds << " s\n";

  // --- a glance at the recorded shot gather ---
  double peak = 0.0;
  int peak_t = 0, peak_r = 0;
  for (int t = 0; t < nt; ++t) {
    for (int r = 0; r < rec.npoints(); ++r) {
      const double v = std::abs(static_cast<double>(rec.at(t, r)));
      if (v > peak) {
        peak = v;
        peak_t = t;
        peak_r = r;
      }
    }
  }
  std::cout << "strongest receiver sample: |u| = " << peak << " at t = "
            << peak_t * dt << " ms on receiver " << peak_r << "\n";
  return 0;
}
