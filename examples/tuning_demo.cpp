// Tuning demo: the autotuner of Section IV.C on a user-chosen problem.
// Sweeps the tile/block space for the wave-front schedule, prints every
// candidate, and compares the tuned configuration against both an untuned
// WTB default and the spatially-blocked baseline — showing why the paper
// reports *tuned* WTB numbers.
//
// Build & run:  ./build/examples/tuning_demo [--size=192] [--steps=16]
//               [--so=4] [--full-sweep]

#include <iostream>

#include "tempest/autotune/autotune.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/util/cli.hpp"
#include "tempest/util/table.hpp"

int main(int argc, char** argv) {
  using namespace tempest;
  const util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("size", 192));
  const int nt = static_cast<int>(cli.get_int("steps", 16));
  const int so = static_cast<int>(cli.get_int("so", 4));

  physics::Geometry geom{{n, n, n}, 10.0, so, 10};
  const auto model = physics::make_acoustic_layered(geom);
  physics::AcousticPropagator probe(model);
  sparse::SparseTimeSeries src(sparse::single_center_source(geom.extents),
                               nt);
  src.broadcast_signature(sparse::ricker(nt, probe.dt(), 0.010));

  autotune::CandidateSpace space;
  space.symmetric = !cli.get_flag("full-sweep");
  const auto specs = autotune::candidates(geom.extents, space);
  std::cout << "sweeping " << specs.size() << " candidate tile shapes on a "
            << n << "^3 acoustic O(2," << so << ") problem...\n";

  const auto result = autotune::sweep(specs, [&](const core::TileSpec& s) {
    physics::PropagatorOptions o;
    o.tiles = s;
    physics::AcousticPropagator p(model, o);
    return p.run(physics::Schedule::Wavefront, src, nullptr).seconds;
  });

  util::Table table({"tile_x", "tile_y", "block_x", "block_y", "seconds"});
  for (const auto& c : result.evaluated) {
    table.add_row({std::to_string(c.spec.tile_x),
                   std::to_string(c.spec.tile_y),
                   std::to_string(c.spec.block_x),
                   std::to_string(c.spec.block_y),
                   util::Table::num(c.seconds, 3)});
  }
  table.print_ascii(std::cout);

  const auto& b = result.best.spec;
  std::cout << "\nbest: tile " << b.tile_x << 'x' << b.tile_y << ", block "
            << b.block_x << 'x' << b.block_y << " -> " << result.best.seconds
            << " s\n";

  const double base_s =
      probe.run(physics::Schedule::SpaceBlocked, src, nullptr).seconds;
  physics::PropagatorOptions untuned;  // library default tiles
  physics::AcousticPropagator pu(model, untuned);
  const double untuned_s =
      pu.run(physics::Schedule::Wavefront, src, nullptr).seconds;
  std::cout << "space-blocked baseline: " << base_s << " s\n"
            << "WTB default tiles:      " << untuned_s << " s ("
            << base_s / untuned_s << "x)\n"
            << "WTB tuned tiles:        " << result.best.seconds << " s ("
            << base_s / result.best.seconds << "x)\n";
  return 0;
}
