// Elastic demo: Virieux velocity–stress propagation with an explosive
// source, showing the two-phase (velocity/stress) wave-front treatment of
// staggered multi-grid stencils (paper Fig. 8b) and the physics it carries:
// a receiver string straight below the source separates the P arrival
// (speed vp) from the later S-converted energy (speed vs = vp/sqrt(3)).
//
// Build & run:  ./build/examples/elastic_demo [--size=144] [--steps=300]

#include <cmath>
#include <iostream>

#include "tempest/physics/elastic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/util/cli.hpp"
#include "tempest/util/table.hpp"

int main(int argc, char** argv) {
  using namespace tempest;
  const util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("size", 144));
  const int nt = static_cast<int>(cli.get_int("steps", 300));

  physics::Geometry geom{{n, n, n}, 10.0, 4, 10};
  const physics::ElasticModel model =
      physics::make_elastic_layered(geom, 2.0, 2.0, 1);  // homogeneous
  const double dt = model.critical_dt();
  const double vp = 2.0, vs = vp / std::sqrt(3.0);
  std::cout << "elastic medium: vp = " << vp << " m/ms, vs = " << vs
            << " m/ms, dt = " << dt << " ms, " << nt << " steps\n";

  const double sx = 0.5 * (n - 1), sy = 0.5 * (n - 1), sz = 0.25 * (n - 1);
  sparse::SparseTimeSeries src({{sx + 0.37, sy + 0.61, sz + 0.43}}, nt);
  src.broadcast_signature(sparse::ricker(nt, dt, 0.015));

  // String of receivers straight below the source.
  sparse::CoordList rec_coords;
  for (int k = 1; k <= 4; ++k) {
    rec_coords.push_back({sx + 0.37, sy + 0.61, sz + 0.43 + 12.0 * k});
  }
  sparse::SparseTimeSeries rec(rec_coords, nt);

  physics::PropagatorOptions opts;
  opts.tiles = core::TileSpec{8, 64, 64, 8, 8};
  physics::ElasticPropagator prop(model, opts);

  const physics::RunStats base =
      prop.run(physics::Schedule::SpaceBlocked, src, &rec);
  std::cout << "baseline:  " << base.seconds << " s ("
            << base.gpoints_per_s() << " GPts/s)\n";
  const physics::RunStats wave =
      prop.run(physics::Schedule::Wavefront, src, &rec);
  std::cout << "wave-front:" << wave.seconds << " s ("
            << wave.gpoints_per_s() << " GPts/s), speed-up "
            << base.seconds / wave.seconds << "x\n\n";

  util::Table table({"receiver", "offset_m", "picked_ms", "P_predicted_ms"});
  for (int r = 0; r < rec.npoints(); ++r) {
    int t_peak = 0;
    double best = 0.0;
    for (int t = 0; t < nt; ++t) {
      const double v = std::fabs(static_cast<double>(rec.at(t, r)));
      if (v > best) {
        best = v;
        t_peak = t;
      }
    }
    const double offset = 12.0 * (r + 1) * geom.spacing;
    const double predicted = 1.5 / 0.015 + offset / (vp * 1000.0) * 1000.0;
    table.add_row({std::to_string(r), util::Table::num(offset, 0),
                   util::Table::num(t_peak * dt, 1),
                   util::Table::num(predicted, 1)});
  }
  std::cout << "P-wave arrival picks on vz (peak of |trace|):\n";
  table.print_ascii(std::cout);
  return 0;
}
