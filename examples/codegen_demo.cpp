// Code-generation demo: the Devito workflow taken all the way — emit a C
// translation unit for the acoustic operator (FD weights baked in as
// literals, fused compressed injection, wave-front tiled schedule), compile
// it with the system C compiler at run time, load it, and verify it against
// the library's ahead-of-time kernel. The generated source is printed so
// you can read exactly the Listing 5/6 structure the paper describes.
//
// Build & run:  ./build/examples/codegen_demo [--size=96] [--steps=60]
//               [--so=4] [--show-source]

#include <cmath>
#include <iostream>

#include "tempest/codegen/jit.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/util/cli.hpp"
#include "tempest/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace tempest;
  const util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("size", 96));
  const int nt = static_cast<int>(cli.get_int("steps", 60));
  const int so = static_cast<int>(cli.get_int("so", 4));

  physics::Geometry geom{{n, n, n}, 10.0, so, 8};
  const auto model = physics::make_acoustic_layered(geom, 1.5, 3.0, 4);
  sparse::SparseTimeSeries src(sparse::single_center_source(geom.extents),
                               nt);
  src.broadcast_signature(sparse::ricker(nt, model.critical_dt(), 0.012));

  codegen::KernelSpec spec;
  spec.space_order = so;
  spec.wavefront = true;
  spec.tiles = core::TileSpec{8, 32, 32, 8, 8};

  std::cout << "emitting + compiling " << spec.symbol() << " ...\n";
  util::Timer compile_timer;
  codegen::JitAcoustic jit(model, spec);
  std::cout << "JIT pipeline (emit, cc, dlopen): " << compile_timer.seconds()
            << " s, " << jit.source_code().size() << " bytes of C\n";
  if (cli.get_flag("show-source")) {
    std::cout << "\n----- generated C -----\n"
              << jit.source_code() << "-----------------------\n";
  }

  util::Timer run_timer;
  jit.run(src);
  const double jit_s = run_timer.seconds();

  physics::PropagatorOptions opts;
  opts.tiles = spec.tiles;
  physics::AcousticPropagator aot(model, opts);
  run_timer.reset();
  aot.run(physics::Schedule::Wavefront, src, nullptr);
  const double aot_s = run_timer.seconds();

  const double umax = grid::max_abs(aot.wavefield(nt));
  const double diff =
      grid::max_abs_diff(aot.wavefield(nt), jit.wavefield(nt));
  std::cout << "generated kernel: " << jit_s << " s;  AOT kernel: " << aot_s
            << " s\n"
            << "max |AOT - JIT| = " << diff << "  (field max " << umax
            << ", relative " << diff / umax << ")\n";
  return diff < 1e-4 * umax ? 0 : 1;
}
