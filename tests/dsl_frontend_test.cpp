// End-to-end proof of the typed-IR frontend: equations authored in the DSL,
// lowered by dsl::lower_kernel and executed by DslKernel / JitDsl, are
// *bit-identical* to the hand-written acoustic kernel — fields, receiver
// gathers and work counters — under every schedule and thread count, via
// both the interpreter (tape) and JIT (generated C) paths. Plus the
// sponge-boundary scenario: an absorbing-boundary variant authored purely
// as a DSL program against physics::make_sponge_profile, never touching
// the hand-written physics translation units.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "tempest/codegen/jit.hpp"
#include "tempest/dsl/interpreter.hpp"
#include "tempest/dsl/kernel.hpp"
#include "tempest/dsl/operator.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/damping.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/util/error.hpp"

namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace tc = tempest::core;
namespace cg = tempest::codegen;
namespace dsl = tempest::dsl;
using tempest::real_t;

namespace {

struct Setup {
  ph::AcousticModel model;
  sp::SparseTimeSeries src;
  sp::SparseTimeSeries rec;
  int nt;
};

Setup make_setup(tg::Extents3 e, int so, int nt) {
  ph::Geometry g{e, 10.0, so, /*nbl=*/4};
  Setup s{ph::make_acoustic_layered(g, 1.5, 3.0, 3),
          sp::SparseTimeSeries(sp::single_center_source(e, 0.4), nt),
          sp::SparseTimeSeries(sp::receiver_line(e, 5, 0.15, 3), nt), nt};
  s.src.broadcast_signature(sp::ricker(nt, s.model.critical_dt(), 0.015));
  return s;
}

dsl::Eq acoustic_eq() {
  dsl::Grid g;
  dsl::TimeFunction u("u", g, 4, 2);
  return dsl::solve(dsl::param("m") * u.dt2() + dsl::param("damp") * u.dt() -
                        u.laplace(),
                    u.forward());
}

dsl::Eq sponge_eq() {
  dsl::Grid g;
  dsl::TimeFunction u("u", g, 4, 2);
  return dsl::solve(dsl::param("m") * u.dt2() + dsl::param("eta") * u.dt() -
                        u.laplace(),
                    u.forward());
}

struct SchedCase {
  const char* name;
  ph::Schedule sched;
  int tile_t;
};

// "Fused" = temporal blocking degenerated to tile_t 1: the fused sparse
// operators run inside the tile walk but no timesteps are actually blocked.
const SchedCase kSchedules[] = {
    {"reference", ph::Schedule::Reference, 4},
    {"space-blocked", ph::Schedule::SpaceBlocked, 4},
    {"fused", ph::Schedule::Wavefront, 1},
    {"wavefront", ph::Schedule::Wavefront, 4},
    {"diamond", ph::Schedule::Diamond, 4},
};

}  // namespace

// The acceptance bar of the frontend refactor: for every schedule and both
// thread counts, the DSL-authored acoustic equation produces the same bits
// as physics::AcousticPropagator — wavefield, receiver gathers, and the
// point-update work counter.
TEST(DslFrontend, AcousticBitIdenticalAcrossSchedulesAndThreads) {
  auto s = make_setup({20, 18, 16}, 4, 24);
  const dsl::Eq eq = acoustic_eq();
  for (const auto& sc : kSchedules) {
    for (int threads : {1, 8}) {
      SCOPED_TRACE(std::string(sc.name) + " threads=" +
                   std::to_string(threads));
      ph::PropagatorOptions opts;
      opts.tiles = tc::TileSpec{sc.tile_t, 8, 8, 4, 4};
      opts.threads = threads;
      opts.verify_schedule = true;

      ph::AcousticPropagator hand(s.model, opts);
      auto rec_hand = s.rec;
      const ph::RunStats st_hand = hand.run(sc.sched, s.src, &rec_hand);

      dsl::DslPropagator dslprop(eq, s.model, opts);
      auto rec_dsl = s.rec;
      const ph::RunStats st_dsl = dslprop.run(sc.sched, s.src, &rec_dsl);

      EXPECT_EQ(tg::max_abs_diff(hand.wavefield(s.nt), dslprop.wavefield(s.nt)),
                0.0);
      for (int t = 0; t < s.nt; ++t) {
        for (int r = 0; r < rec_hand.npoints(); ++r) {
          ASSERT_EQ(rec_hand.at(t, r), rec_dsl.at(t, r))
              << "t=" << t << " r=" << r;
        }
      }
      EXPECT_EQ(st_hand.point_updates, st_dsl.point_updates);
    }
  }
}

// Same bar at a different space order: the lowering's FD weights must
// reproduce the hand-written kernel's folded real_t weights at any order.
TEST(DslFrontend, AcousticBitIdenticalAtSpaceOrder8) {
  auto s = make_setup({16, 14, 18}, 8, 18);
  dsl::Grid g;
  dsl::TimeFunction u("u", g, 8, 2);
  const dsl::Eq eq = dsl::solve(dsl::param("m") * u.dt2() +
                                    dsl::param("damp") * u.dt() - u.laplace(),
                                u.forward());
  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{3, 8, 8, 4, 4};
  opts.verify_schedule = true;

  ph::AcousticPropagator hand(s.model, opts);
  hand.run(ph::Schedule::Wavefront, s.src);
  dsl::DslPropagator dslprop(eq, s.model, opts);
  dslprop.run(ph::Schedule::Wavefront, s.src);
  EXPECT_EQ(tg::max_abs_diff(hand.wavefield(s.nt), dslprop.wavefield(s.nt)),
            0.0);
}

// The JIT path: emit_dsl_c + JitDsl produce the same bits as the
// hand-maintained acoustic emitter, on both generated schedules.
TEST(DslFrontend, JitDslBitIdenticalToJitAcoustic) {
  auto s = make_setup({20, 18, 16}, 4, 24);
  const dsl::Eq eq = acoustic_eq();
  cg::KernelSpec base;
  base.space_order = 4;
  base.tiles = tc::TileSpec{4, 8, 8, 4, 4};

  cg::JitAcoustic aot(s.model, base);
  aot.run(s.src);

  for (bool wavefront : {false, true}) {
    SCOPED_TRACE(wavefront ? "wavefront" : "space-blocked");
    cg::KernelSpec spec = base;
    spec.wavefront = wavefront;
    spec.kernel = "dslacoustic";
    cg::JitDsl jit(eq, s.model, spec);
    ASSERT_FALSE(jit.used_interpreter_fallback());
    EXPECT_EQ(jit.lowered().name, "dslacoustic");
    EXPECT_NE(jit.source_code().find(spec.symbol()), std::string::npos);
    jit.run(s.src);
    EXPECT_EQ(tg::max_abs_diff(aot.wavefield(s.nt), jit.wavefield(s.nt)),
              0.0);
  }
}

// The typed-IR interpreter is the scalar oracle for the tape: evaluating
// the same lowered tree point-by-point must reproduce the DslKernel block
// update bit-for-bit.
TEST(DslFrontend, TypedInterpreterMatchesKernelTapeBitExact) {
  const tg::Extents3 e{10, 9, 8};
  ph::Geometry g{e, 10.0, 4, 2};
  ph::AcousticModel model = ph::make_acoustic_layered(g, 1.5, 3.0, 2);
  const double dt = model.critical_dt();
  const dsl::LoweredKernel lowered =
      dsl::lower_kernel(acoustic_eq(), 4, g.spacing, dt);

  // Deterministic non-trivial field data.
  tg::TimeBuffer<real_t> u(3, e, g.radius(), real_t{0});
  for (int t = 0; t < 2; ++t) {
    for (int x = 0; x < e.nx; ++x) {
      for (int y = 0; y < e.ny; ++y) {
        for (int z = 0; z < e.nz; ++z) {
          u.at(t)(x, y, z) = static_cast<real_t>(
              std::sin(0.3 * x + 0.5 * y + 0.7 * z + t));
        }
      }
    }
  }

  dsl::DslKernel kernel(lowered, model, {}, u, dt);
  kernel.apply(1, tg::Box3::whole(e));

  const dsl::TypedInterpreter interp(lowered, model, dt);
  for (int x = 0; x < e.nx; ++x) {
    for (int y = 0; y < e.ny; ++y) {
      for (int z = 0; z < e.nz; ++z) {
        ASSERT_EQ(u.at(2)(x, y, z), interp.eval_at(u, 1, x, y, z))
            << "(" << x << "," << y << "," << z << ")";
      }
    }
  }
}

// The sponge scenario: an absorbing-boundary equation authored purely in
// the DSL — its damping coefficient is a *bound* grid (the generalised
// power-law sponge), not the model's own field — classifies as Generic,
// passes the legality sweep, runs under every schedule bit-identically,
// and actually absorbs energy relative to the undamped equation.
TEST(DslFrontend, SpongeScenarioRunsUnderEverySchedule) {
  auto s = make_setup({20, 18, 16}, 4, 24);
  const tg::Grid3<real_t> eta =
      ph::make_sponge_profile(s.model.geom, 1.5, 0.001, /*exponent=*/3);
  const dsl::Eq eq = sponge_eq();
  const dsl::ParamBindings bindings{{"eta", &eta}};

  ph::PropagatorOptions ref_opts;
  ref_opts.tiles = tc::TileSpec{4, 8, 8, 4, 4};
  dsl::DslPropagator ref(eq, s.model, ref_opts, bindings, "sponge");
  auto rec_ref = s.rec;
  ref.run(ph::Schedule::Reference, s.src, &rec_ref);
  const auto u_ref = ref.wavefield(s.nt);

  for (const auto& sc : kSchedules) {
    SCOPED_TRACE(sc.name);
    ph::PropagatorOptions opts;
    opts.tiles = tc::TileSpec{sc.tile_t, 8, 8, 4, 4};
    opts.threads = 8;
    opts.verify_schedule = true;
    dsl::DslPropagator prop(eq, s.model, opts, bindings, "sponge");
    auto rec = s.rec;
    prop.run(sc.sched, s.src, &rec);
    EXPECT_EQ(tg::max_abs_diff(u_ref, prop.wavefield(s.nt)), 0.0);
  }

  // Energy check: the sponge must bite. Undamped = same equation with a
  // zero eta grid.
  const tg::Grid3<real_t> zero(s.model.geom.extents, s.model.geom.radius(),
                                 real_t{0});
  dsl::DslPropagator undamped(eq, s.model, ref_opts, {{"eta", &zero}},
                              "nosponge");
  undamped.run(ph::Schedule::Reference, s.src);
  double e_sponge = 0.0, e_undamped = 0.0;
  for (int x = 0; x < s.model.geom.extents.nx; ++x) {
    for (int y = 0; y < s.model.geom.extents.ny; ++y) {
      for (int z = 0; z < s.model.geom.extents.nz; ++z) {
        e_sponge += static_cast<double>(u_ref(x, y, z)) * u_ref(x, y, z);
        e_undamped += static_cast<double>(undamped.wavefield(s.nt)(x, y, z)) *
                      undamped.wavefield(s.nt)(x, y, z);
      }
    }
  }
  EXPECT_LT(e_sponge, e_undamped);
}

// The sponge equation through the Operator front door: classifies Generic,
// the constructor machine-checks stage legality under a time-tiled
// schedule, and apply() routes to the typed-IR engine adapter.
TEST(DslFrontend, OperatorGenericClassRunsSponge) {
  auto s = make_setup({20, 18, 16}, 4, 20);
  const tg::Grid3<real_t> eta =
      ph::make_sponge_profile(s.model.geom, 1.5, 0.001, 3);

  dsl::Grid g{s.model.geom.extents, s.model.geom.spacing};
  dsl::TimeFunction u("u", g, 4, 2);
  dsl::SparseTimeFunction src_f("src", s.src.coords(), s.nt);
  dsl::SparseTimeFunction rec_f("rec", s.rec.coords(), s.nt);

  dsl::OperatorOptions opts;
  opts.schedule = ph::Schedule::Wavefront;
  opts.tiles = tc::TileSpec{4, 8, 8, 4, 4};
  opts.bindings = {{"eta", &eta}};
  dsl::Operator op({sponge_eq()},
                   {src_f.inject(u, dsl::param("dt2_over_m"))},
                   {rec_f.interpolate(u)}, opts);
  EXPECT_EQ(op.kernel_class(), dsl::KernelClass::Generic);
  EXPECT_TRUE(op.verify_stage(2, 4).legal());
  EXPECT_FALSE(op.verify_stage(0, 4).legal());

  auto rec = s.rec;
  const ph::RunStats stats = op.apply(s.model, s.src, &rec);
  EXPECT_GT(stats.point_updates, 0);

  // Reference comparison through the propagator adapter directly.
  ph::PropagatorOptions popts;
  popts.tiles = opts.tiles;
  dsl::DslPropagator direct(sponge_eq(), s.model, popts, {{"eta", &eta}});
  direct.run(ph::Schedule::Wavefront, s.src);
  // op.apply used its own internal propagator; compare gathers instead of
  // fields (the operator does not expose its wavefield).
  double gmax = 0.0;
  for (int t = 0; t < s.nt; ++t) {
    for (int r = 0; r < rec.npoints(); ++r) {
      gmax = std::max(gmax, std::fabs(static_cast<double>(rec.at(t, r))));
    }
  }
  EXPECT_GT(gmax, 0.0);
}

// Out-of-fragment equations fail loudly at lowering time, not silently.
TEST(DslFrontend, LoweringRejectsUnsupportedShapes) {
  dsl::Grid g;
  dsl::TimeFunction u("u", g, 4, 2);
  // Division by the unknown is nonlinear in the forward value.
  EXPECT_THROW(
      (void)dsl::lower_kernel(
          dsl::Eq{u.forward(),
                  dsl::constant(1.0) / u.forward() - u.laplace()},
          4, 10.0, 1.0),
      tempest::util::PreconditionError);
  // No time derivative: nothing couples t+1 to t.
  EXPECT_THROW((void)dsl::lower_kernel(
                   dsl::Eq{u.forward(), u.laplace()}, 4, 10.0, 1.0),
               tempest::util::PreconditionError);
}

// Checkpoint/restore parity: the DSL propagator resumes mid-run exactly
// like the hand-written one (engine capture/restore is kernel-agnostic).
TEST(DslFrontend, CheckpointRestoreBitExact) {
  auto s = make_setup({16, 14, 12}, 4, 20);
  const dsl::Eq eq = acoustic_eq();
  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{1, 8, 8, 4, 4};

  dsl::DslPropagator full(eq, s.model, opts);
  full.run(ph::Schedule::SpaceBlocked, s.src);

  // Run the head, capture, restore into a fresh propagator, re-run the
  // tail from the cut: run == run-head + run_from-tail, bitwise.
  const int t_cut = 10;
  dsl::DslPropagator partial(eq, s.model, opts);
  sp::SparseTimeSeries head(s.src.coords(), t_cut);
  for (int t = 0; t < t_cut; ++t) {
    for (int p = 0; p < s.src.npoints(); ++p) {
      head.at(t, p) = s.src.at(t, p);
    }
  }
  partial.run(ph::Schedule::SpaceBlocked, head);
  const auto ck = partial.capture(t_cut, 0x5eedu);
  dsl::DslPropagator resumed(eq, s.model, opts);
  resumed.restore(ck);
  resumed.run_from(t_cut, ph::Schedule::SpaceBlocked, s.src);
  EXPECT_EQ(tg::max_abs_diff(full.wavefield(s.nt), resumed.wavefield(s.nt)),
            0.0);
}
