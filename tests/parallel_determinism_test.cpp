// Thread-count invariance of the task-parallel schedule executor: every
// physics kernel x {space-blocked, wavefront, diamond} must produce
// *byte-identical* wavefields and receiver gathers — and exactly equal work
// counters — at 1, 2, and 8 worker threads. This is the determinism half of
// the task-parallel engine's contract (the race-freedom half is the TSan
// lane over these same tests, `scripts/check.sh --tsan`):
//   * stencil tiles have disjoint write footprints and the TileGraph's
//     staircase edges serialize every cross-tile dependence, so field
//     updates are the same arithmetic in a compatible order;
//   * receiver gathers are staged per (timestep, compressed point) and
//     reduced in ascending point order at each band barrier, replacing the
//     order-nondeterministic atomic accumulation;
//   * source injection scatters layer-by-layer through the ColorSets
//     partition, reproducing the serial per-grid-point accumulation order.
// Float addition does not commute bitwise, so EXPECT_EQ (not NEAR) on every
// artifact is the whole point: a schedule that merely "converges" at 8
// threads fails this suite.
//
// 8 threads on any host (CI runners here have 1-2 cores) oversubscribes the
// team; the determinism guarantee must not depend on real parallelism.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tempest/obs/metrics.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/threads.hpp"

namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace tc = tempest::core;
namespace tr = tempest::trace;
namespace tu = tempest::util;
namespace obs = tempest::obs;
using tempest::real_t;

namespace {

struct Case {
  const char* kernel;  // "acoustic" | "tti" | "vti" | "elastic"
  ph::Schedule schedule;
};

const char* schedule_name(ph::Schedule s) {
  switch (s) {
    case ph::Schedule::Reference: return "reference";
    case ph::Schedule::SpaceBlocked: return "spaceblocked";
    case ph::Schedule::Wavefront: return "wavefront";
    case ph::Schedule::Diamond: return "diamond";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << c.kernel << '/' << schedule_name(c.schedule);
}

struct Artifacts {
  std::vector<tg::Grid3<real_t>> fields;
  sp::SparseTimeSeries rec;
  tr::CounterSnapshot counters{};
  obs::MetricSnapshot latency{};
};

Artifacts run_cell(const Case& c, int threads) {
  Artifacts out;
  tr::set_enabled(true);
  tr::reset();
  obs::reset_metrics();
  obs::set_enabled(true);
  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{4, 8, 8, 4, 4};
  opts.threads = threads;

  if (std::string(c.kernel) == "acoustic") {
    const tg::Extents3 e{20, 18, 16};
    const int nt = 12;
    ph::Geometry g{e, 10.0, /*space_order=*/4, /*nbl=*/4};
    const ph::AcousticModel model = ph::make_acoustic_layered(g, 1.5, 3.0, 3);
    sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
    src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.015));
    out.rec = sp::SparseTimeSeries(sp::receiver_line(e, 5, 0.15, 3), nt);
    ph::AcousticPropagator prop(model, opts);
    prop.run(c.schedule, src, &out.rec);
    out.fields.push_back(prop.wavefield(nt));
  } else if (std::string(c.kernel) == "tti") {
    const tg::Extents3 e{16, 14, 12};
    const int nt = 12;
    ph::Geometry g{e, 20.0, 4, /*nbl=*/4};
    const ph::TTIModel model = ph::make_tti_layered(g, 1.5, 3.0, 3);
    sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
    src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.015));
    out.rec = sp::SparseTimeSeries(sp::receiver_line(e, 4, 0.15, 3), nt);
    ph::TTIPropagator prop(model, opts);
    prop.run(c.schedule, src, &out.rec);
    out.fields.push_back(prop.wavefield_p(nt));
    out.fields.push_back(prop.wavefield_q(nt));
  } else if (std::string(c.kernel) == "vti") {
    const tg::Extents3 e{16, 14, 12};
    const int nt = 12;
    ph::Geometry g{e, 20.0, 4, /*nbl=*/4};
    ph::TTIModel model = ph::make_tti_layered(g, 1.5, 3.0, 3);
    model.theta.fill(0.0f);
    model.phi.fill(0.0f);
    sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
    src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.015));
    out.rec = sp::SparseTimeSeries(sp::receiver_line(e, 4, 0.15, 3), nt);
    ph::VTIPropagator prop(model, opts);
    prop.run(c.schedule, src, &out.rec);
    out.fields.push_back(prop.wavefield_p(nt));
    out.fields.push_back(prop.wavefield_q(nt));
  } else {
    const tg::Extents3 e{16, 14, 12};
    const int nt = 12;
    ph::Geometry g{e, 10.0, 4, /*nbl=*/4};
    const ph::ElasticModel model = ph::make_elastic_layered(g, 1.5, 3.0, 3);
    sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
    src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.015));
    out.rec = sp::SparseTimeSeries(sp::receiver_line(e, 4, 0.15, 3), nt);
    ph::ElasticPropagator prop(model, opts);
    prop.run(c.schedule, src, &out.rec);
    out.fields.push_back(prop.vz());
    out.fields.push_back(prop.tzz());
    out.fields.push_back(prop.txy());
  }

  out.counters = tr::snapshot();
  out.latency = obs::snapshot_metrics();
  obs::set_enabled(false);
  tr::set_enabled(false);
  return out;
}

}  // namespace

class ParallelDeterminism : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelDeterminism, BitIdenticalAtAnyThreadCount) {
  const Case& c = GetParam();
  const Artifacts serial = run_cell(c, /*threads=*/1);

  for (const int threads : {2, 8}) {
    const Artifacts got = run_cell(c, threads);

    ASSERT_EQ(serial.fields.size(), got.fields.size());
    for (std::size_t i = 0; i < serial.fields.size(); ++i) {
      EXPECT_EQ(tg::max_abs_diff(serial.fields[i], got.fields[i]), 0.0)
          << GetParam() << " field " << i << " at " << threads << " threads";
    }

    // Receiver gathers must also be *bitwise* equal — the staged
    // band-barrier reduction runs in serial point order regardless of
    // which thread sampled each column.
    ASSERT_EQ(serial.rec.nt(), got.rec.nt());
    ASSERT_EQ(serial.rec.npoints(), got.rec.npoints());
    for (int t = 0; t < serial.rec.nt(); ++t) {
      for (int r = 0; r < serial.rec.npoints(); ++r) {
        EXPECT_EQ(serial.rec.at(t, r), got.rec.at(t, r))
            << GetParam() << " t=" << t << " r=" << r << " at " << threads
            << " threads";
      }
    }

    // Work accounting is exact, not statistical: the same tiles, blocks,
    // bands, injections and interpolations happen at every thread count.
    for (int i = 0; i < tr::kNumCounters; ++i) {
      EXPECT_EQ(serial.counters[static_cast<std::size_t>(i)],
                got.counters[static_cast<std::size_t>(i)])
          << GetParam() << " counter "
          << tr::to_string(static_cast<tr::Counter>(i)) << " at " << threads
          << " threads";
    }

    // The obs latency histograms shard per thread and merge on snapshot;
    // the *sample counts* (one per tile / substep / band) are as exact as
    // the work counters at every thread count. Only the duration values
    // themselves are wall-clock and excluded by contract.
    for (int m = 0; m < obs::kNumMetrics; ++m) {
      EXPECT_EQ(serial.latency[static_cast<std::size_t>(m)].count(),
                got.latency[static_cast<std::size_t>(m)].count())
          << GetParam() << " metric "
          << obs::to_string(static_cast<obs::Metric>(m)) << " at " << threads
          << " threads";
    }
  }

#if !defined(TEMPEST_TRACE_DISABLED)
  // The counter oracle must have teeth.
  EXPECT_GT(serial.counters[static_cast<std::size_t>(
                static_cast<int>(tr::Counter::CellsUpdated))],
            0)
      << GetParam();
  // And so must the histogram oracle: every schedule executes tiles.
  EXPECT_GT(
      serial.latency[static_cast<std::size_t>(obs::Metric::TileSeconds)]
          .count(),
      0u)
      << GetParam();
#endif
}

#if !defined(TEMPEST_TRACE_DISABLED)
// Full-bucket invariance through the real shard registry: when the recorded
// *values* are deterministic (not wall-clock), the merged histogram must be
// equal bucket-for-bucket no matter how the samples were partitioned across
// worker threads — merge is element-wise addition, so aggregation order
// cannot show through.
TEST(ObsHistogramDeterminism, ShardedRecordingIsThreadCountInvariant) {
  constexpr int kTasks = 64;
  const auto run = [](int threads) {
    obs::reset_metrics();
    obs::set_enabled(true);
    tu::TaskDag dag(kTasks);
    for (int i = 1; i < kTasks; ++i) dag.add_edge(i - 1, i);
    dag.run(threads, [](int node) {
      // Deterministic per-node durations spanning several octaves.
      obs::record_ns(obs::Metric::TileSeconds,
                     static_cast<std::int64_t>(node + 1) * 1000);
      obs::record_ns(obs::Metric::BandSeconds,
                     std::int64_t{1} << (node % 30));
    });
    const obs::MetricSnapshot snap = obs::snapshot_metrics();
    obs::set_enabled(false);
    obs::reset_metrics();
    return snap;
  };

  const obs::MetricSnapshot serial = run(1);
  ASSERT_EQ(
      serial[static_cast<std::size_t>(obs::Metric::TileSeconds)].count(),
      static_cast<std::uint64_t>(kTasks));
  for (const int threads : {2, 8}) {
    const obs::MetricSnapshot got = run(threads);
    for (int m = 0; m < obs::kNumMetrics; ++m) {
      EXPECT_EQ(serial[static_cast<std::size_t>(m)],
                got[static_cast<std::size_t>(m)])
          << obs::to_string(static_cast<obs::Metric>(m)) << " at " << threads
          << " threads";
    }
  }
}
#endif  // !defined(TEMPEST_TRACE_DISABLED)

namespace {

std::vector<Case> cases() {
  std::vector<Case> out;
  for (const char* kernel : {"acoustic", "tti", "vti", "elastic"}) {
    for (const ph::Schedule s : {ph::Schedule::SpaceBlocked,
                                 ph::Schedule::Wavefront,
                                 ph::Schedule::Diamond}) {
      out.push_back({kernel, s});
    }
  }
  return out;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return std::string(info.param.kernel) + "_" +
         schedule_name(info.param.schedule);
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(AllKernels, ParallelDeterminism,
                         ::testing::ValuesIn(cases()), case_name);

// The executor must honour $TEMPEST_THREADS when no explicit count is
// given, and an explicit request must win over the environment.
TEST(ThreadResolution, EnvAndExplicitPrecedence) {
  ASSERT_EQ(::setenv("TEMPEST_THREADS", "3", 1), 0);
  EXPECT_EQ(tu::env_threads(), 3);
  EXPECT_EQ(tu::resolve_threads(0), 3);
  EXPECT_EQ(tu::resolve_threads(5), 5);  // explicit beats env
  ASSERT_EQ(::setenv("TEMPEST_THREADS", "not-a-number", 1), 0);
  EXPECT_EQ(tu::env_threads(), 0);  // malformed: ignored
  ASSERT_EQ(::unsetenv("TEMPEST_THREADS"), 0);
  EXPECT_EQ(tu::env_threads(), 0);
  EXPECT_GE(tu::resolve_threads(0), 1);
}
