// Cross-schedule equivalence matrix: {reference, space-blocked, wavefront,
// fused, diamond} x {acoustic, TTI, VTI, elastic} x space orders {4, 8}. Every
// legal schedule of the same problem must produce the same physics AND do
// the same amount of work — the tempest::trace counters are the work
// oracle (a schedule that skips or double-visits cells cannot match the
// reference sweep's CellsUpdated).
//
// "fused" is wavefront with tile_t = 1: temporal blocking degenerates to a
// per-timestep sweep that still runs the fused (decomposed + compressed)
// sparse operators, isolating the sparse-pipeline half of the paper from
// the temporal-blocking half.
//
// The single centre source keeps SourcesInjected comparable between the
// naive and fused paths: the fused decomposition pre-sums contributions
// where supports overlap, so per-grid-point update counts agree only when
// no two sources share a support point (see trace.hpp).

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/trace/trace.hpp"

namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace tc = tempest::core;
namespace tr = tempest::trace;
using tempest::real_t;

namespace {

enum class Variant { Reference, SpaceBlocked, Wavefront, Fused, Diamond };

const char* to_string(Variant v) {
  switch (v) {
    case Variant::Reference: return "reference";
    case Variant::SpaceBlocked: return "spaceblocked";
    case Variant::Wavefront: return "wavefront";
    case Variant::Fused: return "fused";
    case Variant::Diamond: return "diamond";
  }
  return "?";
}

struct Case {
  const char* kernel;  // "acoustic" | "tti" | "vti" | "elastic"
  Variant variant;
  int so;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << c.kernel << '/' << to_string(c.variant) << "/so" << c.so;
}

/// Everything one run produces that another schedule must reproduce.
struct Artifacts {
  std::vector<tg::Grid3<real_t>> fields;
  sp::SparseTimeSeries rec;
  tr::CounterSnapshot counters{};
};

ph::PropagatorOptions options_for(Variant v) {
  ph::PropagatorOptions opts;
  opts.tiles = v == Variant::Fused ? tc::TileSpec{1, 8, 8, 4, 4}
                                   : tc::TileSpec{4, 8, 8, 4, 4};
  return opts;
}

ph::Schedule schedule_for(Variant v) {
  switch (v) {
    case Variant::Reference: return ph::Schedule::Reference;
    case Variant::SpaceBlocked: return ph::Schedule::SpaceBlocked;
    case Variant::Diamond: return ph::Schedule::Diamond;
    default: return ph::Schedule::Wavefront;
  }
}

/// Run one (kernel, variant, order) cell of the matrix with the trace
/// counters armed, and collect the artifacts.
Artifacts run_cell(const Case& c) {
  Artifacts out;
  tr::set_enabled(true);
  tr::reset();
  const ph::PropagatorOptions opts = options_for(c.variant);
  const ph::Schedule sched = schedule_for(c.variant);

  if (std::string(c.kernel) == "acoustic") {
    const tg::Extents3 e{20, 18, 16};
    const int nt = 12;
    ph::Geometry g{e, 10.0, c.so, /*nbl=*/4};
    const ph::AcousticModel model = ph::make_acoustic_layered(g, 1.5, 3.0, 3);
    sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
    src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.015));
    out.rec = sp::SparseTimeSeries(sp::receiver_line(e, 5, 0.15, 3), nt);
    ph::AcousticPropagator prop(model, opts);
    prop.run(sched, src, &out.rec);
    out.fields.push_back(prop.wavefield(nt));
  } else if (std::string(c.kernel) == "tti") {
    const tg::Extents3 e{16, 14, 12};
    const int nt = 12;
    ph::Geometry g{e, 20.0, c.so, /*nbl=*/4};
    const ph::TTIModel model = ph::make_tti_layered(g, 1.5, 3.0, 3);
    sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
    src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.015));
    out.rec = sp::SparseTimeSeries(sp::receiver_line(e, 4, 0.15, 3), nt);
    ph::TTIPropagator prop(model, opts);
    prop.run(sched, src, &out.rec);
    out.fields.push_back(prop.wavefield_p(nt));
    out.fields.push_back(prop.wavefield_q(nt));
  } else if (std::string(c.kernel) == "vti") {
    const tg::Extents3 e{16, 14, 12};
    const int nt = 12;
    ph::Geometry g{e, 20.0, c.so, /*nbl=*/4};
    ph::TTIModel model = ph::make_tti_layered(g, 1.5, 3.0, 3);
    model.theta.fill(0.0f);  // untilted: a genuine VTI medium
    model.phi.fill(0.0f);
    sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
    src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.015));
    out.rec = sp::SparseTimeSeries(sp::receiver_line(e, 4, 0.15, 3), nt);
    ph::VTIPropagator prop(model, opts);
    prop.run(sched, src, &out.rec);
    out.fields.push_back(prop.wavefield_p(nt));
    out.fields.push_back(prop.wavefield_q(nt));
  } else {
    const tg::Extents3 e{16, 14, 12};
    const int nt = 12;
    ph::Geometry g{e, 10.0, c.so, /*nbl=*/4};
    const ph::ElasticModel model = ph::make_elastic_layered(g, 1.5, 3.0, 3);
    sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
    src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.015));
    out.rec = sp::SparseTimeSeries(sp::receiver_line(e, 4, 0.15, 3), nt);
    ph::ElasticPropagator prop(model, opts);
    prop.run(sched, src, &out.rec);
    out.fields.push_back(prop.vz());
    out.fields.push_back(prop.tzz());
    out.fields.push_back(prop.txy());
  }

  out.counters = tr::snapshot();
  tr::set_enabled(false);
  return out;
}

long long at(const tr::CounterSnapshot& s, tr::Counter c) {
  return s[static_cast<std::size_t>(static_cast<int>(c))];
}

}  // namespace

class ScheduleMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(ScheduleMatrix, MatchesReferencePhysicsAndWork) {
  const Case& c = GetParam();
  const Case ref_case{c.kernel, Variant::Reference, c.so};
  const Artifacts ref = run_cell(ref_case);
  const Artifacts got = run_cell(c);

  // Wavefields: identical per-point arithmetic for a single source means
  // every schedule reproduces the reference field bit-exactly.
  ASSERT_EQ(ref.fields.size(), got.fields.size());
  for (std::size_t i = 0; i < ref.fields.size(); ++i) {
    EXPECT_EQ(tg::max_abs_diff(ref.fields[i], got.fields[i]), 0.0)
        << GetParam() << " field " << i;
  }

  // Gathers: the fused gather accumulates in compressed-column order, the
  // naive one per receiver, so the sums associate differently.
  double scale = 1e-20;
  for (int t = 0; t < ref.rec.nt(); ++t)
    for (int r = 0; r < ref.rec.npoints(); ++r)
      scale = std::max(scale,
                       std::fabs(static_cast<double>(ref.rec.at(t, r))));
  for (int t = 0; t < ref.rec.nt(); ++t)
    for (int r = 0; r < ref.rec.npoints(); ++r)
      EXPECT_NEAR(got.rec.at(t, r), ref.rec.at(t, r), 1e-5 * scale)
          << GetParam() << " t=" << t << " r=" << r;

  // Work accounting: every legal schedule performs exactly the same cell
  // updates, source-injection updates, and interpolation applications.
  EXPECT_EQ(at(got.counters, tr::Counter::CellsUpdated),
            at(ref.counters, tr::Counter::CellsUpdated))
      << GetParam();
  EXPECT_EQ(at(got.counters, tr::Counter::SourcesInjected),
            at(ref.counters, tr::Counter::SourcesInjected))
      << GetParam();
  EXPECT_EQ(at(got.counters, tr::Counter::ReceiversInterpolated),
            at(ref.counters, tr::Counter::ReceiversInterpolated))
      << GetParam();

#if !defined(TEMPEST_TRACE_DISABLED)
  // The oracle must have teeth: zero counts would make the equalities above
  // vacuous (e.g. when tracing failed to arm).
  EXPECT_GT(at(ref.counters, tr::Counter::CellsUpdated), 0) << GetParam();
  EXPECT_GT(at(ref.counters, tr::Counter::SourcesInjected), 0) << GetParam();
  EXPECT_GT(at(ref.counters, tr::Counter::ReceiversInterpolated), 0)
      << GetParam();
  if (c.variant == Variant::Wavefront || c.variant == Variant::Fused ||
      c.variant == Variant::Diamond) {
    EXPECT_GT(at(got.counters, tr::Counter::TilesExecuted), 0) << GetParam();
    EXPECT_GT(at(got.counters, tr::Counter::BandsExecuted), 0) << GetParam();
  }
#endif
}

namespace {

std::vector<Case> matrix_cases() {
  std::vector<Case> cases;
  for (const char* kernel : {"acoustic", "tti", "vti", "elastic"}) {
    for (const int so : {4, 8}) {
      for (const Variant v :
           {Variant::Reference, Variant::SpaceBlocked, Variant::Wavefront,
            Variant::Fused, Variant::Diamond}) {
        cases.push_back({kernel, v, so});
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return std::string(info.param.kernel) + "_" +
         to_string(info.param.variant) + "_so" +
         std::to_string(info.param.so);
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(Matrix, ScheduleMatrix,
                         ::testing::ValuesIn(matrix_cases()), case_name);
