// Integration tests for the crash-tolerant survey runtime.
//
// The mid-shot kill-and-resume matrix covers all four physics kernels
// (acoustic, TTI, VTI, elastic): a run killed at a checkpoint mid-shot and
// resumed in a fresh propagator must reproduce the uninterrupted gather
// *bitwise* — the property the process-level chaos harness then proves
// across real SIGKILLs. The survey-level tests exercise the degradation
// ladder (an injected persistent JIT fault completes on the AOT rung,
// reported as degraded — never failed), journal re-entry after a dead
// process, and watchdog-driven quarantine when every rung is too slow.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "tempest/jobs/chaos.hpp"
#include "tempest/jobs/queue.hpp"
#include "tempest/jobs/survey.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/resilience/fault.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace jb = tempest::jobs;
namespace ph = tempest::physics;
namespace rs = tempest::resilience;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;

namespace {

/// Fault plan hygiene: no injected fault may leak into the next test.
class SurveyRuntime : public ::testing::Test {
 protected:
  void SetUp() override { rs::fault::reset(); }
  void TearDown() override { rs::fault::reset(); }
};

class TempDir {
 public:
  TempDir() {
    path_ = "/tmp/tempest_survey_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++);
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};
int TempDir::counter_ = 0;

/// Thrown from a step callback to model the process dying mid-run.
struct KillSignal {};

/// The S4 contract, uniform across the propagator family: kill a barrier
/// run at `kill_at` right after saving a checkpoint, resume in a *fresh*
/// propagator (the restarted process), and require the recorded gather to
/// match the uninterrupted run bit for bit.
template <typename Propagator, typename Model>
void expect_kill_resume_bitwise(const Model& model, int nt, int kill_at) {
  const tg::Extents3 e = model.geom.extents;
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));
  const sp::SparseTimeSeries rec_proto(sp::receiver_line(e, 4, 0.15, 3), nt);

  Propagator ref(model);
  auto rec_ref = rec_proto;
  ref.run(ph::Schedule::SpaceBlocked, src, &rec_ref);

  rs::Fingerprint fp;
  fp.add(e.nx).add(e.ny).add(e.nz).add(model.geom.space_order).add(nt);

  TempDir dir;
  std::filesystem::create_directories(dir.path());
  rs::Checkpointer ckpt(dir.path() + "/shot.tpck");
  {
    Propagator first(model);
    auto rec = rec_proto;
    EXPECT_THROW(
        first.run(ph::Schedule::SpaceBlocked, src, &rec,
                  [&](int t_done) {
                    if (t_done == kill_at) {
                      ckpt.save(first.capture(t_done, fp.value(), &rec));
                      throw KillSignal{};  // the process "dies" here
                    }
                  }),
        KillSignal);
  }

  Propagator resumed(model);
  const auto ck = ckpt.try_load(fp.value());
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->step, kill_at);
  ASSERT_TRUE(ck->has_rec);
  resumed.restore(*ck);
  auto rec_resumed = ck->rec;
  resumed.run_from(ck->step, ph::Schedule::SpaceBlocked, src, &rec_resumed);

  for (int t = 0; t < nt; ++t) {
    for (int r = 0; r < rec_ref.npoints(); ++r) {
      ASSERT_EQ(rec_ref.at(t, r), rec_resumed.at(t, r))
          << "t=" << t << " r=" << r;
    }
  }
}

}  // namespace

// --- S4: the kill-and-resume matrix across all four physics kernels. ---

TEST_F(SurveyRuntime, AcousticKillResumeGatherBitwise) {
  ph::Geometry g{{16, 14, 12}, 10.0, 4, /*nbl=*/4};
  expect_kill_resume_bitwise<ph::AcousticPropagator>(
      ph::make_acoustic_layered(g, 1.5, 3.0, 3), /*nt=*/20, /*kill_at=*/11);
}

TEST_F(SurveyRuntime, TTIKillResumeGatherBitwise) {
  ph::Geometry g{{14, 13, 12}, 20.0, 4, /*nbl=*/4};
  expect_kill_resume_bitwise<ph::TTIPropagator>(
      ph::make_tti_layered(g, 1.5, 3.0, 3), /*nt=*/18, /*kill_at=*/9);
}

TEST_F(SurveyRuntime, VTIKillResumeGatherBitwise) {
  ph::Geometry g{{14, 12, 12}, 20.0, 4, /*nbl=*/4};
  ph::TTIModel model = ph::make_tti_layered(g, 1.5, 3.0, 3);
  model.theta.fill(0.0f);  // untilted: a genuine VTI medium
  model.phi.fill(0.0f);
  expect_kill_resume_bitwise<ph::VTIPropagator>(model, /*nt=*/18,
                                                /*kill_at=*/10);
}

TEST_F(SurveyRuntime, ElasticKillResumeGatherBitwise) {
  ph::Geometry g{{14, 12, 10}, 10.0, 4, /*nbl=*/4};
  expect_kill_resume_bitwise<ph::ElasticPropagator>(
      ph::make_elastic_layered(g, 1.5, 3.0, 3), /*nt=*/16, /*kill_at=*/7);
}

// --- Acceptance: an injected persistent JIT fault completes the shot via
// the degradation ladder and is reported as degraded, not failed. ---

TEST_F(SurveyRuntime, PersistentJitFaultDegradesShotsNotSurvey) {
  TempDir dir;
  rs::fault::plan().fail_jit_compiles = 1000;  // a broken toolchain
  ::setenv("TEMPEST_JIT_RETRIES", "1", 1);     // keep the test fast

  jb::SurveySpec spec;
  spec.n = 16;
  spec.nt = 12;
  spec.n_shots = 2;
  spec.space_order = 4;
  spec.physics = "acoustic";
  spec.schedule = ph::Schedule::Wavefront;
  spec.use_jit = true;  // rung 0 = JIT wavefront, rung 1 = AOT wavefront
  spec.jobs_dir = dir.path();
  spec.ckpt_every = 4;
  spec.health_every = 0;
  spec.retry.max_attempts = 2;
  spec.retry.base_ms = 0.1;

  const jb::SurveyReport report = jb::run_survey(spec);
  ::unsetenv("TEMPEST_JIT_RETRIES");

  EXPECT_EQ(report.done, 2);
  EXPECT_EQ(report.quarantined, 0);
  EXPECT_EQ(report.degraded, 2);  // every shot fell back to the AOT rung
  for (const jb::ShotReport& s : report.shots) {
    EXPECT_EQ(s.state, "done");
    EXPECT_TRUE(s.degraded);
    EXPECT_GE(s.level, 1);  // below the JIT rung
    EXPECT_GE(s.attempts, spec.retry.max_attempts);  // transients retried
    EXPECT_TRUE(std::filesystem::exists(jb::shot_gather_path(spec, s.shot)));
  }
}

// --- Journal re-entry: a journal left by a dead process is replayed, the
// interrupted shot re-runs, and the gathers match a clean run bitwise. ---

TEST_F(SurveyRuntime, RecoveredJournalReentersAndMatchesCleanRun) {
  jb::SurveySpec spec;
  spec.n = 16;
  spec.nt = 12;
  spec.n_shots = 2;
  spec.space_order = 4;
  spec.schedule = ph::Schedule::SpaceBlocked;
  spec.ckpt_every = 4;
  spec.health_every = 0;

  // The clean run: ground truth.
  TempDir clean;
  spec.jobs_dir = clean.path();
  const jb::SurveyReport ref = jb::run_survey(spec);
  ASSERT_EQ(ref.done, 2);
  EXPECT_FALSE(ref.recovered);

  // Fabricate a dead process: a journal whose shot 0 is left Running.
  TempDir dirty;
  std::filesystem::create_directories(dirty.path());
  {
    jb::JobQueue q(dirty.path() + "/journal.tpj", jb::survey_fingerprint(spec),
                   spec.n_shots);
    q.mark_started(0, 1, 0);
  }

  spec.jobs_dir = dirty.path();
  const jb::SurveyReport resumed = jb::run_survey(spec);
  EXPECT_TRUE(resumed.recovered);
  EXPECT_EQ(resumed.done, 2);

  for (int s = 0; s < spec.n_shots; ++s) {
    spec.jobs_dir = clean.path();
    const std::string a = jb::shot_gather_path(spec, s);
    spec.jobs_dir = dirty.path();
    const std::string b = jb::shot_gather_path(spec, s);
    EXPECT_TRUE(jb::files_identical(a, b)) << "shot " << s;
  }
}

// --- Watchdog: when every rung misses the per-step deadline the shot is
// quarantined with diagnostics — the survey completes, reporting it. ---

TEST_F(SurveyRuntime, ImpossibleWatchdogDeadlineQuarantines) {
  TempDir dir;
  jb::SurveySpec spec;
  spec.n = 14;
  spec.nt = 8;
  spec.n_shots = 1;
  spec.space_order = 4;
  // Barrier schedule: the watchdog is active on every rung of its ladder
  // (space-blocked, then reference).
  spec.schedule = ph::Schedule::SpaceBlocked;
  spec.jobs_dir = dir.path();
  spec.ckpt_every = 4;
  spec.health_every = 0;
  spec.watchdog_ms = 1e-7;  // no real step can beat this deadline
  spec.retry.base_ms = 0.1;

  const jb::SurveyReport report = jb::run_survey(spec);
  EXPECT_EQ(report.done, 0);
  EXPECT_EQ(report.quarantined, 1);
  ASSERT_EQ(report.shots.size(), 1u);
  EXPECT_EQ(report.shots[0].state, "quarantined");
  EXPECT_NE(report.shots[0].detail.find("ladder exhausted"),
            std::string::npos)
      << report.shots[0].detail;
  // A quarantined survey keeps its journal for the rerun to skip Done
  // shots and preserve the diagnostics.
  EXPECT_TRUE(std::filesystem::exists(dir.path() + "/journal.tpj"));
}
