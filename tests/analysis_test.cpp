// tempest::analysis unit tests: access extraction, dependence graphs and
// the schedule-legality verifier, pinned against the lowering stages of the
// paper's Listings 1–6. The golden summaries here ARE the paper's Section
// II.A argument in machine-checkable form: the naive nest's off-the-grid
// accesses produce star dependence distances, the lowered nests' fused
// accesses produce distances bounded by the stencil radius.

#include <gtest/gtest.h>

#include <string>

#include "tempest/analysis/legality.hpp"
#include "tempest/codegen/jit.hpp"
#include "tempest/dsl/operator.hpp"
#include "tempest/dsl/passes.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/sparse/survey.hpp"

namespace an = tempest::analysis;
namespace dsl = tempest::dsl;
namespace ph = tempest::physics;
namespace sp = tempest::sparse;

namespace {

/// The canonical acoustic nest at a lowering stage (sources + receivers).
tempest::dsl::ir::Node nest(int stage, int slope = 2) {
  dsl::ir::Node root =
      dsl::passes::build_timestepping("A_acoustic(t, x, y, z)", true, true);
  if (stage >= 1) dsl::passes::precompute_and_fuse(root);
  if (stage >= 2) dsl::passes::compress_iteration_space(root);
  if (stage >= 3) dsl::passes::time_tile(root, slope);
  return root;
}

an::AccessSummary acoustic4() {
  return ph::acoustic_access_summary(4);  // radius 2
}

bool has_code(const an::LegalityReport& r, const std::string& code) {
  for (const auto& d : r.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

dsl::Eq acoustic_eq(const dsl::TimeFunction& u) {
  const dsl::Expr eq = dsl::param("m") * u.dt2() +
                       dsl::param("damp") * u.dt() - u.laplace();
  return dsl::solve(eq, u.forward());
}

}  // namespace

// ---------------------------------------------------------------- access --

TEST(Access, Stage0GoldenListing1) {
  // Listing 1: the stencil is affine, both sparse operators indirect
  // through map(s, i) — star extents on every grid axis.
  const auto stmts = an::extract_accesses(nest(0), acoustic4());
  EXPECT_EQ(an::print_accesses(stmts),
            "S0 stencil affine-stencil (t x y z)"
            " W u[t+1,0,0,0]; R u[t+0,-2..2,-2..2,-2..2]; R u[t-1,0,0,0];\n"
            "S1 inject off-grid-sparse (t s i)\n"
            "S2 inject off-grid-sparse (t s i)"
            " W u[t+1,*,*,*]; R u[t+1,*,*,*];\n"
            "S3 interp off-grid-sparse (t r i)\n"
            "S4 interp off-grid-sparse (t r i)"
            " W rec[t+0,.]; R rec[t+0,.]; R u[t+1,*,*,*];\n");
}

TEST(Access, Stage2FusedInjectionIsGridAlignedInTiledDims) {
  // Listing 5: after precompute + compression the injection writes
  // u[t+1, x, y, zind] — affine zero offsets at (x, y), star only on the
  // never-tiled z axis.
  const auto stmts = an::extract_accesses(nest(2), acoustic4());
  bool found = false;
  for (const auto& s : stmts) {
    if (s.tag != "inject-fused") continue;
    for (const auto& a : s.accesses) {
      if (a.field != "u" || !a.is_write) continue;
      found = true;
      EXPECT_FALSE(a.dist_star_in("x"));
      EXPECT_FALSE(a.dist_star_in("y"));
      EXPECT_TRUE(a.dist_star_in("z"));
      EXPECT_EQ(a.time, 1);
      EXPECT_EQ(s.cls, an::AccessClass::MaskGuardedFused);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Access, PrologueIsOutsideTheTimeLoop) {
  const auto stmts = an::extract_accesses(nest(1), acoustic4());
  int prologue = 0;
  for (const auto& s : stmts) {
    if (s.cls == an::AccessClass::Precompute) {
      ++prologue;
      EXPECT_FALSE(s.under_time_loop);
    }
  }
  EXPECT_EQ(prologue, 4);  // Listings 2 + 3 (sources), receiver tables
}

TEST(Access, StencilExpansionFollowsTheDeclaredSummary) {
  // The elastic summary declares per-timestep reach 2r and first-order
  // time: one write of u[t+1], one ±2r read of u[t], no u[t-1].
  const auto stmts =
      an::extract_accesses(nest(0), ph::elastic_access_summary(4));
  ASSERT_FALSE(stmts.empty());
  const auto& st = stmts[0];
  ASSERT_EQ(st.tag, "stencil");
  ASSERT_EQ(st.accesses.size(), 2u);
  EXPECT_TRUE(st.accesses[0].is_write);
  EXPECT_EQ(st.accesses[0].time, 1);
  EXPECT_EQ(st.accesses[1].dx, an::Extent::range(-4, 4));
}

// ------------------------------------------------------------ dependence --

TEST(Dependence, Stage0GoldenDeps) {
  // The paper's illegal edges: the naive injection S2 feeds the stencil S0
  // at dt=1 and dt=2 with star distance ("could be anywhere"), plus the
  // same-timestep write/write and read/write pairs.
  const auto g = an::build_dependences(nest(0), acoustic4());
  std::string deps;
  for (const auto& d : g.deps) deps += d.str() + "\n";
  EXPECT_EQ(deps,
            "flow S0->S0 u dt=1 (-2..2,-2..2,-2..2)\n"
            "flow S0->S0 u dt=2 (0,0,0)\n"
            "output S0->S2 u dt=0 (*,*,*)\n"
            "flow S0->S2 u dt=0 (*,*,*)\n"
            "flow S2->S0 u dt=1 (*,*,*)\n"
            "flow S2->S0 u dt=2 (*,*,*)\n"
            "flow S0->S4 u dt=0 (*,*,*)\n"
            "flow S2->S4 u dt=0 (*,*,*)\n");
}

TEST(Dependence, Stage1GoldenDeps) {
  // Listing 4: the fused injection's distances collapse to the stencil
  // radius — exactly what makes the skew slope sufficient again.
  const auto g = an::build_dependences(nest(1), acoustic4());
  std::string deps;
  for (const auto& d : g.deps) deps += d.str() + "\n";
  EXPECT_EQ(deps,
            "flow S4->S4 u dt=1 (-2..2,-2..2,-2..2)\n"
            "flow S4->S4 u dt=2 (0,0,0)\n"
            "output S4->S5 u dt=0 (0,0,0)\n"
            "flow S4->S5 u dt=0 (0,0,0)\n"
            "flow S5->S4 u dt=1 (-2..2,-2..2,-2..2)\n"
            "flow S5->S4 u dt=2 (0,0,0)\n"
            "flow S4->S6 u dt=0 (0,0,0)\n"
            "flow S5->S6 u dt=0 (0,0,0)\n");
}

TEST(Dependence, Stage2GoldenDeps) {
  // Listing 5: compression moves the z indirection into Sp_SID/Sp_RID —
  // star distance confined to z, the dimension no schedule tiles.
  const auto g = an::build_dependences(nest(2), acoustic4());
  std::string deps;
  for (const auto& d : g.deps) deps += d.str() + "\n";
  EXPECT_EQ(deps,
            "flow S4->S4 u dt=1 (-2..2,-2..2,-2..2)\n"
            "flow S4->S4 u dt=2 (0,0,0)\n"
            "output S4->S6 u dt=0 (0,0,*)\n"
            "flow S4->S6 u dt=0 (0,0,*)\n"
            "flow S6->S4 u dt=1 (-2..2,-2..2,*)\n"
            "flow S6->S4 u dt=2 (0,0,*)\n"
            "flow S4->S8 u dt=0 (0,0,*)\n"
            "flow S6->S8 u dt=0 (0,0,*)\n"
            "anti S7->S8 Sp_RID dt=0 (0,0,0)\n");
}

TEST(Dependence, Stage3TiledNestKeepsTheStage2Graph) {
  // Listing 6 only re-nests the loops (tt/xs/ys around a shortened time
  // loop); the statements and their dependences are those of stage 2.
  const auto g2 = an::build_dependences(nest(2), acoustic4());
  const auto g3 = an::build_dependences(nest(3), acoustic4());
  ASSERT_EQ(g2.deps.size(), g3.deps.size());
  for (std::size_t i = 0; i < g2.deps.size(); ++i) {
    EXPECT_EQ(g2.deps[i].str(), g3.deps[i].str());
  }
  // ... under the extra tile loops.
  EXPECT_TRUE(g3.stmts[4].inside_loop("tt"));
  EXPECT_TRUE(g3.stmts[4].inside_loop("xs"));
}

// -------------------------------------------------------------- legality --

TEST(Legality, BarrierSchedulesAlwaysLegal) {
  for (int stage = 0; stage <= 2; ++stage) {
    EXPECT_TRUE(an::verify_nest(nest(stage), acoustic4(),
                                an::ScheduleDescriptor::reference())
                    .legal());
    EXPECT_TRUE(an::verify_nest(nest(stage), acoustic4(),
                                an::ScheduleDescriptor::space_blocked())
                    .legal());
  }
}

TEST(Legality, Stage0SparseRejectedUnderEveryTemporalBlocking) {
  const an::ScheduleDescriptor tiled[] = {
      an::ScheduleDescriptor::wavefront(2, 8),
      an::ScheduleDescriptor::fused(2),
      an::ScheduleDescriptor::diamond(2, 8),
  };
  for (const auto& sched : tiled) {
    const auto r = an::verify_nest(nest(0), acoustic4(), sched);
    EXPECT_FALSE(r.legal()) << sched.str();
    EXPECT_TRUE(has_code(r, "not-tileable")) << sched.str();
  }
}

TEST(Legality, Stage0RejectionNamesThePairAndTheDistance) {
  const auto r = an::verify_nest(nest(0), acoustic4(),
                                 an::ScheduleDescriptor::wavefront(2, 8));
  // The load-bearing edge of the paper's argument: naive injection S2 ->
  // stencil S0, flow on u, carried one timestep, unbounded distance.
  bool found = false;
  for (const auto& d : r.diagnostics) {
    if (d.code == "unbounded-distance" && d.src == 2 && d.dst == 0 &&
        d.kind == an::DepKind::Flow && d.field == "u" &&
        d.message.find("dt=1") != std::string::npos) {
      found = true;
      EXPECT_NE(d.message.find("statically unknowable"), std::string::npos);
    }
  }
  EXPECT_TRUE(found) << r.str();
}

TEST(Legality, LoweredStagesLegalUnderEveryTemporalBlocking) {
  const an::ScheduleDescriptor tiled[] = {
      an::ScheduleDescriptor::wavefront(2, 8),
      an::ScheduleDescriptor::fused(2),
      an::ScheduleDescriptor::diamond(2, 8),
  };
  for (int stage = 1; stage <= 2; ++stage) {
    for (const auto& sched : tiled) {
      const auto r = an::verify_nest(nest(stage), acoustic4(), sched);
      EXPECT_TRUE(r.legal()) << "stage " << stage << ": " << r.str();
    }
  }
}

TEST(Legality, TooShallowSlopeIsCaughtWithTheOffendingDistance) {
  // Radius-2 stencil under a slope-1 wavefront: the verifier must name the
  // statement pair and the distance that outruns the skew.
  const auto r = an::verify_nest(nest(2), acoustic4(),
                                 an::ScheduleDescriptor::wavefront(1, 8));
  EXPECT_FALSE(r.legal());
  EXPECT_EQ(r.errors(), 4);  // S4->S4 and S6->S4 in both x and y
  for (const auto& d : r.diagnostics) {
    EXPECT_EQ(d.code, "slope-exceeded");
    EXPECT_EQ(d.dst, 4);  // every violation feeds the stencil
    EXPECT_NE(d.message.find("-2..2"), std::string::npos);
  }
}

TEST(Legality, SlopeEqualToRadiusIsExactlySufficient) {
  EXPECT_TRUE(an::verify_nest(nest(2), acoustic4(),
                              an::ScheduleDescriptor::wavefront(2, 8))
                  .legal());
  EXPECT_FALSE(an::verify_nest(nest(2), acoustic4(),
                               an::ScheduleDescriptor::wavefront(1, 8))
                   .legal());
}

TEST(Legality, SourceFreeNaiveNestIsTileable) {
  // Without off-the-grid operators the Listing-1 nest is an ordinary
  // stencil: temporal blocking is legal as-is (the paper's classical case).
  dsl::ir::Node root =
      dsl::passes::build_timestepping("A_acoustic(t, x, y, z)", false, false);
  EXPECT_TRUE(an::verify_nest(root, acoustic4(),
                              an::ScheduleDescriptor::wavefront(2, 8))
                  .legal());
}

TEST(Legality, VerifyCanonicalMatchesHandBuiltNests) {
  const auto a = an::verify_canonical(acoustic4(), 2, true, true,
                                      an::ScheduleDescriptor::diamond(2, 8));
  const auto b = an::verify_nest(nest(2), acoustic4(),
                                 an::ScheduleDescriptor::diamond(2, 8));
  EXPECT_EQ(a.legal(), b.legal());
  EXPECT_EQ(a.dependences_checked, b.dependences_checked);
}

TEST(Legality, RequireLegalThrowsWithTheFullReport) {
  const auto r = an::verify_nest(nest(0), acoustic4(),
                                 an::ScheduleDescriptor::wavefront(2, 8));
  try {
    an::require_legal(r);
    FAIL() << "expected ScheduleLegalityError";
  } catch (const an::ScheduleLegalityError& e) {
    EXPECT_FALSE(e.report().legal());
    EXPECT_GT(e.report().errors(), 0);
    EXPECT_NE(std::string(e.what()).find("not-tileable"), std::string::npos);
  }
}

// ------------------------------------------------------- pass validation --

TEST(Passes, TimeTileRejectsNonPositiveSlope) {
  for (const int slope : {0, -1, -7}) {
    dsl::ir::Node root = nest(2);
    EXPECT_THROW(dsl::passes::time_tile(root, slope),
                 tempest::util::InvalidScheduleError)
        << "slope " << slope;
  }
  dsl::ir::Node root = nest(2);
  EXPECT_NO_THROW(dsl::passes::time_tile(root, 1));
}

// ------------------------------------------------------------ the gates --

TEST(Gates, OperatorBuildProvesFig4bAndExposesTheReports) {
  dsl::Grid g{{24, 20, 16}, 10.0};
  dsl::TimeFunction u("u", g, 4, 2);
  dsl::SparseTimeFunction s("src", sp::single_center_source({24, 20, 16}), 16);
  dsl::SparseTimeFunction d("rec", sp::receiver_line({24, 20, 16}, 4), 16);
  dsl::OperatorOptions opts;
  opts.schedule = ph::Schedule::Wavefront;
  // Construction runs the theorem: stage 0 rejected, stages 1-2 accepted.
  dsl::Operator op({acoustic_eq(u)}, {s.inject(u, dsl::param("dt2_over_m"))},
                   {d.interpolate(u)}, opts);
  EXPECT_FALSE(op.verify_stage(0).legal());
  EXPECT_TRUE(op.verify_stage(1).legal());
  EXPECT_TRUE(op.verify_stage(2).legal());
  // And at a concrete space order (radius 4), same verdicts.
  EXPECT_FALSE(op.verify_stage(0, 8).legal());
  EXPECT_TRUE(op.verify_stage(2, 8).legal());
  EXPECT_EQ(op.schedule_descriptor(8).slope, 4);
}

TEST(Gates, OperatorDescriptorFollowsTheSchedule) {
  dsl::Grid g{{24, 20, 16}, 10.0};
  dsl::TimeFunction u("u", g, 4, 2);
  dsl::OperatorOptions opts;
  opts.schedule = ph::Schedule::Diamond;
  dsl::Operator op({acoustic_eq(u)}, {}, {}, opts);
  EXPECT_EQ(op.schedule_descriptor().kind, an::SchedKind::Diamond);
  EXPECT_TRUE(op.verify_stage(2).legal());
  EXPECT_EQ(op.access_summary(6).radius, 3);
}

TEST(Gates, JitSpecVerifiedBeforeCompile) {
  tempest::codegen::KernelSpec spec;
  spec.space_order = 4;
  spec.wavefront = true;
  const auto r = tempest::codegen::verify_kernel_spec(spec);
  EXPECT_TRUE(r.legal()) << r.str();
  spec.wavefront = false;
  EXPECT_TRUE(tempest::codegen::verify_kernel_spec(spec).legal());
}

TEST(Gates, EngineVerificationCoversEveryKernelSummary) {
  // What core::engine::ScheduleExecutor asserts before a time-tiled run:
  // stage-2 nest, slope = substeps * geometric radius. Must hold for every
  // physics kernel at every even space order the kernels support.
  const int so = 4;
  const an::AccessSummary summaries[] = {
      ph::acoustic_access_summary(so), ph::tti_access_summary(so),
      ph::vti_access_summary(so), ph::elastic_access_summary(so)};
  for (const auto& k : summaries) {
    for (const bool rec : {false, true}) {
      const auto w = an::verify_canonical(
          k, 2, true, rec, an::ScheduleDescriptor::wavefront(k.radius, 8));
      EXPECT_TRUE(w.legal()) << k.kernel << ": " << w.str();
      const auto d = an::verify_canonical(
          k, 2, true, rec, an::ScheduleDescriptor::diamond(k.radius, 8));
      EXPECT_TRUE(d.legal()) << k.kernel << ": " << d.str();
    }
  }
}
