#include <gtest/gtest.h>

#include <algorithm>

#include "tempest/core/wavefront.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/grid/time_buffer.hpp"

namespace tc = tempest::core;
namespace tg = tempest::grid;

namespace {

struct Case {
  tg::Extents3 extents;
  int t_begin;
  int t_end;
  int radius;
  tc::TileSpec spec;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << c.extents << " t[" << c.t_begin << ',' << c.t_end
            << ") r=" << c.radius << " tiles(" << c.spec.tile_t << ','
            << c.spec.tile_x << ',' << c.spec.tile_y << ") blocks("
            << c.spec.block_x << ',' << c.spec.block_y << ')';
}

}  // namespace

class WavefrontSchedule : public ::testing::TestWithParam<Case> {};

TEST_P(WavefrontSchedule, IsLegalCoversEverythingOnce) {
  const Case& c = GetParam();
  const auto ops = tc::wavefront_schedule(c.extents, c.t_begin, c.t_end,
                                          /*slope=*/c.radius, c.spec);
  const std::string verdict =
      tc::validate_schedule(c.extents, c.t_begin, c.t_end, c.radius, ops);
  EXPECT_EQ(verdict, "") << GetParam();
}

TEST_P(WavefrontSchedule, LargerSlopeStillLegal) {
  // Over-skewing (slope > radius) is always safe.
  const Case& c = GetParam();
  const auto ops = tc::wavefront_schedule(c.extents, c.t_begin, c.t_end,
                                          c.radius + 2, c.spec);
  EXPECT_EQ(
      tc::validate_schedule(c.extents, c.t_begin, c.t_end, c.radius, ops),
      "");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WavefrontSchedule,
    ::testing::Values(
        Case{{12, 10, 4}, 1, 9, 1, {4, 8, 8, 4, 4}},
        Case{{12, 10, 4}, 1, 9, 2, {4, 8, 8, 4, 4}},
        Case{{16, 16, 4}, 1, 12, 2, {3, 8, 8, 8, 8}},
        Case{{16, 16, 4}, 0, 7, 4, {8, 16, 16, 4, 4}},
        Case{{7, 9, 3}, 1, 11, 2, {2, 4, 4, 2, 2}},     // odd extents
        Case{{7, 9, 3}, 1, 11, 2, {16, 64, 64, 8, 8}},  // tiles > domain
        Case{{24, 6, 3}, 1, 6, 3, {5, 6, 6, 3, 3}},
        Case{{10, 10, 2}, 1, 4, 6, {2, 8, 8, 8, 8}},    // steep slope
        Case{{10, 10, 2}, 3, 4, 2, {4, 8, 8, 4, 4}},    // single timestep
        Case{{32, 4, 2}, 1, 16, 2, {4, 8, 4, 8, 4}}));

TEST(WavefrontSchedule, UnderSkewedScheduleIsIllegal) {
  // With slope < radius the schedule must violate dependencies — this proves
  // the validator has teeth and that the slope choice is load-bearing.
  const tg::Extents3 e{16, 16, 4};
  const tc::TileSpec spec{4, 8, 8, 4, 4};
  const auto ops = tc::wavefront_schedule(e, 1, 10, /*slope=*/1, spec);
  EXPECT_NE(tc::validate_schedule(e, 1, 10, /*radius=*/2, ops), "");
}

TEST(WavefrontSchedule, ZeroSlopeEqualsUnsafeTimeTiling) {
  const tg::Extents3 e{16, 16, 4};
  const tc::TileSpec spec{4, 8, 8, 4, 4};
  const auto ops = tc::wavefront_schedule(e, 1, 10, /*slope=*/0, spec);
  EXPECT_NE(tc::validate_schedule(e, 1, 10, 1, ops), "");
}

TEST(SpaceBlockedSchedule, AlwaysLegal) {
  const tg::Extents3 e{16, 12, 4};
  const tc::TileSpec spec{4, 8, 8, 4, 4};
  const auto ops = tc::spaceblocked_schedule(e, 1, 8, spec);
  EXPECT_EQ(tc::validate_schedule(e, 1, 8, /*radius=*/4, ops), "");
}

TEST(Validator, DetectsDoubleCompute) {
  const tg::Extents3 e{4, 4, 2};
  const tc::TileSpec spec{1, 64, 64, 64, 64};
  auto ops = tc::spaceblocked_schedule(e, 1, 3, spec);
  ops.push_back(ops.front());  // recompute a block
  EXPECT_NE(tc::validate_schedule(e, 1, 3, 1, ops), "");
}

TEST(Validator, DetectsMissingPoint) {
  const tg::Extents3 e{4, 4, 2};
  const tc::TileSpec spec{1, 64, 64, 64, 64};
  auto ops = tc::spaceblocked_schedule(e, 1, 3, spec);
  ops.pop_back();
  EXPECT_NE(tc::validate_schedule(e, 1, 3, 1, ops), "");
}

TEST(Validator, DetectsReorderedTimesteps) {
  const tg::Extents3 e{4, 4, 2};
  const tc::TileSpec spec{1, 64, 64, 64, 64};
  auto ops = tc::spaceblocked_schedule(e, 1, 3, spec);
  ASSERT_EQ(ops.size(), 2u);
  std::swap(ops[0], ops[1]);
  EXPECT_NE(tc::validate_schedule(e, 1, 3, 1, ops), "");
}

TEST(Validator, DetectsPartialZCoverage) {
  const tg::Extents3 e{4, 4, 8};
  std::vector<tc::ScheduleOp> ops{{1, {{0, 4}, {0, 4}, {0, 4}}}};
  EXPECT_NE(tc::validate_schedule(e, 1, 2, 1, ops), "");
}

TEST(TileSpec, Validity) {
  EXPECT_TRUE(tc::TileSpec{}.valid());
  EXPECT_FALSE((tc::TileSpec{0, 8, 8, 4, 4}).valid());
  EXPECT_FALSE((tc::TileSpec{4, 8, 8, 4, 0}).valid());
}

namespace {

/// Generic 3-D damped-averaging "stencil" with radius 1 used to check that
/// the wavefront driver computes the exact same field as the timestep-sweep
/// baseline for an arbitrary (non-physics) kernel.
struct ToyStencil {
  tg::Extents3 e;
  tg::TimeBuffer<double> buf;

  explicit ToyStencil(tg::Extents3 extents)
      : e(extents), buf(3, extents, 1, 0.0) {
    // Deterministic non-trivial initial state in slots 0 and 1.
    for (int s : {0, 1}) {
      buf.slot(s).for_each_interior([&](int x, int y, int z) {
        buf.slot(s)(x, y, z) =
            0.01 * (x + 1) * (s + 1) + 0.02 * y - 0.005 * z * x;
      });
    }
  }

  void block(int t, const tg::Box3& b) {
    auto& un = buf.at(t + 1);
    const auto& uc = buf.at(t);
    const auto& up = buf.at(t - 1);
    for (int x = b.x.lo; x < b.x.hi; ++x) {
      for (int y = b.y.lo; y < b.y.hi; ++y) {
        for (int z = b.z.lo; z < b.z.hi; ++z) {
          un(x, y, z) =
              0.99 * uc(x, y, z) - 0.45 * up(x, y, z) +
              0.05 * (uc(x - 1, y, z) + uc(x + 1, y, z) + uc(x, y - 1, z) +
                      uc(x, y + 1, z) + uc(x, y, z - 1) + uc(x, y, z + 1));
        }
      }
    }
  }
};

}  // namespace

class WavefrontNumerics : public ::testing::TestWithParam<tc::TileSpec> {};

TEST_P(WavefrontNumerics, MatchesSpaceBlockedBitExact) {
  const tg::Extents3 e{14, 11, 6};
  const int nt = 13;

  ToyStencil base(e);
  tc::run_spaceblocked(e, 1, nt, GetParam(),
                       [&](int t, const tg::Box3& b) { base.block(t, b); });

  ToyStencil wave(e);
  tc::run_wavefront(e, 1, nt, /*slope=*/1, GetParam(),
                    [&](int t, const tg::Box3& b) { wave.block(t, b); });

  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(tg::max_abs_diff(base.buf.slot(s), wave.buf.slot(s)), 0.0)
        << "slot " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TileShapes, WavefrontNumerics,
    ::testing::Values(tc::TileSpec{1, 4, 4, 4, 4},   // degenerate: t-tile 1
                      tc::TileSpec{2, 4, 4, 2, 2},
                      tc::TileSpec{4, 8, 8, 4, 4},
                      tc::TileSpec{13, 6, 5, 3, 2},  // whole time range
                      tc::TileSpec{3, 32, 32, 8, 8},  // tiles > domain
                      tc::TileSpec{5, 4, 8, 4, 8}));
