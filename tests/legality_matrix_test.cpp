// The legality matrix: every physics kernel's declared access summary x
// every schedule family x sparse operators on/off, at every lowering stage
// the execution gates consult. One parameterised test per cell, so a
// regression in the analyzer or in a kernel's declared summary pinpoints
// the exact (kernel, schedule, sparse, stage) combination that flipped.
//
// The expected verdict is the paper's Fig. 4b: temporal blocking is
// illegal exactly for the naive (stage-0) nest with off-the-grid sparse
// operators; barrier schedules and all lowered nests are legal.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "tempest/analysis/legality.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"

namespace an = tempest::analysis;
namespace ph = tempest::physics;

namespace {

constexpr int kSpaceOrder = 4;

std::vector<an::AccessSummary> kernel_summaries() {
  return {ph::acoustic_access_summary(kSpaceOrder),
          ph::tti_access_summary(kSpaceOrder),
          ph::vti_access_summary(kSpaceOrder),
          ph::elastic_access_summary(kSpaceOrder)};
}

std::vector<an::ScheduleDescriptor> schedule_families(int slope) {
  return {an::ScheduleDescriptor::reference(),
          an::ScheduleDescriptor::space_blocked(),
          an::ScheduleDescriptor::wavefront(slope, 8),
          an::ScheduleDescriptor::fused(slope),
          an::ScheduleDescriptor::diamond(slope, 8)};
}

struct Cell {
  an::AccessSummary kernel;
  an::ScheduleDescriptor sched;
  bool sparse;
  int stage;

  [[nodiscard]] std::string name() const {
    std::string n = kernel.kernel + "_" + an::to_string(sched.kind) + "_" +
                    (sparse ? "sparse" : "dense") + "_stage" +
                    std::to_string(stage);
    for (char& ch : n) {
      if (ch == '-') ch = '_';  // gtest param names are [A-Za-z0-9_]
    }
    return n;
  }
};

std::vector<Cell> matrix() {
  std::vector<Cell> cells;
  for (const auto& k : kernel_summaries()) {
    for (const auto& sched : schedule_families(k.radius)) {
      for (const bool sparse : {false, true}) {
        for (int stage = 0; stage <= 2; ++stage) {
          cells.push_back({k, sched, sparse, stage});
        }
      }
    }
  }
  return cells;
}

class LegalityMatrix : public ::testing::TestWithParam<Cell> {};

}  // namespace

TEST_P(LegalityMatrix, VerdictMatchesFig4b) {
  const Cell& c = GetParam();
  const an::LegalityReport report = an::verify_canonical(
      c.kernel, c.stage, /*sources=*/c.sparse, /*receivers=*/c.sparse,
      c.sched);
  const bool expect_legal =
      !(c.sched.time_tiled() && c.sparse && c.stage == 0);
  EXPECT_EQ(report.legal(), expect_legal) << report.str();
  if (!expect_legal) {
    // An illegal verdict must be actionable: at least one diagnostic names
    // the off-the-grid statement that cannot be tiled.
    bool actionable = false;
    for (const auto& d : report.diagnostics) {
      if (d.code == "not-tileable" && d.src >= 0) actionable = true;
    }
    EXPECT_TRUE(actionable) << report.str();
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernelsAllSchedules, LegalityMatrix,
                         ::testing::ValuesIn(matrix()),
                         [](const ::testing::TestParamInfo<Cell>& info) {
                           return info.param.name();
                         });

// Cross-check the declared summaries against the engine's slope rule
// (slope = substeps * geometric radius): the summary radius already folds
// the substeps in, so summary.radius == substeps * (space_order / 2).
TEST(KernelSummaries, DeclaredReachMatchesTheEngineSlopeRule) {
  for (const auto& k : kernel_summaries()) {
    EXPECT_EQ(k.radius, k.substeps * (kSpaceOrder / 2)) << k.kernel;
    EXPECT_EQ(k.field, "u") << k.kernel;
    EXPECT_FALSE(k.time_reads.empty()) << k.kernel;
  }
}

// A slope just below the declared reach must flip every time-tiled verdict
// to illegal for every kernel — the boundary is sharp, not approximate.
TEST(KernelSummaries, SlopeBoundaryIsSharpForEveryKernel) {
  for (const auto& k : kernel_summaries()) {
    ASSERT_GT(k.radius, 1);
    const auto ok = an::verify_canonical(
        k, 2, true, true, an::ScheduleDescriptor::wavefront(k.radius, 8));
    EXPECT_TRUE(ok.legal()) << k.kernel << ": " << ok.str();
    const auto bad = an::verify_canonical(
        k, 2, true, true,
        an::ScheduleDescriptor::wavefront(k.radius - 1, 8));
    EXPECT_FALSE(bad.legal()) << k.kernel;
  }
}
