// Randomized property suite: invariants of the core machinery under
// generated inputs (seeded SplitMix64, fully deterministic).
//
// Seeds are never drawn from the wall clock: the per-case seeds are a
// SplitMix64 stream keyed by TEMPEST_PROPERTY_SEED (fixed default) xor'd
// with GTEST_SHARD_INDEX, so every run — local, sharded CI, or a replay of
// a failure — regenerates the same inputs. Each test prints its seed via
// SCOPED_TRACE, so a failing case can be replayed with
//   TEMPEST_PROPERTY_SEED=<seed> ctest -R property

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "tempest/core/compress.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/core/wavefront.hpp"
#include "tempest/sparse/interp.hpp"
#include "tempest/sparse/series.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/rng.hpp"

namespace tc = tempest::core;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace tu = tempest::util;
using tempest::real_t;

namespace {

// Environment knob parsed once; 0 is a valid SplitMix64 key.
std::uint64_t base_seed() {
  constexpr std::uint64_t kDefault = 20210614u;
  const char* env = std::getenv("TEMPEST_PROPERTY_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return kDefault;
}

std::uint64_t shard_index() {
  const char* env = std::getenv("GTEST_SHARD_INDEX");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 0;
}

// Five seeds per run: the key itself first — so replaying a reported
// seed via TEMPEST_PROPERTY_SEED reproduces that exact case — then four
// more drawn from a SplitMix64 stream keyed by the env/shard pair.
std::vector<std::uint64_t> derived_seeds() {
  const std::uint64_t key = base_seed();
  tu::SplitMix64 stream(key ^ (shard_index() * 0x9e3779b97f4a7c15ull));
  std::vector<std::uint64_t> seeds{key};
  for (int i = 0; i < 4; ++i) seeds.push_back(stream.next());
  return seeds;
}

}  // namespace

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Every assertion below inherits this trace, so a failure report always
  // carries the exact seed needed to replay the generated inputs.
  void SetUp() override {
    trace_ = std::make_unique<::testing::ScopedTrace>(
        __FILE__, __LINE__,
        ::testing::Message() << "seed=" << GetParam()
                             << " (replay: TEMPEST_PROPERTY_SEED="
                             << GetParam() << ")");
  }
  void TearDown() override { trace_.reset(); }

 private:
  std::unique_ptr<::testing::ScopedTrace> trace_;
};

TEST_P(SeededProperty, RandomWavefrontSchedulesAreLegal) {
  tu::SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const tg::Extents3 e{static_cast<int>(4 + rng.below(20)),
                         static_cast<int>(4 + rng.below(20)),
                         static_cast<int>(2 + rng.below(6))};
    const int radius = static_cast<int>(1 + rng.below(4));
    const int t_begin = static_cast<int>(rng.below(3));
    const int t_end = t_begin + 1 + static_cast<int>(rng.below(12));
    const tc::TileSpec spec{
        static_cast<int>(1 + rng.below(10)),
        static_cast<int>(2 + rng.below(30)),
        static_cast<int>(2 + rng.below(30)),
        static_cast<int>(1 + rng.below(12)),
        static_cast<int>(1 + rng.below(12)),
    };
    const int slope = radius + static_cast<int>(rng.below(2));  // >= radius
    const auto ops = tc::wavefront_schedule(e, t_begin, t_end, slope, spec);
    const std::string verdict =
        tc::validate_schedule(e, t_begin, t_end, radius, ops);
    ASSERT_EQ(verdict, "")
        << "extents=" << e << " radius=" << radius << " slope=" << slope
        << " tiles=(" << spec.tile_t << ',' << spec.tile_x << ','
        << spec.tile_y << ',' << spec.block_x << ',' << spec.block_y << ")"
        << " t=[" << t_begin << ',' << t_end << ")";
  }
}

TEST_P(SeededProperty, CompressionRoundTripsRandomMasks) {
  tu::SplitMix64 rng(GetParam());
  const tg::Extents3 e{12, 11, 10};
  for (int trial = 0; trial < 4; ++trial) {
    // Random binary mask with ~15% density, ids in traversal order.
    tg::Grid3<unsigned char> sm(e, 0, 0);
    tg::Grid3<int> sid(e, 0, -1);
    int next = 0;
    sm.for_each_interior([&](int x, int y, int z) {
      if (rng.uniform() < 0.15) {
        sm(x, y, z) = 1;
        sid(x, y, z) = next++;
      }
    });
    const tc::CompressedSparse cs(sm, sid);
    EXPECT_EQ(cs.total_entries(), next);

    // Reconstruct the mask from the compressed form: exact round trip.
    tg::Grid3<unsigned char> rebuilt(e, 0, 0);
    int max_nnz = 0;
    for (int x = 0; x < e.nx; ++x) {
      for (int y = 0; y < e.ny; ++y) {
        max_nnz = std::max(max_nnz, cs.nnz(x, y));
        for (const auto& entry : cs.entries(x, y)) {
          rebuilt(x, y, entry.z) = 1;
          EXPECT_EQ(sid(x, y, entry.z), entry.id);
        }
      }
    }
    EXPECT_EQ(max_nnz, cs.max_nnz());
    sm.for_each_interior([&](int x, int y, int z) {
      EXPECT_EQ(sm(x, y, z), rebuilt(x, y, z));
    });
  }
}

TEST_P(SeededProperty, DecompositionIsLinearInTheWavelet) {
  tu::SplitMix64 rng(GetParam());
  const tg::Extents3 e{16, 16, 16};
  const int nt = 6;
  sp::CoordList coords;
  for (int s = 0; s < 5; ++s) {
    coords.push_back({rng.uniform(2, 13), rng.uniform(2, 13),
                      rng.uniform(2, 13)});
  }
  sp::SparseTimeSeries a(coords, nt), b(coords, nt), ab(coords, nt);
  for (int t = 0; t < nt; ++t) {
    for (int s = 0; s < 5; ++s) {
      a.at(t, s) = static_cast<real_t>(rng.uniform(-1, 1));
      b.at(t, s) = static_cast<real_t>(rng.uniform(-1, 1));
      ab.at(t, s) = a.at(t, s) + b.at(t, s);
    }
  }
  const auto masks = tc::build_source_masks(e, a, sp::InterpKind::Trilinear);
  const auto da = tc::decompose_sources(masks, a, sp::InterpKind::Trilinear);
  const auto db = tc::decompose_sources(masks, b, sp::InterpKind::Trilinear);
  const auto dab =
      tc::decompose_sources(masks, ab, sp::InterpKind::Trilinear);
  for (int t = 0; t < nt; ++t) {
    for (int id = 0; id < masks.npts; ++id) {
      EXPECT_NEAR(dab.at(t, id), da.at(t, id) + db.at(t, id), 1e-5);
    }
  }
}

TEST_P(SeededProperty, MasksDependOnlyOnGeometry) {
  // The probe uses unit amplitudes, so two source sets with identical
  // coordinates but different wavelets share masks exactly.
  tu::SplitMix64 rng(GetParam());
  const tg::Extents3 e{16, 16, 16};
  sp::CoordList coords{{rng.uniform(2, 13), rng.uniform(2, 13),
                        rng.uniform(2, 13)},
                       {rng.uniform(2, 13), rng.uniform(2, 13),
                        rng.uniform(2, 13)}};
  sp::SparseTimeSeries a(coords, 4), b(coords, 4);
  for (int t = 0; t < 4; ++t) {
    for (int s = 0; s < 2; ++s) {
      a.at(t, s) = static_cast<real_t>(rng.uniform(-2, 2));
      b.at(t, s) = static_cast<real_t>(rng.uniform(-2, 2));
    }
  }
  const auto ma = tc::build_source_masks(e, a, sp::InterpKind::Trilinear);
  const auto mb = tc::build_source_masks(e, b, sp::InterpKind::Trilinear);
  ASSERT_EQ(ma.npts, mb.npts);
  ma.sid.for_each_interior([&](int x, int y, int z) {
    EXPECT_EQ(ma.sid(x, y, z), mb.sid(x, y, z));
  });
}

TEST_P(SeededProperty, InterpolationPartitionOfUnityEverywhere) {
  tu::SplitMix64 rng(GetParam());
  const tg::Extents3 e{24, 24, 24};
  for (int trial = 0; trial < 24; ++trial) {
    const sp::Coord3 c{rng.uniform(3, 20), rng.uniform(3, 20),
                       rng.uniform(3, 20)};
    for (auto kind :
         {sp::InterpKind::Trilinear, sp::InterpKind::WindowedSinc}) {
      double sum = 0.0;
      for (const auto& p : sp::support(c, kind, e)) sum += p.w;
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST_P(SeededProperty, FornbergWeightsDifferentiateRandomPolynomials) {
  // For any offsets set of size n, the weights must differentiate every
  // polynomial of degree < n exactly.
  tu::SplitMix64 rng(GetParam());
  for (int deriv : {1, 2}) {
    std::vector<double> offsets;
    const int n = 5 + static_cast<int>(rng.below(4));
    for (int i = 0; i < n; ++i) {
      double o;
      bool fresh;
      do {
        o = rng.uniform(-4, 4);
        fresh = true;
        for (double prev : offsets) fresh = fresh && std::fabs(prev - o) > 0.05;
      } while (!fresh);
      offsets.push_back(o);
    }
    const auto c = tempest::stencil::for_offsets(deriv, offsets);
    // p(x) = sum_k a_k x^k with random coefficients, degree n-1.
    std::vector<double> coef(static_cast<std::size_t>(n));
    for (double& a : coef) a = rng.uniform(-1, 1);
    auto p = [&](double x) {
      double acc = 0.0, pw = 1.0;
      for (double a : coef) {
        acc += a * pw;
        pw *= x;
      }
      return acc;
    };
    auto dp = [&](double x) {  // analytic derivative of order `deriv` at x
      double acc = 0.0;
      for (int k = deriv; k < n; ++k) {
        double f = 1.0;
        for (int j = 0; j < deriv; ++j) f *= (k - j);
        acc += coef[static_cast<std::size_t>(k)] * f *
               std::pow(x, k - deriv);
      }
      return acc;
    };
    double fd = 0.0;
    for (int i = 0; i < n; ++i) {
      fd += c.weights[static_cast<std::size_t>(i)] *
            p(c.offsets[static_cast<std::size_t>(i)]);
    }
    EXPECT_NEAR(fd, dp(0.0), 1e-6 * (1.0 + std::fabs(dp(0.0))))
        << "deriv=" << deriv << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::ValuesIn(derived_seeds()));
