#include <gtest/gtest.h>

#include <cmath>

#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace tc = tempest::core;
using tempest::real_t;

namespace {

constexpr tg::Extents3 kE{20, 18, 16};

ph::TTIModel make_vti_model(int so) {
  ph::Geometry g{kE, 20.0, so, 4};
  ph::TTIModel m = ph::make_tti_layered(g, 1.5, 3.0, 3);
  m.theta.fill(0.0f);  // untilted: a genuine VTI medium
  m.phi.fill(0.0f);
  return m;
}

sp::SparseTimeSeries make_src(double dt, int nt) {
  sp::SparseTimeSeries src(sp::single_center_source(kE, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, dt, 0.012));
  return src;
}

}  // namespace

TEST(VTI, RejectsTiltedModels) {
  ph::Geometry g{kE, 20.0, 4, 4};
  const ph::TTIModel tilted = ph::make_tti_layered(g, 1.5, 3.0, 3);
  EXPECT_THROW(ph::VTIPropagator p(tilted), tempest::util::PreconditionError);
}

TEST(VTI, MatchesTTIOnUntiltedModel) {
  // The dedicated VTI kernel and the general TTI kernel evaluated at zero
  // tilt are two implementations of the same operator.
  const auto model = make_vti_model(4);
  const int nt = 16;
  ph::PropagatorOptions opts;
  opts.dt = model.critical_dt();
  const auto src = make_src(opts.dt, nt);

  ph::VTIPropagator vti(model, opts);
  vti.run(ph::Schedule::SpaceBlocked, src, nullptr);
  ph::TTIPropagator tti(model, opts);
  tti.run(ph::Schedule::SpaceBlocked, src, nullptr);

  const double pmax = tg::max_abs(tti.wavefield_p(nt));
  ASSERT_GT(pmax, 0.0);
  // Different evaluation orders (TTI computes Hz via the dyad; VTI
  // directly), so rounding-level tolerance.
  EXPECT_LT(tg::max_abs_diff(vti.wavefield_p(nt), tti.wavefield_p(nt)),
            2e-4 * pmax);
  EXPECT_LT(tg::max_abs_diff(vti.wavefield_q(nt), tti.wavefield_q(nt)),
            2e-4 * pmax);
}

class VTISchedule : public ::testing::TestWithParam<int> {};

TEST_P(VTISchedule, WavefrontMatchesBaselineAcrossOrders) {
  const int so = GetParam();
  const auto model = make_vti_model(so);
  const int nt = 14;
  const auto src = make_src(model.critical_dt(), nt);

  ph::VTIPropagator base(model);
  base.run(ph::Schedule::SpaceBlocked, src, nullptr);
  const auto p_base = base.wavefield_p(nt);

  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{4, 8, 8, 4, 4};
  ph::VTIPropagator wave(model, opts);
  wave.run(ph::Schedule::Wavefront, src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(p_base, wave.wavefield_p(nt)), 0.0);
  EXPECT_GT(tg::max_abs(wave.wavefield_p(nt)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Orders, VTISchedule, ::testing::Values(2, 4, 8, 12));

TEST(VTI, ReferenceMatchesSpaceBlocked) {
  const auto model = make_vti_model(4);
  const int nt = 12;
  const auto src = make_src(model.critical_dt(), nt);
  ph::VTIPropagator a(model);
  a.run(ph::Schedule::Reference, src, nullptr);
  const auto p_ref = a.wavefield_p(nt);
  ph::VTIPropagator b(model);
  b.run(ph::Schedule::SpaceBlocked, src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(p_ref, b.wavefield_p(nt)), 0.0);
}

TEST(VTI, ReceiversRecordAndSchedulesAgree) {
  const auto model = make_vti_model(4);
  const int nt = 30;
  const auto src = make_src(model.critical_dt(), nt);
  sp::SparseTimeSeries rec_base(sp::receiver_line(kE, 4, 0.2, 4), nt);
  sp::SparseTimeSeries rec_wave = rec_base;

  ph::VTIPropagator prop(model);
  prop.run(ph::Schedule::SpaceBlocked, src, &rec_base);
  prop.run(ph::Schedule::Wavefront, src, &rec_wave);

  double scale = 1e-20;
  for (int t = 0; t < nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      scale = std::max(scale,
                       std::fabs(static_cast<double>(rec_base.at(t, r))));
  EXPECT_GT(scale, 1e-12);  // the wave reached the line
  for (int t = 0; t < nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      EXPECT_NEAR(rec_wave.at(t, r), rec_base.at(t, r), 1e-5 * scale);
}

TEST(VTI, StableOverManySteps) {
  const auto model = make_vti_model(4);
  const int nt = 120;
  const auto src = make_src(model.critical_dt(), nt);
  ph::VTIPropagator p(model);
  p.run(ph::Schedule::Wavefront, src, nullptr);
  const double m = tg::max_abs(p.wavefield_p(nt));
  EXPECT_TRUE(std::isfinite(m));
  EXPECT_LT(m, 1e3);
}
