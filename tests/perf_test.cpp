#include <gtest/gtest.h>

#include <sstream>

#include "tempest/perf/calibrate.hpp"
#include "tempest/perf/metrics.hpp"
#include "tempest/perf/roofline.hpp"
#include "tempest/util/error.hpp"

namespace pf = tempest::perf;

TEST(Metrics, FlopCountsOrderedByKernelCost) {
  for (int so : {4, 8, 12}) {
    const double ac = pf::acoustic_flops_per_point(so);
    const double el = pf::elastic_flops_per_point(so);
    const double tti = pf::tti_flops_per_point(so);
    EXPECT_GT(ac, 0.0);
    // The paper's operational-intensity ordering: TTI >> elastic > acoustic.
    EXPECT_GT(el, ac) << "so=" << so;
    EXPECT_GT(tti, el) << "so=" << so;
  }
}

TEST(Metrics, FlopsGrowWithOrder) {
  EXPECT_GT(pf::acoustic_flops_per_point(8), pf::acoustic_flops_per_point(4));
  EXPECT_GT(pf::tti_flops_per_point(12), pf::tti_flops_per_point(4));
  EXPECT_GT(pf::elastic_flops_per_point(12), pf::elastic_flops_per_point(8));
}

TEST(Metrics, ThroughputHelpers) {
  EXPECT_DOUBLE_EQ(pf::gpoints_per_s(2'000'000'000ll, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(pf::gpoints_per_s(1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(pf::gflops(1'000'000'000ll, 50.0, 10.0), 5.0);
}

TEST(Metrics, StreamBytesSaneOrdering) {
  EXPECT_LT(pf::acoustic_stream_bytes_per_point(),
            pf::tti_stream_bytes_per_point());
  EXPECT_LT(pf::tti_stream_bytes_per_point(),
            pf::elastic_stream_bytes_per_point());
}

TEST(Metrics, FlopsPerPointByName) {
  EXPECT_DOUBLE_EQ(pf::flops_per_point("acoustic", 8),
                   pf::acoustic_flops_per_point(8));
  EXPECT_DOUBLE_EQ(pf::flops_per_point("tti", 8),
                   pf::tti_flops_per_point(8));
  EXPECT_DOUBLE_EQ(pf::flops_per_point("elastic", 8),
                   pf::elastic_flops_per_point(8));
  EXPECT_THROW((void)pf::flops_per_point("nope", 8),
               tempest::util::PreconditionError);
}

TEST(Calibrate, MicrokernelsProducePositiveNumbers) {
  // Quick mode: noisy, but every number must be positive and finite.
  const double bw = pf::triad_bandwidth_gbps(1 << 20, 2);
  EXPECT_GT(bw, 0.01);
  const double peak = pf::fma_peak_gflops(2);
  EXPECT_GT(peak, 0.1);
}

TEST(Roofline, AttainableIsMinOfRoofs) {
  pf::MachineCeilings m;
  m.peak_gflops = 100.0;
  m.l1_gbps = 400.0;
  m.l2_gbps = 200.0;
  m.l3_gbps = 100.0;
  m.dram_gbps = 20.0;
  pf::Roofline r(m);
  EXPECT_DOUBLE_EQ(r.attainable_dram(1.0), 20.0);   // bandwidth-bound
  EXPECT_DOUBLE_EQ(r.attainable_dram(10.0), 100.0);  // compute-bound
  EXPECT_DOUBLE_EQ(r.attainable_l3(0.5), 50.0);
  EXPECT_DOUBLE_EQ(r.attainable_l1(0.1), 40.0);
  EXPECT_DOUBLE_EQ(r.dram_ridge(), 5.0);
}

TEST(Roofline, PrintIncludesPointsAndCeilings) {
  pf::MachineCeilings m;
  m.peak_gflops = 100.0;
  m.l1_gbps = 400.0;
  m.l2_gbps = 200.0;
  m.l3_gbps = 100.0;
  m.dram_gbps = 20.0;
  pf::Roofline r(m);
  r.add_point({"acoustic-so4-wavefront", 1.5, 25.0});
  std::ostringstream os;
  r.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("DRAM"), std::string::npos);
  EXPECT_NE(text.find("acoustic-so4-wavefront"), std::string::npos);
  EXPECT_NE(text.find("ridge"), std::string::npos);
}
