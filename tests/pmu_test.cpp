// tempest::perf::pmu — the perf_event_open backend and everything layered
// on it: degradation paths (simulated EACCES/ENOSYS via the injectable
// syscall shim), real-path monotonicity, span enrichment into the trace
// sinks (v2 schema on, byte-identical v1 off), the derived-rate and
// model-vs-measured validation math, calibration caching, and the
// streaming JSON writer the machine-readable sinks share.

#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tempest/perf/calibrate.hpp"
#include "tempest/perf/pmu.hpp"
#include "tempest/perf/report.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/json.hpp"

namespace pmu = tempest::perf::pmu;
namespace pf = tempest::perf;
namespace trace = tempest::trace;

namespace {

long deny_eacces(void*, int, int, int, unsigned long) {
  errno = EACCES;
  return -1;
}

long deny_enosys(void*, int, int, int, unsigned long) {
  errno = ENOSYS;
  return -1;
}

/// Restores the real syscall and re-probes, whatever the test did.
struct HookGuard {
  ~HookGuard() {
    pmu::set_open_hook_for_testing(nullptr);
    pmu::reset_for_testing();
  }
};

}  // namespace

// --- degradation paths ----------------------------------------------------

TEST(PmuDegraded, EaccesReportsReasonAndZeroedSamples) {
  HookGuard guard;
  pmu::set_open_hook_for_testing(&deny_eacces);
  pmu::reset_for_testing();

  const pmu::Availability& avail = pmu::availability();
  EXPECT_FALSE(avail.any);
  EXPECT_FALSE(avail.hardware);
  EXPECT_NE(avail.reason.find("EACCES"), std::string::npos) << avail.reason;

  const pmu::CounterGroup group;
  EXPECT_FALSE(group.any_open());
  const pmu::Sample s = group.read();
  EXPECT_EQ(s.valid_mask, 0u);
  EXPECT_FALSE(s.any());
  for (int i = 0; i < pmu::kNumEvents; ++i) {
    EXPECT_EQ(s.value[static_cast<std::size_t>(i)], 0);
  }

  // RAII regions stay safe: zeroed-but-flagged deltas, no crash.
  const pmu::PmuRegion region;
  const pmu::Sample d = region.delta();
  EXPECT_EQ(d.valid_mask, 0u);
}

TEST(PmuDegraded, EnosysReportsReason) {
  HookGuard guard;
  pmu::set_open_hook_for_testing(&deny_enosys);
  pmu::reset_for_testing();

  const pmu::Availability& avail = pmu::availability();
  EXPECT_FALSE(avail.any);
  EXPECT_NE(avail.reason.find("ENOSYS"), std::string::npos) << avail.reason;
}

// --- real path ------------------------------------------------------------

TEST(PmuReal, ReadsAreMonotonicAndDeltasNonNegative) {
  HookGuard guard;  // other tests may have left a hook installed
  pmu::set_open_hook_for_testing(nullptr);
  pmu::reset_for_testing();

  const pmu::CounterGroup group;
  if (!group.any_open()) {
    GTEST_SKIP() << "no counters at all on this machine: "
                 << pmu::availability().reason;
  }
  const pmu::Sample a = group.read();
  // Burn some user time so software counters (task-clock) advance.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1e-9 * i;
  const pmu::Sample b = group.read();

  EXPECT_EQ(a.valid_mask, group.open_mask());
  EXPECT_EQ(b.valid_mask, group.open_mask());
  for (int i = 0; i < pmu::kNumEvents; ++i) {
    const auto e = static_cast<pmu::Event>(i);
    if (!a.valid(e)) continue;
    EXPECT_GE(a[e], 0) << pmu::to_string(e);
    EXPECT_GE(b[e], a[e]) << pmu::to_string(e) << " went backwards";
  }
  const pmu::Sample d = b - a;
  for (int i = 0; i < pmu::kNumEvents; ++i) {
    const auto e = static_cast<pmu::Event>(i);
    if (d.valid(e)) EXPECT_GE(d[e], 0) << pmu::to_string(e);
  }
}

TEST(PmuReal, RegionsNestFreely) {
  HookGuard guard;
  pmu::set_open_hook_for_testing(nullptr);
  pmu::reset_for_testing();
  if (!pmu::availability().any) {
    GTEST_SKIP() << "PMU unavailable: " << pmu::availability().reason;
  }

  const pmu::PmuRegion outer;
  volatile double sink = 0.0;
  {
    const pmu::PmuRegion inner;
    for (int i = 0; i < 500000; ++i) sink = sink + 1e-9 * i;
    const pmu::Sample di = inner.delta();
    const pmu::Sample douter = outer.delta();
    for (int i = 0; i < pmu::kNumEvents; ++i) {
      const auto e = static_cast<pmu::Event>(i);
      if (!di.valid(e)) continue;
      // The inner window is a sub-interval of the outer one.
      EXPECT_LE(di[e], douter[e]) << pmu::to_string(e);
    }
  }
}

// --- Sample arithmetic and derived quantities -----------------------------

TEST(PmuSample, DifferenceIntersectsValidityAndClamps) {
  pmu::Sample a, b;
  a.valid_mask = 0b011;  // cycles + instructions
  b.valid_mask = 0b110;  // instructions + stalled
  a.value[0] = 100;
  a.value[1] = 50;
  b.value[1] = 80;  // bigger than a: clamp to 0, not negative
  b.value[2] = 7;
  const pmu::Sample d = a - b;
  EXPECT_EQ(d.valid_mask, 0b010u);
  EXPECT_EQ(d[pmu::Event::Instructions], 0);  // clamped
  EXPECT_EQ(d[pmu::Event::Cycles], 0);        // invalid slots zeroed
}

TEST(PmuSample, DerivedRatiosAndTraffic) {
  pmu::Sample s;
  auto set = [&](pmu::Event e, long long v) {
    s.value[static_cast<std::size_t>(e)] = v;
    s.valid_mask |= 1u << static_cast<int>(e);
  };
  set(pmu::Event::Cycles, 1000);
  set(pmu::Event::Instructions, 2500);
  set(pmu::Event::L1dLoads, 800);
  set(pmu::Event::L1dMisses, 80);
  set(pmu::Event::LlcLoads, 100);
  set(pmu::Event::LlcMisses, 25);
  EXPECT_DOUBLE_EQ(s.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(s.l1d_miss_ratio(), 0.1);
  EXPECT_DOUBLE_EQ(s.llc_miss_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(s.l2_bytes(), 80.0 * 64);
  EXPECT_DOUBLE_EQ(s.dram_bytes(), 25.0 * 64);
  EXPECT_TRUE(s.hardware());

  const pmu::Sample empty;
  EXPECT_DOUBLE_EQ(empty.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(empty.dram_bytes(), 0.0);
  EXPECT_FALSE(empty.hardware());
}

TEST(PmuSample, SoftwareOnlyIsNotHardware) {
  pmu::Sample s;
  s.valid_mask = (1u << static_cast<int>(pmu::Event::TaskClock)) |
                 (1u << static_cast<int>(pmu::Event::PageFaults));
  EXPECT_TRUE(s.any());
  EXPECT_FALSE(s.hardware());
}

// --- span enrichment ------------------------------------------------------

#if !defined(TEMPEST_TRACE_DISABLED)

TEST(PmuSpans, EnrichmentAttachesSlotsToEvents) {
  HookGuard guard;
  pmu::set_open_hook_for_testing(nullptr);
  pmu::reset_for_testing();
  if (!pmu::availability().any) {
    GTEST_SKIP() << "PMU unavailable: " << pmu::availability().reason;
  }

  trace::set_enabled(true);
  trace::reset();
  pmu::enable_span_enrichment();
  EXPECT_TRUE(pmu::span_enrichment_enabled());
  {
    TEMPEST_TRACE_SPAN("pmu_test.enriched", "test");
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1e-9 * i;
  }
  pmu::disable_span_enrichment();
  EXPECT_FALSE(pmu::span_enrichment_enabled());

  const auto events = trace::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].n_slots, pmu::kNumEvents);
  ASSERT_NE(events[0].slot_names, nullptr);
  EXPECT_STREQ(events[0].slot_names[0], "cycles");
  for (int i = 0; i < events[0].n_slots; ++i) {
    EXPECT_GE(events[0].slots[static_cast<std::size_t>(i)], 0);
  }

  // The sinks speak schema v2 for enriched runs...
  std::ostringstream json;
  trace::write_metrics_json(json);
  EXPECT_NE(json.str().find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.str().find("\"pmu\":"), std::string::npos);
  std::ostringstream csv;
  trace::write_metrics_csv(csv);
  EXPECT_NE(csv.str().find("schema,version,2"), std::string::npos);
  EXPECT_NE(csv.str().find("span_pmu_"), std::string::npos);

  std::ostringstream chrome;
  trace::write_chrome_trace(chrome);
  EXPECT_NE(chrome.str().find("\"args\""), std::string::npos);

  trace::set_enabled(false);
  trace::reset();
}

TEST(PmuSpans, OutputUnchangedWhenEnrichmentOff) {
  // PR 2's golden trace_test pins the exact v1 bytes; this guards the
  // gate from this side: no enrichment => no v2 markers at all.
  trace::set_enabled(true);
  trace::reset();
  {
    TEMPEST_TRACE_SPAN("pmu_test.plain", "test");
  }
  const auto events = trace::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].n_slots, 0);

  std::ostringstream json;
  trace::write_metrics_json(json);
  // The v1 byte stream begins with the counters object, no schema marker.
  EXPECT_EQ(json.str().rfind("{\"counters\":{", 0), 0u) << json.str();
  EXPECT_EQ(json.str().find("schema_version"), std::string::npos);
  EXPECT_EQ(json.str().find("\"pmu\":"), std::string::npos);
  std::ostringstream csv;
  trace::write_metrics_csv(csv);
  EXPECT_EQ(csv.str().find("schema"), std::string::npos);
  EXPECT_EQ(csv.str().find("span_pmu_"), std::string::npos);

  trace::set_enabled(false);
  trace::reset();
}

#endif  // !TEMPEST_TRACE_DISABLED

// --- report: derived rates + model-vs-measured validation -----------------

TEST(Report, DeriveRatesModelOnlyWithoutHardware) {
  const pmu::Sample none;
  const pf::DerivedRates r = pf::derive_rates(1'000'000'000ll, 50.0, 10.0,
                                              none);
  EXPECT_DOUBLE_EQ(r.model_gflops, 5.0);
  EXPECT_DOUBLE_EQ(r.measured_dram_gbps, 0.0);
  EXPECT_DOUBLE_EQ(r.measured_ai, 0.0);
  EXPECT_FALSE(r.pmu_hardware);
}

TEST(Report, DeriveRatesWithMeasuredTraffic) {
  pmu::Sample s;
  auto set = [&](pmu::Event e, long long v) {
    s.value[static_cast<std::size_t>(e)] = v;
    s.valid_mask |= 1u << static_cast<int>(e);
  };
  set(pmu::Event::Cycles, 1000);
  set(pmu::Event::Instructions, 3000);
  set(pmu::Event::L1dMisses, 2000);
  set(pmu::Event::LlcMisses, 1000);
  // 1e9 updates x 10 flops in 2 s; 1000 LLC misses x 64 B = 64 kB DRAM.
  const pf::DerivedRates r = pf::derive_rates(1'000'000'000ll, 10.0, 2.0, s);
  EXPECT_DOUBLE_EQ(r.model_gflops, 5.0);
  EXPECT_DOUBLE_EQ(r.measured_dram_gbps, 64000.0 / 2.0 / 1e9);
  EXPECT_DOUBLE_EQ(r.measured_l2_gbps, 128000.0 / 2.0 / 1e9);
  EXPECT_DOUBLE_EQ(r.measured_ai, 1e10 / 64000.0);
  EXPECT_DOUBLE_EQ(r.ipc, 3.0);
  EXPECT_TRUE(r.pmu_hardware);
}

TEST(Report, ValidateTrafficVerdicts) {
  using pf::Verdict;
  // Agreement within 2x in either direction: Pass.
  EXPECT_EQ(pf::validate_traffic("a", 100.0, 150.0, true).verdict,
            Verdict::Pass);
  EXPECT_EQ(pf::validate_traffic("b", 150.0, 100.0, true).verdict,
            Verdict::Pass);
  // Between 2x and 8x: Warn, both directions.
  EXPECT_EQ(pf::validate_traffic("c", 100.0, 300.0, true).verdict,
            Verdict::Warn);
  EXPECT_EQ(pf::validate_traffic("d", 300.0, 100.0, true).verdict,
            Verdict::Warn);
  // Beyond 8x: Fail.
  EXPECT_EQ(pf::validate_traffic("e", 100.0, 1000.0, true).verdict,
            Verdict::Fail);
  // Valid PMU but zero measured against real predicted traffic: Fail
  // (the counters plainly missed the workload).
  EXPECT_EQ(pf::validate_traffic("f", 1000.0, 0.0, true).verdict,
            Verdict::Fail);
  // No measurement: Unavailable, never Fail.
  EXPECT_EQ(pf::validate_traffic("g", 1000.0, 0.0, false).verdict,
            Verdict::Unavailable);
  EXPECT_STREQ(pf::to_string(Verdict::Pass), "pass");
  EXPECT_STREQ(pf::to_string(Verdict::Unavailable), "unavailable");

  const pf::TrafficValidation v = pf::validate_traffic("h", 100.0, 50.0,
                                                       true);
  EXPECT_DOUBLE_EQ(v.ratio, 0.5);
  EXPECT_EQ(v.name, "h");
}

// --- cachesim vs measured smoke test --------------------------------------

TEST(Validation, CachesimVsMeasuredSmoke) {
  if (!pmu::availability().hardware) {
    GTEST_SKIP() << "hardware PMU unavailable ("
                 << pmu::availability().reason
                 << "): model-vs-measured comparison has nothing to "
                    "compare against";
  }
  // Stream over a buffer far larger than any LLC: nearly every line is a
  // compulsory miss, so measured DRAM traffic must be within tolerance of
  // the streamed bytes.
  constexpr std::size_t kBytes = 64ull * 1024 * 1024;
  std::vector<char> buf(kBytes, 1);
  const pmu::PmuRegion region;
  long long sum = 0;
  for (std::size_t i = 0; i < kBytes; i += 64) sum += buf[i];
  const pmu::Sample d = region.delta();
  ASSERT_TRUE(d.valid(pmu::Event::LlcMisses));
  const pf::TrafficValidation v = pf::validate_traffic(
      "stream/dram", static_cast<double>(kBytes), d.dram_bytes(), true,
      /*warn_ratio=*/4.0, /*fail_ratio=*/16.0);
  EXPECT_NE(v.verdict, pf::Verdict::Fail)
      << "measured " << v.measured_bytes << " B vs streamed "
      << v.predicted_bytes << " B (ratio " << v.ratio << ")";
  (void)sum;
}

// --- calibration caching --------------------------------------------------

TEST(CalibrateCache, HitsOnMatchingFingerprintMissesOnMismatch) {
  const std::string path = "pmu_test_ceilings.json";
  std::remove(path.c_str());

  // Fabricate a cache with sentinel ceilings under the *real* fingerprint:
  // load_or_calibrate must serve it verbatim, proving no recalibration.
  auto write_cache = [&](const std::string& fp, int quick) {
    std::ofstream out(path);
    tempest::util::JsonWriter w(out);
    w.begin_object();
    w.field("schema", "tempest-ceilings-v1");
    w.field("fingerprint", fp);
    w.field("quick", quick);
    w.field("peak_gflops", 123.5);
    w.field("l1_gbps", 101.0);
    w.field("l2_gbps", 102.0);
    w.field("l3_gbps", 103.0);
    w.field("dram_gbps", 104.0);
    w.end_object();
  };

  write_cache(pf::host_fingerprint(), /*quick=*/0);
  const pf::MachineCeilings hit =
      pf::load_or_calibrate(/*quick=*/true, /*force=*/false, path);
  EXPECT_DOUBLE_EQ(hit.peak_gflops, 123.5);
  EXPECT_DOUBLE_EQ(hit.dram_gbps, 104.0);

  // A full-precision cache also serves a quick request, but a quick cache
  // must not serve a full request — covered by the flag logic; here we
  // exercise the cheap-side: fingerprint mismatch forces recalibration
  // and rewrites the file under the real fingerprint.
  write_cache("some other machine | cpus=64 | omp=64", /*quick=*/0);
  const pf::MachineCeilings miss =
      pf::load_or_calibrate(/*quick=*/true, /*force=*/false, path);
  EXPECT_GT(miss.peak_gflops, 0.0);
  EXPECT_NE(miss.peak_gflops, 123.5);

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find(pf::host_fingerprint()), std::string::npos);
  EXPECT_EQ(ss.str().find("some other machine"), std::string::npos);

  // And the rewritten cache now hits.
  const pf::MachineCeilings hit2 =
      pf::load_or_calibrate(/*quick=*/true, /*force=*/false, path);
  EXPECT_DOUBLE_EQ(hit2.peak_gflops, miss.peak_gflops);

  std::remove(path.c_str());
}

// --- JsonWriter -----------------------------------------------------------

TEST(JsonWriter, StructureEscapingAndNonFinite) {
  std::ostringstream os;
  {
    tempest::util::JsonWriter w(os);
    w.begin_object();
    w.field("s", "a\"b\\c\nd");
    w.field("i", 42);
    w.field("b", true);
    w.field("nan", std::nan(""));
    w.key("arr");
    w.begin_array();
    w.value(1.5);
    w.null();
    w.end_array();
    w.key("empty");
    w.begin_object();
    w.end_object();
    w.end_object();
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("\"s\": \"a\\\"b\\\\c\\nd\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"i\": 42"), std::string::npos);
  EXPECT_NE(out.find("\"b\": true"), std::string::npos);
  EXPECT_NE(out.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);

  // Must parse: balanced braces/brackets (cheap structural check without
  // a parser dependency).
  int depth = 0;
  bool in_str = false, esc = false;
  for (const char c : out) {
    if (esc) { esc = false; continue; }
    if (in_str) {
      if (c == '\\') esc = true;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
}
