#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "tempest/util/align.hpp"
#include "tempest/util/cli.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/rng.hpp"
#include "tempest/util/stats.hpp"
#include "tempest/util/table.hpp"
#include "tempest/util/threads.hpp"
#include "tempest/util/timer.hpp"

namespace tu = tempest::util;

TEST(Require, ThrowsOnViolation) {
  EXPECT_THROW(TEMPEST_REQUIRE(1 == 2), tu::PreconditionError);
  EXPECT_NO_THROW(TEMPEST_REQUIRE(1 == 1));
  try {
    TEMPEST_REQUIRE_MSG(false, "custom detail");
    FAIL() << "should have thrown";
  } catch (const tu::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail"), std::string::npos);
  }
}

TEST(Require, MessageNamesExpressionAndLocation) {
  // The diagnostic must be self-contained: expression text, source
  // file:line, and — for the _MSG form — the caller's detail after a dash.
  try {
    TEMPEST_REQUIRE(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const tu::PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("precondition failed: (2 + 2 == 5)"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("util_test.cpp:"), std::string::npos) << msg;
  }
  try {
    TEMPEST_REQUIRE_MSG(1 > 3, "tile wider than the domain");
    FAIL() << "should have thrown";
  } catch (const tu::PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("(1 > 3)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("— tile wider than the domain"), std::string::npos)
        << msg;
  }
}

TEST(Require, IsACatchableLogicError) {
  // Consumers that cannot include tempest headers still catch std::.
  EXPECT_THROW(TEMPEST_REQUIRE(false), std::logic_error);
  EXPECT_THROW(TEMPEST_REQUIRE_MSG(false, "x"), std::exception);
}

TEST(AlignedVector, StorageIsAligned) {
  tu::aligned_vector<float> v(1000, 1.0f);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % tu::kAlignment, 0u);
  tu::aligned_vector<double> w(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % tu::kAlignment, 0u);
}

TEST(AlignedVector, AllocatorEqualityAndRebind) {
  tu::AlignedAllocator<float> a;
  tu::AlignedAllocator<double> b;
  EXPECT_TRUE(a == tu::AlignedAllocator<float>(b));
}

TEST(Rng, Deterministic) {
  tu::SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  tu::SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
    EXPECT_LT(rng.below(10), 10u);
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  tu::SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Stats, SummaryOfKnownSeries) {
  const double xs[] = {4.0, 1.0, 3.0, 2.0};
  const tu::Summary s = tu::summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944487358056, 1e-12);
  EXPECT_EQ(s.count, 4u);
}

TEST(Stats, OddMedianAndEmpty) {
  const double xs[] = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(tu::summarize(xs).median, 3.0);
  const tu::Summary empty = tu::summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(Stats, RelErr) {
  EXPECT_DOUBLE_EQ(tu::rel_err(1.0, 1.0), 0.0);
  EXPECT_NEAR(tu::rel_err(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(tu::rel_err(0.0, 0.0), 0.0);
}

TEST(Timer, MeasuresElapsed) {
  tu::Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  const double ms = t.milliseconds();
  EXPECT_GE(ms, 0.0);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",      "--size=128", "--steps=50",
                        "--verbose", "pos1",       "--ratio=0.5"};
  tu::Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("size", 0), 128);
  EXPECT_EQ(cli.get_int("steps", 0), 50);
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_FALSE(cli.get_flag("quiet"));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, Fallbacks) {
  const char* argv[] = {"prog"};
  tu::Cli cli(1, argv);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_TRUE(cli.get_flag("missing", true));
}

TEST(Cli, IntList) {
  const char* argv[] = {"prog", "--so=4,8,12"};
  tu::Cli cli(2, argv);
  const auto so = cli.get_int_list("so", {2});
  ASSERT_EQ(so.size(), 3u);
  EXPECT_EQ(so[0], 4);
  EXPECT_EQ(so[1], 8);
  EXPECT_EQ(so[2], 12);
  EXPECT_EQ(cli.get_int_list("missing", {2, 4}).size(), 2u);
}

TEST(Table, AsciiAndCsv) {
  tu::Table t({"name", "value"});
  t.add_row({"alpha", tu::Table::num(1.5, 2)});
  t.add_row({"beta", "2"});
  EXPECT_EQ(t.rows(), 2u);

  std::ostringstream ascii;
  t.print_ascii(ascii);
  EXPECT_NE(ascii.str().find("alpha"), std::string::npos);
  EXPECT_NE(ascii.str().find("1.50"), std::string::npos);

  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1.50\nbeta,2\n");
}

TEST(Table, RejectsWrongArity) {
  tu::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), tu::PreconditionError);
}

// --- Thread policy + task-graph substrate --------------------------------

TEST(Threads, SelectBackendMatchesRuntime) {
  EXPECT_EQ(tu::select_backend(1), tu::TaskBackend::Serial);
  EXPECT_EQ(tu::select_backend(0), tu::TaskBackend::Serial);
  const tu::TaskBackend multi = tu::select_backend(4);
  if (tu::openmp_runtime()) {
    EXPECT_EQ(multi, tu::TaskBackend::OpenMP);
  } else {
    EXPECT_EQ(multi, tu::TaskBackend::Pool);
  }
  EXPECT_STRNE(tu::to_string(multi), tu::to_string(tu::TaskBackend::Serial));
}

TEST(Threads, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(97);
    tu::parallel_for(97, threads,
                     [&](int i) { hits[static_cast<std::size_t>(i)]++; });
    for (int i = 0; i < 97; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(Threads, ParallelForPropagatesException) {
  for (const int threads : {1, 8}) {
    EXPECT_THROW(
        tu::parallel_for(16, threads,
                         [](int i) {
                           if (i == 7) throw std::runtime_error("boom");
                         }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

namespace {

/// A staircase DAG matching the engine's wavefront tile graphs: node
/// (ix, iy) on an ni x nj grid depends on (ix-1, iy) and (ix, iy-1) —
/// the worst-case two-predecessor shape the OpenMP backend supports.
tu::TaskDag staircase(int ni, int nj) {
  tu::TaskDag dag(ni * nj);
  for (int ix = 0; ix < ni; ++ix) {
    for (int iy = 0; iy < nj; ++iy) {
      const int node = ix * nj + iy;
      if (ix > 0) dag.add_edge((ix - 1) * nj + iy, node);
      if (iy > 0) dag.add_edge(ix * nj + (iy - 1), node);
    }
  }
  return dag;
}

}  // namespace

TEST(TaskDag, HonorsStaircaseEdgesAtEveryThreadCount) {
  const int ni = 5, nj = 4;
  const tu::TaskDag dag = staircase(ni, nj);
  EXPECT_EQ(dag.max_preds(), 2);
  for (const int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> done(static_cast<std::size_t>(ni * nj));
    std::atomic<bool> violated{false};
    dag.run(threads, [&](int node) {
      for (const int p : dag.preds(node)) {
        if (done[static_cast<std::size_t>(p)].load() == 0) {
          violated.store(true);
        }
      }
      done[static_cast<std::size_t>(node)].store(1);
    });
    EXPECT_FALSE(violated.load()) << "threads=" << threads;
    for (int i = 0; i < ni * nj; ++i) {
      EXPECT_EQ(done[static_cast<std::size_t>(i)].load(), 1) << "node " << i;
    }
  }
}

TEST(TaskDag, SerialRunIsAscendingNodeOrder) {
  const tu::TaskDag dag = staircase(3, 3);
  std::vector<int> order;
  dag.run(1, [&](int node) { order.push_back(node); });
  ASSERT_EQ(order.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(TaskDag, RejectsBackwardEdge) {
  tu::TaskDag dag(4);
  EXPECT_THROW(dag.add_edge(2, 1), tu::PreconditionError);
  EXPECT_THROW(dag.add_edge(1, 1), tu::PreconditionError);
  EXPECT_THROW(dag.add_edge(0, 4), tu::PreconditionError);
}

TEST(TaskDag, PropagatesExceptionFromTaskBody) {
  const tu::TaskDag dag = staircase(4, 4);
  for (const int threads : {1, 8}) {
    EXPECT_THROW(dag.run(threads,
                         [](int node) {
                           if (node == 5) throw std::runtime_error("boom");
                         }),
                 std::runtime_error)
        << "threads=" << threads;
  }
}
