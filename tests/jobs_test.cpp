// Unit tests for the crash-tolerant jobs runtime: backoff policy, the
// CRC-framed write-ahead journal, the replaying job queue, failure
// classification, the cooperative watchdog, the retry/degradation runner
// (with a stub executor and injected sleeper — no physics, no real time),
// the survey report sink, and the versioned auxiliary-blob framing.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "tempest/analysis/legality.hpp"
#include "tempest/io/io.hpp"
#include "tempest/jobs/journal.hpp"
#include "tempest/jobs/queue.hpp"
#include "tempest/jobs/report.hpp"
#include "tempest/jobs/runner.hpp"
#include "tempest/jobs/watchdog.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/resilience/health.hpp"
#include "tempest/util/backoff.hpp"

namespace an = tempest::analysis;
namespace io = tempest::io;
namespace jb = tempest::jobs;
namespace rs = tempest::resilience;
namespace ut = tempest::util;

namespace {

class TempPath {
 public:
  explicit TempPath(const char* suffix)
      : path_(std::string("/tmp/tempest_jobs_test_") +
              std::to_string(::getpid()) + "_" + std::to_string(counter_++) +
              suffix) {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};
int TempPath::counter_ = 0;

jb::Record started(int job, int attempt, int level) {
  jb::Record r;
  r.type = jb::RecordType::Started;
  r.job = job;
  r.attempt = attempt;
  r.level = level;
  return r;
}

}  // namespace

// --- BackoffPolicy -------------------------------------------------------

TEST(Backoff, DelaysGrowExponentiallyAndClamp) {
  ut::BackoffPolicy p;
  p.base_ms = 100.0;
  p.max_ms = 500.0;
  p.jitter = 0.0;  // isolate the nominal schedule
  EXPECT_DOUBLE_EQ(p.delay_ms(1), 100.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(2), 200.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(3), 400.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(4), 500.0);  // clamped
  EXPECT_DOUBLE_EQ(p.delay_ms(20), 500.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(0), 0.0);
}

TEST(Backoff, JitterIsBoundedAndDeterministic) {
  ut::BackoffPolicy p;
  p.base_ms = 100.0;
  p.jitter = 0.25;
  for (int retry = 1; retry <= 6; ++retry) {
    const double d = p.delay_ms(retry);
    const double nominal = std::min(100.0 * (1 << (retry - 1)), p.max_ms);
    EXPECT_GE(d, nominal * 0.75) << "retry " << retry;
    EXPECT_LE(d, nominal * 1.25) << "retry " << retry;
    // Same policy, same retry -> byte-identical delay: a retried run is as
    // reproducible as an uninterrupted one.
    EXPECT_DOUBLE_EQ(d, p.delay_ms(retry));
  }
  ut::BackoffPolicy q = p;
  q.seed ^= 1;
  EXPECT_NE(p.delay_ms(1), q.delay_ms(1));  // the seed moves the jitter
}

TEST(Backoff, EnvironmentOverridesDefaults) {
  ::setenv("TEMPEST_TEST_RETRIES", "7", 1);
  ::setenv("TEMPEST_TEST_RETRY_BASE_MS", "12.5", 1);
  const ut::BackoffPolicy p = ut::BackoffPolicy::from_env("TEMPEST_TEST");
  EXPECT_EQ(p.max_attempts, 7);
  EXPECT_DOUBLE_EQ(p.base_ms, 12.5);

  // Garbage degrades to the compiled-in default instead of disabling
  // retries.
  ::setenv("TEMPEST_TEST_RETRIES", "banana", 1);
  ::setenv("TEMPEST_TEST_RETRY_BASE_MS", "-3", 1);
  ut::BackoffPolicy def;
  def.max_attempts = 4;
  def.base_ms = 99.0;
  const ut::BackoffPolicy q = ut::BackoffPolicy::from_env("TEMPEST_TEST", def);
  EXPECT_EQ(q.max_attempts, 4);
  EXPECT_DOUBLE_EQ(q.base_ms, 99.0);

  ::unsetenv("TEMPEST_TEST_RETRIES");
  ::unsetenv("TEMPEST_TEST_RETRY_BASE_MS");
  const ut::BackoffPolicy r = ut::BackoffPolicy::from_env("TEMPEST_TEST", def);
  EXPECT_EQ(r.max_attempts, 4);
}

// --- Journal -------------------------------------------------------------

TEST(Journal, RoundTripsRecords) {
  TempPath file(".tpj");
  jb::Journal j(file.path());
  EXPECT_FALSE(j.exists());

  std::vector<jb::Record> written;
  {
    jb::Record plan;
    plan.type = jb::RecordType::Plan;
    plan.job = 3;
    plan.fingerprint = 0xDEADBEEFCAFEull;
    written.push_back(plan);
  }
  written.push_back(started(0, 1, 0));
  {
    jb::Record done;
    done.type = jb::RecordType::Done;
    done.job = 0;
    done.seconds = 1.25;
    done.detail = "wavefront";
    written.push_back(done);
  }
  for (const jb::Record& r : written) j.append(r);

  bool torn = true;
  const std::vector<jb::Record> back = j.replay(&torn);
  EXPECT_FALSE(torn);
  EXPECT_EQ(back, written);
}

TEST(Journal, ToleratesTornTail) {
  TempPath file(".tpj");
  jb::Journal j(file.path());
  j.append(started(0, 1, 0));
  j.append(started(1, 1, 0));

  // Chop the final frame mid-payload: the signature of a kill mid-append.
  std::string bytes;
  {
    std::ifstream is(file.path(), std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(is)),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream os(file.path(), std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  }

  bool torn = false;
  const std::vector<jb::Record> back = j.replay(&torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], started(0, 1, 0));
}

TEST(Journal, InteriorCorruptionIsFatal) {
  TempPath file(".tpj");
  jb::Journal j(file.path());
  j.append(started(0, 1, 0));
  std::uintmax_t first_end = 0;
  {
    std::ifstream is(file.path(), std::ios::binary | std::ios::ate);
    first_end = static_cast<std::uintmax_t>(is.tellg());
  }
  j.append(started(1, 1, 0));

  // Flip a byte inside the *first* frame: unlike a torn tail, history after
  // the damage cannot be trusted, so replay must refuse.
  std::fstream f(file.path(), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(first_end - 3));
  char c = 0;
  f.seekg(static_cast<std::streamoff>(first_end - 3));
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x10);
  f.seekp(static_cast<std::streamoff>(first_end - 3));
  f.write(&c, 1);
  f.close();

  EXPECT_THROW((void)j.replay(), io::CorruptFileError);
}

TEST(Journal, RewriteCompacts) {
  TempPath file(".tpj");
  jb::Journal j(file.path());
  for (int i = 0; i < 5; ++i) j.append(started(i, 1, 0));
  const std::vector<jb::Record> keep = {started(7, 2, 1)};
  j.rewrite(keep);
  bool torn = true;
  EXPECT_EQ(j.replay(&torn), keep);
  EXPECT_FALSE(torn);
  j.remove();
  EXPECT_FALSE(j.exists());
}

// --- JobQueue ------------------------------------------------------------

TEST(JobQueue, FreshQueueStartsAllPending) {
  TempPath file(".tpj");
  jb::JobQueue q(file.path(), /*fingerprint=*/42, /*n_jobs=*/3);
  EXPECT_FALSE(q.recovered());
  EXPECT_EQ(q.n_jobs(), 3);
  EXPECT_EQ(q.count(jb::JobState::Pending), 3);
  EXPECT_EQ(q.next_pending(), 0);
  EXPECT_FALSE(q.all_done());
}

TEST(JobQueue, StateMachineAdvances) {
  TempPath file(".tpj");
  jb::JobQueue q(file.path(), 42, 2);
  q.mark_started(0, 1, 0);
  EXPECT_EQ(q.job(0).state, jb::JobState::Running);
  EXPECT_EQ(q.next_pending(), 1);
  q.mark_done(0, 2.5, 0, false, "ok");
  EXPECT_EQ(q.job(0).state, jb::JobState::Done);
  EXPECT_DOUBLE_EQ(q.job(0).seconds, 2.5);

  q.mark_started(1, 1, 0);
  q.mark_transient(1, 1, "disk hiccup");
  EXPECT_EQ(q.job(1).state, jb::JobState::Pending);  // retryable
  q.mark_started(1, 2, 0);
  q.mark_degraded(1, 1, "watchdog");
  EXPECT_EQ(q.job(1).state, jb::JobState::Pending);
  EXPECT_EQ(q.job(1).level, 1);
  EXPECT_TRUE(q.job(1).degraded);
  q.mark_started(1, 1, 1);
  q.mark_quarantined(1, "ladder exhausted");
  EXPECT_EQ(q.job(1).state, jb::JobState::Quarantined);
  EXPECT_EQ(q.next_pending(), -1);
  EXPECT_TRUE(q.all_done());  // nothing left to run (quarantined is final)
  EXPECT_EQ(q.count(jb::JobState::Done), 1);
  EXPECT_EQ(q.count(jb::JobState::Quarantined), 1);
}

TEST(JobQueue, ReplayReconstructsAndReentersInterrupted) {
  TempPath file(".tpj");
  {
    jb::JobQueue q(file.path(), 42, 3);
    q.mark_started(0, 1, 0);
    q.mark_done(0, 1.0, 0, false, "ok");
    q.mark_started(1, 1, 0);
    // The process "dies" here: job 1 is left Running in the journal.
  }
  jb::JobQueue q(file.path(), 42, 3);
  EXPECT_TRUE(q.recovered());
  EXPECT_EQ(q.job(0).state, jb::JobState::Done);
  EXPECT_EQ(q.job(1).state, jb::JobState::Pending);
  EXPECT_TRUE(q.job(1).interrupted);  // executor must look for a checkpoint
  EXPECT_FALSE(q.job(2).interrupted);
  EXPECT_EQ(q.next_pending(), 1);
}

TEST(JobQueue, ForeignJournalIsRejected) {
  TempPath file(".tpj");
  { jb::JobQueue q(file.path(), /*fingerprint=*/42, 2); }
  EXPECT_THROW(jb::JobQueue(file.path(), /*fingerprint=*/43, 2),
               jb::JournalMismatchError);
  EXPECT_THROW(jb::JobQueue(file.path(), 42, /*n_jobs=*/3),
               jb::JournalMismatchError);
  EXPECT_NO_THROW(jb::JobQueue(file.path(), 42, 2));
}

TEST(JobQueue, TornTailIsHealedOnRecovery) {
  TempPath file(".tpj");
  {
    jb::JobQueue q(file.path(), 42, 2);
    q.mark_started(0, 1, 0);
    q.mark_done(0, 1.0, 0, false, "ok");
  }
  // Tear the last frame: the Done record is cut mid-payload.
  std::string bytes;
  {
    std::ifstream is(file.path(), std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(is)),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream os(file.path(), std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 3));
  }
  jb::JobQueue q(file.path(), 42, 2);
  EXPECT_TRUE(q.recovered());
  // The torn Done was discarded; job 0 was Running, so it re-enters.
  EXPECT_EQ(q.job(0).state, jb::JobState::Pending);
  EXPECT_TRUE(q.job(0).interrupted);
  // The heal compacted the journal: a fresh replay sees no torn tail.
  bool torn = true;
  (void)jb::Journal(file.path()).replay(&torn);
  EXPECT_FALSE(torn);
}

// --- classify ------------------------------------------------------------

TEST(Classify, MapsExceptionsToTaxonomy) {
  using ut::FailureKind;
  EXPECT_EQ(jb::classify(jb::WatchdogTimeoutError("slow")),
            FailureKind::Degrade);
  EXPECT_EQ(jb::classify(rs::NumericalHealthError("u", 3, "NaN")),
            FailureKind::Degrade);
  EXPECT_EQ(jb::classify(an::ScheduleLegalityError(an::LegalityReport{})),
            FailureKind::Permanent);
  EXPECT_EQ(jb::classify(rs::CheckpointMismatchError("foreign")),
            FailureKind::Permanent);
  EXPECT_EQ(jb::classify(jb::JournalMismatchError("foreign")),
            FailureKind::Permanent);
  EXPECT_EQ(jb::classify(io::CorruptFileError("f", "bit rot")),
            FailureKind::Transient);
  EXPECT_EQ(jb::classify(ut::TransientError("hiccup")),
            FailureKind::Transient);
  // Plain preconditions (CFL violations, bad geometry) are deterministic.
  EXPECT_EQ(jb::classify(ut::PreconditionError("cfl")),
            FailureKind::Permanent);
  EXPECT_EQ(jb::classify(std::runtime_error("unknown")),
            FailureKind::Permanent);
}

// --- Watchdog ------------------------------------------------------------

TEST(Watchdog, ThrowsWhenAStepExceedsTheDeadline) {
  double now = 0.0;
  jb::Watchdog wd(100.0, [&] { return now; });
  ASSERT_TRUE(wd.enabled());
  wd.start();
  now = 50.0;
  EXPECT_NO_THROW(wd.beat(1));
  now = 140.0;  // 90 ms gap: within deadline
  EXPECT_NO_THROW(wd.beat(2));
  now = 300.0;  // 160 ms gap: too slow
  EXPECT_THROW(wd.beat(3), jb::WatchdogTimeoutError);
}

TEST(Watchdog, DisabledWatchdogNeverFires) {
  double now = 0.0;
  jb::Watchdog wd(0.0, [&] { return now; });
  EXPECT_FALSE(wd.enabled());
  wd.start();
  now = 1e12;
  EXPECT_NO_THROW(wd.beat(1));
}

// --- Runner --------------------------------------------------------------

namespace {

ut::BackoffPolicy fast_policy(int max_attempts) {
  ut::BackoffPolicy p;
  p.max_attempts = max_attempts;
  p.base_ms = 1.0;
  p.jitter = 0.0;
  return p;
}

}  // namespace

TEST(Runner, AllJobsSucceedFirstTry) {
  TempPath file(".tpj");
  jb::JobQueue queue(file.path(), 42, 3);
  std::vector<jb::Attempt> seen;
  jb::Runner runner(
      queue, {{"fast"}, {"slow"}}, fast_policy(3),
      [&](const jb::Attempt& a) {
        seen.push_back(a);
        return jb::AttemptResult{0.5, false, "ok"};
      },
      [](double) {});
  EXPECT_EQ(runner.run(), 3);
  EXPECT_EQ(seen.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].job, i);
    EXPECT_EQ(queue.job(i).state, jb::JobState::Done);
    EXPECT_FALSE(queue.job(i).degraded);
  }
  EXPECT_TRUE(queue.all_done());
}

TEST(Runner, TransientFailuresRetryWithBackoff) {
  TempPath file(".tpj");
  jb::JobQueue queue(file.path(), 42, 1);
  const ut::BackoffPolicy policy = fast_policy(3);
  std::vector<double> sleeps;
  int calls = 0;
  jb::Runner runner(
      queue, {{"only"}}, policy,
      [&](const jb::Attempt& a) -> jb::AttemptResult {
        ++calls;
        if (calls <= 2) throw ut::TransientError("hiccup " + std::to_string(calls));
        EXPECT_EQ(a.attempt, 3);
        return {0.5, false, "ok"};
      },
      [&](double ms) { sleeps.push_back(ms); });
  EXPECT_EQ(runner.run(), 1);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(queue.job(0).state, jb::JobState::Done);
  EXPECT_EQ(queue.job(0).attempts, 3);
  // The recorded sleeps are exactly the policy's deterministic schedule.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_DOUBLE_EQ(sleeps[0], policy.delay_ms(1));
  EXPECT_DOUBLE_EQ(sleeps[1], policy.delay_ms(2));
}

TEST(Runner, ExhaustedTransientsDegradeDownTheLadder) {
  TempPath file(".tpj");
  jb::JobQueue queue(file.path(), 42, 1);
  std::vector<int> levels;
  jb::Runner runner(
      queue, {{"fast"}, {"safe"}}, fast_policy(2),
      [&](const jb::Attempt& a) -> jb::AttemptResult {
        levels.push_back(a.level);
        if (a.level == 0) throw ut::TransientError("never clears");
        return {0.5, false, "ok"};
      },
      [](double) {});
  EXPECT_EQ(runner.run(), 1);
  // Two attempts at level 0 (the transient budget), then one at level 1.
  EXPECT_EQ(levels, (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(queue.job(0).state, jb::JobState::Done);
  EXPECT_EQ(queue.job(0).level, 1);
  EXPECT_TRUE(queue.job(0).degraded);  // finished below the requested rung
}

TEST(Runner, DegradeFailuresSkipTheRetryBudget) {
  TempPath file(".tpj");
  jb::JobQueue queue(file.path(), 42, 1);
  std::vector<int> levels;
  jb::Runner runner(
      queue, {{"jit"}, {"aot"}, {"ref"}}, fast_policy(5),
      [&](const jb::Attempt& a) -> jb::AttemptResult {
        levels.push_back(a.level);
        if (a.level < 2) throw jb::WatchdogTimeoutError("too slow");
        return {0.5, false, "ok"};
      },
      [](double) {});
  EXPECT_EQ(runner.run(), 1);
  // One attempt per rung: degrade-class failures do not burn retries.
  EXPECT_EQ(levels, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.job(0).level, 2);
  EXPECT_TRUE(queue.job(0).degraded);
}

TEST(Runner, LadderExhaustionQuarantines) {
  TempPath file(".tpj");
  jb::JobQueue queue(file.path(), 42, 2);
  jb::Runner runner(
      queue, {{"fast"}, {"safe"}}, fast_policy(1),
      [&](const jb::Attempt& a) -> jb::AttemptResult {
        if (a.job == 0) throw jb::WatchdogTimeoutError("always slow");
        return {0.5, false, "ok"};
      },
      [](double) {});
  EXPECT_EQ(runner.run(), 1);  // job 1 still finishes
  EXPECT_EQ(queue.job(0).state, jb::JobState::Quarantined);
  EXPECT_NE(queue.job(0).detail.find("ladder exhausted"), std::string::npos)
      << queue.job(0).detail;
  EXPECT_EQ(queue.job(1).state, jb::JobState::Done);
}

TEST(Runner, PermanentFailuresQuarantineImmediately) {
  TempPath file(".tpj");
  jb::JobQueue queue(file.path(), 42, 1);
  int calls = 0;
  jb::Runner runner(
      queue, {{"fast"}, {"safe"}}, fast_policy(5),
      [&](const jb::Attempt&) -> jb::AttemptResult {
        ++calls;
        throw ut::PreconditionError("CFL violated");
      },
      [](double) {});
  EXPECT_EQ(runner.run(), 0);
  EXPECT_EQ(calls, 1);  // deterministic failures are never retried
  EXPECT_EQ(queue.job(0).state, jb::JobState::Quarantined);
  EXPECT_NE(queue.job(0).detail.find("CFL"), std::string::npos);
}

// --- Report --------------------------------------------------------------

TEST(Report, AggregatesAndJson) {
  jb::SurveyReport rep;
  rep.physics = "acoustic";
  rep.requested_schedule = "wavefront";
  rep.n_shots = 4;
  rep.total_seconds = 2.0;
  for (int i = 0; i < 4; ++i) {
    jb::ShotReport s;
    s.shot = i;
    s.state = i == 3 ? "quarantined" : "done";
    s.seconds = 0.1 * (i + 1);
    s.degraded = (i == 2);
    rep.shots.push_back(s);
  }
  jb::finalize_aggregates(rep);
  EXPECT_EQ(rep.done, 3);
  EXPECT_EQ(rep.degraded, 1);
  EXPECT_EQ(rep.quarantined, 1);
  EXPECT_DOUBLE_EQ(rep.shots_per_hour, 3 * 3600.0 / 2.0);
  EXPECT_DOUBLE_EQ(rep.p50_shot_seconds, 0.2);  // nearest-rank over {.1,.2,.3}
  EXPECT_DOUBLE_EQ(rep.p99_shot_seconds, 0.3);

  TempPath file(".json");
  jb::write_survey_json(file.path(), rep);
  std::ifstream is(file.path());
  const std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"schema\": \"tempest-survey-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"shots_per_hour\""), std::string::npos);
  EXPECT_NE(text.find("\"quarantined\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"shot_reports\""), std::string::npos);
  // v1 output must never grow v2 fields.
  EXPECT_EQ(text.find("latency_histograms"), std::string::npos);
}

namespace {

/// Five Done shots at 10/20/30/40/50 ms — the shared fixture for the
/// quantile golden tests below.
jb::SurveyReport five_shot_report() {
  jb::SurveyReport rep;
  rep.physics = "acoustic";
  rep.requested_schedule = "wavefront";
  rep.n_shots = 5;
  rep.total_seconds = 0.15;
  for (int i = 0; i < 5; ++i) {
    jb::ShotReport s;
    s.shot = i;
    s.state = "done";
    s.seconds = 0.010 * (i + 1);
    rep.shots.push_back(s);
  }
  return rep;
}

}  // namespace

// Golden: the legacy v1 nearest-rank percentiles are a compatibility
// contract — adding the histogram path must not move them by a single bit.
TEST(Report, V1NearestRankQuantilesUnchanged) {
  jb::SurveyReport rep = five_shot_report();
  ASSERT_FALSE(rep.obs);
  jb::finalize_aggregates(rep);
  EXPECT_DOUBLE_EQ(rep.p50_shot_seconds, 0.030);
  EXPECT_DOUBLE_EQ(rep.p99_shot_seconds, 0.050);
}

// Golden: the v2 histogram quantile rule (inclusive upper bound of the
// first bucket whose cumulative count reaches ceil(q*N), clamped to
// [min, max]). For {10,20,30,40,50} ms the p50 bucket is [29360128,
// 31457279] ns and the p99 clamps to the observed max. Pinned values: any
// drift here is a bucket-layout or quantile-rule change and must be a
// deliberate schema event.
TEST(Report, V2HistogramQuantilesGolden) {
  jb::SurveyReport rep = five_shot_report();
  rep.obs = true;
  auto& shot_hist = rep.latency[static_cast<std::size_t>(
      tempest::obs::Metric::ShotSeconds)];
  for (const jb::ShotReport& s : rep.shots) {
    shot_hist.record(static_cast<std::int64_t>(s.seconds * 1e9));
  }
  jb::finalize_aggregates(rep);
  EXPECT_DOUBLE_EQ(rep.p50_shot_seconds, 31457279.0 / 1e9);
  EXPECT_NEAR(rep.p50_shot_seconds, 0.0314573, 1e-7);
  EXPECT_DOUBLE_EQ(rep.p99_shot_seconds, 0.050);
  // The documented bias bound: estimate >= exact, within one bucket width.
  EXPECT_GE(rep.p50_shot_seconds, 0.030);
  EXPECT_LE(rep.p50_shot_seconds, 0.030 * 1.125);
}

TEST(Report, V2SchemaCarriesLatencyHistograms) {
  jb::SurveyReport rep = five_shot_report();
  rep.obs = true;
  auto& shot_hist = rep.latency[static_cast<std::size_t>(
      tempest::obs::Metric::ShotSeconds)];
  for (const jb::ShotReport& s : rep.shots) {
    shot_hist.record(static_cast<std::int64_t>(s.seconds * 1e9));
  }
  jb::finalize_aggregates(rep);

  TempPath file(".json");
  jb::write_survey_json(file.path(), rep);
  std::ifstream is(file.path());
  const std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"schema\": \"tempest-survey-v2\""),
            std::string::npos);
  EXPECT_NE(text.find("\"latency_histograms\""), std::string::npos);
  // Every metric appears, even the empty ones (count 0, no buckets).
  for (int m = 0; m < tempest::obs::kNumMetrics; ++m) {
    EXPECT_NE(text.find(std::string("\"") +
                        tempest::obs::to_string(
                            static_cast<tempest::obs::Metric>(m)) +
                        "\""),
              std::string::npos);
  }
  // The shot histogram's bucket list is cumulative and ends at the count.
  EXPECT_NE(text.find("\"count\": 5"), std::string::npos);
  EXPECT_NE(text.find("\"buckets\""), std::string::npos);
}

// --- Versioned auxiliary blobs ------------------------------------------

TEST(VersionedAux, RoundTripsAndRejectsForeignBlobs) {
  struct Payload {
    std::int32_t a;
    double b;
  };
  const Payload v{7, 2.5};
  constexpr std::uint32_t kMagic = 0x54455354u;  // "TEST"
  const std::vector<std::uint8_t> blob =
      rs::aux_pack_versioned(kMagic, 2, v);
  EXPECT_EQ(blob.size(), 8 + sizeof(Payload));  // header + payload

  const Payload back =
      rs::aux_unpack_versioned<Payload>("blob", blob, kMagic, 2);
  EXPECT_EQ(back.a, 7);
  EXPECT_DOUBLE_EQ(back.b, 2.5);

  // Wrong magic: a different subsystem's blob.
  EXPECT_THROW((void)rs::aux_unpack_versioned<Payload>("blob", blob,
                                                       kMagic ^ 1, 2),
               io::CorruptFileError);
  // Wrong version: an incompatible layout.
  EXPECT_THROW(
      (void)rs::aux_unpack_versioned<Payload>("blob", blob, kMagic, 3),
      io::CorruptFileError);
  // Truncated: shorter than the header.
  const std::vector<std::uint8_t> stub(blob.begin(), blob.begin() + 4);
  EXPECT_THROW(
      (void)rs::aux_unpack_versioned<Payload>("blob", stub, kMagic, 2),
      io::CorruptFileError);
  // Right header, wrong payload size for the requested type.
  const std::vector<std::uint8_t> resized =
      rs::aux_wrap_bytes(kMagic, 2, &v, sizeof(Payload) - 1);
  EXPECT_THROW(
      (void)rs::aux_unpack_versioned<Payload>("blob", resized, kMagic, 2),
      io::CorruptFileError);
}
