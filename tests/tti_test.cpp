#include <gtest/gtest.h>

#include <cmath>

#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace tc = tempest::core;
using tempest::real_t;

namespace {

struct Setup {
  ph::TTIModel model;
  sp::SparseTimeSeries src;
  sp::SparseTimeSeries rec;
  int nt;
};

Setup make_setup(tg::Extents3 e, int so, int nt, int n_rec = 4) {
  ph::Geometry g{e, 20.0, so, /*nbl=*/4};  // paper: TTI uses 20 m spacing
  Setup s{ph::make_tti_layered(g, 1.5, 3.0, 3),
          sp::SparseTimeSeries(sp::single_center_source(e, 0.4), nt),
          sp::SparseTimeSeries(sp::receiver_line(e, n_rec, 0.15, 3), nt), nt};
  s.src.broadcast_signature(sp::ricker(nt, s.model.critical_dt(), 0.012));
  return s;
}

}  // namespace

TEST(TTI, ReducesToAcousticWithoutAnisotropy) {
  const tg::Extents3 e{20, 18, 16};
  const int nt = 20;
  ph::Geometry g{e, 10.0, 4, 4};

  // TTI model with every anisotropy parameter zeroed.
  ph::TTIModel tti = ph::make_tti_layered(g, 1.5, 3.0, 3);
  tti.epsilon.fill(0.0f);
  tti.delta.fill(0.0f);
  tti.theta.fill(0.0f);
  tti.phi.fill(0.0f);

  ph::AcousticModel ac = ph::make_acoustic_layered(g, 1.5, 3.0, 3);
  const double dt = ac.critical_dt();

  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, dt, 0.015));

  ph::PropagatorOptions opts;
  opts.dt = dt;  // force identical timestep
  ph::TTIPropagator tp(tti, opts);
  tp.run(ph::Schedule::SpaceBlocked, src, nullptr);
  ph::AcousticPropagator ap(ac, opts);
  ap.run(ph::Schedule::SpaceBlocked, src, nullptr);

  const double umax = tg::max_abs(ap.wavefield(nt));
  ASSERT_GT(umax, 0.0);
  EXPECT_LT(tg::max_abs_diff(ap.wavefield(nt), tp.wavefield_p(nt)),
            2e-4 * umax);
  // p and q stay identical when the coupling is symmetric.
  EXPECT_LT(tg::max_abs_diff(tp.wavefield_p(nt), tp.wavefield_q(nt)),
            1e-6 * umax);
}

TEST(TTI, SpaceBlockedMatchesReference) {
  auto s = make_setup({18, 16, 14}, 4, 16);
  ph::TTIPropagator a(s.model);
  a.run(ph::Schedule::Reference, s.src, nullptr);
  const auto p_ref = a.wavefield_p(s.nt);
  const auto q_ref = a.wavefield_q(s.nt);

  ph::TTIPropagator b(s.model);
  b.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(p_ref, b.wavefield_p(s.nt)), 0.0);
  EXPECT_EQ(tg::max_abs_diff(q_ref, b.wavefield_q(s.nt)), 0.0);
}

TEST(TTI, WavefrontMatchesBaseline) {
  auto s = make_setup({18, 16, 14}, 4, 16);
  ph::TTIPropagator base(s.model);
  auto rec_base = s.rec;
  base.run(ph::Schedule::SpaceBlocked, s.src, &rec_base);
  const auto p_base = base.wavefield_p(s.nt);
  const auto q_base = base.wavefield_q(s.nt);

  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{4, 8, 8, 4, 4};
  ph::TTIPropagator wave(s.model, opts);
  auto rec_wave = s.rec;
  const ph::RunStats stats =
      wave.run(ph::Schedule::Wavefront, s.src, &rec_wave);

  EXPECT_EQ(tg::max_abs_diff(p_base, wave.wavefield_p(s.nt)), 0.0);
  EXPECT_EQ(tg::max_abs_diff(q_base, wave.wavefield_q(s.nt)), 0.0);

  double scale = 1e-20;
  for (int t = 0; t < s.nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      scale = std::max(scale,
                       std::fabs(static_cast<double>(rec_base.at(t, r))));
  for (int t = 0; t < s.nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      EXPECT_NEAR(rec_wave.at(t, r), rec_base.at(t, r), 1e-5 * scale);
  EXPECT_GT(stats.seconds, 0.0);
}

class TTITileSweep : public ::testing::TestWithParam<tc::TileSpec> {};

TEST_P(TTITileSweep, WavefrontInvariantToTileShape) {
  auto s = make_setup({16, 14, 12}, 4, 14, 2);
  ph::TTIPropagator base(s.model);
  base.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
  const auto p_base = base.wavefield_p(s.nt);

  ph::PropagatorOptions opts;
  opts.tiles = GetParam();
  ph::TTIPropagator wave(s.model, opts);
  wave.run(ph::Schedule::Wavefront, s.src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(p_base, wave.wavefield_p(s.nt)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Tiles, TTITileSweep,
                         ::testing::Values(tc::TileSpec{1, 8, 8, 4, 4},
                                           tc::TileSpec{4, 8, 8, 4, 4},
                                           tc::TileSpec{8, 16, 12, 4, 6},
                                           tc::TileSpec{16, 64, 64, 8, 8}));

class TTIOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(TTIOrderSweep, WavefrontMatchesBaselineAcrossOrders) {
  const int so = GetParam();
  auto s = make_setup({18, 16, 14}, so, 12, 2);
  ph::TTIPropagator base(s.model);
  base.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
  ph::TTIPropagator wave(s.model);
  wave.run(ph::Schedule::Wavefront, s.src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(base.wavefield_p(s.nt), wave.wavefield_p(s.nt)),
            0.0);
  EXPECT_GT(tg::max_abs(wave.wavefield_p(s.nt)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Orders, TTIOrderSweep,
                         ::testing::Values(4, 8, 10, 12));

TEST(TTI, StableOverManySteps) {
  auto s = make_setup({16, 16, 16}, 4, 100, 2);
  ph::TTIPropagator p(s.model);
  p.run(ph::Schedule::Wavefront, s.src, nullptr);
  const double m = tg::max_abs(p.wavefield_p(s.nt));
  EXPECT_TRUE(std::isfinite(m));
  EXPECT_LT(m, 1e3);
}

TEST(TTI, AnisotropyChangesTheWavefield) {
  // With the layered anisotropic parameters the solution must differ
  // substantially from the isotropic one — i.e. the rotated operator is not
  // a no-op.
  const tg::Extents3 e{20, 18, 16};
  const int nt = 20;
  ph::Geometry g{e, 10.0, 4, 4};
  ph::TTIModel aniso = ph::make_tti_layered(g, 1.5, 3.0, 3);
  ph::TTIModel iso = ph::make_tti_layered(g, 1.5, 3.0, 3);
  iso.epsilon.fill(0.0f);
  iso.delta.fill(0.0f);
  iso.theta.fill(0.0f);
  iso.phi.fill(0.0f);

  ph::PropagatorOptions opts;
  opts.dt = aniso.critical_dt();

  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, opts.dt, 0.015));

  ph::TTIPropagator pa(aniso, opts);
  pa.run(ph::Schedule::SpaceBlocked, src, nullptr);
  ph::TTIPropagator pi(iso, opts);
  pi.run(ph::Schedule::SpaceBlocked, src, nullptr);

  const double umax = tg::max_abs(pi.wavefield_p(nt));
  ASSERT_GT(umax, 0.0);
  EXPECT_GT(tg::max_abs_diff(pa.wavefield_p(nt), pi.wavefield_p(nt)),
            1e-2 * umax);
}

TEST(TTI, RejectsShortRuns) {
  auto s = make_setup({16, 16, 16}, 4, 12, 1);
  ph::TTIPropagator p(s.model);
  sp::SparseTimeSeries one(sp::single_center_source({16, 16, 16}, 0.4), 1);
  EXPECT_THROW(p.run(ph::Schedule::SpaceBlocked, one, nullptr),
               tempest::util::PreconditionError);
}
