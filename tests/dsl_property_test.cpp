// Property suite for the typed-IR frontend: for *randomized* DSL equations
// in the lowerable fragment, the access footprint the lowering declares
// structurally (LoweredKernel::accesses, what the legality verifier
// consumes) must equal the footprint the typed interpreter actually touches
// when evaluating the update tree. A structural footprint that under-
// reports loads would let the legality verifier approve an illegal
// schedule; one that over-reports would reject legal ones — either way the
// bug is invisible to example-based tests, hence the generator.
//
// Seeding follows property_test.cpp: a SplitMix64 stream keyed by
// TEMPEST_PROPERTY_SEED (fixed default), replayable via
//   TEMPEST_PROPERTY_SEED=<seed> ctest -R dsl_property

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "tempest/dsl/interpreter.hpp"
#include "tempest/dsl/lower.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/util/rng.hpp"

namespace ph = tempest::physics;
namespace tg = tempest::grid;
namespace dsl = tempest::dsl;
namespace tu = tempest::util;
using tempest::real_t;

namespace {

std::uint64_t base_seed() {
  constexpr std::uint64_t kDefault = 20260808u;
  const char* env = std::getenv("TEMPEST_PROPERTY_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return kDefault;
}

std::vector<std::uint64_t> derived_seeds() {
  const std::uint64_t key = base_seed();
  tu::SplitMix64 stream(key);
  std::vector<std::uint64_t> seeds{key};
  for (int i = 0; i < 7; ++i) seeds.push_back(stream.next());
  return seeds;
}

/// A random scalar equation inside the lowerable fragment: a required time
/// derivative (Dt2, optionally also Dt), an optional Laplacian, optional
/// pointwise mass/center terms, with coefficients drawn from constants and
/// the model-bound parameter names.
struct RandomEq {
  dsl::Eq eq;
  int space_order;
  bool has_laplace;
  bool has_dt;         ///< first-order damping term present
  bool reads_backward; ///< a u(t-1) center read outside the derivatives
};

RandomEq random_equation(tu::SplitMix64& rng) {
  const int orders[] = {2, 4, 8};
  const int so = orders[rng.below(3)];
  dsl::Grid g;
  dsl::TimeFunction u("u", g, so, 2);

  auto coeff = [&]() -> dsl::Expr {
    switch (rng.below(3)) {
      case 0: return dsl::param("m");
      case 1: return dsl::param("vp");
      default: return dsl::constant(rng.uniform(0.5, 2.0));
    }
  };

  dsl::Expr eq = coeff() * u.dt2();
  const bool has_dt = rng.below(2) == 0;
  if (has_dt) eq = eq + coeff() * u.dt();
  const bool has_laplace = rng.below(4) != 0;  // usually present
  if (has_laplace) eq = eq - u.laplace();
  const bool center_term = rng.below(2) == 0;
  if (center_term) eq = eq + coeff() * u.now();
  const bool reads_backward = rng.below(3) == 0;
  if (reads_backward) eq = eq - dsl::constant(0.25) * u.backward();
  return {dsl::solve(eq, u.forward()), so, has_laplace, has_dt,
          reads_backward};
}

using Offset = std::tuple<int, int, int, int>;  ///< (dt, dx, dy, dz)

/// Per-time-slice axis hull of a set of offsets.
struct Hull {
  int xlo = 0, xhi = 0, ylo = 0, yhi = 0, zlo = 0, zhi = 0;
  bool any = false;
  void absorb(int dx, int dy, int dz) {
    if (!any) {
      xlo = xhi = dx;
      ylo = yhi = dy;
      zlo = zhi = dz;
      any = true;
      return;
    }
    xlo = std::min(xlo, dx);
    xhi = std::max(xhi, dx);
    ylo = std::min(ylo, dy);
    yhi = std::max(yhi, dy);
    zlo = std::min(zlo, dz);
    zhi = std::max(zhi, dz);
  }
};

}  // namespace

class DslFootprintProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    trace_ = std::make_unique<::testing::ScopedTrace>(
        __FILE__, __LINE__,
        ::testing::Message() << "seed=" << GetParam()
                             << " (replay: TEMPEST_PROPERTY_SEED="
                             << GetParam() << ")");
  }
  void TearDown() override { trace_.reset(); }

 private:
  std::unique_ptr<::testing::ScopedTrace> trace_;
};

// The property: structural footprint == observed footprint, exactly.
// Declared read hulls per time slice must match the hull of the loads the
// evaluator performs, the declared radius must match the deepest spatial
// reach, and the write access must be the centre point at t+1.
TEST_P(DslFootprintProperty, StructuralAccessesMatchObservedLoads) {
  tu::SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const RandomEq r = random_equation(rng);
    const dsl::LoweredKernel lowered =
        dsl::lower_kernel(r.eq, r.space_order, 10.0, 0.5, "prop");

    // -- Observe: evaluate at one interior point with the load observer.
    const tg::Extents3 e{2 * lowered.radius() + 3, 2 * lowered.radius() + 3,
                         2 * lowered.radius() + 3};
    ph::Geometry geom{e, 10.0, r.space_order, 0};
    const ph::AcousticModel model = ph::make_acoustic_homogeneous(geom, 1.5);
    tg::TimeBuffer<real_t> u(3, e, geom.radius(), real_t{1});
    const dsl::TypedInterpreter interp(lowered, model, 0.5);
    std::set<Offset> observed;
    const int c = lowered.radius() + 1;
    (void)interp.eval_at(u, 1, c, c, c,
                         [&](const std::string& field, int dt, int dx,
                             int dy, int dz) {
                           EXPECT_EQ(field, lowered.field);
                           observed.insert({dt, dx, dy, dz});
                         });
    ASSERT_FALSE(observed.empty());

    // -- Structural footprint, from the accesses the lowering declared.
    std::set<int> declared_times;
    Hull declared[2];  // index by -dt: 0 = t, 1 = t-1
    int writes = 0;
    for (const auto& a : lowered.accesses) {
      if (a.is_write) {
        ++writes;
        EXPECT_EQ(a.time, 1);
        EXPECT_FALSE(a.x.star);
        EXPECT_EQ(a.x.lo, 0);
        EXPECT_EQ(a.x.hi, 0);
        continue;
      }
      ASSERT_TRUE(a.time == 0 || a.time == -1);
      declared_times.insert(a.time);
      ASSERT_FALSE(a.x.star || a.y.star || a.z.star);
      auto& h = declared[-a.time];
      // Declared hulls are rectangular ranges; absorb both corners.
      h.absorb(a.x.lo, a.y.lo, a.z.lo);
      h.absorb(a.x.hi, a.y.hi, a.z.hi);
    }
    EXPECT_EQ(writes, 1);

    // -- Compare. Observed time slices == declared time slices.
    std::set<int> observed_times;
    Hull seen[2];
    int max_reach = 0;
    for (const auto& [dt, dx, dy, dz] : observed) {
      ASSERT_TRUE(dt == 0 || dt == -1) << "load outside {t, t-1}: " << dt;
      observed_times.insert(dt);
      seen[-dt].absorb(dx, dy, dz);
      max_reach = std::max({max_reach, std::abs(dx), std::abs(dy),
                            std::abs(dz)});
    }
    EXPECT_EQ(observed_times, declared_times);
    for (int slot = 0; slot < 2; ++slot) {
      ASSERT_EQ(seen[slot].any, declared[slot].any) << "slot " << slot;
      if (!seen[slot].any) continue;
      EXPECT_EQ(seen[slot].xlo, declared[slot].xlo);
      EXPECT_EQ(seen[slot].xhi, declared[slot].xhi);
      EXPECT_EQ(seen[slot].ylo, declared[slot].ylo);
      EXPECT_EQ(seen[slot].yhi, declared[slot].yhi);
      EXPECT_EQ(seen[slot].zlo, declared[slot].zlo);
      EXPECT_EQ(seen[slot].zhi, declared[slot].zhi);
    }
    EXPECT_EQ(lowered.radius(), max_reach);

    // Structural consistency with the summary the engine consumes.
    const auto summary = lowered.summary();
    EXPECT_EQ(summary.radius, max_reach);
    const std::set<int> summary_times(summary.time_reads.begin(),
                                      summary.time_reads.end());
    EXPECT_EQ(summary_times, declared_times);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DslFootprintProperty,
                         ::testing::ValuesIn(derived_seeds()));
