// Golden-diagnostic tests for the analysis::statics layer — one test per
// verdict the interval abstract interpretation, the von Neumann/CFL
// stability proof, the IR linter and the tile-interference race prover can
// return — plus negative tests proving the gates reject: a statically
// unstable dt and an out-of-halo read must fail at Operator construction,
// at propagator construction and at JIT compile, each with a structured
// diagnostic naming the offending bound / offset / tile pair.

#include <gtest/gtest.h>

#include <limits>

#include "tempest/analysis/statics/interference.hpp"
#include "tempest/analysis/statics/interval.hpp"
#include "tempest/analysis/statics/lint.hpp"
#include "tempest/analysis/statics/stability.hpp"
#include "tempest/analysis/statics/verify.hpp"
#include "tempest/codegen/jit.hpp"
#include "tempest/dsl/kernel.hpp"
#include "tempest/dsl/operator.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace statics = tempest::analysis::statics;
namespace an = tempest::analysis;
namespace dsl = tempest::dsl;
namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace cg = tempest::codegen;
using statics::Interval;
using tempest::real_t;

namespace {

/// The acoustic family equation lowered through the DSL frontend — the
/// same tree the sweep tools verify, at a controllable dt.
dsl::LoweredKernel lower_acoustic(int space_order, double dt,
                                  const char* damp_name = "damp") {
  dsl::Grid g;
  dsl::TimeFunction u("u", g, space_order, 2);
  const dsl::Eq eq = dsl::solve(dsl::param("m") * u.dt2() +
                                    dsl::param(damp_name) * u.dt() -
                                    u.laplace(),
                                u.forward());
  return dsl::lower_kernel(eq, space_order, /*spacing=*/10.0, dt,
                           "statics-test");
}

/// First diagnostic with the given code, or nullptr.
const an::Diagnostic* find_code(const std::vector<an::Diagnostic>& ds,
                                const std::string& code) {
  for (const an::Diagnostic& d : ds) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

bool message_of(const std::vector<an::Diagnostic>& ds,
                const std::string& code, const std::string& needle) {
  const an::Diagnostic* d = find_code(ds, code);
  return d != nullptr && d->message.find(needle) != std::string::npos;
}

ph::AcousticModel small_model(int space_order = 4) {
  tg::Extents3 e{20, 18, 16};
  ph::Geometry geom{e, 10.0, space_order, 4};
  return ph::make_acoustic_layered(geom, 1.5, 3.0, 3);
}

sp::SparseTimeSeries center_source(const ph::AcousticModel& model, int nt) {
  sp::SparseTimeSeries src(
      sp::single_center_source(model.geom.extents, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.015));
  return src;
}

}  // namespace

// ---------------------------------------------------------------- intervals

TEST(Interval, LatticeArithmetic) {
  EXPECT_EQ(Interval::point(2) + Interval::point(3), Interval::point(5));
  EXPECT_EQ(Interval(1, 2) * Interval(-3, 4), Interval(-6, 8));
  EXPECT_EQ(Interval(-1, 2) - Interval(0, 1), Interval(-2, 2));
  EXPECT_EQ(Interval(4, 6) / Interval(2, 2), Interval(2, 3));
  EXPECT_EQ(statics::hull(Interval::point(1), Interval::point(5)),
            Interval(1, 5));
  // A divisor spanning zero yields top (and the interpreter diagnoses it).
  EXPECT_EQ(Interval(1, 2) / Interval(-1, 1), Interval::top());
  // The 0 * inf convention: an exactly-zero factor annihilates.
  EXPECT_EQ(Interval::point(0) * Interval::top(), Interval::point(0));
  // Inverted endpoints collapse to top rather than an empty interval.
  EXPECT_EQ(Interval(2, 1), Interval::top());
  EXPECT_TRUE(Interval(1, 2).bounded());
  EXPECT_FALSE(Interval::top().bounded());
  EXPECT_EQ(Interval(-3, 2).mag(), 3.0);
  EXPECT_TRUE(Interval(0, 1).contains(0.0));
}

TEST(Interval, EvalWalksTheTree) {
  namespace ir = dsl::ir;
  const statics::BoundEnv env = statics::conventional_bounds();
  // 2 * vp with vp in [1.5, 4.5].
  EXPECT_EQ(statics::eval(*ir::bin('*', ir::cnst(2.0), ir::pref("vp")), env),
            Interval(3, 9));
}

TEST(Intervals, LoweredAcousticCleanUnderConventionalBounds) {
  const dsl::LoweredKernel lk = lower_acoustic(4, 0.5);
  const statics::IntervalReport report =
      statics::interpret(lk, statics::conventional_bounds());
  EXPECT_TRUE(report.clean()) << report.str();
  EXPECT_EQ(report.unbounded_inputs, 0);
  EXPECT_TRUE(report.value.bounded()) << report.value.str();
}

TEST(Intervals, DivisorSpanningZeroIsAnError) {
  namespace ir = dsl::ir;
  dsl::LoweredKernel lk;
  lk.name = "div-test";
  lk.update = ir::bin('/', ir::cnst(1.0), ir::pref("damp"));
  const statics::IntervalReport report =
      statics::interpret(lk, statics::conventional_bounds());
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(message_of(report.diagnostics, "possible-div-by-zero",
                         "divisor damp spans [0, 1]"))
      << report.str();
}

TEST(Intervals, UndeclaredInputIsNotedAndMakesTheUpdateUnbounded) {
  namespace ir = dsl::ir;
  dsl::LoweredKernel lk;
  lk.update = ir::bin('*', ir::pref("mystery"), ir::cnst(2.0));
  const statics::IntervalReport report = statics::interpret(lk, {});
  EXPECT_EQ(report.unbounded_inputs, 1);
  EXPECT_TRUE(
      message_of(report.diagnostics, "unbounded-input", "'mystery'"))
      << report.str();
  EXPECT_TRUE(message_of(report.diagnostics, "unbounded-update",
                         "undeclared input bounds"))
      << report.str();
  EXPECT_FALSE(report.clean());
}

TEST(Intervals, UnboundedGrowthWithBoundedInputsIsFatal) {
  namespace ir = dsl::ir;
  dsl::LoweredKernel lk;
  lk.update = ir::bin('+', ir::pref("p"), ir::cnst(1.0));
  statics::BoundEnv env;
  env["p"] = Interval(1.0, std::numeric_limits<double>::infinity());
  const statics::IntervalReport report = statics::interpret(lk, env);
  EXPECT_EQ(report.unbounded_inputs, 0);
  EXPECT_TRUE(message_of(report.diagnostics, "unbounded-update",
                         "although every input is bounded"))
      << report.str();
}

TEST(Intervals, ConstantSubtreeReportedAsFoldLint) {
  namespace ir = dsl::ir;
  dsl::LoweredKernel lk;
  // (2 + 3) * m: the constant child is maximal under a non-constant parent.
  lk.update = ir::bin('*', ir::bin('+', ir::cnst(2.0), ir::cnst(3.0)),
                      ir::pref("m"));
  const statics::IntervalReport report =
      statics::interpret(lk, statics::conventional_bounds());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.foldable_subtrees, 1);
  EXPECT_EQ(report.foldable_ops, 1);
  EXPECT_TRUE(message_of(report.diagnostics, "const-foldable",
                         "always evaluates to 5"))
      << report.str();
}

TEST(Intervals, EmptyUpdateIsAnError) {
  const dsl::LoweredKernel lk;  // update == nullptr
  const statics::IntervalReport report = statics::interpret(lk, {});
  EXPECT_NE(find_code(report.diagnostics, "empty-update"), nullptr);
  EXPECT_FALSE(report.clean());
}

// ---------------------------------------------------------------- stability

TEST(Stability, CriticalDtSitsInsideTheBoundWithHeadroom) {
  const statics::StabilityVerdict v =
      statics::check_acoustic_stability(1.0, 10.0, 4, Interval(1.5, 4.5));
  EXPECT_TRUE(v.stable()) << v.str();
  // so=4: S1 = 16/3, bound = 2h / (vp_max * sqrt(3 S1)) = 20 / (4.5 * 4).
  EXPECT_NEAR(v.bound, 20.0 / (4.5 * 4.0), 1e-12);
  EXPECT_NE(find_code(v.diagnostics, "cfl-headroom"), nullptr);
}

TEST(Stability, UnstableDtNamesTheViolatedBound) {
  const statics::StabilityVerdict v =
      statics::check_acoustic_stability(3.0, 10.0, 4, Interval(1.5, 4.5));
  EXPECT_FALSE(v.stable());
  EXPECT_TRUE(message_of(v.diagnostics, "unstable-dt",
                         "exceeds the von Neumann bound"))
      << v.str();
  EXPECT_TRUE(message_of(v.diagnostics, "unstable-dt", "vp_max=4.5"));
  EXPECT_THROW(statics::require_stable(v, "test"),
               statics::StaticVerificationError);
}

TEST(Stability, DegenerateSpecsAreRejectedNotMisjudged) {
  EXPECT_NE(find_code(statics::check_acoustic_stability(0.0, 10.0, 4,
                                                        Interval(1.5, 4.5))
                          .diagnostics,
                      "invalid-spec"),
            nullptr);
  EXPECT_NE(find_code(statics::check_acoustic_stability(1.0, 10.0, 3,
                                                        Interval(1.5, 4.5))
                          .diagnostics,
                      "invalid-spec"),
            nullptr);
  // An unbounded or non-positive velocity interval admits no bound at all.
  EXPECT_NE(find_code(statics::check_acoustic_stability(1.0, 10.0, 4,
                                                        Interval::top())
                          .diagnostics,
                      "unbound-velocity"),
            nullptr);
  EXPECT_NE(find_code(statics::check_bound(1.0, 0.0, 4.5, 10.0, 4, "tti")
                          .diagnostics,
                      "invalid-spec"),
            nullptr);
}

TEST(Stability, OrderTwoBoundIsTheLoosest) {
  // S1 grows with the space order, so the construction-time so=2 floor can
  // never falsely reject a dt that a higher order would admit.
  const double b2 =
      statics::check_acoustic_stability(0.1, 10.0, 2, Interval(1.5, 4.5))
          .bound;
  const double b4 =
      statics::check_acoustic_stability(0.1, 10.0, 4, Interval(1.5, 4.5))
          .bound;
  const double b8 =
      statics::check_acoustic_stability(0.1, 10.0, 8, Interval(1.5, 4.5))
          .bound;
  EXPECT_GT(b2, b4);
  EXPECT_GT(b4, b8);
}

// --------------------------------------------------------------------- lint

TEST(Lint, LoweredAcousticIsClean) {
  const dsl::LoweredKernel lk = lower_acoustic(4, 0.5);
  statics::LintOptions opts;
  opts.resolvable = {"m", "damp"};
  const statics::LintReport lint = statics::lint_kernel(lk, opts);
  EXPECT_TRUE(lint.clean()) << lint.str();
}

TEST(Lint, OutOfHaloReadNamesTheOffendingLoad) {
  dsl::LoweredKernel lk = lower_acoustic(4, 0.5);
  const int r = lk.radius();
  ASSERT_EQ(r, 2);
  lk.update = dsl::ir::bin('+', lk.update,
                           dsl::ir::load(lk.field, 0, r + 3, 0, 0));
  statics::LintOptions opts;
  opts.declared_radius = r;
  const statics::LintReport lint = statics::lint_kernel(lk, opts);
  EXPECT_FALSE(lint.clean());
  EXPECT_TRUE(message_of(lint.diagnostics, "out-of-halo-read", "u[t][x+5]"))
      << lint.str();
  EXPECT_TRUE(message_of(lint.diagnostics, "out-of-halo-read",
                         "declared halo radius is 2"));
  // The same load also escapes the access hull the legality proof uses.
  EXPECT_TRUE(message_of(lint.diagnostics, "footprint-mismatch",
                         "outside the declared hull"))
      << lint.str();
}

TEST(Lint, UnboundParamListsTheResolvableNames) {
  const dsl::LoweredKernel lk = lower_acoustic(4, 0.5, "eta");
  statics::LintOptions opts;
  opts.resolvable = {"m", "damp", "vp"};
  const statics::LintReport lint = statics::lint_kernel(lk, opts);
  EXPECT_FALSE(lint.clean());
  EXPECT_TRUE(message_of(lint.diagnostics, "unbound-param", "'eta'"))
      << lint.str();
  EXPECT_TRUE(message_of(lint.diagnostics, "unbound-param", "damp"));
  // An empty resolvable list disables the check (callers without bindings).
  opts.resolvable.clear();
  EXPECT_TRUE(statics::lint_kernel(lk, opts).clean());
}

TEST(Lint, MultiplyByZeroIsDeadCode) {
  namespace ir = dsl::ir;
  dsl::LoweredKernel lk;
  lk.update = ir::bin('+', ir::pref("m"),
                      ir::bin('*', ir::cnst(0.0), ir::pref("damp")));
  const statics::LintReport lint = statics::lint_kernel(lk, {});
  EXPECT_TRUE(lint.clean());
  EXPECT_NE(find_code(lint.diagnostics, "dead-subexpression"), nullptr)
      << lint.str();
}

TEST(Lint, DuplicateSubtreesReportedAsCseOpportunity) {
  namespace ir = dsl::ir;
  const dsl::ir::ExprPtr dup = ir::bin('*', ir::pref("m"), ir::pref("damp"));
  dsl::LoweredKernel lk;
  lk.update = ir::bin('+', dup, dup);
  const statics::LintReport lint = statics::lint_kernel(lk, {});
  EXPECT_TRUE(lint.clean());
  EXPECT_GE(lint.duplicate_subtrees, 1);
  EXPECT_GE(lint.duplicate_ops, 1);
  EXPECT_NE(find_code(lint.diagnostics, "cse-opportunity"), nullptr)
      << lint.str();
}

TEST(Lint, DeclaredButNeverLoadedHullIsDeadAccess) {
  dsl::LoweredKernel lk = lower_acoustic(4, 0.5);
  dsl::ir::Access ghost;
  ghost.field = lk.field;
  ghost.is_write = false;
  ghost.time = -2;  // the acoustic update reads t and t-1 only
  ghost.x = ghost.y = ghost.z = dsl::ir::Subscript::range(-2, 2);
  lk.accesses.push_back(ghost);
  const statics::LintReport lint = statics::lint_kernel(lk, {});
  EXPECT_TRUE(lint.clean());
  EXPECT_TRUE(message_of(lint.diagnostics, "dead-access", "t-2"))
      << lint.str();
}

// --------------------------------------------------------------- interference

TEST(Interference, EveryScheduleFamilyProvenRaceFreeForAcoustic) {
  const an::AccessSummary summary = ph::acoustic_access_summary(4);
  const int slope = summary.radius;
  const std::vector<an::ScheduleDescriptor> schedules = {
      an::ScheduleDescriptor::reference(),
      an::ScheduleDescriptor::space_blocked(),
      an::ScheduleDescriptor::wavefront(slope),
      an::ScheduleDescriptor::fused(slope),
      an::ScheduleDescriptor::diamond(slope)};
  for (const an::ScheduleDescriptor& sched : schedules) {
    const statics::InterferenceReport report = statics::prove_race_free(
        statics::TileModel::from_summary(summary, sched, 64, 64, 192, 192,
                                         /*receivers=*/true));
    EXPECT_TRUE(report.race_free()) << report.str();
    EXPECT_GT(report.tasks, 0) << sched.str();
  }
  // The wavefront staircase leaves genuinely unordered pairs — the proof
  // checked real obligations rather than a fully serialised DAG.
  const statics::InterferenceReport wf = statics::prove_race_free(
      statics::TileModel::from_summary(
          summary, an::ScheduleDescriptor::wavefront(slope), 64, 64, 192,
          192, true));
  EXPECT_GT(wf.unordered_pairs, 0);
}

TEST(Interference, UndershotSkewSlopeNamesTheInterferingTilePair) {
  statics::TileModel tm;
  tm.schedule = an::ScheduleDescriptor::wavefront(/*slope=*/1, /*tile_t=*/8);
  tm.radius = 2;  // reads reach 2 per substep, the band only skews by 1
  const statics::InterferenceReport report = statics::prove_race_free(tm);
  EXPECT_FALSE(report.race_free());
  EXPECT_GT(report.conflicts, 0);
  EXPECT_TRUE(message_of(report.diagnostics, "tile-interference", "tile("))
      << report.str();
  EXPECT_THROW(statics::require_race_free(report),
               statics::TileInterferenceError);
}

// ------------------------------------------------------------------- facade

TEST(Verify, CombinedReportRejectsUnstableDtAndAllowUnstableDemotesIt) {
  const dsl::LoweredKernel lk = lower_acoustic(4, 3.0);
  statics::StaticsOptions opts;
  opts.bounds = statics::conventional_bounds();
  opts.resolvable = {"m", "damp", "vp"};
  const statics::StaticsReport report = statics::verify_statics(lk, opts);
  EXPECT_FALSE(report.ok()) << report.str();
  EXPECT_TRUE(message_of(report.diagnostics(), "unstable-dt",
                         "exceeds the von Neumann bound"));
  EXPECT_THROW(statics::require_static_ok(report),
               statics::StaticVerificationError);

  opts.allow_unstable = true;
  const statics::StaticsReport allowed = statics::verify_statics(lk, opts);
  EXPECT_TRUE(allowed.ok()) << allowed.str();
  EXPECT_TRUE(message_of(allowed.diagnostics(), "unstable-dt",
                         "allow_unstable"))
      << allowed.str();
}

TEST(Verify, ThrownErrorCarriesTheReport) {
  const dsl::LoweredKernel lk = lower_acoustic(4, 3.0);
  statics::StaticsOptions opts;
  opts.bounds = statics::conventional_bounds();
  try {
    statics::require_static_ok(statics::verify_statics(lk, opts));
    FAIL() << "unstable dt was not rejected";
  } catch (const statics::StaticVerificationError& e) {
    EXPECT_GT(e.report().errors(), 0);
    EXPECT_NE(std::string(e.what()).find("von Neumann"), std::string::npos);
  }
}

TEST(Verify, ModelBoundsScanTheConcreteGrids) {
  const ph::AcousticModel model = small_model();
  const statics::BoundEnv env = statics::model_bounds(model, {});
  ASSERT_TRUE(env.count("vp"));
  EXPECT_NEAR(env.at("vp").lo, 1.5, 1e-6);
  EXPECT_NEAR(env.at("vp").hi, 3.0, 1e-6);
  ASSERT_TRUE(env.count("damp"));
  EXPECT_GE(env.at("damp").lo, 0.0);
  // The halo is storage, not data: interiors only, so vp.lo stays positive.
  EXPECT_GT(statics::grid_interval(model.vp).lo, 0.0);
}

// -------------------------------------------------------------------- gates

TEST(Gates, OperatorConstructionRejectsStaticallyUnstableDt) {
  dsl::Grid g;
  dsl::TimeFunction u("u", g, 4, 2);
  const dsl::Eq eq = dsl::solve(dsl::param("m") * u.dt2() +
                                    dsl::param("damp") * u.dt() -
                                    u.laplace(),
                                u.forward());
  dsl::OperatorOptions opts;
  opts.dt = 5.0;  // so=2 floor bound at h=10, vp_max=4.5 is ~1.28 ms
  opts.spacing = 10.0;
  opts.declared_bounds = statics::conventional_bounds();
  EXPECT_THROW(dsl::Operator({eq}, {}, {}, opts),
               statics::StaticVerificationError);
  // Deliberate divergence experiments opt out; every other gate remains.
  opts.allow_unstable = true;
  EXPECT_NO_THROW(dsl::Operator({eq}, {}, {}, opts));
}

TEST(Gates, OperatorConstructionRejectsDivergentGenericUpdate) {
  dsl::Grid g;
  dsl::TimeFunction u("u", g, 4, 2);
  // Generic class (the dt2 coefficient is not the acoustic model's own):
  // eta in [0, 1] can vanish, so the lowered update divides by zero.
  const dsl::Eq eq =
      dsl::solve(dsl::param("eta") * u.dt2() - u.laplace(), u.forward());
  dsl::OperatorOptions opts;
  opts.declared_bounds["u"] = Interval(-1.0, 1.0);
  opts.declared_bounds["eta"] = Interval(0.0, 1.0);
  try {
    const dsl::Operator op({eq}, {}, {}, opts);
    FAIL() << "possible-div-by-zero update was not rejected";
  } catch (const statics::StaticVerificationError& e) {
    EXPECT_NE(find_code(e.report().diagnostics(), "possible-div-by-zero"),
              nullptr);
  }
  // A strictly positive declared bound discharges the obligation.
  opts.declared_bounds["eta"] = Interval(0.1, 1.0);
  EXPECT_NO_THROW(dsl::Operator({eq}, {}, {}, opts));
}

TEST(Gates, OperatorApplyRejectsUnstableDtAgainstTheConcreteModel) {
  dsl::Grid g;
  dsl::TimeFunction u("u", g, 4, 2);
  const dsl::Eq eq = dsl::solve(dsl::param("m") * u.dt2() +
                                    dsl::param("damp") * u.dt() -
                                    u.laplace(),
                                u.forward());
  dsl::OperatorOptions opts;
  opts.dt = 3.0;  // sharp so=4 bound at vp_max=3.0 is 20/12 ~ 1.67 ms
  const dsl::Operator op({eq}, {}, {}, opts);  // no declared bounds: passes
  const ph::AcousticModel model = small_model();
  const sp::SparseTimeSeries src = center_source(model, 4);
  EXPECT_THROW((void)op.apply(model, src), statics::StaticVerificationError);
}

TEST(Gates, DslPropagatorRejectsUnstableDtUnlessAllowed) {
  dsl::Grid g;
  dsl::TimeFunction u("u", g, 4, 2);
  const dsl::Eq eq = dsl::solve(dsl::param("m") * u.dt2() +
                                    dsl::param("damp") * u.dt() -
                                    u.laplace(),
                                u.forward());
  const ph::AcousticModel model = small_model();
  ph::PropagatorOptions popts;
  popts.dt = 3.0;
  EXPECT_THROW(dsl::DslPropagator(eq, model, popts),
               statics::StaticVerificationError);
  popts.allow_unstable = true;
  EXPECT_NO_THROW(dsl::DslPropagator(eq, model, popts));
}

TEST(Gates, DslKernelRefusesACorruptedTree) {
  const ph::AcousticModel model = small_model();
  dsl::LoweredKernel lk = lower_acoustic(4, 0.5);
  lk.update = dsl::ir::bin(
      '+', lk.update, dsl::ir::load(lk.field, 0, lk.radius() + 3, 0, 0));
  tg::TimeBuffer<real_t> u(3, model.geom.extents, model.geom.radius());
  try {
    dsl::DslKernel k(lk, model, {}, u, 0.5);
    FAIL() << "out-of-halo tree was not refused";
  } catch (const statics::StaticVerificationError& e) {
    EXPECT_NE(find_code(e.report().diagnostics(), "out-of-halo-read"),
              nullptr);
  }
}

TEST(Gates, JitAcousticRefusesAStaticallyUnstableSpecBeforeCompiling) {
  const ph::AcousticModel model = small_model();
  cg::KernelSpec spec;
  spec.dt = 5.0;  // far beyond the so=4 bound for this model
  // Throws before any compiler invocation: a diverging spec is a caller
  // bug, not a toolchain failure, so no interpreter fallback either.
  EXPECT_THROW(cg::JitAcoustic(model, spec),
               statics::StaticVerificationError);
}

TEST(Gates, JitDslRefusesACorruptedTreeBeforeCompiling) {
  const ph::AcousticModel model = small_model();
  dsl::LoweredKernel lk = lower_acoustic(4, 0.5);
  lk.update = dsl::ir::bin(
      '+', lk.update, dsl::ir::load(lk.field, 0, lk.radius() + 3, 0, 0));
  cg::KernelSpec spec;
  spec.kernel = lk.name;
  spec.dt = 0.5;
  try {
    cg::JitDsl jit(std::move(lk), model, spec);
    FAIL() << "out-of-halo tree was not refused at JIT compile";
  } catch (const statics::StaticVerificationError& e) {
    EXPECT_NE(find_code(e.report().diagnostics(), "out-of-halo-read"),
              nullptr);
    EXPECT_NE(find_code(e.report().diagnostics(), "footprint-mismatch"),
              nullptr);
  }
}
