// Cross-cutting coverage: edge cases and behaviours that the per-module
// suites don't reach — snapshot callbacks, anisotropic extents, reflective
// boundaries, interpreter physics, generated-code variants, IR pass
// orderings, and trace/cachesim scaling.

#include <gtest/gtest.h>

#include <cmath>

#include "tempest/cachesim/instrumented_acoustic.hpp"
#include "tempest/codegen/jit.hpp"
#include "tempest/dsl/interpreter.hpp"
#include "tempest/dsl/operator.hpp"
#include "tempest/dsl/passes.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace tc = tempest::core;
namespace dsl = tempest::dsl;
namespace cg = tempest::codegen;
namespace cs = tempest::cachesim;
using tempest::real_t;

namespace {

ph::AcousticModel small_model(tg::Extents3 e, int so = 4, int nbl = 4) {
  ph::Geometry g{e, 10.0, so, nbl};
  return ph::make_acoustic_layered(g, 1.5, 3.0, 3);
}

sp::SparseTimeSeries center_src(const ph::AcousticModel& m, int nt,
                                double f0 = 0.02) {
  sp::SparseTimeSeries src(
      sp::single_center_source(m.geom.extents, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, m.critical_dt(), f0));
  return src;
}

}  // namespace

TEST(Snapshots, CallbackFiresOncePerTimestep) {
  const auto model = small_model({16, 14, 12});
  const int nt = 12;
  const auto src = center_src(model, nt);
  ph::AcousticPropagator p(model);
  std::vector<int> steps;
  p.run(ph::Schedule::SpaceBlocked, src, nullptr,
        [&](int t_done) { steps.push_back(t_done); });
  ASSERT_EQ(static_cast<int>(steps.size()), nt - 1);
  for (int i = 0; i < nt - 1; ++i) EXPECT_EQ(steps[static_cast<std::size_t>(i)], i + 2);
}

TEST(Snapshots, CallbackSeesCurrentWavefield) {
  const auto model = small_model({16, 14, 12});
  // High peak frequency so the wavelet actually rings inside the short run
  // (t0 = 1.5/f0 ~ 30 ms ~ step 14 of 20).
  const int nt = 20;
  const auto src = center_src(model, nt, /*f0=*/0.05);
  ph::AcousticPropagator p(model);
  std::vector<tg::Grid3<real_t>> snaps;
  p.run(ph::Schedule::SpaceBlocked, src, nullptr,
        [&](int t_done) { snaps.push_back(p.wavefield(t_done)); });
  // The final snapshot equals the final wavefield.
  EXPECT_EQ(tg::max_abs_diff(snaps.back(), p.wavefield(nt)), 0.0);
  // Energy grows from (near-)zero ICs as the source rings: the first
  // snapshot carries only the Ricker's tiny pre-onset tail.
  EXPECT_LT(tg::max_abs(snaps.front()), 1e-3 * tg::max_abs(snaps.back()));
}

TEST(Snapshots, RejectedUnderTemporalBlocking) {
  const auto model = small_model({16, 14, 12});
  const auto src = center_src(model, 8);
  ph::AcousticPropagator p(model);
  EXPECT_THROW(p.run(ph::Schedule::Wavefront, src, nullptr, [](int) {}),
               tempest::util::PreconditionError);
}

TEST(Acoustic, StronglyAnisotropicExtentsUnderAllSchedules) {
  // nx >> ny >> nz stresses tile clipping on every axis.
  const auto model = small_model({40, 12, 6});
  const int nt = 14;
  const auto src = center_src(model, nt);
  ph::AcousticPropagator base(model);
  base.run(ph::Schedule::SpaceBlocked, src, nullptr);
  const auto u_base = base.wavefield(nt);

  for (auto sched : {ph::Schedule::Wavefront, ph::Schedule::Diamond}) {
    ph::PropagatorOptions opts;
    opts.tiles = tc::TileSpec{5, 16, 8, 8, 4};
    ph::AcousticPropagator p(model, opts);
    p.run(sched, src, nullptr);
    EXPECT_EQ(tg::max_abs_diff(u_base, p.wavefield(nt)), 0.0)
        << ph::to_string(sched);
  }
}

TEST(Acoustic, ReflectiveBoundariesConserveMoreEnergy) {
  // nbl = 0: rigid (Dirichlet) box. Energy decays far slower than with the
  // sponge, and the schedules still agree.
  ph::Geometry g{{20, 20, 20}, 10.0, 4, 0};
  const auto model = ph::make_acoustic_homogeneous(g, 1.5);
  const int nt = 60;
  sp::SparseTimeSeries src(sp::single_center_source(g.extents, 0.5), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));

  ph::AcousticPropagator p(model);
  p.run(ph::Schedule::SpaceBlocked, src, nullptr);
  const auto u_base = p.wavefield(nt);
  EXPECT_GT(tg::max_abs(u_base), 0.0);

  p.run(ph::Schedule::Wavefront, src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(u_base, p.wavefield(nt)), 0.0);
}

TEST(Interpreter, DampingTermActuallyDamps) {
  // Interpret the same equation with and without the damp term on a model
  // with a strong sponge: the undamped run must retain more energy.
  const tg::Extents3 e{14, 14, 14};
  ph::Geometry g{e, 10.0, 4, 5};
  const auto model = ph::make_acoustic_homogeneous(g, 1.5);
  const double dt = model.critical_dt();
  const int nt = 40;
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.5), nt);
  src.broadcast_signature(sp::ricker(nt, dt, 0.025));

  dsl::Grid grid{e, g.spacing};
  dsl::TimeFunction u("u", grid, 4, 2);
  const dsl::Eq damped = dsl::solve(
      dsl::param("m") * u.dt2() + dsl::param("damp") * u.dt() - u.laplace(),
      u.forward());
  const dsl::Eq undamped =
      dsl::solve(dsl::param("m") * u.dt2() - u.laplace(), u.forward());

  dsl::Interpreter di(damped, model, dt);
  dsl::Interpreter ui(undamped, model, dt);
  const double e_damped =
      tg::max_abs(di.run(src, sp::InterpKind::Trilinear));
  const double e_undamped =
      tg::max_abs(ui.run(src, sp::InterpKind::Trilinear));
  EXPECT_GT(e_undamped, e_damped * 1.2);
}

TEST(Interpreter, WindowedSincInjectionSupported) {
  const tg::Extents3 e{12, 12, 12};
  ph::Geometry g{e, 10.0, 4, 2};
  const auto model = ph::make_acoustic_homogeneous(g, 1.5);
  const double dt = model.critical_dt();
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.5), 8);
  src.broadcast_signature(sp::ricker(8, dt, 0.03));
  dsl::Grid grid{e, g.spacing};
  dsl::TimeFunction u("u", grid, 4, 2);
  const dsl::Eq eq = dsl::solve(
      dsl::param("m") * u.dt2() - u.laplace(), u.forward());
  dsl::Interpreter in(eq, model, dt);
  const auto field = in.run(src, sp::InterpKind::WindowedSinc);
  EXPECT_GT(tg::max_abs(field), 0.0);
}

TEST(Passes, TimeTileWorksWithoutSparseFusion) {
  // The tiling pass applies to the plain Listing 1 nest too (no sources).
  namespace ir = dsl::ir;
  ir::Node root = dsl::passes::build_timestepping("A(t,x,y,z)", false, false);
  dsl::passes::time_tile(root, 4);
  const auto order = ir::loop_order(root);
  const std::vector<std::string> expected{"tt", "xs", "ys", "t", "x", "y",
                                          "z"};
  EXPECT_EQ(order, expected);
}

TEST(Passes, FusionWithoutReceiversLeavesNoZ3Loop) {
  namespace ir = dsl::ir;
  ir::Node root = dsl::passes::build_timestepping("A(t,x,y,z)", true, false);
  dsl::passes::precompute_and_fuse(root);
  EXPECT_NE(ir::find_loop(root, "z2"), nullptr);
  EXPECT_EQ(ir::find_loop(root, "z3"), nullptr);
}

TEST(Passes, StageTextsDiffer) {
  dsl::Grid g{{16, 16, 16}, 10.0};
  dsl::TimeFunction u("u", g, 4, 2);
  const dsl::Eq eq = dsl::solve(
      dsl::param("m") * u.dt2() - u.laplace(), u.forward());
  dsl::SparseTimeFunction s("src", sp::single_center_source({16, 16, 16}),
                            8);
  dsl::Operator op({eq}, {s.inject(u, dsl::param("x"))}, {}, {});
  const auto s0 = op.ccode_stage(0);
  const auto s1 = op.ccode_stage(1);
  const auto s2 = op.ccode_stage(2);
  const auto s3 = op.ccode_stage(3);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s2, s3);
  EXPECT_NE(s1.find("SM[x, y, z2]"), std::string::npos);
  EXPECT_EQ(s2.find("SM[x, y, z2]"), std::string::npos);  // compressed away
}

TEST(Codegen, HighOrderWeightsEmitted) {
  cg::KernelSpec spec;
  spec.space_order = 12;
  const std::string code = cg::emit_acoustic_c(spec);
  // O(2,12) reaches +-6 points (on the hoisted restrict row pointer).
  EXPECT_NE(code.find("ucr[z + 6]"), std::string::npos);
  EXPECT_NE(code.find("ucr[z - 6*sx]"), std::string::npos);
  // The inner loop carries the vectorization pragma and hint.
  EXPECT_NE(code.find("#pragma omp simd simdlen("), std::string::npos);
}

TEST(Codegen, CustomFlagsRespected) {
  // -O0 compiles too; behaviour must be identical.
  cg::JitModule mod("int tempest_two(void) { return 2; }", "tempest_two",
                    "-O0");
  EXPECT_EQ(mod.as<int(void)>()(), 2);
}

TEST(Codegen, ModuleIsMovable) {
  cg::JitModule a("int tempest_seven(void) { return 7; }", "tempest_seven");
  cg::JitModule b = std::move(a);
  EXPECT_EQ(b.as<int(void)>()(), 7);
  cg::JitModule c("int tempest_nine(void) { return 9; }", "tempest_nine");
  c = std::move(b);
  EXPECT_EQ(c.as<int(void)>()(), 7);
}

TEST(Trace, AccessCountGrowsWithSpaceOrder) {
  const cs::CacheConfig l1{8 * 1024, 8, 64};
  const cs::CacheConfig l2{64 * 1024, 8, 64};
  const cs::CacheConfig l3{512 * 1024, 16, 64};
  double bytes_so4 = 0, bytes_so8 = 0;
  for (int so : {4, 8}) {
    cs::TraceConfig cfg;
    cfg.extents = {16, 16, 16};
    cfg.space_order = so;
    cfg.t_begin = 1;
    cfg.t_end = 3;
    cfg.tiles = tc::TileSpec{2, 8, 8, 4, 4};
    cs::CacheHierarchy h(l1, l2, l3);
    (void)cs::replay_acoustic_trace(cfg, h);
    (so == 4 ? bytes_so4 : bytes_so8) = h.traffic().l1_bytes;
  }
  // Per point: (6R + 4) loads + 1 store of 4 bytes.
  const double expected_ratio = (6.0 * 4 + 5) / (6.0 * 2 + 5);
  EXPECT_NEAR(bytes_so8 / bytes_so4, expected_ratio, 0.01);
}

TEST(Trace, UpdateCountIndependentOfSchedule) {
  const cs::CacheConfig tiny{8 * 1024, 8, 64};
  for (bool wavefront : {false, true}) {
    cs::TraceConfig cfg;
    cfg.extents = {12, 10, 8};
    cfg.space_order = 4;
    cfg.t_begin = 2;
    cfg.t_end = 7;
    cfg.tiles = tc::TileSpec{3, 6, 6, 3, 3};
    cfg.wavefront = wavefront;
    cs::CacheHierarchy h(tiny, tiny, tiny);
    EXPECT_EQ(cs::replay_acoustic_trace(cfg, h), 5ll * 12 * 10 * 8);
  }
}

TEST(Schedules, DiamondAndWavefrontAgreeOnAcoustic) {
  const auto model = small_model({24, 18, 14});
  const int nt = 16;
  const auto src = center_src(model, nt);

  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{4, 16, 16, 8, 8};
  ph::AcousticPropagator p(model, opts);
  p.run(ph::Schedule::Wavefront, src, nullptr);
  const auto u_wf = p.wavefield(nt);
  p.run(ph::Schedule::Diamond, src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(u_wf, p.wavefield(nt)), 0.0);
}
