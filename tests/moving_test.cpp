// Moving off-the-grid sources: the paper's noted extension ("our algorithm
// is independent of it"). These tests prove that independence end to end: a
// toy damped-wave stencil propagated with naive per-timestep moving scatter
// under the legal space-blocked schedule equals the same propagation with
// the decomposed/fused/compressed moving sources under wave-front temporal
// blocking.

#include <gtest/gtest.h>

#include <cmath>

#include "tempest/core/compress.hpp"
#include "tempest/core/fused.hpp"
#include "tempest/core/moving.hpp"
#include "tempest/core/wavefront.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace tc = tempest::core;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
using tempest::real_t;

namespace {

constexpr tg::Extents3 kE{24, 20, 16};

tc::MovingSources make_tow(int n, int nt) {
  auto src = tc::MovingSources::linear_tow({4.3, 9.6, 7.2}, {16.8, 9.6, 7.2},
                                           n, nt);
  src.broadcast_signature(sp::ricker(nt, 1.0, 0.08));
  return src;
}

}  // namespace

TEST(MovingSources, ConstructionValidation) {
  EXPECT_THROW(tc::MovingSources({}, 1), tempest::util::PreconditionError);
  std::vector<sp::CoordList> uneven{{{1, 1, 1}}, {{1, 1, 1}, {2, 2, 2}}};
  EXPECT_THROW(tc::MovingSources(std::move(uneven), 1),
               tempest::util::PreconditionError);
}

TEST(MovingSources, LinearTowGeometry) {
  const auto src = tc::MovingSources::linear_tow({2.5, 3.5, 4.5},
                                                 {10.5, 3.5, 4.5}, 3, 5);
  EXPECT_EQ(src.nt(), 5);
  EXPECT_EQ(src.nsrc(), 3);
  // Endpoints hit the requested positions for source 0.
  EXPECT_NEAR(src.coords(0)[0].x, 2.5, 1e-12);
  EXPECT_NEAR(src.coords(4)[0].x, 10.5, 1e-12);
  // x advances monotonically; y/z constant.
  for (int t = 1; t < 5; ++t) {
    EXPECT_GT(src.coords(t)[0].x, src.coords(t - 1)[0].x);
    EXPECT_DOUBLE_EQ(src.coords(t)[0].y, 3.5);
  }
}

TEST(MovingSources, MasksUnionAllTimesteps) {
  const auto src = make_tow(1, 6);
  const auto masks =
      tc::build_moving_masks(kE, src, sp::InterpKind::Trilinear);
  // A static source touches 8 points; a moving one strictly more.
  EXPECT_GT(masks.npts, 8);
  // Every per-timestep support point is inside the mask.
  for (int t = 0; t < src.nt(); ++t) {
    for (const auto& p :
         sp::support(src.coords(t)[0], sp::InterpKind::Trilinear, kE)) {
      EXPECT_EQ(masks.sm(p.x, p.y, p.z), 1) << "t=" << t;
    }
  }
}

TEST(MovingSources, DecompositionMatchesNaiveScatterPerStep) {
  const auto src = make_tow(2, 8);
  const auto masks =
      tc::build_moving_masks(kE, src, sp::InterpKind::Trilinear);
  const auto dcmp =
      tc::decompose_moving(masks, src, sp::InterpKind::Trilinear);
  for (int t = 0; t < src.nt(); ++t) {
    tg::Grid3<real_t> naive(kE, 0, 0.0f);
    tc::inject_moving(naive, src, t, sp::InterpKind::Trilinear,
                      [](int, int, int) { return 1.0; });
    tg::Grid3<real_t> via(kE, 0, 0.0f);
    via.for_each_interior([&](int x, int y, int z) {
      const int id = masks.sid(x, y, z);
      if (id >= 0) via(x, y, z) = dcmp.at(t, id);
    });
    EXPECT_LT(tg::max_abs_diff(naive, via), 1e-6) << "t=" << t;
  }
}

TEST(MovingSources, StaticTowReducesToStaticPrecompute) {
  // A "moving" source that never moves must produce exactly the static
  // pipeline's masks and decomposition.
  const int nt = 6;
  const sp::Coord3 c{7.3, 8.6, 5.1};
  auto moving = tc::MovingSources::linear_tow(c, c, 1, nt);
  const auto wavelet = sp::ricker(nt, 1.0, 0.08);
  moving.broadcast_signature(wavelet);

  sp::SparseTimeSeries stat({c}, nt);
  stat.broadcast_signature(wavelet);

  const auto m_mask =
      tc::build_moving_masks(kE, moving, sp::InterpKind::Trilinear);
  const auto s_mask =
      tc::build_source_masks(kE, stat, sp::InterpKind::Trilinear);
  ASSERT_EQ(m_mask.npts, s_mask.npts);

  const auto m_dcmp =
      tc::decompose_moving(m_mask, moving, sp::InterpKind::Trilinear);
  const auto s_dcmp =
      tc::decompose_sources(s_mask, stat, sp::InterpKind::Trilinear);
  for (int t = 0; t < nt; ++t) {
    for (int id = 0; id < m_dcmp.npts(); ++id) {
      EXPECT_FLOAT_EQ(m_dcmp.at(t, id), s_dcmp.at(t, id));
    }
  }
}

namespace {

/// Toy damped wave propagation (radius-1 stencil) with moving injection,
/// parameterized by schedule. Sources are injected per (t, column) — the
/// fused placement — or globally after each sweep — the naive placement.
struct ToyWave {
  tg::TimeBuffer<real_t> u{3, kE, 1, 0.0f};

  void stencil_block(int t, const tg::Box3& b) {
    auto& un = u.at(t + 1);
    const auto& uc = u.at(t);
    const auto& up = u.at(t - 1);
    for (int x = b.x.lo; x < b.x.hi; ++x) {
      for (int y = b.y.lo; y < b.y.hi; ++y) {
        for (int z = b.z.lo; z < b.z.hi; ++z) {
          un(x, y, z) = 1.7f * uc(x, y, z) - 0.85f * up(x, y, z) +
                        0.04f * (uc(x - 1, y, z) + uc(x + 1, y, z) +
                                 uc(x, y - 1, z) + uc(x, y + 1, z) +
                                 uc(x, y, z - 1) + uc(x, y, z + 1) -
                                 6.0f * uc(x, y, z));
        }
      }
    }
  }
};

}  // namespace

TEST(MovingSources, WavefrontWithFusedMovingInjectionMatchesBaseline) {
  const int nt = 14;
  const auto src = make_tow(3, nt);
  const auto masks =
      tc::build_moving_masks(kE, src, sp::InterpKind::Trilinear);
  const auto dcmp =
      tc::decompose_moving(masks, src, sp::InterpKind::Trilinear);
  const tc::CompressedSparse cs(masks.sm, masks.sid);
  auto unit = [](int, int, int) { return 1.0; };
  const tc::TileSpec tiles{4, 8, 8, 4, 4};

  // Baseline: sweep then naive moving scatter, per timestep.
  ToyWave base;
  for (int t = 1; t < nt; ++t) {
    tc::run_spaceblocked(kE, t, t + 1, tiles,
                         [&](int tt, const tg::Box3& b) {
                           base.stencil_block(tt, b);
                         });
    tc::inject_moving(base.u.at(t + 1), src, t, sp::InterpKind::Trilinear,
                      unit);
  }

  // The paper's schedule: wave-front tiles with fused, compressed moving
  // injection per column.
  ToyWave wave;
  tc::run_wavefront(kE, 1, nt, /*slope=*/1, tiles,
                    [&](int t, const tg::Box3& b) {
                      wave.stencil_block(t, b);
                      tc::fused_inject(wave.u.at(t + 1), cs, dcmp, t, b.x,
                                       b.y, unit);
                    });

  for (int s = 0; s < 3; ++s) {
    EXPECT_LT(tg::max_abs_diff(base.u.slot(s), wave.u.slot(s)), 1e-5)
        << "slot " << s;
  }
  EXPECT_GT(tg::max_abs(wave.u.at(nt)), 0.0f);
}
