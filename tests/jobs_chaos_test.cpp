// Process-level chaos tests: the tentpole acceptance criterion, run as
// ctest cases. Each test drives jobs::run_chaos, which SIGKILLs a real
// 3-shot survey worker at five seeded-random mid-computation points,
// restarts it each time, and byte-compares the final gathers against an
// uninterrupted reference pass. The matrix covers every schedule for two
// physics kernels (acoustic and elastic), plus a pass that bit-flips the
// newest checkpoint between kills to force the rotation fallback.
//
// The worker is THIS binary re-exec'd with --worker, so main() dispatches
// before gtest ever sees the arguments (NO_GTEST_MAIN in CMake).

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "tempest/jobs/chaos.hpp"
#include "tempest/util/cli.hpp"

namespace jb = tempest::jobs;

namespace {

std::string self_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return std::string(buf);
}

/// Run the full kill/resume protocol for one (schedule, physics) cell.
/// Sizes are test-scale: 3 shots on an 18^3 grid — small enough that the
/// whole protocol (1 reference + 5 killed + 1 final worker process) stays
/// in ctest budget, large enough that kills land mid-propagation.
void expect_bit_identical_recovery(const std::string& schedule,
                                   const std::string& physics,
                                   bool corrupt = false,
                                   std::uint64_t seed = 7) {
  jb::ChaosSpec spec;
  spec.worker_args = {
      "--size=18",    "--steps=30",          "--shots=3",
      "--so=4",       "--physics=" + physics, "--schedule=" + schedule,
      "--ckpt-every=6",
  };
  spec.root = "/tmp/tempest_chaos_test_" + std::to_string(::getpid()) + "_" +
              schedule + "_" + physics + (corrupt ? "_corrupt" : "");
  spec.shots = 3;
  spec.kills = 5;
  spec.seed = seed;
  spec.corrupt = corrupt;

  const std::string self = self_path();
  ASSERT_FALSE(self.empty());
  const std::string err = jb::run_chaos(spec, self);
  EXPECT_EQ(err, "") << err;
  std::filesystem::remove_all(spec.root);  // kept only on failure
}

}  // namespace

// --- Every schedule, acoustic. Barrier schedules (reference,
// space-blocked) resume mid-shot from their checkpoints; temporally
// blocked schedules (wavefront, diamond) restart the in-flight shot from
// scratch — both must reproduce the gathers bitwise. ---

TEST(JobsChaos, AcousticReference) {
  expect_bit_identical_recovery("reference", "acoustic");
}

TEST(JobsChaos, AcousticSpaceBlocked) {
  expect_bit_identical_recovery("space-blocked", "acoustic");
}

TEST(JobsChaos, AcousticWavefront) {
  expect_bit_identical_recovery("wavefront", "acoustic");
}

TEST(JobsChaos, AcousticDiamond) {
  expect_bit_identical_recovery("diamond", "acoustic");
}

// --- Every schedule, elastic (the heaviest kernel: nine fields in every
// checkpoint). ---

TEST(JobsChaos, ElasticReference) {
  expect_bit_identical_recovery("reference", "elastic");
}

TEST(JobsChaos, ElasticSpaceBlocked) {
  expect_bit_identical_recovery("space-blocked", "elastic");
}

TEST(JobsChaos, ElasticWavefront) {
  expect_bit_identical_recovery("wavefront", "elastic");
}

TEST(JobsChaos, ElasticDiamond) {
  expect_bit_identical_recovery("diamond", "elastic");
}

// --- Corruption pass: a bit-flipped newest checkpoint mid-protocol must
// route recovery through the rotated predecessor, still bit-identical. ---

TEST(JobsChaos, CorruptedCheckpointFallsBackToRotatedGeneration) {
  expect_bit_identical_recovery("space-blocked", "acoustic",
                                /*corrupt=*/true, /*seed=*/11);
}

int main(int argc, char** argv) {
  // Worker dispatch MUST precede InitGoogleTest: the worker's flags are not
  // gtest flags, and the worker must never run the test suite.
  const tempest::util::Cli cli(argc, argv);
  if (cli.get_flag("worker")) return tempest::jobs::run_chaos_worker(cli);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
