#include <gtest/gtest.h>

#include <cmath>

#include "tempest/physics/elastic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace tc = tempest::core;
using tempest::real_t;

namespace {

struct Setup {
  ph::ElasticModel model;
  sp::SparseTimeSeries src;
  sp::SparseTimeSeries rec;
  int nt;
};

Setup make_setup(tg::Extents3 e, int so, int nt, int n_rec = 4) {
  ph::Geometry g{e, 10.0, so, /*nbl=*/4};
  Setup s{ph::make_elastic_layered(g, 1.5, 3.0, 3),
          sp::SparseTimeSeries(sp::single_center_source(e, 0.4), nt),
          sp::SparseTimeSeries(sp::receiver_line(e, n_rec, 0.15, 3), nt), nt};
  s.src.broadcast_signature(sp::ricker(nt, s.model.critical_dt(), 0.015));
  return s;
}

double fields_max(const ph::ElasticPropagator& p) {
  return std::max({tg::max_abs(p.vx()), tg::max_abs(p.vy()),
                   tg::max_abs(p.vz()), tg::max_abs(p.txx()),
                   tg::max_abs(p.tyy()), tg::max_abs(p.tzz()),
                   tg::max_abs(p.txy()), tg::max_abs(p.txz()),
                   tg::max_abs(p.tyz())});
}

}  // namespace

TEST(Elastic, SpaceBlockedMatchesReference) {
  auto s = make_setup({18, 16, 14}, 4, 20);
  ph::ElasticPropagator a(s.model);
  a.run(ph::Schedule::Reference, s.src, nullptr);
  const auto vz_ref = a.vz();
  const auto tzz_ref = a.tzz();

  ph::ElasticPropagator b(s.model);
  b.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(vz_ref, b.vz()), 0.0);
  EXPECT_EQ(tg::max_abs_diff(tzz_ref, b.tzz()), 0.0);
}

TEST(Elastic, WavefrontMatchesBaseline) {
  auto s = make_setup({18, 16, 14}, 4, 20);
  ph::ElasticPropagator base(s.model);
  auto rec_base = s.rec;
  base.run(ph::Schedule::SpaceBlocked, s.src, &rec_base);
  const auto vz_base = base.vz();
  const auto txy_base = base.txy();

  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{4, 8, 8, 4, 4};
  ph::ElasticPropagator wave(s.model, opts);
  auto rec_wave = s.rec;
  const ph::RunStats stats =
      wave.run(ph::Schedule::Wavefront, s.src, &rec_wave);

  EXPECT_EQ(tg::max_abs_diff(vz_base, wave.vz()), 0.0);
  EXPECT_EQ(tg::max_abs_diff(txy_base, wave.txy()), 0.0);

  double scale = 1e-20;
  for (int t = 0; t < s.nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      scale = std::max(scale,
                       std::fabs(static_cast<double>(rec_base.at(t, r))));
  for (int t = 0; t < s.nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      EXPECT_NEAR(rec_wave.at(t, r), rec_base.at(t, r), 1e-5 * scale);
  EXPECT_GT(stats.precompute_seconds, 0.0);
}

class ElasticTileSweep : public ::testing::TestWithParam<tc::TileSpec> {};

TEST_P(ElasticTileSweep, WavefrontInvariantToTileShape) {
  auto s = make_setup({16, 14, 12}, 4, 14, 2);
  ph::ElasticPropagator base(s.model);
  base.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
  const auto vz_base = base.vz();

  ph::PropagatorOptions opts;
  opts.tiles = GetParam();
  ph::ElasticPropagator wave(s.model, opts);
  wave.run(ph::Schedule::Wavefront, s.src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(vz_base, wave.vz()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Tiles, ElasticTileSweep,
                         ::testing::Values(tc::TileSpec{1, 8, 8, 4, 4},
                                           tc::TileSpec{2, 4, 4, 4, 4},
                                           tc::TileSpec{4, 8, 8, 4, 4},
                                           tc::TileSpec{7, 16, 12, 8, 6},
                                           tc::TileSpec{16, 64, 64, 8, 8}));

class ElasticOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(ElasticOrderSweep, WavefrontMatchesBaselineAcrossOrders) {
  const int so = GetParam();
  auto s = make_setup({18, 16, 14}, so, 12, 2);
  ph::ElasticPropagator base(s.model);
  base.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
  ph::ElasticPropagator wave(s.model);
  wave.run(ph::Schedule::Wavefront, s.src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(base.vz(), wave.vz()), 0.0);
  EXPECT_GT(tg::max_abs(wave.vz()), 0.0) << "wave must propagate";
}

INSTANTIATE_TEST_SUITE_P(Orders, ElasticOrderSweep,
                         ::testing::Values(2, 4, 8, 10, 12));

TEST(Elastic, StableOverManySteps) {
  auto s = make_setup({16, 16, 16}, 4, 200, 2);
  ph::ElasticPropagator p(s.model);
  p.run(ph::Schedule::Wavefront, s.src, nullptr);
  const double m = fields_max(p);
  EXPECT_TRUE(std::isfinite(m));
  EXPECT_LT(m, 1e3);
}

TEST(Elastic, ZeroShearModulusKeepsShearStressZero) {
  // With mu == 0 (a fluid) the deviatoric stresses must remain identically
  // zero: the system degenerates to an acoustic medium.
  const tg::Extents3 e{16, 16, 16};
  ph::Geometry g{e, 10.0, 4, 4};
  ph::ElasticModel model = ph::make_elastic_layered(g, 1.5, 1.5, 1);
  model.vs.fill(0.0f);
  model.mu.fill(0.0f);
  const int nt = 30;
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));

  ph::ElasticPropagator p(model);
  p.run(ph::Schedule::Wavefront, src, nullptr);
  EXPECT_EQ(tg::max_abs(p.txy()), 0.0);
  EXPECT_EQ(tg::max_abs(p.txz()), 0.0);
  EXPECT_EQ(tg::max_abs(p.tyz()), 0.0);
  EXPECT_GT(tg::max_abs(p.tzz()), 0.0);  // pressure wave still propagates
  // Fluid: the three diagonal stresses are all -p and stay equal.
  EXPECT_LT(tg::max_abs_diff(p.txx(), p.tzz()),
            1e-6 * (tg::max_abs(p.tzz()) + 1e-30));
}

TEST(Elastic, PwaveArrivalTimeMatchesVelocity) {
  // Homogeneous medium, explosive source; receiver straight below the
  // source sees the P arrival at ~t0 + d/vp on vz.
  const tg::Extents3 e{24, 24, 48};
  ph::Geometry g{e, 10.0, 4, 4};
  ph::ElasticModel model = ph::make_elastic_layered(g, 2.0, 2.0, 1);
  const double dt = model.critical_dt();
  const double f0 = 0.02;
  const int nt = static_cast<int>(std::ceil(260.0 / dt));

  sp::SparseTimeSeries src({{12.0, 12.0, 12.0}}, nt);
  src.broadcast_signature(sp::ricker(nt, dt, f0));
  sp::SparseTimeSeries rec({{12.0, 12.0, 32.0}}, nt);  // 200 m below

  ph::ElasticPropagator p(model);
  p.run(ph::Schedule::SpaceBlocked, src, &rec);

  int t_peak = 0;
  double best = 0.0;
  for (int t = 0; t < nt; ++t) {
    const double v = std::fabs(static_cast<double>(rec.at(t, 0)));
    if (v > best) {
      best = v;
      t_peak = t;
    }
  }
  ASSERT_GT(best, 0.0);
  const double travel_ms = 200.0 / 2.0;
  for (int t = 0; t < nt && t * dt < travel_ms * 0.9; ++t) {
    EXPECT_LT(std::fabs(static_cast<double>(rec.at(t, 0))), 1e-3 * best)
        << "acausal energy at t=" << t * dt << " ms";
  }
  EXPECT_NEAR(t_peak * dt, 1.5 / f0 + travel_ms, 45.0);
}

TEST(Elastic, RadialSymmetryOfExplosiveSource) {
  // An explosive source in a homogeneous medium radiates symmetrically: two
  // receivers mirrored through the (on-grid) source position record equal
  // vz magnitudes.
  const tg::Extents3 e{32, 24, 32};
  ph::Geometry g{e, 10.0, 4, 4};
  ph::ElasticModel model = ph::make_elastic_layered(g, 2.0, 2.0, 1);
  const double dt = model.critical_dt();
  const int nt = 60;

  sp::SparseTimeSeries src({{16.0, 12.0, 16.0}}, nt);  // on-grid centre
  src.broadcast_signature(sp::ricker(nt, dt, 0.02));
  // vz is staggered by +1/2 in z: mirror of index z through the source at
  // z=16 maps sample z+1/2 -> 32 - (z+1/2), i.e. index 15 pairs with 16.
  sp::SparseTimeSeries rec({{16.0, 12.0, 9.0}, {16.0, 12.0, 22.0}}, nt);

  ph::ElasticPropagator p(model);
  p.run(ph::Schedule::SpaceBlocked, src, &rec);

  double max_v = 1e-20, max_asym = 0.0;
  for (int t = 0; t < nt; ++t) {
    const double a = rec.at(t, 0);
    const double b = rec.at(t, 1);
    max_v = std::max({max_v, std::fabs(a), std::fabs(b)});
    // vz flips sign across the source (up vs down-going motion).
    max_asym = std::max(max_asym, std::fabs(a + b));
  }
  ASSERT_GT(max_v, 1e-12);
  EXPECT_LT(max_asym, 0.05 * max_v);
}
