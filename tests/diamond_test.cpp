#include <gtest/gtest.h>

#include <cmath>

#include "tempest/core/diamond.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace tc = tempest::core;
namespace tg = tempest::grid;
namespace ph = tempest::physics;
namespace sp = tempest::sparse;
using tempest::real_t;

namespace {

struct Case {
  tg::Extents3 extents;
  int t_begin;
  int t_end;
  int radius;
  tc::DiamondSpec spec;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << c.extents << " t[" << c.t_begin << ',' << c.t_end
            << ") r=" << c.radius << " diamond(h=" << c.spec.height
            << ",w=" << c.spec.width << ")";
}

}  // namespace

class DiamondSchedule : public ::testing::TestWithParam<Case> {};

TEST_P(DiamondSchedule, IsLegalCoversEverythingOnce) {
  const Case& c = GetParam();
  const auto ops =
      tc::diamond_schedule(c.extents, c.t_begin, c.t_end, c.radius, c.spec);
  EXPECT_EQ(tc::validate_schedule(c.extents, c.t_begin, c.t_end, c.radius,
                                  ops),
            "")
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DiamondSchedule,
    ::testing::Values(
        Case{{16, 10, 4}, 1, 9, 1, {4, 8, 4, 4}},
        Case{{16, 10, 4}, 1, 9, 2, {2, 8, 4, 4}},
        Case{{24, 8, 4}, 1, 13, 2, {4, 16, 8, 8}},
        Case{{13, 9, 3}, 1, 11, 1, {3, 10, 4, 4}},   // odd extents
        Case{{8, 8, 2}, 0, 5, 2, {1, 4, 8, 8}},      // degenerate height 1
        Case{{40, 6, 2}, 1, 7, 3, {2, 12, 8, 8}},
        Case{{16, 10, 4}, 3, 4, 2, {4, 16, 8, 8}}));  // single timestep

TEST(DiamondSchedule, RejectsTooNarrowWidth) {
  const tg::Extents3 e{16, 8, 4};
  // width < 2*slope*height
  EXPECT_THROW(
      (void)tc::diamond_schedule(e, 1, 9, 2, tc::DiamondSpec{4, 8, 4, 4}),
      tempest::util::PreconditionError);
}

TEST(DiamondSchedule, UnderSlopedScheduleIsIllegal) {
  // Built with slope 1 but validated against radius 2: must violate.
  const tg::Extents3 e{24, 8, 4};
  const auto ops =
      tc::diamond_schedule(e, 1, 9, /*slope=*/1, tc::DiamondSpec{4, 16, 4, 4});
  EXPECT_NE(tc::validate_schedule(e, 1, 9, /*radius=*/2, ops), "");
}

namespace {

/// Same toy stencil as wavefront_test: radius-1 damped averaging.
struct ToyStencil {
  tg::Extents3 e;
  tg::TimeBuffer<double> buf;

  explicit ToyStencil(tg::Extents3 extents)
      : e(extents), buf(3, extents, 1, 0.0) {
    for (int s : {0, 1}) {
      buf.slot(s).for_each_interior([&](int x, int y, int z) {
        buf.slot(s)(x, y, z) = 0.01 * (x + 1) * (s + 1) + 0.02 * y - 0.005 * z;
      });
    }
  }

  void block(int t, const tg::Box3& b) {
    auto& un = buf.at(t + 1);
    const auto& uc = buf.at(t);
    const auto& up = buf.at(t - 1);
    for (int x = b.x.lo; x < b.x.hi; ++x)
      for (int y = b.y.lo; y < b.y.hi; ++y)
        for (int z = b.z.lo; z < b.z.hi; ++z)
          un(x, y, z) =
              0.99 * uc(x, y, z) - 0.45 * up(x, y, z) +
              0.05 * (uc(x - 1, y, z) + uc(x + 1, y, z) + uc(x, y - 1, z) +
                      uc(x, y + 1, z) + uc(x, y, z - 1) + uc(x, y, z + 1));
  }
};

}  // namespace

TEST(DiamondNumerics, MatchesSpaceBlockedBitExact) {
  const tg::Extents3 e{18, 9, 5};
  const int nt = 12;
  const tc::TileSpec blocks{1, 64, 64, 4, 4};

  ToyStencil base(e);
  tc::run_spaceblocked(e, 1, nt, blocks,
                       [&](int t, const tg::Box3& b) { base.block(t, b); });

  ToyStencil diam(e);
  tc::run_diamond(e, 1, nt, /*slope=*/1, tc::DiamondSpec{4, 10, 4, 4},
                  [&](int t, const tg::Box3& b) { diam.block(t, b); });

  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(tg::max_abs_diff(base.buf.slot(s), diam.buf.slot(s)), 0.0);
  }
}

TEST(DiamondAcoustic, MatchesBaselineWithSourcesAndReceivers) {
  const tg::Extents3 e{24, 20, 16};
  ph::Geometry g{e, 10.0, 4, 4};
  const auto model = ph::make_acoustic_layered(g, 1.5, 3.0, 3);
  const int nt = 20;
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));
  sp::SparseTimeSeries rec_base(sp::receiver_line(e, 4, 0.2, 4), nt);
  sp::SparseTimeSeries rec_diam = rec_base;

  ph::AcousticPropagator base(model);
  base.run(ph::Schedule::SpaceBlocked, src, &rec_base);
  const auto u_base = base.wavefield(nt);

  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{4, 16, 16, 4, 4};
  ph::AcousticPropagator diam(model, opts);
  diam.run(ph::Schedule::Diamond, src, &rec_diam);

  EXPECT_EQ(tg::max_abs_diff(u_base, diam.wavefield(nt)), 0.0);
  double scale = 1e-20;
  for (int t = 0; t < nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      scale = std::max(scale,
                       std::fabs(static_cast<double>(rec_base.at(t, r))));
  for (int t = 0; t < nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      EXPECT_NEAR(rec_diam.at(t, r), rec_base.at(t, r), 1e-5 * scale);
}

TEST(DiamondAcoustic, AutoWidensNarrowTiles) {
  // tile_x far below 2*radius*tile_t: the propagator widens the diamond
  // period instead of producing an illegal schedule.
  const tg::Extents3 e{24, 16, 12};
  ph::Geometry g{e, 10.0, 4, 4};
  const auto model = ph::make_acoustic_layered(g);
  const int nt = 12;
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));

  ph::AcousticPropagator base(model);
  base.run(ph::Schedule::SpaceBlocked, src, nullptr);
  const auto u_base = base.wavefield(nt);

  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{8, 4, 4, 4, 4};  // 4 << 2*2*8
  ph::AcousticPropagator diam(model, opts);
  diam.run(ph::Schedule::Diamond, src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(u_base, diam.wavefield(nt)), 0.0);
}

TEST(DiamondAcoustic, StepCallbackRejectedUnderDiamond) {
  // Diamond is legal for every physics (schedule_matrix_test covers the
  // cross-kernel equivalence); what stays illegal is a per-timestep
  // callback, since no global time barrier exists under temporal blocking.
  const tg::Extents3 e{16, 16, 16};
  ph::Geometry g{e, 10.0, 4, 4};
  const auto model = ph::make_acoustic_layered(g);
  const int nt = 8;
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));
  ph::AcousticPropagator p(model);
  EXPECT_THROW(p.run(ph::Schedule::Diamond, src, nullptr, [](int) {}),
               tempest::util::PreconditionError);
}
