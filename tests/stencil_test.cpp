#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "tempest/grid/grid3.hpp"
#include "tempest/stencil/apply.hpp"
#include "tempest/stencil/cfl.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"

namespace ts = tempest::stencil;
namespace tg = tempest::grid;

TEST(Coefficients, SecondOrderSecondDerivative) {
  const ts::Coeffs c = ts::central(2, 2);
  ASSERT_EQ(c.npoints(), 3);
  EXPECT_NEAR(c.weights[0], 1.0, 1e-12);
  EXPECT_NEAR(c.weights[1], -2.0, 1e-12);
  EXPECT_NEAR(c.weights[2], 1.0, 1e-12);
}

TEST(Coefficients, FourthOrderSecondDerivative) {
  const ts::Coeffs c = ts::central(2, 4);
  ASSERT_EQ(c.npoints(), 5);
  EXPECT_NEAR(c.weights[0], -1.0 / 12.0, 1e-12);
  EXPECT_NEAR(c.weights[1], 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.weights[2], -5.0 / 2.0, 1e-12);
  EXPECT_NEAR(c.weights[3], 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.weights[4], -1.0 / 12.0, 1e-12);
}

TEST(Coefficients, SecondOrderFirstDerivative) {
  const ts::Coeffs c = ts::central(1, 2);
  ASSERT_EQ(c.npoints(), 3);
  EXPECT_NEAR(c.weights[0], -0.5, 1e-12);
  EXPECT_NEAR(c.weights[1], 0.0, 1e-12);
  EXPECT_NEAR(c.weights[2], 0.5, 1e-12);
}

TEST(Coefficients, StaggeredSecondOrder) {
  const ts::Coeffs c = ts::staggered_first(2);
  ASSERT_EQ(c.npoints(), 2);
  EXPECT_NEAR(c.weights[0], -1.0, 1e-12);
  EXPECT_NEAR(c.weights[1], 1.0, 1e-12);
}

TEST(Coefficients, StaggeredFourthOrder) {
  const ts::Coeffs c = ts::staggered_first(4);
  ASSERT_EQ(c.npoints(), 4);
  EXPECT_NEAR(c.weights[0], 1.0 / 24.0, 1e-12);
  EXPECT_NEAR(c.weights[1], -9.0 / 8.0, 1e-12);
  EXPECT_NEAR(c.weights[2], 9.0 / 8.0, 1e-12);
  EXPECT_NEAR(c.weights[3], -1.0 / 24.0, 1e-12);
}

TEST(Coefficients, RejectsOddOrInvalidOrders) {
  EXPECT_THROW(ts::central(2, 3), tempest::util::PreconditionError);
  EXPECT_THROW(ts::central(2, 0), tempest::util::PreconditionError);
  EXPECT_THROW(ts::central(3, 4), tempest::util::PreconditionError);
  EXPECT_THROW(ts::staggered_first(5), tempest::util::PreconditionError);
}

/// Property sweep over space orders: moment conditions and symmetry.
class CoeffOrder : public ::testing::TestWithParam<int> {};

TEST_P(CoeffOrder, MomentConditionsHold) {
  const int so = GetParam();
  for (int deriv : {1, 2}) {
    const ts::Coeffs c = ts::central(deriv, so);
    const int n = c.npoints();
    // sum w_i o_i^k == k! [k == deriv] for k < n. The sum cancels terms as
    // large as max_i |w_i o_i^k| (~8^16 for so=16), so the achievable
    // absolute accuracy is that magnitude times machine epsilon.
    for (int k = 0; k < n; ++k) {
      double acc = 0.0;
      double magnitude = 1.0;
      for (int i = 0; i < n; ++i) {
        const double term = c.weights[static_cast<std::size_t>(i)] *
                            std::pow(c.offsets[static_cast<std::size_t>(i)], k);
        acc += term;
        magnitude = std::max(magnitude, std::fabs(term));
      }
      double expected = (k == deriv) ? 1.0 : 0.0;
      for (int f = 2; f <= k && expected != 0.0; ++f) expected *= f;
      EXPECT_NEAR(acc, expected, 1e-10 * magnitude)
          << "so=" << so << " deriv=" << deriv << " moment k=" << k;
    }
  }
}

TEST_P(CoeffOrder, SymmetryProperties) {
  const int so = GetParam();
  const ts::Coeffs c2 = ts::central(2, so);
  const ts::Coeffs c1 = ts::central(1, so);
  const int n = c2.npoints();
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(c2.weights[static_cast<std::size_t>(i)],
                     c2.weights[static_cast<std::size_t>(n - 1 - i)]);
    EXPECT_DOUBLE_EQ(c1.weights[static_cast<std::size_t>(i)],
                     -c1.weights[static_cast<std::size_t>(n - 1 - i)]);
  }
  EXPECT_DOUBLE_EQ(c1.weights[static_cast<std::size_t>(n / 2)], 0.0);
}

TEST_P(CoeffOrder, StaggeredAntisymmetry) {
  const int so = GetParam();
  const ts::Coeffs c = ts::staggered_first(so);
  const int n = c.npoints();
  for (int i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(c.weights[static_cast<std::size_t>(i)],
                -c.weights[static_cast<std::size_t>(n - 1 - i)], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, CoeffOrder,
                         ::testing::Values(2, 4, 6, 8, 10, 12, 16));

/// Plane-wave convergence: the FD second derivative of sin(kx) must approach
/// -k^2 sin(kx) with the expected order as the stencil widens.
TEST(Coefficients, AccuracyImprovesWithOrder) {
  const double k = 0.5;  // radians per grid point
  auto error_for = [&](int so) {
    const ts::Coeffs c = ts::central(2, so);
    const int r = so / 2;
    double acc = 0.0;
    const double x0 = 0.3;
    for (int i = -r; i <= r; ++i) {
      acc += c.weights[static_cast<std::size_t>(i + r)] * std::sin(k * (x0 + i));
    }
    return std::fabs(acc - (-k * k * std::sin(k * x0)));
  };
  const double e2 = error_for(2);
  const double e4 = error_for(4);
  const double e8 = error_for(8);
  EXPECT_LT(e4, e2 * 0.2);
  EXPECT_LT(e8, e4 * 0.2);
}

namespace {

/// Fill grid with a polynomial field f = a + bx + cy + dz + exy + fx^2 ...
tg::Grid3<float> poly_grid(const tg::Extents3& e, int halo) {
  tg::Grid3<float> g(e, halo, 0.0f);
  for (int x = -halo; x < e.nx + halo; ++x) {
    for (int y = -halo; y < e.ny + halo; ++y) {
      for (int z = -halo; z < e.nz + halo; ++z) {
        const double fx = x, fy = y, fz = z;
        g(x, y, z) = static_cast<float>(1.0 + 2.0 * fx + 3.0 * fy - fz +
                                        0.5 * fx * fx + 0.25 * fy * fy +
                                        1.5 * fz * fz + 0.125 * fx * fy);
      }
    }
  }
  return g;
}

}  // namespace

TEST(Apply, SecondDerivExactOnQuadratic) {
  const tg::Extents3 e{9, 9, 9};
  const auto g = poly_grid(e, 4);
  const ts::Coeffs c = ts::central(2, 8);
  // d2/dx2 = 1.0, d2/dy2 = 0.5, d2/dz2 = 3.0 everywhere.
  EXPECT_NEAR(ts::second_deriv(g, c, 0, 4, 4, 4), 1.0, 1e-3);
  EXPECT_NEAR(ts::second_deriv(g, c, 1, 4, 4, 4), 0.5, 1e-3);
  EXPECT_NEAR(ts::second_deriv(g, c, 2, 4, 4, 4), 3.0, 1e-3);
}

TEST(Apply, LaplacianCombinesDims) {
  const tg::Extents3 e{9, 9, 9};
  const auto g = poly_grid(e, 2);
  const ts::Coeffs c = ts::central(2, 4);
  const double h = 2.0;  // physical spacing: laplacian scales by 1/h^2
  EXPECT_NEAR(ts::laplacian(g, c, h, 4, 4, 4), (1.0 + 0.5 + 3.0) / 4.0, 1e-3);
}

TEST(Apply, CrossDerivExactOnBilinear) {
  const tg::Extents3 e{9, 9, 9};
  const auto g = poly_grid(e, 2);
  const ts::Coeffs c1 = ts::central(1, 4);
  // d2/(dx dy) of 0.125 xy term = 0.125; other cross terms vanish.
  EXPECT_NEAR(ts::cross_deriv(g, c1, 0, 1, 4, 4, 4), 0.125, 1e-4);
  EXPECT_NEAR(ts::cross_deriv(g, c1, 0, 2, 4, 4, 4), 0.0, 1e-4);
  EXPECT_NEAR(ts::cross_deriv(g, c1, 1, 2, 4, 4, 4), 0.0, 1e-4);
}

TEST(Apply, StaggeredDerivExactOnLinear) {
  const tg::Extents3 e{8, 8, 8};
  tg::Grid3<float> g(e, 2, 0.0f);
  for (int x = -2; x < 10; ++x)
    for (int y = -2; y < 10; ++y)
      for (int z = -2; z < 10; ++z)
        g(x, y, z) = static_cast<float>(3.0 * x - 2.0 * y + 0.5 * z);
  const ts::Coeffs c = ts::staggered_first(4);
  for (int shift : {0, 1}) {
    EXPECT_NEAR(ts::staggered_deriv(g, c, 0, shift, 4, 4, 4), 3.0, 1e-4);
    EXPECT_NEAR(ts::staggered_deriv(g, c, 1, shift, 4, 4, 4), -2.0, 1e-4);
    EXPECT_NEAR(ts::staggered_deriv(g, c, 2, shift, 4, 4, 4), 0.5, 1e-4);
  }
}

TEST(Cfl, AcousticBoundsSaneAndOrderMonotone) {
  const double dt4 = ts::acoustic_dt(10.0, 4.5, 4);
  const double dt8 = ts::acoustic_dt(10.0, 4.5, 8);
  const double dt12 = ts::acoustic_dt(10.0, 4.5, 12);
  EXPECT_GT(dt4, 0.0);
  // Wider stencils have larger |w| sums => tighter dt.
  EXPECT_GT(dt4, dt8);
  EXPECT_GT(dt8, dt12);
  // Paper scale check: h=10m, vmax=4.5 km/s => dt on the order of 1 ms.
  EXPECT_GT(dt4, 0.5);
  EXPECT_LT(dt4, 3.0);
}

TEST(Cfl, ElasticAndTtiTighterThanAcoustic) {
  const double a = ts::acoustic_dt(10.0, 3.5, 4);
  const double el = ts::elastic_dt(10.0, 3.5, 4);
  const double tti = ts::tti_dt(10.0, 3.5, 4, 0.25, 0.15);
  EXPECT_GT(el, 0.0);
  EXPECT_LT(tti, a);
}

TEST(Cfl, StepsForCeil) {
  EXPECT_EQ(ts::steps_for(512.0, 2.0), 256);
  EXPECT_EQ(ts::steps_for(512.0, 2.25), 228);  // the paper's acoustic count
  EXPECT_THROW((void)ts::steps_for(0.0, 1.0),
               tempest::util::PreconditionError);
}

TEST(Cfl, ScalesWithVelocityAndSpacing) {
  EXPECT_NEAR(ts::acoustic_dt(20.0, 2.0, 4),
              2.0 * ts::acoustic_dt(10.0, 2.0, 4), 1e-12);
  EXPECT_NEAR(ts::acoustic_dt(10.0, 4.0, 4),
              0.5 * ts::acoustic_dt(10.0, 2.0, 4), 1e-12);
}
