#include <gtest/gtest.h>

#include "tempest/dsl/interpreter.hpp"
#include "tempest/dsl/operator.hpp"
#include "tempest/dsl/passes.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace dsl = tempest::dsl;
namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
using tempest::real_t;

namespace {

/// The paper's symbolic acoustic specification (its Listing "Wave-equation
/// symbolic definition"): eq = m * u.dt2 + damp * u.dt - u.laplace.
dsl::Eq acoustic_eq(const dsl::TimeFunction& u) {
  const dsl::Expr eq = dsl::param("m") * u.dt2() + dsl::param("damp") * u.dt() -
                       u.laplace();
  return dsl::solve(eq, u.forward());
}

}  // namespace

TEST(Expr, BuildAndPrint) {
  dsl::Grid g{{32, 32, 32}, 10.0};
  dsl::TimeFunction u("u", g, 4, 2);
  const dsl::Expr e = dsl::param("m") * u.dt2() - u.laplace();
  EXPECT_EQ(e.str(), "m*dt2(u) - laplace(u)");
  EXPECT_EQ(u.forward().str(), "u.forward");
  EXPECT_EQ((2.0 * u.now()).str(), "2*u");
}

TEST(Expr, StructuralQueries) {
  dsl::Grid g{{32, 32, 32}, 10.0};
  dsl::TimeFunction u("u", g, 4, 2);
  dsl::TimeFunction q("q", g, 4, 2);
  const dsl::Expr e =
      dsl::param("m") * u.dt2() + q.hz() - u.laplace() + dsl::param("damp");
  EXPECT_TRUE(dsl::contains_deriv(e, dsl::DerivKind::Dt2, "u"));
  EXPECT_TRUE(dsl::contains_deriv(e, dsl::DerivKind::Laplace, "u"));
  EXPECT_TRUE(dsl::contains_deriv(e, dsl::DerivKind::RotLapHz, "q"));
  EXPECT_FALSE(dsl::contains_deriv(e, dsl::DerivKind::Dt, "u"));
  const auto fields = dsl::referenced_fields(e);
  EXPECT_EQ(fields.size(), 2u);
  const auto params = dsl::referenced_params(e);
  EXPECT_EQ(params.size(), 2u);
}

TEST(Expr, SolveValidatesShape) {
  dsl::Grid g{{32, 32, 32}, 10.0};
  dsl::TimeFunction u("u", g, 4, 2);
  EXPECT_NO_THROW(acoustic_eq(u));
  // Target must be a forward reference.
  EXPECT_THROW(
      (void)dsl::solve(dsl::param("m") * u.dt2() - u.laplace(), u.now()),
      tempest::util::PreconditionError);
  // Equation must carry a time derivative of the target.
  EXPECT_THROW((void)dsl::solve(u.laplace(), u.forward()),
               tempest::util::PreconditionError);
}

TEST(Ir, BuildFindRemovePrint) {
  namespace ir = dsl::ir;
  ir::Node root = dsl::passes::build_timestepping("A(t,x,y,z)", true, true);
  EXPECT_EQ(ir::loop_order(root),
            (std::vector<std::string>{"t", "x", "y", "z", "s", "i", "r",
                                      "i"}));
  EXPECT_NE(ir::find_loop(root, "s"), nullptr);
  EXPECT_EQ(ir::find_loop(root, "nope"), nullptr);
  EXPECT_EQ(ir::remove_loops(root, "s"), 1);
  EXPECT_EQ(ir::find_loop(root, "s"), nullptr);
  const std::string text = ir::print(root);
  EXPECT_NE(text.find("for t = 1 to nt do"), std::string::npos);
  EXPECT_NE(text.find("A(t,x,y,z);"), std::string::npos);
}

TEST(Passes, Listing1Shape) {
  namespace ir = dsl::ir;
  const ir::Node root =
      dsl::passes::build_timestepping("A(t, x, y, z, s)", true, false);
  // Listing 1: sparse loops come *after* the full grid sweep, inside t.
  const auto tags = ir::stmt_tags(root);
  ASSERT_GE(tags.size(), 2u);
  EXPECT_EQ(tags.front(), "stencil");
  EXPECT_EQ(tags.back(), "inject");
}

TEST(Passes, FusionMovesInjectionIntoGridNest) {
  namespace ir = dsl::ir;
  ir::Node root = dsl::passes::build_timestepping("A(t,x,y,z)", true, true);
  dsl::passes::precompute_and_fuse(root);
  // Listing 4: no more source/receiver indirection loops...
  EXPECT_EQ(ir::find_loop(root, "s"), nullptr);
  EXPECT_EQ(ir::find_loop(root, "r"), nullptr);
  // ...and a z2 loop at the same level as z, inside y.
  const ir::Node* y = ir::find_loop(root, "y");
  ASSERT_NE(y, nullptr);
  bool has_z = false, has_z2 = false;
  for (const auto& child : y->body) {
    if (child.kind == ir::Node::Kind::Loop && child.dim == "z") has_z = true;
    if (child.kind == ir::Node::Kind::Loop && child.dim == "z2")
      has_z2 = true;
  }
  EXPECT_TRUE(has_z);
  EXPECT_TRUE(has_z2);
  // Precompute prologue precedes the time loop.
  const auto tags = ir::stmt_tags(root);
  ASSERT_FALSE(tags.empty());
  EXPECT_EQ(tags.front(), "precompute");
}

TEST(Passes, CompressionRewritesZ2Bounds) {
  namespace ir = dsl::ir;
  ir::Node root = dsl::passes::build_timestepping("A(t,x,y,z)", true, false);
  dsl::passes::precompute_and_fuse(root);
  dsl::passes::compress_iteration_space(root);
  const ir::Node* z2 = ir::find_loop(root, "z2");
  ASSERT_NE(z2, nullptr);
  EXPECT_EQ(z2->hi, "nnz_mask[x][y]");  // Listing 5
  const std::string text = ir::print(root);
  EXPECT_NE(text.find("Sp_SID"), std::string::npos);
}

TEST(Passes, TimeTilingWrapsNest) {
  namespace ir = dsl::ir;
  ir::Node root = dsl::passes::build_timestepping("A(t,x,y,z)", true, false);
  dsl::passes::precompute_and_fuse(root);
  dsl::passes::compress_iteration_space(root);
  dsl::passes::time_tile(root, 2);
  // Listing 6 loop order: tt, xs, ys, t, x, y, z (+ fused z2).
  const auto order = ir::loop_order(root);
  const std::vector<std::string> expected{"tt", "xs", "ys", "t",
                                          "x",  "y",  "z",  "z2"};
  EXPECT_EQ(order, expected);
  const ir::Node* x = ir::find_loop(root, "x");
  ASSERT_NE(x, nullptr);
  EXPECT_NE(x->lo.find("xs - 2*t"), std::string::npos);
}

TEST(Operator, ClassifiesAcoustic) {
  dsl::Grid g{{24, 20, 16}, 10.0};
  dsl::TimeFunction u("u", g, 4, 2);
  dsl::SparseTimeFunction s("src", sp::single_center_source({24, 20, 16}),
                            16);
  dsl::Operator op({acoustic_eq(u)}, {s.inject(u, dsl::param("dt2_over_m"))},
                   {}, {});
  EXPECT_EQ(op.kernel_class(), dsl::KernelClass::IsoAcoustic);
}

TEST(Operator, ClassifiesTTIAndElastic) {
  dsl::Grid g{{24, 20, 16}, 10.0};
  dsl::TimeFunction p("p", g, 4, 2), q("q", g, 4, 2);
  const dsl::Expr eq_p = dsl::param("m") * p.dt2() -
                         (dsl::param("ah") * p.hp() + dsl::param("an") * q.hz());
  const dsl::Expr eq_q = dsl::param("m") * q.dt2() -
                         (dsl::param("an") * p.hp() + q.hz());
  dsl::Operator tti({dsl::solve(eq_p, p.forward()),
                     dsl::solve(eq_q, q.forward())},
                    {}, {}, {});
  EXPECT_EQ(tti.kernel_class(), dsl::KernelClass::TTI);

  dsl::TimeFunction v("v", g, 4, 1), tau("tau", g, 4, 1);
  const dsl::Expr eq_v =
      v.dt() - dsl::param("b") * dsl::deriv(dsl::DerivKind::Div, tau.now());
  const dsl::Expr eq_t =
      tau.dt() - (dsl::param("lam") * dsl::deriv(dsl::DerivKind::Trace,
                                                 dsl::deriv(dsl::DerivKind::GradSym, v.now())) +
                  dsl::param("mu") * dsl::deriv(dsl::DerivKind::GradSym, v.now()));
  dsl::Operator elastic({dsl::solve(eq_v, v.forward()),
                         dsl::solve(eq_t, tau.forward())},
                        {}, {}, {});
  EXPECT_EQ(elastic.kernel_class(), dsl::KernelClass::Elastic);
}

TEST(Operator, RejectsMixedClasses) {
  dsl::Grid g{{24, 20, 16}, 10.0};
  dsl::TimeFunction u("u", g, 4, 2);
  dsl::TimeFunction v("v", g, 4, 1);
  const dsl::Expr mixed =
      u.dt2() - u.laplace() + dsl::deriv(dsl::DerivKind::Div, v.now());
  EXPECT_THROW(dsl::Operator({dsl::Eq{u.forward(), mixed}}, {}, {}, {}),
               tempest::util::PreconditionError);
}

TEST(Operator, CcodeStagesMatchListings) {
  dsl::Grid g{{24, 20, 16}, 10.0};
  dsl::TimeFunction u("u", g, 4, 2);
  dsl::SparseTimeFunction s("src", sp::single_center_source({24, 20, 16}),
                            16);
  dsl::SparseTimeFunction d("rec", sp::receiver_line({24, 20, 16}, 4), 16);
  dsl::OperatorOptions opts;
  opts.schedule = ph::Schedule::Wavefront;
  dsl::Operator op({acoustic_eq(u)}, {s.inject(u, dsl::param("dt2_over_m"))},
                   {d.interpolate(u)}, opts);

  const std::string stage0 = op.ccode_stage(0);
  EXPECT_NE(stage0.find("for s = 1 to len(sources) do"), std::string::npos);
  const std::string stage3 = op.ccode();
  EXPECT_EQ(stage3.find("for s ="), std::string::npos);
  EXPECT_NE(stage3.find("for tt ="), std::string::npos);
  EXPECT_NE(stage3.find("nnz_mask"), std::string::npos);
}

TEST(Operator, ExecutesAcousticMatchingDirectPropagator) {
  const tg::Extents3 e{20, 18, 16};
  ph::Geometry geom{e, 10.0, 4, 4};
  const auto model = ph::make_acoustic_layered(geom, 1.5, 3.0, 3);
  const int nt = 18;
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.015));
  sp::SparseTimeSeries rec1(sp::receiver_line(e, 3, 0.15, 3), nt);
  sp::SparseTimeSeries rec2 = rec1;

  dsl::Grid g{e, geom.spacing};
  dsl::TimeFunction u("u", g, 4, 2);
  dsl::SparseTimeFunction s("src", src.coords(), nt);
  dsl::SparseTimeFunction d("rec", rec1.coords(), nt);
  dsl::OperatorOptions opts;
  opts.schedule = ph::Schedule::Wavefront;
  dsl::Operator op({acoustic_eq(u)}, {s.inject(u, dsl::param("dt2_over_m"))},
                   {d.interpolate(u)}, opts);
  op.apply(model, src, &rec1);

  ph::PropagatorOptions popts;
  ph::AcousticPropagator direct(model, popts);
  direct.run(ph::Schedule::Wavefront, src, &rec2);

  for (int t = 0; t < nt; ++t) {
    for (int r = 0; r < rec1.npoints(); ++r) {
      EXPECT_EQ(rec1.at(t, r), rec2.at(t, r)) << "t=" << t;
    }
  }
}

TEST(Operator, RejectsModelClassMismatch) {
  const tg::Extents3 e{16, 16, 16};
  ph::Geometry geom{e, 10.0, 4, 4};
  const auto model = ph::make_acoustic_layered(geom);
  dsl::Grid g{e, geom.spacing};
  dsl::TimeFunction p("p", g, 4, 2), q("q", g, 4, 2);
  const dsl::Expr eq_p = dsl::param("m") * p.dt2() - (p.hp() + q.hz());
  const dsl::Expr eq_q = dsl::param("m") * q.dt2() - (p.hp() + q.hz());
  dsl::Operator tti({dsl::solve(eq_p, p.forward()),
                     dsl::solve(eq_q, q.forward())},
                    {}, {}, {});
  sp::SparseTimeSeries src(sp::single_center_source(e), 8);
  EXPECT_THROW(tti.apply(model, src, nullptr),
               tempest::util::PreconditionError);
}

TEST(Interpreter, MatchesCompiledAcousticKernel) {
  // The tree-walking interpreter — which never saw the hand-written kernel —
  // must agree with it. This validates the pattern-matched dispatch: the
  // symbolic equation and the optimised code compute the same operator.
  const tg::Extents3 e{10, 9, 8};
  ph::Geometry geom{e, 10.0, 4, 2};
  const auto model = ph::make_acoustic_layered(geom, 1.5, 3.0, 2);
  const double dt = model.critical_dt();
  const int nt = 10;
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, dt, 0.03));

  dsl::Grid g{e, geom.spacing};
  dsl::TimeFunction u("u", g, 4, 2);
  const dsl::Eq update = acoustic_eq(u);

  dsl::Interpreter interp(update, model, dt);
  const auto u_interp = interp.run(src, sp::InterpKind::Trilinear);

  ph::PropagatorOptions popts;
  popts.dt = dt;
  ph::AcousticPropagator direct(model, popts);
  direct.run(ph::Schedule::SpaceBlocked, src, nullptr);
  const auto& u_direct = direct.wavefield(nt);

  const double umax = tg::max_abs(u_direct);
  ASSERT_GT(umax, 0.0);
  // Interpreter evaluates in double, kernel in float: tolerance compare.
  EXPECT_LT(tg::max_abs_diff(u_interp, u_direct), 5e-4 * umax);
}

TEST(Interpreter, PreconditionErrorsPropagateThroughTheStack) {
  // Errors raised deep inside evaluation must surface from run() as
  // PreconditionError with their message intact, not be swallowed or
  // rewrapped — resilient consumers catch and diagnose them.
  const tg::Extents3 e{8, 8, 8};
  ph::Geometry geom{e, 10.0, 4, 2};
  const auto model = ph::make_acoustic_layered(geom);
  dsl::Grid g{e, geom.spacing};
  dsl::TimeFunction u("u", g, 4, 2);

  // "rho" is not a model parameter; the failure happens per-point, deep in
  // the expression evaluator, only once run() reaches it.
  const dsl::Expr eq =
      dsl::param("rho") * u.dt2() + dsl::param("damp") * u.dt() - u.laplace();
  dsl::Interpreter interp(dsl::solve(eq, u.forward()), model,
                          model.critical_dt());
  sp::SparseTimeSeries src(sp::single_center_source(e), 4);
  try {
    (void)interp.run(src, sp::InterpKind::Trilinear);
    FAIL() << "expected PreconditionError";
  } catch (const tempest::util::PreconditionError& err) {
    EXPECT_NE(std::string(err.what()).find("unknown parameter: rho"),
              std::string::npos)
        << err.what();
  }
}

TEST(Operator, RejectsTooShortGatherThroughTheFacade) {
  // The propagator's rec->nt() >= nt precondition must propagate through
  // the Operator facade unchanged.
  const tg::Extents3 e{12, 10, 8};
  ph::Geometry geom{e, 10.0, 4, 2};
  const auto model = ph::make_acoustic_layered(geom);
  const int nt = 8;
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));
  sp::SparseTimeSeries short_rec(sp::receiver_line(e, 2), 2);

  dsl::Grid g{e, geom.spacing};
  dsl::TimeFunction u("u", g, 4, 2);
  dsl::SparseTimeFunction s("src", src.coords(), nt);
  dsl::SparseTimeFunction d("rec", short_rec.coords(), nt);
  dsl::Operator op({acoustic_eq(u)}, {s.inject(u, dsl::param("dt2_over_m"))},
                   {d.interpolate(u)}, {});
  EXPECT_THROW(op.apply(model, src, &short_rec),
               tempest::util::PreconditionError);
}

TEST(Interpreter, RejectsNonLinearAndWrongShapes) {
  const tg::Extents3 e{8, 8, 8};
  ph::Geometry geom{e, 10.0, 4, 2};
  const auto model = ph::make_acoustic_layered(geom);
  dsl::Grid g{e, geom.spacing};
  dsl::TimeFunction u("u", g, 4, 2);
  // lhs not a forward reference:
  EXPECT_THROW(dsl::Interpreter(dsl::Eq{u.now(), u.laplace()}, model, 1.0),
               tempest::util::PreconditionError);
  // equation independent of the forward value: detected at run time.
  dsl::Interpreter bad(dsl::Eq{u.forward(), u.laplace()}, model, 1.0);
  sp::SparseTimeSeries src(sp::single_center_source(e), 4);
  EXPECT_THROW((void)bad.run(src, sp::InterpKind::Trilinear),
               tempest::util::PreconditionError);
}
