// Property tests for the injection color-set partitioner
// (sparse::ColorSets): randomized source layouts — including deliberately
// coincident and sub-support-width adjacent sites, the worst cases for a
// scatter race — must partition into layers where
//   * every site appears in exactly one layer,
//   * no two same-layer sites share a support grid point (a layer can
//     scatter in parallel with no atomics and no lost updates), and
//   * for every grid point the touching sites carry strictly ascending
//     colors in site order — the invariant that makes layer-serial,
//     site-parallel injection reproduce the serial accumulation order
//     *bitwise*, not merely race-free (float addition does not commute).
// The end-to-end check drives inject_colored at 8 threads against
// inject_cached and requires exact equality of every grid value.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tempest/grid/grid3.hpp"
#include "tempest/sparse/operators.hpp"

namespace sp = tempest::sparse;
namespace tg = tempest::grid;
using tempest::real_t;

namespace {

constexpr tg::Extents3 kE{24, 20, 16};

/// A randomized layout seasoned with the partitioner's adversarial cases:
/// coincident duplicates (identical coordinates) and adjacent clusters
/// closer than the interpolation support width.
sp::CoordList random_layout(unsigned seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> ux(1.0, kE.nx - 2.0);
  std::uniform_real_distribution<double> uy(1.0, kE.ny - 2.0);
  std::uniform_real_distribution<double> uz(1.0, kE.nz - 2.0);
  sp::CoordList coords;
  for (int i = 0; i < n; ++i) coords.push_back({ux(rng), uy(rng), uz(rng)});
  // Coincident: duplicate a handful of existing sites verbatim.
  for (int i = 0; i < n / 4 && i < static_cast<int>(coords.size()); ++i) {
    coords.push_back(coords[static_cast<std::size_t>(i)]);
  }
  // Adjacent: offsets well inside one support width of an existing site.
  std::uniform_real_distribution<double> eps(0.05, 0.45);
  for (int i = 0; i < n / 4 && i < static_cast<int>(coords.size()); ++i) {
    const sp::Coord3& c = coords[static_cast<std::size_t>(i)];
    coords.push_back({c.x + eps(rng), c.y, c.z});
  }
  return coords;
}

long long key_of(const sp::SupportPoint& p) {
  return (static_cast<long long>(p.x) * kE.ny + p.y) * kE.nz + p.z;
}

struct Partition {
  sp::SupportCache cache;
  sp::ColorSets colors;
  int nsites = 0;
};

Partition build(unsigned seed, int n, sp::InterpKind kind) {
  Partition out;
  const sp::CoordList coords = random_layout(seed, n);
  const sp::SparseTimeSeries series(coords, /*nt=*/1);
  out.cache = sp::SupportCache(series, kind, kE);
  out.colors = sp::ColorSets(out.cache, kE);
  out.nsites = series.npoints();
  return out;
}

}  // namespace

class ColorPartition
    : public ::testing::TestWithParam<std::pair<unsigned, sp::InterpKind>> {};

TEST_P(ColorPartition, EverySiteInExactlyOneLayer) {
  const auto [seed, kind] = GetParam();
  const Partition p = build(seed, 32, kind);
  std::vector<int> seen(static_cast<std::size_t>(p.nsites), 0);
  for (const auto& layer : p.colors.layers) {
    for (const int s : layer) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, p.nsites);
      ++seen[static_cast<std::size_t>(s)];
    }
  }
  for (int s = 0; s < p.nsites; ++s) {
    EXPECT_EQ(seen[static_cast<std::size_t>(s)], 1) << "site " << s;
  }
}

TEST_P(ColorPartition, SameColorSitesShareNoGridPoint) {
  const auto [seed, kind] = GetParam();
  const Partition p = build(seed, 32, kind);
  EXPECT_GE(p.colors.colors(), 2)
      << "layout has coincident sites; one color would mean no conflicts "
         "were detected";
  for (const auto& layer : p.colors.layers) {
    std::set<long long> touched;
    for (const int s : layer) {
      for (const sp::SupportPoint& pt :
           p.cache.per_point[static_cast<std::size_t>(s)]) {
        EXPECT_TRUE(touched.insert(key_of(pt)).second)
            << "grid point (" << pt.x << "," << pt.y << "," << pt.z
            << ") shared within one color layer";
      }
    }
  }
}

TEST_P(ColorPartition, ColorsAscendInSiteOrderPerGridPoint) {
  const auto [seed, kind] = GetParam();
  const Partition p = build(seed, 32, kind);
  std::vector<int> color_of(static_cast<std::size_t>(p.nsites), -1);
  for (int c = 0; c < p.colors.colors(); ++c) {
    for (const int s : p.colors.layers[static_cast<std::size_t>(c)]) {
      color_of[static_cast<std::size_t>(s)] = c;
    }
  }
  // For every grid point: walking sites in serial order, the colors of the
  // sites touching it must strictly increase — executing layers in
  // ascending color order therefore applies the touches in serial order.
  std::map<long long, int> last_color;
  for (int s = 0; s < p.nsites; ++s) {
    for (const sp::SupportPoint& pt :
         p.cache.per_point[static_cast<std::size_t>(s)]) {
      const long long k = key_of(pt);
      const auto it = last_color.find(k);
      if (it != last_color.end()) {
        EXPECT_GT(color_of[static_cast<std::size_t>(s)], it->second)
            << "site " << s << " touches a grid point out of serial order";
      }
      last_color[k] =
          std::max(last_color.count(k) ? last_color[k] : -1,
                   color_of[static_cast<std::size_t>(s)]);
    }
  }
}

TEST_P(ColorPartition, ParallelInjectionBitwiseEqualsSerial) {
  const auto [seed, kind] = GetParam();
  const sp::CoordList coords = random_layout(seed, 32);
  const int nt = 3;
  sp::SparseTimeSeries src(coords, nt);
  std::mt19937 rng(seed ^ 0x9e3779b9u);
  std::uniform_real_distribution<float> amp(-1.0f, 1.0f);
  for (int t = 0; t < nt; ++t) {
    for (int s = 0; s < src.npoints(); ++s) src.at(t, s) = amp(rng);
  }
  const sp::SupportCache cache(src, kind, kE);
  const sp::ColorSets colors(cache, kE);
  const auto scale = [](int, int, int z) { return 1.0 + 0.001 * z; };

  tg::Grid3<real_t> u_serial(kE, /*halo=*/2, real_t{0});
  tg::Grid3<real_t> u_parallel(kE, /*halo=*/2, real_t{0});
  for (int t = 0; t < nt; ++t) {
    sp::inject_cached(u_serial, src, t, cache, scale);
    sp::inject_colored(u_parallel, src, t, cache, colors, /*threads=*/8,
                       scale);
  }
  EXPECT_EQ(tg::max_abs_diff(u_serial, u_parallel), 0.0);
}

TEST(ColorPartitionEdge, CoincidentSitesGetDistinctAscendingColors) {
  const sp::CoordList coords{{5.5, 5.5, 5.5}, {5.5, 5.5, 5.5},
                             {5.5, 5.5, 5.5}};
  const sp::SparseTimeSeries series(coords, 1);
  const sp::SupportCache cache(series, sp::InterpKind::Trilinear, kE);
  const sp::ColorSets colors(cache, kE);
  ASSERT_EQ(colors.colors(), 3);
  for (int c = 0; c < 3; ++c) {
    ASSERT_EQ(colors.layers[static_cast<std::size_t>(c)].size(), 1u);
    EXPECT_EQ(colors.layers[static_cast<std::size_t>(c)][0], c)
        << "coincident sites must be layered in serial site order";
  }
}

TEST(ColorPartitionEdge, DisjointSitesAllShareColorZero) {
  // On-grid points three cells apart: trilinear supports are single points
  // with no overlap, so the greedy layering needs exactly one color.
  sp::CoordList coords;
  for (int i = 0; i < 5; ++i) {
    coords.push_back({3.0 + 3.0 * i, 4.0, 5.0});
  }
  const sp::SparseTimeSeries series(coords, 1);
  const sp::SupportCache cache(series, sp::InterpKind::Trilinear, kE);
  const sp::ColorSets colors(cache, kE);
  EXPECT_EQ(colors.colors(), 1);
  EXPECT_EQ(colors.layers[0].size(), coords.size());
}

INSTANTIATE_TEST_SUITE_P(
    RandomLayouts, ColorPartition,
    ::testing::Values(std::make_pair(11u, sp::InterpKind::Trilinear),
                      std::make_pair(12u, sp::InterpKind::Trilinear),
                      std::make_pair(13u, sp::InterpKind::WindowedSinc),
                      std::make_pair(14u, sp::InterpKind::WindowedSinc)),
    [](const ::testing::TestParamInfo<std::pair<unsigned, sp::InterpKind>>&
           info) {
      return std::string("seed") + std::to_string(info.param.first) +
             (info.param.second == sp::InterpKind::Trilinear ? "_trilinear"
                                                             : "_sinc");
    });
