#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "tempest/io/io.hpp"
#include "tempest/util/rng.hpp"

namespace io = tempest::io;
namespace tg = tempest::grid;
namespace sp = tempest::sparse;
using tempest::real_t;

namespace {

/// Temp path helper with cleanup.
class TempFile {
 public:
  // ctest runs each TEST as its own process, so the counter alone is not
  // unique — qualify with the pid.
  explicit TempFile(const char* suffix)
      : path_(std::string("/tmp/tempest_io_test_") +
              std::to_string(::getpid()) + "_" + std::to_string(counter_++) +
              suffix) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};
int TempFile::counter_ = 0;

tg::Grid3<real_t> random_field(tg::Extents3 e, int halo,
                               std::uint64_t seed) {
  tempest::util::SplitMix64 rng(seed);
  tg::Grid3<real_t> f(e, halo);
  // Fill the *padded* volume, halos included, through raw() so the round
  // trip check covers everything.
  for (std::size_t i = 0; i < f.padded_size(); ++i) {
    f.raw()[i] = static_cast<real_t>(rng.uniform(-1, 1));
  }
  return f;
}

}  // namespace

TEST(IoField, RoundTripIsBitExact) {
  TempFile file(".tpf");
  const auto original = random_field({7, 5, 9}, 3, 42);
  io::save_field(file.path(), original);
  const auto loaded = io::load_field(file.path());
  ASSERT_EQ(loaded.extents(), original.extents());
  ASSERT_EQ(loaded.halo(), original.halo());
  ASSERT_EQ(loaded.padded_size(), original.padded_size());
  for (std::size_t i = 0; i < original.padded_size(); ++i) {
    ASSERT_EQ(loaded.raw()[i], original.raw()[i]) << "byte offset " << i;
  }
}

TEST(IoField, RejectsWrongMagicAndTruncation) {
  TempFile file(".tpf");
  {
    std::ofstream os(file.path(), std::ios::binary);
    os << "garbage data, definitely not a field";
  }
  EXPECT_THROW((void)io::load_field(file.path()),
               tempest::util::PreconditionError);

  // Valid header, truncated payload.
  const auto f = random_field({8, 8, 8}, 2, 7);
  io::save_field(file.path(), f);
  {
    std::ifstream is(file.path(), std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
    content.resize(content.size() / 2);
    std::ofstream os(file.path(), std::ios::binary | std::ios::trunc);
    os << content;
  }
  EXPECT_THROW((void)io::load_field(file.path()),
               tempest::util::PreconditionError);
}

TEST(IoField, CorruptionReportsTypedDescriptiveErrors) {
  TempFile file(".tpf");
  const auto f = random_field({8, 8, 8}, 2, 7);
  io::save_field(file.path(), f);

  // Truncated payload: the declared size no longer matches the file.
  std::string bytes;
  {
    std::ifstream is(file.path(), std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(is)),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream os(file.path(), std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 64));
  }
  try {
    (void)io::load_field(file.path());
    FAIL() << "truncated field must be rejected";
  } catch (const io::CorruptFileError& err) {
    const std::string msg = err.what();
    EXPECT_EQ(err.path(), file.path());
    EXPECT_NE(msg.find(file.path()), std::string::npos) << msg;
    EXPECT_NE(msg.find("declares"), std::string::npos) << msg;
    EXPECT_NE(msg.find("truncated or corrupted"), std::string::npos) << msg;
  }

  // Wrong magic names the format, not just "bad file".
  {
    std::ofstream os(file.path(), std::ios::binary | std::ios::trunc);
    os << "XXXXgarbage that is long enough to clear the header check......";
  }
  try {
    (void)io::load_field(file.path());
    FAIL() << "bad magic must be rejected";
  } catch (const io::CorruptFileError& err) {
    EXPECT_NE(std::string(err.what()).find("bad magic"), std::string::npos);
  }
}

TEST(IoField, ImplausibleHeaderRejectedBeforeAllocation) {
  TempFile file(".tpf");
  // Hand-craft a header declaring absurd extents; without the sanity bound
  // this would attempt a terabyte allocation before any size check.
  {
    std::ofstream os(file.path(), std::ios::binary);
    const std::uint32_t magic = 0x54504631;  // "TPF1"
    const std::int32_t nx = 1 << 24, ny = 1 << 24, nz = 1 << 24, halo = 2;
    os.write(reinterpret_cast<const char*>(&magic), 4);
    os.write(reinterpret_cast<const char*>(&nx), 4);
    os.write(reinterpret_cast<const char*>(&ny), 4);
    os.write(reinterpret_cast<const char*>(&nz), 4);
    os.write(reinterpret_cast<const char*>(&halo), 4);
  }
  try {
    (void)io::load_field(file.path());
    FAIL() << "implausible header must be rejected";
  } catch (const io::CorruptFileError& err) {
    EXPECT_NE(std::string(err.what()).find("implausible field header"),
              std::string::npos);
  }
}

TEST(IoGather, SizeMismatchAndCorruptErrorsAreTyped) {
  TempFile file(".tpg");
  sp::SparseTimeSeries g({{1.5, 2.25, 3.125}, {9.75, 8.5, 7.0625}}, 6);
  io::save_gather(file.path(), g);
  // Append junk: the file is now larger than the header declares.
  {
    std::ofstream os(file.path(), std::ios::binary | std::ios::app);
    os << "trailing junk";
  }
  EXPECT_THROW((void)io::load_gather(file.path()), io::CorruptFileError);
  // CorruptFileError IS-A PreconditionError, so existing catch sites and
  // tests keep working unchanged.
  EXPECT_THROW((void)io::load_gather(file.path()),
               tempest::util::PreconditionError);
}

TEST(IoField, RejectsUnwritablePath) {
  const auto f = random_field({4, 4, 4}, 1, 3);
  EXPECT_THROW(io::save_field("/nonexistent-dir/x.tpf", f),
               tempest::util::PreconditionError);
  EXPECT_THROW((void)io::load_field("/nonexistent-dir/x.tpf"),
               tempest::util::PreconditionError);
}

TEST(IoGather, RoundTripPreservesCoordsAndData) {
  TempFile file(".tpg");
  sp::SparseTimeSeries g({{1.5, 2.25, 3.125}, {9.75, 8.5, 7.0625}}, 6);
  for (int t = 0; t < 6; ++t) {
    for (int r = 0; r < 2; ++r) {
      g.at(t, r) = static_cast<real_t>(t * 10 + r + 0.5);
    }
  }
  io::save_gather(file.path(), g);
  const auto loaded = io::load_gather(file.path());
  ASSERT_EQ(loaded.nt(), g.nt());
  ASSERT_EQ(loaded.npoints(), g.npoints());
  EXPECT_EQ(loaded.coords(), g.coords());
  for (int t = 0; t < 6; ++t) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_EQ(loaded.at(t, r), g.at(t, r));
    }
  }
}

TEST(IoGather, FieldAndGatherFormatsAreDistinct) {
  TempFile ffile(".tpf");
  const auto f = random_field({4, 4, 4}, 0, 1);
  io::save_field(ffile.path(), f);
  EXPECT_THROW((void)io::load_gather(ffile.path()),
               tempest::util::PreconditionError);

  TempFile gfile(".tpg");
  sp::SparseTimeSeries g({{1, 1, 1}}, 2);
  io::save_gather(gfile.path(), g);
  EXPECT_THROW((void)io::load_field(gfile.path()),
               tempest::util::PreconditionError);
}

TEST(IoCsv, GatherCsvShape) {
  TempFile file(".csv");
  sp::SparseTimeSeries g({{1, 1, 1}, {2, 2, 2}, {3, 3, 3}}, 4);
  g.at(2, 1) = 7.5f;
  io::save_gather_csv(file.path(), g, 0.5);
  std::ifstream is(file.path());
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "t_ms,rec0,rec1,rec2");
  std::string line;
  int rows = 0;
  std::string third;
  while (std::getline(is, line)) {
    if (rows == 2) third = line;
    ++rows;
  }
  EXPECT_EQ(rows, 4);
  EXPECT_EQ(third, "1,0,7.5,0");  // t = 2 * 0.5 ms
}

TEST(IoCsv, SliceCsvShapeAndBounds) {
  TempFile file(".csv");
  tg::Grid3<real_t> f({3, 2, 4}, 0, 0.0f);
  f(1, 1, 2) = 9.0f;
  io::save_slice_csv(file.path(), f, 1);
  std::ifstream is(file.path());
  std::string line;
  int rows = -1;  // header
  bool found = false;
  while (std::getline(is, line)) {
    ++rows;
    found = found || line == "1,2,9";
  }
  EXPECT_EQ(rows, 3 * 4);
  EXPECT_TRUE(found);
  EXPECT_THROW(io::save_slice_csv(file.path(), f, 5),
               tempest::util::PreconditionError);
}
