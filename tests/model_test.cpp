#include <gtest/gtest.h>

#include <cmath>

#include "tempest/physics/damping.hpp"
#include "tempest/physics/model.hpp"

namespace ph = tempest::physics;
namespace tg = tempest::grid;
using tempest::real_t;

namespace {
const ph::Geometry kGeom{{24, 20, 18}, 10.0, 4, 6};
}

TEST(Geometry, RadiusFromOrder) {
  const ph::Geometry g4{{8, 8, 8}, 10.0, 4, 0};
  const ph::Geometry g12{{8, 8, 8}, 10.0, 12, 0};
  EXPECT_EQ(g4.radius(), 2);
  EXPECT_EQ(g12.radius(), 6);
}

TEST(AcousticModel, HomogeneousFieldsConsistent) {
  const auto m = ph::make_acoustic_homogeneous(kGeom, 2.0);
  EXPECT_EQ(m.vp.halo(), 2);
  m.vp.for_each_interior([&](int x, int y, int z) {
    EXPECT_FLOAT_EQ(m.vp(x, y, z), 2.0f);
    EXPECT_FLOAT_EQ(m.m(x, y, z), 0.25f);
  });
  EXPECT_DOUBLE_EQ(m.vp_max(), 2.0);
  EXPECT_GT(m.critical_dt(), 0.0);
}

TEST(AcousticModel, LayeredVelocityMonotoneWithDepth) {
  const auto m = ph::make_acoustic_layered(kGeom, 1.5, 3.5, 4);
  for (int z = 1; z < kGeom.extents.nz; ++z) {
    EXPECT_GE(m.vp(5, 5, z), m.vp(5, 5, z - 1));
  }
  EXPECT_FLOAT_EQ(m.vp(5, 5, 0), 1.5f);
  EXPECT_FLOAT_EQ(m.vp(5, 5, kGeom.extents.nz - 1), 3.5f);
  // m = 1/vp^2 pointwise.
  m.vp.for_each_interior([&](int x, int y, int z) {
    EXPECT_NEAR(m.m(x, y, z), 1.0 / (m.vp(x, y, z) * m.vp(x, y, z)), 1e-6);
  });
}

TEST(AcousticModel, RejectsBadParameters) {
  EXPECT_THROW(ph::make_acoustic_homogeneous(kGeom, -1.0),
               tempest::util::PreconditionError);
  EXPECT_THROW(ph::make_acoustic_layered(kGeom, 3.0, 1.0, 2),
               tempest::util::PreconditionError);
  EXPECT_THROW(ph::make_acoustic_layered(kGeom, 1.0, 2.0, 0),
               tempest::util::PreconditionError);
}

TEST(TTIModel, ParameterRangesPhysical) {
  const auto m = ph::make_tti_layered(kGeom, 1.5, 3.5, 4);
  m.vp.for_each_interior([&](int x, int y, int z) {
    EXPECT_GE(m.epsilon(x, y, z), 0.0f);
    EXPECT_LE(m.epsilon(x, y, z), 0.3f);
    EXPECT_GE(m.delta(x, y, z), 0.0f);
    EXPECT_LE(m.delta(x, y, z), 0.2f);
    EXPECT_GE(m.theta(x, y, z), 0.0f);
    EXPECT_LE(m.theta(x, y, z), 0.6f);
  });
  // Anisotropy tightens the CFL bound relative to plain acoustic.
  const auto iso = ph::make_acoustic_layered(kGeom, 1.5, 3.5, 4);
  EXPECT_LT(m.critical_dt(), iso.critical_dt());
}

TEST(ElasticModel, LameParametersConsistent) {
  const auto m = ph::make_elastic_layered(kGeom, 1.5, 3.5, 4);
  m.vp.for_each_interior([&](int x, int y, int z) {
    const double vp = m.vp(x, y, z);
    const double vs = m.vs(x, y, z);
    const double rho = m.rho(x, y, z);
    EXPECT_NEAR(vs, vp / std::sqrt(3.0), 1e-5);
    EXPECT_NEAR(m.mu(x, y, z), rho * vs * vs, 1e-5);
    EXPECT_NEAR(m.lam(x, y, z), rho * (vp * vp - 2 * vs * vs), 1e-5);
    EXPECT_NEAR(m.b(x, y, z), 1.0 / rho, 1e-6);
    // Poisson solid: lambda == mu.
    EXPECT_NEAR(m.lam(x, y, z), m.mu(x, y, z), 1e-4);
  });
  EXPECT_GT(m.critical_dt(), 0.0);
}

TEST(Damping, ZeroInInteriorPositiveAtBoundary) {
  const auto damp = ph::make_damping(kGeom, 1.5);
  EXPECT_EQ(damp(12, 10, 9), 0.0f);  // deep interior
  EXPECT_GT(damp(0, 10, 9), 0.0f);   // at faces
  EXPECT_GT(damp(12, 10, 0), 0.0f);
  EXPECT_GT(damp(12, 19, 9), 0.0f);
}

TEST(Damping, MonotoneTowardsFaces) {
  const auto damp = ph::make_damping(kGeom, 1.5);
  for (int x = 1; x < kGeom.nbl; ++x) {
    EXPECT_LE(damp(x, 10, 9), damp(x - 1, 10, 9));
  }
}

TEST(Damping, StrongerForFasterMediaAndThinnerLayers) {
  const auto slow = ph::make_damping(kGeom, 1.5);
  const auto fast = ph::make_damping(kGeom, 4.5);
  EXPECT_GT(fast(0, 10, 9), slow(0, 10, 9));

  ph::Geometry thin = kGeom;
  thin.nbl = 3;
  const auto thin_damp = ph::make_damping(thin, 1.5);
  EXPECT_GT(thin_damp(0, 10, 9), slow(0, 10, 9));
}

TEST(Damping, NblZeroMeansNoDamping) {
  ph::Geometry g = kGeom;
  g.nbl = 0;
  const auto damp = ph::make_damping(g, 1.5);
  EXPECT_EQ(tg::max_abs(damp), 0.0);
}

TEST(Damping, CornersUseMinimumFaceDistance) {
  const auto damp = ph::make_damping(kGeom, 1.5);
  // A corner is as damped as a face point at the same minimum distance.
  EXPECT_FLOAT_EQ(damp(0, 0, 0), damp(0, 10, 9));
  EXPECT_FLOAT_EQ(damp(2, 2, 2), damp(2, 10, 9));
}
