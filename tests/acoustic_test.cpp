#include <gtest/gtest.h>

#include <cmath>

#include "tempest/physics/acoustic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace tc = tempest::core;
using tempest::real_t;

namespace {

struct Setup {
  ph::AcousticModel model;
  sp::SparseTimeSeries src;
  sp::SparseTimeSeries rec;
  int nt;
};

Setup make_setup(tg::Extents3 e, int so, int nt, sp::CoordList src_coords,
                 int n_rec) {
  ph::Geometry g{e, 10.0, so, /*nbl=*/4};
  Setup s{ph::make_acoustic_layered(g, 1.5, 3.0, 3),
          sp::SparseTimeSeries(std::move(src_coords), nt),
          sp::SparseTimeSeries(sp::receiver_line(e, n_rec, 0.15, 3), nt), nt};
  const double dt = s.model.critical_dt();
  s.src.broadcast_signature(sp::ricker(nt, dt, /*f0=*/0.015));
  return s;
}

}  // namespace

TEST(Acoustic, SpaceBlockedMatchesReferenceBitExact) {
  auto s = make_setup({20, 18, 16}, 4, 24, sp::single_center_source({20, 18, 16}, 0.4), 5);
  ph::AcousticPropagator prop_a(s.model);
  auto rec_a = s.rec;
  prop_a.run(ph::Schedule::Reference, s.src, &rec_a);
  const auto u_ref = prop_a.wavefield(s.nt);  // copy

  ph::AcousticPropagator prop_b(s.model);
  auto rec_b = s.rec;
  prop_b.run(ph::Schedule::SpaceBlocked, s.src, &rec_b);

  EXPECT_EQ(tg::max_abs_diff(u_ref, prop_b.wavefield(s.nt)), 0.0);
  for (int t = 0; t < s.nt; ++t) {
    for (int r = 0; r < rec_a.npoints(); ++r) {
      EXPECT_EQ(rec_a.at(t, r), rec_b.at(t, r));
    }
  }
}

TEST(Acoustic, WavefrontMatchesBaselineSingleSource) {
  auto s = make_setup({20, 18, 16}, 4, 24, sp::single_center_source({20, 18, 16}, 0.4), 5);
  ph::AcousticPropagator base(s.model);
  auto rec_base = s.rec;
  base.run(ph::Schedule::SpaceBlocked, s.src, &rec_base);
  const auto u_base = base.wavefield(s.nt);

  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{4, 8, 8, 4, 4};
  ph::AcousticPropagator wave(s.model, opts);
  auto rec_wave = s.rec;
  const ph::RunStats stats = wave.run(ph::Schedule::Wavefront, s.src, &rec_wave);

  // Wavefield: identical arithmetic per point => bit-exact for one source.
  EXPECT_EQ(tg::max_abs_diff(u_base, wave.wavefield(s.nt)), 0.0);
  // Receiver traces: gather orders differ => tolerance compare.
  double scale = 0.0;
  for (int t = 0; t < s.nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      scale = std::max(scale, std::fabs(static_cast<double>(rec_base.at(t, r))));
  for (int t = 0; t < s.nt; ++t) {
    for (int r = 0; r < rec_base.npoints(); ++r) {
      EXPECT_NEAR(rec_wave.at(t, r), rec_base.at(t, r), 1e-5 * (scale + 1e-20))
          << "t=" << t << " r=" << r;
    }
  }
  EXPECT_GT(stats.precompute_seconds, 0.0);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_EQ(stats.point_updates,
            static_cast<long long>(s.nt - 1) * 20 * 18 * 16);
}

class AcousticTileSweep : public ::testing::TestWithParam<tc::TileSpec> {};

TEST_P(AcousticTileSweep, WavefrontInvariantToTileShape) {
  auto s = make_setup({18, 14, 12}, 4, 18, sp::single_center_source({18, 14, 12}, 0.4), 3);
  ph::AcousticPropagator base(s.model);
  base.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
  const auto u_base = base.wavefield(s.nt);

  ph::PropagatorOptions opts;
  opts.tiles = GetParam();
  ph::AcousticPropagator wave(s.model, opts);
  wave.run(ph::Schedule::Wavefront, s.src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(u_base, wave.wavefield(s.nt)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, AcousticTileSweep,
    ::testing::Values(tc::TileSpec{1, 8, 8, 4, 4},
                      tc::TileSpec{2, 4, 4, 4, 4},
                      tc::TileSpec{4, 8, 8, 8, 8},
                      tc::TileSpec{8, 16, 16, 4, 4},
                      tc::TileSpec{17, 6, 10, 3, 5},
                      tc::TileSpec{32, 64, 64, 16, 16}));

class AcousticOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(AcousticOrderSweep, WavefrontMatchesBaselineAcrossOrders) {
  const int so = GetParam();
  const tg::Extents3 e{22, 20, 18};
  auto s = make_setup(e, so, 16, sp::single_center_source(e, 0.4), 4);
  ph::AcousticPropagator base(s.model);
  base.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
  const auto u_base = base.wavefield(s.nt);

  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{4, 8, 8, 4, 4};
  ph::AcousticPropagator wave(s.model, opts);
  wave.run(ph::Schedule::Wavefront, s.src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(u_base, wave.wavefield(s.nt)), 0.0) << "so=" << so;
  EXPECT_GT(tg::max_abs(wave.wavefield(s.nt)), 0.0) << "wave must propagate";
}

// 10 exercises the runtime-radius fallback kernel (radius 5).
INSTANTIATE_TEST_SUITE_P(Orders, AcousticOrderSweep,
                         ::testing::Values(2, 4, 8, 10, 12));

TEST(Acoustic, MultipleSourcesAgreeWithinTolerance) {
  const tg::Extents3 e{24, 20, 16};
  const int nt = 20;
  auto coords = sp::plane_scatter(e, 9, /*seed=*/42, 0.3, 4);
  auto s = make_setup(e, 4, nt, std::move(coords), 4);

  ph::AcousticPropagator base(s.model);
  base.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
  const auto u_base = base.wavefield(nt);

  ph::AcousticPropagator wave(s.model);
  wave.run(ph::Schedule::Wavefront, s.src, nullptr);
  // Decomposition pre-sums overlapping sources in float, so results agree to
  // rounding rather than bit-exactly.
  const double umax = tg::max_abs(u_base);
  EXPECT_GT(umax, 0.0);
  EXPECT_LT(tg::max_abs_diff(u_base, wave.wavefield(nt)), 1e-4 * umax);
}

TEST(Acoustic, WindowedSincInterpolationSupported) {
  const tg::Extents3 e{20, 18, 16};
  auto s = make_setup(e, 4, 16, sp::single_center_source(e, 0.4), 3);
  ph::PropagatorOptions opts;
  opts.interp = sp::InterpKind::WindowedSinc;

  ph::AcousticPropagator base(s.model, opts);
  auto rec_base = s.rec;
  base.run(ph::Schedule::SpaceBlocked, s.src, &rec_base);
  const auto u_base = base.wavefield(s.nt);

  ph::AcousticPropagator wave(s.model, opts);
  auto rec_wave = s.rec;
  wave.run(ph::Schedule::Wavefront, s.src, &rec_wave);
  EXPECT_EQ(tg::max_abs_diff(u_base, wave.wavefield(s.nt)), 0.0);
}

TEST(Acoustic, NoReceiversIsFine) {
  const tg::Extents3 e{16, 16, 16};
  auto s = make_setup(e, 4, 12, sp::single_center_source(e, 0.4), 1);
  ph::AcousticPropagator p(s.model);
  EXPECT_NO_THROW(p.run(ph::Schedule::Wavefront, s.src, nullptr));
  sp::SparseTimeSeries empty_rec(sp::CoordList{}, s.nt);
  EXPECT_NO_THROW(p.run(ph::Schedule::Wavefront, s.src, &empty_rec));
}

TEST(Acoustic, StableAndBoundedOverManySteps) {
  const tg::Extents3 e{20, 20, 20};
  auto s = make_setup(e, 4, 120, sp::single_center_source(e, 0.4), 3);
  ph::AcousticPropagator p(s.model);
  p.run(ph::Schedule::Wavefront, s.src, nullptr);
  const double m = tg::max_abs(p.wavefield(s.nt));
  EXPECT_TRUE(std::isfinite(m));
  EXPECT_LT(m, 1e3);  // CFL-stable, damped: no blow-up
}

TEST(Acoustic, FirstArrivalTimeMatchesVelocity) {
  // Homogeneous medium: the wavelet peak reaches a receiver at distance d
  // after roughly t0 + d / c.
  const tg::Extents3 e{48, 24, 24};
  ph::Geometry g{e, 10.0, 4, /*nbl=*/4};
  const auto model = ph::make_acoustic_homogeneous(g, 2.0);  // c = 2 m/ms
  const double dt = model.critical_dt();
  const double f0 = 0.02;
  const int nt = 160;

  sp::SparseTimeSeries src({{12.0, 12.0, 12.0}}, nt);
  src.broadcast_signature(sp::ricker(nt, dt, f0));
  sp::SparseTimeSeries rec({{36.0, 12.0, 12.0}}, nt);  // 24 cells = 240 m away

  ph::AcousticPropagator p(model);
  p.run(ph::Schedule::SpaceBlocked, src, &rec);

  // Find the receiver-trace extremum (strongest arrival).
  int t_peak = 0;
  double best = 0.0;
  for (int t = 0; t < nt; ++t) {
    const double v = std::fabs(static_cast<double>(rec.at(t, 0)));
    if (v > best) {
      best = v;
      t_peak = t;
    }
  }
  ASSERT_GT(best, 0.0);
  const double travel_ms = 240.0 / 2.0;  // d / c
  // Causality: essentially no energy can reach the receiver before d/c.
  for (int t = 0; t < nt && t * dt < travel_ms * 0.95; ++t) {
    EXPECT_LT(std::fabs(static_cast<double>(rec.at(t, 0))), 1e-3 * best)
        << "acausal energy at t=" << t * dt << " ms";
  }
  // The strongest arrival sits at ~t0 + d/c (wavelet delay plus travel
  // time); near-field terms skew the waveform, hence the generous window.
  const double expected_ms = 1.5 / f0 + travel_ms;
  EXPECT_NEAR(t_peak * dt, expected_ms, 45.0);
}

TEST(Acoustic, DampingAttenuatesBoundaryReflections) {
  const tg::Extents3 e{24, 24, 24};
  ph::Geometry damped{e, 10.0, 4, 6};
  ph::Geometry undamped{e, 10.0, 4, 0};
  const int nt = 220;

  auto run_one = [&](const ph::Geometry& g) {
    auto model = ph::make_acoustic_homogeneous(g, 1.5);
    const double dt = model.critical_dt();
    sp::SparseTimeSeries src(sp::single_center_source(e, 0.5), nt);
    src.broadcast_signature(sp::ricker(nt, dt, 0.02));
    ph::AcousticPropagator p(model);
    p.run(ph::Schedule::SpaceBlocked, src, nullptr);
    return tg::max_abs(p.wavefield(nt));
  };

  // After the wave has hit the boundary several times, the damped model must
  // hold far less energy than the reflecting one.
  EXPECT_LT(run_one(damped), 0.5 * run_one(undamped));
}

TEST(Acoustic, RejectsInvalidRuns) {
  const tg::Extents3 e{16, 16, 16};
  auto s = make_setup(e, 4, 12, sp::single_center_source(e, 0.4), 1);
  ph::AcousticPropagator p(s.model);
  sp::SparseTimeSeries short_rec(sp::receiver_line(e, 2), 4);
  EXPECT_THROW(p.run(ph::Schedule::SpaceBlocked, s.src, &short_rec),
               tempest::util::PreconditionError);
  sp::SparseTimeSeries one_step(sp::single_center_source(e, 0.4), 1);
  EXPECT_THROW(p.run(ph::Schedule::SpaceBlocked, one_step, nullptr),
               tempest::util::PreconditionError);
}
