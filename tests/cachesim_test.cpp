#include <gtest/gtest.h>

#include "tempest/cachesim/cache.hpp"
#include "tempest/cachesim/instrumented_acoustic.hpp"

namespace cs = tempest::cachesim;
namespace tc = tempest::core;

namespace {
// Tiny direct-mapped-ish configs so behaviour is easy to reason about.
constexpr cs::CacheConfig kTinyL1{1024, 2, 64};    // 8 sets
constexpr cs::CacheConfig kTinyL2{8192, 4, 64};    // 32 sets
constexpr cs::CacheConfig kTinyL3{65536, 8, 64};   // 128 sets
}  // namespace

TEST(CacheLevel, ColdMissThenHit) {
  cs::CacheLevel c(kTinyL1);
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1020, false).hit);  // same 64B line
  EXPECT_FALSE(c.access(0x1040, false).hit);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheLevel, LruEviction) {
  cs::CacheLevel c(kTinyL1);  // 8 sets x 2 ways; set stride = 8*64 = 512
  // Three lines mapping to set 0: 0x0, 0x200, 0x400.
  EXPECT_FALSE(c.access(0x000, false).hit);
  EXPECT_FALSE(c.access(0x200, false).hit);
  EXPECT_TRUE(c.access(0x000, false).hit);   // refresh 0x0: LRU is 0x200
  EXPECT_FALSE(c.access(0x400, false).hit);  // evicts 0x200
  EXPECT_TRUE(c.access(0x000, false).hit);
  EXPECT_FALSE(c.access(0x200, false).hit);  // was evicted
}

TEST(CacheLevel, DirtyEvictionReportsWriteback) {
  cs::CacheLevel c(kTinyL1);
  (void)c.access(0x000, true);  // dirty line in set 0
  (void)c.access(0x200, false);
  const auto r = c.access(0x400, false);  // evicts LRU = dirty 0x000
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.writeback_addr, 0x000u);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheLevel, CleanEvictionNoWriteback) {
  cs::CacheLevel c(kTinyL1);
  (void)c.access(0x000, false);
  (void)c.access(0x200, false);
  EXPECT_FALSE(c.access(0x400, false).writeback);
}

TEST(CacheLevel, RejectsBadGeometry) {
  EXPECT_THROW(cs::CacheLevel({1000, 3, 64}), tempest::util::PreconditionError);
}

TEST(Hierarchy, StreamingTrafficScalesWithFootprint) {
  cs::CacheHierarchy h(kTinyL1, kTinyL2, kTinyL3);
  // Stream 1 MiB of reads: way beyond L3, so DRAM traffic ~= footprint.
  const std::uint64_t total = 1 << 20;
  for (std::uint64_t a = 0; a < total; a += 64) h.load(a);
  EXPECT_DOUBLE_EQ(h.traffic().dram_bytes, static_cast<double>(total));
  EXPECT_DOUBLE_EQ(h.traffic().l2_bytes, static_cast<double>(total));
}

TEST(Hierarchy, ResidentWorkingSetHitsInL1) {
  cs::CacheHierarchy h(kTinyL1, kTinyL2, kTinyL3);
  // 512 B working set fits L1: after the first pass everything hits.
  for (int pass = 0; pass < 10; ++pass) {
    for (std::uint64_t a = 0; a < 512; a += 64) h.load(a);
  }
  EXPECT_DOUBLE_EQ(h.traffic().dram_bytes, 512.0);  // compulsory only
  EXPECT_EQ(h.l1().misses(), 8u);
  EXPECT_EQ(h.l1().hits(), 72u);
}

TEST(Hierarchy, L2ResidentSetServesFromL2) {
  cs::CacheHierarchy h(kTinyL1, kTinyL2, kTinyL3);
  // 4 KiB set: spills L1 (1 KiB) but fits L2 (8 KiB).
  for (int pass = 0; pass < 8; ++pass) {
    for (std::uint64_t a = 0; a < 4096; a += 64) h.load(a);
  }
  // DRAM saw only the compulsory fills.
  EXPECT_DOUBLE_EQ(h.traffic().dram_bytes, 4096.0);
  EXPECT_GT(h.traffic().l2_bytes, 4096.0 * 4);  // L1 keeps missing
}

TEST(Hierarchy, WritebackPropagatesDirtyData) {
  cs::CacheHierarchy h(kTinyL1, kTinyL2, kTinyL3);
  // Dirty 256 KiB (beyond L3): every line eventually written back to DRAM.
  const std::uint64_t total = 256 * 1024;
  for (std::uint64_t a = 0; a < total; a += 64) h.store(a);
  for (std::uint64_t a = 0; a < total; a += 64) h.load(a + (1 << 24));
  // Fills for both regions plus write-backs of the dirty one.
  EXPECT_GE(h.traffic().dram_bytes, static_cast<double>(2 * total));
}

TEST(Hierarchy, StraddlingAccessTouchesTwoLines) {
  cs::CacheHierarchy h(kTinyL1, kTinyL2, kTinyL3);
  h.access(60, 8, false);  // crosses the 64B boundary
  EXPECT_EQ(h.l1().misses(), 2u);
}

TEST(Hierarchy, ResetClearsCountersAndTraffic) {
  cs::CacheHierarchy h(kTinyL1, kTinyL2, kTinyL3);
  for (std::uint64_t a = 0; a < 4096; a += 64) h.load(a);
  h.reset();
  EXPECT_EQ(h.l1().misses(), 0u);
  EXPECT_DOUBLE_EQ(h.traffic().dram_bytes, 0.0);
}

TEST(Trace, WavefrontReducesDramTraffic) {
  // The headline mechanism of the paper at trace level: on a grid whose
  // per-timestep working set exceeds the simulated LLC, wave-front temporal
  // blocking must move traffic from DRAM into the cache hierarchy.
  cs::TraceConfig base;
  base.extents = {40, 40, 40};
  base.space_order = 4;
  base.t_begin = 1;
  base.t_end = 9;
  base.tiles = tc::TileSpec{8, 16, 16, 8, 8};
  base.wavefront = false;

  // Scaled-down hierarchy: u slice = 40^3*4B = 256 KiB, 5 live fields
  // ~1.3 MiB >> 256 KiB L3.
  const cs::CacheConfig l1{8 * 1024, 8, 64};
  const cs::CacheConfig l2{64 * 1024, 8, 64};
  const cs::CacheConfig l3{256 * 1024, 16, 64};

  cs::CacheHierarchy h_base(l1, l2, l3);
  const long long updates_base = cs::replay_acoustic_trace(base, h_base);

  cs::TraceConfig wave = base;
  wave.wavefront = true;
  cs::CacheHierarchy h_wave(l1, l2, l3);
  const long long updates_wave = cs::replay_acoustic_trace(wave, h_wave);

  // Identical work...
  EXPECT_EQ(updates_base, updates_wave);
  EXPECT_EQ(updates_base, 8ll * 40 * 40 * 40);
  EXPECT_DOUBLE_EQ(h_base.traffic().l1_bytes, h_wave.traffic().l1_bytes);
  // ...but meaningfully less DRAM traffic under temporal blocking.
  EXPECT_LT(h_wave.traffic().dram_bytes, 0.8 * h_base.traffic().dram_bytes);
}

TEST(Trace, TrafficLowerBoundIsCompulsory) {
  cs::TraceConfig cfg;
  cfg.extents = {24, 24, 24};
  cfg.space_order = 4;
  cfg.t_begin = 1;
  cfg.t_end = 3;
  cfg.tiles = tc::TileSpec{2, 16, 16, 8, 8};
  cfg.wavefront = true;
  cs::CacheHierarchy h({8 * 1024, 8, 64}, {64 * 1024, 8, 64},
                       {256 * 1024, 16, 64});
  (void)cs::replay_acoustic_trace(cfg, h);
  // At minimum the five fields' padded footprints are touched once.
  const double one_field = 28.0 * 28.0 * 28.0 * 4.0;  // padded by halo 2
  EXPECT_GT(h.traffic().dram_bytes, 3.0 * one_field);
}
