#include <gtest/gtest.h>

#include <set>

#include "tempest/grid/blocks.hpp"
#include "tempest/grid/extents.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/util/error.hpp"

namespace tg = tempest::grid;

TEST(Extents, SizeAndContains) {
  const tg::Extents3 e{4, 5, 6};
  EXPECT_EQ(e.size(), 120u);
  EXPECT_TRUE(e.contains({0, 0, 0}));
  EXPECT_TRUE(e.contains({3, 4, 5}));
  EXPECT_FALSE(e.contains({4, 0, 0}));
  EXPECT_FALSE(e.contains({0, -1, 0}));
}

TEST(Range, BasicsAndIntersect) {
  const tg::Range r{2, 7};
  EXPECT_EQ(r.length(), 5);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains(2));
  EXPECT_FALSE(r.contains(7));
  EXPECT_EQ(tg::intersect(tg::Range{0, 5}, tg::Range{3, 9}),
            (tg::Range{3, 5}));
  EXPECT_TRUE(tg::intersect(tg::Range{0, 3}, tg::Range{5, 9}).empty());
  EXPECT_EQ((tg::Range{5, 2}).length(), 0);
}

TEST(Box, VolumeWholeIntersect) {
  const tg::Extents3 e{4, 5, 6};
  const tg::Box3 whole = tg::Box3::whole(e);
  EXPECT_EQ(whole.volume(), e.size());
  const tg::Box3 cut = tg::intersect(whole, {{2, 10}, {0, 2}, {1, 3}});
  EXPECT_EQ(cut.volume(), 2u * 2u * 2u);
  EXPECT_TRUE(tg::intersect(whole, {{9, 12}, {0, 2}, {0, 2}}).empty());
  EXPECT_EQ(tg::Box3{}.volume(), 0u);
}

TEST(Grid3, IndexingRoundTrip) {
  tg::Grid3<float> g({3, 4, 5}, 2, 0.0f);
  int counter = 0;
  g.for_each_interior([&](int x, int y, int z) {
    g(x, y, z) = static_cast<float>(++counter);
  });
  EXPECT_EQ(counter, 60);
  counter = 0;
  g.for_each_interior([&](int x, int y, int z) {
    EXPECT_EQ(g(x, y, z), static_cast<float>(++counter));
  });
}

TEST(Grid3, HaloAddressableAndZero) {
  tg::Grid3<float> g({3, 3, 3}, 2, 0.0f);
  EXPECT_EQ(g(-2, -2, -2), 0.0f);
  EXPECT_EQ(g(4, 4, 4), 0.0f);
  g(-1, 0, 0) = 7.0f;
  EXPECT_EQ(g(-1, 0, 0), 7.0f);
  EXPECT_EQ(g.padded_size(), 7u * 7u * 7u);
}

TEST(Grid3, AtBoundsChecks) {
  tg::Grid3<float> g({3, 3, 3}, 1, 0.0f);
  EXPECT_NO_THROW((void)g.at(-1, 3, 0));
  EXPECT_THROW((void)g.at(-2, 0, 0), tempest::util::PreconditionError);
  EXPECT_THROW((void)g.at(0, 4, 0), tempest::util::PreconditionError);
}

TEST(Grid3, StridesMatchLayout) {
  tg::Grid3<float> g({3, 4, 5}, 1, 0.0f);
  // z contiguous, then y, then x.
  EXPECT_EQ(g.stride_z(), 1);
  EXPECT_EQ(g.stride_y(), 5 + 2);
  EXPECT_EQ(g.stride_x(), (5 + 2) * (4 + 2));
  // origin() points at interior (0,0,0).
  g(1, 2, 3) = 9.0f;
  EXPECT_EQ(g.origin()[1 * g.stride_x() + 2 * g.stride_y() + 3], 9.0f);
}

TEST(Grid3, FillHaloKeepsInterior) {
  tg::Grid3<float> g({3, 3, 3}, 2, 1.0f);
  g.fill(1.0f);
  g.fill_halo(0.0f);
  g.for_each_interior(
      [&](int x, int y, int z) { EXPECT_EQ(g(x, y, z), 1.0f); });
  EXPECT_EQ(g(-1, 0, 0), 0.0f);
  EXPECT_EQ(g(0, 4, 0), 0.0f);
  EXPECT_EQ(g(0, 0, -2), 0.0f);
}

TEST(Grid3, MaxAbsDiffAndMaxAbs) {
  tg::Grid3<float> a({3, 3, 3}, 0, 1.0f);
  tg::Grid3<float> b({3, 3, 3}, 0, 1.0f);
  EXPECT_EQ(tg::max_abs_diff(a, b), 0.0);
  b(1, 1, 1) = -2.5f;
  EXPECT_DOUBLE_EQ(tg::max_abs_diff(a, b), 3.5);
  EXPECT_DOUBLE_EQ(tg::max_abs(b), 2.5);
}

TEST(Grid3, RejectsBadConstruction) {
  EXPECT_THROW(tg::Grid3<float>({0, 3, 3}, 1), tempest::util::PreconditionError);
  EXPECT_THROW(tg::Grid3<float>({3, 3, 3}, -1),
               tempest::util::PreconditionError);
}

TEST(TimeBuffer, ModuloSemantics) {
  tg::TimeBuffer<float> buf(3, {2, 2, 2}, 0, 0.0f);
  EXPECT_EQ(buf.slots(), 3);
  buf.at(0)(0, 0, 0) = 10.0f;
  buf.at(1)(0, 0, 0) = 11.0f;
  buf.at(2)(0, 0, 0) = 12.0f;
  // t=3 aliases slot 0.
  EXPECT_EQ(buf.at(3)(0, 0, 0), 10.0f);
  EXPECT_EQ(buf.at(4)(0, 0, 0), 11.0f);
  EXPECT_EQ(&buf.at(5), &buf.slot(2));
}

TEST(TimeBuffer, FillClearsAllSlots) {
  tg::TimeBuffer<float> buf(2, {2, 2, 2}, 1, 3.0f);
  buf.fill(0.0f);
  EXPECT_EQ(buf.at(0)(0, 0, 0), 0.0f);
  EXPECT_EQ(buf.at(1)(1, 1, 1), 0.0f);
}

TEST(Blocks, CoverageExactNoOverlap) {
  const tg::Box3 dom{{0, 10}, {0, 7}, {0, 5}};
  const auto blocks = tg::decompose_xy(dom, 4, 3);
  std::set<std::pair<int, int>> seen;
  std::size_t total = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.z, dom.z);
    total += b.volume();
    for (int x = b.x.lo; x < b.x.hi; ++x) {
      for (int y = b.y.lo; y < b.y.hi; ++y) {
        EXPECT_TRUE(seen.insert({x, y}).second) << "overlap at " << x << ',' << y;
      }
    }
  }
  EXPECT_EQ(total, dom.volume());
  EXPECT_EQ(seen.size(), 70u);
}

TEST(Blocks, ForEachMatchesDecompose) {
  const tg::Box3 dom{{2, 9}, {1, 8}, {0, 4}};
  const auto blocks = tg::decompose_xy(dom, 3, 5);
  std::vector<tg::Box3> streamed;
  tg::for_each_block_xy(dom, 3, 5,
                        [&](const tg::Box3& b) { streamed.push_back(b); });
  EXPECT_EQ(blocks, streamed);
}

TEST(Blocks, RejectsNonPositive) {
  EXPECT_THROW(tg::decompose_xy({{0, 4}, {0, 4}, {0, 4}}, 0, 2),
               tempest::util::PreconditionError);
}
