// tempest::obs unit tests: the fixed histogram layout and its quantile
// contract, merge associativity (the thread-count-invariance property),
// the flight-recorder wire format round-trip including torn-slot and
// ring-wrap recovery, the trace event tap, the OpenMetrics exposition
// lint, and a generous hot-path overhead bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tempest/io/io.hpp"
#include "tempest/obs/histogram.hpp"
#include "tempest/obs/metrics.hpp"
#include "tempest/obs/openmetrics.hpp"
#include "tempest/obs/recorder.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/rng.hpp"

namespace obs = tempest::obs;
namespace tr = tempest::trace;
using obs::Histogram;

namespace {

/// XOR one byte of `path` at `offset` (mirrors the chaos harness).
void flip_byte_at(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
  f.flush();
  ASSERT_TRUE(f.good());
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::reset_metrics();
    tr::set_enabled(false);
    tr::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset_metrics();
    tr::set_enabled(false);
    tr::reset();
  }
};

}  // namespace

// --- Histogram layout ------------------------------------------------------

TEST_F(ObsTest, BucketIndexIsMonotoneAndInvertsBounds) {
  // Every bucket's bounds map back to the bucket, and buckets tile the
  // value axis without gaps or overlap.
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(i)), i);
    if (i > 0) {
      EXPECT_EQ(Histogram::bucket_lower(i),
                Histogram::bucket_upper(i - 1) + 1);
    }
  }
  // Monotone across a magnitude sweep (powers of two and their neighbours).
  std::vector<std::int64_t> sweep;
  for (int e = 0; e < 62; ++e) {
    sweep.push_back((std::int64_t{1} << e) - 1);
    sweep.push_back(std::int64_t{1} << e);
    sweep.push_back((std::int64_t{1} << e) + 1);
  }
  std::sort(sweep.begin(), sweep.end());
  int last = -1;
  for (const std::int64_t v : sweep) {
    const int idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, last) << "v=" << v;
    EXPECT_LT(idx, Histogram::kNumBuckets);
    last = idx;
  }
  // Relative bucket width beyond the singleton range is at most 12.5%.
  for (int i = 2 * Histogram::kSubCount; i < Histogram::kNumBuckets; ++i) {
    const double lo = static_cast<double>(Histogram::bucket_lower(i));
    const double hi = static_cast<double>(Histogram::bucket_upper(i));
    EXPECT_LE((hi - lo + 1) / lo, 0.125 + 1e-12);
  }
}

TEST_F(ObsTest, NegativeRecordsClampToZeroAndEmptyIsInert) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0);
  h.record(-42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

// Golden quantiles: the documented rule (inclusive upper bound of the first
// bucket whose cumulative count reaches ceil(q*N), clamped to [min, max])
// gives exactly these values for 1..1000 — pinned so any change to the
// bucket layout or the rule is a loud, deliberate schema event.
TEST_F(ObsTest, QuantileGoldenValues) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.quantile(0.50), 511);   // bucket [480, 511], cum 511 >= 500
  EXPECT_EQ(h.quantile(0.99), 1000);  // bucket [960, 1023] clamps to max
  EXPECT_EQ(h.quantile(0.0), 1);      // rank floors at 1, clamps to min
  EXPECT_EQ(h.quantile(1.0), 1000);
  // The upward bias is bounded by one bucket width: p50 of 1..1000 is 500,
  // the estimate 511 is within 12.5%.
  EXPECT_LE(h.quantile(0.50), static_cast<std::int64_t>(500 * 1.125) + 1);
}

TEST_F(ObsTest, MergeIsAssociativeAndPartitionInvariant) {
  // Partition one sample stream across 8 shards (as 8 threads would), then
  // merge in several different orders: every result must equal the direct
  // single-histogram accumulation, bucket for bucket.
  constexpr int kShards = 8;
  constexpr int kSamples = 4000;
  tempest::util::SplitMix64 rng(0xC0FFEEu);
  Histogram direct;
  std::vector<Histogram> shards(kShards);
  for (int i = 0; i < kSamples; ++i) {
    // Spread magnitudes across the whole layout.
    const auto v = static_cast<std::int64_t>(rng.next() >> (i % 62));
    direct.record(v);
    shards[static_cast<std::size_t>(i % kShards)].record(v);
  }

  Histogram left;  // ((s0 + s1) + s2) + ...
  for (const Histogram& s : shards) left.merge(s);
  Histogram right;  // s7 + (s6 + (...))
  for (int i = kShards - 1; i >= 0; --i) {
    right.merge(shards[static_cast<std::size_t>(i)]);
  }
  Histogram tree;  // (s0+s1) + (s2+s3) + ...
  for (int i = 0; i < kShards; i += 2) {
    Histogram pair = shards[static_cast<std::size_t>(i)];
    pair.merge(shards[static_cast<std::size_t>(i + 1)]);
    tree.merge(pair);
  }

  EXPECT_EQ(left, direct);
  EXPECT_EQ(right, direct);
  EXPECT_EQ(tree, direct);
  EXPECT_EQ(left.quantile(0.99), direct.quantile(0.99));
}

// --- Metrics registry ------------------------------------------------------

TEST_F(ObsTest, MetricsRegistryRecordsOnlyWhileEnabled) {
  obs::record_ns(obs::Metric::TileSeconds, 100);  // disabled: dropped
  EXPECT_EQ(obs::metric_histogram(obs::Metric::TileSeconds).count(), 0u);
  obs::set_enabled(true);
  obs::record_ns(obs::Metric::TileSeconds, 100);
  obs::record_ns(obs::Metric::TileSeconds, 200);
  obs::record_ns(obs::Metric::ShotSeconds, 5'000'000);
  obs::set_enabled(false);
  const obs::MetricSnapshot snap = obs::snapshot_metrics();
  EXPECT_EQ(snap[static_cast<std::size_t>(obs::Metric::TileSeconds)].count(),
            2u);
  EXPECT_EQ(snap[static_cast<std::size_t>(obs::Metric::ShotSeconds)].count(),
            1u);
  EXPECT_EQ(snap[static_cast<std::size_t>(obs::Metric::TileSeconds)].sum(),
            300);
  obs::reset_metrics();
  EXPECT_EQ(obs::metric_histogram(obs::Metric::TileSeconds).count(), 0u);
}

TEST_F(ObsTest, MetricNamesAreOpenMetricsSafe) {
  for (int m = 0; m < obs::kNumMetrics; ++m) {
    const std::string name = obs::to_string(static_cast<obs::Metric>(m));
    ASSERT_FALSE(name.empty());
    for (const char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << "metric name '" << name << "' is not OpenMetrics-safe";
    }
  }
}

// --- Flight recorder -------------------------------------------------------

TEST_F(ObsTest, RecorderRoundTripsEventsThroughTheFile) {
  const std::string path = ::testing::TempDir() + "obs_roundtrip.tfbr";
  obs::FlightRecorder::Options o;
  o.lanes = 2;
  o.lane_capacity = 64;
  o.shot = 7;
  {
    auto rec = obs::FlightRecorder::create(path, o);
    ASSERT_NE(rec, nullptr);
    rec->record(obs::kMark, "alpha", 1, 2);
    rec->record(obs::kCounterDelta, "cells", 100, 0);
    rec->record(obs::kJobState, "attempt.start", 7, 0);
    rec->record(obs::kHealth, "p", std::bit_cast<std::int64_t>(0.25), 12);
  }
  const obs::BlackboxContents box = obs::read_blackbox(path);
  EXPECT_EQ(box.geom.shot, 7u);
  EXPECT_EQ(box.geom.lanes, 2u);
  EXPECT_EQ(box.total_recorded, 4u);
  EXPECT_EQ(box.torn_slots, 0u);
  ASSERT_EQ(box.events.size(), 4u);
  // Decoded events come back seq-ascending with their payloads intact.
  EXPECT_EQ(box.events[0].name, "alpha");
  EXPECT_EQ(box.events[0].kind, obs::kMark);
  EXPECT_EQ(box.events[0].a, 1);
  EXPECT_EQ(box.events[0].b, 2);
  EXPECT_EQ(box.events[3].name, "p");
  EXPECT_EQ(std::bit_cast<double>(box.events[3].a), 0.25);
  EXPECT_EQ(box.events[3].b, 12);
  for (std::size_t i = 1; i < box.events.size(); ++i) {
    EXPECT_LT(box.events[i - 1].seq, box.events[i].seq);
  }
  EXPECT_TRUE(box.open_spans.empty());
  std::string err;
  EXPECT_TRUE(obs::verify_blackbox(path, &err)) << err;
  std::remove(path.c_str());
}

TEST_F(ObsTest, RingWrapKeepsNewestEventsAndTotalCount) {
  const std::string path = ::testing::TempDir() + "obs_wrap.tfbr";
  obs::FlightRecorder::Options o;
  o.lanes = 1;
  o.lane_capacity = 8;
  constexpr int kEvents = 100;
  {
    auto rec = obs::FlightRecorder::create(path, o);
    ASSERT_NE(rec, nullptr);
    for (int i = 0; i < kEvents; ++i) {
      rec->record(obs::kMark, "tick", i, 0);
    }
  }
  const obs::BlackboxContents box = obs::read_blackbox(path);
  EXPECT_EQ(box.total_recorded, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(box.torn_slots, 0u);
  ASSERT_EQ(box.events.size(), 8u);  // exactly one ring of survivors
  // The survivors are the *last* 8 records, in order.
  EXPECT_EQ(box.events.back().seq, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(box.events.back().a, kEvents - 1);
  EXPECT_EQ(box.events.front().a, kEvents - 8);
  std::string err;
  EXPECT_TRUE(obs::verify_blackbox(path, &err)) << err;
  std::remove(path.c_str());
}

TEST_F(ObsTest, DirectSpanEnterWithoutExitIsReportedOpen) {
  const std::string path = ::testing::TempDir() + "obs_open.tfbr";
  {
    auto rec = obs::FlightRecorder::create(path, {});
    ASSERT_NE(rec, nullptr);
    rec->record(obs::kSpanEnter, "shot.run", 0, 0);
    rec->record(obs::kSpanEnter, "band", 3, 1);
    rec->record(obs::kSpanExit, "band", 500, 0);
    rec->record(obs::kSpanEnter, "stencil", 0, 0);
    // No exit for "shot.run" or "stencil": the process "died" here.
  }
  const obs::BlackboxContents box = obs::read_blackbox(path);
  ASSERT_EQ(box.open_spans.size(), 2u);
  EXPECT_EQ(box.open_spans[0], "shot.run");  // outermost first
  EXPECT_EQ(box.open_spans[1], "stencil");
  std::remove(path.c_str());
}

TEST_F(ObsTest, CorruptHeaderFailsVerificationAndDecodeThrows) {
  const std::string path = ::testing::TempDir() + "obs_badheader.tfbr";
  {
    auto rec = obs::FlightRecorder::create(path, {});
    ASSERT_NE(rec, nullptr);
    rec->record(obs::kMark, "x", 0, 0);
  }
  flip_byte_at(path, 4);  // version field: CRC-protected
  std::string err;
  EXPECT_FALSE(obs::verify_blackbox(path, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_THROW(static_cast<void>(obs::read_blackbox(path)),
               tempest::io::CorruptFileError);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TornSlotIsSkippedButVerifyStillPasses) {
  const std::string path = ::testing::TempDir() + "obs_torn.tfbr";
  obs::FlightRecorder::Options o;
  o.lanes = 1;
  o.lane_capacity = 8;
  o.name_capacity = 8;
  {
    auto rec = obs::FlightRecorder::create(path, o);
    ASSERT_NE(rec, nullptr);
    for (int i = 0; i < 4; ++i) rec->record(obs::kMark, "tick", i, 0);
  }
  // Slot 0 lives after the 4 KiB header, the 8-entry name table and the
  // 64-byte lane header; smash its timestamp field.
  const std::uint64_t slot0 = 4096 + 8 * 64 + 64;
  flip_byte_at(path, slot0 + 8);
  const obs::BlackboxContents box = obs::read_blackbox(path);
  EXPECT_EQ(box.torn_slots, 1u);
  ASSERT_EQ(box.events.size(), 3u);
  EXPECT_EQ(box.events.front().a, 1);  // record 0 is the torn one
  // One torn slot <= one lane: exactly the mid-write-at-death budget.
  std::string err;
  EXPECT_TRUE(obs::verify_blackbox(path, &err)) << err;
  std::remove(path.c_str());
}

TEST_F(ObsTest, MissingFileFailsVerification) {
  std::string err;
  EXPECT_FALSE(
      obs::verify_blackbox(::testing::TempDir() + "no_such.tfbr", &err));
  EXPECT_FALSE(err.empty());
}

#if !defined(TEMPEST_TRACE_DISABLED)
TEST_F(ObsTest, InstalledBlackboxCapturesTraceSpansAndCounters) {
  const std::string path = ::testing::TempDir() + "obs_tap.tfbr";
  auto rec = obs::FlightRecorder::create(path, {});
  ASSERT_NE(rec, nullptr);
  obs::install_blackbox(rec.get());
  EXPECT_EQ(obs::installed_blackbox(), rec.get());
  {
    // The tap fires even with the trace runtime disabled — the black box
    // must see the shot's spans without paying for the in-memory trace.
    ASSERT_FALSE(tr::enabled());
    tr::ScopedSpan span("obs.tap.span", "test", 42);
    tr::count(tr::Counter::CellsUpdated, 9);
  }
  obs::note_health("pressure", 17, 0.5);
  obs::note_job_state("attempt.done", 3, 1);
  obs::uninstall_blackbox();
  EXPECT_EQ(obs::installed_blackbox(), nullptr);
  rec.reset();  // unmap before reading

  const obs::BlackboxContents box = obs::read_blackbox(path);
  ASSERT_EQ(box.events.size(), 5u);
  EXPECT_EQ(box.events[0].kind, obs::kSpanEnter);
  EXPECT_EQ(box.events[0].name, "obs.tap.span");
  EXPECT_EQ(box.events[0].a, 42);
  // Counter delta lands inside the span, exit after it.
  EXPECT_EQ(box.events[1].kind, obs::kCounterDelta);
  EXPECT_EQ(box.events[1].name, "cells_updated");
  EXPECT_EQ(box.events[1].a, 9);
  EXPECT_EQ(box.events[2].kind, obs::kSpanExit);
  EXPECT_GE(box.events[2].a, 0);  // duration
  EXPECT_EQ(box.events[3].kind, obs::kHealth);
  EXPECT_EQ(std::bit_cast<double>(box.events[3].a), 0.5);
  EXPECT_EQ(box.events[4].kind, obs::kJobState);
  EXPECT_EQ(box.events[4].a, 3);
  EXPECT_EQ(box.events[4].b, 1);
  EXPECT_TRUE(box.open_spans.empty());
  std::remove(path.c_str());
}
#endif  // !defined(TEMPEST_TRACE_DISABLED)

// Hot-path overhead guard: the budget is deliberately enormous (tens of
// microseconds per event vs the tens-of-nanoseconds reality) so it only
// trips on a real regression — a lock, a syscall, or an allocation on the
// record path — and stays green under sanitizers and CI noise.
TEST_F(ObsTest, RecorderHotPathStaysUnderPerEventBudget) {
  const std::string path = ::testing::TempDir() + "obs_overhead.tfbr";
  auto rec = obs::FlightRecorder::create(path, {});
  ASSERT_NE(rec, nullptr);
  constexpr int kEvents = 200'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    rec->record(obs::kMark, "hot", i, 0);
  }
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_LT(ns / kEvents, 20'000.0)
      << "flight-recorder hot path cost exploded";
  rec.reset();
  std::remove(path.c_str());
}

// --- OpenMetrics exposition ------------------------------------------------

namespace {

/// Split an exposition into lines (dropping the trailing newline).
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

}  // namespace

TEST_F(ObsTest, OpenMetricsExpositionIsWellFormed) {
  obs::set_enabled(true);
  // A distribution that spans several buckets.
  for (int i = 1; i <= 100; ++i) {
    obs::record_ns(obs::Metric::ShotSeconds, static_cast<std::int64_t>(i) * 1'000'000);
  }
  obs::record_ns(obs::Metric::TileSeconds, 5'000);
  obs::set_enabled(false);
  tr::set_enabled(true);
  tr::count(tr::Counter::CellsUpdated, 1234);
  tr::set_enabled(false);

  std::ostringstream os;
  obs::write_openmetrics(os);
  const std::string text = os.str();
  const std::vector<std::string> lines = lines_of(text);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");

  // Counters: stable names, _total suffix, the recorded value present.
  EXPECT_NE(text.find("# TYPE tempest_cells_updated counter"),
            std::string::npos);
  EXPECT_NE(text.find("tempest_cells_updated_total 1234"), std::string::npos);

  // Histogram: per-metric bucket series must be le-increasing and
  // cumulative-non-decreasing, with +Inf equal to _count.
  double last_le = -1.0;
  unsigned long long last_cum = 0;
  unsigned long long inf_count = 0;
  unsigned long long count_value = 0;
  bool saw_bucket = false;
  for (const std::string& line : lines) {
    if (line.rfind("tempest_shot_seconds_bucket{le=\"", 0) == 0) {
      saw_bucket = true;
      const std::size_t q1 = line.find('"');
      const std::size_t q2 = line.find('"', q1 + 1);
      const std::string le = line.substr(q1 + 1, q2 - q1 - 1);
      const unsigned long long cum =
          std::stoull(line.substr(line.find(' ', q2) + 1));
      EXPECT_GE(cum, last_cum) << line;
      last_cum = cum;
      if (le == "+Inf") {
        inf_count = cum;
      } else {
        const double v = std::stod(le);
        EXPECT_GT(v, last_le) << line;
        last_le = v;
      }
    } else if (line.rfind("tempest_shot_seconds_count ", 0) == 0) {
      count_value = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_TRUE(saw_bucket);
  EXPECT_EQ(count_value, 100u);
  EXPECT_EQ(inf_count, count_value);
  EXPECT_NE(text.find("# TYPE tempest_shot_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# UNIT tempest_shot_seconds seconds"),
            std::string::npos);
  EXPECT_NE(text.find("tempest_shot_seconds_sum "), std::string::npos);
}

TEST_F(ObsTest, OpenMetricsFileSinkWritesAndReportsFailure) {
  const std::string path = ::testing::TempDir() + "obs_export.om";
  EXPECT_TRUE(obs::write_openmetrics(path));
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::string text((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("# EOF"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(obs::write_openmetrics("/nonexistent_dir_zz/x.om"));
}
