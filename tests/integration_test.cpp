// End-to-end integration: the complete paper workflow through the DSL for
// all three kernel classes, with receivers, on grids large enough that the
// wave actually reaches them — everything wired together the way a user
// would do it.

#include <gtest/gtest.h>

#include <cmath>

#include "tempest/dsl/operator.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace dsl = tempest::dsl;
namespace ph = tempest::physics;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
namespace tc = tempest::core;
using tempest::real_t;

namespace {

constexpr tg::Extents3 kE{36, 32, 28};

double trace_energy(const sp::SparseTimeSeries& rec) {
  double e = 0.0;
  for (int t = 0; t < rec.nt(); ++t)
    for (int r = 0; r < rec.npoints(); ++r)
      e += static_cast<double>(rec.at(t, r)) * rec.at(t, r);
  return e;
}

double max_trace_diff(const sp::SparseTimeSeries& a,
                      const sp::SparseTimeSeries& b) {
  double d = 0.0;
  for (int t = 0; t < a.nt(); ++t)
    for (int r = 0; r < a.npoints(); ++r)
      d = std::max(d, std::fabs(static_cast<double>(a.at(t, r)) -
                                static_cast<double>(b.at(t, r))));
  return d;
}

}  // namespace

TEST(Integration, AcousticDslWorkflowBothSchedules) {
  ph::Geometry geom{kE, 10.0, 4, 6};
  const auto model = ph::make_acoustic_layered(geom, 1.5, 3.0, 3);
  const int nt = 80;
  sp::SparseTimeSeries src(sp::single_center_source(kE, 0.3), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));

  dsl::Grid grid{kE, geom.spacing};
  dsl::TimeFunction u("u", grid, 4, 2);
  const dsl::Eq update = dsl::solve(
      dsl::param("m") * u.dt2() + dsl::param("damp") * u.dt() - u.laplace(),
      u.forward());
  dsl::SparseTimeFunction s("src", src.coords(), nt);
  const sp::CoordList rec_coords = sp::receiver_line(kE, 8, 0.2, 6);
  dsl::SparseTimeFunction d("rec", rec_coords, nt);

  sp::SparseTimeSeries rec_base(rec_coords, nt), rec_wave(rec_coords, nt);

  dsl::OperatorOptions base_opts;
  base_opts.schedule = ph::Schedule::SpaceBlocked;
  dsl::Operator base({update}, {s.inject(u, dsl::param("dt2_over_m"))},
                     {d.interpolate(u)}, base_opts);
  base.apply(model, src, &rec_base);

  dsl::OperatorOptions wave_opts;
  wave_opts.schedule = ph::Schedule::Wavefront;
  wave_opts.tiles = tc::TileSpec{6, 16, 16, 8, 8};
  dsl::Operator wave({update}, {s.inject(u, dsl::param("dt2_over_m"))},
                     {d.interpolate(u)}, wave_opts);
  wave.apply(model, src, &rec_wave);

  // The wave must actually reach the receivers...
  const double energy = trace_energy(rec_base);
  EXPECT_GT(energy, 1e-12);
  // ...and both schedules must record the same gather.
  double scale = 0.0;
  for (int t = 0; t < nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      scale = std::max(scale,
                       std::fabs(static_cast<double>(rec_base.at(t, r))));
  EXPECT_LT(max_trace_diff(rec_base, rec_wave), 1e-4 * scale);
}

TEST(Integration, TTIWavePropagatesAndSchedulesAgree) {
  ph::Geometry geom{kE, 20.0, 4, 6};
  const auto model = ph::make_tti_layered(geom, 1.5, 3.0, 3);
  const int nt = 60;
  sp::SparseTimeSeries src(sp::single_center_source(kE, 0.3), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.012));
  const sp::CoordList rec_coords = sp::receiver_line(kE, 6, 0.2, 6);
  sp::SparseTimeSeries rec_base(rec_coords, nt), rec_wave(rec_coords, nt);

  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{6, 16, 16, 8, 8};
  ph::TTIPropagator prop(model, opts);
  prop.run(ph::Schedule::SpaceBlocked, src, &rec_base);
  prop.run(ph::Schedule::Wavefront, src, &rec_wave);

  EXPECT_GT(trace_energy(rec_base), 1e-14);
  double scale = 1e-20;
  for (int t = 0; t < nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      scale = std::max(scale,
                       std::fabs(static_cast<double>(rec_base.at(t, r))));
  EXPECT_LT(max_trace_diff(rec_base, rec_wave), 1e-4 * scale);
}

TEST(Integration, ElasticWavePropagatesAndSchedulesAgree) {
  ph::Geometry geom{kE, 10.0, 4, 6};
  const auto model = ph::make_elastic_layered(geom, 1.5, 3.0, 3);
  const int nt = 120;
  sp::SparseTimeSeries src(sp::single_center_source(kE, 0.3), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));
  const sp::CoordList rec_coords = sp::receiver_line(kE, 6, 0.3, 6);
  sp::SparseTimeSeries rec_base(rec_coords, nt), rec_wave(rec_coords, nt);

  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{4, 16, 16, 8, 8};
  ph::ElasticPropagator prop(model, opts);
  prop.run(ph::Schedule::SpaceBlocked, src, &rec_base);
  prop.run(ph::Schedule::Wavefront, src, &rec_wave);

  EXPECT_GT(trace_energy(rec_base), 1e-18);
  double scale = 1e-20;
  for (int t = 0; t < nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      scale = std::max(scale,
                       std::fabs(static_cast<double>(rec_base.at(t, r))));
  EXPECT_LT(max_trace_diff(rec_base, rec_wave), 1e-4 * scale);
}

TEST(Integration, ManySourcesManyReceiversWindowedSinc) {
  // Stress the sparse machinery: 25 scattered sources, a receiver carpet,
  // the wide interpolation scheme, and an asymmetric tile shape — the whole
  // pipeline at once.
  ph::Geometry geom{kE, 10.0, 8, 6};
  const auto model = ph::make_acoustic_layered(geom, 1.5, 3.0, 3);
  const int nt = 40;
  sp::SparseTimeSeries src(sp::plane_scatter(kE, 25, 7, 0.25, 6), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));
  const sp::CoordList rec_coords = sp::receiver_carpet(kE, 5, 4, 0.1, 6);
  sp::SparseTimeSeries rec_base(rec_coords, nt), rec_wave(rec_coords, nt);

  ph::PropagatorOptions opts;
  opts.interp = sp::InterpKind::WindowedSinc;
  opts.tiles = tc::TileSpec{5, 24, 12, 6, 4};
  ph::AcousticPropagator prop(model, opts);
  prop.run(ph::Schedule::SpaceBlocked, src, &rec_base);
  const auto u_base = prop.wavefield(nt);
  prop.run(ph::Schedule::Wavefront, src, &rec_wave);

  const double umax = tg::max_abs(u_base);
  ASSERT_GT(umax, 0.0);
  EXPECT_LT(tg::max_abs_diff(u_base, prop.wavefield(nt)), 1e-4 * umax);
  double scale = 1e-20;
  for (int t = 0; t < nt; ++t)
    for (int r = 0; r < rec_base.npoints(); ++r)
      scale = std::max(scale,
                       std::fabs(static_cast<double>(rec_base.at(t, r))));
  EXPECT_LT(max_trace_diff(rec_base, rec_wave), 2e-4 * scale);
}

TEST(Integration, RepeatedRunsAreDeterministic) {
  // run() resets all state: two invocations must agree bit-for-bit.
  ph::Geometry geom{{20, 20, 20}, 10.0, 4, 4};
  const auto model = ph::make_acoustic_layered(geom);
  const int nt = 20;
  sp::SparseTimeSeries src(sp::single_center_source({20, 20, 20}, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));

  ph::AcousticPropagator prop(model);
  prop.run(ph::Schedule::Wavefront, src, nullptr);
  const auto first = prop.wavefield(nt);
  prop.run(ph::Schedule::Wavefront, src, nullptr);
  EXPECT_EQ(tg::max_abs_diff(first, prop.wavefield(nt)), 0.0);
}
