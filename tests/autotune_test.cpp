#include <gtest/gtest.h>

#include <cmath>

#include "tempest/autotune/autotune.hpp"
#include "tempest/util/error.hpp"

namespace at = tempest::autotune;
namespace tc = tempest::core;
namespace tg = tempest::grid;

TEST(Candidates, SymmetricSpaceShape) {
  at::CandidateSpace space;
  space.tile_sizes = {32, 64};
  space.block_sizes = {4, 8};
  space.tile_t = {8};
  space.symmetric = true;
  const auto c = at::candidates({128, 128, 128}, space);
  // 2 tiles x 2 blocks = 4 symmetric shapes.
  EXPECT_EQ(c.size(), 4u);
  for (const auto& s : c) {
    EXPECT_EQ(s.tile_x, s.tile_y);
    EXPECT_EQ(s.block_x, s.block_y);
    EXPECT_LE(s.block_x, s.tile_x);
  }
}

TEST(Candidates, FullSpaceIncludesAsymmetric) {
  at::CandidateSpace space;
  space.tile_sizes = {32, 64};
  space.block_sizes = {4, 8};
  space.symmetric = false;
  const auto c = at::candidates({128, 128, 128}, space);
  EXPECT_EQ(c.size(), 16u);
  bool any_asym = false;
  for (const auto& s : c) any_asym = any_asym || (s.tile_x != s.tile_y);
  EXPECT_TRUE(any_asym);
}

TEST(Candidates, DropsOversizeAndInvalid) {
  at::CandidateSpace space;
  space.tile_sizes = {32, 512};  // 512 > 2*64: dropped
  space.block_sizes = {8, 64};   // 64 > tile 32: dropped for that tile
  const auto c = at::candidates({64, 64, 64}, space);
  for (const auto& s : c) {
    EXPECT_LE(s.tile_x, 128);
    EXPECT_LE(s.block_x, s.tile_x);
  }
}

TEST(Candidates, RejectsEmptySpace) {
  at::CandidateSpace space;
  space.tile_sizes = {};
  EXPECT_THROW((void)at::candidates({64, 64, 64}, space),
               tempest::util::PreconditionError);
}

TEST(Sweep, FindsTheAnalyticOptimum) {
  at::CandidateSpace space;
  space.tile_sizes = {16, 32, 64, 128};
  space.block_sizes = {4, 8, 16};
  const auto specs = at::candidates({128, 128, 128}, space);
  // Synthetic cost surface with a unique minimum at (64, 8).
  auto measure = [](const tc::TileSpec& s) {
    return std::fabs(s.tile_x - 64.0) + std::fabs(s.block_x - 8.0) + 1.0;
  };
  const auto result = at::sweep(specs, measure);
  EXPECT_EQ(result.best.spec.tile_x, 64);
  EXPECT_EQ(result.best.spec.block_x, 8);
  EXPECT_DOUBLE_EQ(result.best.seconds, 1.0);
  EXPECT_EQ(result.evaluated.size(), specs.size());
}

TEST(Sweep, RepeatsTakeBestOfN) {
  const std::vector<tc::TileSpec> specs{tc::TileSpec{8, 32, 32, 8, 8}};
  int call = 0;
  auto measure = [&](const tc::TileSpec&) {
    return (++call == 3) ? 0.5 : 2.0;  // only the 3rd sample is fast
  };
  const auto result = at::sweep(specs, measure, /*repeats=*/3);
  EXPECT_EQ(call, 3);
  EXPECT_DOUBLE_EQ(result.best.seconds, 0.5);
}

TEST(Sweep, RejectsEmptyInput) {
  EXPECT_THROW(
      (void)at::sweep({}, [](const tc::TileSpec&) { return 1.0; }),
      tempest::util::PreconditionError);
}
