#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "tempest/autotune/autotune.hpp"
#include "tempest/codegen/jit.hpp"
#include "tempest/core/moving.hpp"
#include "tempest/io/io.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/resilience/fault.hpp"
#include "tempest/resilience/health.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace at = tempest::autotune;
namespace cg = tempest::codegen;
namespace io = tempest::io;
namespace ph = tempest::physics;
namespace rs = tempest::resilience;
namespace sp = tempest::sparse;
namespace tc = tempest::core;
namespace tg = tempest::grid;
using tempest::real_t;

namespace {

/// Every test in this binary may arm the process-global fault plan; the
/// fixture guarantees no fault leaks into the next test.
class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override { rs::fault::reset(); }
  void TearDown() override { rs::fault::reset(); }
};

class TempFile {
 public:
  // ctest runs each TEST as its own process, so the counter alone is not
  // unique — qualify with the pid.
  explicit TempFile(const char* suffix)
      : path_(std::string("/tmp/tempest_fault_test_") +
              std::to_string(::getpid()) + "_" + std::to_string(counter_++) +
              suffix) {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
    std::remove((path_ + ".1").c_str());
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
    std::remove((path_ + ".1").c_str());
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};
int TempFile::counter_ = 0;

struct Setup {
  ph::AcousticModel model;
  sp::SparseTimeSeries src;
  sp::SparseTimeSeries rec;
  int nt;
};

Setup make_setup(tg::Extents3 e, int nt, int n_rec) {
  ph::Geometry g{e, 10.0, 4, /*nbl=*/4};
  Setup s{ph::make_acoustic_layered(g, 1.5, 3.0, 3),
          sp::SparseTimeSeries(sp::single_center_source(e, 0.4), nt),
          sp::SparseTimeSeries(
              n_rec > 0 ? sp::receiver_line(e, n_rec, 0.15, 3)
                        : sp::CoordList{},
              nt),
          nt};
  s.src.broadcast_signature(sp::ricker(nt, s.model.critical_dt(), 0.02));
  return s;
}

/// Thrown from a step callback to model the process dying mid-run.
struct KillSignal {};

/// A small synthetic checkpoint (no propagator involved).
rs::Checkpoint make_checkpoint(int step, std::uint64_t fp, real_t seed) {
  rs::Checkpoint ck;
  ck.fingerprint = fp;
  ck.step = step;
  for (int s = 0; s < 3; ++s) {
    tg::Grid3<real_t> g({6, 5, 4}, 2, real_t{0});
    g(1, 2, 3) = seed + static_cast<real_t>(s);
    ck.slots.push_back(std::move(g));
  }
  return ck;
}

}  // namespace

// --- Acceptance: mid-run kill + restart reproduces the gather bitwise. ---

TEST_F(FaultInjection, KilledRunResumesFromCheckpointBitwise) {
  const tg::Extents3 e{18, 16, 14};
  auto s = make_setup(e, 24, 4);

  ph::AcousticPropagator ref(s.model);
  auto rec_ref = s.rec;
  ref.run(ph::Schedule::SpaceBlocked, s.src, &rec_ref);
  const auto u_ref = ref.wavefield(s.nt);

  rs::Fingerprint fp;
  fp.add(e.nx).add(e.ny).add(e.nz).add(s.model.geom.space_order).add(s.nt);

  TempFile file(".tpck");
  rs::Checkpointer ckpt(file.path());
  const int kill_at = 13;
  {
    ph::AcousticPropagator first(s.model);
    auto rec = s.rec;
    EXPECT_THROW(
        first.run(ph::Schedule::SpaceBlocked, s.src, &rec,
                  [&](int t_done) {
                    if (t_done == kill_at) {
                      ckpt.save(first.capture(t_done, fp.value(), &rec));
                      throw KillSignal{};  // the process "dies" here
                    }
                  }),
        KillSignal);
  }

  // A fresh propagator models the restarted process.
  ph::AcousticPropagator resumed(s.model);
  const auto ck = ckpt.try_load(fp.value());
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->step, kill_at);
  ASSERT_TRUE(ck->has_rec);
  resumed.restore(*ck);
  auto rec_resumed = ck->rec;
  resumed.run_from(ck->step, ph::Schedule::SpaceBlocked, s.src, &rec_resumed);

  EXPECT_EQ(tg::max_abs_diff(u_ref, resumed.wavefield(s.nt)), 0.0);
  for (int t = 0; t < s.nt; ++t) {
    for (int r = 0; r < rec_ref.npoints(); ++r) {
      ASSERT_EQ(rec_ref.at(t, r), rec_resumed.at(t, r))
          << "t=" << t << " r=" << r;
    }
  }
}

// Same contract for the coupled two-field VTI system: the checkpoint carries
// the p slices then the q slices, and a resumed run is bitwise identical.
TEST_F(FaultInjection, KilledVTIRunResumesFromCheckpointBitwise) {
  const tg::Extents3 e{16, 14, 12};
  const int nt = 20;
  ph::Geometry g{e, 20.0, 4, /*nbl=*/4};
  ph::TTIModel model = ph::make_tti_layered(g, 1.5, 3.0, 3);
  model.theta.fill(0.0f);  // untilted: a genuine VTI medium
  model.phi.fill(0.0f);
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.02));
  const sp::SparseTimeSeries rec_proto(sp::receiver_line(e, 4, 0.15, 3), nt);

  ph::VTIPropagator ref(model);
  auto rec_ref = rec_proto;
  ref.run(ph::Schedule::SpaceBlocked, src, &rec_ref);
  const auto p_ref = ref.wavefield_p(nt);
  const auto q_ref = ref.wavefield_q(nt);

  rs::Fingerprint fp;
  fp.add(e.nx).add(e.ny).add(e.nz).add(model.geom.space_order).add(nt);

  TempFile file(".tpck");
  rs::Checkpointer ckpt(file.path());
  const int kill_at = 11;
  {
    ph::VTIPropagator first(model);
    auto rec = rec_proto;
    EXPECT_THROW(
        first.run(ph::Schedule::SpaceBlocked, src, &rec,
                  [&](int t_done) {
                    if (t_done == kill_at) {
                      ckpt.save(first.capture(t_done, fp.value(), &rec));
                      throw KillSignal{};  // the process "dies" here
                    }
                  }),
        KillSignal);
  }

  ph::VTIPropagator resumed(model);
  const auto ck = ckpt.try_load(fp.value());
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->step, kill_at);
  EXPECT_EQ(ck->slots.size(), 6u);  // three p slices + three q slices
  ASSERT_TRUE(ck->has_rec);
  resumed.restore(*ck);
  auto rec_resumed = ck->rec;
  resumed.run_from(ck->step, ph::Schedule::SpaceBlocked, src, &rec_resumed);

  EXPECT_EQ(tg::max_abs_diff(p_ref, resumed.wavefield_p(nt)), 0.0);
  EXPECT_EQ(tg::max_abs_diff(q_ref, resumed.wavefield_q(nt)), 0.0);
  for (int t = 0; t < nt; ++t) {
    for (int r = 0; r < rec_ref.npoints(); ++r) {
      ASSERT_EQ(rec_ref.at(t, r), rec_resumed.at(t, r))
          << "t=" << t << " r=" << r;
    }
  }
}

// --- Acceptance: an injected NaN is caught within check_every steps and
// the error names the field and the timestep. ---

TEST_F(FaultInjection, InjectedNaNDetectedWithinCadence) {
  auto s = make_setup({16, 14, 12}, 20, 0);
  ph::PropagatorOptions opts;
  opts.health.check_every = 3;
  const int poison_at = 10;
  rs::fault::plan().poison_wavefield_at_step = poison_at;

  ph::AcousticPropagator prop(s.model, opts);
  try {
    prop.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
    FAIL() << "the poisoned wavefield must fail the health check";
  } catch (const rs::NumericalHealthError& err) {
    EXPECT_EQ(err.field(), "u");
    EXPECT_GE(err.step(), poison_at);
    EXPECT_LT(err.step(), poison_at + opts.health.check_every);
    const std::string msg = err.what();
    EXPECT_NE(msg.find("field 'u'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("timestep " + std::to_string(err.step())),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("grid point"), std::string::npos) << msg;
  }
}

TEST_F(FaultInjection, ReferenceScheduleAlsoMonitored) {
  auto s = make_setup({12, 12, 12}, 14, 0);
  ph::PropagatorOptions opts;
  opts.health.check_every = 1;
  rs::fault::plan().poison_wavefield_at_step = 7;
  ph::AcousticPropagator prop(s.model, opts);
  try {
    prop.run(ph::Schedule::Reference, s.src, nullptr);
    FAIL() << "expected NumericalHealthError";
  } catch (const rs::NumericalHealthError& err) {
    EXPECT_EQ(err.step(), 7);  // cadence 1: caught the step it appeared
  }
}

TEST_F(FaultInjection, AbsoluteAmplitudeLimitTriggersBlowupDiagnosis) {
  auto s = make_setup({14, 12, 10}, 16, 0);
  ph::PropagatorOptions opts;
  opts.health.check_every = 2;
  opts.health.absolute_limit = 1e-12;  // any real signal exceeds this
  ph::AcousticPropagator prop(s.model, opts);
  try {
    prop.run(ph::Schedule::SpaceBlocked, s.src, nullptr);
    FAIL() << "expected blow-up detection";
  } catch (const rs::NumericalHealthError& err) {
    EXPECT_NE(std::string(err.what()).find("energy blow-up"),
              std::string::npos);
    EXPECT_NE(std::string(err.what()).find("CFL"), std::string::npos);
  }
}

// --- Health scans under temporal blocking fire at band boundaries. ---

TEST_F(FaultInjection, WavefrontScansAtBandBoundaries) {
  const int nt = 22;
  const int tile_t = 4;
  const auto bands = tc::wavefront_bands(1, nt, tile_t);
  ASSERT_FALSE(bands.empty());
  EXPECT_EQ(bands.front().first, 1);
  EXPECT_EQ(bands.back().second, nt);
  for (std::size_t i = 1; i < bands.size(); ++i) {
    EXPECT_EQ(bands[i].first, bands[i - 1].second);  // contiguous bands
  }

  auto s = make_setup({16, 14, 12}, nt, 0);
  ph::PropagatorOptions opts;
  opts.tiles = tc::TileSpec{tile_t, 8, 8, 4, 4};
  opts.health.check_every = 1;
  // Poison exactly at a band boundary: the band hook both injects and scans
  // there, so detection is deterministic at that step.
  const int boundary = bands[1].second;
  rs::fault::plan().poison_wavefield_at_step = boundary;

  ph::AcousticPropagator prop(s.model, opts);
  try {
    prop.run(ph::Schedule::Wavefront, s.src, nullptr);
    FAIL() << "expected NumericalHealthError at the band boundary";
  } catch (const rs::NumericalHealthError& err) {
    EXPECT_EQ(err.field(), "u");
    EXPECT_EQ(err.step(), boundary);
  }
}

// --- Moving (off-the-grid, towed) sources reject non-finite amplitudes
// before the decomposition can spread them. ---

TEST_F(FaultInjection, MovingSourceNaNRejectedAtDecomposition) {
  const tg::Extents3 e{18, 10, 10};
  auto mov = tc::MovingSources::linear_tow({5.0, 5.0, 5.0}, {11.0, 5.0, 5.0},
                                           /*n=*/2, /*nt=*/6);
  const std::vector<real_t> wavelet(6, real_t{1});
  mov.broadcast_signature(wavelet);
  mov.amplitude(3, 1) = std::numeric_limits<real_t>::quiet_NaN();

  const auto masks = tc::build_moving_masks(e, mov, sp::InterpKind::Trilinear);
  try {
    (void)tc::decompose_moving(masks, mov, sp::InterpKind::Trilinear);
    FAIL() << "NaN amplitude must be rejected";
  } catch (const rs::NumericalHealthError& err) {
    EXPECT_EQ(err.field(), "moving-source");
    EXPECT_EQ(err.step(), 3);
    EXPECT_NE(std::string(err.what()).find("timestep 3"), std::string::npos);
  }
}

// --- Checkpoint atomicity and validation. ---

TEST_F(FaultInjection, TornWriteLeavesPreviousCheckpointIntact) {
  TempFile file(".tpck");
  rs::Checkpointer ckpt(file.path());
  ckpt.save(make_checkpoint(5, 42, real_t{1.5}));
  ASSERT_TRUE(ckpt.exists());

  // Simulated kill mid-write: the temp file is partially written, the
  // rename never happens.
  rs::fault::plan().fail_checkpoint_writes = 1;
  EXPECT_THROW(ckpt.save(make_checkpoint(9, 42, real_t{2.5})),
               tempest::util::PreconditionError);

  const rs::Checkpoint survivor = ckpt.load();
  EXPECT_EQ(survivor.step, 5);
  ASSERT_EQ(survivor.slots.size(), 3u);
  EXPECT_EQ(survivor.slots[0](1, 2, 3), real_t{1.5});
}

TEST_F(FaultInjection, TruncatedCheckpointIsDetected) {
  TempFile file(".tpck");
  rs::Checkpointer ckpt(file.path());
  ckpt.save(make_checkpoint(7, 42, real_t{1}));

  std::string bytes;
  {
    std::ifstream is(file.path(), std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(is)),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream os(file.path(), std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW((void)ckpt.load(), io::CorruptFileError);
  // A damaged checkpoint must not stop a fresh run: try_load degrades to
  // "no checkpoint" with a warning.
  EXPECT_FALSE(ckpt.try_load(42).has_value());
}

TEST_F(FaultInjection, FlippedByteFailsTheCrc) {
  TempFile file(".tpck");
  rs::Checkpointer ckpt(file.path());
  ckpt.save(make_checkpoint(7, 42, real_t{1}));

  std::string bytes;
  {
    std::ifstream is(file.path(), std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(is)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream os(file.path(), std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    (void)ckpt.load();
    FAIL() << "bit rot must fail the CRC";
  } catch (const io::CorruptFileError& err) {
    EXPECT_NE(std::string(err.what()).find("CRC mismatch"),
              std::string::npos);
  }
}

TEST_F(FaultInjection, CorruptNewestCheckpointFallsBackToRotated) {
  TempFile file(".tpck");
  rs::Checkpointer ckpt(file.path());
  ckpt.save(make_checkpoint(5, 42, real_t{1}));
  ckpt.save(make_checkpoint(9, 42, real_t{2}));  // rotates step 5 to ".1"

  // Bit rot in the newest generation.
  std::string bytes;
  {
    std::ifstream is(file.path(), std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(is)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x20);
  {
    std::ofstream os(file.path(), std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // load() (newest only) refuses; try_load() serves the rotated
  // predecessor instead of stranding the run with zero checkpoints.
  EXPECT_THROW((void)ckpt.load(), io::CorruptFileError);
  const auto back = ckpt.try_load(42);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->step, 5);
  EXPECT_EQ(back->slots[0](1, 2, 3), real_t{1});

  // Both generations damaged: a warning and a fresh start, not a crash.
  std::ofstream(ckpt.previous_path(), std::ios::binary | std::ios::trunc)
      << "junk";
  EXPECT_FALSE(ckpt.try_load(42).has_value());
}

TEST_F(FaultInjection, RemoveAllClearsEveryGeneration) {
  TempFile file(".tpck");
  rs::Checkpointer ckpt(file.path());
  ckpt.save(make_checkpoint(3, 42, real_t{1}));
  ckpt.save(make_checkpoint(6, 42, real_t{2}));
  ASSERT_TRUE(ckpt.exists());
  std::ifstream prev(ckpt.previous_path());
  ASSERT_TRUE(prev.good());  // the rotation left a predecessor
  prev.close();

  ckpt.remove_all();
  EXPECT_FALSE(ckpt.exists());
  EXPECT_FALSE(std::ifstream(ckpt.previous_path()).good());
  EXPECT_FALSE(ckpt.try_load(42).has_value());
}

TEST_F(FaultInjection, FingerprintMismatchRefusesToResume) {
  TempFile file(".tpck");
  rs::Checkpointer ckpt(file.path());
  ckpt.save(make_checkpoint(7, /*fp=*/111, real_t{1}));
  EXPECT_THROW((void)ckpt.try_load(/*expected=*/222),
               rs::CheckpointMismatchError);
  // The right fingerprint still loads.
  EXPECT_TRUE(ckpt.try_load(111).has_value());
  // No checkpoint at all is a clean "start fresh".
  TempFile none(".tpck");
  EXPECT_FALSE(rs::Checkpointer(none.path()).try_load(111).has_value());
}

TEST_F(FaultInjection, GeometryMismatchRejectedOnRestore) {
  auto small = make_setup({12, 10, 8}, 8, 0);
  ph::AcousticPropagator donor(small.model);
  donor.run(ph::Schedule::SpaceBlocked, small.src, nullptr);
  const rs::Checkpoint ck = donor.capture(4, 1);

  auto other = make_setup({16, 14, 12}, 8, 0);
  ph::AcousticPropagator recipient(other.model);
  try {
    recipient.restore(ck);
    FAIL() << "restoring a foreign-geometry checkpoint must throw";
  } catch (const rs::CheckpointMismatchError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("12x10x8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("16x14x12"), std::string::npos) << msg;
  }
}

TEST_F(FaultInjection, AuxiliaryBlobsRoundTrip) {
  TempFile file(".tpck");
  rs::Checkpointer ckpt(file.path());
  auto ck = make_checkpoint(3, 9, real_t{4});
  ck.aux.emplace_back("image", std::vector<std::uint8_t>{1, 2, 3, 4, 5});
  ck.aux.emplace_back("meta", std::vector<std::uint8_t>{});
  ckpt.save(ck);

  const rs::Checkpoint back = ckpt.load();
  const auto* image = back.find_aux("image");
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(*image, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  const auto* meta = back.find_aux("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_TRUE(meta->empty());
  EXPECT_EQ(back.find_aux("missing"), nullptr);
}

// --- JIT resilience: transient failures retry, persistent failures fall
// back to the DSL interpreter and still produce the right physics. ---

TEST_F(FaultInjection, TransientCompilerFailureIsRetried) {
  rs::fault::plan().fail_jit_compiles = 1;
  cg::JitModule mod("int tempest_retry_probe(void) { return 7; }",
                    "tempest_retry_probe");
  EXPECT_EQ(mod.as<int(void)>()(), 7);
  EXPECT_EQ(rs::fault::plan().fail_jit_compiles, 0);  // fault was consumed
}

TEST_F(FaultInjection, JitRetryBudgetComesFromEnvironment) {
  // A bigger budget absorbs more consecutive failures...
  ::setenv("TEMPEST_JIT_RETRIES", "3", 1);
  rs::fault::plan().fail_jit_compiles = 2;
  {
    cg::JitModule mod("int tempest_env_probe(void) { return 11; }",
                      "tempest_env_probe");
    EXPECT_EQ(mod.as<int(void)>()(), 11);
  }
  EXPECT_EQ(rs::fault::plan().fail_jit_compiles, 0);

  // ...and a budget of one turns any failure into a typed, retryable
  // JitCompileError (transient in the jobs taxonomy).
  ::setenv("TEMPEST_JIT_RETRIES", "1", 1);
  rs::fault::plan().fail_jit_compiles = 2;
  EXPECT_THROW(cg::JitModule("int tempest_env_probe2(void) { return 0; }",
                             "tempest_env_probe2"),
               cg::JitCompileError);
  ::unsetenv("TEMPEST_JIT_RETRIES");
}

TEST_F(FaultInjection, PersistentCompilerFailureFallsBackToInterpreter) {
  const tg::Extents3 e{10, 9, 8};
  ph::Geometry g{e, 10.0, 4, 2};
  const auto model = ph::make_acoustic_layered(g, 1.5, 3.0, 2);
  const int nt = 8;
  sp::SparseTimeSeries src(sp::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sp::ricker(nt, model.critical_dt(), 0.03));

  cg::KernelSpec spec;
  spec.space_order = 4;
  spec.wavefront = false;
  // Both the first attempt and its retry fail: a persistently broken
  // toolchain.
  rs::fault::plan().fail_jit_compiles = 1000;
  cg::JitAcoustic jit(model, spec);
  rs::fault::reset();
  ASSERT_TRUE(jit.used_interpreter_fallback());
  jit.run(src);

  ph::PropagatorOptions popts;
  popts.dt = model.critical_dt();
  ph::AcousticPropagator direct(model, popts);
  direct.run(ph::Schedule::SpaceBlocked, src, nullptr);
  const auto& u_direct = direct.wavefield(nt);
  const double umax = tg::max_abs(u_direct);
  ASSERT_GT(umax, 0.0);
  // Interpreter evaluates in double, the kernel in float.
  EXPECT_LT(tg::max_abs_diff(jit.wavefield(nt), u_direct), 5e-4 * umax);
}

// --- Autotuner: one pathological trial must not abort the sweep. ---

TEST_F(FaultInjection, AutotuneSkipsFailingTrials) {
  const std::vector<tc::TileSpec> specs = {{4, 8, 8, 4, 4},
                                           {4, 16, 16, 4, 4},
                                           {4, 32, 32, 8, 8},
                                           {4, 64, 64, 8, 8}};
  auto measure = [](const tc::TileSpec& spec) -> double {
    if (spec.tile_x == 8) throw std::runtime_error("simulated trial crash");
    if (spec.tile_x == 16) return std::numeric_limits<double>::quiet_NaN();
    return spec.tile_x == 32 ? 0.5 : 1.5;
  };
  const at::SweepResult res = at::sweep(specs, measure, /*repeats=*/2);
  EXPECT_EQ(res.best.spec.tile_x, 32);
  ASSERT_EQ(res.evaluated.size(), 4u);
  EXPECT_TRUE(res.evaluated[0].failed);
  EXPECT_NE(res.evaluated[0].error.find("simulated trial crash"),
            std::string::npos);
  EXPECT_TRUE(res.evaluated[1].failed);
  EXPECT_NE(res.evaluated[1].error.find("non-finite"), std::string::npos);
  EXPECT_FALSE(res.evaluated[2].failed);
  EXPECT_FALSE(res.evaluated[3].failed);

  auto all_fail = [](const tc::TileSpec&) -> double {
    throw std::runtime_error("boom");
  };
  EXPECT_THROW((void)at::sweep(specs, all_fail),
               tempest::util::PreconditionError);
}
