#include <gtest/gtest.h>

#include <vector>

#include "tempest/core/compress.hpp"
#include "tempest/core/fused.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/sparse/operators.hpp"
#include "tempest/sparse/survey.hpp"

namespace tc = tempest::core;
namespace sp = tempest::sparse;
namespace tg = tempest::grid;
using tempest::real_t;

namespace {
constexpr tg::Extents3 kE{20, 18, 16};

sp::SparseTimeSeries make_sources(sp::CoordList coords, int nt) {
  sp::SparseTimeSeries src(std::move(coords), nt);
  std::vector<real_t> sig(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t)
    sig[static_cast<std::size_t>(t)] = static_cast<real_t>(0.3 * t - 1.0);
  src.broadcast_signature(sig);
  return src;
}
}  // namespace

TEST(Masks, SingleOffGridSourceTouchesEightPoints) {
  const auto src = make_sources({{5.5, 6.25, 7.75}}, 3);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::Trilinear);
  EXPECT_EQ(masks.npts, 8);
  int mask_count = 0, id_count = 0;
  masks.sm.for_each_interior([&](int x, int y, int z) {
    mask_count += masks.sm(x, y, z);
    id_count += masks.sid(x, y, z) >= 0;
    // SM and SID agree pointwise.
    EXPECT_EQ(masks.sm(x, y, z) == 1, masks.sid(x, y, z) >= 0);
  });
  EXPECT_EQ(mask_count, 8);
  EXPECT_EQ(id_count, 8);
}

TEST(Masks, OnGridSourceTouchesOnePoint) {
  const auto src = make_sources({{5.0, 6.0, 7.0}}, 2);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::Trilinear);
  EXPECT_EQ(masks.npts, 1);
  EXPECT_EQ(masks.sid(5, 6, 7), 0);
}

TEST(Masks, IdsAscendInXMajorOrder) {
  const auto src = make_sources({{2.5, 3.5, 4.5}, {10.5, 3.5, 4.5}}, 2);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::Trilinear);
  ASSERT_EQ(masks.npts, 16);
  int last = -1;
  masks.sid.for_each_interior([&](int x, int y, int z) {
    const int id = masks.sid(x, y, z);
    if (id >= 0) {
      EXPECT_EQ(id, last + 1) << "ids must ascend with x-major traversal";
      last = id;
    }
  });
  EXPECT_EQ(last, 15);
}

TEST(Masks, OverlappingSourcesShareAffectedPoints) {
  // Two sources in the same cell: 8 unique points, not 16 (paper: "quite
  // common to encounter points being affected by more than one source").
  const auto src = make_sources({{5.25, 6.25, 7.25}, {5.75, 6.75, 7.75}}, 2);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::Trilinear);
  EXPECT_EQ(masks.npts, 8);
}

TEST(Masks, WindowedSincWiderSupport) {
  const auto src = make_sources({{8.5, 8.5, 8.5}}, 2);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::WindowedSinc);
  EXPECT_EQ(masks.npts, 64);
}

TEST(Decompose, ConservesTotalInjectedAmplitude) {
  const int nt = 5;
  const auto src =
      make_sources({{5.5, 6.25, 7.75}, {11.3, 4.2, 9.9}, {11.3, 4.4, 9.9}},
                   nt);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::Trilinear);
  const auto dcmp =
      tc::decompose_sources(masks, src, sp::InterpKind::Trilinear);
  ASSERT_EQ(dcmp.nt(), nt);
  ASSERT_EQ(dcmp.npts(), masks.npts);
  for (int t = 0; t < nt; ++t) {
    double total = 0.0;
    for (int id = 0; id < dcmp.npts(); ++id) total += dcmp.at(t, id);
    double expected = 0.0;  // each source's weights sum to 1
    for (int s = 0; s < src.npoints(); ++s) expected += src.at(t, s);
    EXPECT_NEAR(total, expected, 1e-4) << "t=" << t;
  }
}

TEST(Decompose, MatchesNaiveInjectionOnEmptyGrid) {
  // The decomposed per-point wavefields applied through SID must equal the
  // naive off-the-grid scatter, timestep by timestep (unit scale).
  const int nt = 4;
  const auto src = make_sources(
      {{5.5, 6.25, 7.75}, {5.9, 6.6, 7.2}, {12.0, 3.5, 4.5}}, nt);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::Trilinear);
  const auto dcmp =
      tc::decompose_sources(masks, src, sp::InterpKind::Trilinear);
  for (int t = 0; t < nt; ++t) {
    tg::Grid3<real_t> naive(kE, 0, 0.0f);
    sp::inject(naive, src, t, sp::InterpKind::Trilinear,
               [](int, int, int) { return 1.0; });
    tg::Grid3<real_t> via_dcmp(kE, 0, 0.0f);
    via_dcmp.for_each_interior([&](int x, int y, int z) {
      const int id = masks.sid(x, y, z);
      if (id >= 0) via_dcmp(x, y, z) = dcmp.at(t, id);
    });
    EXPECT_LT(tg::max_abs_diff(naive, via_dcmp), 1e-6) << "t=" << t;
  }
}

TEST(Compress, EntriesMatchMask) {
  const auto src = make_sources(
      {{5.5, 6.25, 7.75}, {5.5, 6.25, 2.25}, {12.0, 3.5, 4.5}}, 2);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::Trilinear);
  const tc::CompressedSparse cs(masks.sm, masks.sid);

  EXPECT_EQ(cs.nx(), kE.nx);
  EXPECT_EQ(cs.ny(), kE.ny);
  EXPECT_EQ(cs.total_entries(), masks.npts);
  EXPECT_FALSE(cs.empty());

  int recovered = 0;
  for (int x = 0; x < kE.nx; ++x) {
    for (int y = 0; y < kE.ny; ++y) {
      EXPECT_EQ(cs.nnz(x, y), static_cast<int>(cs.entries(x, y).size()));
      int last_z = -1;
      for (const auto& e : cs.entries(x, y)) {
        EXPECT_GT(e.z, last_z) << "entries must be z-ascending";
        last_z = e.z;
        EXPECT_EQ(masks.sm(x, y, e.z), 1);
        EXPECT_EQ(masks.sid(x, y, e.z), e.id);
        ++recovered;
      }
    }
  }
  EXPECT_EQ(recovered, masks.npts);
  // Column (5,6) holds two sources' z-support: 4 entries stacked.
  EXPECT_EQ(cs.nnz(5, 6), 4);
  EXPECT_EQ(cs.max_nnz(), 4);
}

TEST(Compress, EmptyMask) {
  tg::Grid3<unsigned char> sm(kE, 0, 0);
  tg::Grid3<int> sid(kE, 0, -1);
  const tc::CompressedSparse cs(sm, sid);
  EXPECT_TRUE(cs.empty());
  EXPECT_EQ(cs.max_nnz(), 0);
  EXPECT_EQ(cs.nnz(3, 3), 0);
}

TEST(Fused, InjectEqualsNaiveScatter) {
  const int nt = 3;
  const auto src = make_sources(
      {{5.5, 6.25, 7.75}, {5.9, 6.6, 7.2}, {12.0, 3.5, 4.5}}, nt);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::Trilinear);
  const auto dcmp =
      tc::decompose_sources(masks, src, sp::InterpKind::Trilinear);
  const tc::CompressedSparse cs(masks.sm, masks.sid);

  auto scale = [](int x, int y, int) { return 0.5 + 0.01 * (x + y); };
  for (int t = 0; t < nt; ++t) {
    tg::Grid3<real_t> naive(kE, 2, 0.0f);
    sp::inject(naive, src, t, sp::InterpKind::Trilinear, scale);
    tg::Grid3<real_t> fused(kE, 2, 0.0f);
    tc::fused_inject(fused, cs, dcmp, t, {0, kE.nx}, {0, kE.ny}, scale);
    EXPECT_LT(tg::max_abs_diff(naive, fused), 1e-5) << "t=" << t;
  }
}

TEST(Fused, DenseListing4VariantMatchesCompressed) {
  // The uncompressed fused loop (Listing 4) and the compressed one
  // (Listing 5) are alternative schedules of the same operator.
  const int nt = 3;
  const auto src = make_sources(
      {{5.5, 6.25, 7.75}, {5.9, 6.6, 7.2}, {12.0, 3.5, 4.5}}, nt);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::Trilinear);
  const auto dcmp =
      tc::decompose_sources(masks, src, sp::InterpKind::Trilinear);
  const tc::CompressedSparse cs(masks.sm, masks.sid);
  auto scale = [](int, int y, int z) { return 1.0 + 0.05 * (y - z); };
  for (int t = 0; t < nt; ++t) {
    tg::Grid3<real_t> dense(kE, 0, 0.0f), packed(kE, 0, 0.0f);
    tc::fused_inject_dense(dense, masks, dcmp, t, {0, kE.nx}, {0, kE.ny},
                           scale);
    tc::fused_inject(packed, cs, dcmp, t, {0, kE.nx}, {0, kE.ny}, scale);
    EXPECT_EQ(tg::max_abs_diff(dense, packed), 0.0) << "t=" << t;
  }
}

TEST(Fused, InjectRespectsColumnRanges) {
  const auto src = make_sources({{5.5, 6.25, 7.75}}, 2);
  const auto masks =
      tc::build_source_masks(kE, src, sp::InterpKind::Trilinear);
  const auto dcmp =
      tc::decompose_sources(masks, src, sp::InterpKind::Trilinear);
  const tc::CompressedSparse cs(masks.sm, masks.sid);
  tg::Grid3<real_t> u(kE, 0, 0.0f);
  // Range excludes the source columns: nothing happens.
  tc::fused_inject(u, cs, dcmp, 1, {0, 5}, {0, 6},
                   [](int, int, int) { return 1.0; });
  EXPECT_EQ(tg::max_abs(u), 0.0);
  // Split the domain into two x ranges: together they equal the full apply.
  tc::fused_inject(u, cs, dcmp, 1, {0, 6}, {0, kE.ny},
                   [](int, int, int) { return 1.0; });
  tc::fused_inject(u, cs, dcmp, 1, {6, kE.nx}, {0, kE.ny},
                   [](int, int, int) { return 1.0; });
  tg::Grid3<real_t> whole(kE, 0, 0.0f);
  tc::fused_inject(whole, cs, dcmp, 1, {0, kE.nx}, {0, kE.ny},
                   [](int, int, int) { return 1.0; });
  EXPECT_EQ(tg::max_abs_diff(u, whole), 0.0);
}

TEST(Receivers, DecompositionMatchesNaiveGather) {
  const sp::CoordList rec_coords{{4.5, 5.5, 2.25}, {9.1, 3.3, 2.25},
                                 {4.5, 5.5, 2.25}};  // duplicate receiver
  sp::SparseTimeSeries rec_naive(rec_coords, 2);
  sp::SparseTimeSeries rec_fused(rec_coords, 2);

  tg::Grid3<real_t> u(kE, 0, 0.0f);
  u.for_each_interior([&](int x, int y, int z) {
    u(x, y, z) = static_cast<real_t>(0.01 * x - 0.02 * y + 0.5 * z);
  });

  sp::interpolate(u, rec_naive, 1, sp::InterpKind::Trilinear);

  const auto dr =
      tc::decompose_receivers(kE, rec_fused, sp::InterpKind::Trilinear);
  const tc::CompressedSparse cs(dr.rm, dr.rid);
  rec_fused.zero();
  tc::fused_gather(u, cs, dr, rec_fused.step(1).data(), {0, kE.nx},
                   {0, kE.ny});

  for (int r = 0; r < rec_naive.npoints(); ++r) {
    EXPECT_NEAR(rec_naive.at(1, r), rec_fused.at(1, r), 1e-4) << "r=" << r;
  }
}

TEST(Receivers, PartialColumnsAccumulate) {
  const sp::CoordList rec_coords{{4.5, 5.5, 2.25}};
  sp::SparseTimeSeries rec(rec_coords, 1);
  tg::Grid3<real_t> u(kE, 0, 1.0f);
  const auto dr = tc::decompose_receivers(kE, rec, sp::InterpKind::Trilinear);
  const tc::CompressedSparse cs(dr.rm, dr.rid);
  // Gather over two disjoint x ranges must equal the full gather.
  tc::fused_gather(u, cs, dr, rec.step(0).data(), {0, 5}, {0, kE.ny});
  tc::fused_gather(u, cs, dr, rec.step(0).data(), {5, kE.nx}, {0, kE.ny});
  EXPECT_NEAR(rec.at(0, 0), 1.0, 1e-5);  // partition of unity on constant u
}

TEST(Receivers, OffsetsAreConsistentCsr) {
  const sp::CoordList rec_coords{{4.5, 5.5, 2.25}, {4.5, 5.5, 2.25}};
  sp::SparseTimeSeries rec(rec_coords, 1);
  const auto dr = tc::decompose_receivers(kE, rec, sp::InterpKind::Trilinear);
  ASSERT_EQ(dr.npts, 8);  // coincident receivers share the 8 support points
  ASSERT_EQ(static_cast<int>(dr.offsets.size()), dr.npts + 1);
  EXPECT_EQ(dr.offsets.front(), 0);
  EXPECT_EQ(dr.offsets.back(), static_cast<int>(dr.pairs.size()));
  EXPECT_EQ(static_cast<int>(dr.pairs.size()), 16);  // 2 receivers x 8
  for (int id = 0; id < dr.npts; ++id) {
    EXPECT_EQ(dr.offsets[static_cast<std::size_t>(id) + 1] -
                  dr.offsets[static_cast<std::size_t>(id)],
              2);  // both receivers contribute to every shared point
  }
}
