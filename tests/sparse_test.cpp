#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tempest/grid/grid3.hpp"
#include "tempest/sparse/interp.hpp"
#include "tempest/sparse/operators.hpp"
#include "tempest/sparse/series.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace sp = tempest::sparse;
namespace tg = tempest::grid;
using tempest::real_t;

namespace {
constexpr tg::Extents3 kE{16, 16, 16};

double weight_sum(const std::vector<sp::SupportPoint>& sup) {
  double s = 0.0;
  for (const auto& p : sup) s += p.w;
  return s;
}
}  // namespace

TEST(Interp, TrilinearEightPoints) {
  const auto sup = sp::support({3.25, 4.5, 5.75}, sp::InterpKind::Trilinear, kE);
  EXPECT_EQ(sup.size(), 8u);
  EXPECT_NEAR(weight_sum(sup), 1.0, 1e-12);
  for (const auto& p : sup) {
    EXPECT_GE(p.w, 0.0);
    EXPECT_TRUE((p.x == 3 || p.x == 4) && (p.y == 4 || p.y == 5) &&
                (p.z == 5 || p.z == 6));
  }
}

TEST(Interp, TrilinearKnownWeights) {
  const auto sup = sp::support({1.25, 2.0, 3.0}, sp::InterpKind::Trilinear, kE);
  // On-grid in y and z: only the x pair survives.
  ASSERT_EQ(sup.size(), 2u);
  const auto& a = sup[0];
  const auto& b = sup[1];
  EXPECT_EQ(a.x, 1);
  EXPECT_NEAR(a.w, 0.75, 1e-12);
  EXPECT_EQ(b.x, 2);
  EXPECT_NEAR(b.w, 0.25, 1e-12);
}

TEST(Interp, OnGridPointIsExactSingleton) {
  const auto sup = sp::support({5.0, 6.0, 7.0}, sp::InterpKind::Trilinear, kE);
  ASSERT_EQ(sup.size(), 1u);
  EXPECT_EQ(sup[0].x, 5);
  EXPECT_EQ(sup[0].y, 6);
  EXPECT_EQ(sup[0].z, 7);
  EXPECT_DOUBLE_EQ(sup[0].w, 1.0);
}

TEST(Interp, WindowedSincPartitionOfUnity) {
  const auto sup =
      sp::support({7.3, 8.6, 9.1}, sp::InterpKind::WindowedSinc, kE);
  EXPECT_EQ(sup.size(), 64u);  // 4 points per dim
  EXPECT_NEAR(weight_sum(sup), 1.0, 1e-10);
}

TEST(Interp, WindowedSincOnGridIsSingleton) {
  const auto sup =
      sp::support({7.0, 8.0, 9.0}, sp::InterpKind::WindowedSinc, kE);
  ASSERT_EQ(sup.size(), 1u);
  EXPECT_DOUBLE_EQ(sup[0].w, 1.0);
}

TEST(Interp, ClipsAtDomainEdge) {
  // x support would be {-1..2} for sinc at 0.5: negatives are dropped.
  const auto sup =
      sp::support({0.5, 8.0, 9.0}, sp::InterpKind::WindowedSinc, kE);
  for (const auto& p : sup) EXPECT_GE(p.x, 0);
  EXPECT_LT(sup.size(), 4u * 1u * 1u + 1u);
}

TEST(Interp, SupportWidth) {
  EXPECT_EQ(sp::support_width(sp::InterpKind::Trilinear), 2);
  EXPECT_EQ(sp::support_width(sp::InterpKind::WindowedSinc), 4);
}

TEST(Interp, TrilinearReproducesLinearField) {
  // Gather of a linear field through trilinear weights is exact.
  tg::Grid3<real_t> u(kE, 0, 0.0f);
  u.for_each_interior([&](int x, int y, int z) {
    u(x, y, z) = static_cast<real_t>(2.0 * x - 3.0 * y + 0.5 * z + 1.0);
  });
  const sp::Coord3 c{4.3, 7.9, 2.2};
  sp::SparseTimeSeries rec({c}, 1);
  sp::interpolate(u, rec, 0, sp::InterpKind::Trilinear);
  const double expected = 2.0 * c.x - 3.0 * c.y + 0.5 * c.z + 1.0;
  EXPECT_NEAR(rec.at(0, 0), expected, 1e-3);
}

TEST(Wavelet, RickerPeakAtDelay) {
  const double dt = 0.5, f0 = 0.010;  // 10 Hz in kHz/ms units
  const int nt = 600;
  const auto w = sp::ricker(nt, dt, f0);
  const auto peak = std::max_element(w.begin(), w.end());
  EXPECT_NEAR(*peak, 1.0, 1e-4);
  const double t_peak = static_cast<double>(peak - w.begin()) * dt;
  EXPECT_NEAR(t_peak, 1.5 / f0, dt + 1e-9);
}

TEST(Wavelet, RickerZeroMeanAndDecay) {
  const auto w = sp::ricker(4000, 0.5, 0.010);
  double sum = 0.0;
  for (real_t v : w) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-2);       // integral of Ricker is 0
  EXPECT_NEAR(w.back(), 0.0, 1e-6);  // fully decayed
}

TEST(Wavelet, GaussianDerivativeAntisymmetricAboutDelay) {
  const double dt = 0.25, f0 = 0.012;
  const double t0 = 1.5 / f0;
  const auto w = sp::gaussian_derivative(2000, dt, f0);
  const int i0 = static_cast<int>(t0 / dt);
  for (int d = 1; d < 40; ++d) {
    EXPECT_NEAR(w[static_cast<std::size_t>(i0 + d)],
                -w[static_cast<std::size_t>(i0 - d)], 2e-2);
  }
}

TEST(Series, LayoutAndBroadcast) {
  sp::SparseTimeSeries s({{1.5, 2.5, 3.5}, {4.5, 5.5, 6.5}}, 4);
  EXPECT_EQ(s.npoints(), 2);
  EXPECT_EQ(s.nt(), 4);
  const std::vector<real_t> sig{1.0f, 2.0f, 3.0f, 4.0f};
  s.broadcast_signature(sig);
  EXPECT_EQ(s.at(2, 0), 3.0f);
  EXPECT_EQ(s.at(2, 1), 3.0f);
  auto step = s.step(3);
  ASSERT_EQ(step.size(), 2u);
  EXPECT_EQ(step[0], 4.0f);
  s.zero();
  EXPECT_EQ(s.at(3, 1), 0.0f);
}

TEST(Operators, InjectScattersWeightedAmplitude) {
  tg::Grid3<real_t> u(kE, 2, 0.0f);
  sp::SparseTimeSeries src({{3.5, 4.5, 5.5}}, 2);
  src.at(1, 0) = 2.0f;
  sp::inject(u, src, 1, sp::InterpKind::Trilinear,
             [](int, int, int) { return 3.0; });
  // 8 corners each get 0.125 * 2 * 3 = 0.75.
  double total = 0.0;
  u.for_each_interior([&](int x, int y, int z) { total += u(x, y, z); });
  EXPECT_NEAR(total, 6.0, 1e-5);
  EXPECT_NEAR(u(3, 4, 5), 0.75, 1e-6);
  EXPECT_NEAR(u(4, 5, 6), 0.75, 1e-6);
}

TEST(Operators, CachedMatchesUncached) {
  tg::Grid3<real_t> a(kE, 2, 0.0f), b(kE, 2, 0.0f);
  sp::SparseTimeSeries src({{3.25, 4.5, 5.75}, {8.1, 2.9, 11.4}}, 3);
  src.broadcast_signature(std::vector<real_t>{0.5f, -1.5f, 2.5f});
  auto scale = [](int x, int, int) { return 1.0 + 0.1 * x; };
  sp::inject(a, src, 2, sp::InterpKind::Trilinear, scale);
  const sp::SupportCache cache(src, sp::InterpKind::Trilinear, kE);
  sp::inject_cached(b, src, 2, cache, scale);
  EXPECT_EQ(tg::max_abs_diff(a, b), 0.0);

  sp::SparseTimeSeries rec1({{5.5, 5.5, 5.5}}, 3), rec2({{5.5, 5.5, 5.5}}, 3);
  sp::interpolate(a, rec1, 1, sp::InterpKind::Trilinear);
  const sp::SupportCache rcache(rec1, sp::InterpKind::Trilinear, kE);
  sp::interpolate_cached(a, rec2, 1, rcache);
  EXPECT_EQ(rec1.at(1, 0), rec2.at(1, 0));
}

TEST(Operators, InjectInterpolateRoundTrip) {
  // Interpolating right where we injected recovers amp * sum w^2 <= amp.
  tg::Grid3<real_t> u(kE, 0, 0.0f);
  const sp::Coord3 c{6.3, 7.7, 8.2};
  sp::SparseTimeSeries src({c}, 1);
  src.at(0, 0) = 1.0f;
  sp::inject(u, src, 0, sp::InterpKind::Trilinear,
             [](int, int, int) { return 1.0; });
  sp::SparseTimeSeries rec({c}, 1);
  sp::interpolate(u, rec, 0, sp::InterpKind::Trilinear);
  double w2 = 0.0;
  for (const auto& p : sp::support(c, sp::InterpKind::Trilinear, kE))
    w2 += p.w * p.w;
  EXPECT_NEAR(rec.at(0, 0), w2, 1e-6);
  EXPECT_LE(rec.at(0, 0), 1.0f);
  EXPECT_GT(rec.at(0, 0), 0.0f);
}

TEST(Survey, SingleCenterSourceOffGrid) {
  const auto c = sp::single_center_source(kE);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NE(c[0].x, std::floor(c[0].x));
  EXPECT_NE(c[0].y, std::floor(c[0].y));
  EXPECT_NE(c[0].z, std::floor(c[0].z));
}

TEST(Survey, PlaneScatterStaysOnPlaneWithinMargin) {
  const tg::Extents3 e{64, 64, 64};
  const auto pts = sp::plane_scatter(e, 50, 123, 0.2, 8);
  ASSERT_EQ(pts.size(), 50u);
  for (const auto& p : pts) {
    EXPECT_DOUBLE_EQ(p.z, pts[0].z);
    EXPECT_GE(p.x, 8.0);
    EXPECT_LE(p.x, 55.0);
    EXPECT_GE(p.y, 8.0);
    EXPECT_LE(p.y, 55.0);
  }
}

TEST(Survey, PlaneScatterDeterministicBySeed) {
  const tg::Extents3 e{64, 64, 64};
  EXPECT_EQ(sp::plane_scatter(e, 10, 99), sp::plane_scatter(e, 10, 99));
  EXPECT_NE(sp::plane_scatter(e, 10, 99), sp::plane_scatter(e, 10, 100));
}

TEST(Survey, DenseVolumeCoversRequestedCount) {
  const tg::Extents3 e{64, 64, 64};
  for (int n : {1, 7, 27, 100}) {
    const auto pts = sp::dense_volume(e, n, 5);
    EXPECT_EQ(static_cast<int>(pts.size()), n);
    for (const auto& p : pts) {
      EXPECT_GE(p.z, 8.0);
      EXPECT_LE(p.z, 55.0);
    }
  }
}

TEST(Survey, ReceiverLineSpansX) {
  const tg::Extents3 e{128, 64, 64};
  const auto pts = sp::receiver_line(e, 11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_LT(pts.front().x, pts.back().x);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GT(pts[i].x, pts[i - 1].x);
}

TEST(Survey, ReceiverCarpetCount) {
  const tg::Extents3 e{64, 64, 64};
  EXPECT_EQ(sp::receiver_carpet(e, 5, 7).size(), 35u);
}
