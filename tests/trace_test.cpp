// tempest::trace unit tests: counter/span semantics, the disabled-mode
// no-op guarantee, sink well-formedness (a real JSON parse of the Chrome
// trace, not a substring grep), and a generous overhead regression bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "tempest/physics/acoustic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/threads.hpp"

namespace tr = tempest::trace;

namespace {

/// Minimal recursive-descent JSON reader — just enough structure to prove
/// the Chrome-trace sink emits something a real tracer will load. Values
/// are kept only where the assertions need them.
class JsonReader {
 public:
  explicit JsonReader(std::string text) : s_(std::move(text)) {}

  /// Parses the whole document; returns false on any syntax error.
  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  /// Every string that appeared as the value of key `k` somewhere.
  [[nodiscard]] std::vector<std::string> strings_for(
      const std::string& k) const {
    auto it = by_key_.find(k);
    return it == by_key_.end() ? std::vector<std::string>{} : it->second;
  }

  [[nodiscard]] int objects_in_array(const std::string& key) const {
    auto it = array_sizes_.find(key);
    return it == array_sizes_.end() ? -1 : it->second;
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array("");
      case '"': { std::string out; return string(&out); }
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '"') {
        std::string val;
        if (!string(&val)) return false;
        by_key_[key].push_back(val);
      } else if (pos_ < s_.size() && s_[pos_] == '[') {
        if (!array(key)) return false;
      } else {
        if (!value()) return false;
      }
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool array(const std::string& key) {
    if (!consume('[')) return false;
    skip_ws();
    int n = 0;
    if (!consume(']')) {
      while (true) {
        skip_ws();
        if (!value()) return false;
        ++n;
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) break;
        return false;
      }
    }
    if (!key.empty()) array_sizes_[key] = n;
    return true;
  }

  bool string(std::string* out) {
    if (!consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      out->push_back(s_[pos_++]);
    }
    return consume('"');
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string s_;
  std::size_t pos_ = 0;
  std::map<std::string, std::vector<std::string>> by_key_;
  std::map<std::string, int> array_sizes_;
};

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// A small traced acoustic run exercising every per-timestep phase.
void traced_acoustic_run() {
  using namespace tempest;
  const grid::Extents3 e{18, 16, 14};
  const int nt = 10;
  physics::Geometry g{e, 10.0, 4, /*nbl=*/4};
  const physics::AcousticModel model =
      physics::make_acoustic_layered(g, 1.5, 3.0, 3);
  sparse::SparseTimeSeries src(sparse::single_center_source(e, 0.4), nt);
  src.broadcast_signature(sparse::ricker(nt, model.critical_dt(), 0.015));
  sparse::SparseTimeSeries rec(sparse::receiver_line(e, 4, 0.15, 3), nt);

  physics::PropagatorOptions opts;
  opts.tiles = core::TileSpec{4, 8, 8, 4, 4};
  physics::AcousticPropagator prop(model, opts);
  prop.run(physics::Schedule::Wavefront, src, &rec);
  prop.run(physics::Schedule::SpaceBlocked, src, &rec);
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tr::set_enabled(false);
    tr::reset();
  }
  void TearDown() override {
    tr::set_enabled(false);
    tr::reset();
  }
};

}  // namespace

TEST_F(TraceTest, CountersAccumulateAndSnapshot) {
  tr::set_enabled(true);
  tr::count(tr::Counter::CellsUpdated, 10);
  tr::count(tr::Counter::CellsUpdated, 32);
  tr::count(tr::Counter::CheckpointBytes, 7);
  EXPECT_EQ(tr::value(tr::Counter::CellsUpdated), 42);
  EXPECT_EQ(tr::value(tr::Counter::CheckpointBytes), 7);
  EXPECT_EQ(tr::value(tr::Counter::JitCompiles), 0);

  const tr::CounterSnapshot snap = tr::snapshot();
  EXPECT_EQ(snap[static_cast<int>(tr::Counter::CellsUpdated)], 42);

  tr::reset();
  EXPECT_EQ(tr::value(tr::Counter::CellsUpdated), 0);
}

TEST_F(TraceTest, DisabledModeIsSemanticallyInert) {
  ASSERT_FALSE(tr::enabled());
  tr::count(tr::Counter::CellsUpdated, 1000);
  {
    tr::ScopedSpan span("ignored", "test");
  }
  EXPECT_EQ(tr::value(tr::Counter::CellsUpdated), 0);
  EXPECT_TRUE(tr::events().empty());
}

TEST_F(TraceTest, SpanRecordsNameCategoryAndArg) {
  tr::set_enabled(true);
  {
    tr::ScopedSpan span("phase", "compute", 17);
  }
  const std::vector<tr::Event> ev = tr::events();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_STREQ(ev[0].name, "phase");
  EXPECT_STREQ(ev[0].cat, "compute");
  EXPECT_TRUE(ev[0].has_arg);
  EXPECT_EQ(ev[0].arg, 17);
  EXPECT_GE(ev[0].dur_ns, 0);
}

TEST_F(TraceTest, EventsAreSortedByStartAcrossSpans) {
  tr::set_enabled(true);
  for (int i = 0; i < 8; ++i) {
    tr::ScopedSpan span("tick", "test", i);
  }
  const std::vector<tr::Event> ev = tr::events();
  ASSERT_EQ(ev.size(), 8u);
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].ts_ns, ev[i].ts_ns);
  }
}

TEST_F(TraceTest, CounterNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names;
  for (int c = 0; c < tr::kNumCounters; ++c) {
    names.emplace_back(tr::to_string(static_cast<tr::Counter>(c)));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

#if !defined(TEMPEST_TRACE_DISABLED)

// Golden-structure test: the Chrome trace of a real instrumented run must
// parse as JSON and carry the per-timestep phase spans the ISSUE promises.
TEST_F(TraceTest, ChromeTraceOfInstrumentedRunParsesAndHasPhaseSpans) {
  tr::set_enabled(true);
  tr::reset();
  traced_acoustic_run();
  tr::set_enabled(false);

  std::ostringstream os;
  tr::write_chrome_trace(os);
  const std::string json = os.str();

  JsonReader reader(json);
  ASSERT_TRUE(reader.parse()) << "Chrome trace is not valid JSON:\n"
                              << json.substr(0, 400);

  const std::vector<std::string> names = reader.strings_for("name");
  for (const char* want :
       {"stencil", "inject", "interp", "wavefront.band"}) {
    EXPECT_TRUE(contains(names, want)) << "missing span name " << want;
  }
  // Complete events only, and at least one per recorded span name.
  const std::vector<std::string> phases = reader.strings_for("ph");
  ASSERT_FALSE(phases.empty());
  for (const std::string& ph : phases) EXPECT_EQ(ph, "X");
  EXPECT_EQ(reader.objects_in_array("traceEvents"),
            static_cast<int>(phases.size()));
}

TEST_F(TraceTest, MetricsSinksCarryEveryCounter) {
  tr::set_enabled(true);
  tr::count(tr::Counter::CellsUpdated, 123);
  {
    tr::ScopedSpan span("phase", "compute");
  }
  tr::set_enabled(false);

  std::ostringstream csv;
  tr::write_metrics_csv(csv);
  const std::string csv_text = csv.str();
  for (int c = 0; c < tr::kNumCounters; ++c) {
    EXPECT_NE(csv_text.find(tr::to_string(static_cast<tr::Counter>(c))),
              std::string::npos);
  }
  EXPECT_NE(csv_text.find("counter,cells_updated,123"), std::string::npos);
  EXPECT_NE(csv_text.find("span_count,phase,1"), std::string::npos);

  std::ostringstream js;
  tr::write_metrics_json(js);
  JsonReader reader(js.str());
  EXPECT_TRUE(reader.parse()) << js.str();
}

TEST_F(TraceTest, SessionWritesBothSinksOnDestruction) {
  const std::string trace_path = ::testing::TempDir() + "trace_test_out.json";
  const std::string metrics_path = ::testing::TempDir() + "trace_test_out.csv";
  {
    tr::Session session(trace_path, metrics_path);
    tr::count(tr::Counter::CellsUpdated, 5);
    tr::ScopedSpan span("phase", "compute");
  }
  std::ifstream tf(trace_path);
  ASSERT_TRUE(tf.is_open());
  std::stringstream trace_text;
  trace_text << tf.rdbuf();
  JsonReader reader(trace_text.str());
  EXPECT_TRUE(reader.parse());

  std::ifstream mf(metrics_path);
  ASSERT_TRUE(mf.is_open());
  std::string metrics_text((std::istreambuf_iterator<char>(mf)),
                           std::istreambuf_iterator<char>());
  EXPECT_NE(metrics_text.find("cells_updated"), std::string::npos);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

// Overhead regression: disabled-mode instrumentation is one relaxed load +
// branch per call site. The bounds are deliberately generous (orders of
// magnitude above the expected cost) — they catch accidental heavy-weight
// regressions (a lock or an allocation on the disabled path), not cycle
// drift between CI machines.
TEST_F(TraceTest, DisabledModeOverheadIsBounded) {
  ASSERT_FALSE(tr::enabled());
  constexpr int kIters = 1'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    TEMPEST_TRACE_COUNT(CellsUpdated, i);
    TEMPEST_TRACE_SPAN("noop", "test");
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_EQ(tr::value(tr::Counter::CellsUpdated), 0);
  EXPECT_LT(ms, 1000.0) << "disabled-mode instrumentation cost exploded";
}

TEST_F(TraceTest, EnabledCounterOverheadIsBounded) {
  tr::set_enabled(true);
  constexpr int kIters = 1'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    TEMPEST_TRACE_COUNT(CellsUpdated, 1);
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_EQ(tr::value(tr::Counter::CellsUpdated), kIters);
  EXPECT_LT(ms, 2000.0) << "enabled-mode counter cost exploded";
}

#endif  // !defined(TEMPEST_TRACE_DISABLED)

#if !defined(TEMPEST_TRACE_DISABLED)
// --- Concurrent-span / thread-count invariance regression ----------------
//
// The task-parallel engine records counters and spans from short-lived
// worker threads (the pool backend spawns a fresh team per band). The trace
// layer must (a) never lose a retired worker's counts, and (b) produce a
// v1 metrics sink whose deterministic rows — counters and span counts —
// are byte-identical whether the instrumented region ran on 1 thread or an
// oversubscribed 8. span_ms rows are wall-clock and excluded by contract.

namespace {

/// The deterministic subset of the v1 CSV: `counter,...` and
/// `span_count,...` rows, in sink order.
std::string deterministic_rows(const std::string& csv) {
  std::istringstream is(csv);
  std::ostringstream out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("counter,", 0) == 0 || line.rfind("span_count,", 0) == 0) {
      out << line << '\n';
    }
  }
  return out.str();
}

/// An instrumented parallel workload: `threads` workers record spans and
/// counters through a 10-node staircase chain (i depends on i-1 and i-2,
/// the same two-predecessor shape the engine's tile graphs generate).
void traced_workload(int threads) {
  tempest::util::TaskDag dag(10);
  for (int i = 1; i < 10; ++i) dag.add_edge(i - 1, i);
  for (int i = 2; i < 10; ++i) dag.add_edge(i - 2, i);
  dag.run(threads, [](int node) {
    TEMPEST_TRACE_SPAN_ARG("worker.task", "test", node);
    TEMPEST_TRACE_COUNT(CellsUpdated, 100 + node);
    TEMPEST_TRACE_COUNT(BlocksExecuted, 2);
  });
}

std::string metrics_csv_of_workload(int threads) {
  tr::reset();
  tr::set_enabled(true);
  traced_workload(threads);
  std::ostringstream os;
  tr::write_metrics_csv(os);
  tr::set_enabled(false);
  return os.str();
}

}  // namespace

TEST_F(TraceTest, CountersSurviveWorkerThreadExit) {
  tr::set_enabled(true);
  // Pool workers are joined before run() returns; their thread_local
  // buffers may be destroyed any time after. Totals must include them.
  tempest::util::TaskDag dag(16);
  dag.run(/*threads=*/4, [](int) { TEMPEST_TRACE_COUNT(CellsUpdated, 5); });
  EXPECT_EQ(tr::value(tr::Counter::CellsUpdated), 16 * 5);
  // A second team after the first one's threads retired must still add up.
  dag.run(/*threads=*/4, [](int) { TEMPEST_TRACE_COUNT(CellsUpdated, 5); });
  EXPECT_EQ(tr::value(tr::Counter::CellsUpdated), 2 * 16 * 5);
}

TEST_F(TraceTest, SpansSurviveWorkerThreadExit) {
  tr::set_enabled(true);
  traced_workload(/*threads=*/8);
  EXPECT_EQ(tr::events().size(), 10u)
      << "spans recorded on exited pool threads were dropped";
}

TEST_F(TraceTest, MetricsV1RowsAreThreadCountInvariant) {
  const std::string serial = metrics_csv_of_workload(/*threads=*/1);
  const std::string parallel = metrics_csv_of_workload(/*threads=*/8);
  EXPECT_EQ(deterministic_rows(serial), deterministic_rows(parallel));
  // And not vacuously: the workload must actually have produced rows.
  // 10 tasks, each adding 100 + node: 10 * 100 + (0 + 1 + ... + 9) = 1045.
  EXPECT_NE(deterministic_rows(serial).find("counter,cells_updated,1045"),
            std::string::npos);
  EXPECT_NE(deterministic_rows(serial).find("span_count,worker.task,10"),
            std::string::npos);
}
#endif  // !defined(TEMPEST_TRACE_DISABLED)

// --- Event tap -------------------------------------------------------------
//
// The tap is the wiring between the trace layer and the obs flight
// recorder: span enter/exit and counter deltas flow through the installed
// callbacks, whether or not the in-memory trace runtime is enabled.

namespace {

struct TapLog {
  std::vector<std::string> calls;
  std::int64_t last_arg = 0;
  long long counter_total = 0;
};

/// The tap callbacks cannot capture, so the log lives behind a function
/// static (reset per test).
TapLog* tap_log() {
  static TapLog log;
  return &log;
}

TapLog& reset_tap_log() {
  TapLog* log = tap_log();
  *log = TapLog{};
  return *log;
}

const tr::EventTap kTestTap{
    nullptr,
    [](void*, const char* name, const char*, std::int64_t arg, bool has) {
      TapLog* log = tap_log();
      log->calls.push_back(std::string("enter:") + name);
      if (has) log->last_arg = arg;
    },
    [](void*, const char* name, std::int64_t, std::int64_t dur_ns) {
      TapLog* log = tap_log();
      log->calls.push_back(std::string("exit:") + name);
      EXPECT_GE(dur_ns, 0);
    },
    [](void*, tr::Counter, long long delta) {
      tap_log()->counter_total += delta;
    }};

}  // namespace

TEST_F(TraceTest, EventTapSeesSpansAndCountersWhileTraceDisabled) {
  TapLog& log = reset_tap_log();
  ASSERT_FALSE(tr::enabled());
  tr::set_event_tap(&kTestTap);
  EXPECT_EQ(tr::event_tap(), &kTestTap);
  {
    tr::ScopedSpan span("tap.span", "test", 11);
    tr::count(tr::Counter::CellsUpdated, 7);
  }
  tr::set_event_tap(nullptr);
  EXPECT_EQ(tr::event_tap(), nullptr);

  ASSERT_EQ(log.calls.size(), 2u);
  EXPECT_EQ(log.calls[0], "enter:tap.span");
  EXPECT_EQ(log.calls[1], "exit:tap.span");
  EXPECT_EQ(log.last_arg, 11);
  EXPECT_EQ(log.counter_total, 7);
  // With a tap installed, counter totals accumulate even while the trace
  // runtime is off — the exported totals must be real.
  EXPECT_EQ(tr::value(tr::Counter::CellsUpdated), 7);
  // The in-memory event buffer stays untouched (trace was disabled).
  EXPECT_TRUE(tr::events().empty());
}

TEST_F(TraceTest, EventTapAndTraceRuntimeComposeWhenBothEnabled) {
  TapLog& log = reset_tap_log();
  tr::set_enabled(true);
  tr::set_event_tap(&kTestTap);
  {
    tr::ScopedSpan span("both.span", "test");
  }
  tr::set_event_tap(nullptr);
  EXPECT_EQ(log.calls.size(), 2u);
  EXPECT_EQ(tr::events().size(), 1u);
}

TEST_F(TraceTest, UninstalledTapCostsNothingSemantically) {
  reset_tap_log();
  ASSERT_EQ(tr::event_tap(), nullptr);
  ASSERT_FALSE(tr::enabled());
  tr::count(tr::Counter::CellsUpdated, 99);
  {
    tr::ScopedSpan span("no.tap", "test");
  }
  EXPECT_EQ(tr::value(tr::Counter::CellsUpdated), 0);
  EXPECT_TRUE(tap_log()->calls.empty());
}

// --- Crash flush -----------------------------------------------------------
//
// A Session must leave parseable sinks behind even when the process dies
// abnormally: the fatal-signal hook flushes before the default disposition
// re-raises. The regression forks a child that SIGABRTs itself inside an
// armed Session and asserts the parent can load the trace it left behind.

#if (defined(__unix__) || defined(__APPLE__)) && \
    !defined(TEMPEST_TRACE_DISABLED)
TEST_F(TraceTest, CrashedSessionLeavesParseableTraceBehind) {
  const std::string trace_path =
      ::testing::TempDir() + "trace_crash_out.json";
  const std::string metrics_path =
      ::testing::TempDir() + "trace_crash_out.csv";
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die by SIGABRT mid-span, the way a TEMPEST_REQUIRE failure or
    // a libc abort would. No explicit flush — the hooks must do it.
    tr::Session session(trace_path, metrics_path);
    tr::count(tr::Counter::CellsUpdated, 21);
    tr::ScopedSpan span("doomed.phase", "test");
    std::abort();
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  std::ifstream tf(trace_path);
  ASSERT_TRUE(tf.is_open()) << "crashed session left no trace file";
  std::string text((std::istreambuf_iterator<char>(tf)),
                   std::istreambuf_iterator<char>());
  JsonReader reader(text);
  EXPECT_TRUE(reader.parse()) << "crash-flushed trace is not valid JSON:\n"
                              << text.substr(0, 400);

  std::ifstream mf(metrics_path);
  ASSERT_TRUE(mf.is_open()) << "crashed session left no metrics file";
  std::string metrics((std::istreambuf_iterator<char>(mf)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(metrics.find("counter,cells_updated,21"), std::string::npos);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST_F(TraceTest, CrashFlushNowIsIdempotentAndDisarmsWithSession) {
  const std::string trace_path =
      ::testing::TempDir() + "trace_flushnow_out.json";
  {
    tr::Session session(trace_path, "");
    tr::count(tr::Counter::CellsUpdated, 5);
    tr::crash_flush_now();  // first call writes...
    tr::crash_flush_now();  // ...second is a no-op
    std::ifstream tf(trace_path);
    ASSERT_TRUE(tf.is_open());
  }
  // The destructor saw the sinks already written and must not re-arm:
  // another flush after the Session is gone writes nothing new.
  std::remove(trace_path.c_str());
  tr::crash_flush_now();
  std::ifstream tf(trace_path);
  EXPECT_FALSE(tf.is_open());
}
#endif  // unix && !TEMPEST_TRACE_DISABLED
