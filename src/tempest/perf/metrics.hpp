#pragma once

#include <string>

namespace tempest::perf {

/// Analytic per-grid-point flop counts for the three wave kernels, used for
/// arithmetic-intensity and roofline reporting (paper Fig. 11). Counts
/// follow the generated inner loops; a fused multiply-add is 2 flops, a
/// division 1.
///
/// Acoustic (radius R = so/2):
///   laplacian: 3 dims x R taps, each tap = 5 adds (6-term gather) + FMA
///              folded as: per k, 5 adds + 1 mul + 1 add = 7 -> 7R,
///              + centre 2 (3*w0*u) + 1 scale mul
///   update:    m*idt2*(2u - up): 4; + damp*i2dt*up: 3; + lap add: 1;
///              denominator: 3; division: 1  => 12
[[nodiscard]] constexpr double acoustic_flops_per_point(int space_order) {
  const int r = space_order / 2;
  return 7.0 * r + 3.0 + 12.0;
}

/// TTI: two rotated-derivative gathers (p and q), each
///   pure second derivatives: 3 dims x (per k: 1 add + FMA = 3) + centre 2
///   mixed derivatives: R^2 (a,b) pairs x (1 weight product + 3 planes x
///                      (3 adds + 1 mul + 1 accumulate)) = 16 R^2
///   Hz combination: 6 mul + 5 add + 2 (the 2*(cxy...)) = 13; lap: 2 adds
/// plus the coupled update (2 fields x ~14 incl. division) and Hperp/scale.
[[nodiscard]] constexpr double tti_flops_per_point(int space_order) {
  const int r = space_order / 2;
  const double gather = 3.0 * (3.0 * r) + 2.0 + 16.0 * r * r + 13.0 + 2.0;
  return 2.0 * gather + 2.0 * 14.0 + 6.0;
}

/// Elastic (both half-updates, per full timestep):
///   v: 9 staggered derivatives x R taps x (2 adds + FMA ~ 3) + 3 updates x 5
///   tau: 9 derivatives x 3R + 6 updates x ~6
[[nodiscard]] constexpr double elastic_flops_per_point(int space_order) {
  const int r = space_order / 2;
  return 9.0 * 3.0 * r + 15.0 + 9.0 * 3.0 * r + 36.0;
}

/// Minimum per-point DRAM traffic (bytes) of a perfectly cached sweep:
/// every live field streamed once per timestep. Used as the AI denominator
/// for the *ideal* roofline position; the cache simulator provides the
/// measured one.
[[nodiscard]] constexpr double acoustic_stream_bytes_per_point() {
  // read u(t), u(t-1), m, damp; write u(t+1): 5 x 4 bytes.
  return 5.0 * 4.0;
}
[[nodiscard]] constexpr double tti_stream_bytes_per_point() {
  // read p,q (x2 time levels), m, damp, 6 dyad fields, ah, an; write p,q.
  return (4.0 + 2.0 + 8.0 + 2.0) * 4.0;
}
[[nodiscard]] constexpr double elastic_stream_bytes_per_point() {
  // 9 wavefields read+written, lam, mu, b, damp read.
  return (9.0 * 2.0 + 4.0) * 4.0;
}

/// Throughput in giga grid-points per second.
[[nodiscard]] constexpr double gpoints_per_s(long long points,
                                             double seconds) {
  return seconds > 0.0 ? static_cast<double>(points) / seconds / 1e9 : 0.0;
}

/// GFLOP/s given a per-point flop model.
[[nodiscard]] constexpr double gflops(long long points, double flops_pp,
                                      double seconds) {
  return seconds > 0.0
             ? static_cast<double>(points) * flops_pp / seconds / 1e9
             : 0.0;
}

/// Kernel name -> flops/point helper used by the bench harnesses.
[[nodiscard]] double flops_per_point(const std::string& kernel,
                                     int space_order);

}  // namespace tempest::perf
