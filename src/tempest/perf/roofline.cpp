#include "tempest/perf/roofline.hpp"

#include <algorithm>
#include <iomanip>

#include "tempest/perf/metrics.hpp"
#include "tempest/util/error.hpp"

namespace tempest::perf {

double flops_per_point(const std::string& kernel, int space_order) {
  if (kernel == "acoustic") return acoustic_flops_per_point(space_order);
  if (kernel == "tti") return tti_flops_per_point(space_order);
  if (kernel == "elastic") return elastic_flops_per_point(space_order);
  TEMPEST_REQUIRE_MSG(false, "unknown kernel name: " + kernel);
  return 0.0;
}

namespace {
double attainable(double peak, double bw, double ai) {
  return std::min(peak, bw * ai);
}
}  // namespace

double Roofline::attainable_dram(double ai) const {
  return attainable(m_.peak_gflops, m_.dram_gbps, ai);
}
double Roofline::attainable_l3(double ai) const {
  return attainable(m_.peak_gflops, m_.l3_gbps, ai);
}
double Roofline::attainable_l2(double ai) const {
  return attainable(m_.peak_gflops, m_.l2_gbps, ai);
}
double Roofline::attainable_l1(double ai) const {
  return attainable(m_.peak_gflops, m_.l1_gbps, ai);
}

double Roofline::dram_ridge() const {
  TEMPEST_REQUIRE(m_.dram_gbps > 0.0);
  return m_.peak_gflops / m_.dram_gbps;
}

void Roofline::print(std::ostream& os) const {
  os << std::fixed << std::setprecision(2);
  os << "machine ceilings:\n"
     << "  peak   " << m_.peak_gflops << " GFLOP/s\n"
     << "  L1     " << m_.l1_gbps << " GB/s\n"
     << "  L2     " << m_.l2_gbps << " GB/s\n"
     << "  L3     " << m_.l3_gbps << " GB/s\n"
     << "  DRAM   " << m_.dram_gbps << " GB/s   (ridge at AI "
     << dram_ridge() << ")\n";
  if (points_.empty()) return;
  os << "kernel points (AI = flops per byte of DRAM traffic):\n";
  for (const RooflinePoint& p : points_) {
    const double roof = attainable_dram(p.ai);
    os << "  " << std::left << std::setw(28) << p.name << " AI="
       << std::setw(8) << p.ai << " achieved=" << std::setw(9) << p.gflops
       << " GFLOP/s, DRAM roof=" << std::setw(9) << roof << " ("
       << std::setprecision(1) << (roof > 0 ? 100.0 * p.gflops / roof : 0.0)
       << "% of roof)" << std::setprecision(2) << "\n";
  }
}

}  // namespace tempest::perf
