#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace tempest::perf::pmu {

/// Zero-dependency Linux `perf_event_open` backend: the measured
/// counterpart of the modelled quantities elsewhere in `perf/` (flop
/// formulas, cache-simulator traffic, calibration ceilings). The paper's
/// evaluation reads GFLOP/s and per-level memory traffic off hardware
/// counters (Intel Advisor); this module is that substitution.
///
/// Design rules:
///   * graceful, observable degradation — on kernels or containers where
///     `perf_event_open` is denied (EACCES under perf_event_paranoid),
///     absent (ENOSYS), or has no PMU behind it (ENOENT/ENODEV on most
///     VMs), the subsystem logs `unavailable(<event>: <errno>)` exactly
///     once and every region yields zeroed samples whose `valid_mask`
///     says so. Never a crash, never silent garbage;
///   * per-event availability — a machine without a hardware PMU still
///     serves the software events (task-clock, page-faults), so samples
///     carry a validity bit per event rather than one global flag;
///   * multiplex correctness — more events than hardware counters makes
///     the kernel time-slice them; reads are scaled by
///     time_enabled/time_running so deltas stay unbiased.
///
/// Counters are opened per *scope*: `Scope::Thread` counts the calling
/// thread only (what the trace-span enrichment uses, one group per
/// thread), `Scope::Process` additionally inherits into threads spawned
/// after the open (open it before the OpenMP pool comes up and a whole
/// parallel run is counted).

/// The counter set. Hardware events mirror the quantities the paper's
/// figures rest on (cycles/instructions for GFLOP/s context, cache
/// loads+misses for per-level traffic); the software events always exist
/// on Linux and keep the subsystem useful on PMU-less machines.
enum class Event : int {
  Cycles = 0,      ///< PERF_COUNT_HW_CPU_CYCLES
  Instructions,    ///< PERF_COUNT_HW_INSTRUCTIONS
  StalledCycles,   ///< PERF_COUNT_HW_STALLED_CYCLES_BACKEND
  L1dLoads,        ///< HW_CACHE L1D read accesses
  L1dMisses,       ///< HW_CACHE L1D read misses
  LlcLoads,        ///< HW_CACHE LL read accesses
  LlcMisses,       ///< HW_CACHE LL read misses (the DRAM-traffic proxy)
  TaskClock,       ///< PERF_COUNT_SW_TASK_CLOCK (ns, software)
  PageFaults,      ///< PERF_COUNT_SW_PAGE_FAULTS (software)
};
inline constexpr int kNumEvents = 9;

[[nodiscard]] const char* to_string(Event e);
[[nodiscard]] constexpr bool is_software(Event e) {
  return e == Event::TaskClock || e == Event::PageFaults;
}

/// One reading (or delta) of the event set. `valid_mask` bit i is set iff
/// event i was actually measured; unmeasured slots are zero. Consumers
/// must check validity before deriving rates — a zero LlcMisses on a
/// PMU-less VM means "unknown", not "perfect cache".
struct Sample {
  std::array<long long, kNumEvents> value{};
  std::uint32_t valid_mask = 0;

  [[nodiscard]] bool valid(Event e) const {
    return (valid_mask >> static_cast<int>(e)) & 1u;
  }
  [[nodiscard]] long long operator[](Event e) const {
    return value[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] bool any() const { return valid_mask != 0; }
  [[nodiscard]] bool hardware() const {
    constexpr std::uint32_t sw_mask =
        (1u << static_cast<int>(Event::TaskClock)) |
        (1u << static_cast<int>(Event::PageFaults));
    return (valid_mask & ~sw_mask) != 0;
  }

  /// Instructions per cycle; 0 when either event is unmeasured.
  [[nodiscard]] double ipc() const;
  /// L1d / LLC read miss ratios; 0 when unmeasured.
  [[nodiscard]] double l1d_miss_ratio() const;
  [[nodiscard]] double llc_miss_ratio() const;
  /// Measured line traffic at a hierarchy boundary: misses x line size.
  /// l2_bytes approximates L1<->L2 fill traffic, dram_bytes the LLC<->DRAM
  /// fill traffic (write-backs are not counted: a known, documented
  /// undercount the validation tolerances absorb).
  [[nodiscard]] double l2_bytes(int line_bytes = 64) const;
  [[nodiscard]] double dram_bytes(int line_bytes = 64) const;
};

/// Per-event difference a - b; the result is valid where both inputs are.
[[nodiscard]] Sample operator-(const Sample& a, const Sample& b);

/// Whether this process can open counters at all, probed once and cached.
struct Availability {
  bool any = false;       ///< at least one event (incl. software) opens
  bool hardware = false;  ///< at least one hardware event opens
  std::string reason;     ///< first failure, e.g. "cycles: ENOENT (...)";
                          ///< empty when every event opened
};

/// Probe result for this process. The first call probes (and logs a
/// one-line warning if degraded); later calls return the cached answer.
[[nodiscard]] const Availability& availability();

enum class Scope {
  Thread,   ///< count the calling thread only
  Process,  ///< + inherit into threads spawned after the open
};

/// A set of opened counter fds. Events that fail to open are simply
/// absent from `open_mask()`; a group where nothing opened is inert and
/// read() returns an all-invalid Sample.
class CounterGroup {
 public:
  explicit CounterGroup(Scope scope = Scope::Thread);
  ~CounterGroup();
  CounterGroup(const CounterGroup&) = delete;
  CounterGroup& operator=(const CounterGroup&) = delete;
  CounterGroup(CounterGroup&& other) noexcept;
  CounterGroup& operator=(CounterGroup&& other) noexcept;

  [[nodiscard]] std::uint32_t open_mask() const { return open_mask_; }
  [[nodiscard]] bool any_open() const { return open_mask_ != 0; }

  /// Cumulative multiplex-scaled counts since the group opened.
  /// Monotonically non-decreasing per valid event.
  [[nodiscard]] Sample read() const;

 private:
  void close_all();

  std::array<int, kNumEvents> fd_{};
  std::uint32_t open_mask_ = 0;
};

/// The calling thread's cached Scope::Thread group (opened lazily on
/// first use; reopened after reset_for_testing()).
[[nodiscard]] const CounterGroup& thread_group();

/// RAII measurement region: snapshots the group at construction,
/// `delta()` returns counts accrued since then. Usable standalone around
/// any code region; nests freely (inner regions simply observe a
/// sub-window of the same monotonic counters).
class PmuRegion {
 public:
  /// Measure on the calling thread's cached group.
  PmuRegion() : PmuRegion(thread_group()) {}
  /// Measure on an explicit group (e.g. a Scope::Process group).
  explicit PmuRegion(const CounterGroup& group)
      : group_(&group), start_(group.read()) {}

  [[nodiscard]] Sample delta() const { return group_->read() - start_; }

 private:
  const CounterGroup* group_;
  Sample start_;
};

/// Opt-in trace::Span enrichment: installs a sampler so every recorded
/// span carries the per-thread counter deltas of its interval into the
/// Chrome-trace and metrics sinks (schema v2). Call from serial code.
void enable_span_enrichment();
void disable_span_enrichment();
[[nodiscard]] bool span_enrichment_enabled();

/// --- test shims -----------------------------------------------------
/// Replacement for the raw perf_event_open syscall; `attr` points at a
/// struct perf_event_attr. Return the fd, or -1 with errno set. Pass
/// nullptr to restore the real syscall. Tests use this to simulate
/// EACCES/ENOSYS without touching kernel state.
using OpenHook = long (*)(void* attr, int pid, int cpu, int group_fd,
                          unsigned long flags);
void set_open_hook_for_testing(OpenHook hook);

/// Drop the cached availability probe and every thread's cached group so
/// the next use re-probes (tests flip hooks between scenarios).
void reset_for_testing();

}  // namespace tempest::perf::pmu
