#include "tempest/perf/report.hpp"

#include <cmath>
#include <utility>

namespace tempest::perf {

DerivedRates derive_rates(long long point_updates, double flops_per_point,
                          double seconds, const pmu::Sample& sample) {
  DerivedRates r;
  r.seconds = seconds;
  if (seconds <= 0.0) return r;
  const double flops = static_cast<double>(point_updates) * flops_per_point;
  r.model_gflops = flops / seconds / 1e9;
  r.ipc = sample.ipc();
  const double dram = sample.dram_bytes();
  const double l2 = sample.l2_bytes();
  if (sample.valid(pmu::Event::LlcMisses)) {
    r.measured_dram_gbps = dram / seconds / 1e9;
    if (dram > 0.0) r.measured_ai = flops / dram;
    r.pmu_hardware = true;
  }
  if (sample.valid(pmu::Event::L1dMisses)) {
    r.measured_l2_gbps = l2 / seconds / 1e9;
    r.pmu_hardware = true;
  }
  return r;
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Pass: return "pass";
    case Verdict::Warn: return "warn";
    case Verdict::Fail: return "fail";
    case Verdict::Unavailable: return "unavailable";
  }
  return "?";
}

TrafficValidation validate_traffic(std::string name, double predicted_bytes,
                                   double measured_bytes, bool measured_valid,
                                   double warn_ratio, double fail_ratio) {
  TrafficValidation v;
  v.name = std::move(name);
  v.predicted_bytes = predicted_bytes;
  v.measured_bytes = measured_bytes;
  v.warn_ratio = warn_ratio;
  v.fail_ratio = fail_ratio;
  if (!measured_valid) {
    v.verdict = Verdict::Unavailable;
    return v;
  }
  v.ratio = predicted_bytes > 0.0 ? measured_bytes / predicted_bytes : 0.0;
  if (v.ratio <= 0.0) {
    // A valid PMU that measured zero traffic against a non-zero model is
    // a disagreement, not a skip.
    v.verdict = predicted_bytes > 0.0 ? Verdict::Fail : Verdict::Pass;
    return v;
  }
  // Symmetric in direction: 4x too much and 4x too little are equally off.
  const double folded = v.ratio >= 1.0 ? v.ratio : 1.0 / v.ratio;
  if (folded <= warn_ratio) {
    v.verdict = Verdict::Pass;
  } else if (folded <= fail_ratio) {
    v.verdict = Verdict::Warn;
  } else {
    v.verdict = Verdict::Fail;
  }
  return v;
}

}  // namespace tempest::perf
