#include "tempest/perf/pmu.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>

#include "tempest/util/log.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#define TEMPEST_PMU_LINUX 1
#endif

#include "tempest/trace/trace.hpp"

namespace tempest::perf::pmu {

namespace {

std::atomic<OpenHook> g_open_hook{nullptr};

/// Bumped by reset_for_testing(); thread-local caches compare against it.
std::atomic<std::uint64_t> g_generation{0};

const char* errno_name(int e) {
  switch (e) {
    case EACCES: return "EACCES";
    case EPERM: return "EPERM";
    case ENOSYS: return "ENOSYS";
    case ENOENT: return "ENOENT";
    case ENODEV: return "ENODEV";
    case EINVAL: return "EINVAL";
    case EMFILE: return "EMFILE";
    case EBUSY: return "EBUSY";
    default: return "errno";
  }
}

std::string describe_errno(int e) {
  return std::string(errno_name(e)) + " (" + std::strerror(e) + ")";
}

#if defined(TEMPEST_PMU_LINUX)

long open_event_fd(perf_event_attr* attr, int pid, int cpu, int group_fd,
                   unsigned long flags) {
  if (const OpenHook hook = g_open_hook.load(std::memory_order_acquire)) {
    return hook(attr, pid, cpu, group_fd, flags);
  }
  return syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

EventSpec event_spec(Event e) {
  constexpr std::uint64_t l1d_read_access =
      PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
      (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
  constexpr std::uint64_t l1d_read_miss =
      PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
      (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
  constexpr std::uint64_t ll_read_access =
      PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
      (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
  constexpr std::uint64_t ll_read_miss =
      PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
      (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
  switch (e) {
    case Event::Cycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case Event::Instructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case Event::StalledCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND};
    case Event::L1dLoads: return {PERF_TYPE_HW_CACHE, l1d_read_access};
    case Event::L1dMisses: return {PERF_TYPE_HW_CACHE, l1d_read_miss};
    case Event::LlcLoads: return {PERF_TYPE_HW_CACHE, ll_read_access};
    case Event::LlcMisses: return {PERF_TYPE_HW_CACHE, ll_read_miss};
    case Event::TaskClock:
      return {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK};
    case Event::PageFaults:
      return {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS};
  }
  return {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_DUMMY};
}

/// Open one counting fd for `e`, or -1 with errno preserved. Kernel and
/// hypervisor cycles are excluded so the open succeeds at
/// perf_event_paranoid <= 2 without privileges.
int open_one(Event e, Scope scope) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  const EventSpec spec = event_spec(e);
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = scope == Scope::Process ? 1 : 0;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = open_event_fd(&attr, /*pid=*/0, /*cpu=*/-1,
                                /*group_fd=*/-1, /*flags=*/0);
  return static_cast<int>(fd);
}

#else  // !TEMPEST_PMU_LINUX

int open_one(Event, Scope) {
  errno = ENOSYS;
  return -1;
}

#endif

struct ProbeCache {
  std::mutex mu;
  std::optional<Availability> cached;
  std::uint64_t generation = 0;
  bool warned = false;
};

ProbeCache& probe_cache() {
  static ProbeCache c;
  return c;
}

Availability probe() {
  Availability a;
  for (int i = 0; i < kNumEvents; ++i) {
    const Event e = static_cast<Event>(i);
    errno = 0;
    const int fd = open_one(e, Scope::Thread);
    if (fd >= 0) {
      a.any = true;
      if (!is_software(e)) a.hardware = true;
#if defined(TEMPEST_PMU_LINUX)
      close(fd);
#endif
    } else if (a.reason.empty()) {
      a.reason = std::string(to_string(e)) + ": " + describe_errno(errno);
    }
  }
  return a;
}

}  // namespace

const char* to_string(Event e) {
  switch (e) {
    case Event::Cycles: return "cycles";
    case Event::Instructions: return "instructions";
    case Event::StalledCycles: return "stalled_cycles";
    case Event::L1dLoads: return "l1d_loads";
    case Event::L1dMisses: return "l1d_misses";
    case Event::LlcLoads: return "llc_loads";
    case Event::LlcMisses: return "llc_misses";
    case Event::TaskClock: return "task_clock_ns";
    case Event::PageFaults: return "page_faults";
  }
  return "?";
}

double Sample::ipc() const {
  if (!valid(Event::Instructions) || !valid(Event::Cycles)) return 0.0;
  const long long cycles = (*this)[Event::Cycles];
  return cycles > 0
             ? static_cast<double>((*this)[Event::Instructions]) /
                   static_cast<double>(cycles)
             : 0.0;
}

double Sample::l1d_miss_ratio() const {
  if (!valid(Event::L1dLoads) || !valid(Event::L1dMisses)) return 0.0;
  const long long loads = (*this)[Event::L1dLoads];
  return loads > 0 ? static_cast<double>((*this)[Event::L1dMisses]) /
                         static_cast<double>(loads)
                   : 0.0;
}

double Sample::llc_miss_ratio() const {
  if (!valid(Event::LlcLoads) || !valid(Event::LlcMisses)) return 0.0;
  const long long loads = (*this)[Event::LlcLoads];
  return loads > 0 ? static_cast<double>((*this)[Event::LlcMisses]) /
                         static_cast<double>(loads)
                   : 0.0;
}

double Sample::l2_bytes(int line_bytes) const {
  if (!valid(Event::L1dMisses)) return 0.0;
  return static_cast<double>((*this)[Event::L1dMisses]) * line_bytes;
}

double Sample::dram_bytes(int line_bytes) const {
  if (!valid(Event::LlcMisses)) return 0.0;
  return static_cast<double>((*this)[Event::LlcMisses]) * line_bytes;
}

Sample operator-(const Sample& a, const Sample& b) {
  Sample out;
  out.valid_mask = a.valid_mask & b.valid_mask;
  for (int i = 0; i < kNumEvents; ++i) {
    if ((out.valid_mask >> i) & 1u) {
      // Multiplex scaling can make estimates wobble by a count or two
      // between reads; clamp so deltas are never negative.
      out.value[static_cast<std::size_t>(i)] = std::max(
          0ll, a.value[static_cast<std::size_t>(i)] -
                   b.value[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

const Availability& availability() {
  ProbeCache& c = probe_cache();
  const std::lock_guard<std::mutex> lock(c.mu);
  const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (!c.cached || c.generation != gen) {
    c.cached = probe();
    c.generation = gen;
    if (!c.cached->hardware && !c.warned) {
      c.warned = true;
      util::warn(
          "pmu: hardware counters unavailable (" +
          (c.cached->reason.empty() ? std::string("no failure captured")
                                    : c.cached->reason) +
          "); " +
          (c.cached->any
               ? "falling back to software events (task-clock, page-faults)"
               : "all samples will be zeroed and flagged unavailable"));
    }
  }
  return *c.cached;
}

CounterGroup::CounterGroup(Scope scope) {
  fd_.fill(-1);
  // One probe (and at most one warning) per process before any group
  // floods the log with per-event failures.
  (void)availability();
  for (int i = 0; i < kNumEvents; ++i) {
    const int fd = open_one(static_cast<Event>(i), scope);
    if (fd >= 0) {
      fd_[static_cast<std::size_t>(i)] = fd;
      open_mask_ |= 1u << i;
    }
  }
}

CounterGroup::~CounterGroup() { close_all(); }

CounterGroup::CounterGroup(CounterGroup&& other) noexcept
    : fd_(other.fd_), open_mask_(other.open_mask_) {
  other.fd_.fill(-1);
  other.open_mask_ = 0;
}

CounterGroup& CounterGroup::operator=(CounterGroup&& other) noexcept {
  if (this != &other) {
    close_all();
    fd_ = other.fd_;
    open_mask_ = other.open_mask_;
    other.fd_.fill(-1);
    other.open_mask_ = 0;
  }
  return *this;
}

void CounterGroup::close_all() {
#if defined(TEMPEST_PMU_LINUX)
  for (int& fd : fd_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
#endif
  open_mask_ = 0;
}

Sample CounterGroup::read() const {
  Sample s;
#if defined(TEMPEST_PMU_LINUX)
  for (int i = 0; i < kNumEvents; ++i) {
    const int fd = fd_[static_cast<std::size_t>(i)];
    if (fd < 0) continue;
    // read_format = VALUE | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING.
    std::uint64_t buf[3] = {0, 0, 0};
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < static_cast<ssize_t>(sizeof(buf))) continue;
    double v = static_cast<double>(buf[0]);
    // Scale for multiplexing: the kernel ran this counter buf[2] of
    // buf[1] ns; extrapolate to the full enabled window.
    if (buf[2] > 0 && buf[2] < buf[1]) {
      v *= static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
    } else if (buf[2] == 0 && buf[1] > 0) {
      // Never scheduled: no information, leave the event invalid.
      continue;
    }
    s.value[static_cast<std::size_t>(i)] = static_cast<long long>(v);
    s.valid_mask |= 1u << i;
  }
#endif
  return s;
}

const CounterGroup& thread_group() {
  thread_local std::unique_ptr<CounterGroup> group;
  thread_local std::uint64_t gen = ~std::uint64_t{0};
  const std::uint64_t want = g_generation.load(std::memory_order_acquire);
  if (!group || gen != want) {
    group = std::make_unique<CounterGroup>(Scope::Thread);
    gen = want;
  }
  return *group;
}

namespace {

/// trace::SpanEnricher sampler: cumulative per-thread counter values in
/// Event order. Runs on the span's thread, so the thread-local group is
/// the right scope.
void sample_for_trace(std::int64_t out[]) {
  const Sample s = thread_group().read();
  for (int i = 0; i < kNumEvents; ++i) {
    out[i] = s.valid(static_cast<Event>(i))
                 ? s.value[static_cast<std::size_t>(i)]
                 : 0;
  }
}

const char* const kSlotNames[kNumEvents] = {
    "cycles",      "instructions", "stalled_cycles",
    "l1d_loads",   "l1d_misses",   "llc_loads",
    "llc_misses",  "task_clock_ns", "page_faults",
};

const trace::SpanEnricher kEnricher{kNumEvents, kSlotNames,
                                    &sample_for_trace};

std::atomic<bool> g_enrich{false};

}  // namespace

void enable_span_enrichment() {
  trace::set_span_enricher(&kEnricher);
  g_enrich.store(true, std::memory_order_release);
}

void disable_span_enrichment() {
  trace::set_span_enricher(nullptr);
  g_enrich.store(false, std::memory_order_release);
}

bool span_enrichment_enabled() {
  return g_enrich.load(std::memory_order_acquire);
}

void set_open_hook_for_testing(OpenHook hook) {
  g_open_hook.store(hook, std::memory_order_release);
}

void reset_for_testing() {
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  ProbeCache& c = probe_cache();
  const std::lock_guard<std::mutex> lock(c.mu);
  c.cached.reset();
  c.warned = false;
}

}  // namespace tempest::perf::pmu
