#pragma once

#include <string>

#include "tempest/perf/pmu.hpp"

namespace tempest::perf {

/// Derived performance quantities for one measured kernel run, combining
/// the three measurement sources this repo has:
///   * exact work accounting (trace counters / RunStats point updates)
///     x the analytic per-point flop formulas in perf/metrics.hpp
///     -> model GFLOP/s (the paper's Fig. 9/11 y-axis);
///   * wall-clock seconds;
///   * PMU samples -> measured bandwidth, measured arithmetic intensity,
///     IPC. Fields stay zero (and pmu_hardware false) when the hardware
///     PMU is unavailable, so consumers can always print them and readers
///     can always tell modelled from measured.
struct DerivedRates {
  double seconds = 0.0;
  double model_gflops = 0.0;        ///< points x flops_pp / seconds
  double measured_dram_gbps = 0.0;  ///< LLC-miss line traffic / seconds
  double measured_l2_gbps = 0.0;    ///< L1d-miss line traffic / seconds
  double measured_ai = 0.0;         ///< model flops / measured DRAM bytes
  double ipc = 0.0;
  bool pmu_hardware = false;  ///< the measured_* fields are real
};

[[nodiscard]] DerivedRates derive_rates(long long point_updates,
                                        double flops_per_point,
                                        double seconds,
                                        const pmu::Sample& sample);

/// Verdict of one model-vs-measured comparison.
enum class Verdict {
  Pass,         ///< measured within the expected band of the model
  Warn,         ///< off by more than warn_ratio but plausibly explainable
  Fail,         ///< model and machine disagree; one of them is wrong
  Unavailable,  ///< no hardware PMU: nothing to compare against
};
[[nodiscard]] const char* to_string(Verdict v);

/// One cache-model validation: the cachesim-predicted byte traffic at a
/// hierarchy boundary vs the PMU-measured miss x line-size traffic over
/// the same work. This is the check the paper performs implicitly by
/// *measuring* Fig. 11's traffic instead of simulating it — here both
/// exist, so they can be held against each other.
///
/// Tolerances are deliberately loose ratios: the simulator replays a
/// single-thread LRU idealisation (no prefetcher, no write-back counts,
/// no speculative fills), so factor-level agreement is the realistic
/// target and an order-of-magnitude gap is the genuine red flag.
struct TrafficValidation {
  std::string name;             ///< e.g. "acoustic-so4-wtb/dram"
  double predicted_bytes = 0.0;
  double measured_bytes = 0.0;
  double ratio = 0.0;           ///< measured / predicted
  double warn_ratio = 2.0;      ///< |log-ratio| beyond this: Warn
  double fail_ratio = 8.0;      ///< beyond this: Fail
  Verdict verdict = Verdict::Unavailable;
};

/// Compare predicted vs measured traffic. `measured_valid` is false when
/// the PMU could not supply the measurement (verdict Unavailable).
[[nodiscard]] TrafficValidation validate_traffic(std::string name,
                                                 double predicted_bytes,
                                                 double measured_bytes,
                                                 bool measured_valid,
                                                 double warn_ratio = 2.0,
                                                 double fail_ratio = 8.0);

}  // namespace tempest::perf
