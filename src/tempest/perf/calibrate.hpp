#pragma once

#include <cstddef>
#include <string>

namespace tempest::perf {

/// Measured machine ceilings for the roofline model. The paper reads these
/// off Intel Advisor's calibration; we measure them directly with
/// microkernels (a STREAM-triad sweep per cache level and an FMA-saturation
/// loop), which is the substitution documented in DESIGN.md.
struct MachineCeilings {
  double peak_gflops = 0.0;  ///< single-precision FMA peak (all threads)
  double l1_gbps = 0.0;      ///< triad bandwidth, working set < L1
  double l2_gbps = 0.0;      ///< working set < L2
  double l3_gbps = 0.0;      ///< working set < L3
  double dram_gbps = 0.0;    ///< working set >> L3
};

/// Run the calibration microkernels. `quick` shortens the sampling for use
/// in tests (less accurate, still ordered sanely).
[[nodiscard]] MachineCeilings calibrate(bool quick = false);

/// STREAM-style triad bandwidth (GB/s) for a working set of `bytes`.
[[nodiscard]] double triad_bandwidth_gbps(std::size_t bytes,
                                          int repetitions);

/// Single-precision FMA throughput (GFLOP/s).
[[nodiscard]] double fma_peak_gflops(int repetitions);

/// Stable identifier of the machine the ceilings were measured on: CPU
/// model string, logical CPU count, and the OpenMP thread budget (thread
/// count changes the triad/FMA ceilings, so it keys the cache too).
[[nodiscard]] std::string host_fingerprint();

/// Cached calibration: reuse the ceilings persisted at `path` when they
/// were measured on this host (fingerprint match) at sufficient quality
/// (a full calibration serves quick requests, never the reverse);
/// otherwise run calibrate() and persist the result. `force` always
/// recalibrates (the bench drivers' --recalibrate flag). A stale,
/// corrupt, or unwritable cache file degrades to calibrating in-process —
/// the cache is an optimisation, never a failure source.
[[nodiscard]] MachineCeilings load_or_calibrate(
    bool quick = false, bool force = false,
    const std::string& path = ".tempest_ceilings.json");

}  // namespace tempest::perf
