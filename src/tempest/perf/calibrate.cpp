#include "tempest/perf/calibrate.hpp"

#include <algorithm>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tempest/util/align.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/timer.hpp"

namespace tempest::perf {

double triad_bandwidth_gbps(std::size_t bytes, int repetitions) {
  TEMPEST_REQUIRE(bytes >= 3 * 64 && repetitions > 0);
  const std::size_t n = bytes / (3 * sizeof(float));
  util::aligned_vector<float> a(n, 0.0f), b(n, 1.0f), c(n, 2.0f);
  const float s = 3.0f;

  // Small working sets finish one pass below timer resolution: batch enough
  // passes that each sample spans at least ~10 ms of work.
  const std::size_t batch = std::max<std::size_t>(
      1, (64ull * 1024 * 1024) / std::max<std::size_t>(bytes, 1));

  auto pass = [&] {
    float* __restrict pa = a.data();
    const float* __restrict pb = b.data();
    const float* __restrict pc = c.data();
#pragma omp parallel for simd schedule(static)
    for (std::size_t i = 0; i < n; ++i) pa[i] = pb[i] + s * pc[i];
  };

  pass();  // warm up (faults pages, loads caches)
  double best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    util::Timer t;
    for (std::size_t k = 0; k < batch; ++k) pass();
    const double secs = t.seconds();
    // triad moves 2 reads + 1 write per element.
    const double gbps = 3.0 * static_cast<double>(n) * sizeof(float) *
                        static_cast<double>(batch) / secs / 1e9;
    best = std::max(best, gbps);
  }
  return best;
}

double fma_peak_gflops(int repetitions) {
  TEMPEST_REQUIRE(repetitions > 0);
  // Wide independent accumulator bank; vectorizes to packed FMAs and keeps
  // every lane's dependency chain short.
  constexpr int kLanes = 64;
  constexpr int kIters = 200000;
  alignas(64) float acc[kLanes];
  alignas(64) float mul[kLanes];
  alignas(64) float add[kLanes];
  for (int i = 0; i < kLanes; ++i) {
    acc[i] = 0.5f + 1e-6f * static_cast<float>(i);
    mul[i] = 0.999999f;
    add[i] = 1e-7f * static_cast<float>(i + 1);
  }

  int threads = 1;
#ifdef _OPENMP
  threads = omp_get_max_threads();
#endif

  double best = 0.0;
  volatile float sink = 0.0f;
  for (int rep = 0; rep < repetitions; ++rep) {
    util::Timer t;
#pragma omp parallel firstprivate(acc)
    {
      for (int it = 0; it < kIters; ++it) {
#pragma omp simd aligned(acc, mul, add : 64)
        for (int i = 0; i < kLanes; ++i) acc[i] = acc[i] * mul[i] + add[i];
      }
      float local = 0.0f;
      for (int i = 0; i < kLanes; ++i) local += acc[i];
      sink = sink + local;
    }
    const double secs = t.seconds();
    const double flops =
        2.0 * kLanes * static_cast<double>(kIters) * threads;
    best = std::max(best, flops / secs / 1e9);
  }
  (void)sink;
  return best;
}

MachineCeilings calibrate(bool quick) {
  const int reps = quick ? 2 : 6;
  MachineCeilings m;
  m.peak_gflops = fma_peak_gflops(reps);
  m.l1_gbps = triad_bandwidth_gbps(16 * 1024, reps);
  m.l2_gbps = triad_bandwidth_gbps(128 * 1024, reps);
  m.l3_gbps = triad_bandwidth_gbps(4 * 1024 * 1024, reps);
  m.dram_gbps = triad_bandwidth_gbps(256ull * 1024 * 1024, reps);
  return m;
}

}  // namespace tempest::perf
