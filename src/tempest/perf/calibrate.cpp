#include "tempest/perf/calibrate.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tempest/util/align.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/json.hpp"
#include "tempest/util/log.hpp"
#include "tempest/util/timer.hpp"

namespace tempest::perf {

double triad_bandwidth_gbps(std::size_t bytes, int repetitions) {
  TEMPEST_REQUIRE(bytes >= 3 * 64 && repetitions > 0);
  const std::size_t n = bytes / (3 * sizeof(float));
  util::aligned_vector<float> a(n, 0.0f), b(n, 1.0f), c(n, 2.0f);
  const float s = 3.0f;

  // Small working sets finish one pass below timer resolution: batch enough
  // passes that each sample spans at least ~10 ms of work.
  const std::size_t batch = std::max<std::size_t>(
      1, (64ull * 1024 * 1024) / std::max<std::size_t>(bytes, 1));

  auto pass = [&] {
    float* __restrict pa = a.data();
    const float* __restrict pb = b.data();
    const float* __restrict pc = c.data();
#pragma omp parallel for simd schedule(static)
    for (std::size_t i = 0; i < n; ++i) pa[i] = pb[i] + s * pc[i];
  };

  pass();  // warm up (faults pages, loads caches)
  double best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    util::Timer t;
    for (std::size_t k = 0; k < batch; ++k) pass();
    const double secs = t.seconds();
    // triad moves 2 reads + 1 write per element.
    const double gbps = 3.0 * static_cast<double>(n) * sizeof(float) *
                        static_cast<double>(batch) / secs / 1e9;
    best = std::max(best, gbps);
  }
  return best;
}

double fma_peak_gflops(int repetitions) {
  TEMPEST_REQUIRE(repetitions > 0);
  // Wide independent accumulator bank; vectorizes to packed FMAs and keeps
  // every lane's dependency chain short.
  constexpr int kLanes = 64;
  constexpr int kIters = 200000;
  alignas(64) float acc[kLanes];
  alignas(64) float mul[kLanes];
  alignas(64) float add[kLanes];
  for (int i = 0; i < kLanes; ++i) {
    acc[i] = 0.5f + 1e-6f * static_cast<float>(i);
    mul[i] = 0.999999f;
    add[i] = 1e-7f * static_cast<float>(i + 1);
  }

  int threads = 1;
#ifdef _OPENMP
  threads = omp_get_max_threads();
#endif

  double best = 0.0;
  volatile float sink = 0.0f;
  for (int rep = 0; rep < repetitions; ++rep) {
    util::Timer t;
#pragma omp parallel firstprivate(acc)
    {
      for (int it = 0; it < kIters; ++it) {
#pragma omp simd aligned(acc, mul, add : 64)
        for (int i = 0; i < kLanes; ++i) acc[i] = acc[i] * mul[i] + add[i];
      }
      float local = 0.0f;
      for (int i = 0; i < kLanes; ++i) local += acc[i];
      sink = sink + local;
    }
    const double secs = t.seconds();
    const double flops =
        2.0 * kLanes * static_cast<double>(kIters) * threads;
    best = std::max(best, flops / secs / 1e9);
  }
  (void)sink;
  return best;
}

MachineCeilings calibrate(bool quick) {
  const int reps = quick ? 2 : 6;
  MachineCeilings m;
  m.peak_gflops = fma_peak_gflops(reps);
  m.l1_gbps = triad_bandwidth_gbps(16 * 1024, reps);
  m.l2_gbps = triad_bandwidth_gbps(128 * 1024, reps);
  m.l3_gbps = triad_bandwidth_gbps(4 * 1024 * 1024, reps);
  m.dram_gbps = triad_bandwidth_gbps(256ull * 1024 * 1024, reps);
  return m;
}

namespace {

/// First "model name" line of /proc/cpuinfo, or a portable fallback.
std::string cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t begin = colon + 1;
        while (begin < line.size() && line[begin] == ' ') ++begin;
        return line.substr(begin);
      }
    }
  }
  return "unknown-cpu";
}

/// Extract the number following "key": in a flat JSON object written by
/// the JsonWriter below. Good enough for our own file; any malformed
/// content fails the fingerprint check and triggers recalibration.
bool scan_number(const std::string& text, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const char* start = text.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

bool scan_string(const std::string& text, const std::string& key,
                 std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t begin = at + needle.size();
  const std::size_t end = text.find('"', begin);
  if (end == std::string::npos) return false;
  *out = text.substr(begin, end - begin);
  return true;
}

}  // namespace

std::string host_fingerprint() {
  int omp_threads = 1;
#ifdef _OPENMP
  omp_threads = omp_get_max_threads();
#endif
  std::ostringstream os;
  os << cpu_model() << " | cpus=" << std::thread::hardware_concurrency()
     << " | omp=" << omp_threads;
  return os.str();
}

MachineCeilings load_or_calibrate(bool quick, bool force,
                                  const std::string& path) {
  const std::string fp = host_fingerprint();
  if (!force) {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string text = ss.str();
      std::string cached_fp;
      double cached_quick = 1.0;
      MachineCeilings m;
      const bool ok =
          scan_string(text, "fingerprint", &cached_fp) && cached_fp == fp &&
          scan_number(text, "quick", &cached_quick) &&
          // A quick-mode cache must not serve a full-precision request.
          (quick || cached_quick == 0.0) &&
          scan_number(text, "peak_gflops", &m.peak_gflops) &&
          scan_number(text, "l1_gbps", &m.l1_gbps) &&
          scan_number(text, "l2_gbps", &m.l2_gbps) &&
          scan_number(text, "l3_gbps", &m.l3_gbps) &&
          scan_number(text, "dram_gbps", &m.dram_gbps) && m.peak_gflops > 0 &&
          m.l1_gbps > 0 && m.l2_gbps > 0 && m.l3_gbps > 0 && m.dram_gbps > 0;
      if (ok) {
        util::info("calibrate: reusing cached machine ceilings from " + path);
        return m;
      }
    }
  }

  const MachineCeilings m = calibrate(quick);
  std::ofstream out(path);
  if (out) {
    util::JsonWriter w(out);
    w.begin_object();
    w.field("schema", "tempest-ceilings-v1");
    w.field("fingerprint", fp);
    w.field("quick", quick ? 1 : 0);
    w.field("peak_gflops", m.peak_gflops);
    w.field("l1_gbps", m.l1_gbps);
    w.field("l2_gbps", m.l2_gbps);
    w.field("l3_gbps", m.l3_gbps);
    w.field("dram_gbps", m.dram_gbps);
    w.end_object();
  } else {
    util::warn("calibrate: could not persist ceilings to " + path +
               " (continuing uncached)");
  }
  return m;
}

}  // namespace tempest::perf
