#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "tempest/perf/calibrate.hpp"

namespace tempest::perf {

/// One kernel's position in the (cache-aware) roofline plane: arithmetic
/// intensity in flops per byte of traffic at a given memory level, and
/// achieved GFLOP/s.
struct RooflinePoint {
  std::string name;
  double ai = 0.0;      ///< flops / byte
  double gflops = 0.0;  ///< achieved
};

/// Cache-aware roofline model (paper Fig. 11): bandwidth ceilings per memory
/// level plus the compute peak. attainable() evaluates
/// min(peak, ai * bandwidth(level)).
class Roofline {
 public:
  explicit Roofline(MachineCeilings ceilings) : m_(ceilings) {}

  [[nodiscard]] const MachineCeilings& ceilings() const { return m_; }

  [[nodiscard]] double attainable_dram(double ai) const;
  [[nodiscard]] double attainable_l3(double ai) const;
  [[nodiscard]] double attainable_l2(double ai) const;
  [[nodiscard]] double attainable_l1(double ai) const;

  /// AI at which the DRAM roof meets the compute peak (the ridge point).
  [[nodiscard]] double dram_ridge() const;

  void add_point(RooflinePoint p) { points_.push_back(std::move(p)); }
  [[nodiscard]] const std::vector<RooflinePoint>& points() const {
    return points_;
  }

  /// Print ceilings and per-point attainment (the textual form of Fig. 11).
  void print(std::ostream& os) const;

 private:
  MachineCeilings m_;
  std::vector<RooflinePoint> points_;
};

}  // namespace tempest::perf
