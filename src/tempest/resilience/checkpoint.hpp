#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/io/io.hpp"
#include "tempest/sparse/series.hpp"

namespace tempest::resilience {

/// Thrown when a structurally valid checkpoint does not belong to the run
/// trying to resume from it: the configuration fingerprint or the grid
/// geometry differs. Restarting silently with mismatched state would
/// produce a wrong (not merely imprecise) result, so this is never
/// downgraded to a warning.
class CheckpointMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Order-sensitive FNV-1a accumulator for building configuration
/// fingerprints: hash every parameter that must match for a resumed run to
/// be bitwise-identical (geometry, dt, schedule, source/receiver counts...).
class Fingerprint {
 public:
  Fingerprint& add_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ull;
    }
    return *this;
  }

  template <typename T>
  Fingerprint& add(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "fingerprint inputs must be raw values");
    return add_bytes(&v, sizeof(T));
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;
};

/// Full simulation state at a barrier timestep: the circular-buffer time
/// slices (in slot order — the fold is deterministic given `step`), the
/// last fully computed timestep, the receiver gather rows recorded so far,
/// and arbitrary named auxiliary payloads for application state (e.g. the
/// RTM image accumulator).
struct Checkpoint {
  std::uint64_t fingerprint = 0;
  int step = 0;  ///< last fully computed timestep
  std::vector<grid::Grid3<real_t>> slots;
  bool has_rec = false;
  sparse::SparseTimeSeries rec;
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> aux;

  [[nodiscard]] const std::vector<std::uint8_t>* find_aux(
      const std::string& name) const {
    for (const auto& [n, bytes] : aux) {
      if (n == name) return &bytes;
    }
    return nullptr;
  }
};

/// Pack a trivially copyable value as an auxiliary-blob payload.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> aux_pack(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::uint8_t> b(sizeof(T));
  std::memcpy(b.data(), &v, sizeof(T));
  return b;
}

/// Unpack an auxiliary blob written by aux_pack. Returns nullopt on size
/// mismatch (e.g. a checkpoint written by an incompatible build).
template <typename T>
[[nodiscard]] std::optional<T> aux_unpack(const std::vector<std::uint8_t>& b) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (b.size() != sizeof(T)) return std::nullopt;
  T v{};
  std::memcpy(&v, b.data(), sizeof(T));
  return v;
}

/// Versioned auxiliary-blob framing: an 8-byte {magic, version} header
/// prefixes the payload, so a blob written by an incompatible layout (or
/// truncated by corruption the file-level CRC did not cover because the
/// whole checkpoint was rewritten) is rejected as a typed
/// io::CorruptFileError naming the blob — never silently reinterpreted as
/// raw bytes.
[[nodiscard]] std::vector<std::uint8_t> aux_wrap_bytes(std::uint32_t magic,
                                                       std::uint32_t version,
                                                       const void* data,
                                                       std::size_t n);

/// Validated view of a wrapped blob's payload (header stripped). Throws
/// io::CorruptFileError on a short blob, wrong magic, or wrong version;
/// `name` labels the blob in the diagnostic.
struct AuxView {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};
[[nodiscard]] AuxView aux_unwrap_bytes(const std::string& name,
                                       const std::vector<std::uint8_t>& blob,
                                       std::uint32_t magic,
                                       std::uint32_t version);

/// aux_pack/aux_unpack with the versioned framing. Unpack throws
/// io::CorruptFileError (wrong magic/version/size) instead of guessing.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> aux_pack_versioned(std::uint32_t magic,
                                                           std::uint32_t version,
                                                           const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return aux_wrap_bytes(magic, version, &v, sizeof(T));
}

template <typename T>
[[nodiscard]] T aux_unpack_versioned(const std::string& name,
                                     const std::vector<std::uint8_t>& blob,
                                     std::uint32_t magic,
                                     std::uint32_t version) {
  static_assert(std::is_trivially_copyable_v<T>);
  const AuxView view = aux_unwrap_bytes(name, blob, magic, version);
  if (view.size != sizeof(T)) {
    throw io::CorruptFileError(
        name, "auxiliary payload holds " + std::to_string(view.size) +
                  " bytes, expected " + std::to_string(sizeof(T)));
  }
  T v{};
  std::memcpy(&v, view.data, sizeof(T));
  return v;
}

/// Atomic checkpoint persistence with two-deep rotation.
///
/// Layout (host-endian): magic "TPCK" + version, fingerprint, step, slice
/// geometry, slice payloads, optional gather, auxiliary blobs, and a
/// trailing CRC-32 over everything before it. save() streams to
/// `path + ".tmp"`, rotates the previous good file to `path + ".1"`, and
/// rename(2)s the new one into place, so a kill at any instant leaves at
/// least one complete checkpoint on disk — never only a half-written file
/// under the live name, and never *zero* usable checkpoints because the
/// crash landed mid-write. load() validates magic, header sanity, the
/// declared sizes against the actual file size, and the CRC before
/// trusting a byte of payload; try_load() falls back to the rotated
/// predecessor when the newest file fails validation.
class Checkpointer {
 public:
  explicit Checkpointer(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const { return path_; }
  /// The rotated previous-good checkpoint (kept as the CRC-failure
  /// fallback).
  [[nodiscard]] std::string previous_path() const { return path_ + ".1"; }
  [[nodiscard]] bool exists() const;

  /// Atomically persist `ck`, rotating the previous checkpoint to
  /// previous_path(). Throws util::PreconditionError on I/O errors (disk
  /// full, unwritable directory) — the previous checkpoint, if any, is
  /// left intact in every failure mode.
  void save(const Checkpoint& ck) const;

  /// Load and fully validate the newest file only. Throws
  /// io::CorruptFileError on a missing, truncated, or corrupted file.
  [[nodiscard]] Checkpoint load() const;

  /// Resume helper: nullopt when no usable checkpoint exists; warns and
  /// falls back to the rotated predecessor when the newest file is corrupt
  /// (a crash mid-write must never strand a run with zero checkpoints);
  /// warns and returns nullopt when neither file validates; throws
  /// CheckpointMismatchError when a valid file was written by a different
  /// configuration.
  [[nodiscard]] std::optional<Checkpoint> try_load(
      std::uint64_t expected_fingerprint) const;

  /// Delete every file this checkpointer may have written (live, rotated,
  /// temp). Call when the protected computation has completed — a stale
  /// checkpoint must not shadow the next run.
  void remove_all() const;

 private:
  [[nodiscard]] Checkpoint load_file(const std::string& path) const;

  std::string path_;
};

}  // namespace tempest::resilience
