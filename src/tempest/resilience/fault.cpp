#include "tempest/resilience/fault.hpp"

#include <csignal>
#include <cstdlib>

#include <atomic>

namespace tempest::resilience::fault {

namespace {
std::atomic<long> progress{0};
}  // namespace

Plan& plan() {
  static Plan p;
  return p;
}

void reset() { plan() = Plan{}; }

bool consume_wavefield_poison(int step) {
  Plan& p = plan();
  if (p.poison_wavefield_at_step < 0 || step != p.poison_wavefield_at_step) {
    return false;
  }
  p.poison_wavefield_at_step = -1;
  return true;
}

bool consume_jit_failure() {
  Plan& p = plan();
  if (p.fail_jit_compiles <= 0) return false;
  --p.fail_jit_compiles;
  return true;
}

bool consume_checkpoint_failure() {
  Plan& p = plan();
  if (p.fail_checkpoint_writes <= 0) return false;
  --p.fail_checkpoint_writes;
  return true;
}

void note_progress() {
  const long n = progress.fetch_add(1, std::memory_order_relaxed) + 1;
  const Plan& p = plan();
  if (p.kill_after_progress >= 0 && n >= p.kill_after_progress) {
    // The chaos harness wants the real thing: no stack unwinding, no
    // destructors, no buffered-stream flushes. SIGKILL cannot be handled.
    std::raise(SIGKILL);
  }
}

long progress_count() { return progress.load(std::memory_order_relaxed); }

void arm_kill_from_env() {
  Plan& p = plan();
  if (p.kill_after_progress >= 0) return;  // programmatic arming wins
  const char* v = std::getenv("TEMPEST_CHAOS_KILL_AT");
  if (v == nullptr || *v == '\0') return;
  const long at = std::strtol(v, nullptr, 10);
  if (at > 0) p.kill_after_progress = static_cast<int>(at);
}

}  // namespace tempest::resilience::fault
