#include "tempest/resilience/fault.hpp"

namespace tempest::resilience::fault {

Plan& plan() {
  static Plan p;
  return p;
}

void reset() { plan() = Plan{}; }

bool consume_wavefield_poison(int step) {
  Plan& p = plan();
  if (p.poison_wavefield_at_step < 0 || step != p.poison_wavefield_at_step) {
    return false;
  }
  p.poison_wavefield_at_step = -1;
  return true;
}

bool consume_jit_failure() {
  Plan& p = plan();
  if (p.fail_jit_compiles <= 0) return false;
  --p.fail_jit_compiles;
  return true;
}

bool consume_checkpoint_failure() {
  Plan& p = plan();
  if (p.fail_checkpoint_writes <= 0) return false;
  --p.fail_checkpoint_writes;
  return true;
}

}  // namespace tempest::resilience::fault
