#include "tempest/resilience/health.hpp"

#include <cmath>
#include <sstream>

namespace tempest::resilience {

void HealthMonitor::check(const grid::Grid3<real_t>& field,
                          std::string_view name, int step) {
  if (!enabled()) return;

  const auto& e = field.extents();
  double max_abs = 0.0;
  int bad_x = -1, bad_y = -1, bad_z = -1;
  double bad_v = 0.0;

  // Row-wise walk over the interior; stops recording after the first
  // non-finite hit but still finishes the max scan (the magnitude is part
  // of the diagnostic).
  for (int x = 0; x < e.nx && bad_x < 0; ++x) {
    for (int y = 0; y < e.ny && bad_x < 0; ++y) {
      for (int z = 0; z < e.nz; ++z) {
        const double v = static_cast<double>(field(x, y, z));
        if (!std::isfinite(v)) {
          bad_x = x;
          bad_y = y;
          bad_z = z;
          bad_v = v;
          break;
        }
        const double a = std::fabs(v);
        if (a > max_abs) max_abs = a;
      }
    }
  }

  if (bad_x >= 0) {
    std::ostringstream os;
    os << "numerical health check failed: non-finite value ("
       << (std::isnan(bad_v) ? "nan" : "inf") << ") in field '" << name
       << "' at timestep " << step << ", first at grid point (" << bad_x
       << ", " << bad_y << ", " << bad_z
       << ") — the wavefield is corrupt; check dt against the CFL limit and "
          "the source amplitudes";
    throw NumericalHealthError(std::string(name), step, os.str());
  }

  if (max_abs > policy_.absolute_limit) {
    std::ostringstream os;
    os << "numerical health check failed: energy blow-up in field '" << name
       << "' at timestep " << step << ": max|u| = " << max_abs
       << " exceeds the absolute limit " << policy_.absolute_limit
       << " — dt likely violates the CFL condition";
    throw NumericalHealthError(std::string(name), step, os.str());
  }

  // Growth check only once the field carries signal: comparing against the
  // all-zero state before the source ramps up would divide by zero.
  if (last_max_ > 0.0 && max_abs > last_max_ * policy_.blowup_factor) {
    std::ostringstream os;
    os << "numerical health check failed: energy blow-up in field '" << name
       << "' at timestep " << step << ": max|u| grew from " << last_max_
       << " to " << max_abs << " since the previous check (factor "
       << max_abs / last_max_ << " > " << policy_.blowup_factor
       << ") — dt likely violates the CFL condition";
    throw NumericalHealthError(std::string(name), step, os.str());
  }

  last_max_ = max_abs;
}

}  // namespace tempest::resilience
