#pragma once

namespace tempest::resilience::fault {

/// Deterministic fault-injection hooks.
///
/// The resilience layer's recovery paths (NaN detection, checkpoint
/// atomicity, JIT fallback) only matter when something goes wrong — and the
/// conditions that go wrong in production (CFL blow-up after hours, a kill
/// -9 mid-write, a compiler OOM) cannot be provoked reliably in a unit
/// test. These hooks let tests arm a specific fault at a specific point;
/// production code polls them at the instrumented sites. Every counter is
/// one relaxed int read when disarmed, so the hooks stay compiled in.
///
/// The plan is process-global and not thread-safe to *arm*; arm it before
/// starting the run under test and reset() afterwards (tests within one
/// binary run sequentially).
struct Plan {
  /// Overwrite one interior wavefield value with a quiet NaN the first time
  /// the propagator completes this timestep (-1 = disarmed). Models a
  /// CFL-violating update poisoning the field mid-run.
  int poison_wavefield_at_step = -1;

  /// Fail the next N JIT compiler invocations with a nonzero exit status
  /// before the real compiler runs. N == 1 models a transient failure that
  /// a retry absorbs; a large N models a persistently broken toolchain.
  int fail_jit_compiles = 0;

  /// Abort the next N checkpoint writes after the temp file is partially
  /// written but *before* the atomic rename — the torn-write window a kill
  /// during save() would hit. The previous checkpoint must survive.
  int fail_checkpoint_writes = 0;

  /// Die with an un-catchable SIGKILL when the process-global progress
  /// counter (one tick per completed barrier timestep or temporal-blocking
  /// band — see note_progress()) reaches this value (-1 = disarmed). The
  /// chaos harness arms it to kill a survey at a fault-plan-chosen point in
  /// the computation: no destructors, no atexit, no flushes — exactly what
  /// `kill -9` leaves behind.
  int kill_after_progress = -1;
};

[[nodiscard]] Plan& plan();

/// Disarm everything (call from test teardown).
void reset();

/// Polled by the propagator after each completed barrier timestep.
/// Consumes the armed fault: returns true exactly once.
[[nodiscard]] bool consume_wavefield_poison(int step);

/// Polled by the JIT before each compiler invocation.
[[nodiscard]] bool consume_jit_failure();

/// Polled by the Checkpointer mid-write.
[[nodiscard]] bool consume_checkpoint_failure();

/// Tick the process-global progress counter (called by the engine after
/// every completed barrier timestep and at every temporal-blocking band
/// boundary) and raise SIGKILL when the armed kill point is reached. One
/// relaxed atomic increment; disarmed it costs one int compare.
void note_progress();

/// Progress ticks since process start — the chaos harness reads this from
/// an uninterrupted run to size its kill plan.
[[nodiscard]] long progress_count();

/// Arm kill_after_progress from $TEMPEST_CHAOS_KILL_AT when set (and the
/// plan is not already armed programmatically). Lets the chaos harness
/// reach into a child process it spawned without a bespoke CLI flag.
void arm_kill_from_env();

}  // namespace tempest::resilience::fault
