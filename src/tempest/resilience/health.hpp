#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"

namespace tempest::resilience {

/// Thrown when a wavefield fails a numerical health check: a NaN/Inf
/// appeared, or the field amplitude is growing without bound (the signature
/// of a CFL-violating timestep). The message names the offending field, the
/// timestep, and — for non-finite values — the first bad grid point, so a
/// thousand-step run that dies diagnoses itself instead of printing
/// "nan" at the end.
class NumericalHealthError : public std::runtime_error {
 public:
  NumericalHealthError(std::string field, int step, const std::string& what)
      : std::runtime_error(what), field_(std::move(field)), step_(step) {}

  [[nodiscard]] const std::string& field() const { return field_; }
  [[nodiscard]] int step() const { return step_; }

 private:
  std::string field_;
  int step_;
};

/// Health-monitoring knobs carried in PropagatorOptions. Disabled by
/// default (check_every == 0): a scan touches the whole field, so the
/// cadence is the user's cost/latency trade-off.
struct HealthPolicy {
  /// Scan the wavefield every N completed timesteps (0 = disabled). Under
  /// temporal blocking the scan runs at time-band boundaries instead — the
  /// only instants at which a whole timestep exists.
  int check_every = 0;

  /// Declare energy blow-up when max|u| grows by more than this factor
  /// between consecutive checks (after the field is established). Stable
  /// damped runs grow sub-linearly per step; a CFL violation grows
  /// exponentially and crosses any such factor within a few checks.
  double blowup_factor = 1.0e4;

  /// Hard amplitude ceiling, checked regardless of growth history.
  double absolute_limit = 1.0e30;

  [[nodiscard]] bool enabled() const { return check_every > 0; }
};

/// Scans wavefields for NaN/Inf and energy blow-up. One monitor tracks one
/// field's amplitude history across a run; reset() between runs.
class HealthMonitor {
 public:
  HealthMonitor() = default;
  explicit HealthMonitor(HealthPolicy policy) : policy_(policy) {}

  [[nodiscard]] const HealthPolicy& policy() const { return policy_; }
  [[nodiscard]] bool enabled() const { return policy_.enabled(); }

  /// True when `step` is a scheduled scan point.
  [[nodiscard]] bool due(int step) const {
    return enabled() && step % policy_.check_every == 0;
  }

  /// Scan `field` (interior only): throws NumericalHealthError on the first
  /// non-finite value, on max|u| exceeding the absolute limit, or on growth
  /// beyond blowup_factor since the previous check. Cheap single pass.
  void check(const grid::Grid3<real_t>& field, std::string_view name,
             int step);

  /// Forget the amplitude history (call when the wavefield is re-zeroed).
  void reset() { last_max_ = 0.0; }

  /// max|u| seen by the most recent check.
  [[nodiscard]] double last_max() const { return last_max_; }

 private:
  HealthPolicy policy_{};
  double last_max_ = 0.0;
};

}  // namespace tempest::resilience
