#include "tempest/resilience/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tempest/io/io.hpp"
#include "tempest/resilience/fault.hpp"
#include "tempest/obs/metrics.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/crc32.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/log.hpp"

namespace tempest::resilience {

namespace {

constexpr std::uint32_t kMagic = 0x5450434Bu;  // "TPCK"
constexpr std::uint32_t kVersion = 1;
constexpr int kMaxExtent = 1 << 20;
constexpr int kMaxHalo = 1 << 10;
constexpr int kMaxSlices = 16;
constexpr std::uint32_t kMaxAux = 1 << 10;

/// Streams to the temp file while folding every byte into the CRC, so the
/// trailing checksum covers the exact bytes on disk.
class CrcWriter {
 public:
  explicit CrcWriter(std::ostream& os) : os_(os) {}

  void bytes(const void* data, std::size_t n) {
    if (n == 0) {
      return;  // empty blobs arrive as {nullptr, 0}
    }
    os_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    crc_.update(data, n);
  }

  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(T));
  }

  [[nodiscard]] std::uint32_t crc() const { return crc_.value(); }

 private:
  std::ostream& os_;
  util::Crc32 crc_;
};

/// Bounds-checked cursor over the fully loaded file image.
class Reader {
 public:
  Reader(const std::string& path, const std::vector<std::uint8_t>& buf,
         std::size_t end)
      : path_(path), buf_(buf), end_(end) {}

  void bytes(void* out, std::size_t n) {
    if (pos_ + n > end_) {
      throw io::CorruptFileError(path_,
                                 "checkpoint payload ends prematurely");
    }
    // Empty aux blobs hand us vector::data() == nullptr; memcpy's pointer
    // arguments are declared nonnull even for n == 0.
    if (n != 0) {
      std::memcpy(out, buf_.data() + pos_, n);
    }
    pos_ += n;
  }

  template <typename T>
  T pod() {
    T v{};
    bytes(&v, sizeof(T));
    return v;
  }

  [[nodiscard]] std::size_t remaining() const { return end_ - pos_; }

 private:
  const std::string& path_;
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
  std::size_t end_;
};

}  // namespace

bool Checkpointer::exists() const {
  std::error_code ec;
  return std::filesystem::exists(path_, ec);
}

void Checkpointer::save(const Checkpoint& ck) const {
  TEMPEST_TRACE_SPAN("checkpoint.save", "resilience");
  TEMPEST_OBS_TIME(CheckpointWriteSeconds);
  TEMPEST_REQUIRE_MSG(!ck.slots.empty(), "checkpoint carries no time slices");
  const auto& e0 = ck.slots.front().extents();
  const int halo0 = ck.slots.front().halo();
  for (const auto& s : ck.slots) {
    TEMPEST_REQUIRE_MSG(s.extents() == e0 && s.halo() == halo0,
                        "checkpoint slices must share one geometry");
  }

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    TEMPEST_REQUIRE_MSG(os.is_open(),
                        "cannot open checkpoint temp file: " + tmp);
    CrcWriter w(os);
    w.pod(kMagic);
    w.pod(kVersion);
    w.pod(ck.fingerprint);
    w.pod(static_cast<std::int32_t>(ck.step));
    w.pod(static_cast<std::int32_t>(ck.slots.size()));
    w.pod(static_cast<std::int32_t>(e0.nx));
    w.pod(static_cast<std::int32_t>(e0.ny));
    w.pod(static_cast<std::int32_t>(e0.nz));
    w.pod(static_cast<std::int32_t>(halo0));
    for (const auto& s : ck.slots) {
      w.bytes(s.raw(), s.padded_size() * sizeof(real_t));
    }

    // Torn-write window: a kill here leaves a partial temp file while the
    // previous checkpoint (if any) is still intact under the live name.
    if (fault::consume_checkpoint_failure()) {
      os.flush();
      throw util::PreconditionError(
          "fault injection: simulated crash during checkpoint write to " +
          tmp);
    }

    w.pod(static_cast<std::uint8_t>(ck.has_rec ? 1 : 0));
    if (ck.has_rec) {
      w.pod(static_cast<std::int32_t>(ck.rec.nt()));
      w.pod(static_cast<std::int32_t>(ck.rec.npoints()));
      for (const sparse::Coord3& c : ck.rec.coords()) {
        w.pod(c.x);
        w.pod(c.y);
        w.pod(c.z);
      }
      for (int t = 0; t < ck.rec.nt(); ++t) {
        const auto step = ck.rec.step(t);
        w.bytes(step.data(), step.size() * sizeof(real_t));
      }
    }

    w.pod(static_cast<std::uint32_t>(ck.aux.size()));
    for (const auto& [name, blob] : ck.aux) {
      w.pod(static_cast<std::uint32_t>(name.size()));
      w.bytes(name.data(), name.size());
      w.pod(static_cast<std::uint64_t>(blob.size()));
      w.bytes(blob.data(), blob.size());
    }

    const std::uint32_t crc = w.crc();
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    os.flush();
    TEMPEST_REQUIRE_MSG(static_cast<bool>(os),
                        "checkpoint write failed: " + tmp);
  }

  // Rotate: the fully-written previous checkpoint becomes the fallback
  // copy *before* the new file takes the live name. A kill between the two
  // renames leaves the old file under previous_path() and the new complete
  // file under .tmp — resume falls back to the rotated copy, so no crash
  // instant can strand the run with zero usable checkpoints.
  std::error_code rot_ec;
  if (std::filesystem::exists(path_, rot_ec)) {
    if (std::rename(path_.c_str(), previous_path().c_str()) != 0) {
      util::warn("cannot rotate previous checkpoint to " + previous_path() +
                 "; continuing with a single generation");
    }
  }
  TEMPEST_REQUIRE_MSG(std::rename(tmp.c_str(), path_.c_str()) == 0,
                      "cannot move checkpoint into place: " + path_);
#if !defined(TEMPEST_TRACE_DISABLED)
  if (trace::enabled()) {
    std::error_code size_ec;
    const auto written = std::filesystem::file_size(path_, size_ec);
    if (!size_ec) TEMPEST_TRACE_COUNT(CheckpointBytes, written);
  }
#endif
}

Checkpoint Checkpointer::load() const { return load_file(path_); }

Checkpoint Checkpointer::load_file(const std::string& path) const {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    throw io::CorruptFileError(path, "cannot open checkpoint for reading");
  }
  std::vector<std::uint8_t> buf(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());

  constexpr std::size_t kMinSize =
      2 * sizeof(std::uint32_t) + sizeof(std::uint64_t) +
      6 * sizeof(std::int32_t) + sizeof(std::uint8_t) +
      2 * sizeof(std::uint32_t);
  if (buf.size() < kMinSize) {
    throw io::CorruptFileError(
        path, "too small to hold a checkpoint (" +
                   std::to_string(buf.size()) + " bytes)");
  }

  const std::size_t body = buf.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + body, sizeof(stored_crc));
  const std::uint32_t computed_crc = util::crc32(buf.data(), body);
  if (stored_crc != computed_crc) {
    std::ostringstream os;
    os << "CRC mismatch: stored " << std::hex << stored_crc << ", computed "
       << computed_crc << " — torn write or bit rot";
    throw io::CorruptFileError(path, os.str());
  }

  Reader r(path, buf, body);
  if (r.pod<std::uint32_t>() != kMagic) {
    throw io::CorruptFileError(path,
                               "bad magic — not a tempest checkpoint");
  }
  const std::uint32_t version = r.pod<std::uint32_t>();
  if (version != kVersion) {
    throw io::CorruptFileError(
        path, "unsupported checkpoint version " + std::to_string(version));
  }

  Checkpoint ck;
  ck.fingerprint = r.pod<std::uint64_t>();
  ck.step = r.pod<std::int32_t>();
  const int nslices = r.pod<std::int32_t>();
  const int nx = r.pod<std::int32_t>();
  const int ny = r.pod<std::int32_t>();
  const int nz = r.pod<std::int32_t>();
  const int halo = r.pod<std::int32_t>();
  if (ck.step < 0 || nslices <= 0 || nslices > kMaxSlices || nx <= 0 ||
      ny <= 0 || nz <= 0 || nx > kMaxExtent || ny > kMaxExtent ||
      nz > kMaxExtent || halo < 0 || halo > kMaxHalo) {
    throw io::CorruptFileError(path, "implausible checkpoint header");
  }

  ck.slots.reserve(static_cast<std::size_t>(nslices));
  for (int s = 0; s < nslices; ++s) {
    grid::Grid3<real_t> g({nx, ny, nz}, halo);
    r.bytes(g.raw(), g.padded_size() * sizeof(real_t));
    ck.slots.push_back(std::move(g));
  }

  ck.has_rec = r.pod<std::uint8_t>() != 0;
  if (ck.has_rec) {
    const int rec_nt = r.pod<std::int32_t>();
    const int rec_np = r.pod<std::int32_t>();
    if (rec_nt <= 0 || rec_np < 0) {
      throw io::CorruptFileError(path, "implausible gather header");
    }
    sparse::CoordList coords(static_cast<std::size_t>(rec_np));
    for (sparse::Coord3& c : coords) {
      c.x = r.pod<double>();
      c.y = r.pod<double>();
      c.z = r.pod<double>();
    }
    ck.rec = sparse::SparseTimeSeries(std::move(coords), rec_nt);
    for (int t = 0; t < rec_nt; ++t) {
      auto step = ck.rec.step(t);
      r.bytes(step.data(), step.size() * sizeof(real_t));
    }
  }

  const std::uint32_t naux = r.pod<std::uint32_t>();
  if (naux > kMaxAux) {
    throw io::CorruptFileError(path, "implausible auxiliary-blob count");
  }
  for (std::uint32_t i = 0; i < naux; ++i) {
    const std::uint32_t name_len = r.pod<std::uint32_t>();
    if (name_len > 4096) {
      throw io::CorruptFileError(path, "implausible auxiliary name length");
    }
    std::string name(name_len, '\0');
    r.bytes(name.data(), name_len);
    const std::uint64_t nbytes = r.pod<std::uint64_t>();
    if (nbytes > r.remaining()) {
      throw io::CorruptFileError(path,
                                 "auxiliary blob exceeds the file size");
    }
    std::vector<std::uint8_t> blob(static_cast<std::size_t>(nbytes));
    r.bytes(blob.data(), blob.size());
    ck.aux.emplace_back(std::move(name), std::move(blob));
  }

  if (r.remaining() != 0) {
    throw io::CorruptFileError(path, "trailing bytes after checkpoint data");
  }
  return ck;
}

std::optional<Checkpoint> Checkpointer::try_load(
    std::uint64_t expected_fingerprint) const {
  // Newest first, then the rotated predecessor: a crash mid-write (or bit
  // rot in the newest file) degrades the resume to the previous barrier
  // step instead of a cold start.
  const std::string candidates[] = {path_, previous_path()};
  bool any_file = false;
  for (const std::string& candidate : candidates) {
    std::error_code ec;
    if (!std::filesystem::exists(candidate, ec)) continue;
    any_file = true;
    Checkpoint ck;
    try {
      ck = load_file(candidate);
    } catch (const io::CorruptFileError& e) {
      util::warn(std::string("ignoring unusable checkpoint: ") + e.what());
      continue;
    }
    if (ck.fingerprint != expected_fingerprint) {
      std::ostringstream os;
      os << "checkpoint '" << candidate << "' was written by a different "
         << "configuration (fingerprint " << std::hex << ck.fingerprint
         << ", this run is " << expected_fingerprint
         << ") — resuming would corrupt the result; delete the file to "
            "start fresh";
      throw CheckpointMismatchError(os.str());
    }
    if (candidate != path_) {
      util::warn("newest checkpoint unusable; resuming from the rotated "
                 "predecessor " +
                 candidate + " (step " + std::to_string(ck.step) + ")");
    }
    return ck;
  }
  if (any_file) {
    util::warn("no usable checkpoint generation under '" + path_ +
               "'; starting fresh");
  }
  return std::nullopt;
}

void Checkpointer::remove_all() const {
  std::remove(path_.c_str());
  std::remove(previous_path().c_str());
  std::remove((path_ + ".tmp").c_str());
}

std::vector<std::uint8_t> aux_wrap_bytes(std::uint32_t magic,
                                         std::uint32_t version,
                                         const void* data, std::size_t n) {
  std::vector<std::uint8_t> b(2 * sizeof(std::uint32_t) + n);
  std::memcpy(b.data(), &magic, sizeof(magic));
  std::memcpy(b.data() + sizeof(magic), &version, sizeof(version));
  if (n != 0) {
    std::memcpy(b.data() + 2 * sizeof(std::uint32_t), data, n);
  }
  return b;
}

AuxView aux_unwrap_bytes(const std::string& name,
                         const std::vector<std::uint8_t>& blob,
                         std::uint32_t magic, std::uint32_t version) {
  constexpr std::size_t kHeader = 2 * sizeof(std::uint32_t);
  if (blob.size() < kHeader) {
    throw io::CorruptFileError(
        name, "auxiliary blob truncated before its header (" +
                  std::to_string(blob.size()) + " bytes)");
  }
  std::uint32_t stored_magic = 0;
  std::uint32_t stored_version = 0;
  std::memcpy(&stored_magic, blob.data(), sizeof(stored_magic));
  std::memcpy(&stored_version, blob.data() + sizeof(stored_magic),
              sizeof(stored_version));
  if (stored_magic != magic) {
    std::ostringstream os;
    os << "auxiliary blob magic mismatch: stored 0x" << std::hex
       << stored_magic << ", expected 0x" << magic;
    throw io::CorruptFileError(name, os.str());
  }
  if (stored_version != version) {
    throw io::CorruptFileError(
        name, "auxiliary blob version " + std::to_string(stored_version) +
                  ", this build reads version " + std::to_string(version));
  }
  return AuxView{blob.data() + kHeader, blob.size() - kHeader};
}

}  // namespace tempest::resilience
