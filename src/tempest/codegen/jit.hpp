#pragma once

#include <optional>
#include <string>

#include "tempest/analysis/legality.hpp"
#include "tempest/codegen/emit.hpp"
#include "tempest/core/compress.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/util/error.hpp"

namespace tempest::codegen {

/// Compiler invocation failed after the retry budget (or timed out — a
/// deadline overrun is never retried, it would hang twice as long). Derives
/// from util::TransientError: the toolchain may recover on a later attempt,
/// so job-level retry policies treat it as retryable, while JitAcoustic's
/// constructor degrades to the interpreter immediately.
class JitCompileError : public util::TransientError {
 public:
  using util::TransientError::TransientError;
};

/// Pre-compile legality gate. The generated translation unit implements the
/// stage-2 nest (precomputed + fused + compressed sparse injection), so the
/// schedule the spec requests is verified against that nest's dependence
/// graph *before* paying for a compiler invocation. JitAcoustic calls this
/// from its constructor and lets analysis::ScheduleLegalityError propagate:
/// an illegal schedule is a caller bug, not a toolchain failure, so it does
/// not take the interpreter-fallback path.
[[nodiscard]] analysis::LegalityReport verify_kernel_spec(
    const KernelSpec& spec);

/// The same gate for a DSL-lowered kernel: verifies the spec's schedule
/// against the *lowered* access summary (whatever radius / time reads the
/// equation actually has) instead of the hand-written acoustic one.
[[nodiscard]] analysis::LegalityReport verify_dsl_spec(
    const dsl::LoweredKernel& lowered, const KernelSpec& spec);

/// JIT host: compiles a C translation unit with the system C compiler into
/// a shared object and loads one symbol — the run-time half of the
/// Devito-style code generation workflow. The temporary artifacts live
/// under /tmp and are removed on *every* path, success or failure.
///
/// Hardened for long-running production use: honours $CC (falling back to
/// "cc"), retries failed compiles under the shared util::BackoffPolicy
/// (transient OOM kills and tmpfs races happen on loaded hosts; attempts
/// and base delay configurable via $TEMPEST_JIT_RETRIES /
/// $TEMPEST_JIT_RETRY_BASE_MS), and kills a compile that exceeds the
/// $TEMPEST_JIT_TIMEOUT_MS deadline (default 2 minutes) instead of hanging
/// the simulation behind a wedged compiler. Exhausted retries throw
/// JitCompileError.
class JitModule {
 public:
  /// Compile `c_source` and resolve `symbol_name`. Throws PreconditionError
  /// with the compiler diagnostics on failure. `extra_flags` is appended to
  /// the compile line (default: optimise + vectorise; -fopenmp-simd honours
  /// the generated `omp simd simdlen` pragmas without pulling in the
  /// OpenMP runtime, so JIT-compiled kernels stay single-threaded objects
  /// the task-parallel engine can schedule; -ffp-contract=off mirrors the
  /// engine build — the JIT'd C evaluates the same expression trees as the
  /// AOT kernels and the DslKernel tape, and bitwise cross-artifact
  /// comparisons require all three to round identically).
  JitModule(const std::string& c_source, const std::string& symbol_name,
            const std::string& extra_flags =
                "-O3 -fopenmp-simd -ffp-contract=off");

  JitModule(JitModule&& other) noexcept;
  JitModule& operator=(JitModule&& other) noexcept;
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;
  ~JitModule();

  [[nodiscard]] void* symbol() const { return sym_; }

  template <typename Fn>
  [[nodiscard]] Fn* as() const {
    return reinterpret_cast<Fn*>(sym_);
  }

 private:
  void* handle_ = nullptr;
  void* sym_ = nullptr;
  std::string so_path_;
};

/// The C ABI every generated acoustic kernel implements (see
/// emit.hpp::kSignatureDoc).
using AcousticKernelC = void(float* u0, float* u1, float* u2, const float* m,
                             const float* damp, int nx, int ny, int nz,
                             long sx, long sy, int t_begin, int t_end,
                             float inv_h2, float idt2, float i2dt, float dt2,
                             const int* cs_offsets, const int* cs_zid,
                             const float* dcmp, int npts);

/// Emit + compile + wrap an acoustic kernel, and drive it against the same
/// field/model/precompute structures the AOT propagator uses. Used by the
/// jit tests and the codegen example; produces the same wavefield as
/// physics::AcousticPropagator under the matching schedule.
class JitAcoustic {
 public:
  JitAcoustic(const physics::AcousticModel& model, KernelSpec spec);

  /// Propagate: zeroes the buffer, runs ops t in [1, nt) with fused
  /// injection from the decomposed sources. When compilation failed at
  /// construction, runs the same physics through the DSL tree-walking
  /// interpreter instead (much slower, same result).
  void run(const sparse::SparseTimeSeries& src);

  /// True when compilation failed and run() uses the interpreter fallback.
  [[nodiscard]] bool used_interpreter_fallback() const {
    return !module_.has_value();
  }

  [[nodiscard]] const grid::Grid3<real_t>& wavefield(int t) const {
    return u_.at(t);
  }
  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const std::string& source_code() const { return source_; }

 private:
  const physics::AcousticModel& model_;
  KernelSpec spec_;
  double dt_;
  std::string source_;
  std::optional<JitModule> module_;
  grid::TimeBuffer<real_t> u_;
};

/// The C ABI every generated DSL kernel implements (see
/// emit.hpp::kDslSignatureDoc): coefficient grids arrive as an array of
/// interior origins in lowered.params order.
using DslKernelC = void(float* u0, float* u1, float* u2, const float* m,
                        const float* const* prm, int nx, int ny, int nz,
                        long sx, long sy, int t_begin, int t_end, float dt2,
                        const int* cs_offsets, const int* cs_zid,
                        const float* dcmp, int npts);

/// Emit + compile + drive a DSL-lowered kernel — the fully generic half of
/// the Devito-style workflow: any equation dsl::lower_kernel accepts
/// becomes a compiled translation unit, legality-checked against its own
/// access summary before the compiler runs. On toolchain failure run()
/// degrades to the typed-IR interpreter, which evaluates the identical
/// expression tree in real_t, so results are bit-identical either way.
class JitDsl {
 public:
  JitDsl(const dsl::Eq& eq, const physics::AcousticModel& model,
         KernelSpec spec, dsl::ParamBindings bindings = {});

  /// Compile an already-lowered kernel tree. Same gates as the Eq
  /// overload (legality, statics, bindings) — this is the path the statics
  /// tests use to prove that a *corrupted* tree (e.g. a load beyond the
  /// declared halo) is refused at compile time, something the Eq overload
  /// cannot produce because lower_kernel never emits one.
  JitDsl(dsl::LoweredKernel lowered, const physics::AcousticModel& model,
         KernelSpec spec, dsl::ParamBindings bindings = {});

  /// Propagate: zeroes the buffer, runs ops t in [1, nt) with fused
  /// injection from the decomposed sources.
  void run(const sparse::SparseTimeSeries& src);

  [[nodiscard]] bool used_interpreter_fallback() const {
    return !module_.has_value();
  }
  [[nodiscard]] const grid::Grid3<real_t>& wavefield(int t) const {
    return u_.at(t);
  }
  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const std::string& source_code() const { return source_; }
  [[nodiscard]] const dsl::LoweredKernel& lowered() const { return lowered_; }

 private:
  /// Shared ctor tail: binding resolution, legality + statics gates,
  /// compile (with interpreter fallback on toolchain failure only).
  void init();

  const physics::AcousticModel& model_;
  KernelSpec spec_;
  double dt_;
  dsl::LoweredKernel lowered_;
  dsl::ParamBindings bindings_;
  std::string source_;
  std::optional<JitModule> module_;
  grid::TimeBuffer<real_t> u_;
};

}  // namespace tempest::codegen
