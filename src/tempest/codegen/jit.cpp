#include "tempest/codegen/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "tempest/util/error.hpp"

namespace tempest::codegen {

namespace {

static_assert(sizeof(core::CompressedSparse::Entry) == 2 * sizeof(int),
              "Entry must be two interleaved ints for the generated C ABI");

/// Run a shell command, capturing combined stdout+stderr.
std::pair<int, std::string> run_command(const std::string& cmd) {
  std::string output;
  FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
  TEMPEST_REQUIRE_MSG(pipe != nullptr, "failed to spawn compiler");
  std::array<char, 512> buf{};
  while (::fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    output += buf.data();
  }
  const int status = ::pclose(pipe);
  return {status, output};
}

}  // namespace

JitModule::JitModule(const std::string& c_source,
                     const std::string& symbol_name,
                     const std::string& extra_flags) {
  char c_path[] = "/tmp/tempest_jit_XXXXXX.c";
  const int fd = ::mkstemps(c_path, 2);
  TEMPEST_REQUIRE_MSG(fd >= 0, "cannot create temporary source file");
  {
    std::ofstream out(c_path);
    out << c_source;
  }
  ::close(fd);

  so_path_ = std::string(c_path, std::strlen(c_path) - 2) + ".so";
  const std::string cmd = "cc " + extra_flags + " -fPIC -shared -o " +
                          so_path_ + " " + c_path;
  const auto [status, output] = run_command(cmd);
  ::unlink(c_path);
  TEMPEST_REQUIRE_MSG(status == 0,
                      "generated code failed to compile:\n" + output);

  handle_ = ::dlopen(so_path_.c_str(), RTLD_NOW | RTLD_LOCAL);
  TEMPEST_REQUIRE_MSG(handle_ != nullptr,
                      std::string("dlopen failed: ") + ::dlerror());
  sym_ = ::dlsym(handle_, symbol_name.c_str());
  TEMPEST_REQUIRE_MSG(sym_ != nullptr,
                      "symbol not found in generated module: " + symbol_name);
}

JitModule::JitModule(JitModule&& other) noexcept
    : handle_(other.handle_),
      sym_(other.sym_),
      so_path_(std::move(other.so_path_)) {
  other.handle_ = nullptr;
  other.sym_ = nullptr;
  other.so_path_.clear();
}

JitModule& JitModule::operator=(JitModule&& other) noexcept {
  if (this != &other) {
    this->~JitModule();
    new (this) JitModule(std::move(other));
  }
  return *this;
}

JitModule::~JitModule() {
  if (handle_ != nullptr) ::dlclose(handle_);
  if (!so_path_.empty()) ::unlink(so_path_.c_str());
}

JitAcoustic::JitAcoustic(const physics::AcousticModel& model, KernelSpec spec)
    : model_(model),
      spec_(spec),
      dt_(model.critical_dt()),
      source_(emit_acoustic_c(spec)),
      module_(source_, spec.symbol()),
      u_(3, model.geom.extents, model.geom.radius()) {
  TEMPEST_REQUIRE_MSG(model.geom.space_order == spec.space_order,
                      "model space order must match the generated kernel");
}

void JitAcoustic::run(const sparse::SparseTimeSeries& src) {
  const int nt = src.nt();
  TEMPEST_REQUIRE(nt >= 2);
  u_.fill(real_t{0});

  const auto& e = model_.geom.extents;
  const core::SourceMasks masks =
      core::build_source_masks(e, src, sparse::InterpKind::Trilinear);
  const core::DecomposedSource dcmp =
      core::decompose_sources(masks, src, sparse::InterpKind::Trilinear);
  const core::CompressedSparse cs(masks.sm, masks.sid);

  auto* fn = module_.as<AcousticKernelC>();
  const float inv_h2 = static_cast<float>(
      1.0 / (model_.geom.spacing * model_.geom.spacing));
  const float idt2 = static_cast<float>(1.0 / (dt_ * dt_));
  const float i2dt = static_cast<float>(1.0 / (2.0 * dt_));
  const float dt2 = static_cast<float>(dt_ * dt_);

  fn(u_.slot(0).origin(), u_.slot(1).origin(), u_.slot(2).origin(),
     model_.m.origin(), model_.damp.origin(), e.nx, e.ny, e.nz,
     u_.slot(0).stride_x(), u_.slot(0).stride_y(), 1, nt, inv_h2, idt2, i2dt,
     dt2, cs.raw_offsets(), reinterpret_cast<const int*>(cs.raw_entries()),
     dcmp.data(), dcmp.npts());
}

}  // namespace tempest::codegen
