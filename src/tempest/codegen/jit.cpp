#include "tempest/codegen/jit.hpp"

#include <dlfcn.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "tempest/analysis/statics/stability.hpp"
#include "tempest/analysis/statics/verify.hpp"
#include "tempest/dsl/interpreter.hpp"
#include "tempest/dsl/kernel.hpp"
#include "tempest/util/align.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/resilience/fault.hpp"
#include "tempest/obs/metrics.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/backoff.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/log.hpp"

namespace tempest::codegen {

namespace {

static_assert(sizeof(core::CompressedSparse::Entry) == 2 * sizeof(int),
              "Entry must be two interleaved ints for the generated C ABI");

/// Unlinks a temp artifact unless released — the compile/dlopen/dlsym
/// pipeline has four distinct failure exits and every one of them must
/// clean up both the .c and the .so (they used to leak on failure).
class TempFileGuard {
 public:
  explicit TempFileGuard(std::string path) : path_(std::move(path)) {}
  ~TempFileGuard() {
    if (!path_.empty()) ::unlink(path_.c_str());
  }
  TempFileGuard(const TempFileGuard&) = delete;
  TempFileGuard& operator=(const TempFileGuard&) = delete;

  void release() { path_.clear(); }

 private:
  std::string path_;
};

/// The system C compiler: $CC when set (how users point the JIT at icc/
/// clang or a wrapper), else "cc".
std::string compiler_command() {
  const char* cc = std::getenv("CC");
  return (cc != nullptr && *cc != '\0') ? cc : "cc";
}

/// Compile deadline in milliseconds ($TEMPEST_JIT_TIMEOUT_MS, default 2
/// minutes): a wedged compiler must not hang the simulation forever.
int jit_timeout_ms() {
  const char* env = std::getenv("TEMPEST_JIT_TIMEOUT_MS");
  if (env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return 120000;
}

struct CommandResult {
  int status = -1;       ///< exit code; nonzero = failure
  std::string output;    ///< combined stdout+stderr
  bool timed_out = false;
};

/// Run a shell command with combined output capture and a hard deadline.
/// fork/exec instead of popen so the child can be killed (as its own
/// process group) when the deadline passes.
CommandResult run_command(const std::string& cmd, int timeout_ms) {
  if (resilience::fault::consume_jit_failure()) {
    return {1, "fault injection: simulated compiler failure", false};
  }

  int fds[2];
  if (::pipe(fds) != 0) return {-1, "pipe() failed", false};

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return {-1, "fork() failed", false};
  }
  if (pid == 0) {
    ::setpgid(0, 0);  // own group, so the timeout can kill sh + compiler
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    ::execl("/bin/sh", "sh", "-c", cmd.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }

  ::close(fds[1]);
  CommandResult res;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::array<char, 4096> buf{};
  struct pollfd pfd {
    fds[0], POLLIN, 0
  };
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      res.timed_out = true;
      break;
    }
    const auto remain_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    const int pr =
        ::poll(&pfd, 1, static_cast<int>(std::min<long long>(remain_ms, 200)));
    if (pr > 0) {
      const ssize_t n = ::read(fds[0], buf.data(), buf.size());
      if (n > 0) {
        res.output.append(buf.data(), static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) break;  // EOF: every writer exited
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    if (pr < 0 && errno != EINTR) break;
  }
  ::close(fds[0]);

  int status = 0;
  if (res.timed_out) {
    ::kill(-pid, SIGKILL);
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
    res.status = -1;
    res.output += "\ncompiler killed after exceeding the " +
                  std::to_string(timeout_ms) + " ms deadline";
    return res;
  }
  ::waitpid(pid, &status, 0);
  res.status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

}  // namespace

JitModule::JitModule(const std::string& c_source,
                     const std::string& symbol_name,
                     const std::string& extra_flags) {
  TEMPEST_TRACE_SPAN("jit.compile", "codegen");
  TEMPEST_OBS_TIME(JitCompileSeconds);
  TEMPEST_TRACE_COUNT(JitCompiles, 1);
  char c_path[] = "/tmp/tempest_jit_XXXXXX.c";
  const int fd = ::mkstemps(c_path, 2);
  TEMPEST_REQUIRE_MSG(fd >= 0, "cannot create temporary source file");
  TempFileGuard c_guard(c_path);
  {
    std::ofstream out(c_path);
    out << c_source;
  }
  ::close(fd);

  so_path_ = std::string(c_path, std::strlen(c_path) - 2) + ".so";
  TempFileGuard so_guard(so_path_);
  const std::string cmd = compiler_command() + " " + extra_flags +
                          " -fPIC -shared -o " + so_path_ + " " + c_path;
  const int timeout_ms = jit_timeout_ms();

  // Retries absorb transient failures (OOM kill, tmpfs hiccup, a ccache
  // race); a deterministic diagnostic simply fails again, so the budget is
  // small by default. A timed-out compile is never retried — it would hang
  // the run for another full deadline.
  const util::BackoffPolicy policy = util::BackoffPolicy::from_env(
      "TEMPEST_JIT",
      util::BackoffPolicy{.max_attempts = 2, .base_ms = 50.0, .max_ms = 2000.0});
  CommandResult res;
  for (int attempt = 1;; ++attempt) {
    res = run_command(cmd, timeout_ms);
    if (res.status == 0) break;
    if (res.timed_out) {
      throw JitCompileError("generated code failed to compile (deadline "
                            "exceeded; not retried):\n" +
                            res.output);
    }
    if (attempt >= policy.max_attempts) {
      throw JitCompileError("generated code failed to compile after " +
                            std::to_string(attempt) + " attempt(s):\n" +
                            res.output);
    }
    const double delay = policy.delay_ms(attempt);
    util::warn("JIT compile failed (attempt " + std::to_string(attempt) +
               "/" + std::to_string(policy.max_attempts) + "), retrying in " +
               std::to_string(static_cast<long>(delay)) + " ms: " + cmd);
    util::sleep_ms(delay);
  }

  {
    TEMPEST_TRACE_SPAN("jit.load", "codegen");
    handle_ = ::dlopen(so_path_.c_str(), RTLD_NOW | RTLD_LOCAL);
    TEMPEST_REQUIRE_MSG(handle_ != nullptr,
                        std::string("dlopen failed: ") + ::dlerror());
    sym_ = ::dlsym(handle_, symbol_name.c_str());
    if (sym_ == nullptr) {
      ::dlclose(handle_);
      handle_ = nullptr;
      TEMPEST_REQUIRE_MSG(false,
                          "symbol not found in generated module: " +
                              symbol_name);
    }
  }
  // Success: the .so must outlive us while mapped; the destructor unlinks.
  so_guard.release();
}

JitModule::JitModule(JitModule&& other) noexcept
    : handle_(other.handle_),
      sym_(other.sym_),
      so_path_(std::move(other.so_path_)) {
  other.handle_ = nullptr;
  other.sym_ = nullptr;
  other.so_path_.clear();
}

JitModule& JitModule::operator=(JitModule&& other) noexcept {
  if (this != &other) {
    this->~JitModule();
    new (this) JitModule(std::move(other));
  }
  return *this;
}

JitModule::~JitModule() {
  if (handle_ != nullptr) ::dlclose(handle_);
  if (!so_path_.empty()) ::unlink(so_path_.c_str());
}

analysis::LegalityReport verify_kernel_spec(const KernelSpec& spec) {
  const analysis::AccessSummary kernel =
      physics::acoustic_access_summary(spec.space_order);
  const analysis::ScheduleDescriptor sched =
      spec.wavefront ? analysis::ScheduleDescriptor::wavefront(
                           kernel.radius, std::max(1, spec.tiles.tile_t))
                     : analysis::ScheduleDescriptor::space_blocked();
  return analysis::verify_canonical(kernel, /*stage=*/2, /*sources=*/true,
                                    /*receivers=*/false, sched);
}

analysis::LegalityReport verify_dsl_spec(const dsl::LoweredKernel& lowered,
                                         const KernelSpec& spec) {
  const analysis::AccessSummary kernel = lowered.summary();
  const analysis::ScheduleDescriptor sched =
      spec.wavefront ? analysis::ScheduleDescriptor::wavefront(
                           kernel.radius, std::max(1, spec.tiles.tile_t))
                     : analysis::ScheduleDescriptor::space_blocked();
  return analysis::verify_canonical(kernel, /*stage=*/2, /*sources=*/true,
                                    /*receivers=*/false, sched);
}

JitAcoustic::JitAcoustic(const physics::AcousticModel& model, KernelSpec spec)
    : model_(model),
      spec_(spec),
      dt_(spec.dt > 0.0 ? spec.dt : model.critical_dt()),
      source_(emit_acoustic_c(spec)),
      u_(3, model.geom.extents, model.geom.radius()) {
  TEMPEST_REQUIRE_MSG(model.geom.space_order == spec.space_order,
                      "model space order must match the generated kernel");
  analysis::require_legal(verify_kernel_spec(spec));
  // Statically unstable specs are refused before the compiler runs: like
  // an illegal schedule, a dt beyond the von Neumann bound is a caller
  // bug, so StaticVerificationError propagates — no fallback.
  analysis::statics::require_stable(
      analysis::statics::check_acoustic_stability(
          dt_, model.geom.spacing, spec.space_order,
          analysis::statics::grid_interval(model.vp)),
      spec.kernel);
  try {
    module_.emplace(source_, spec.symbol());
  } catch (const util::PreconditionError& e) {
    // Resilience over speed: a broken toolchain degrades the run to the
    // tree-walking reference interpreter instead of aborting it.
    util::warn(
        std::string("JIT compilation failed; falling back to the DSL "
                    "interpreter (orders of magnitude slower, same "
                    "physics): ") +
        e.what());
  }
}

void JitAcoustic::run(const sparse::SparseTimeSeries& src) {
  const int nt = src.nt();
  TEMPEST_REQUIRE(nt >= 2);
  u_.fill(real_t{0});

  if (!module_.has_value()) {
    // Interpreter fallback: evaluate the same symbolic acoustic equation
    // the pattern matcher recognises, with naive injection. Produces the
    // final wavefield only — the intermediate slices of a JIT run are an
    // implementation detail of the circular buffer anyway.
    dsl::Grid g{model_.geom.extents, model_.geom.spacing};
    dsl::TimeFunction u("u", g, model_.geom.space_order, 2);
    const dsl::Eq update = dsl::solve(dsl::param("m") * u.dt2() +
                                          dsl::param("damp") * u.dt() -
                                          u.laplace(),
                                      u.forward());
    dsl::Interpreter interp(update, model_, dt_);
    u_.at(nt) = interp.run(src, sparse::InterpKind::Trilinear);
    return;
  }

  const auto& e = model_.geom.extents;
  const core::SourceMasks masks =
      core::build_source_masks(e, src, sparse::InterpKind::Trilinear);
  const core::DecomposedSource dcmp =
      core::decompose_sources(masks, src, sparse::InterpKind::Trilinear);
  const core::CompressedSparse cs(masks.sm, masks.sid);

  // The generated TU's vectorization contract (see emit_update_block):
  // field and model storage must come from the 64-byte-aligned
  // util::AlignedAllocator pool. Grids guarantee this by construction;
  // assert it where the pointers cross the C ABI so a future layout change
  // fails loudly instead of silently de-optimizing the SIMD loop.
  constexpr auto base_aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % util::kAlignment == 0;
  };
  TEMPEST_REQUIRE_MSG(base_aligned(u_.slot(0).raw()) &&
                          base_aligned(u_.slot(1).raw()) &&
                          base_aligned(u_.slot(2).raw()) &&
                          base_aligned(model_.m.raw()) &&
                          base_aligned(model_.damp.raw()),
                      "field allocations lost their 64-byte alignment");

  auto* fn = module_->as<AcousticKernelC>();
  const float inv_h2 = static_cast<float>(
      1.0 / (model_.geom.spacing * model_.geom.spacing));
  const float idt2 = static_cast<float>(1.0 / (dt_ * dt_));
  const float i2dt = static_cast<float>(1.0 / (2.0 * dt_));
  const float dt2 = static_cast<float>(dt_ * dt_);

  fn(u_.slot(0).origin(), u_.slot(1).origin(), u_.slot(2).origin(),
     model_.m.origin(), model_.damp.origin(), e.nx, e.ny, e.nz,
     u_.slot(0).stride_x(), u_.slot(0).stride_y(), 1, nt, inv_h2, idt2, i2dt,
     dt2, cs.raw_offsets(), reinterpret_cast<const int*>(cs.raw_entries()),
     dcmp.data(), dcmp.npts());
}

JitDsl::JitDsl(const dsl::Eq& eq, const physics::AcousticModel& model,
               KernelSpec spec, dsl::ParamBindings bindings)
    : model_(model),
      spec_(std::move(spec)),
      dt_(spec_.dt > 0.0 ? spec_.dt : model.critical_dt()),
      lowered_(dsl::lower_kernel(eq, spec_.space_order, model.geom.spacing,
                                 dt_, spec_.kernel)),
      bindings_(std::move(bindings)),
      source_(emit_dsl_c(lowered_, spec_)),
      u_(3, model.geom.extents, model.geom.radius()) {
  init();
}

JitDsl::JitDsl(dsl::LoweredKernel lowered, const physics::AcousticModel& model,
               KernelSpec spec, dsl::ParamBindings bindings)
    : model_(model),
      spec_(std::move(spec)),
      dt_(spec_.dt > 0.0 ? spec_.dt : model.critical_dt()),
      lowered_(std::move(lowered)),
      bindings_(std::move(bindings)),
      source_(emit_dsl_c(lowered_, spec_)),
      u_(3, model.geom.extents, model.geom.radius()) {
  init();
}

void JitDsl::init() {
  TEMPEST_REQUIRE_MSG(model_.geom.space_order == spec_.space_order,
                      "model space order must match the generated kernel");
  TEMPEST_REQUIRE_MSG(lowered_.space_order == spec_.space_order,
                      "lowered kernel space order must match the spec");
  // Binding errors are caller bugs — surface them before any compile.
  (void)dsl::resolve_params(lowered_, model_, bindings_);
  analysis::require_legal(verify_dsl_spec(lowered_, spec_));
  // Full statics verdict (intervals, von Neumann proof at the real space
  // order and dt, IR lint against the model halo) before the compiler is
  // paid for. Like ScheduleLegalityError, StaticVerificationError
  // propagates: a statically diverging or halo-breaking kernel is a
  // caller bug, not a toolchain failure, so no interpreter fallback.
  analysis::statics::StaticsOptions sopts;
  sopts.bounds =
      analysis::statics::model_bounds(model_, bindings_, lowered_.field);
  sopts.resolvable = analysis::statics::resolvable_names(bindings_);
  sopts.declared_radius = model_.geom.radius();
  sopts.dt = dt_;
  analysis::statics::require_static_ok(
      analysis::statics::verify_statics(lowered_, sopts));
  try {
    module_.emplace(source_, spec_.symbol());
  } catch (const util::PreconditionError& e) {
    util::warn(
        std::string("JIT compilation failed; falling back to the typed-IR "
                    "interpreter (orders of magnitude slower, same bits): ") +
        e.what());
  }
}

void JitDsl::run(const sparse::SparseTimeSeries& src) {
  const int nt = src.nt();
  TEMPEST_REQUIRE(nt >= 2);
  u_.fill(real_t{0});

  if (!module_.has_value()) {
    // Typed-IR fallback: walks the identical update tree in real_t, so the
    // final wavefield matches the compiled module bit-for-bit.
    dsl::TypedInterpreter interp(lowered_, model_, dt_, bindings_);
    u_.at(nt) = interp.run(src, sparse::InterpKind::Trilinear);
    return;
  }

  const auto& e = model_.geom.extents;
  const core::SourceMasks masks =
      core::build_source_masks(e, src, sparse::InterpKind::Trilinear);
  const core::DecomposedSource dcmp =
      core::decompose_sources(masks, src, sparse::InterpKind::Trilinear);
  const core::CompressedSparse cs(masks.sm, masks.sid);

  const auto grids = dsl::resolve_params(lowered_, model_, bindings_);
  std::vector<const float*> prm;
  prm.reserve(grids.size());
  constexpr auto base_aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % util::kAlignment == 0;
  };
  for (std::size_t i = 0; i < grids.size(); ++i) {
    TEMPEST_REQUIRE_MSG(
        grids[i]->stride_x() == u_.slot(0).stride_x() &&
            grids[i]->stride_y() == u_.slot(0).stride_y(),
        "parameter grid '" + lowered_.params[i] +
            "' does not match the wavefield layout");
    TEMPEST_REQUIRE_MSG(base_aligned(grids[i]->raw()),
                        "parameter allocations lost their 64-byte alignment");
    prm.push_back(grids[i]->origin());
  }
  TEMPEST_REQUIRE_MSG(base_aligned(u_.slot(0).raw()) &&
                          base_aligned(u_.slot(1).raw()) &&
                          base_aligned(u_.slot(2).raw()) &&
                          base_aligned(model_.m.raw()),
                      "field allocations lost their 64-byte alignment");

  auto* fn = module_->as<DslKernelC>();
  const float dt2 = static_cast<float>(dt_ * dt_);
  fn(u_.slot(0).origin(), u_.slot(1).origin(), u_.slot(2).origin(),
     model_.m.origin(), prm.data(), e.nx, e.ny, e.nz, u_.slot(0).stride_x(),
     u_.slot(0).stride_y(), 1, nt, dt2, cs.raw_offsets(),
     reinterpret_cast<const int*>(cs.raw_entries()), dcmp.data(),
     dcmp.npts());
}

}  // namespace tempest::codegen
