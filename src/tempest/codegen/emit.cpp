#include "tempest/codegen/emit.hpp"

#include <iomanip>
#include <sstream>

#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"

namespace tempest::codegen {

namespace {

std::string flit(double v) {
  std::ostringstream os;
  os << std::setprecision(9) << std::scientific << v << 'f';
  return os.str();
}

/// The per-block stencil body with the FD weights baked in as literals
/// (what Devito's generated C looks like). The z loop is the SIMD axis:
/// per-row pointers are hoisted out of it as `restrict` locals so the
/// vectorizer sees five loop-invariant non-aliasing bases (the row
/// arithmetic in the induction would otherwise defeat its dependence
/// tests), and the `omp simd` pragma carries the spec's preferred lane
/// count. The arrays come from util::AlignedAllocator storage (64-byte
/// allocation bases — asserted by JitAcoustic before the call); rows sit
/// at an arbitrary halo offset inside that allocation, so no `aligned`
/// clause is claimed and GCC's peeling aligns each row itself.
void emit_update_block(std::ostringstream& os, int space_order,
                       int simd_width) {
  const stencil::Coeffs c = stencil::central(2, space_order);
  const int r = stencil::radius_for_order(space_order);
  os << R"(
static void update_block(float* restrict un, const float* restrict uc,
                         const float* restrict up, const float* restrict m,
                         const float* restrict damp, long sx, long sy,
                         int x0, int x1, int y0, int y1, int z0, int z1,
                         float inv_h2, float idt2, float i2dt) {
  for (int x = x0; x < x1; ++x) {
    for (int y = y0; y < y1; ++y) {
      const long row = (long)x * sx + (long)y * sy;
      float* restrict unr = un + row;
      const float* restrict ucr = uc + row;
      const float* restrict upr = up + row;
      const float* restrict mr = m + row;
      const float* restrict dr = damp + row;
)";
  if (simd_width > 0) {
    os << "#pragma omp simd simdlen(" << simd_width << ")\n";
  } else {
    os << "#pragma omp simd\n";
  }
  os << R"(      for (int z = z0; z < z1; ++z) {
)";
  const double w0 = c.weights[static_cast<std::size_t>(r)];
  os << "        float acc = " << flit(3.0 * w0) << " * ucr[z];\n";
  for (int k = 1; k <= r; ++k) {
    const double wk = c.weights[static_cast<std::size_t>(r + k)];
    os << "        acc += " << flit(wk) << " * (ucr[z - " << k
       << "] + ucr[z + " << k << "] + ucr[z - " << k << "*sy] + ucr[z + " << k
       << "*sy] + ucr[z - " << k << "*sx] + ucr[z + " << k << "*sx]);\n";
  }
  os << R"(        const float lap = acc * inv_h2;
        const float num = lap + mr[z] * idt2 * (2.0f * ucr[z] - upr[z]) +
                          dr[z] * i2dt * upr[z];
        unr[z] = num / (mr[z] * idt2 + dr[z] * i2dt);
      }
    }
  }
}
)";
}

/// The fused, compressed source injection of Listing 5: CSR walk over the
/// columns of an (x,y) rectangle; cs_zid interleaves (z, id) pairs.
void emit_inject_block(std::ostringstream& os) {
  os << R"(
static void inject_block(float* restrict un, const float* restrict m,
                         long sx, long sy, int ny, int x0, int x1, int y0,
                         int y1, int t, const int* restrict cs_offsets,
                         const int* restrict cs_zid,
                         const float* restrict dcmp, int npts, float dt2) {
  for (int x = x0; x < x1; ++x) {
    for (int y = y0; y < y1; ++y) {
      const long col = (long)x * ny + y;
      for (int k = cs_offsets[col]; k < cs_offsets[col + 1]; ++k) {
        const long i = (long)x * sx + (long)y * sy + cs_zid[2 * k];
        un[i] += dcmp[(long)t * npts + cs_zid[2 * k + 1]] * (dt2 / m[i]);
      }
    }
  }
}
)";
}

void emit_spaceblocked_schedule(std::ostringstream& os, const core::TileSpec& t,
                                const std::string& update_call) {
  os << R"(
  for (int tstep = t_begin; tstep < t_end; ++tstep) {
    float* un = slots[(tstep + 1) % 3];
    const float* uc = slots[tstep % 3];
    const float* up = slots[(tstep + 2) % 3];
)"
     << "    for (int xb = 0; xb < nx; xb += " << t.block_x
     << ") {\n"
        "      const int xe = MIN(xb + "
     << t.block_x
     << ", nx);\n"
        "      for (int yb = 0; yb < ny; yb += "
     << t.block_y
     << ") {\n"
        "        const int ye = MIN(yb + "
     << t.block_y << ", ny);\n"
     << update_call << R"(      }
    }
    if (npts > 0) {
      inject_block(un, m, sx, sy, ny, 0, nx, 0, ny, tstep, cs_offsets,
                   cs_zid, dcmp, npts, dt2);
    }
  }
)";
}

void emit_wavefront_schedule(std::ostringstream& os, const core::TileSpec& t,
                             int slope, const std::string& update_call) {
  os << "  const int slope = " << slope << ";\n"
     << "  const int tile_t = " << t.tile_t << ", tile_x = " << t.tile_x
     << ", tile_y = " << t.tile_y << ";\n"
     << "  const int block_x = " << t.block_x << ", block_y = " << t.block_y
     << ";\n"
     << R"(
  for (int tt = t_begin; tt < t_end; tt += tile_t) {
    const int te = MIN(tt + tile_t, t_end);
    const int xs_begin = (slope * tt) / tile_x * tile_x;
    const int xs_end = nx + slope * (te - 1);
    const int ys_begin = (slope * tt) / tile_y * tile_y;
    const int ys_end = ny + slope * (te - 1);
    for (int xs = xs_begin; xs < xs_end; xs += tile_x) {
      for (int ys = ys_begin; ys < ys_end; ys += tile_y) {
        for (int tstep = tt; tstep < te; ++tstep) {
          const int xlo = MAX(xs - slope * tstep, 0);
          const int xhi = MIN(xs + tile_x - slope * tstep, nx);
          const int ylo = MAX(ys - slope * tstep, 0);
          const int yhi = MIN(ys + tile_y - slope * tstep, ny);
          if (xlo >= xhi || ylo >= yhi) continue;
          float* un = slots[(tstep + 1) % 3];
          const float* uc = slots[tstep % 3];
          const float* up = slots[(tstep + 2) % 3];
          for (int xb = xlo; xb < xhi; xb += block_x) {
            const int xe = MIN(xb + block_x, xhi);
            for (int yb = ylo; yb < yhi; yb += block_y) {
              const int ye = MIN(yb + block_y, yhi);
)" << update_call
     << R"(            }
          }
          if (npts > 0) {
            inject_block(un, m, sx, sy, ny, xlo, xhi, ylo, yhi, tstep,
                         cs_offsets, cs_zid, dcmp, npts, dt2);
          }
        }
      }
    }
  }
)";
}

}  // namespace

std::string emit_acoustic_c(const KernelSpec& spec) {
  TEMPEST_REQUIRE(spec.space_order >= 2 && spec.space_order % 2 == 0);
  TEMPEST_REQUIRE(spec.tiles.valid());
  std::ostringstream os;
  os << "/* Generated by tempest::codegen — isotropic acoustic O(2,"
     << spec.space_order << "), "
     << (spec.wavefront ? "wave-front temporally blocked (Listing 6)"
                        : "space-blocked baseline")
     << " schedule, fused compressed source injection (Listing 5). */\n"
     << "#define MIN(a, b) ((a) < (b) ? (a) : (b))\n"
     << "#define MAX(a, b) ((a) > (b) ? (a) : (b))\n";

  emit_update_block(os, spec.space_order, spec.simd_width);
  emit_inject_block(os);

  os << "\nvoid " << spec.symbol()
     << R"((float* u0, float* u1, float* u2, const float* m,
            const float* damp, int nx, int ny, int nz, long sx, long sy,
            int t_begin, int t_end, float inv_h2, float idt2, float i2dt,
            float dt2, const int* cs_offsets, const int* cs_zid,
            const float* dcmp, int npts) {
  float* slots[3] = {u0, u1, u2};
)";
  if (spec.wavefront) {
    emit_wavefront_schedule(
        os, spec.tiles, stencil::radius_for_order(spec.space_order),
        "              update_block(un, uc, up, m, damp, sx, sy, xb, xe, yb, "
        "ye, 0,\n"
        "                           nz, inv_h2, idt2, i2dt);\n");
  } else {
    emit_spaceblocked_schedule(
        os, spec.tiles,
        "        update_block(un, uc, up, m, damp, sx, sy, xb, xe, yb, ye, 0, "
        "nz,\n"
        "                     inv_h2, idt2, i2dt);\n");
  }
  os << "}\n";
  return os.str();
}

namespace {

/// Render a typed update expression as a C float expression. Loads resolve
/// against the hoisted row pointers (`ucr` = t, `upr` = t-1), params against
/// `p<i>r`; constants are emitted as float literals of their real_t-rounded
/// value, so the compiled expression performs exactly the arithmetic the
/// DslKernel tape performs.
std::string render_expr(const dsl::ir::Expr& e,
                        const std::vector<std::string>& params) {
  using K = dsl::ir::Expr::Kind;
  switch (e.kind) {
    case K::Const:
      return flit(static_cast<double>(static_cast<float>(e.value)));
    case K::Load: {
      std::string idx = "z";
      if (e.dx != 0) idx += " + (" + std::to_string(e.dx) + ")*sx";
      if (e.dy != 0) idx += " + (" + std::to_string(e.dy) + ")*sy";
      if (e.dz != 0) idx += " + (" + std::to_string(e.dz) + ")";
      return (e.dt == 0 ? "ucr[" : "upr[") + idx + "]";
    }
    case K::Param: {
      for (std::size_t i = 0; i < params.size(); ++i) {
        if (params[i] == e.name) {
          return "p" + std::to_string(i) + "r[z]";
        }
      }
      TEMPEST_REQUIRE_MSG(false, "unbound parameter in update tree: " +
                                     e.name);
      return {};
    }
    case K::Binary:
      return "(" + render_expr(*e.a, params) + " " + e.op + " " +
             render_expr(*e.b, params) + ")";
  }
  TEMPEST_REQUIRE_MSG(false, "malformed update tree");
  return {};
}

/// The generic per-block stencil body: same loop skeleton and SIMD contract
/// as the acoustic template, update expression generated from the tree.
void emit_dsl_update_block(std::ostringstream& os,
                           const dsl::LoweredKernel& lowered,
                           int simd_width) {
  os << R"(
static void update_block(float* restrict un, const float* restrict uc,
                         const float* restrict up,
                         const float* const* restrict prm, long sx, long sy,
                         int x0, int x1, int y0, int y1, int z0, int z1) {
  for (int x = x0; x < x1; ++x) {
    for (int y = y0; y < y1; ++y) {
      const long row = (long)x * sx + (long)y * sy;
      float* restrict unr = un + row;
      const float* restrict ucr = uc + row;
      const float* restrict upr = up + row;
)";
  for (std::size_t i = 0; i < lowered.params.size(); ++i) {
    os << "      const float* restrict p" << i << "r = prm[" << i
       << "] + row;  /* " << lowered.params[i] << " */\n";
  }
  if (simd_width > 0) {
    os << "#pragma omp simd simdlen(" << simd_width << ")\n";
  } else {
    os << "#pragma omp simd\n";
  }
  os << "      for (int z = z0; z < z1; ++z) {\n"
     << "        unr[z] = " << render_expr(*lowered.update, lowered.params)
     << ";\n"
     << R"(      }
    }
  }
}
)";
}

}  // namespace

std::string emit_dsl_c(const dsl::LoweredKernel& lowered,
                       const KernelSpec& spec) {
  TEMPEST_REQUIRE(spec.space_order >= 2 && spec.space_order % 2 == 0);
  TEMPEST_REQUIRE(spec.tiles.valid());
  TEMPEST_REQUIRE_MSG(spec.space_order == lowered.space_order,
                      "spec space order must match the lowering");
  TEMPEST_REQUIRE_MSG(lowered.update != nullptr,
                      "lowered kernel has no update tree");
  std::ostringstream os;
  os << "/* Generated by tempest::codegen — DSL kernel \"" << lowered.name
     << "\" O(2," << lowered.space_order << "), "
     << (spec.wavefront ? "wave-front temporally blocked (Listing 6)"
                        : "space-blocked baseline")
     << " schedule, fused compressed source injection (Listing 5). */\n"
     << "#define MIN(a, b) ((a) < (b) ? (a) : (b))\n"
     << "#define MAX(a, b) ((a) > (b) ? (a) : (b))\n";

  emit_dsl_update_block(os, lowered, spec.simd_width);
  emit_inject_block(os);

  os << "\nvoid " << spec.symbol()
     << R"((float* u0, float* u1, float* u2, const float* m,
            const float* const* prm, int nx, int ny, int nz, long sx,
            long sy, int t_begin, int t_end, float dt2,
            const int* cs_offsets, const int* cs_zid, const float* dcmp,
            int npts) {
  float* slots[3] = {u0, u1, u2};
)";
  const std::string call =
      "              update_block(un, uc, up, prm, sx, sy, xb, xe, yb, ye, "
      "0, nz);\n";
  if (spec.wavefront) {
    emit_wavefront_schedule(os, spec.tiles, lowered.radius(), call);
  } else {
    emit_spaceblocked_schedule(
        os, spec.tiles,
        "        update_block(un, uc, up, prm, sx, sy, xb, xe, yb, ye, 0, "
        "nz);\n");
  }
  os << "}\n";
  return os.str();
}

}  // namespace tempest::codegen
