#pragma once

#include <string>

#include "tempest/core/wavefront.hpp"
#include "tempest/dsl/lower.hpp"

namespace tempest::codegen {

/// C code generation for the acoustic update — the Devito-style path: where
/// the physics/ kernels are ahead-of-time compiled C++, this module *emits*
/// a freestanding C translation unit from the problem parameters (space
/// order, schedule, tile shape), exactly like Devito's generated operators:
/// FD weights appear as literals, the sparse injection is the fused
/// compressed loop of Listing 5, and the wave-front schedule is the tiled
/// nest of Listing 6. jit.hpp compiles and loads the result at run time.
struct KernelSpec {
  int space_order = 4;
  bool wavefront = false;  ///< false = space-blocked baseline schedule
  core::TileSpec tiles{};
  /// Preferred SIMD lane count (floats) for the generated inner loop's
  /// `#pragma omp simd simdlen(...)` clause: 8 fills an AVX2 register,
  /// 16 an AVX-512 one (util::kAlignment / sizeof(float)). 0 emits a
  /// plain `omp simd` and lets the compiler pick. A hint, not an ABI
  /// change — every width computes identical results.
  int simd_width = 8;
  /// Kernel name baked into the emitted symbol. The hand-maintained
  /// acoustic emitter keeps the historical "acoustic" default; DSL-lowered
  /// kernels carry their LoweredKernel name so several generated modules
  /// can coexist in one process.
  std::string kernel = "acoustic";
  /// Timestep (ms) the compiled kernel will be driven at; 0 selects the
  /// model's critical dt. The JIT hosts prove this dt stable against the
  /// static von Neumann bound *before* paying for a compiler invocation —
  /// a statically diverging spec is a caller bug, not a toolchain failure,
  /// so it throws instead of taking the interpreter-fallback path.
  double dt = 0.0;

  /// Emitted entry point name.
  [[nodiscard]] std::string symbol() const {
    return "tempest_" + kernel + "_" +
           (wavefront ? "wavefront" : "spaceblocked") + "_so" +
           std::to_string(space_order);
  }
};

/// The C signature every generated kernel implements. u0/u1/u2 are the
/// interior origins of the three circular time slots (slot k holds
/// timestep t with t % 3 == k); cs_* are the CompressedSparse CSR arrays
/// (may be null when npts == 0).
inline constexpr const char* kSignatureDoc = R"(
void SYMBOL(float* u0, float* u1, float* u2,
            const float* m, const float* damp,
            int nx, int ny, int nz,
            long sx, long sy,
            int t_begin, int t_end,
            float inv_h2, float idt2, float i2dt, float dt2,
            const int* cs_offsets, const int* cs_z, const int* cs_id,
            const float* dcmp, int npts);
)";

/// Emit the full C translation unit for `spec`.
[[nodiscard]] std::string emit_acoustic_c(const KernelSpec& spec);

/// The C signature generated for DSL-lowered kernels. The per-point update
/// is baked in as a float expression (FD weights and equation constants as
/// literals, in the exact association the lowering produced, compiled with
/// -ffp-contract=off), so the only varying inputs are the coefficient grids:
/// prm[i] is the interior origin of lowered.params[i].
inline constexpr const char* kDslSignatureDoc = R"(
void SYMBOL(float* u0, float* u1, float* u2,
            const float* m, const float* const* prm,
            int nx, int ny, int nz,
            long sx, long sy,
            int t_begin, int t_end, float dt2,
            const int* cs_offsets, const int* cs_zid,
            const float* dcmp, int npts);
)";

/// Emit the full C translation unit for a DSL-lowered kernel: the same
/// schedule skeletons and fused compressed injection as the acoustic
/// emitter, with the update body generated from the typed expression tree
/// instead of the hand-maintained template. `spec.kernel` should be
/// `lowered.name`; `spec.space_order` must match the lowering.
[[nodiscard]] std::string emit_dsl_c(const dsl::LoweredKernel& lowered,
                                     const KernelSpec& spec);

}  // namespace tempest::codegen
