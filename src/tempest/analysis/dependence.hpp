#pragma once

// Dependence analysis over the extracted accesses: for every pair of
// statements under the time loop that touch the same field (at least one
// writing it), a flow/anti/output dependence edge with a (time, x, y, z)
// distance vector. Affine access pairs get exact interval distances; any
// pair involving a non-affine (star) access gets a conservative star
// distance — the "could be anywhere" edges that doom time tiling in the
// paper's Fig. 4b and that the precompute pipeline eliminates.

#include <string>
#include <vector>

#include "tempest/analysis/access.hpp"

namespace tempest::analysis {

enum class DepKind { Flow, Anti, Output };

[[nodiscard]] const char* to_string(DepKind k);

/// One dependence edge: statement `src` (the endpoint executing first)
/// must complete before `dst`. `dt` is the exact time distance in
/// time-loop iterations (always affine, >= 0); the spatial distances are
/// intervals or star.
struct Dependence {
  int src = 0;
  int dst = 0;
  DepKind kind = DepKind::Flow;
  std::string field;
  int dt = 0;
  Extent dx, dy, dz;

  /// Largest spatial distance along a named tiled dimension ("x" or "y");
  /// star extents have no bound.
  [[nodiscard]] const Extent& dist(const std::string& dim) const;

  [[nodiscard]] std::string str() const;
};

struct DependenceGraph {
  std::vector<Statement> stmts;
  std::vector<Dependence> deps;
};

/// Extract accesses and build the dependence graph of a lowered nest.
/// Statements outside the time loop (the precompute prologue) contribute
/// no edges: they execute once, before any tile, and are respected by
/// every schedule.
[[nodiscard]] DependenceGraph build_dependences(const dsl::ir::Node& root,
                                               const AccessSummary& kernel);

/// Golden-printable summary: the statement table followed by one line per
/// dependence edge (kind, statement pair, distance vector).
[[nodiscard]] std::string summary(const DependenceGraph& g);

}  // namespace tempest::analysis
