#include "tempest/analysis/access.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "tempest/util/error.hpp"

namespace tempest::analysis {

const char* to_string(AccessClass c) {
  switch (c) {
    case AccessClass::AffineStencil: return "affine-stencil";
    case AccessClass::MaskGuardedFused: return "mask-guarded-fused";
    case AccessClass::OffGridSparse: return "off-grid-sparse";
    case AccessClass::Precompute: return "precompute";
  }
  return "?";
}

int Extent::max_abs() const {
  TEMPEST_REQUIRE_MSG(!star, "max_abs() of a star extent");
  return std::max(std::abs(lo), std::abs(hi));
}

std::string Extent::str() const {
  if (star) return "*";
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + ".." + std::to_string(hi);
}

bool Access::dist_star_in(const std::string& dim) const {
  if (dim == "x") return dx.star;
  if (dim == "y") return dy.star;
  TEMPEST_REQUIRE_MSG(dim == "z", "unknown tiled dimension: " + dim);
  return dz.star;
}

std::string Access::str() const {
  std::ostringstream os;
  os << (is_write ? "W " : "R ") << field << "[t";
  if (time >= 0) os << '+';
  os << time;
  if (grid) os << ',' << dx.str() << ',' << dy.str() << ',' << dz.str();
  else os << ",.";
  os << ']';
  return os.str();
}

bool Statement::inside_loop(const std::string& dim) const {
  return std::find(loops.begin(), loops.end(), dim) != loops.end();
}

namespace {

/// Axis role of one index position of a field.
enum class Axis { Time, X, Y, Z, Pt };

/// Index signature of the arrays the lowering pipeline emits. Unknown
/// fields fall back on arity: 4 indices reads as a (t, x, y, z) grid
/// field, 2 as a (t, point) table.
struct FieldSig {
  std::vector<Axis> axes;
  bool grid = true;
};

FieldSig signature_for(const std::string& field, std::size_t arity,
                       const AccessSummary& kernel) {
  if (field == kernel.field || field == "u") {
    return {{Axis::Time, Axis::X, Axis::Y, Axis::Z}, true};
  }
  if (field == "rec" || field == "src_dcmp") {
    return {{Axis::Time, Axis::Pt}, false};
  }
  if (field == "w_dcmp") return {{Axis::Pt}, false};
  if (field == "SM" || field == "SID" || field == "RM" || field == "RID") {
    return {{Axis::X, Axis::Y, Axis::Z}, true};
  }
  if (field == "Sp_SID" || field == "Sp_RID") {
    // Packed per-column tables: affine in (x, y), packed along z.
    return {{Axis::X, Axis::Y, Axis::Pt}, true};
  }
  if (arity == 4) return {{Axis::Time, Axis::X, Axis::Y, Axis::Z}, true};
  if (arity == 2) return {{Axis::Time, Axis::Pt}, false};
  return {std::vector<Axis>(arity, Axis::Pt), false};
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string strip(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c != ' ') out.push_back(c);
  }
  return out;
}

/// Split bracket content on top-level commas (nested [..] / (..) ignored).
std::vector<std::string> split_indices(const std::string& inner) {
  std::vector<std::string> parts;
  int depth = 0;
  std::string cur;
  for (char c : inner) {
    if (c == '[' || c == '(') ++depth;
    if (c == ']' || c == ')') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(cur);
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  parts.push_back(cur);
  return parts;
}

/// Parse one index expression against the enclosing loop dims: `v` or
/// `v+k` / `v-k` with `v` an enclosing loop variable is affine with offset
/// ±k; anything else (coordinate variables like `xs`, nested indirection
/// like `SID[x,y,z]`) is star.
Extent classify_index(const std::string& raw,
                      const std::vector<std::string>& loops) {
  const std::string e = strip(raw);
  if (e.empty()) return Extent::unknown();
  if (e.find('[') != std::string::npos) return Extent::unknown();
  std::size_t i = 0;
  while (i < e.size() && ident_char(e[i])) ++i;
  const std::string var = e.substr(0, i);
  if (std::find(loops.begin(), loops.end(), var) == loops.end()) {
    return Extent::unknown();
  }
  if (i == e.size()) return Extent::affine(0);
  if ((e[i] == '+' || e[i] == '-') && i + 1 < e.size()) {
    const std::string rest = e.substr(i + 1);
    if (std::all_of(rest.begin(), rest.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c)) != 0;
        })) {
      const int k = std::stoi(rest);
      return Extent::affine(e[i] == '+' ? k : -k);
    }
  }
  return Extent::unknown();
}

/// Parse every `field[i0, i1, ...]` occurrence of a statement's pseudocode.
/// The access left of the (first, top-level) assignment operator is the
/// write; `+=` makes it a read as well.
std::vector<Access> parse_accesses(const std::string& text,
                                   const std::vector<std::string>& loops,
                                   const AccessSummary& kernel) {
  // Locate the assignment operator ('+=' or a single '=' that is not part
  // of '==') outside any bracket.
  std::size_t assign = std::string::npos;
  bool accumulate = false;
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '[' || c == '(') ++depth;
    if (c == ']' || c == ')') --depth;
    if (depth != 0 || c != '=') continue;
    if (i + 1 < text.size() && text[i + 1] == '=') continue;
    if (i > 0 && (text[i - 1] == '=' || text[i - 1] == '!' ||
                  text[i - 1] == '<' || text[i - 1] == '>')) {
      continue;
    }
    assign = i;
    accumulate = i > 0 && text[i - 1] == '+';
    break;
  }

  std::vector<Access> out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '[') continue;
    // Identifier immediately before the bracket.
    std::size_t b = i;
    while (b > 0 && ident_char(text[b - 1])) --b;
    if (b == i) continue;
    const std::string field = text.substr(b, i - b);
    // Matching close bracket.
    int d = 0;
    std::size_t j = i;
    for (; j < text.size(); ++j) {
      if (text[j] == '[') ++d;
      if (text[j] == ']' && --d == 0) break;
    }
    if (j == text.size()) continue;
    const auto indices = split_indices(text.substr(i + 1, j - i - 1));
    const FieldSig sig = signature_for(field, indices.size(), kernel);

    Access a;
    a.field = field;
    a.grid = sig.grid;
    a.dx = a.dy = a.dz = Extent::affine(0);
    for (std::size_t k = 0; k < indices.size() && k < sig.axes.size(); ++k) {
      const Extent ext = classify_index(indices[k], loops);
      switch (sig.axes[k]) {
        case Axis::Time:
          // Time indexing is affine in every nest the pipeline emits.
          a.time = ext.star ? 0 : ext.lo;
          break;
        case Axis::X: a.dx = ext; break;
        case Axis::Y: a.dy = ext; break;
        case Axis::Z: a.dz = ext; break;
        case Axis::Pt: break;  // point axes are never tiled
      }
    }
    const bool lhs = assign != std::string::npos && b < assign;
    if (lhs) {
      a.is_write = true;
      out.push_back(a);
      if (accumulate) {
        a.is_write = false;
        out.push_back(a);  // '+=' also reads the target location
      }
    } else {
      a.is_write = false;
      out.push_back(a);
    }
  }
  return out;
}

/// Expand the opaque stencil call from the kernel's declared summary: one
/// write of field[t+1] at the point, a ±radius read of field[t + k0], and
/// centre reads of the deeper history slices.
std::vector<Access> stencil_accesses(const AccessSummary& k) {
  std::vector<Access> out;
  Access w;
  w.field = k.field;
  w.is_write = true;
  w.time = 1;
  w.dx = w.dy = w.dz = Extent::affine(0);
  out.push_back(w);
  for (std::size_t i = 0; i < k.time_reads.size(); ++i) {
    Access r;
    r.field = k.field;
    r.time = k.time_reads[i];
    if (i == 0) {
      r.dx = r.dy = r.dz = Extent::range(-k.radius, k.radius);
    } else {
      r.dx = r.dy = r.dz = Extent::affine(0);
    }
    out.push_back(r);
  }
  return out;
}

AccessClass classify_statement(const std::string& tag,
                               const std::vector<Access>& accesses) {
  if (tag == "precompute") return AccessClass::Precompute;
  if (tag == "stencil") return AccessClass::AffineStencil;
  if (tag == "inject" || tag == "interp") return AccessClass::OffGridSparse;
  if (tag == "inject-fused" || tag == "interp-fused") {
    return AccessClass::MaskGuardedFused;
  }
  for (const Access& a : accesses) {
    if (a.dx.star || a.dy.star) return AccessClass::OffGridSparse;
  }
  for (const Access& a : accesses) {
    if (a.dz.star) return AccessClass::MaskGuardedFused;
  }
  return AccessClass::AffineStencil;
}

void walk(const dsl::ir::Node& node, std::vector<std::string>& loops,
          const AccessSummary& kernel, std::vector<Statement>& out) {
  if (node.kind == dsl::ir::Node::Kind::Loop) {
    const bool named = !node.dim.empty() && node.dim != "<prologue>";
    if (named) loops.push_back(node.dim);
    for (const auto& child : node.body) walk(child, loops, kernel, out);
    if (named) loops.pop_back();
    return;
  }
  Statement s;
  s.id = static_cast<int>(out.size());
  s.text = node.text;
  s.tag = node.tag;
  s.loops = loops;
  s.under_time_loop = s.inside_loop("t");
  s.accesses = node.tag == "stencil"
                   ? stencil_accesses(kernel)
                   : parse_accesses(node.text, loops, kernel);
  s.cls = classify_statement(node.tag, s.accesses);
  out.push_back(std::move(s));
}

}  // namespace

std::vector<Statement> extract_accesses(const dsl::ir::Node& root,
                                        const AccessSummary& kernel) {
  std::vector<Statement> out;
  std::vector<std::string> loops;
  walk(root, loops, kernel, out);
  return out;
}

std::string print_accesses(const std::vector<Statement>& stmts) {
  std::ostringstream os;
  for (const Statement& s : stmts) {
    os << 'S' << s.id << ' ' << s.tag << ' ' << to_string(s.cls) << " (";
    for (std::size_t i = 0; i < s.loops.size(); ++i) {
      if (i > 0) os << ' ';
      os << s.loops[i];
    }
    os << ')';
    for (const Access& a : s.accesses) os << " " << a.str() << ';';
    os << '\n';
  }
  return os.str();
}

}  // namespace tempest::analysis
