#include "tempest/analysis/access.hpp"

#include <algorithm>
#include <sstream>

#include "tempest/util/error.hpp"

namespace tempest::analysis {

const char* to_string(AccessClass c) {
  switch (c) {
    case AccessClass::AffineStencil: return "affine-stencil";
    case AccessClass::MaskGuardedFused: return "mask-guarded-fused";
    case AccessClass::OffGridSparse: return "off-grid-sparse";
    case AccessClass::Precompute: return "precompute";
  }
  return "?";
}

int Extent::max_abs() const {
  TEMPEST_REQUIRE_MSG(!star, "max_abs() of a star extent");
  return std::max(std::abs(lo), std::abs(hi));
}

std::string Extent::str() const {
  if (star) return "*";
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + ".." + std::to_string(hi);
}

bool Access::dist_star_in(const std::string& dim) const {
  if (dim == "x") return dx.star;
  if (dim == "y") return dy.star;
  TEMPEST_REQUIRE_MSG(dim == "z", "unknown tiled dimension: " + dim);
  return dz.star;
}

std::string Access::str() const {
  std::ostringstream os;
  os << (is_write ? "W " : "R ") << field << "[t";
  if (time >= 0) os << '+';
  os << time;
  if (grid) os << ',' << dx.str() << ',' << dy.str() << ',' << dz.str();
  else os << ",.";
  os << ']';
  return os.str();
}

bool Statement::inside_loop(const std::string& dim) const {
  return std::find(loops.begin(), loops.end(), dim) != loops.end();
}

namespace {

/// Convert the typed subscript carried by the IR into the analyzer's
/// extent form (same taxonomy: affine interval or star).
Extent extent_of(const dsl::ir::Subscript& s) {
  if (s.star) return Extent::unknown();
  return Extent::range(s.lo, s.hi);
}

/// Structural extraction: the statement already carries its typed access
/// list (attached when the lowering pass built it); translate 1:1,
/// preserving order — dependence discovery order, and therefore the golden
/// diagnostics, follow the statement's textual access order.
std::vector<Access> typed_accesses(const dsl::ir::Node& node) {
  std::vector<Access> out;
  out.reserve(node.accesses.size());
  for (const dsl::ir::Access& ia : node.accesses) {
    Access a;
    a.field = ia.field;
    a.is_write = ia.is_write;
    a.time = ia.time;
    a.grid = ia.grid;
    a.dx = extent_of(ia.x);
    a.dy = extent_of(ia.y);
    a.dz = extent_of(ia.z);
    out.push_back(std::move(a));
  }
  return out;
}

/// Expand the opaque stencil call from the kernel's declared summary: one
/// write of field[t+1] at the point, a ±radius read of field[t + k0], and
/// centre reads of the deeper history slices.
std::vector<Access> stencil_accesses(const AccessSummary& k) {
  std::vector<Access> out;
  Access w;
  w.field = k.field;
  w.is_write = true;
  w.time = 1;
  w.dx = w.dy = w.dz = Extent::affine(0);
  out.push_back(w);
  for (std::size_t i = 0; i < k.time_reads.size(); ++i) {
    Access r;
    r.field = k.field;
    r.time = k.time_reads[i];
    if (i == 0) {
      r.dx = r.dy = r.dz = Extent::range(-k.radius, k.radius);
    } else {
      r.dx = r.dy = r.dz = Extent::affine(0);
    }
    out.push_back(r);
  }
  return out;
}

AccessClass classify_statement(const std::string& tag,
                               const std::vector<Access>& accesses) {
  if (tag == "precompute") return AccessClass::Precompute;
  if (tag == "stencil") return AccessClass::AffineStencil;
  if (tag == "inject" || tag == "interp") return AccessClass::OffGridSparse;
  if (tag == "inject-fused" || tag == "interp-fused") {
    return AccessClass::MaskGuardedFused;
  }
  for (const Access& a : accesses) {
    if (a.dx.star || a.dy.star) return AccessClass::OffGridSparse;
  }
  for (const Access& a : accesses) {
    if (a.dz.star) return AccessClass::MaskGuardedFused;
  }
  return AccessClass::AffineStencil;
}

void walk(const dsl::ir::Node& node, std::vector<std::string>& loops,
          const AccessSummary& kernel, std::vector<Statement>& out) {
  if (node.kind == dsl::ir::Node::Kind::Loop) {
    const bool named = !node.dim.empty() && node.dim != "<prologue>";
    if (named) loops.push_back(node.dim);
    for (const auto& child : node.body) walk(child, loops, kernel, out);
    if (named) loops.pop_back();
    return;
  }
  Statement s;
  s.id = static_cast<int>(out.size());
  s.text = node.text;
  s.tag = node.tag;
  s.loops = loops;
  s.under_time_loop = s.inside_loop("t");
  // Opaque stencil calls (no typed list attached) expand from the kernel's
  // declared summary; every other statement carries its accesses
  // structurally. DSL-lowered stencil statements attach their own exact
  // footprint and bypass the summary.
  s.accesses = node.tag == "stencil" && node.accesses.empty()
                   ? stencil_accesses(kernel)
                   : typed_accesses(node);
  s.cls = classify_statement(node.tag, s.accesses);
  out.push_back(std::move(s));
}

}  // namespace

std::vector<Statement> extract_accesses(const dsl::ir::Node& root,
                                        const AccessSummary& kernel) {
  std::vector<Statement> out;
  std::vector<std::string> loops;
  walk(root, loops, kernel, out);
  return out;
}

std::string print_accesses(const std::vector<Statement>& stmts) {
  std::ostringstream os;
  for (const Statement& s : stmts) {
    os << 'S' << s.id << ' ' << s.tag << ' ' << to_string(s.cls) << " (";
    for (std::size_t i = 0; i < s.loops.size(); ++i) {
      if (i > 0) os << ' ';
      os << s.loops[i];
    }
    os << ')';
    for (const Access& a : s.accesses) os << " " << a.str() << ';';
    os << '\n';
  }
  return os.str();
}

}  // namespace tempest::analysis
