#pragma once

// Schedule-legality verification: the paper's Section II.A argument as a
// machine-checked pass. Given a lowered nest's dependence graph and a
// proposed space-time tiling, every dependence edge is tested against the
// tile geometry:
//
//  * a statement inside the time loop that cannot be assigned to a space
//    tile (it has no x/y loops, or its accesses have star extents in a
//    tiled dimension) makes the schedule illegal ("not-tileable") — the
//    stage-0 off-the-grid source/receiver loops;
//  * a dependence carried within a time band (0 < dt < tile_t) must have a
//    bounded spatial distance no larger than slope * dt in every tiled
//    dimension — star distances ("unbounded-distance") and affine
//    distances beyond the skew ("slope-exceeded") are violations;
//  * dependences spanning at least tile_t timesteps cross a band barrier
//    and are respected by construction, as are all dependences under the
//    barrier schedules (Reference, SpaceBlocked).
//
// The paper's Fig. 4b is then a theorem the verifier proves per operator:
// the naive nest with sparse operators is rejected for every temporal
// blocking family, and the precomputed/fused nest is accepted.

#include <string>
#include <vector>

#include "tempest/analysis/dependence.hpp"
#include "tempest/util/error.hpp"

namespace tempest::analysis {

/// The schedule families the verifier reasons about. Fused is wavefront
/// with tile_t = 1 (a per-timestep sweep that still needs every statement
/// tileable over x/y); Diamond tiles time and x, blocking y spatially
/// inside each band.
enum class SchedKind { Reference, SpaceBlocked, Wavefront, Fused, Diamond };

[[nodiscard]] const char* to_string(SchedKind k);

/// A proposed space-time tiling: the family, the skew slope in grid points
/// per time-loop iteration, and the band height in timesteps.
struct ScheduleDescriptor {
  SchedKind kind = SchedKind::Reference;
  int slope = 1;
  int tile_t = 1;

  [[nodiscard]] static ScheduleDescriptor reference();
  [[nodiscard]] static ScheduleDescriptor space_blocked();
  [[nodiscard]] static ScheduleDescriptor wavefront(int slope, int tile_t = 8);
  [[nodiscard]] static ScheduleDescriptor fused(int slope);
  [[nodiscard]] static ScheduleDescriptor diamond(int slope, int height = 8);

  [[nodiscard]] bool time_tiled() const {
    return kind == SchedKind::Wavefront || kind == SchedKind::Fused ||
           kind == SchedKind::Diamond;
  }

  /// Spatial dimensions the family tiles (z is never tiled — it is the
  /// contiguous SIMD dimension).
  [[nodiscard]] std::vector<std::string> tiled_dims() const;

  [[nodiscard]] std::string str() const;
};

/// One structured finding of the verifier. Errors make the schedule
/// illegal; Notes record accepted-but-noteworthy facts (e.g. a dependence
/// respected only by the band barrier).
struct Diagnostic {
  enum class Severity { Error, Note };

  Severity severity = Severity::Error;
  std::string code;   ///< "not-tileable" | "unbounded-distance" |
                      ///< "slope-exceeded" | "same-time-cross-tile"
  int src = -1;       ///< violating statement (source endpoint)
  int dst = -1;       ///< sink endpoint; -1 for per-statement findings
  DepKind kind = DepKind::Flow;  ///< meaningful when dst >= 0
  std::string field;
  std::string message;  ///< names the pair, the distance and the geometry

  [[nodiscard]] std::string str() const;
};

/// The verifier's verdict for one (nest, schedule) pair.
struct LegalityReport {
  ScheduleDescriptor schedule;
  int statements_checked = 0;
  int dependences_checked = 0;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool legal() const;
  [[nodiscard]] int errors() const;
  [[nodiscard]] std::string str() const;
};

/// Thrown when a gate (operator build, JIT pre-compile, executor debug
/// assertion) encounters an illegal schedule; carries the full report.
class ScheduleLegalityError : public util::PreconditionError {
 public:
  explicit ScheduleLegalityError(LegalityReport report);
  [[nodiscard]] const LegalityReport& report() const { return report_; }

 private:
  LegalityReport report_;
};

/// Verify a dependence graph against a proposed schedule.
[[nodiscard]] LegalityReport verify(const DependenceGraph& g,
                                    const ScheduleDescriptor& sched);

/// Extract + build + verify a lowered nest in one call.
[[nodiscard]] LegalityReport verify_nest(const dsl::ir::Node& root,
                                         const AccessSummary& kernel,
                                         const ScheduleDescriptor& sched);

/// Build the canonical nest at a lowering stage (0 = Listing 1 naive,
/// 1 = precomputed+fused, 2 = compressed; see dsl::passes) and return its
/// raw dependence graph. Consumers that need the distance vectors
/// themselves — engine::TileGraph derives inter-tile task edges from them —
/// share the exact nest the verifier checks.
[[nodiscard]] DependenceGraph canonical_dependences(const AccessSummary& kernel,
                                                    int stage, bool sources,
                                                    bool receivers);

/// Build the canonical nest at a lowering stage (0 = Listing 1 naive,
/// 1 = precomputed+fused, 2 = compressed; see dsl::passes) for a kernel
/// summary and verify it. This is what the execution-side gates call: the
/// fused executor implements exactly the stage-2 nest.
[[nodiscard]] LegalityReport verify_canonical(const AccessSummary& kernel,
                                              int stage, bool sources,
                                              bool receivers,
                                              const ScheduleDescriptor& sched);

/// Throw ScheduleLegalityError when the report is not legal.
void require_legal(const LegalityReport& report);

}  // namespace tempest::analysis
