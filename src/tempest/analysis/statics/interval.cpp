#include "tempest/analysis/statics/interval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace tempest::analysis::statics {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Endpoint product with the interval-arithmetic convention 0 * inf = 0:
/// a zero endpoint means the factor is exactly zero there, so the product
/// endpoint is zero regardless of the other factor's magnitude.
double end_mul(double a, double b) {
  if (a == 0.0 || b == 0.0) return 0.0;
  return a * b;
}

}  // namespace

Interval::Interval() : lo(-kInf), hi(kInf) {}

Interval::Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {
  if (!(lo <= hi)) {  // NaN endpoints collapse to top as well
    lo = -kInf;
    hi = kInf;
  }
}

bool Interval::bounded() const { return std::isfinite(lo) && std::isfinite(hi); }

bool Interval::is_point() const { return bounded() && lo == hi; }

double Interval::mag() const { return std::max(std::fabs(lo), std::fabs(hi)); }

std::string Interval::str() const {
  std::ostringstream os;
  os << "[" << lo << ", " << hi << "]";
  return os.str();
}

Interval operator+(const Interval& a, const Interval& b) {
  // Opposite-infinity endpoints cannot meet: lo endpoints are never +inf
  // and hi endpoints never -inf by construction.
  return {a.lo + b.lo, a.hi + b.hi};
}

Interval operator-(const Interval& a, const Interval& b) {
  return {a.lo - b.hi, a.hi - b.lo};
}

Interval operator*(const Interval& a, const Interval& b) {
  const double c[4] = {end_mul(a.lo, b.lo), end_mul(a.lo, b.hi),
                       end_mul(a.hi, b.lo), end_mul(a.hi, b.hi)};
  return {std::min({c[0], c[1], c[2], c[3]}),
          std::max({c[0], c[1], c[2], c[3]})};
}

Interval operator/(const Interval& a, const Interval& b) {
  if (b.contains(0.0)) return Interval::top();
  if (!b.bounded()) {
    // A sign-definite divisor reaching infinity: quotients shrink toward
    // zero but 1/b still spans down to 0, so only magnitude is bounded.
    const double m = a.mag();
    if (!std::isfinite(m)) return Interval::top();
    return {-m, m};
  }
  const double c[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
  return {std::min({c[0], c[1], c[2], c[3]}),
          std::max({c[0], c[1], c[2], c[3]})};
}

Interval hull(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

BoundEnv conventional_bounds(const std::string& field, double vp_lo,
                             double vp_hi, double amp) {
  BoundEnv env;
  env[field] = Interval{-amp, amp};
  env["vp"] = Interval{vp_lo, vp_hi};
  // Slowness-squared m = 1/vp^2, monotone decreasing in vp.
  env["m"] = Interval{1.0 / (vp_hi * vp_hi), 1.0 / (vp_lo * vp_lo)};
  // Sponge/damping profiles are non-negative and normalised (see
  // physics::make_sponge_profile): zero in the interior, peak at the edge.
  env["damp"] = Interval{0.0, 1.0};
  env["eta"] = Interval{0.0, 1.0};
  return env;
}

bool IntervalReport::clean() const {
  return std::none_of(diagnostics.begin(), diagnostics.end(),
                      [](const Diagnostic& d) {
                        return d.severity == Diagnostic::Severity::Error;
                      });
}

std::string IntervalReport::str() const {
  std::ostringstream os;
  os << "intervals: update in " << value.str() << ", " << foldable_subtrees
     << " foldable subtree(s) (" << foldable_ops << " ops), "
     << unbounded_inputs << " unbounded input(s)";
  for (const Diagnostic& d : diagnostics) os << "\n  " << d.str();
  return os.str();
}

namespace {

void append_offset(std::ostringstream& os, char dim, int off, bool* any) {
  if (off == 0) return;
  os << (*any ? "," : "[") << dim << (off > 0 ? "+" : "") << off;
  *any = true;
}

std::string const_str(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string expr_str(const dsl::ir::Expr& e) {
  using Kind = dsl::ir::Expr::Kind;
  switch (e.kind) {
    case Kind::Const: return const_str(e.value);
    case Kind::Param: return e.name;
    case Kind::Load: {
      std::ostringstream os;
      os << e.name << "[t";
      if (e.dt != 0) os << (e.dt > 0 ? "+" : "") << e.dt;
      os << "]";
      bool any = false;
      append_offset(os, 'x', e.dx, &any);
      append_offset(os, 'y', e.dy, &any);
      append_offset(os, 'z', e.dz, &any);
      if (any) os << "]";
      return os.str();
    }
    case Kind::Binary: {
      std::ostringstream os;
      os << "(" << expr_str(*e.a) << " " << e.op << " " << expr_str(*e.b)
         << ")";
      return os.str();
    }
  }
  return "?";
}

namespace {

/// Shared walk state for interpret(): diagnostics are appended in the
/// evaluation order of the tree (left-to-right postorder), so goldens are
/// deterministic.
struct Walk {
  const BoundEnv& env;
  IntervalReport& report;
  std::vector<std::string> unknown;  ///< names already reported as unbounded

  Diagnostic note(std::string code, std::string message) {
    Diagnostic d;
    d.severity = Diagnostic::Severity::Note;
    d.code = std::move(code);
    d.message = std::move(message);
    return d;
  }

  Diagnostic error(std::string code, std::string message) {
    Diagnostic d;
    d.severity = Diagnostic::Severity::Error;
    d.code = std::move(code);
    d.message = std::move(message);
    return d;
  }

  Interval lookup(const dsl::ir::Expr& e, const char* what) {
    const auto it = env.find(e.name);
    if (it != env.end()) return it->second;
    if (std::find(unknown.begin(), unknown.end(), e.name) == unknown.end()) {
      unknown.push_back(e.name);
      ++report.unbounded_inputs;
      report.diagnostics.push_back(note(
          "unbounded-input", std::string(what) + " '" + e.name +
                                 "' has no declared bound; assuming "
                                 "[-inf, +inf]"));
    }
    return Interval::top();
  }

  /// Returns the interval and whether the subtree is a compile-time
  /// constant. Maximal constant subtrees with at least one operation are
  /// reported as folding lint by the *parent* (or by interpret() for the
  /// root), so nested constants are counted once.
  struct Val {
    Interval iv;
    bool is_const = false;
    int ops = 0;  ///< binary ops in the subtree (for fold statistics)
  };

  void report_fold(const dsl::ir::Expr& e, const Val& v) {
    if (!v.is_const || v.ops == 0) return;
    ++report.foldable_subtrees;
    report.foldable_ops += v.ops;
    report.diagnostics.push_back(
        note("const-foldable",
             "subexpression " + expr_str(e) + " always evaluates to " +
                 const_str(v.iv.lo) + " (" + std::to_string(v.ops) +
                 " op(s) re-evaluated per grid point)"));
  }

  Val visit(const dsl::ir::Expr& e) {
    using Kind = dsl::ir::Expr::Kind;
    switch (e.kind) {
      case Kind::Const: return {Interval::point(e.value), true, 0};
      case Kind::Load: return {lookup(e, "field"), false, 0};
      case Kind::Param: return {lookup(e, "param"), false, 0};
      case Kind::Binary: break;
    }
    const Val a = visit(*e.a);
    const Val b = visit(*e.b);
    Val out;
    out.ops = a.ops + b.ops + 1;
    out.is_const = a.is_const && b.is_const;
    switch (e.op) {
      case '+': out.iv = a.iv + b.iv; break;
      case '-': out.iv = a.iv - b.iv; break;
      case '*': out.iv = a.iv * b.iv; break;
      case '/':
        if (b.iv.contains(0.0)) {
          report.diagnostics.push_back(error(
              "possible-div-by-zero",
              "divisor " + expr_str(*e.b) + " spans " + b.iv.str() +
                  ", which contains zero; the quotient cannot be bounded"));
          out.is_const = false;
        }
        out.iv = a.iv / b.iv;
        break;
      default: out.iv = Interval::top(); break;
    }
    // A constant child under a non-constant parent is a maximal foldable
    // subtree; report it here so it is counted exactly once.
    if (!out.is_const) {
      if (a.is_const) report_fold(*e.a, a);
      if (b.is_const) report_fold(*e.b, b);
    }
    return out;
  }
};

}  // namespace

Interval eval(const dsl::ir::Expr& e, const BoundEnv& env) {
  IntervalReport scratch;
  Walk w{env, scratch, {}};
  return w.visit(e).iv;
}

IntervalReport interpret(const dsl::LoweredKernel& kernel,
                         const BoundEnv& env) {
  IntervalReport report;
  if (!kernel.update) {
    Walk w{env, report, {}};
    report.diagnostics.push_back(
        w.error("empty-update", "lowered kernel '" + kernel.name +
                                    "' carries no update expression"));
    return report;
  }
  Walk w{env, report, {}};
  const Walk::Val root = w.visit(*kernel.update);
  w.report_fold(*kernel.update, root);
  report.value = root.iv;
  const bool divergent = !report.clean();
  if (!root.iv.bounded() && !divergent && report.unbounded_inputs == 0) {
    report.diagnostics.push_back(w.error(
        "unbounded-update",
        "update interval " + root.iv.str() +
            " has no finite bound although every input is bounded"));
  } else if (!root.iv.bounded() && !divergent) {
    report.diagnostics.push_back(w.error(
        "unbounded-update",
        "update interval " + root.iv.str() +
            " is unbounded (driven by the undeclared input bounds above)"));
  }
  return report;
}

}  // namespace tempest::analysis::statics
