#include "tempest/analysis/statics/interference.hpp"

#include <algorithm>
#include <sstream>

namespace tempest::analysis::statics {

namespace {

/// One concrete footprint box: a circular-buffer slot and an x/y range
/// (z is never tiled, so it never separates tasks and is omitted).
struct Box {
  int slot = 0;
  int x0 = 0, x1 = 0;  ///< [x0, x1)
  int y0 = 0, y1 = 0;
  int t = 0;        ///< substep, for diagnostics
  bool read = false;

  [[nodiscard]] bool overlaps(const Box& o) const {
    return slot == o.slot && x0 < o.x1 && o.x0 < x1 && y0 < o.y1 &&
           o.y0 < y1;
  }

  [[nodiscard]] std::string str() const {
    std::ostringstream os;
    os << (read ? "reads" : "writes") << " slot " << slot << " x[" << x0
       << "," << x1 << ") y[" << y0 << "," << y1 << ") at substep t=" << t;
    return os.str();
  }
};

/// One task of the probed band with its enumerated footprints. `i`/`j`
/// are lattice indices for the staircase order; diamond tasks use `i` as
/// the period index and `diamond_kind` to tell peaks from valleys.
struct Task {
  std::string label;
  int i = 0, j = 0;
  int diamond_kind = 0;  ///< 0 = lattice tile, 1 = peak, 2 = valley
  std::vector<Box> writes;
  std::vector<Box> reads;
};

struct Geometry {
  const TileModel& m;
  int slots;

  explicit Geometry(const TileModel& model) : m(model) {
    const std::vector<int>& reads =
        m.time_reads.empty() ? std::vector<int>{0} : m.time_reads;
    int lo = m.write_dt;
    int hi = m.write_dt;
    for (int k : reads) {
      lo = std::min(lo, k);
      hi = std::max(hi, k);
    }
    slots = hi - lo + 1;
  }

  [[nodiscard]] int slot(int t) const {
    return ((t % slots) + slots) % slots;
  }

  /// Append the substep's boxes for a clamped compute rect: the write at
  /// slot t+write_dt over the rect, the stencil reads over the rect grown
  /// by the halo radius, and (with receivers) the fused gather's in-rect
  /// read of the freshly written slice.
  void emit(Task& task, int t, int x0, int x1, int y0, int y1) const {
    if (x0 >= x1 || y0 >= y1) return;
    task.writes.push_back(
        {slot(t + m.write_dt), x0, x1, y0, y1, t, false});
    for (int k : m.time_reads) {
      task.reads.push_back({slot(t + k), x0 - m.radius, x1 + m.radius,
                            y0 - m.radius, y1 + m.radius, t, true});
    }
    if (m.receivers) {
      task.reads.push_back({slot(t + m.write_dt), x0, x1, y0, y1, t, true});
    }
  }
};

int clamp_lo(int v) { return std::max(v, 0); }

/// The lattice tasks of one wavefront/fused band (band start tt = 0: the
/// geometry is translation-invariant in the band start modulo `slots`, so
/// the first band is representative). Mirrors run_wavefront_tasks.
std::vector<Task> wavefront_tasks(const Geometry& g, int tile_t) {
  const TileModel& m = g.m;
  const int slope = m.schedule.slope;
  const int ni = std::min(
      m.max_tiles,
      (m.nx + slope * (tile_t - 1) + m.tile_x - 1) / m.tile_x);
  const int nj = std::min(
      m.max_tiles,
      (m.ny + slope * (tile_t - 1) + m.tile_y - 1) / m.tile_y);
  std::vector<Task> tasks;
  for (int i = 0; i < ni; ++i) {
    for (int j = 0; j < nj; ++j) {
      Task task;
      task.i = i;
      task.j = j;
      task.label =
          "tile(" + std::to_string(i) + "," + std::to_string(j) + ")";
      for (int t = 0; t < tile_t; ++t) {
        const int xs = i * m.tile_x - slope * t;
        const int ys = j * m.tile_y - slope * t;
        g.emit(task, t, clamp_lo(xs), std::min(xs + m.tile_x, m.nx),
               clamp_lo(ys), std::min(ys + m.tile_y, m.ny));
      }
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

/// The block tasks of one space-blocked substep: every block unordered,
/// one substep per barrier.
std::vector<Task> space_blocked_tasks(const Geometry& g) {
  const TileModel& m = g.m;
  const int ni = std::min(m.max_tiles, (m.nx + m.tile_x - 1) / m.tile_x);
  const int nj = std::min(m.max_tiles, (m.ny + m.tile_y - 1) / m.tile_y);
  std::vector<Task> tasks;
  for (int i = 0; i < ni; ++i) {
    for (int j = 0; j < nj; ++j) {
      Task task;
      task.i = i;
      task.j = j;
      task.label =
          "block(" + std::to_string(i) + "," + std::to_string(j) + ")";
      g.emit(task, 0, i * m.tile_x, std::min((i + 1) * m.tile_x, m.nx),
             j * m.tile_y, std::min((j + 1) * m.tile_y, m.ny));
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

/// The peak/valley tasks of one diamond band. Mirrors run_diamond_tasks:
/// width = max(tile_x, 2*slope*height), peak bases at -W + k*W.
std::vector<Task> diamond_tasks(const Geometry& g, int height) {
  const TileModel& m = g.m;
  const int slope = m.schedule.slope;
  const int w = std::max(m.tile_x, 2 * slope * height);
  const int total = (m.nx + 3 * w - 1) / w;  // bases -W, 0, W, ... < nx+W
  const int periods = std::min(total, std::max(3, m.max_tiles));
  std::vector<Task> tasks;
  for (int k = 0; k < periods; ++k) {
    const int base = -w + k * w;
    Task peak;
    peak.i = k;
    peak.diamond_kind = 1;
    peak.label = "peak(" + std::to_string(k) + ")";
    for (int t = 0; t < height; ++t) {
      const int shrink = slope * t;
      g.emit(peak, t, clamp_lo(base + shrink),
             std::min(base + w - shrink, m.nx), 0, m.ny);
    }
    tasks.push_back(std::move(peak));
  }
  for (int k = 0; k < periods; ++k) {
    const int base = -w + k * w;
    Task valley;
    valley.i = k;
    valley.diamond_kind = 2;
    valley.label = "valley(" + std::to_string(k) + ")";
    for (int t = 1; t < height; ++t) {  // zero-width at the band start
      const int grow = slope * t;
      g.emit(valley, t, clamp_lo(base + w - grow),
             std::min(base + w + grow, m.nx), 0, m.ny);
    }
    tasks.push_back(std::move(valley));
  }
  return tasks;
}

/// Is there a path a -> b or b -> a in the band DAG?
bool ordered(const SchedKind kind, const Task& a, const Task& b) {
  if (kind == SchedKind::Wavefront || kind == SchedKind::Fused) {
    // Staircase generating set {(i-1,j), (i,j-1)}: reachability is the
    // componentwise partial order (see core::TileGraph::band_dag).
    return (a.i <= b.i && a.j <= b.j) || (b.i <= a.i && b.j <= a.j);
  }
  if (kind == SchedKind::Diamond) {
    // Valley k waits for peaks k and k+1; no other edges exist.
    const Task& peak = a.diamond_kind == 1 ? a : b;
    const Task& valley = a.diamond_kind == 2 ? a : b;
    if (peak.diamond_kind != 1 || valley.diamond_kind != 2) return false;
    return peak.i == valley.i || peak.i == valley.i + 1;
  }
  return true;  // Reference: a single serial task
}

Diagnostic conflict_diag(const ScheduleDescriptor& sched, const Task& a,
                         const Box& wa, const Task& b, const Box& fb) {
  Diagnostic d;
  d.severity = Diagnostic::Severity::Error;
  d.code = "tile-interference";
  d.message = sched.str() + ": " + a.label + " and " + b.label +
              " have no path in the band DAG, but " + a.label + " " +
              wa.str() + " while " + b.label + " " + fb.str() +
              " — concurrent tasks touch the same cells";
  return d;
}

}  // namespace

TileModel TileModel::from_summary(const AccessSummary& summary,
                                  const ScheduleDescriptor& sched,
                                  int tile_x, int tile_y, int nx, int ny,
                                  bool receivers) {
  TileModel m;
  m.schedule = sched;
  m.tile_x = tile_x;
  m.tile_y = tile_y;
  m.nx = nx;
  m.ny = ny;
  m.radius = summary.radius;
  m.write_dt = 1;
  m.time_reads = summary.time_reads;
  m.receivers = receivers;
  return m;
}

std::string InterferenceReport::str() const {
  std::ostringstream os;
  os << "interference[" << schedule.str() << "]: " << tasks << " task(s), "
     << unordered_pairs << " unordered pair(s), " << conflicts
     << " conflict(s) -> "
     << (race_free() ? "race-free" : "INTERFERENCE");
  for (const Diagnostic& d : diagnostics) os << "\n  " << d.str();
  return os.str();
}

InterferenceReport prove_race_free(const TileModel& model) {
  InterferenceReport report;
  report.schedule = model.schedule;
  const Geometry g(model);

  std::vector<Task> tasks;
  switch (model.schedule.kind) {
    case SchedKind::Reference:
      // One serial sweep: nothing runs concurrently.
      tasks.emplace_back();
      tasks.back().label = "sweep";
      break;
    case SchedKind::SpaceBlocked: tasks = space_blocked_tasks(g); break;
    case SchedKind::Wavefront:
      tasks = wavefront_tasks(g, std::max(1, model.schedule.tile_t));
      break;
    case SchedKind::Fused: tasks = wavefront_tasks(g, 1); break;
    case SchedKind::Diamond:
      tasks = diamond_tasks(g, std::max(1, model.schedule.tile_t));
      break;
  }
  report.tasks = static_cast<int>(tasks.size());

  constexpr int kMaxDiagnostics = 6;
  for (std::size_t ai = 0; ai < tasks.size(); ++ai) {
    for (std::size_t bi = ai + 1; bi < tasks.size(); ++bi) {
      const Task& a = tasks[ai];
      const Task& b = tasks[bi];
      if (ordered(model.schedule.kind, a, b)) continue;
      ++report.unordered_pairs;
      const auto found = [&](const Task& w, const Box& wb, const Task& o,
                             const Box& ob) {
        ++report.conflicts;
        if (report.conflicts <= kMaxDiagnostics) {
          report.diagnostics.push_back(
              conflict_diag(model.schedule, w, wb, o, ob));
        }
      };
      // The proof obligation: writes of either task disjoint from both
      // the writes and the reads of the other. One diagnostic per
      // pair/obligation is enough — the first overlap names the pair.
      const auto scan = [&](const Task& w, const Task& o,
                            const std::vector<Box>& other) {
        for (const Box& wb : w.writes) {
          for (const Box& ob : other) {
            if (wb.overlaps(ob)) {
              found(w, wb, o, ob);
              return;
            }
          }
        }
      };
      scan(a, b, b.writes);  // write/write (symmetric, check once)
      scan(a, b, b.reads);   // a writes what b reads
      scan(b, a, a.reads);   // b writes what a reads
    }
  }
  if (report.conflicts > kMaxDiagnostics) {
    Diagnostic d;
    d.severity = Diagnostic::Severity::Note;
    d.code = "tile-interference";
    d.message = "... and " +
                std::to_string(report.conflicts - kMaxDiagnostics) +
                " further conflicting pair(s) suppressed";
    report.diagnostics.push_back(std::move(d));
  }
  if (report.race_free()) {
    Diagnostic d;
    d.severity = Diagnostic::Severity::Note;
    d.code = "race-free";
    d.message = std::to_string(report.tasks) + " task(s), " +
                std::to_string(report.unordered_pairs) +
                " unordered pair(s): all write/write and write/read "
                "footprints disjoint";
    report.diagnostics.push_back(std::move(d));
  }
  return report;
}

namespace {

std::string interference_message(const InterferenceReport& report) {
  std::ostringstream os;
  os << "tile-interference: " << report.conflicts
     << " unordered tile pair(s) with overlapping footprints under "
     << report.schedule.str() << "\n"
     << report.str();
  return os.str();
}

}  // namespace

TileInterferenceError::TileInterferenceError(InterferenceReport report)
    : util::PreconditionError(interference_message(report)),
      report_(std::move(report)) {}

void require_race_free(const InterferenceReport& report) {
  if (!report.race_free()) throw TileInterferenceError(report);
}

}  // namespace tempest::analysis::statics
