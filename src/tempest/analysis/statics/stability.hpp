#pragma once

// Static von Neumann / CFL stability check — the second statics pass.
//
// For the second-order-in-time acoustic family the von Neumann analysis
// bounds the stable timestep by
//
//     dt  <=  2 h / (vp_max * sqrt(3 * S1)),    S1 = sum_k |w_k|
//
// where w_k are the 1-D second-derivative FD coefficients at the
// operator's *real* space order (stencil::central(2, so)) and the factor 3
// is the worst-case constructive interference of the three axes. The
// amplification factor of the update matrix exceeds 1 exactly when dt
// exceeds that bound, so a violating spec is statically known to diverge —
// no grid data needed beyond the velocity interval.
//
// This is the same derivation stencil::acoustic_dt encodes with a 0.9
// safety factor; here the *hard* bound (safety 1) is checked so specs
// produced from model.critical_dt() always pass, and anything beyond the
// mathematical limit is rejected at operator construction / JIT compile
// unless OperatorOptions::allow_unstable opts out.

#include <string>
#include <vector>

#include "tempest/analysis/legality.hpp"
#include "tempest/analysis/statics/interval.hpp"

namespace tempest::analysis::statics {

/// Verdict of the static stability check for one (dt, h, order, velocity
/// interval) specification.
struct StabilityVerdict {
  double dt = 0.0;       ///< proposed timestep (ms)
  double bound = 0.0;    ///< hard von Neumann bound (ms); 0 when unknown
  double vp_max = 0.0;   ///< velocity upper bound used
  double spacing = 0.0;  ///< grid spacing h
  int space_order = 0;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool stable() const;  ///< no Error-severity diagnostics
  [[nodiscard]] std::string str() const;
};

/// Check `dt` against the acoustic von Neumann bound derived from the FD
/// coefficients at `space_order` and the declared velocity interval.
/// Unbounded or non-positive velocity intervals are themselves errors
/// ("unbound-velocity"): no stability statement can be made.
[[nodiscard]] StabilityVerdict check_acoustic_stability(double dt,
                                                        double spacing,
                                                        int space_order,
                                                        const Interval& vp);

/// Check `dt` against an externally derived hard bound (the TTI/elastic
/// families, whose bounds stencil::tti_dt / stencil::elastic_dt produce).
/// `family` names the kernel family in the diagnostic.
[[nodiscard]] StabilityVerdict check_bound(double dt, double bound,
                                           double vp_max, double spacing,
                                           int space_order,
                                           const std::string& family);

}  // namespace tempest::analysis::statics
