#pragma once

// Tile-interference race prover — the third statics pass: PR 7's
// race-freedom, restated as a static theorem instead of a TSan observation.
//
// The task-parallel engine executes each temporal band as a DAG of
// space-time tiles (core::TileGraph): wavefront/fused bands order tiles by
// the staircase generating set {(i-1,j), (i,j-1)} whose transitive closure
// is the componentwise partial order, diamond bands order each valley
// after its two adjacent peaks, and barrier schedules run every block of a
// substep unordered. Two tiles with *no path* in that DAG may execute
// concurrently — so the proof obligation is:
//
//   for every unordered tile pair (a, b): the write footprint of `a` is
//   disjoint from both the write and the read footprint of `b` (and
//   symmetrically), where footprints are concrete (time-slot, x-range,
//   y-range) boxes enumerated from the kernel's access descriptors over
//   the band geometry the executors implement.
//
// The model mirrors run_wavefront_tasks / run_diamond_tasks exactly: tile
// (i, j) of a band computes substeps t in [0, tile_t) over the skewed
// rect [i*tile_x - slope*t, (i+1)*tile_x - slope*t) x [j*tile_y -
// slope*t, ...) clamped to the domain; a substep writes its field's
// circular buffer slot (t+1) mod slots over the rect, reads slots (t+k)
// mod slots (k in time_reads) over the rect grown by the stencil radius,
// and — when receivers are gathered — reads the freshly written slot over
// the rect (the fused_sample staging). The slot arithmetic is what makes
// the circular TimeBuffer aliasing (slice t and slice t + slots share
// storage) part of the theorem rather than an unmodelled hazard.
//
// The probe lattice is truncated to max_tiles tiles per axis of the first
// band: the geometry is translation-invariant in both the tile indices
// and (modulo `slots`) the band start, so a conflict in any band shows up
// in the probed one. The cross-check against the dynamic evidence (the
// TSan lane, parallel_determinism_test) is an acceptance criterion of the
// statics layer: the prover must return race-free exactly where TSan
// observes no race.

#include <string>
#include <vector>

#include "tempest/analysis/access.hpp"
#include "tempest/analysis/legality.hpp"
#include "tempest/util/error.hpp"

namespace tempest::analysis::statics {

/// Geometry of one task-parallel band, in the units the executors use
/// (substeps along the time axis; for single-substep kernels a substep is
/// a timestep). Plain ints so the prover stays below core/ in the layer
/// graph — the engine fills it from its own TileSpec, the sweep tools
/// from an AccessSummary.
struct TileModel {
  /// Family + skew slope (grid points per substep) + band height
  /// (substeps). Reference/SpaceBlocked model the barrier schedules: one
  /// serial sweep / one band of unordered single-substep blocks.
  ScheduleDescriptor schedule;
  int tile_x = 64;
  int tile_y = 64;
  int nx = 192;  ///< domain extent in x (y mirrors via ny)
  int ny = 192;
  int radius = 2;          ///< stencil halo reach (read grow)
  int write_dt = 1;        ///< written slice offset from the substep index
  std::vector<int> time_reads{0, -1};  ///< read slice offsets
  bool receivers = false;  ///< model the fused gather's in-rect read
  int max_tiles = 3;       ///< probe lattice cap per tiled axis

  /// Build the model for a kernel summary under a schedule descriptor
  /// (descriptor units: the summary's per-timestep reach).
  [[nodiscard]] static TileModel from_summary(const AccessSummary& summary,
                                              const ScheduleDescriptor& sched,
                                              int tile_x = 64, int tile_y = 64,
                                              int nx = 192, int ny = 192,
                                              bool receivers = false);
};

/// Verdict of the interference proof for one tile model.
struct InterferenceReport {
  ScheduleDescriptor schedule;
  int tasks = 0;                 ///< tasks enumerated in the probed band
  long long unordered_pairs = 0; ///< pairs with no DAG path (checked)
  int conflicts = 0;             ///< overlapping footprint pairs found
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool race_free() const { return conflicts == 0; }
  [[nodiscard]] std::string str() const;
};

/// Enumerate every unordered tile pair of the probed band and check the
/// write/write and write/read footprint disjointness obligation.
[[nodiscard]] InterferenceReport prove_race_free(const TileModel& model);

/// Thrown by the engine's pre-run gate when the proof fails; carries the
/// report with the offending tile pairs named.
class TileInterferenceError : public util::PreconditionError {
 public:
  explicit TileInterferenceError(InterferenceReport report);
  [[nodiscard]] const InterferenceReport& report() const { return report_; }

 private:
  InterferenceReport report_;
};

/// Throw TileInterferenceError unless the report is race-free.
void require_race_free(const InterferenceReport& report);

}  // namespace tempest::analysis::statics
