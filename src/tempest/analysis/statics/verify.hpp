#pragma once

// Statics facade: one call that runs the interval abstract interpretation,
// the CFL stability proof and the IR linter over a lowered kernel and
// folds the three verdicts into a single report, mirroring how
// analysis::verify_canonical folds the legality diagnostics. The gates —
// dsl::Operator construction/apply, the DslKernel engine adapter, and the
// codegen JIT pre-compile — all call require_static_ok(); the
// tile-interference prover (interference.hpp) is gated separately by the
// engine because its input is the run's tile geometry, not the kernel.
//
// StaticVerificationError derives from util::PreconditionError, so the
// jobs layer classifies a statically rejected spec as a *permanent*
// failure (quarantine with diagnostics, never retried) exactly like an
// illegal schedule.

#include <string>
#include <vector>

#include "tempest/analysis/statics/interval.hpp"
#include "tempest/analysis/statics/lint.hpp"
#include "tempest/analysis/statics/stability.hpp"
#include "tempest/dsl/lower.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/util/error.hpp"

namespace tempest::analysis::statics {

struct StaticsOptions {
  /// Declared value bounds for fields and coefficient grids; names absent
  /// evaluate to top (reported, and fatal if they reach a divisor).
  BoundEnv bounds;
  /// Names the runtime can bind; empty skips the unbound-param lint.
  std::vector<std::string> resolvable;
  /// Halo radius the execution layer allocates; -1 = the kernel's own.
  int declared_radius = -1;
  /// Timestep to prove stable; 0 uses the kernel's lowering dt.
  double dt = 0.0;
  /// Skip the stability pass (callers without a meaningful dt/spacing).
  bool check_stability = true;
  /// Demote stability errors to notes (OperatorOptions::allow_unstable:
  /// deliberate divergence tests keep every other gate).
  bool allow_unstable = false;
};

/// Combined verdict of the three kernel-level statics passes.
struct StaticsReport {
  std::string kernel;
  IntervalReport intervals;
  StabilityVerdict stability;
  LintReport lint;

  [[nodiscard]] std::vector<Diagnostic> diagnostics() const;
  [[nodiscard]] int errors() const;
  [[nodiscard]] bool ok() const { return errors() == 0; }
  [[nodiscard]] std::string str() const;
};

/// Run all passes over one lowered kernel.
[[nodiscard]] StaticsReport verify_statics(const dsl::LoweredKernel& kernel,
                                           const StaticsOptions& options = {});

/// Thrown by the gates on a failed statics verdict; carries the report.
class StaticVerificationError : public util::PreconditionError {
 public:
  explicit StaticVerificationError(StaticsReport report);
  [[nodiscard]] const StaticsReport& report() const { return report_; }

 private:
  StaticsReport report_;
};

/// Throw StaticVerificationError unless the report is error-free.
void require_static_ok(const StaticsReport& report);

/// Throw StaticVerificationError (with a stability-only report) unless the
/// verdict is stable. The gates that have a dt but no lowered kernel tree
/// — JitAcoustic, the TTI/elastic Operator::apply overloads — use this.
void require_stable(const StabilityVerdict& verdict,
                    const std::string& kernel);

/// Value interval of a grid's *interior* (the halos are zero-initialised
/// storage, not data — including them would poison every positive lower
/// bound). Top for an empty interior.
[[nodiscard]] Interval grid_interval(const grid::Grid3<real_t>& g);

/// Bounds derived from a concrete acoustic model: vp/m/damp scanned over
/// the grid interiors, user bindings scanned likewise, and the wavefield
/// seeded from the source amplitude. This is what the apply()-time and
/// JIT-time gates use — the sharpest bounds available.
[[nodiscard]] BoundEnv model_bounds(const physics::AcousticModel& model,
                                    const dsl::ParamBindings& bindings,
                                    const std::string& field = "u",
                                    double amplitude = 1.0);

/// The resolvable parameter names for a model + bindings pair (the model's
/// conventional "m"/"damp"/"vp" plus every binding key), for the
/// unbound-param lint.
[[nodiscard]] std::vector<std::string> resolvable_names(
    const dsl::ParamBindings& bindings);

}  // namespace tempest::analysis::statics
