#include "tempest/analysis/statics/verify.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace tempest::analysis::statics {

std::vector<Diagnostic> StaticsReport::diagnostics() const {
  std::vector<Diagnostic> all;
  all.insert(all.end(), intervals.diagnostics.begin(),
             intervals.diagnostics.end());
  all.insert(all.end(), stability.diagnostics.begin(),
             stability.diagnostics.end());
  all.insert(all.end(), lint.diagnostics.begin(), lint.diagnostics.end());
  return all;
}

int StaticsReport::errors() const {
  const std::vector<Diagnostic> all = diagnostics();
  return static_cast<int>(
      std::count_if(all.begin(), all.end(), [](const Diagnostic& d) {
        return d.severity == Diagnostic::Severity::Error;
      }));
}

std::string StaticsReport::str() const {
  std::ostringstream os;
  os << "statics[" << kernel << "]: " << errors() << " error(s)\n  "
     << intervals.str() << "\n  " << stability.str() << "\n  " << lint.str();
  return os.str();
}

StaticsReport verify_statics(const dsl::LoweredKernel& kernel,
                             const StaticsOptions& options) {
  StaticsReport report;
  report.kernel = kernel.name;
  report.intervals = interpret(kernel, options.bounds);

  if (options.check_stability) {
    Interval vp = Interval::top();
    const auto it = options.bounds.find("vp");
    if (it != options.bounds.end()) vp = it->second;
    const double dt = options.dt > 0.0 ? options.dt : kernel.dt;
    report.stability = check_acoustic_stability(dt, kernel.spacing,
                                                kernel.space_order, vp);
    if (options.allow_unstable) {
      for (Diagnostic& d : report.stability.diagnostics) {
        if (d.severity == Diagnostic::Severity::Error) {
          d.severity = Diagnostic::Severity::Note;
          d.message += " [allowed by OperatorOptions::allow_unstable]";
        }
      }
    }
  }

  LintOptions lopts;
  lopts.declared_radius = options.declared_radius;
  lopts.resolvable = options.resolvable;
  report.lint = lint_kernel(kernel, lopts);
  return report;
}

namespace {

std::string verification_message(const StaticsReport& report) {
  std::ostringstream os;
  os << "static verification failed for kernel '" << report.kernel << "' ("
     << report.errors() << " error(s))\n"
     << report.str();
  return os.str();
}

}  // namespace

StaticVerificationError::StaticVerificationError(StaticsReport report)
    : util::PreconditionError(verification_message(report)),
      report_(std::move(report)) {}

void require_static_ok(const StaticsReport& report) {
  if (!report.ok()) throw StaticVerificationError(report);
}

void require_stable(const StabilityVerdict& verdict,
                    const std::string& kernel) {
  if (verdict.stable()) return;
  StaticsReport report;
  report.kernel = kernel;
  report.stability = verdict;
  throw StaticVerificationError(std::move(report));
}

namespace {

Interval scan_interior(const grid::Grid3<real_t>& g) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  g.for_each_interior([&](int x, int y, int z) {
    const double v = g(x, y, z);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  });
  if (lo > hi) return Interval::top();  // empty interior
  return {lo, hi};
}

}  // namespace

Interval grid_interval(const grid::Grid3<real_t>& g) {
  return scan_interior(g);
}

BoundEnv model_bounds(const physics::AcousticModel& model,
                      const dsl::ParamBindings& bindings,
                      const std::string& field, double amplitude) {
  BoundEnv env;
  env[field] = Interval{-amplitude, amplitude};
  env["vp"] = scan_interior(model.vp);
  env["m"] = scan_interior(model.m);
  env["damp"] = scan_interior(model.damp);
  for (const auto& [name, g] : bindings) {
    if (g != nullptr) env[name] = scan_interior(*g);
  }
  return env;
}

std::vector<std::string> resolvable_names(const dsl::ParamBindings& bindings) {
  std::vector<std::string> names = {"m", "damp", "vp"};
  for (const auto& [name, g] : bindings) {
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace tempest::analysis::statics
