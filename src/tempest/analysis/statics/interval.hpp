#pragma once

// Interval abstract interpretation over the typed expression tree — the
// first of the three statics passes (see verify.hpp for the facade).
//
// The abstract domain is the lattice of closed real intervals with ±inf
// endpoints: bottom is never needed (every expression evaluates), top is
// [-inf, +inf]. Bounds enter through a BoundEnv mapping field/param names
// to declared intervals — velocity models are positive, sponge profiles
// live in [0, 1], wavefields are seeded from the source amplitude — and
// propagate through the lowered update tree with standard interval
// arithmetic. The transfer functions are sound over-approximations: the
// concrete value of every subexpression lies inside its abstract interval
// for any grid contents within the declared bounds, so the two hazard
// verdicts are conservative:
//
//  * "possible-div-by-zero" — a divisor interval containing zero. The
//    lowered update divides by the forward-coefficient chain (m * 1/dt^2
//    + damp * 1/2dt for the acoustic family), so this catches a bound
//    grid that can vanish before the NaN health monitor ever runs.
//  * "unbounded-update" — the update's interval has an infinite endpoint:
//    no static bound on growth exists (division blowup or an unbounded
//    input), the failure mode the runtime health monitor detects only
//    after the field has already diverged.
//
// Interval-level constant folding is reported as lint: a maximal subtree
// whose interval collapses to a point independent of every grid value is
// work the kernel re-evaluates at every grid point for a value known at
// lowering time.

#include <map>
#include <string>
#include <vector>

#include "tempest/analysis/legality.hpp"
#include "tempest/dsl/ir.hpp"
#include "tempest/dsl/lower.hpp"

namespace tempest::analysis::statics {

/// A closed interval over the extended reals. Default-constructed is top
/// ([-inf, +inf]); point intervals carry exact constants through the
/// abstract evaluation so constant folding falls out of the same walk.
struct Interval {
  double lo;
  double hi;

  Interval();  ///< top
  Interval(double lo, double hi);

  [[nodiscard]] static Interval point(double v) { return {v, v}; }
  [[nodiscard]] static Interval top() { return {}; }

  [[nodiscard]] bool bounded() const;
  [[nodiscard]] bool is_point() const;
  [[nodiscard]] bool contains(double v) const { return lo <= v && v <= hi; }
  /// Largest magnitude over the interval (inf when unbounded).
  [[nodiscard]] double mag() const;
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Interval&, const Interval&) = default;
};

[[nodiscard]] Interval operator+(const Interval& a, const Interval& b);
[[nodiscard]] Interval operator-(const Interval& a, const Interval& b);
[[nodiscard]] Interval operator*(const Interval& a, const Interval& b);
/// Division returns top when b contains zero (the caller diagnoses).
[[nodiscard]] Interval operator/(const Interval& a, const Interval& b);
/// Smallest interval containing both (lattice join).
[[nodiscard]] Interval hull(const Interval& a, const Interval& b);

/// Declared value bounds, keyed by field or coefficient-grid name. Names
/// absent from the environment evaluate to top (and are reported).
using BoundEnv = std::map<std::string, Interval>;

/// The conventional seismic bounds the sweep tools use when no concrete
/// model is in scope: vp in [vp_lo, vp_hi] km/s (Marmousi-like water to
/// basement), m = 1/vp^2, damp/eta sponge coefficients in [0, 1], and the
/// wavefield `field` seeded from the source amplitude [-amp, amp].
[[nodiscard]] BoundEnv conventional_bounds(const std::string& field = "u",
                                           double vp_lo = 1.5,
                                           double vp_hi = 4.5,
                                           double amp = 1.0);

/// Verdict of the abstract interpretation of one lowered update tree.
struct IntervalReport {
  Interval value;  ///< interval of the full update expression
  std::vector<Diagnostic> diagnostics;
  int foldable_subtrees = 0;  ///< maximal constant subtrees with >= 1 op
  int foldable_ops = 0;       ///< binary ops inside those subtrees
  int unbounded_inputs = 0;   ///< loads/params with no declared bound

  [[nodiscard]] bool clean() const;  ///< no Error-severity diagnostics
  [[nodiscard]] std::string str() const;
};

/// Render a subexpression compactly for diagnostics ("(m * 0.01)",
/// "u[t-1][x+2]").
[[nodiscard]] std::string expr_str(const dsl::ir::Expr& e);

/// Evaluate one expression tree in the interval domain (no diagnostics).
[[nodiscard]] Interval eval(const dsl::ir::Expr& e, const BoundEnv& env);

/// Abstractly interpret a lowered kernel's update tree under the declared
/// bounds, collecting hazard diagnostics and constant-folding lint.
[[nodiscard]] IntervalReport interpret(const dsl::LoweredKernel& kernel,
                                       const BoundEnv& env);

}  // namespace tempest::analysis::statics
