#include "tempest/analysis/statics/stability.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tempest/stencil/coefficients.hpp"

namespace tempest::analysis::statics {

namespace {

Diagnostic make(Diagnostic::Severity sev, std::string code,
                std::string message) {
  Diagnostic d;
  d.severity = sev;
  d.code = std::move(code);
  d.message = std::move(message);
  return d;
}

std::string num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void judge(StabilityVerdict& v, const std::string& family) {
  if (v.dt > v.bound) {
    v.diagnostics.push_back(make(
        Diagnostic::Severity::Error, "unstable-dt",
        family + " dt=" + num(v.dt) + " ms exceeds the von Neumann bound " +
            num(v.bound) + " ms (h=" + num(v.spacing) + ", vp_max=" +
            num(v.vp_max) + ", space order " +
            std::to_string(v.space_order) +
            "): the update amplifies every step and diverges"));
  } else {
    v.diagnostics.push_back(make(
        Diagnostic::Severity::Note, "cfl-headroom",
        family + " dt=" + num(v.dt) + " ms is " + num(v.dt / v.bound) +
            " of the von Neumann bound " + num(v.bound) + " ms"));
  }
}

}  // namespace

bool StabilityVerdict::stable() const {
  return std::none_of(diagnostics.begin(), diagnostics.end(),
                      [](const Diagnostic& d) {
                        return d.severity == Diagnostic::Severity::Error;
                      });
}

std::string StabilityVerdict::str() const {
  std::ostringstream os;
  os << "stability: dt=" << dt << " bound=" << bound << " (vp_max=" << vp_max
     << ", h=" << spacing << ", so=" << space_order << ")";
  for (const Diagnostic& d : diagnostics) os << "\n  " << d.str();
  return os.str();
}

StabilityVerdict check_acoustic_stability(double dt, double spacing,
                                          int space_order,
                                          const Interval& vp) {
  StabilityVerdict v;
  v.dt = dt;
  v.spacing = spacing;
  v.space_order = space_order;
  if (dt <= 0.0 || spacing <= 0.0 || space_order < 2 ||
      space_order % 2 != 0) {
    v.diagnostics.push_back(
        make(Diagnostic::Severity::Error, "invalid-spec",
             "stability check needs dt > 0, h > 0 and a positive even "
             "space order (got dt=" + num(dt) + ", h=" + num(spacing) +
                 ", so=" + std::to_string(space_order) + ")"));
    return v;
  }
  if (!std::isfinite(vp.hi) || vp.hi <= 0.0 || vp.lo <= 0.0) {
    v.diagnostics.push_back(
        make(Diagnostic::Severity::Error, "unbound-velocity",
             "velocity interval " + vp.str() +
                 " is not strictly positive and finite; no stability bound "
                 "can be derived"));
    return v;
  }
  v.vp_max = vp.hi;
  // dt <= 2h / (vp_max * sqrt(3 * sum|w_k|)) with w_k the 1-D
  // second-derivative weights at the real space order — the exact
  // derivation stencil::acoustic_dt applies a 0.9 safety factor to.
  const double s1 = stencil::central(2, space_order).abs_sum();
  v.bound = 2.0 * spacing / (vp.hi * std::sqrt(3.0 * s1));
  judge(v, "acoustic");
  return v;
}

StabilityVerdict check_bound(double dt, double bound, double vp_max,
                             double spacing, int space_order,
                             const std::string& family) {
  StabilityVerdict v;
  v.dt = dt;
  v.bound = bound;
  v.vp_max = vp_max;
  v.spacing = spacing;
  v.space_order = space_order;
  if (dt <= 0.0 || bound <= 0.0) {
    v.diagnostics.push_back(
        make(Diagnostic::Severity::Error, "invalid-spec",
             "stability check needs dt > 0 and a positive bound (got dt=" +
                 num(dt) + ", bound=" + num(bound) + ")"));
    return v;
  }
  judge(v, family);
  return v;
}

}  // namespace tempest::analysis::statics
