#pragma once

// IR linter over a lowered kernel — the structural half of the statics
// layer. Where the interval pass reasons about *values*, the linter
// reasons about the tree's *shape* against the kernel's own declarations:
//
//  * "out-of-halo-read" (error) — a load whose spatial offset exceeds the
//    declared halo radius. Unreachable through the DSL frontend (loads are
//    generated from the FD coefficients, bounded by space_order/2), so a
//    hit means a corrupted or hand-built LoweredKernel whose execution
//    would read unallocated halo memory; the DslKernel adapter and the
//    DSL JIT both refuse such trees (see the gates in dsl/kernel.cpp and
//    codegen/jit.cpp).
//  * "footprint-mismatch" (error) — a load outside the access hull the
//    kernel declares for its time slice, or a load of a time slice with no
//    declared read access at all. The declared hulls feed the legality
//    verifier, so a mismatch means the machine-checked schedule proof
//    talks about a different kernel than the one that executes.
//  * "unbound-param" (error) — a coefficient-grid name that no
//    ParamBindings entry or model field will resolve; caught before the
//    runtime binding error, with the full resolvable list in the message.
//  * "dead-subexpression" (note) — multiply-by-constant-zero and
//    add/subtract-of-constant-zero subtrees: computed every grid point,
//    contributing nothing.
//  * duplicate-subtree / CSE statistics (note) — structurally identical
//    binary subtrees evaluated more than once, the common-subexpression
//    work a folding pass could hoist.

#include <string>
#include <vector>

#include "tempest/analysis/legality.hpp"
#include "tempest/dsl/lower.hpp"

namespace tempest::analysis::statics {

struct LintOptions {
  /// Halo radius the execution layer allocates; -1 uses the kernel's own
  /// declared radius (the accesses' hull).
  int declared_radius = -1;
  /// Names the runtime can bind ("m", "damp", "vp" plus the ParamBindings
  /// keys). Empty disables the unbound-param check.
  std::vector<std::string> resolvable;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;
  int duplicate_subtrees = 0;  ///< distinct shapes occurring more than once
  int duplicate_ops = 0;       ///< redundant binary ops a CSE pass removes

  [[nodiscard]] bool clean() const;  ///< no Error-severity diagnostics
  [[nodiscard]] std::string str() const;
};

[[nodiscard]] LintReport lint_kernel(const dsl::LoweredKernel& kernel,
                                     const LintOptions& options = {});

}  // namespace tempest::analysis::statics
