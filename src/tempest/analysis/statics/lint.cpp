#include "tempest/analysis/statics/lint.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "tempest/analysis/statics/interval.hpp"

namespace tempest::analysis::statics {

namespace {

using dsl::ir::Expr;

Diagnostic make(Diagnostic::Severity sev, std::string code,
                std::string message) {
  Diagnostic d;
  d.severity = sev;
  d.code = std::move(code);
  d.message = std::move(message);
  return d;
}

bool is_zero_const(const Expr& e) {
  return e.kind == Expr::Kind::Const && e.value == 0.0;
}

struct Linter {
  const dsl::LoweredKernel& k;
  const LintOptions& opts;
  LintReport& report;
  int radius;
  std::map<std::string, int> shapes;  ///< canonical text -> occurrences
  std::map<std::string, int> shape_ops;
  std::vector<std::string> seen_params;
  std::vector<int> seen_missing_slices;

  void error(std::string code, std::string message) {
    report.diagnostics.push_back(
        make(Diagnostic::Severity::Error, std::move(code),
             std::move(message)));
  }
  void note(std::string code, std::string message) {
    report.diagnostics.push_back(
        make(Diagnostic::Severity::Note, std::move(code),
             std::move(message)));
  }

  /// The declared read hull for a time slice, or nullptr.
  [[nodiscard]] const dsl::ir::Access* declared(int dt) const {
    for (const dsl::ir::Access& a : k.accesses) {
      if (!a.is_write && a.time == dt) return &a;
    }
    return nullptr;
  }

  void check_load(const Expr& e) {
    const int reach = std::max({std::abs(e.dx), std::abs(e.dy),
                                std::abs(e.dz)});
    if (reach > radius) {
      error("out-of-halo-read",
            "load " + expr_str(e) + " reaches " + std::to_string(reach) +
                " grid points but the declared halo radius is " +
                std::to_string(radius) +
                ": executing it reads unallocated halo memory");
    }
    if (e.name != k.field) return;  // coefficient fields have no halo hull
    const dsl::ir::Access* a = declared(e.dt);
    if (a == nullptr) {
      if (std::find(seen_missing_slices.begin(), seen_missing_slices.end(),
                    e.dt) == seen_missing_slices.end()) {
        seen_missing_slices.push_back(e.dt);
        error("footprint-mismatch",
              "load " + expr_str(e) + " reads time slice t" +
                  (e.dt >= 0 ? "+" : "") + std::to_string(e.dt) +
                  " which the kernel's declared accesses do not mention; "
                  "the legality proof covers a different footprint than "
                  "the one that executes");
      }
      return;
    }
    const bool inside = a->x.lo <= e.dx && e.dx <= a->x.hi &&
                        a->y.lo <= e.dy && e.dy <= a->y.hi &&
                        a->z.lo <= e.dz && e.dz <= a->z.hi;
    if (!inside) {
      error("footprint-mismatch",
            "load " + expr_str(e) + " lies outside the declared hull "
                "x[" + std::to_string(a->x.lo) + "," +
                std::to_string(a->x.hi) + "] y[" + std::to_string(a->y.lo) +
                "," + std::to_string(a->y.hi) + "] z[" +
                std::to_string(a->z.lo) + "," + std::to_string(a->z.hi) +
                "] for its time slice");
    }
  }

  void check_param(const Expr& e) {
    if (opts.resolvable.empty()) return;
    if (std::find(seen_params.begin(), seen_params.end(), e.name) !=
        seen_params.end()) {
      return;
    }
    seen_params.push_back(e.name);
    if (std::find(opts.resolvable.begin(), opts.resolvable.end(), e.name) ==
        opts.resolvable.end()) {
      std::string have;
      for (const std::string& r : opts.resolvable) {
        have += (have.empty() ? "" : ", ") + r;
      }
      error("unbound-param",
            "coefficient grid '" + e.name +
                "' has no binding; resolvable names are {" + have + "}");
    }
  }

  void check_dead(const Expr& e) {
    if (e.op == '*' && (is_zero_const(*e.a) || is_zero_const(*e.b))) {
      const Expr& live = is_zero_const(*e.a) ? *e.b : *e.a;
      note("dead-subexpression",
           "product " + expr_str(e) + " is always zero; " + expr_str(live) +
               " is evaluated at every grid point for nothing");
    } else if ((e.op == '+' || e.op == '-') && is_zero_const(*e.b)) {
      note("dead-subexpression",
           expr_str(e) + " adds a constant zero term");
    } else if (e.op == '+' && is_zero_const(*e.a)) {
      note("dead-subexpression",
           expr_str(e) + " adds a constant zero term");
    }
  }

  /// Postorder walk; returns the subtree's op count and registers its
  /// canonical shape for the duplicate statistics.
  int visit(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Const: return 0;
      case Expr::Kind::Param: check_param(e); return 0;
      case Expr::Kind::Load: check_load(e); return 0;
      case Expr::Kind::Binary: break;
    }
    const int ops = visit(*e.a) + visit(*e.b) + 1;
    check_dead(e);
    const std::string shape = expr_str(e);
    shapes[shape] += 1;
    shape_ops[shape] = ops;
    return ops;
  }

  void finish() {
    // Count only *maximal* duplicated subtrees: a repeated tree repeats
    // all of its subtrees too, and reporting those would double-count the
    // same redundant work.
    for (const auto& [shape, count] : shapes) {
      if (count < 2) continue;
      bool nested = false;
      for (const auto& [other, ocount] : shapes) {
        if (ocount >= 2 && other.size() > shape.size() &&
            other.find(shape) != std::string::npos) {
          nested = true;
          break;
        }
      }
      if (nested) continue;
      ++report.duplicate_subtrees;
      report.duplicate_ops += (count - 1) * shape_ops[shape];
    }
    if (report.duplicate_subtrees > 0) {
      note("cse-opportunity",
           std::to_string(report.duplicate_subtrees) +
               " duplicated subtree shape(s), " +
               std::to_string(report.duplicate_ops) +
               " redundant op(s) per grid point a CSE pass could hoist");
    }
  }
};

}  // namespace

bool LintReport::clean() const {
  return std::none_of(diagnostics.begin(), diagnostics.end(),
                      [](const Diagnostic& d) {
                        return d.severity == Diagnostic::Severity::Error;
                      });
}

std::string LintReport::str() const {
  std::ostringstream os;
  os << "lint: " << diagnostics.size() << " finding(s), "
     << duplicate_subtrees << " duplicated subtree shape(s) ("
     << duplicate_ops << " redundant op(s))";
  for (const Diagnostic& d : diagnostics) os << "\n  " << d.str();
  return os.str();
}

LintReport lint_kernel(const dsl::LoweredKernel& kernel,
                       const LintOptions& options) {
  LintReport report;
  const int radius =
      options.declared_radius >= 0 ? options.declared_radius
                                   : kernel.radius();
  Linter lint{kernel, options, report, radius, {}, {}, {}, {}};
  if (!kernel.update) {
    lint.error("empty-update", "lowered kernel '" + kernel.name +
                                   "' carries no update expression");
    return report;
  }
  lint.visit(*kernel.update);
  // Declared read hulls no load touches: the proof obligations cover more
  // than the kernel executes — harmless for soundness, but dead weight
  // that usually indicates a lowering bug.
  for (const dsl::ir::Access& a : kernel.accesses) {
    if (a.is_write) continue;
    bool touched = false;
    struct Probe {
      static bool touches(const Expr& e, const std::string& field, int dt) {
        if (e.kind == Expr::Kind::Load && e.name == field && e.dt == dt) {
          return true;
        }
        return (e.a && touches(*e.a, field, dt)) ||
               (e.b && touches(*e.b, field, dt));
      }
    };
    touched = Probe::touches(*kernel.update, kernel.field, a.time);
    if (!touched) {
      lint.note("dead-access",
                "declared read of time slice t" +
                    std::string(a.time >= 0 ? "+" : "") +
                    std::to_string(a.time) +
                    " is never loaded by the update tree");
    }
  }
  lint.finish();
  return report;
}

}  // namespace tempest::analysis::statics
