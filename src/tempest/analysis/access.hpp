#pragma once

// Access analysis over the dsl::ir loop nests (the compiler half of the
// paper's Section II.A argument). Every Stmt node of a lowered nest is
// walked and turned into a set of *access descriptors*: which field is
// touched, read or write, and the offset of the touched location relative
// to the statement's iteration vector on each of the (t, x, y, z) axes.
//
// The offsets are the whole story. An affine stencil access has small
// constant offsets (±radius); a mask-guarded fused access has offset zero
// in the tiled x/y dimensions (indirection confined to the untiled z
// column); an off-the-grid sparse access indexes through `map(s, i)` /
// `SID`-style indirection and therefore has *unknown* ("star") offsets —
// the structural property that makes skewed/wave-front/diamond time tiling
// illegal until the probe → mask → decompose pipeline removes it.

#include <string>
#include <vector>

#include "tempest/dsl/ir.hpp"

namespace tempest::analysis {

/// How a statement touches memory, per the paper's taxonomy (Fig. 4b).
enum class AccessClass {
  AffineStencil,    ///< constant offsets bounded by the stencil radius
  MaskGuardedFused, ///< grid-aligned at (x, y); indirection only along z
  OffGridSparse,    ///< indirected through map()/coordinate tables: offsets
                    ///< unknowable at schedule time
  Precompute,       ///< prologue statement outside the time loop
};

[[nodiscard]] const char* to_string(AccessClass c);

/// Offset of an access on one axis, relative to the iteration vector: an
/// interval [lo, hi] of constants, or "star" (statically unknowable — the
/// non-affine case).
struct Extent {
  bool star = false;
  int lo = 0;
  int hi = 0;

  [[nodiscard]] static Extent affine(int off) { return {false, off, off}; }
  [[nodiscard]] static Extent range(int lo, int hi) { return {false, lo, hi}; }
  [[nodiscard]] static Extent unknown() { return {true, 0, 0}; }

  [[nodiscard]] int max_abs() const;
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Extent&, const Extent&) = default;
};

/// One field access of one statement. `time` is always affine (every nest
/// the pipeline produces indexes time as t+k); the spatial extents may be
/// star. Axes that a field does not have (e.g. the receiver-trace array
/// `rec[t, r]` has no grid axes) are affine zero.
struct Access {
  std::string field;
  bool is_write = false;
  int time = 0;  ///< time-axis offset (the k of u[t+k, ...])
  Extent dx, dy, dz;
  bool grid = true;  ///< touches the 3-D grid (false: rec / src_dcmp tables)

  /// True when the offset along a named spatial dimension is star.
  [[nodiscard]] bool dist_star_in(const std::string& dim) const;

  [[nodiscard]] std::string str() const;
};

/// A statement of the nest with its extracted accesses and loop context.
struct Statement {
  int id = 0;              ///< index in execution order
  std::string text;
  std::string tag;         ///< the ir tag ("stencil", "inject-fused", ...)
  AccessClass cls = AccessClass::AffineStencil;
  std::vector<std::string> loops;  ///< enclosing loop dims, outermost first
  bool under_time_loop = false;
  std::vector<Access> accesses;

  /// True when the statement sits inside a loop over `dim` (so the space
  /// tiling transformation has an axis to cut).
  [[nodiscard]] bool inside_loop(const std::string& dim) const;
};

/// What a physics kernel's stencil statement touches — declared by the
/// kernel itself (physics/*.cpp) so the verifier reasons about the *real*
/// dependency radius, not a guess. The IR prints the stencil as an opaque
/// call `A_<class>(t, x, y, z)`; this summary expands it: one write of
/// `field[t+1]` at the point, reads of `field[t+k]` (k in time_reads) over
/// a ±radius neighbourhood.
struct AccessSummary {
  std::string kernel = "acoustic";   ///< display name
  std::string field = "u";           ///< the wavefield the nest updates
  int radius = 2;                    ///< stencil radius (space_order / 2)
  int substeps = 1;                  ///< engine substeps per timestep
  std::vector<int> time_reads = {0, -1};  ///< slices read relative to t

  /// Spatial radius of the kernel's *write* footprint around the iteration
  /// point. Every tempest kernel writes only the centre cell (0); the
  /// task-parallel tile executor requires it — a kernel scattering writes
  /// into its neighbourhood would make adjacent concurrent tiles race even
  /// though the read-side skew is satisfied, so engine::TileGraph rejects
  /// write_radius > 0 instead of scheduling tasks.
  int write_radius = 0;
};

/// Walk a lowered nest and extract every statement's accesses — purely
/// structurally. Statement ids follow execution order; an opaque stencil
/// statement (no typed access list attached) is expanded per the kernel
/// summary, every other statement carries its typed `ir::Access` list from
/// the lowering pass (indirected subscripts such as the `xs, ys, zs` of
/// `map(s, i)` arrive as star extents). The pseudocode text is never
/// parsed.
[[nodiscard]] std::vector<Statement> extract_accesses(
    const dsl::ir::Node& root, const AccessSummary& kernel);

/// Human/golden-test readable dump of the extracted accesses.
[[nodiscard]] std::string print_accesses(const std::vector<Statement>& stmts);

}  // namespace tempest::analysis
