#include "tempest/analysis/legality.hpp"

#include <algorithm>
#include <sstream>

#include "tempest/dsl/passes.hpp"

namespace tempest::analysis {

const char* to_string(SchedKind k) {
  switch (k) {
    case SchedKind::Reference: return "reference";
    case SchedKind::SpaceBlocked: return "space-blocked";
    case SchedKind::Wavefront: return "wavefront";
    case SchedKind::Fused: return "fused";
    case SchedKind::Diamond: return "diamond";
  }
  return "?";
}

ScheduleDescriptor ScheduleDescriptor::reference() {
  return {SchedKind::Reference, 1, 1};
}
ScheduleDescriptor ScheduleDescriptor::space_blocked() {
  return {SchedKind::SpaceBlocked, 1, 1};
}
ScheduleDescriptor ScheduleDescriptor::wavefront(int slope, int tile_t) {
  TEMPEST_REQUIRE(slope > 0 && tile_t > 0);
  return {SchedKind::Wavefront, slope, tile_t};
}
ScheduleDescriptor ScheduleDescriptor::fused(int slope) {
  TEMPEST_REQUIRE(slope > 0);
  return {SchedKind::Fused, slope, 1};
}
ScheduleDescriptor ScheduleDescriptor::diamond(int slope, int height) {
  TEMPEST_REQUIRE(slope > 0 && height > 0);
  return {SchedKind::Diamond, slope, height};
}

std::vector<std::string> ScheduleDescriptor::tiled_dims() const {
  switch (kind) {
    case SchedKind::Wavefront:
    case SchedKind::Fused:
      return {"x", "y"};
    case SchedKind::Diamond:
      return {"x"};
    default:
      return {};
  }
}

std::string ScheduleDescriptor::str() const {
  std::ostringstream os;
  os << to_string(kind);
  if (time_tiled()) os << "(slope=" << slope << ", tile_t=" << tile_t << ')';
  return os.str();
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << (severity == Severity::Error ? "error" : "note") << '[' << code
     << "] ";
  if (dst >= 0) {
    os << to_string(kind) << " S" << src << "->S" << dst << ' ' << field
       << ": ";
  } else {
    os << 'S' << src << ": ";
  }
  os << message;
  return os.str();
}

bool LegalityReport::legal() const { return errors() == 0; }

int LegalityReport::errors() const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Diagnostic::Severity::Error;
                    }));
}

std::string LegalityReport::str() const {
  std::ostringstream os;
  os << schedule.str() << ": "
     << (legal() ? "LEGAL" : "ILLEGAL (" + std::to_string(errors()) +
                                 " violations)")
     << " — " << statements_checked << " statements, "
     << dependences_checked << " dependences\n";
  for (const Diagnostic& d : diagnostics) os << "  " << d.str() << '\n';
  return os.str();
}

ScheduleLegalityError::ScheduleLegalityError(LegalityReport report)
    : util::PreconditionError("illegal schedule rejected by "
                              "tempest::analysis:\n" +
                              report.str()),
      report_(std::move(report)) {}

namespace {

/// Per-statement tileability: under a time-tiled schedule every statement
/// inside the time loop must (a) sit inside a loop over each tiled
/// dimension so the tiling transformation has an axis to cut, and (b) keep
/// every access affine in the tiled dimensions — the probe/mask/decompose
/// property. The stage-0 `for s / for i` sparse loops fail both.
void check_tileable(const Statement& s, const ScheduleDescriptor& sched,
                    LegalityReport& out) {
  std::vector<std::string> missing_loops;
  std::vector<std::string> star_accesses;
  for (const std::string& dim : sched.tiled_dims()) {
    if (!s.inside_loop(dim)) missing_loops.push_back(dim);
    for (const Access& a : s.accesses) {
      if (!a.grid) continue;
      if (a.dist_star_in(dim)) star_accesses.push_back(a.str());
    }
  }
  if (missing_loops.empty() && star_accesses.empty()) return;
  Diagnostic d;
  d.code = "not-tileable";
  d.src = s.id;
  std::ostringstream os;
  os << to_string(s.cls) << " statement `" << s.text
     << "` cannot be assigned to a " << sched.str() << " tile:";
  if (!missing_loops.empty()) {
    os << " no enclosing loop over";
    for (const auto& dim : missing_loops) os << ' ' << dim;
    os << ';';
  }
  for (const auto& a : star_accesses) {
    os << " non-affine access " << a << ';';
  }
  d.message = os.str();
  out.diagnostics.push_back(std::move(d));
}

void check_dependence(const Dependence& dep, const ScheduleDescriptor& sched,
                      LegalityReport& out) {
  // A dependence spanning at least one full band crosses the global
  // barrier between bands and is respected regardless of distance.
  if (dep.dt >= sched.tile_t) {
    if (dep.dt > 0) {
      Diagnostic n;
      n.severity = Diagnostic::Severity::Note;
      n.code = "band-barrier";
      n.src = dep.src;
      n.dst = dep.dst;
      n.kind = dep.kind;
      n.field = dep.field;
      n.message = "dt=" + std::to_string(dep.dt) +
                  " >= tile_t=" + std::to_string(sched.tile_t) +
                  ": respected by the band barrier";
      out.diagnostics.push_back(std::move(n));
    }
    return;
  }
  for (const std::string& dim : sched.tiled_dims()) {
    const Extent& dist = dep.dist(dim);
    Diagnostic d;
    d.src = dep.src;
    d.dst = dep.dst;
    d.kind = dep.kind;
    d.field = dep.field;
    if (dist.star) {
      d.code = dep.dt == 0 ? "same-time-cross-tile" : "unbounded-distance";
      d.message = "distance in " + dim + " is statically unknowable (*) at "
                  "dt=" + std::to_string(dep.dt) + "; no " + sched.str() +
                  " tile shape bounds an off-the-grid access";
      out.diagnostics.push_back(std::move(d));
      continue;
    }
    const int reach = dist.max_abs();
    if (dep.dt == 0) {
      if (reach > 0) {
        d.code = "same-time-cross-tile";
        d.message = "same-timestep dependence with distance " + dist.str() +
                    " in " + dim + " crosses concurrent tiles of " +
                    sched.str();
        out.diagnostics.push_back(std::move(d));
      }
      continue;
    }
    if (reach > sched.slope * dep.dt) {
      d.code = "slope-exceeded";
      d.message = "distance " + dist.str() + " in " + dim + " at dt=" +
                  std::to_string(dep.dt) + " exceeds the skew slope*dt=" +
                  std::to_string(sched.slope * dep.dt) + " of " + sched.str();
      out.diagnostics.push_back(std::move(d));
    }
  }
}

}  // namespace

LegalityReport verify(const DependenceGraph& g,
                      const ScheduleDescriptor& sched) {
  LegalityReport out;
  out.schedule = sched;
  out.statements_checked = static_cast<int>(g.stmts.size());
  out.dependences_checked = static_cast<int>(g.deps.size());
  if (!sched.time_tiled()) {
    // Barrier schedules execute whole timesteps in program order: every
    // forward-in-time dependence is respected by construction, and the
    // nests the pipeline emits carry no backward dependences.
    return out;
  }
  for (const Statement& s : g.stmts) {
    if (!s.under_time_loop) continue;
    check_tileable(s, sched, out);
  }
  for (const Dependence& dep : g.deps) check_dependence(dep, sched, out);
  return out;
}

LegalityReport verify_nest(const dsl::ir::Node& root,
                           const AccessSummary& kernel,
                           const ScheduleDescriptor& sched) {
  return verify(build_dependences(root, kernel), sched);
}

DependenceGraph canonical_dependences(const AccessSummary& kernel, int stage,
                                      bool sources, bool receivers) {
  TEMPEST_REQUIRE_MSG(stage >= 0 && stage <= 2,
                      "canonical analysis runs on the untiled stages");
  const std::string stmt = "A_" + kernel.kernel + "(t, x, y, z)";
  dsl::ir::Node root =
      dsl::passes::build_timestepping(stmt, sources, receivers);
  if (stage >= 1) dsl::passes::precompute_and_fuse(root);
  if (stage >= 2) dsl::passes::compress_iteration_space(root);
  return build_dependences(root, kernel);
}

LegalityReport verify_canonical(const AccessSummary& kernel, int stage,
                                bool sources, bool receivers,
                                const ScheduleDescriptor& sched) {
  return verify(canonical_dependences(kernel, stage, sources, receivers),
                sched);
}

void require_legal(const LegalityReport& report) {
  if (!report.legal()) throw ScheduleLegalityError(report);
}

}  // namespace tempest::analysis
