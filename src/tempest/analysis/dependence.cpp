#include "tempest/analysis/dependence.hpp"

#include <algorithm>
#include <sstream>

#include "tempest/util/error.hpp"

namespace tempest::analysis {

const char* to_string(DepKind k) {
  switch (k) {
    case DepKind::Flow: return "flow";
    case DepKind::Anti: return "anti";
    case DepKind::Output: return "output";
  }
  return "?";
}

const Extent& Dependence::dist(const std::string& dim) const {
  if (dim == "x") return dx;
  if (dim == "y") return dy;
  TEMPEST_REQUIRE_MSG(dim == "z", "unknown tiled dimension: " + dim);
  return dz;
}

std::string Dependence::str() const {
  std::ostringstream os;
  os << to_string(kind) << " S" << src << "->S" << dst << ' ' << field
     << " dt=" << dt << " (" << dx.str() << ',' << dy.str() << ',' << dz.str()
     << ')';
  return os.str();
}

namespace {

/// Distance of the sink iteration minus the source iteration on one axis:
/// src touches offset a, dst touches offset b over the same locations, so
/// the iteration gap is a - b (interval arithmetic; star absorbs).
Extent axis_distance(const Extent& a, const Extent& b) {
  if (a.star || b.star) return Extent::unknown();
  return Extent::range(a.lo - b.hi, a.hi - b.lo);
}

DepKind kind_of(bool src_writes, bool dst_writes) {
  if (src_writes && dst_writes) return DepKind::Output;
  return src_writes ? DepKind::Flow : DepKind::Anti;
}

Extent hull(const Extent& a, const Extent& b) {
  if (a.star || b.star) return Extent::unknown();
  return Extent::range(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

/// Merge edges with the same (src, dst, kind, field, dt) key into one edge
/// whose distance is the interval hull — one reported edge per statement
/// pair and time distance keeps the golden summaries readable.
void add_edge(std::vector<Dependence>& deps, Dependence d) {
  for (Dependence& e : deps) {
    if (e.src == d.src && e.dst == d.dst && e.kind == d.kind &&
        e.field == d.field && e.dt == d.dt) {
      e.dx = hull(e.dx, d.dx);
      e.dy = hull(e.dy, d.dy);
      e.dz = hull(e.dz, d.dz);
      return;
    }
  }
  deps.push_back(std::move(d));
}

}  // namespace

DependenceGraph build_dependences(const dsl::ir::Node& root,
                                  const AccessSummary& kernel) {
  DependenceGraph g;
  g.stmts = extract_accesses(root, kernel);

  for (std::size_t i = 0; i < g.stmts.size(); ++i) {
    for (std::size_t j = i; j < g.stmts.size(); ++j) {
      const Statement& si = g.stmts[i];
      const Statement& sj = g.stmts[j];
      // The precompute prologue runs once, before the first tile of any
      // schedule: its edges are respected by construction.
      if (!si.under_time_loop || !sj.under_time_loop) continue;
      for (const Access& a : si.accesses) {
        for (const Access& b : sj.accesses) {
          if (a.field != b.field || (!a.is_write && !b.is_write)) continue;
          if (!a.grid) continue;  // point-axis tables are never tiled
          const int gap = a.time - b.time;  // sink iter - source iter
          Dependence d;
          d.field = a.field;
          if (gap > 0) {
            // Si writes/reads the location first (at the earlier step).
            d.src = si.id;
            d.dst = sj.id;
            d.dt = gap;
            d.kind = kind_of(a.is_write, b.is_write);
            d.dx = axis_distance(a.dx, b.dx);
            d.dy = axis_distance(a.dy, b.dy);
            d.dz = axis_distance(a.dz, b.dz);
          } else if (gap < 0) {
            d.src = sj.id;
            d.dst = si.id;
            d.dt = -gap;
            d.kind = kind_of(b.is_write, a.is_write);
            d.dx = axis_distance(b.dx, a.dx);
            d.dy = axis_distance(b.dy, a.dy);
            d.dz = axis_distance(b.dz, a.dz);
          } else {
            // Same iteration: program order decides the direction; a
            // statement's own same-slot accesses carry no edge.
            if (i == j) continue;
            d.src = si.id;
            d.dst = sj.id;
            d.dt = 0;
            d.kind = kind_of(a.is_write, b.is_write);
            d.dx = axis_distance(a.dx, b.dx);
            d.dy = axis_distance(a.dy, b.dy);
            d.dz = axis_distance(a.dz, b.dz);
          }
          add_edge(g.deps, std::move(d));
        }
      }
    }
  }
  return g;
}

std::string summary(const DependenceGraph& g) {
  std::ostringstream os;
  os << print_accesses(g.stmts);
  os << "deps:\n";
  for (const Dependence& d : g.deps) os << "  " << d.str() << '\n';
  return os.str();
}

}  // namespace tempest::analysis
