#include "tempest/physics/tti.hpp"

#include <cmath>
#include <vector>

#include "tempest/core/engine.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"

namespace tempest::physics {

analysis::AccessSummary tti_access_summary(int space_order) {
  return {.kernel = "tti",
          .field = "u",
          .radius = space_order / 2,
          .substeps = 1,
          .time_reads = {0, -1},
          .write_radius = 0};
}

namespace {

/// Folded weights: second derivative (w2[0..R], symmetric) and first
/// derivative (w1[1..R], antisymmetric, centre weight zero).
struct TTIWeights {
  std::vector<real_t> w2;
  std::vector<real_t> w1;
};

TTIWeights folded_weights(int space_order) {
  const stencil::Coeffs c2 = stencil::central(2, space_order);
  const stencil::Coeffs c1 = stencil::central(1, space_order);
  const int r = stencil::radius_for_order(space_order);
  TTIWeights w;
  w.w2.resize(static_cast<std::size_t>(r) + 1);
  w.w1.resize(static_cast<std::size_t>(r) + 1);
  for (int k = 0; k <= r; ++k) {
    w.w2[static_cast<std::size_t>(k)] =
        static_cast<real_t>(c2.weights[static_cast<std::size_t>(r + k)]);
    w.w1[static_cast<std::size_t>(k)] =
        static_cast<real_t>(c1.weights[static_cast<std::size_t>(r + k)]);
  }
  return w;
}

/// Per-point rotated operator evaluation: all second derivatives of field f
/// at linear offset i, returning (laplacian_acc, Hz_acc) without the 1/h^2
/// factor. The mixed terms use the folded antisymmetric first-derivative
/// tensor product (the "cross" stencil).
template <int R>
struct RotatedDerivs {
  real_t lap;
  real_t hz;
};

template <int R>
inline RotatedDerivs<R> rotated_derivs(
    const real_t* __restrict f, std::ptrdiff_t i, std::ptrdiff_t sx,
    std::ptrdiff_t sy, const real_t* __restrict w2,
    const real_t* __restrict w1, real_t cxx, real_t cyy, real_t czz,
    real_t cxy, real_t cxz, real_t cyz) {
  real_t d2x = w2[0] * f[i];
  real_t d2y = d2x;
  real_t d2z = d2x;
#pragma GCC unroll 8
  for (int k = 1; k <= R; ++k) {
    d2x += w2[k] * (f[i - k * sx] + f[i + k * sx]);
    d2y += w2[k] * (f[i - k * sy] + f[i + k * sy]);
    d2z += w2[k] * (f[i - k] + f[i + k]);
  }
  real_t dxy = real_t{0}, dxz = real_t{0}, dyz = real_t{0};
  for (int a = 1; a <= R; ++a) {
    const std::ptrdiff_t ax = a * sx;
    const std::ptrdiff_t ay = a * sy;
    for (int b = 1; b <= R; ++b) {
      const real_t wab = w1[a] * w1[b];
      const std::ptrdiff_t by = b * sy;
      dxy += wab * (f[i + ax + by] - f[i + ax - by] - f[i - ax + by] +
                    f[i - ax - by]);
      dxz += wab * (f[i + ax + b] - f[i + ax - b] - f[i - ax + b] +
                    f[i - ax - b]);
      dyz += wab * (f[i + ay + b] - f[i + ay - b] - f[i - ay + b] +
                    f[i - ay - b]);
    }
  }
  RotatedDerivs<R> out;
  out.lap = d2x + d2y + d2z;
  out.hz = cxx * d2x + cyy * d2y + czz * d2z +
           real_t{2} * (cxy * dxy + cxz * dxz + cyz * dyz);
  return out;
}

/// Parameter-pointer bundle shared by the kernels (all fields share one set
/// of strides).
struct TTIFields {
  const real_t* m;
  const real_t* damp;
  const real_t* cxx;
  const real_t* cyy;
  const real_t* czz;
  const real_t* cxy;
  const real_t* cxz;
  const real_t* cyz;
  const real_t* ah;
  const real_t* an;
};

template <int R>
void update_block(real_t* __restrict pn, const real_t* __restrict pc,
                  const real_t* __restrict pp, real_t* __restrict qn,
                  const real_t* __restrict qc, const real_t* __restrict qp,
                  const TTIFields& f, std::ptrdiff_t sx, std::ptrdiff_t sy,
                  const grid::Box3& b, const real_t* __restrict w2,
                  const real_t* __restrict w1, real_t inv_h2, real_t idt2,
                  real_t i2dt) {
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
#pragma omp simd
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        const RotatedDerivs<R> dp = rotated_derivs<R>(
            pc, i, sx, sy, w2, w1, f.cxx[i], f.cyy[i], f.czz[i], f.cxy[i],
            f.cxz[i], f.cyz[i]);
        const RotatedDerivs<R> dq = rotated_derivs<R>(
            qc, i, sx, sy, w2, w1, f.cxx[i], f.cyy[i], f.czz[i], f.cxy[i],
            f.cxz[i], f.cyz[i]);
        const real_t hperp_p = (dp.lap - dp.hz) * inv_h2;
        const real_t hz_q = dq.hz * inv_h2;
        const real_t denom = f.m[i] * idt2 + f.damp[i] * i2dt;
        pn[i] = (f.ah[i] * hperp_p + f.an[i] * hz_q +
                 f.m[i] * idt2 * (real_t{2} * pc[i] - pp[i]) +
                 f.damp[i] * i2dt * pp[i]) /
                denom;
        qn[i] = (f.an[i] * hperp_p + hz_q +
                 f.m[i] * idt2 * (real_t{2} * qc[i] - qp[i]) +
                 f.damp[i] * i2dt * qp[i]) /
                denom;
      }
    }
  }
}

/// Runtime-radius fallback (same arithmetic/summation order).
void update_block_generic(real_t* pn, const real_t* pc, const real_t* pp,
                          real_t* qn, const real_t* qc, const real_t* qp,
                          const TTIFields& f, std::ptrdiff_t sx,
                          std::ptrdiff_t sy, const grid::Box3& b,
                          const real_t* w2, const real_t* w1, int radius,
                          real_t inv_h2, real_t idt2, real_t i2dt) {
  auto derivs = [&](const real_t* fld, std::ptrdiff_t i, real_t cxx,
                    real_t cyy, real_t czz, real_t cxy, real_t cxz,
                    real_t cyz, real_t& lap, real_t& hz) {
    real_t d2x = w2[0] * fld[i], d2y = d2x, d2z = d2x;
    for (int k = 1; k <= radius; ++k) {
      d2x += w2[k] * (fld[i - k * sx] + fld[i + k * sx]);
      d2y += w2[k] * (fld[i - k * sy] + fld[i + k * sy]);
      d2z += w2[k] * (fld[i - k] + fld[i + k]);
    }
    real_t dxy = 0, dxz = 0, dyz = 0;
    for (int a = 1; a <= radius; ++a) {
      for (int b2 = 1; b2 <= radius; ++b2) {
        const real_t wab = w1[a] * w1[b2];
        const std::ptrdiff_t ax = a * sx, ay = a * sy, by = b2 * sy;
        dxy += wab * (fld[i + ax + by] - fld[i + ax - by] -
                      fld[i - ax + by] + fld[i - ax - by]);
        dxz += wab * (fld[i + ax + b2] - fld[i + ax - b2] -
                      fld[i - ax + b2] + fld[i - ax - b2]);
        dyz += wab * (fld[i + ay + b2] - fld[i + ay - b2] -
                      fld[i - ay + b2] + fld[i - ay - b2]);
      }
    }
    lap = d2x + d2y + d2z;
    hz = cxx * d2x + cyy * d2y + czz * d2z +
         real_t{2} * (cxy * dxy + cxz * dxz + cyz * dyz);
  };

  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t lap_p, hz_p, lap_q, hz_q_raw;
        derivs(pc, i, f.cxx[i], f.cyy[i], f.czz[i], f.cxy[i], f.cxz[i],
               f.cyz[i], lap_p, hz_p);
        derivs(qc, i, f.cxx[i], f.cyy[i], f.czz[i], f.cxy[i], f.cxz[i],
               f.cyz[i], lap_q, hz_q_raw);
        const real_t hperp_p = (lap_p - hz_p) * inv_h2;
        const real_t hz_q = hz_q_raw * inv_h2;
        const real_t denom = f.m[i] * idt2 + f.damp[i] * i2dt;
        pn[i] = (f.ah[i] * hperp_p + f.an[i] * hz_q +
                 f.m[i] * idt2 * (real_t{2} * pc[i] - pp[i]) +
                 f.damp[i] * i2dt * pp[i]) /
                denom;
        qn[i] = (f.an[i] * hperp_p + hz_q +
                 f.m[i] * idt2 * (real_t{2} * qc[i] - qp[i]) +
                 f.damp[i] * i2dt * qp[i]) /
                denom;
      }
    }
  }
}

/// PhysicsKernel adapter: coupled p/q three-slot buffers, source injected
/// into both, receivers measure p.
class TTIKernel {
 public:
  static constexpr int kSubstepsPerStep = 1;
  static constexpr int kFirstStep = 1;

  TTIKernel(const TTIModel& model, grid::TimeBuffer<real_t>& p,
            grid::TimeBuffer<real_t>& q, const TTIFields& f, double dt)
      : model_(model),
        p_(p),
        q_(q),
        f_(f),
        w_(folded_weights(model.geom.space_order)),
        inv_h2_(static_cast<real_t>(
            1.0 / (model.geom.spacing * model.geom.spacing))),
        idt2_(static_cast<real_t>(1.0 / (dt * dt))),
        i2dt_(static_cast<real_t>(1.0 / (2.0 * dt))),
        dt2_(static_cast<real_t>(dt * dt)),
        sx_(p.at(0).stride_x()),
        sy_(p.at(0).stride_y()) {
    TEMPEST_REQUIRE(model.m.stride_x() == sx_);
  }

  [[nodiscard]] const grid::Extents3& extents() const {
    return model_.geom.extents;
  }
  [[nodiscard]] int radius() const { return model_.geom.radius(); }
  [[nodiscard]] analysis::AccessSummary access_summary() const {
    return tti_access_summary(model_.geom.space_order);
  }

  void apply(int t, const grid::Box3& box) {
    real_t* pn = p_.at(t + 1).origin();
    const real_t* pc = p_.at(t).origin();
    const real_t* pp = p_.at(t - 1).origin();
    real_t* qn = q_.at(t + 1).origin();
    const real_t* qc = q_.at(t).origin();
    const real_t* qp = q_.at(t - 1).origin();
    switch (radius()) {
      case 1:
        update_block<1>(pn, pc, pp, qn, qc, qp, f_, sx_, sy_, box,
                        w_.w2.data(), w_.w1.data(), inv_h2_, idt2_, i2dt_);
        break;
      case 2:
        update_block<2>(pn, pc, pp, qn, qc, qp, f_, sx_, sy_, box,
                        w_.w2.data(), w_.w1.data(), inv_h2_, idt2_, i2dt_);
        break;
      case 4:
        update_block<4>(pn, pc, pp, qn, qc, qp, f_, sx_, sy_, box,
                        w_.w2.data(), w_.w1.data(), inv_h2_, idt2_, i2dt_);
        break;
      case 6:
        update_block<6>(pn, pc, pp, qn, qc, qp, f_, sx_, sy_, box,
                        w_.w2.data(), w_.w1.data(), inv_h2_, idt2_, i2dt_);
        break;
      default:
        update_block_generic(pn, pc, pp, qn, qc, qp, f_, sx_, sy_, box,
                             w_.w2.data(), w_.w1.data(), radius(), inv_h2_,
                             idt2_, i2dt_);
        break;
    }
  }

  [[nodiscard]] real_t inject_scale(int x, int y, int z) const {
    return dt2_ / model_.m(x, y, z);
  }
  [[nodiscard]] core::engine::FieldRefs inject_fields(int t) {
    return {{&p_.at(t + 1), &q_.at(t + 1)}, 2};
  }
  [[nodiscard]] const grid::Grid3<real_t>& gather_field(int t) const {
    return p_.at(t + 1);
  }
  [[nodiscard]] core::engine::HealthFields health_fields(int t) {
    return {{{{"p", &p_.at(t)}, {"q", &q_.at(t)}}}, 2};
  }

 private:
  const TTIModel& model_;
  grid::TimeBuffer<real_t>& p_;
  grid::TimeBuffer<real_t>& q_;
  TTIFields f_;
  TTIWeights w_;
  real_t inv_h2_, idt2_, i2dt_, dt2_;
  std::ptrdiff_t sx_, sy_;
};

static_assert(core::engine::PhysicsKernel<TTIKernel>);

}  // namespace

TTIPropagator::TTIPropagator(const TTIModel& model, PropagatorOptions opts)
    : model_(model),
      opts_(opts),
      dt_(opts.dt > 0.0 ? opts.dt : model.critical_dt()),
      p_(3, model.geom.extents, model.geom.radius()),
      q_(3, model.geom.extents, model.geom.radius()),
      cxx_(model.geom.extents, model.geom.radius(), real_t{0}),
      cyy_(model.geom.extents, model.geom.radius(), real_t{0}),
      czz_(model.geom.extents, model.geom.radius(), real_t{0}),
      cxy_(model.geom.extents, model.geom.radius(), real_t{0}),
      cxz_(model.geom.extents, model.geom.radius(), real_t{0}),
      cyz_(model.geom.extents, model.geom.radius(), real_t{0}),
      ah_(model.geom.extents, model.geom.radius(), real_t{1}),
      an_(model.geom.extents, model.geom.radius(), real_t{1}) {
  TEMPEST_REQUIRE(model.geom.space_order >= 2 &&
                  model.geom.space_order % 2 == 0);
  TEMPEST_REQUIRE(opts_.tiles.valid());
  // Precompute the symmetry-axis dyad n n^T and the Thomsen factors once:
  // n = (sin t cos f, sin t sin f, cos t) with tilt t and azimuth f.
  cxx_.for_each_interior([&](int x, int y, int z) {
    const double t = model_.theta(x, y, z);
    const double f = model_.phi(x, y, z);
    const double nx = std::sin(t) * std::cos(f);
    const double ny = std::sin(t) * std::sin(f);
    const double nz = std::cos(t);
    cxx_(x, y, z) = static_cast<real_t>(nx * nx);
    cyy_(x, y, z) = static_cast<real_t>(ny * ny);
    czz_(x, y, z) = static_cast<real_t>(nz * nz);
    cxy_(x, y, z) = static_cast<real_t>(nx * ny);
    cxz_(x, y, z) = static_cast<real_t>(nx * nz);
    cyz_(x, y, z) = static_cast<real_t>(ny * nz);
    ah_(x, y, z) =
        static_cast<real_t>(1.0 + 2.0 * model_.epsilon(x, y, z));
    an_(x, y, z) =
        static_cast<real_t>(std::sqrt(1.0 + 2.0 * model_.delta(x, y, z)));
  });
}

RunStats TTIPropagator::run(Schedule sched,
                            const sparse::SparseTimeSeries& src,
                            sparse::SparseTimeSeries* rec,
                            const StepCallback& on_step) {
  if (rec != nullptr) rec->zero();
  p_.fill(real_t{0});
  q_.fill(real_t{0});
  return run_from(TTIKernel::kFirstStep, sched, src, rec, on_step);
}

RunStats TTIPropagator::run_from(int t_begin, Schedule sched,
                                 const sparse::SparseTimeSeries& src,
                                 sparse::SparseTimeSeries* rec,
                                 const StepCallback& on_step) {
  const TTIFields f{model_.m.origin(),  model_.damp.origin(), cxx_.origin(),
                    cyy_.origin(),      czz_.origin(),        cxy_.origin(),
                    cxz_.origin(),      cyz_.origin(),        ah_.origin(),
                    an_.origin()};
  TTIKernel kernel(model_, p_, q_, f, dt_);
  core::engine::ScheduleExecutor executor(kernel, opts_);
  return executor.run_from(t_begin, sched, src, rec, on_step);
}

resilience::Checkpoint TTIPropagator::capture(
    int step, std::uint64_t fingerprint,
    const sparse::SparseTimeSeries* rec) const {
  std::vector<const grid::Grid3<real_t>*> slices;
  slices.reserve(static_cast<std::size_t>(p_.slots() + q_.slots()));
  for (int s = 0; s < p_.slots(); ++s) slices.push_back(&p_.slot(s));
  for (int s = 0; s < q_.slots(); ++s) slices.push_back(&q_.slot(s));
  return core::engine::capture_state(slices, step, TTIKernel::kFirstStep,
                                     fingerprint, rec);
}

void TTIPropagator::restore(const resilience::Checkpoint& ck) {
  std::vector<grid::Grid3<real_t>*> slices;
  slices.reserve(static_cast<std::size_t>(p_.slots() + q_.slots()));
  for (int s = 0; s < p_.slots(); ++s) slices.push_back(&p_.slot(s));
  for (int s = 0; s < q_.slots(); ++s) slices.push_back(&q_.slot(s));
  core::engine::restore_state(slices, ck);
}

}  // namespace tempest::physics
