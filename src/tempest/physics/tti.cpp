#include "tempest/physics/tti.hpp"

#include <cmath>
#include <vector>

#include "tempest/core/compress.hpp"
#include "tempest/core/fused.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/sparse/operators.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/timer.hpp"

namespace tempest::physics {

namespace {

/// Folded weights: second derivative (w2[0..R], symmetric) and first
/// derivative (w1[1..R], antisymmetric, centre weight zero).
struct TTIWeights {
  std::vector<real_t> w2;
  std::vector<real_t> w1;
};

TTIWeights folded_weights(int space_order) {
  const stencil::Coeffs c2 = stencil::central(2, space_order);
  const stencil::Coeffs c1 = stencil::central(1, space_order);
  const int r = stencil::radius_for_order(space_order);
  TTIWeights w;
  w.w2.resize(static_cast<std::size_t>(r) + 1);
  w.w1.resize(static_cast<std::size_t>(r) + 1);
  for (int k = 0; k <= r; ++k) {
    w.w2[static_cast<std::size_t>(k)] =
        static_cast<real_t>(c2.weights[static_cast<std::size_t>(r + k)]);
    w.w1[static_cast<std::size_t>(k)] =
        static_cast<real_t>(c1.weights[static_cast<std::size_t>(r + k)]);
  }
  return w;
}

/// Per-point rotated operator evaluation: all second derivatives of field f
/// at linear offset i, returning (laplacian_acc, Hz_acc) without the 1/h^2
/// factor. The mixed terms use the folded antisymmetric first-derivative
/// tensor product (the "cross" stencil).
template <int R>
struct RotatedDerivs {
  real_t lap;
  real_t hz;
};

template <int R>
inline RotatedDerivs<R> rotated_derivs(
    const real_t* __restrict f, std::ptrdiff_t i, std::ptrdiff_t sx,
    std::ptrdiff_t sy, const real_t* __restrict w2,
    const real_t* __restrict w1, real_t cxx, real_t cyy, real_t czz,
    real_t cxy, real_t cxz, real_t cyz) {
  real_t d2x = w2[0] * f[i];
  real_t d2y = d2x;
  real_t d2z = d2x;
#pragma GCC unroll 8
  for (int k = 1; k <= R; ++k) {
    d2x += w2[k] * (f[i - k * sx] + f[i + k * sx]);
    d2y += w2[k] * (f[i - k * sy] + f[i + k * sy]);
    d2z += w2[k] * (f[i - k] + f[i + k]);
  }
  real_t dxy = real_t{0}, dxz = real_t{0}, dyz = real_t{0};
  for (int a = 1; a <= R; ++a) {
    const std::ptrdiff_t ax = a * sx;
    const std::ptrdiff_t ay = a * sy;
    for (int b = 1; b <= R; ++b) {
      const real_t wab = w1[a] * w1[b];
      const std::ptrdiff_t by = b * sy;
      dxy += wab * (f[i + ax + by] - f[i + ax - by] - f[i - ax + by] +
                    f[i - ax - by]);
      dxz += wab * (f[i + ax + b] - f[i + ax - b] - f[i - ax + b] +
                    f[i - ax - b]);
      dyz += wab * (f[i + ay + b] - f[i + ay - b] - f[i - ay + b] +
                    f[i - ay - b]);
    }
  }
  RotatedDerivs<R> out;
  out.lap = d2x + d2y + d2z;
  out.hz = cxx * d2x + cyy * d2y + czz * d2z +
           real_t{2} * (cxy * dxy + cxz * dxz + cyz * dyz);
  return out;
}

/// Parameter-pointer bundle shared by the kernels (all fields share one set
/// of strides).
struct TTIFields {
  const real_t* m;
  const real_t* damp;
  const real_t* cxx;
  const real_t* cyy;
  const real_t* czz;
  const real_t* cxy;
  const real_t* cxz;
  const real_t* cyz;
  const real_t* ah;
  const real_t* an;
};

template <int R>
void update_block(real_t* __restrict pn, const real_t* __restrict pc,
                  const real_t* __restrict pp, real_t* __restrict qn,
                  const real_t* __restrict qc, const real_t* __restrict qp,
                  const TTIFields& f, std::ptrdiff_t sx, std::ptrdiff_t sy,
                  const grid::Box3& b, const real_t* __restrict w2,
                  const real_t* __restrict w1, real_t inv_h2, real_t idt2,
                  real_t i2dt) {
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
#pragma omp simd
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        const RotatedDerivs<R> dp = rotated_derivs<R>(
            pc, i, sx, sy, w2, w1, f.cxx[i], f.cyy[i], f.czz[i], f.cxy[i],
            f.cxz[i], f.cyz[i]);
        const RotatedDerivs<R> dq = rotated_derivs<R>(
            qc, i, sx, sy, w2, w1, f.cxx[i], f.cyy[i], f.czz[i], f.cxy[i],
            f.cxz[i], f.cyz[i]);
        const real_t hperp_p = (dp.lap - dp.hz) * inv_h2;
        const real_t hz_q = dq.hz * inv_h2;
        const real_t denom = f.m[i] * idt2 + f.damp[i] * i2dt;
        pn[i] = (f.ah[i] * hperp_p + f.an[i] * hz_q +
                 f.m[i] * idt2 * (real_t{2} * pc[i] - pp[i]) +
                 f.damp[i] * i2dt * pp[i]) /
                denom;
        qn[i] = (f.an[i] * hperp_p + hz_q +
                 f.m[i] * idt2 * (real_t{2} * qc[i] - qp[i]) +
                 f.damp[i] * i2dt * qp[i]) /
                denom;
      }
    }
  }
}

/// Runtime-radius fallback (same arithmetic/summation order).
void update_block_generic(real_t* pn, const real_t* pc, const real_t* pp,
                          real_t* qn, const real_t* qc, const real_t* qp,
                          const TTIFields& f, std::ptrdiff_t sx,
                          std::ptrdiff_t sy, const grid::Box3& b,
                          const real_t* w2, const real_t* w1, int radius,
                          real_t inv_h2, real_t idt2, real_t i2dt) {
  auto derivs = [&](const real_t* fld, std::ptrdiff_t i, real_t cxx,
                    real_t cyy, real_t czz, real_t cxy, real_t cxz,
                    real_t cyz, real_t& lap, real_t& hz) {
    real_t d2x = w2[0] * fld[i], d2y = d2x, d2z = d2x;
    for (int k = 1; k <= radius; ++k) {
      d2x += w2[k] * (fld[i - k * sx] + fld[i + k * sx]);
      d2y += w2[k] * (fld[i - k * sy] + fld[i + k * sy]);
      d2z += w2[k] * (fld[i - k] + fld[i + k]);
    }
    real_t dxy = 0, dxz = 0, dyz = 0;
    for (int a = 1; a <= radius; ++a) {
      for (int b2 = 1; b2 <= radius; ++b2) {
        const real_t wab = w1[a] * w1[b2];
        const std::ptrdiff_t ax = a * sx, ay = a * sy, by = b2 * sy;
        dxy += wab * (fld[i + ax + by] - fld[i + ax - by] -
                      fld[i - ax + by] + fld[i - ax - by]);
        dxz += wab * (fld[i + ax + b2] - fld[i + ax - b2] -
                      fld[i - ax + b2] + fld[i - ax - b2]);
        dyz += wab * (fld[i + ay + b2] - fld[i + ay - b2] -
                      fld[i - ay + b2] + fld[i - ay - b2]);
      }
    }
    lap = d2x + d2y + d2z;
    hz = cxx * d2x + cyy * d2y + czz * d2z +
         real_t{2} * (cxy * dxy + cxz * dxz + cyz * dyz);
  };

  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t lap_p, hz_p, lap_q, hz_q_raw;
        derivs(pc, i, f.cxx[i], f.cyy[i], f.czz[i], f.cxy[i], f.cxz[i],
               f.cyz[i], lap_p, hz_p);
        derivs(qc, i, f.cxx[i], f.cyy[i], f.czz[i], f.cxy[i], f.cxz[i],
               f.cyz[i], lap_q, hz_q_raw);
        const real_t hperp_p = (lap_p - hz_p) * inv_h2;
        const real_t hz_q = hz_q_raw * inv_h2;
        const real_t denom = f.m[i] * idt2 + f.damp[i] * i2dt;
        pn[i] = (f.ah[i] * hperp_p + f.an[i] * hz_q +
                 f.m[i] * idt2 * (real_t{2} * pc[i] - pp[i]) +
                 f.damp[i] * i2dt * pp[i]) /
                denom;
        qn[i] = (f.an[i] * hperp_p + hz_q +
                 f.m[i] * idt2 * (real_t{2} * qc[i] - qp[i]) +
                 f.damp[i] * i2dt * qp[i]) /
                denom;
      }
    }
  }
}

}  // namespace

TTIPropagator::TTIPropagator(const TTIModel& model, PropagatorOptions opts)
    : model_(model),
      opts_(opts),
      dt_(opts.dt > 0.0 ? opts.dt : model.critical_dt()),
      p_(3, model.geom.extents, model.geom.radius()),
      q_(3, model.geom.extents, model.geom.radius()),
      cxx_(model.geom.extents, model.geom.radius(), real_t{0}),
      cyy_(model.geom.extents, model.geom.radius(), real_t{0}),
      czz_(model.geom.extents, model.geom.radius(), real_t{0}),
      cxy_(model.geom.extents, model.geom.radius(), real_t{0}),
      cxz_(model.geom.extents, model.geom.radius(), real_t{0}),
      cyz_(model.geom.extents, model.geom.radius(), real_t{0}),
      ah_(model.geom.extents, model.geom.radius(), real_t{1}),
      an_(model.geom.extents, model.geom.radius(), real_t{1}) {
  TEMPEST_REQUIRE(model.geom.space_order >= 2 &&
                  model.geom.space_order % 2 == 0);
  TEMPEST_REQUIRE(opts_.tiles.valid());
  // Precompute the symmetry-axis dyad n n^T and the Thomsen factors once:
  // n = (sin t cos f, sin t sin f, cos t) with tilt t and azimuth f.
  cxx_.for_each_interior([&](int x, int y, int z) {
    const double t = model_.theta(x, y, z);
    const double f = model_.phi(x, y, z);
    const double nx = std::sin(t) * std::cos(f);
    const double ny = std::sin(t) * std::sin(f);
    const double nz = std::cos(t);
    cxx_(x, y, z) = static_cast<real_t>(nx * nx);
    cyy_(x, y, z) = static_cast<real_t>(ny * ny);
    czz_(x, y, z) = static_cast<real_t>(nz * nz);
    cxy_(x, y, z) = static_cast<real_t>(nx * ny);
    cxz_(x, y, z) = static_cast<real_t>(nx * nz);
    cyz_(x, y, z) = static_cast<real_t>(ny * nz);
    ah_(x, y, z) =
        static_cast<real_t>(1.0 + 2.0 * model_.epsilon(x, y, z));
    an_(x, y, z) =
        static_cast<real_t>(std::sqrt(1.0 + 2.0 * model_.delta(x, y, z)));
  });
}

RunStats TTIPropagator::run(Schedule sched,
                            const sparse::SparseTimeSeries& src,
                            sparse::SparseTimeSeries* rec) {
  const int nt = src.nt();
  TEMPEST_REQUIRE(nt >= 2);
  TEMPEST_REQUIRE_MSG(sched != Schedule::Diamond,
                      "diamond tiling is implemented for the acoustic "
                      "propagator only");
  if (rec != nullptr) {
    TEMPEST_REQUIRE(rec->nt() >= nt);
    rec->zero();
  }
  p_.fill(real_t{0});
  q_.fill(real_t{0});

  const auto& e = model_.geom.extents;
  const int radius = model_.geom.radius();
  const TTIWeights w = folded_weights(model_.geom.space_order);
  const real_t inv_h2 =
      static_cast<real_t>(1.0 / (model_.geom.spacing * model_.geom.spacing));
  const real_t idt2 = static_cast<real_t>(1.0 / (dt_ * dt_));
  const real_t i2dt = static_cast<real_t>(1.0 / (2.0 * dt_));
  const real_t dt2 = static_cast<real_t>(dt_ * dt_);

  const std::ptrdiff_t sx = p_.at(0).stride_x();
  const std::ptrdiff_t sy = p_.at(0).stride_y();
  TEMPEST_REQUIRE(model_.m.stride_x() == sx);
  const TTIFields f{model_.m.origin(),  model_.damp.origin(), cxx_.origin(),
                    cyy_.origin(),      czz_.origin(),        cxy_.origin(),
                    cxz_.origin(),      cyz_.origin(),        ah_.origin(),
                    an_.origin()};

  const auto& m_grid = model_.m;
  auto inj_scale = [dt2, &m_grid](int x, int y, int z) {
    return dt2 / m_grid(x, y, z);
  };

  auto stencil_block = [&](int t, const grid::Box3& box) {
    TEMPEST_TRACE_COUNT(CellsUpdated, box.volume());
    TEMPEST_TRACE_COUNT(
        HaloCellsTouched,
        2 * radius *
            (box.x.length() * box.y.length() + box.y.length() * box.z.length() +
             box.x.length() * box.z.length()));
    real_t* pn = p_.at(t + 1).origin();
    const real_t* pc = p_.at(t).origin();
    const real_t* pp = p_.at(t - 1).origin();
    real_t* qn = q_.at(t + 1).origin();
    const real_t* qc = q_.at(t).origin();
    const real_t* qp = q_.at(t - 1).origin();
    switch (radius) {
      case 1:
        update_block<1>(pn, pc, pp, qn, qc, qp, f, sx, sy, box, w.w2.data(),
                        w.w1.data(), inv_h2, idt2, i2dt);
        break;
      case 2:
        update_block<2>(pn, pc, pp, qn, qc, qp, f, sx, sy, box, w.w2.data(),
                        w.w1.data(), inv_h2, idt2, i2dt);
        break;
      case 4:
        update_block<4>(pn, pc, pp, qn, qc, qp, f, sx, sy, box, w.w2.data(),
                        w.w1.data(), inv_h2, idt2, i2dt);
        break;
      case 6:
        update_block<6>(pn, pc, pp, qn, qc, qp, f, sx, sy, box, w.w2.data(),
                        w.w1.data(), inv_h2, idt2, i2dt);
        break;
      default:
        update_block_generic(pn, pc, pp, qn, qc, qp, f, sx, sy, box,
                             w.w2.data(), w.w1.data(), radius, inv_h2, idt2,
                             i2dt);
        break;
    }
  };

  RunStats stats;
  stats.point_updates =
      static_cast<long long>(nt - 1) * static_cast<long long>(e.size());

  if (sched == Schedule::Wavefront) {
    util::Timer pre;
    const core::SourceMasks masks =
        core::build_source_masks(e, src, opts_.interp);
    const core::DecomposedSource dcmp =
        core::decompose_sources(masks, src, opts_.interp);
    const core::CompressedSparse cs_src(masks.sm, masks.sid);
    core::DecomposedReceivers drec;
    core::CompressedSparse cs_rec;
    if (rec != nullptr && rec->npoints() > 0) {
      drec = core::decompose_receivers(e, *rec, opts_.interp);
      cs_rec = core::CompressedSparse(drec.rm, drec.rid);
    }
    stats.precompute_seconds = pre.seconds();

    util::Timer timer;
    core::run_wavefront(
        e, 1, nt, radius, opts_.tiles, [&](int t, const grid::Box3& box) {
          {
            TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
            stencil_block(t, box);
          }
          {
            TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
            core::fused_inject(p_.at(t + 1), cs_src, dcmp, t, box.x, box.y,
                               inj_scale);
            core::fused_inject(q_.at(t + 1), cs_src, dcmp, t, box.x, box.y,
                               inj_scale);
          }
          if (rec != nullptr && !cs_rec.empty()) {
            TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
            core::fused_gather(p_.at(t + 1), cs_rec, drec,
                               rec->step(t).data(), box.x, box.y);
          }
        });
    stats.seconds = timer.seconds();
    return stats;
  }

  if (sched == Schedule::SpaceBlocked) {
    const sparse::SupportCache src_cache(src, opts_.interp, e);
    sparse::SupportCache rec_cache;
    if (rec != nullptr && rec->npoints() > 0) {
      rec_cache = sparse::SupportCache(*rec, opts_.interp, e);
    }
    util::Timer timer;
    const auto blocks = grid::decompose_xy(
        grid::Box3::whole(e), opts_.tiles.block_x, opts_.tiles.block_y);
    for (int t = 1; t < nt; ++t) {
      {
        TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
        TEMPEST_TRACE_COUNT(BlocksExecuted, blocks.size());
#pragma omp parallel for schedule(dynamic)
        for (std::size_t b = 0; b < blocks.size(); ++b) {
          stencil_block(t, blocks[b]);
        }
      }
      {
        TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
        sparse::inject_cached(p_.at(t + 1), src, t, src_cache, inj_scale);
        sparse::inject_cached(q_.at(t + 1), src, t, src_cache, inj_scale);
      }
      if (rec != nullptr && rec->npoints() > 0) {
        TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
        sparse::interpolate_cached(p_.at(t + 1), *rec, t, rec_cache);
      }
    }
    stats.seconds = timer.seconds();
    return stats;
  }

  util::Timer timer;
  for (int t = 1; t < nt; ++t) {
    {
      TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
      TEMPEST_TRACE_COUNT(BlocksExecuted, 1);
      stencil_block(t, grid::Box3::whole(e));
    }
    {
      TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
      sparse::inject(p_.at(t + 1), src, t, opts_.interp, inj_scale);
      sparse::inject(q_.at(t + 1), src, t, opts_.interp, inj_scale);
    }
    if (rec != nullptr && rec->npoints() > 0) {
      TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
      sparse::interpolate(p_.at(t + 1), *rec, t, opts_.interp);
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace tempest::physics
