#pragma once

#include <functional>

#include "tempest/config.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/physics/propagator.hpp"
#include "tempest/sparse/series.hpp"

namespace tempest::physics {

/// Isotropic acoustic wave propagator (paper Section III.A):
///   m d²u/dt² + damp du/dt − Δu = src,   d(t) = u(t, x_r)
/// second order in time, configurable even space order, single-precision
/// fields, absorbing sponge boundaries.
///
/// Three schedules (see Schedule): an unblocked reference, the
/// spatially-blocked vectorized baseline the paper compares against, and the
/// wave-front temporally blocked variant enabled by the core/ precompute
/// pipeline. All three produce the same wavefield (bit-exact for a single
/// source; to rounding when several sources share support points, since the
/// decomposition pre-sums their contributions).
class AcousticPropagator {
 public:
  AcousticPropagator(const AcousticModel& model, PropagatorOptions opts = {});

  /// Called after timestep `t_done` is fully computed (stencil + sparse
  /// operators); wavefield(t_done) is then valid. Used by time-stepping
  /// consumers such as RTM snapshotting. Only meaningful for schedules with
  /// a global time barrier — passing a callback with Schedule::Wavefront is
  /// rejected, since under temporal blocking no instant exists at which a
  /// whole timestep is complete (that is the very point of the paper).
  using StepCallback = std::function<void(int t_done)>;

  /// Propagate `src` for src.nt() timesteps, recording into `rec` if
  /// non-null (rec->nt() must be >= src.nt()). The model passed at
  /// construction must outlive the propagator.
  RunStats run(Schedule sched, const sparse::SparseTimeSeries& src,
               sparse::SparseTimeSeries* rec = nullptr,
               const StepCallback& on_step = {});

  /// Wavefield at logical timestep t of the last run (only the last three
  /// timesteps are live in the circular buffer).
  [[nodiscard]] const grid::Grid3<real_t>& wavefield(int t) const {
    return u_.at(t);
  }

  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const AcousticModel& model() const { return model_; }
  [[nodiscard]] const PropagatorOptions& options() const { return opts_; }

 private:
  const AcousticModel& model_;
  PropagatorOptions opts_;
  double dt_;
  grid::TimeBuffer<real_t> u_;
};

}  // namespace tempest::physics
