#pragma once

#include <cstdint>
#include <functional>

#include "tempest/analysis/access.hpp"
#include "tempest/config.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/physics/propagator.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/sparse/series.hpp"

namespace tempest::physics {

/// Access shape the isotropic acoustic stencil declares to the schedule
/// legality verifier: u[t+1] written from a ±radius read of u[t] and a
/// centre read of u[t-1] (second order in time, one substep per step).
[[nodiscard]] analysis::AccessSummary acoustic_access_summary(int space_order);

/// Isotropic acoustic wave propagator (paper Section III.A):
///   m d²u/dt² + damp du/dt − Δu = src,   d(t) = u(t, x_r)
/// second order in time, configurable even space order, single-precision
/// fields, absorbing sponge boundaries.
///
/// All four schedules (see core::engine::Schedule): an unblocked reference,
/// the spatially-blocked vectorized baseline the paper compares against, and
/// the wave-front and diamond temporally blocked variants enabled by the
/// core/ precompute pipeline. All produce the same wavefield (bit-exact for a single
/// source; to rounding when several sources share support points, since the
/// decomposition pre-sums their contributions).
class AcousticPropagator {
 public:
  AcousticPropagator(const AcousticModel& model, PropagatorOptions opts = {});

  /// Called after timestep `t_done` is fully computed (stencil + sparse
  /// operators); wavefield(t_done) is then valid. Used by time-stepping
  /// consumers such as RTM snapshotting. Only meaningful for schedules with
  /// a global time barrier (see core::engine::StepCallback).
  using StepCallback = physics::StepCallback;

  /// Propagate `src` for src.nt() timesteps, recording into `rec` if
  /// non-null (rec->nt() must be >= src.nt()). The model passed at
  /// construction must outlive the propagator.
  RunStats run(Schedule sched, const sparse::SparseTimeSeries& src,
               sparse::SparseTimeSeries* rec = nullptr,
               const StepCallback& on_step = {});

  /// Resume a run whose timesteps < t_begin are already computed: neither
  /// the wavefield buffer nor `rec` is zeroed, and the time loop starts at
  /// t_begin. Seed the state with restore() from a checkpoint captured at
  /// t_begin (capture()'s `step` is the next run_from()'s `t_begin`). A
  /// resumed run reproduces the uninterrupted one bitwise when it uses the
  /// same schedule and options. run() is run_from(1, ...) after zeroing.
  RunStats run_from(int t_begin, Schedule sched,
                    const sparse::SparseTimeSeries& src,
                    sparse::SparseTimeSeries* rec = nullptr,
                    const StepCallback& on_step = {});

  /// Snapshot the full propagation state after timestep `step` completed
  /// (call from a StepCallback, where a global time barrier exists). The
  /// checkpoint carries the circular-buffer slices, the gather recorded so
  /// far (when `rec` is non-null) and the caller's config fingerprint.
  [[nodiscard]] resilience::Checkpoint capture(
      int step, std::uint64_t fingerprint,
      const sparse::SparseTimeSeries* rec = nullptr) const;

  /// Seed the wavefield buffer from a checkpoint. Throws
  /// resilience::CheckpointMismatchError when the checkpoint's slice count
  /// or grid geometry does not match this propagator.
  void restore(const resilience::Checkpoint& ck);

  /// Wavefield at logical timestep t of the last run (only the last three
  /// timesteps are live in the circular buffer).
  [[nodiscard]] const grid::Grid3<real_t>& wavefield(int t) const {
    return u_.at(t);
  }

  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const AcousticModel& model() const { return model_; }
  [[nodiscard]] const PropagatorOptions& options() const { return opts_; }

 private:
  const AcousticModel& model_;
  PropagatorOptions opts_;
  double dt_;
  grid::TimeBuffer<real_t> u_;
};

}  // namespace tempest::physics
