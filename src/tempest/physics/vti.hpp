#pragma once

#include <cstdint>

#include "tempest/analysis/access.hpp"
#include "tempest/config.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/physics/propagator.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/sparse/series.hpp"

namespace tempest::physics {

/// Access shape the VTI stencil declares to the schedule legality verifier
/// (identical dependence pattern to TTI: no mixed derivatives changes the
/// flop count, not the footprint).
[[nodiscard]] analysis::AccessSummary vti_access_summary(int space_order);

/// Vertically transversely isotropic (VTI) pseudo-acoustic propagator: the
/// untilted specialisation of the TTI system (theta = phi = 0), for which
/// the rotated operators collapse to
///   Hz u = d²u/dz²,   Hперп u = d²u/dx² + d²u/dy²
/// — no mixed derivatives, so the kernel is far cheaper than TTI while
/// keeping the coupled p–q anisotropic physics. Widely used in practice
/// (Alkhalifah-style VTI modelling) and, here, a cross-check: on a model
/// with zero tilt this propagator and TTIPropagator must agree.
///
/// Takes a TTIModel whose theta and phi are identically zero (enforced).
class VTIPropagator {
 public:
  VTIPropagator(const TTIModel& model, PropagatorOptions opts = {});

  /// Uniform propagator surface (see AcousticPropagator for the contract):
  /// all four schedules, per-step callbacks on barrier schedules, and
  /// checkpoint/resume via run_from()/capture()/restore().
  RunStats run(Schedule sched, const sparse::SparseTimeSeries& src,
               sparse::SparseTimeSeries* rec = nullptr,
               const StepCallback& on_step = {});

  RunStats run_from(int t_begin, Schedule sched,
                    const sparse::SparseTimeSeries& src,
                    sparse::SparseTimeSeries* rec = nullptr,
                    const StepCallback& on_step = {});

  /// Snapshot both p and q circular buffers (p slices first, then q).
  [[nodiscard]] resilience::Checkpoint capture(
      int step, std::uint64_t fingerprint,
      const sparse::SparseTimeSeries* rec = nullptr) const;

  void restore(const resilience::Checkpoint& ck);

  [[nodiscard]] const grid::Grid3<real_t>& wavefield_p(int t) const {
    return p_.at(t);
  }
  [[nodiscard]] const grid::Grid3<real_t>& wavefield_q(int t) const {
    return q_.at(t);
  }
  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const TTIModel& model() const { return model_; }
  [[nodiscard]] const PropagatorOptions& options() const { return opts_; }

 private:
  const TTIModel& model_;
  PropagatorOptions opts_;
  double dt_;
  grid::TimeBuffer<real_t> p_;
  grid::TimeBuffer<real_t> q_;
  grid::Grid3<real_t> ah_;  ///< 1 + 2 eps
  grid::Grid3<real_t> an_;  ///< sqrt(1 + 2 delta)
};

}  // namespace tempest::physics
