#pragma once

#include <cstdint>

#include "tempest/analysis/access.hpp"
#include "tempest/config.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/physics/propagator.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/sparse/series.hpp"

namespace tempest::physics {

/// Access shape the TTI stencil declares to the schedule legality verifier.
/// The coupled p/q update has the same dependence pattern as the isotropic
/// kernel (t+1 from ±radius of t plus centre of t-1); the verifier models
/// the pair as one wavefield since both are advanced in lockstep.
[[nodiscard]] analysis::AccessSummary tti_access_summary(int space_order);

/// Anisotropic (tilted transversely isotropic) pseudo-acoustic propagator,
/// the industrial RTM/FWI kernel of paper Section III.B. Coupled system of
/// two scalar wavefields p, q (Zhang-style self-adjoint formulation):
///
///   m d²p/dt² + damp dp/dt = (1+2eps) Hперп(p) + sqrt(1+2delta) Hz(q)
///   m d²q/dt² + damp dq/dt = sqrt(1+2delta) Hперп(p) + Hz(q)
///
/// where Hz u = sum_ij n_i n_j d²u/dx_i dx_j is the second derivative along
/// the (spatially varying) symmetry axis n(theta, phi) and Hперп = Δ − Hz.
/// The mixed derivatives make the operation count per point far higher than
/// the isotropic Laplacian — the compute-bound regime the paper calls out.
///
/// The source is injected into both wavefields; receivers measure p. With
/// eps = delta = theta = phi = 0 the system reduces *exactly* to two copies
/// of the isotropic acoustic equation (tested against AcousticPropagator).
class TTIPropagator {
 public:
  TTIPropagator(const TTIModel& model, PropagatorOptions opts = {});

  /// Uniform propagator surface (see AcousticPropagator for the contract):
  /// all four schedules, per-step callbacks on barrier schedules, and
  /// checkpoint/resume via run_from()/capture()/restore().
  RunStats run(Schedule sched, const sparse::SparseTimeSeries& src,
               sparse::SparseTimeSeries* rec = nullptr,
               const StepCallback& on_step = {});

  RunStats run_from(int t_begin, Schedule sched,
                    const sparse::SparseTimeSeries& src,
                    sparse::SparseTimeSeries* rec = nullptr,
                    const StepCallback& on_step = {});

  /// Snapshot both p and q circular buffers (p slices first, then q).
  [[nodiscard]] resilience::Checkpoint capture(
      int step, std::uint64_t fingerprint,
      const sparse::SparseTimeSeries* rec = nullptr) const;

  void restore(const resilience::Checkpoint& ck);

  [[nodiscard]] const grid::Grid3<real_t>& wavefield_p(int t) const {
    return p_.at(t);
  }
  [[nodiscard]] const grid::Grid3<real_t>& wavefield_q(int t) const {
    return q_.at(t);
  }
  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const TTIModel& model() const { return model_; }
  [[nodiscard]] const PropagatorOptions& options() const { return opts_; }

 private:
  const TTIModel& model_;
  PropagatorOptions opts_;
  double dt_;
  grid::TimeBuffer<real_t> p_;
  grid::TimeBuffer<real_t> q_;
  // Precomputed anisotropy coefficient fields (see tti.cpp): the symmetry
  // axis dyad n_i n_j and the Thomsen factors, evaluated once instead of
  // per-point trigonometry in the hot loop.
  grid::Grid3<real_t> cxx_, cyy_, czz_, cxy_, cxz_, cyz_;
  grid::Grid3<real_t> ah_;  ///< 1 + 2 eps
  grid::Grid3<real_t> an_;  ///< sqrt(1 + 2 delta)
};

}  // namespace tempest::physics
