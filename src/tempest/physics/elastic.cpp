#include "tempest/physics/elastic.hpp"

#include <vector>

#include "tempest/core/engine.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"

namespace tempest::physics {

analysis::AccessSummary elastic_access_summary(int space_order) {
  // Two dependent half-updates per timestep, each reaching ±radius: the
  // per-timestep dependence distance the time tiler must cover is doubled.
  return {.kernel = "elastic",
          .field = "u",
          .radius = 2 * (space_order / 2),
          .substeps = 2,
          .time_reads = {0},
          .write_radius = 0};
}

namespace {

/// Folded staggered-derivative weights ws[1..R]: with g a field staggered by
/// +1/2 relative to the evaluation grid,
///   D+ g(i) = sum_k ws[k] (g[i+k]   - g[i+1-k])   (result at i + 1/2)
///   D- g(i) = sum_k ws[k] (g[i+k-1] - g[i-k])     (result at i)
std::vector<real_t> folded_staggered(int space_order) {
  const stencil::Coeffs c = stencil::staggered_first(space_order);
  const int r = stencil::radius_for_order(space_order);
  std::vector<real_t> ws(static_cast<std::size_t>(r) + 1, real_t{0});
  for (int k = 1; k <= r; ++k) {
    // Weight of the sample at offset +k - 1/2 from the evaluation point.
    ws[static_cast<std::size_t>(k)] =
        static_cast<real_t>(c.weights[static_cast<std::size_t>(r + k - 1)]);
  }
  return ws;
}

struct ElasticFields {
  real_t* vx;
  real_t* vy;
  real_t* vz;
  real_t* txx;
  real_t* tyy;
  real_t* tzz;
  real_t* txy;
  real_t* txz;
  real_t* tyz;
  const real_t* lam;
  const real_t* mu;
  const real_t* b;
  const real_t* damp;
};

/// Velocity half-update: v += dt * b * div(tau), with the point-local sponge
/// factor (1 - damp dt) applied multiplicatively.
template <int R>
void v_block(const ElasticFields& f, std::ptrdiff_t sx, std::ptrdiff_t sy,
             const grid::Box3& blk, const real_t* __restrict w, real_t inv_h,
             real_t dt) {
  for (int x = blk.x.lo; x < blk.x.hi; ++x) {
    for (int y = blk.y.lo; y < blk.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
#pragma omp simd
      for (int z = blk.z.lo; z < blk.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t dxx = 0, dxy = 0, dxz = 0;  // terms of div tau, row x
        real_t dyx = 0, dyy = 0, dyz = 0;  // row y
        real_t dzx = 0, dzy = 0, dzz = 0;  // row z
#pragma GCC unroll 8
        for (int k = 1; k <= R; ++k) {
          const std::ptrdiff_t kx = k * sx, ky = k * sy;
          const std::ptrdiff_t kx1 = (k - 1) * sx, ky1 = (k - 1) * sy;
          // vx at (i+1/2): D+x txx, D-y txy, D-z txz
          dxx += w[k] * (f.txx[i + kx] - f.txx[i + sx - kx]);
          dxy += w[k] * (f.txy[i + ky1] - f.txy[i - ky]);
          dxz += w[k] * (f.txz[i + k - 1] - f.txz[i - k]);
          // vy at (j+1/2): D-x txy, D+y tyy, D-z tyz
          dyx += w[k] * (f.txy[i + kx1] - f.txy[i - kx]);
          dyy += w[k] * (f.tyy[i + ky] - f.tyy[i + sy - ky]);
          dyz += w[k] * (f.tyz[i + k - 1] - f.tyz[i - k]);
          // vz at (k+1/2): D-x txz, D-y tyz, D+z tzz
          dzx += w[k] * (f.txz[i + kx1] - f.txz[i - kx]);
          dzy += w[k] * (f.tyz[i + ky1] - f.tyz[i - ky]);
          dzz += w[k] * (f.tzz[i + k] - f.tzz[i + 1 - k]);
        }
        const real_t fac = real_t{1} - f.damp[i] * dt;
        const real_t bdt = f.b[i] * dt * inv_h;
        f.vx[i] = f.vx[i] * fac + bdt * (dxx + dxy + dxz);
        f.vy[i] = f.vy[i] * fac + bdt * (dyx + dyy + dyz);
        f.vz[i] = f.vz[i] * fac + bdt * (dzx + dzy + dzz);
      }
    }
  }
}

/// Stress half-update: tau += dt (lam tr(grad v) I + mu (grad v + grad v^T)).
template <int R>
void tau_block(const ElasticFields& f, std::ptrdiff_t sx, std::ptrdiff_t sy,
               const grid::Box3& blk, const real_t* __restrict w,
               real_t inv_h, real_t dt) {
  for (int x = blk.x.lo; x < blk.x.hi; ++x) {
    for (int y = blk.y.lo; y < blk.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
#pragma omp simd
      for (int z = blk.z.lo; z < blk.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t exx = 0, eyy = 0, ezz = 0;        // D- of v at integer points
        real_t vxy = 0, vyx = 0;                 // D+ cross terms
        real_t vxz = 0, vzx = 0, vyz = 0, vzy = 0;
#pragma GCC unroll 8
        for (int k = 1; k <= R; ++k) {
          const std::ptrdiff_t kx = k * sx, ky = k * sy;
          const std::ptrdiff_t kx1 = (k - 1) * sx, ky1 = (k - 1) * sy;
          exx += w[k] * (f.vx[i + kx1] - f.vx[i - kx]);
          eyy += w[k] * (f.vy[i + ky1] - f.vy[i - ky]);
          ezz += w[k] * (f.vz[i + k - 1] - f.vz[i - k]);
          vxy += w[k] * (f.vx[i + ky] - f.vx[i + sy - ky]);  // D+y vx
          vyx += w[k] * (f.vy[i + kx] - f.vy[i + sx - kx]);  // D+x vy
          vxz += w[k] * (f.vx[i + k] - f.vx[i + 1 - k]);     // D+z vx
          vzx += w[k] * (f.vz[i + kx] - f.vz[i + sx - kx]);  // D+x vz
          vyz += w[k] * (f.vy[i + k] - f.vy[i + 1 - k]);     // D+z vy
          vzy += w[k] * (f.vz[i + ky] - f.vz[i + sy - ky]);  // D+y vz
        }
        const real_t fac = real_t{1} - f.damp[i] * dt;
        const real_t lam = f.lam[i] * dt * inv_h;
        const real_t mu2 = real_t{2} * f.mu[i] * dt * inv_h;
        const real_t mu = f.mu[i] * dt * inv_h;
        const real_t tr = exx + eyy + ezz;
        f.txx[i] = f.txx[i] * fac + lam * tr + mu2 * exx;
        f.tyy[i] = f.tyy[i] * fac + lam * tr + mu2 * eyy;
        f.tzz[i] = f.tzz[i] * fac + lam * tr + mu2 * ezz;
        f.txy[i] = f.txy[i] * fac + mu * (vxy + vyx);
        f.txz[i] = f.txz[i] * fac + mu * (vxz + vzx);
        f.tyz[i] = f.tyz[i] * fac + mu * (vyz + vzy);
      }
    }
  }
}

/// Radius dispatch shared by both half-updates.
template <typename F1, typename F2, typename F4, typename F6, typename FG>
void dispatch_radius(int radius, F1&& f1, F2&& f2, F4&& f4, F6&& f6,
                     FG&& fg) {
  switch (radius) {
    case 1: f1(); break;
    case 2: f2(); break;
    case 4: f4(); break;
    case 6: f6(); break;
    default: fg(); break;
  }
}

/// Runtime-radius fallbacks reuse the templates with R passed as a loop
/// bound via a large instantiation guard: define a generic copy instead.
void v_block_generic(const ElasticFields& f, std::ptrdiff_t sx,
                     std::ptrdiff_t sy, const grid::Box3& blk,
                     const real_t* w, int radius, real_t inv_h, real_t dt) {
  for (int x = blk.x.lo; x < blk.x.hi; ++x) {
    for (int y = blk.y.lo; y < blk.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      for (int z = blk.z.lo; z < blk.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t divx = 0, divy = 0, divz = 0;
        for (int k = 1; k <= radius; ++k) {
          const std::ptrdiff_t kx = k * sx, ky = k * sy;
          const std::ptrdiff_t kx1 = (k - 1) * sx, ky1 = (k - 1) * sy;
          divx += w[k] * (f.txx[i + kx] - f.txx[i + sx - kx]) +
                  w[k] * (f.txy[i + ky1] - f.txy[i - ky]) +
                  w[k] * (f.txz[i + k - 1] - f.txz[i - k]);
          divy += w[k] * (f.txy[i + kx1] - f.txy[i - kx]) +
                  w[k] * (f.tyy[i + ky] - f.tyy[i + sy - ky]) +
                  w[k] * (f.tyz[i + k - 1] - f.tyz[i - k]);
          divz += w[k] * (f.txz[i + kx1] - f.txz[i - kx]) +
                  w[k] * (f.tyz[i + ky1] - f.tyz[i - ky]) +
                  w[k] * (f.tzz[i + k] - f.tzz[i + 1 - k]);
        }
        const real_t fac = real_t{1} - f.damp[i] * dt;
        const real_t bdt = f.b[i] * dt * inv_h;
        f.vx[i] = f.vx[i] * fac + bdt * divx;
        f.vy[i] = f.vy[i] * fac + bdt * divy;
        f.vz[i] = f.vz[i] * fac + bdt * divz;
      }
    }
  }
}

void tau_block_generic(const ElasticFields& f, std::ptrdiff_t sx,
                       std::ptrdiff_t sy, const grid::Box3& blk,
                       const real_t* w, int radius, real_t inv_h, real_t dt) {
  for (int x = blk.x.lo; x < blk.x.hi; ++x) {
    for (int y = blk.y.lo; y < blk.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      for (int z = blk.z.lo; z < blk.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t exx = 0, eyy = 0, ezz = 0, vxy = 0, vyx = 0, vxz = 0, vzx = 0,
               vyz = 0, vzy = 0;
        for (int k = 1; k <= radius; ++k) {
          const std::ptrdiff_t kx = k * sx, ky = k * sy;
          const std::ptrdiff_t kx1 = (k - 1) * sx, ky1 = (k - 1) * sy;
          exx += w[k] * (f.vx[i + kx1] - f.vx[i - kx]);
          eyy += w[k] * (f.vy[i + ky1] - f.vy[i - ky]);
          ezz += w[k] * (f.vz[i + k - 1] - f.vz[i - k]);
          vxy += w[k] * (f.vx[i + ky] - f.vx[i + sy - ky]);
          vyx += w[k] * (f.vy[i + kx] - f.vy[i + sx - kx]);
          vxz += w[k] * (f.vx[i + k] - f.vx[i + 1 - k]);
          vzx += w[k] * (f.vz[i + kx] - f.vz[i + sx - kx]);
          vyz += w[k] * (f.vy[i + k] - f.vy[i + 1 - k]);
          vzy += w[k] * (f.vz[i + ky] - f.vz[i + sy - ky]);
        }
        const real_t fac = real_t{1} - f.damp[i] * dt;
        const real_t lam = f.lam[i] * dt * inv_h;
        const real_t mu2 = real_t{2} * f.mu[i] * dt * inv_h;
        const real_t mu = f.mu[i] * dt * inv_h;
        const real_t tr = exx + eyy + ezz;
        f.txx[i] = f.txx[i] * fac + lam * tr + mu2 * exx;
        f.tyy[i] = f.tyy[i] * fac + lam * tr + mu2 * eyy;
        f.tzz[i] = f.tzz[i] * fac + lam * tr + mu2 * ezz;
        f.txy[i] = f.txy[i] * fac + mu * (vxy + vyx);
        f.txz[i] = f.txz[i] * fac + mu * (vxz + vzx);
        f.tyz[i] = f.tyz[i] * fac + mu * (vyz + vzy);
      }
    }
  }
}

/// PhysicsKernel adapter: two substeps per timestep (velocity then stress),
/// first-order in time so every field is a single flat grid. The source is
/// explosive (diagonal stresses); receivers record vz.
class ElasticKernel {
 public:
  static constexpr int kSubstepsPerStep = 2;
  static constexpr int kFirstStep = 0;

  ElasticKernel(const ElasticModel& model, grid::Grid3<real_t>& vx,
                grid::Grid3<real_t>& vy, grid::Grid3<real_t>& vz,
                grid::Grid3<real_t>& txx, grid::Grid3<real_t>& tyy,
                grid::Grid3<real_t>& tzz, grid::Grid3<real_t>& txy,
                grid::Grid3<real_t>& txz, grid::Grid3<real_t>& tyz,
                double dt)
      : model_(model),
        vx_(vx),
        vy_(vy),
        vz_(vz),
        txx_(txx),
        tyy_(tyy),
        tzz_(tzz),
        f_{vx.origin(),        vy.origin(),        vz.origin(),
           txx.origin(),       tyy.origin(),       tzz.origin(),
           txy.origin(),       txz.origin(),       tyz.origin(),
           model.lam.origin(), model.mu.origin(),  model.b.origin(),
           model.damp.origin()},
        w_(folded_staggered(model.geom.space_order)),
        inv_h_(static_cast<real_t>(1.0 / model.geom.spacing)),
        dt_(static_cast<real_t>(dt)),
        sx_(vx.stride_x()),
        sy_(vx.stride_y()) {
    TEMPEST_REQUIRE(model.lam.stride_x() == sx_);
  }

  [[nodiscard]] const grid::Extents3& extents() const {
    return model_.geom.extents;
  }
  [[nodiscard]] int radius() const { return model_.geom.radius(); }
  [[nodiscard]] analysis::AccessSummary access_summary() const {
    return elastic_access_summary(model_.geom.space_order);
  }

  /// One half-step block: even substeps update v, odd update tau. The
  /// substep index is what the temporal schedules skew over (slope = radius
  /// per half-step == the paper's shifted wavefront angle for staggered
  /// multi-grid updates).
  void apply(int h, const grid::Box3& box) {
    const real_t* w = w_.data();
    if ((h & 1) == 0) {
      dispatch_radius(
          radius(),
          [&] { v_block<1>(f_, sx_, sy_, box, w, inv_h_, dt_); },
          [&] { v_block<2>(f_, sx_, sy_, box, w, inv_h_, dt_); },
          [&] { v_block<4>(f_, sx_, sy_, box, w, inv_h_, dt_); },
          [&] { v_block<6>(f_, sx_, sy_, box, w, inv_h_, dt_); },
          [&] {
            v_block_generic(f_, sx_, sy_, box, w, radius(), inv_h_, dt_);
          });
    } else {
      dispatch_radius(
          radius(),
          [&] { tau_block<1>(f_, sx_, sy_, box, w, inv_h_, dt_); },
          [&] { tau_block<2>(f_, sx_, sy_, box, w, inv_h_, dt_); },
          [&] { tau_block<4>(f_, sx_, sy_, box, w, inv_h_, dt_); },
          [&] { tau_block<6>(f_, sx_, sy_, box, w, inv_h_, dt_); },
          [&] {
            tau_block_generic(f_, sx_, sy_, box, w, radius(), inv_h_, dt_);
          });
    }
  }

  /// Explosive source: injected equally into the three diagonal stresses,
  /// scaled by dt (the time integration factor of the first-order system).
  [[nodiscard]] real_t inject_scale(int, int, int) const { return dt_; }
  [[nodiscard]] core::engine::FieldRefs inject_fields(int) {
    return {{&txx_, &tyy_, &tzz_}, 3};
  }
  [[nodiscard]] const grid::Grid3<real_t>& gather_field(int) const {
    return vz_;
  }
  [[nodiscard]] core::engine::HealthFields health_fields(int) {
    return {{{{"vx", &vx_}, {"vy", &vy_}, {"vz", &vz_}}}, 3};
  }

 private:
  const ElasticModel& model_;
  grid::Grid3<real_t>& vx_;
  grid::Grid3<real_t>& vy_;
  grid::Grid3<real_t>& vz_;
  grid::Grid3<real_t>& txx_;
  grid::Grid3<real_t>& tyy_;
  grid::Grid3<real_t>& tzz_;
  ElasticFields f_;
  std::vector<real_t> w_;
  real_t inv_h_, dt_;
  std::ptrdiff_t sx_, sy_;
};

static_assert(core::engine::PhysicsKernel<ElasticKernel>);

}  // namespace

ElasticPropagator::ElasticPropagator(const ElasticModel& model,
                                     PropagatorOptions opts)
    : model_(model),
      opts_(opts),
      dt_(opts.dt > 0.0 ? opts.dt : model.critical_dt()),
      vx_(model.geom.extents, model.geom.radius(), real_t{0}),
      vy_(model.geom.extents, model.geom.radius(), real_t{0}),
      vz_(model.geom.extents, model.geom.radius(), real_t{0}),
      txx_(model.geom.extents, model.geom.radius(), real_t{0}),
      tyy_(model.geom.extents, model.geom.radius(), real_t{0}),
      tzz_(model.geom.extents, model.geom.radius(), real_t{0}),
      txy_(model.geom.extents, model.geom.radius(), real_t{0}),
      txz_(model.geom.extents, model.geom.radius(), real_t{0}),
      tyz_(model.geom.extents, model.geom.radius(), real_t{0}) {
  TEMPEST_REQUIRE(model.geom.space_order >= 2 &&
                  model.geom.space_order % 2 == 0);
  TEMPEST_REQUIRE(opts_.tiles.valid());
}

RunStats ElasticPropagator::run(Schedule sched,
                                const sparse::SparseTimeSeries& src,
                                sparse::SparseTimeSeries* rec,
                                const StepCallback& on_step) {
  if (rec != nullptr) rec->zero();
  for (auto* g : {&vx_, &vy_, &vz_, &txx_, &tyy_, &tzz_, &txy_, &txz_, &tyz_})
    g->fill(real_t{0});
  return run_from(ElasticKernel::kFirstStep, sched, src, rec, on_step);
}

RunStats ElasticPropagator::run_from(int t_begin, Schedule sched,
                                     const sparse::SparseTimeSeries& src,
                                     sparse::SparseTimeSeries* rec,
                                     const StepCallback& on_step) {
  ElasticKernel kernel(model_, vx_, vy_, vz_, txx_, tyy_, tzz_, txy_, txz_,
                       tyz_, dt_);
  core::engine::ScheduleExecutor executor(kernel, opts_);
  return executor.run_from(t_begin, sched, src, rec, on_step);
}

resilience::Checkpoint ElasticPropagator::capture(
    int step, std::uint64_t fingerprint,
    const sparse::SparseTimeSeries* rec) const {
  const std::vector<const grid::Grid3<real_t>*> slices = {
      &vx_, &vy_, &vz_, &txx_, &tyy_, &tzz_, &txy_, &txz_, &tyz_};
  return core::engine::capture_state(slices, step, ElasticKernel::kFirstStep,
                                     fingerprint, rec);
}

void ElasticPropagator::restore(const resilience::Checkpoint& ck) {
  const std::vector<grid::Grid3<real_t>*> slices = {
      &vx_, &vy_, &vz_, &txx_, &tyy_, &tzz_, &txy_, &txz_, &tyz_};
  core::engine::restore_state(slices, ck);
}

}  // namespace tempest::physics
