#include "tempest/physics/elastic.hpp"

#include <vector>

#include "tempest/core/compress.hpp"
#include "tempest/core/fused.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/core/wavefront.hpp"
#include "tempest/sparse/operators.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/timer.hpp"

namespace tempest::physics {

namespace {

/// Folded staggered-derivative weights ws[1..R]: with g a field staggered by
/// +1/2 relative to the evaluation grid,
///   D+ g(i) = sum_k ws[k] (g[i+k]   - g[i+1-k])   (result at i + 1/2)
///   D- g(i) = sum_k ws[k] (g[i+k-1] - g[i-k])     (result at i)
std::vector<real_t> folded_staggered(int space_order) {
  const stencil::Coeffs c = stencil::staggered_first(space_order);
  const int r = stencil::radius_for_order(space_order);
  std::vector<real_t> ws(static_cast<std::size_t>(r) + 1, real_t{0});
  for (int k = 1; k <= r; ++k) {
    // Weight of the sample at offset +k - 1/2 from the evaluation point.
    ws[static_cast<std::size_t>(k)] =
        static_cast<real_t>(c.weights[static_cast<std::size_t>(r + k - 1)]);
  }
  return ws;
}

struct ElasticFields {
  real_t* vx;
  real_t* vy;
  real_t* vz;
  real_t* txx;
  real_t* tyy;
  real_t* tzz;
  real_t* txy;
  real_t* txz;
  real_t* tyz;
  const real_t* lam;
  const real_t* mu;
  const real_t* b;
  const real_t* damp;
};

/// Velocity half-update: v += dt * b * div(tau), with the point-local sponge
/// factor (1 - damp dt) applied multiplicatively.
template <int R>
void v_block(const ElasticFields& f, std::ptrdiff_t sx, std::ptrdiff_t sy,
             const grid::Box3& blk, const real_t* __restrict w, real_t inv_h,
             real_t dt) {
  for (int x = blk.x.lo; x < blk.x.hi; ++x) {
    for (int y = blk.y.lo; y < blk.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
#pragma omp simd
      for (int z = blk.z.lo; z < blk.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t dxx = 0, dxy = 0, dxz = 0;  // terms of div tau, row x
        real_t dyx = 0, dyy = 0, dyz = 0;  // row y
        real_t dzx = 0, dzy = 0, dzz = 0;  // row z
#pragma GCC unroll 8
        for (int k = 1; k <= R; ++k) {
          const std::ptrdiff_t kx = k * sx, ky = k * sy;
          const std::ptrdiff_t kx1 = (k - 1) * sx, ky1 = (k - 1) * sy;
          // vx at (i+1/2): D+x txx, D-y txy, D-z txz
          dxx += w[k] * (f.txx[i + kx] - f.txx[i + sx - kx]);
          dxy += w[k] * (f.txy[i + ky1] - f.txy[i - ky]);
          dxz += w[k] * (f.txz[i + k - 1] - f.txz[i - k]);
          // vy at (j+1/2): D-x txy, D+y tyy, D-z tyz
          dyx += w[k] * (f.txy[i + kx1] - f.txy[i - kx]);
          dyy += w[k] * (f.tyy[i + ky] - f.tyy[i + sy - ky]);
          dyz += w[k] * (f.tyz[i + k - 1] - f.tyz[i - k]);
          // vz at (k+1/2): D-x txz, D-y tyz, D+z tzz
          dzx += w[k] * (f.txz[i + kx1] - f.txz[i - kx]);
          dzy += w[k] * (f.tyz[i + ky1] - f.tyz[i - ky]);
          dzz += w[k] * (f.tzz[i + k] - f.tzz[i + 1 - k]);
        }
        const real_t fac = real_t{1} - f.damp[i] * dt;
        const real_t bdt = f.b[i] * dt * inv_h;
        f.vx[i] = f.vx[i] * fac + bdt * (dxx + dxy + dxz);
        f.vy[i] = f.vy[i] * fac + bdt * (dyx + dyy + dyz);
        f.vz[i] = f.vz[i] * fac + bdt * (dzx + dzy + dzz);
      }
    }
  }
}

/// Stress half-update: tau += dt (lam tr(grad v) I + mu (grad v + grad v^T)).
template <int R>
void tau_block(const ElasticFields& f, std::ptrdiff_t sx, std::ptrdiff_t sy,
               const grid::Box3& blk, const real_t* __restrict w,
               real_t inv_h, real_t dt) {
  for (int x = blk.x.lo; x < blk.x.hi; ++x) {
    for (int y = blk.y.lo; y < blk.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
#pragma omp simd
      for (int z = blk.z.lo; z < blk.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t exx = 0, eyy = 0, ezz = 0;        // D- of v at integer points
        real_t vxy = 0, vyx = 0;                 // D+ cross terms
        real_t vxz = 0, vzx = 0, vyz = 0, vzy = 0;
#pragma GCC unroll 8
        for (int k = 1; k <= R; ++k) {
          const std::ptrdiff_t kx = k * sx, ky = k * sy;
          const std::ptrdiff_t kx1 = (k - 1) * sx, ky1 = (k - 1) * sy;
          exx += w[k] * (f.vx[i + kx1] - f.vx[i - kx]);
          eyy += w[k] * (f.vy[i + ky1] - f.vy[i - ky]);
          ezz += w[k] * (f.vz[i + k - 1] - f.vz[i - k]);
          vxy += w[k] * (f.vx[i + ky] - f.vx[i + sy - ky]);  // D+y vx
          vyx += w[k] * (f.vy[i + kx] - f.vy[i + sx - kx]);  // D+x vy
          vxz += w[k] * (f.vx[i + k] - f.vx[i + 1 - k]);     // D+z vx
          vzx += w[k] * (f.vz[i + kx] - f.vz[i + sx - kx]);  // D+x vz
          vyz += w[k] * (f.vy[i + k] - f.vy[i + 1 - k]);     // D+z vy
          vzy += w[k] * (f.vz[i + ky] - f.vz[i + sy - ky]);  // D+y vz
        }
        const real_t fac = real_t{1} - f.damp[i] * dt;
        const real_t lam = f.lam[i] * dt * inv_h;
        const real_t mu2 = real_t{2} * f.mu[i] * dt * inv_h;
        const real_t mu = f.mu[i] * dt * inv_h;
        const real_t tr = exx + eyy + ezz;
        f.txx[i] = f.txx[i] * fac + lam * tr + mu2 * exx;
        f.tyy[i] = f.tyy[i] * fac + lam * tr + mu2 * eyy;
        f.tzz[i] = f.tzz[i] * fac + lam * tr + mu2 * ezz;
        f.txy[i] = f.txy[i] * fac + mu * (vxy + vyx);
        f.txz[i] = f.txz[i] * fac + mu * (vxz + vzx);
        f.tyz[i] = f.tyz[i] * fac + mu * (vyz + vzy);
      }
    }
  }
}

/// Radius dispatch shared by both half-updates.
template <typename F1, typename F2, typename F4, typename F6, typename FG>
void dispatch_radius(int radius, F1&& f1, F2&& f2, F4&& f4, F6&& f6,
                     FG&& fg) {
  switch (radius) {
    case 1: f1(); break;
    case 2: f2(); break;
    case 4: f4(); break;
    case 6: f6(); break;
    default: fg(); break;
  }
}

/// Runtime-radius fallbacks reuse the templates with R passed as a loop
/// bound via a large instantiation guard: define a generic copy instead.
void v_block_generic(const ElasticFields& f, std::ptrdiff_t sx,
                     std::ptrdiff_t sy, const grid::Box3& blk,
                     const real_t* w, int radius, real_t inv_h, real_t dt) {
  for (int x = blk.x.lo; x < blk.x.hi; ++x) {
    for (int y = blk.y.lo; y < blk.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      for (int z = blk.z.lo; z < blk.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t divx = 0, divy = 0, divz = 0;
        for (int k = 1; k <= radius; ++k) {
          const std::ptrdiff_t kx = k * sx, ky = k * sy;
          const std::ptrdiff_t kx1 = (k - 1) * sx, ky1 = (k - 1) * sy;
          divx += w[k] * (f.txx[i + kx] - f.txx[i + sx - kx]) +
                  w[k] * (f.txy[i + ky1] - f.txy[i - ky]) +
                  w[k] * (f.txz[i + k - 1] - f.txz[i - k]);
          divy += w[k] * (f.txy[i + kx1] - f.txy[i - kx]) +
                  w[k] * (f.tyy[i + ky] - f.tyy[i + sy - ky]) +
                  w[k] * (f.tyz[i + k - 1] - f.tyz[i - k]);
          divz += w[k] * (f.txz[i + kx1] - f.txz[i - kx]) +
                  w[k] * (f.tyz[i + ky1] - f.tyz[i - ky]) +
                  w[k] * (f.tzz[i + k] - f.tzz[i + 1 - k]);
        }
        const real_t fac = real_t{1} - f.damp[i] * dt;
        const real_t bdt = f.b[i] * dt * inv_h;
        f.vx[i] = f.vx[i] * fac + bdt * divx;
        f.vy[i] = f.vy[i] * fac + bdt * divy;
        f.vz[i] = f.vz[i] * fac + bdt * divz;
      }
    }
  }
}

void tau_block_generic(const ElasticFields& f, std::ptrdiff_t sx,
                       std::ptrdiff_t sy, const grid::Box3& blk,
                       const real_t* w, int radius, real_t inv_h, real_t dt) {
  for (int x = blk.x.lo; x < blk.x.hi; ++x) {
    for (int y = blk.y.lo; y < blk.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      for (int z = blk.z.lo; z < blk.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t exx = 0, eyy = 0, ezz = 0, vxy = 0, vyx = 0, vxz = 0, vzx = 0,
               vyz = 0, vzy = 0;
        for (int k = 1; k <= radius; ++k) {
          const std::ptrdiff_t kx = k * sx, ky = k * sy;
          const std::ptrdiff_t kx1 = (k - 1) * sx, ky1 = (k - 1) * sy;
          exx += w[k] * (f.vx[i + kx1] - f.vx[i - kx]);
          eyy += w[k] * (f.vy[i + ky1] - f.vy[i - ky]);
          ezz += w[k] * (f.vz[i + k - 1] - f.vz[i - k]);
          vxy += w[k] * (f.vx[i + ky] - f.vx[i + sy - ky]);
          vyx += w[k] * (f.vy[i + kx] - f.vy[i + sx - kx]);
          vxz += w[k] * (f.vx[i + k] - f.vx[i + 1 - k]);
          vzx += w[k] * (f.vz[i + kx] - f.vz[i + sx - kx]);
          vyz += w[k] * (f.vy[i + k] - f.vy[i + 1 - k]);
          vzy += w[k] * (f.vz[i + ky] - f.vz[i + sy - ky]);
        }
        const real_t fac = real_t{1} - f.damp[i] * dt;
        const real_t lam = f.lam[i] * dt * inv_h;
        const real_t mu2 = real_t{2} * f.mu[i] * dt * inv_h;
        const real_t mu = f.mu[i] * dt * inv_h;
        const real_t tr = exx + eyy + ezz;
        f.txx[i] = f.txx[i] * fac + lam * tr + mu2 * exx;
        f.tyy[i] = f.tyy[i] * fac + lam * tr + mu2 * eyy;
        f.tzz[i] = f.tzz[i] * fac + lam * tr + mu2 * ezz;
        f.txy[i] = f.txy[i] * fac + mu * (vxy + vyx);
        f.txz[i] = f.txz[i] * fac + mu * (vxz + vzx);
        f.tyz[i] = f.tyz[i] * fac + mu * (vyz + vzy);
      }
    }
  }
}

}  // namespace

ElasticPropagator::ElasticPropagator(const ElasticModel& model,
                                     PropagatorOptions opts)
    : model_(model),
      opts_(opts),
      dt_(opts.dt > 0.0 ? opts.dt : model.critical_dt()),
      vx_(model.geom.extents, model.geom.radius(), real_t{0}),
      vy_(model.geom.extents, model.geom.radius(), real_t{0}),
      vz_(model.geom.extents, model.geom.radius(), real_t{0}),
      txx_(model.geom.extents, model.geom.radius(), real_t{0}),
      tyy_(model.geom.extents, model.geom.radius(), real_t{0}),
      tzz_(model.geom.extents, model.geom.radius(), real_t{0}),
      txy_(model.geom.extents, model.geom.radius(), real_t{0}),
      txz_(model.geom.extents, model.geom.radius(), real_t{0}),
      tyz_(model.geom.extents, model.geom.radius(), real_t{0}) {
  TEMPEST_REQUIRE(model.geom.space_order >= 2 &&
                  model.geom.space_order % 2 == 0);
  TEMPEST_REQUIRE(opts_.tiles.valid());
}

RunStats ElasticPropagator::run(Schedule sched,
                                const sparse::SparseTimeSeries& src,
                                sparse::SparseTimeSeries* rec) {
  const int nt = src.nt();
  TEMPEST_REQUIRE(nt >= 1);
  TEMPEST_REQUIRE_MSG(sched != Schedule::Diamond,
                      "diamond tiling is implemented for the acoustic "
                      "propagator only");
  if (rec != nullptr) {
    TEMPEST_REQUIRE(rec->nt() >= nt);
    rec->zero();
  }
  for (auto* g : {&vx_, &vy_, &vz_, &txx_, &tyy_, &tzz_, &txy_, &txz_, &tyz_})
    g->fill(real_t{0});

  const auto& e = model_.geom.extents;
  const int radius = model_.geom.radius();
  const std::vector<real_t> w = folded_staggered(model_.geom.space_order);
  const real_t inv_h = static_cast<real_t>(1.0 / model_.geom.spacing);
  const real_t dt = static_cast<real_t>(dt_);

  const std::ptrdiff_t sx = vx_.stride_x();
  const std::ptrdiff_t sy = vx_.stride_y();
  TEMPEST_REQUIRE(model_.lam.stride_x() == sx);
  const ElasticFields f{
      vx_.origin(),  vy_.origin(),        vz_.origin(),
      txx_.origin(), tyy_.origin(),       tzz_.origin(),
      txy_.origin(), txz_.origin(),       tyz_.origin(),
      model_.lam.origin(), model_.mu.origin(), model_.b.origin(),
      model_.damp.origin()};

  // Explosive source: injected equally into the three diagonal stresses,
  // scaled by dt (the time integration factor of the first-order system).
  auto inj_scale = [dt](int, int, int) { return dt; };

  // One half-step block: even half-steps update v, odd update tau. The
  // half-step index is what the wavefront driver skews over (slope = radius
  // per half-step == the paper's shifted wavefront angle for staggered
  // multi-grid updates).
  auto half_block = [&](int h, const grid::Box3& box) {
    TEMPEST_TRACE_COUNT(CellsUpdated, box.volume());
    TEMPEST_TRACE_COUNT(
        HaloCellsTouched,
        2 * radius *
            (box.x.length() * box.y.length() + box.y.length() * box.z.length() +
             box.x.length() * box.z.length()));
    if ((h & 1) == 0) {
      dispatch_radius(
          radius, [&] { v_block<1>(f, sx, sy, box, w.data(), inv_h, dt); },
          [&] { v_block<2>(f, sx, sy, box, w.data(), inv_h, dt); },
          [&] { v_block<4>(f, sx, sy, box, w.data(), inv_h, dt); },
          [&] { v_block<6>(f, sx, sy, box, w.data(), inv_h, dt); },
          [&] {
            v_block_generic(f, sx, sy, box, w.data(), radius, inv_h, dt);
          });
    } else {
      dispatch_radius(
          radius, [&] { tau_block<1>(f, sx, sy, box, w.data(), inv_h, dt); },
          [&] { tau_block<2>(f, sx, sy, box, w.data(), inv_h, dt); },
          [&] { tau_block<4>(f, sx, sy, box, w.data(), inv_h, dt); },
          [&] { tau_block<6>(f, sx, sy, box, w.data(), inv_h, dt); },
          [&] {
            tau_block_generic(f, sx, sy, box, w.data(), radius, inv_h, dt);
          });
    }
  };

  RunStats stats;
  stats.point_updates =
      static_cast<long long>(nt) * static_cast<long long>(e.size());

  if (sched == Schedule::Wavefront) {
    util::Timer pre;
    const core::SourceMasks masks =
        core::build_source_masks(e, src, opts_.interp);
    const core::DecomposedSource dcmp =
        core::decompose_sources(masks, src, opts_.interp);
    const core::CompressedSparse cs_src(masks.sm, masks.sid);
    core::DecomposedReceivers drec;
    core::CompressedSparse cs_rec;
    if (rec != nullptr && rec->npoints() > 0) {
      drec = core::decompose_receivers(e, *rec, opts_.interp);
      cs_rec = core::CompressedSparse(drec.rm, drec.rid);
    }
    stats.precompute_seconds = pre.seconds();

    // Tile the half-step axis: tile_t full steps == 2*tile_t half-steps.
    core::TileSpec half_spec = opts_.tiles;
    half_spec.tile_t = 2 * opts_.tiles.tile_t;

    util::Timer timer;
    core::run_wavefront(
        e, 0, 2 * nt, radius, half_spec, [&](int h, const grid::Box3& box) {
          {
            TEMPEST_TRACE_SPAN_ARG("stencil", "compute", h);
            half_block(h, box);
          }
          if ((h & 1) == 1) {
            const int t = h / 2;
            {
              TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
              core::fused_inject(txx_, cs_src, dcmp, t, box.x, box.y,
                                 inj_scale);
              core::fused_inject(tyy_, cs_src, dcmp, t, box.x, box.y,
                                 inj_scale);
              core::fused_inject(tzz_, cs_src, dcmp, t, box.x, box.y,
                                 inj_scale);
            }
            if (rec != nullptr && !cs_rec.empty()) {
              TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
              core::fused_gather(vz_, cs_rec, drec, rec->step(t).data(),
                                 box.x, box.y);
            }
          }
        });
    stats.seconds = timer.seconds();
    return stats;
  }

  if (sched == Schedule::SpaceBlocked) {
    const sparse::SupportCache src_cache(src, opts_.interp, e);
    sparse::SupportCache rec_cache;
    if (rec != nullptr && rec->npoints() > 0) {
      rec_cache = sparse::SupportCache(*rec, opts_.interp, e);
    }
    util::Timer timer;
    const auto blocks = grid::decompose_xy(
        grid::Box3::whole(e), opts_.tiles.block_x, opts_.tiles.block_y);
    for (int t = 0; t < nt; ++t) {
      {
        TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
        TEMPEST_TRACE_COUNT(BlocksExecuted, 2 * blocks.size());
#pragma omp parallel for schedule(dynamic)
        for (std::size_t b = 0; b < blocks.size(); ++b) {
          half_block(2 * t, blocks[b]);
        }
#pragma omp parallel for schedule(dynamic)
        for (std::size_t b = 0; b < blocks.size(); ++b) {
          half_block(2 * t + 1, blocks[b]);
        }
      }
      {
        TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
        sparse::inject_cached(txx_, src, t, src_cache, inj_scale);
        sparse::inject_cached(tyy_, src, t, src_cache, inj_scale);
        sparse::inject_cached(tzz_, src, t, src_cache, inj_scale);
      }
      if (rec != nullptr && rec->npoints() > 0) {
        TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
        sparse::interpolate_cached(vz_, *rec, t, rec_cache);
      }
    }
    stats.seconds = timer.seconds();
    return stats;
  }

  util::Timer timer;
  for (int t = 0; t < nt; ++t) {
    {
      TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
      TEMPEST_TRACE_COUNT(BlocksExecuted, 2);
      half_block(2 * t, grid::Box3::whole(e));
      half_block(2 * t + 1, grid::Box3::whole(e));
    }
    {
      TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
      sparse::inject(txx_, src, t, opts_.interp, inj_scale);
      sparse::inject(tyy_, src, t, opts_.interp, inj_scale);
      sparse::inject(tzz_, src, t, opts_.interp, inj_scale);
    }
    if (rec != nullptr && rec->npoints() > 0) {
      TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
      sparse::interpolate(vz_, *rec, t, opts_.interp);
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace tempest::physics
