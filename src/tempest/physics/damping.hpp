#pragma once

#include <algorithm>
#include <cmath>

#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/util/error.hpp"

namespace tempest::physics {

/// Absorbing sponge profile (paper Section IV.B: "damping fields with
/// absorbing boundary layers"). The coefficient is zero in the interior and
/// rises quadratically towards each face over the `nbl`-point boundary
/// layer, scaled so a wave crossing the layer is attenuated by roughly
/// log(1/R0) with R0 the design reflection coefficient:
///   d(p) = (3 vp / (2 L)) * ln(1/R0) * ((L - dist(p)) / L)^2.
/// The top face (z = 0) is damped as well — a free-surface variant is left
/// to future work, matching the paper's setups which damp all faces.
[[nodiscard]] grid::Grid3<real_t> make_damping(const Geometry& g,
                                               double vp_ref = 1.5,
                                               double r0 = 0.001);

/// Generalised sponge profile: same geometry and d0 scaling as
/// make_damping, but with a configurable power-law ramp
///   d(p) = d0 * ((L - dist(p)) / L)^exponent.
/// exponent = 2 reproduces make_damping's quadratic profile; higher
/// exponents concentrate the absorption near the outer faces (gentler at
/// the interior seam, fewer seam reflections), linear (1) ramps hardest.
/// Header-only so DSL-authored boundary variants — e.g. a sponge equation
/// binding this grid as its own damping coefficient — extend the physics
/// layer without touching its translation units.
[[nodiscard]] inline grid::Grid3<real_t> make_sponge_profile(
    const Geometry& g, double vp_ref = 1.5, double r0 = 0.001,
    int exponent = 2) {
  TEMPEST_REQUIRE(g.nbl >= 0 && vp_ref > 0.0 && r0 > 0.0 && r0 < 1.0);
  TEMPEST_REQUIRE(exponent >= 1);
  grid::Grid3<real_t> sponge(g.extents, g.radius(), real_t{0});
  if (g.nbl == 0) return sponge;

  const double len = g.nbl * g.spacing;                       // depth (m)
  const double d0 = 1.5 * vp_ref / len * std::log(1.0 / r0);  // 1/ms

  const auto& e = g.extents;
  sponge.for_each_interior([&](int x, int y, int z) {
    const int dist = std::min({x, e.nx - 1 - x, y, e.ny - 1 - y, z,
                               e.nz - 1 - z});
    if (dist >= g.nbl) return;
    const double frac = static_cast<double>(g.nbl - dist) / g.nbl;
    sponge(x, y, z) = static_cast<real_t>(d0 * std::pow(frac, exponent));
  });
  return sponge;
}

}  // namespace tempest::physics
