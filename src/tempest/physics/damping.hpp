#pragma once

#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/physics/model.hpp"

namespace tempest::physics {

/// Absorbing sponge profile (paper Section IV.B: "damping fields with
/// absorbing boundary layers"). The coefficient is zero in the interior and
/// rises quadratically towards each face over the `nbl`-point boundary
/// layer, scaled so a wave crossing the layer is attenuated by roughly
/// log(1/R0) with R0 the design reflection coefficient:
///   d(p) = (3 vp / (2 L)) * ln(1/R0) * ((L - dist(p)) / L)^2.
/// The top face (z = 0) is damped as well — a free-surface variant is left
/// to future work, matching the paper's setups which damp all faces.
[[nodiscard]] grid::Grid3<real_t> make_damping(const Geometry& g,
                                               double vp_ref = 1.5,
                                               double r0 = 0.001);

}  // namespace tempest::physics
