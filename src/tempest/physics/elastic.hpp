#pragma once

#include <cstdint>

#include "tempest/analysis/access.hpp"
#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/physics/propagator.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/sparse/series.hpp"

namespace tempest::physics {

/// Access shape the elastic velocity–stress update declares to the schedule
/// legality verifier. One timestep is two dependent half-updates each
/// reaching ±radius, so the *per-timestep* dependency reach is 2·radius and
/// the state is first order in time (only slice t is read).
[[nodiscard]] analysis::AccessSummary elastic_access_summary(int space_order);

/// Isotropic elastic wave propagator (paper Section III.C): the Virieux
/// staggered-grid velocity–stress formulation,
///   rho dv/dt = div(tau),   dtau/dt = lam tr(grad v) I + mu (grad v + grad v^T)
/// first order in time, nine coupled single-precision fields (3 velocity
/// components + 6 stress components), staggered first-derivative stencils.
///
/// One timestep is two dependent half-updates (v from tau, then tau from the
/// new v), so the wave-front slope is the stencil radius *per half-step* —
/// the "shifted wave-front angle" of the paper's Fig. 8b. Updates are
/// in-place (first order in time needs only one buffer per field).
///
/// The source is an explosive (pressure) source injected into the diagonal
/// stresses; receivers record the vertical particle velocity vz.
class ElasticPropagator {
 public:
  ElasticPropagator(const ElasticModel& model, PropagatorOptions opts = {});

  /// Uniform propagator surface (see AcousticPropagator for the contract):
  /// all four schedules, per-step callbacks on barrier schedules, and
  /// checkpoint/resume via run_from()/capture()/restore(). First-order in
  /// time, so propagation starts at t = 0 and run() is run_from(0, ...).
  RunStats run(Schedule sched, const sparse::SparseTimeSeries& src,
               sparse::SparseTimeSeries* rec = nullptr,
               const StepCallback& on_step = {});

  RunStats run_from(int t_begin, Schedule sched,
                    const sparse::SparseTimeSeries& src,
                    sparse::SparseTimeSeries* rec = nullptr,
                    const StepCallback& on_step = {});

  /// Snapshot all nine fields (vx, vy, vz, txx, tyy, tzz, txy, txz, tyz).
  [[nodiscard]] resilience::Checkpoint capture(
      int step, std::uint64_t fingerprint,
      const sparse::SparseTimeSeries* rec = nullptr) const;

  void restore(const resilience::Checkpoint& ck);

  [[nodiscard]] const grid::Grid3<real_t>& vx() const { return vx_; }
  [[nodiscard]] const grid::Grid3<real_t>& vy() const { return vy_; }
  [[nodiscard]] const grid::Grid3<real_t>& vz() const { return vz_; }
  [[nodiscard]] const grid::Grid3<real_t>& txx() const { return txx_; }
  [[nodiscard]] const grid::Grid3<real_t>& tyy() const { return tyy_; }
  [[nodiscard]] const grid::Grid3<real_t>& tzz() const { return tzz_; }
  [[nodiscard]] const grid::Grid3<real_t>& txy() const { return txy_; }
  [[nodiscard]] const grid::Grid3<real_t>& txz() const { return txz_; }
  [[nodiscard]] const grid::Grid3<real_t>& tyz() const { return tyz_; }
  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const ElasticModel& model() const { return model_; }
  [[nodiscard]] const PropagatorOptions& options() const { return opts_; }

 private:
  const ElasticModel& model_;
  PropagatorOptions opts_;
  double dt_;
  grid::Grid3<real_t> vx_, vy_, vz_;
  grid::Grid3<real_t> txx_, tyy_, tzz_, txy_, txz_, tyz_;
};

}  // namespace tempest::physics
