#pragma once

#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"

namespace tempest::physics {

/// Discretisation geometry shared by all subsurface models: interior shape,
/// uniform grid spacing h (metres), FD space order, and the width of the
/// absorbing boundary layer in grid points. Time is in milliseconds and
/// velocities in m/ms (== km/s), the standard seismic convention, so a
/// 10 m spacing with 1.5–4.5 velocities reproduces the paper's setups.
struct Geometry {
  grid::Extents3 extents{128, 128, 128};
  double spacing = 10.0;  ///< h in metres
  int space_order = 4;    ///< even FD accuracy order
  int nbl = 10;           ///< absorbing layer width in points

  [[nodiscard]] int radius() const { return space_order / 2; }
};

/// Isotropic acoustic subsurface model: P-wave velocity plus the damping
/// profile of the absorbing sponge. Fields are stored with halo == radius so
/// kernels can share one set of strides with the wavefields.
struct AcousticModel {
  Geometry geom;
  grid::Grid3<real_t> vp;    ///< velocity, m/ms
  grid::Grid3<real_t> m;     ///< squared slowness 1/vp^2
  grid::Grid3<real_t> damp;  ///< sponge coefficient (0 in the interior)

  [[nodiscard]] double vp_max() const;
  /// CFL-stable timestep (ms).
  [[nodiscard]] double critical_dt() const;
};

/// Anisotropic (TTI) extension: Thomsen parameters and tilt/azimuth angles,
/// all spatially varying.
struct TTIModel {
  Geometry geom;
  grid::Grid3<real_t> vp;
  grid::Grid3<real_t> m;
  grid::Grid3<real_t> damp;
  grid::Grid3<real_t> epsilon;
  grid::Grid3<real_t> delta;
  grid::Grid3<real_t> theta;  ///< tilt (radians)
  grid::Grid3<real_t> phi;    ///< azimuth (radians)

  [[nodiscard]] double vp_max() const;
  [[nodiscard]] double critical_dt() const;
};

/// Isotropic elastic model: Lamé parameters and buoyancy derived from
/// (vp, vs, rho).
struct ElasticModel {
  Geometry geom;
  grid::Grid3<real_t> vp;
  grid::Grid3<real_t> vs;
  grid::Grid3<real_t> rho;
  grid::Grid3<real_t> lam;  ///< lambda = rho (vp^2 - 2 vs^2)
  grid::Grid3<real_t> mu;   ///< mu = rho vs^2
  grid::Grid3<real_t> b;    ///< buoyancy 1/rho
  grid::Grid3<real_t> damp;

  [[nodiscard]] double vp_max() const;
  [[nodiscard]] double critical_dt() const;
};

/// Velocity-profile builders. `layered` produces the classic
/// velocity-increasing-with-depth stack (n layers between v_top and
/// v_bottom); `homogeneous` a constant medium.
[[nodiscard]] AcousticModel make_acoustic_homogeneous(const Geometry& g,
                                                      double vp = 1.5);
[[nodiscard]] AcousticModel make_acoustic_layered(const Geometry& g,
                                                  double v_top = 1.5,
                                                  double v_bottom = 3.5,
                                                  int layers = 5);

/// TTI model with smoothly varying Thomsen parameters and tilt, the
/// industrial RTM/FWI-style setup of Section III.B.
[[nodiscard]] TTIModel make_tti_layered(const Geometry& g, double v_top = 1.5,
                                        double v_bottom = 3.5,
                                        int layers = 5);

/// Elastic model with vs = vp / sqrt(3) (Poisson solid) and constant
/// density, velocity increasing with depth.
[[nodiscard]] ElasticModel make_elastic_layered(const Geometry& g,
                                                double vp_top = 1.5,
                                                double vp_bottom = 3.5,
                                                int layers = 5);

}  // namespace tempest::physics
