#include "tempest/physics/model.hpp"

#include <cmath>

#include "tempest/physics/damping.hpp"
#include "tempest/stencil/cfl.hpp"
#include "tempest/util/error.hpp"

namespace tempest::physics {

namespace {

/// Depth-dependent layered velocity: `layers` constant-velocity slabs from
/// v_top at z=0 to v_bottom at the deepest slab.
real_t layered_velocity(int z, int nz, double v_top, double v_bottom,
                        int layers) {
  const int layer = std::min(layers - 1, z * layers / std::max(1, nz));
  const double f =
      layers > 1 ? static_cast<double>(layer) / (layers - 1) : 0.0;
  return static_cast<real_t>(v_top + f * (v_bottom - v_top));
}

grid::Grid3<real_t> squared_slowness(const grid::Grid3<real_t>& vp, int halo) {
  grid::Grid3<real_t> m(vp.extents(), halo, real_t{0});
  vp.for_each_interior([&](int x, int y, int z) {
    const real_t v = vp(x, y, z);
    m(x, y, z) = real_t{1} / (v * v);
  });
  // Extend into the halo so stencil reads of m at the edge stay physical.
  // (Only the update-point value of m is read by the kernels, but a constant
  // halo keeps the division in the update well-defined everywhere.)
  return m;
}

}  // namespace

double AcousticModel::vp_max() const { return grid::max_abs(vp); }

double AcousticModel::critical_dt() const {
  return stencil::acoustic_dt(geom.spacing, vp_max(), geom.space_order);
}

double TTIModel::vp_max() const { return grid::max_abs(vp); }

double TTIModel::critical_dt() const {
  return stencil::tti_dt(geom.spacing, vp_max(), geom.space_order,
                         grid::max_abs(epsilon), grid::max_abs(delta));
}

double ElasticModel::vp_max() const { return grid::max_abs(vp); }

double ElasticModel::critical_dt() const {
  return stencil::elastic_dt(geom.spacing, vp_max(), geom.space_order);
}

AcousticModel make_acoustic_homogeneous(const Geometry& g, double vp_val) {
  TEMPEST_REQUIRE(vp_val > 0.0);
  const int h = g.radius();
  AcousticModel model{g,
                      grid::Grid3<real_t>(g.extents, h,
                                          static_cast<real_t>(vp_val)),
                      grid::Grid3<real_t>(g.extents, h, real_t{0}),
                      make_damping(g, vp_val)};
  model.m = squared_slowness(model.vp, h);
  model.m.fill(static_cast<real_t>(1.0 / (vp_val * vp_val)));
  return model;
}

AcousticModel make_acoustic_layered(const Geometry& g, double v_top,
                                    double v_bottom, int layers) {
  TEMPEST_REQUIRE(v_top > 0.0 && v_bottom >= v_top && layers >= 1);
  const int h = g.radius();
  AcousticModel model{g, grid::Grid3<real_t>(g.extents, h, real_t{0}),
                      grid::Grid3<real_t>(g.extents, h, real_t{0}),
                      make_damping(g, v_top)};
  model.vp.for_each_interior([&](int x, int y, int z) {
    (void)x;
    (void)y;
    model.vp(x, y, z) =
        layered_velocity(z, g.extents.nz, v_top, v_bottom, layers);
  });
  model.m = squared_slowness(model.vp, h);
  return model;
}

TTIModel make_tti_layered(const Geometry& g, double v_top, double v_bottom,
                          int layers) {
  TEMPEST_REQUIRE(v_top > 0.0 && v_bottom >= v_top && layers >= 1);
  const int h = g.radius();
  TTIModel model{g,
                 grid::Grid3<real_t>(g.extents, h, real_t{0}),
                 grid::Grid3<real_t>(g.extents, h, real_t{0}),
                 make_damping(g, v_top),
                 grid::Grid3<real_t>(g.extents, h, real_t{0}),
                 grid::Grid3<real_t>(g.extents, h, real_t{0}),
                 grid::Grid3<real_t>(g.extents, h, real_t{0}),
                 grid::Grid3<real_t>(g.extents, h, real_t{0})};
  const auto& e = g.extents;
  model.vp.for_each_interior([&](int x, int y, int z) {
    model.vp(x, y, z) = layered_velocity(z, e.nz, v_top, v_bottom, layers);
    // Smoothly varying anisotropy and tilt, in the ranges typical of
    // sedimentary TTI models (Thomsen eps up to ~0.25, delta up to ~0.15,
    // tilt up to ~30 degrees).
    const double fx = static_cast<double>(x) / std::max(1, e.nx - 1);
    const double fz = static_cast<double>(z) / std::max(1, e.nz - 1);
    model.epsilon(x, y, z) = static_cast<real_t>(0.10 + 0.15 * fz);
    model.delta(x, y, z) = static_cast<real_t>(0.05 + 0.10 * fz);
    model.theta(x, y, z) = static_cast<real_t>(0.5 * fx);  // 0..~28.6 deg
    model.phi(x, y, z) = static_cast<real_t>(0.3 * fz);
  });
  model.m = squared_slowness(model.vp, h);
  return model;
}

ElasticModel make_elastic_layered(const Geometry& g, double vp_top,
                                  double vp_bottom, int layers) {
  TEMPEST_REQUIRE(vp_top > 0.0 && vp_bottom >= vp_top && layers >= 1);
  const int h = g.radius();
  auto zero = [&] { return grid::Grid3<real_t>(g.extents, h, real_t{0}); };
  ElasticModel model{g,      zero(), zero(), zero(), zero(),
                     zero(), zero(), make_damping(g, vp_top)};
  const double rho0 = 1.0;  // g/cm^3 — constant density Poisson solid
  model.vp.for_each_interior([&](int x, int y, int z) {
    const real_t vp =
        layered_velocity(z, g.extents.nz, vp_top, vp_bottom, layers);
    const real_t vs = vp / static_cast<real_t>(std::sqrt(3.0));
    model.vp(x, y, z) = vp;
    model.vs(x, y, z) = vs;
    model.rho(x, y, z) = static_cast<real_t>(rho0);
    model.mu(x, y, z) = static_cast<real_t>(rho0) * vs * vs;
    model.lam(x, y, z) =
        static_cast<real_t>(rho0) * (vp * vp - real_t{2} * vs * vs);
    model.b(x, y, z) = static_cast<real_t>(1.0 / rho0);
  });
  return model;
}

}  // namespace tempest::physics
