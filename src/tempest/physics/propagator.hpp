#pragma once

#include "tempest/core/wavefront.hpp"
#include "tempest/resilience/health.hpp"
#include "tempest/sparse/interp.hpp"

namespace tempest::physics {

/// Execution schedule selector shared by all three propagators.
enum class Schedule {
  Reference,     ///< un-blocked triple loop + naive sparse ops (validation)
  SpaceBlocked,  ///< the paper's baseline: vectorized spatial cache blocking
  Wavefront,     ///< the contribution: WTB with precomputed sparse operators
  Diamond,       ///< diamond/split temporal blocking (acoustic only): the
                 ///< alternative TB family the precompute scheme legalises
};

[[nodiscard]] constexpr const char* to_string(Schedule s) {
  switch (s) {
    case Schedule::Reference: return "reference";
    case Schedule::SpaceBlocked: return "space-blocked";
    case Schedule::Wavefront: return "wavefront";
    case Schedule::Diamond: return "diamond";
  }
  return "?";
}

/// Wall-clock and throughput accounting for one propagation run.
struct RunStats {
  double seconds = 0.0;             ///< time loop only
  double precompute_seconds = 0.0;  ///< sparse-operator precompute (WTB only)
  long long point_updates = 0;      ///< grid-point updates performed

  [[nodiscard]] double gpoints_per_s() const {
    return seconds > 0.0 ? static_cast<double>(point_updates) / seconds / 1e9
                         : 0.0;
  }
};

/// Propagator tuning knobs shared by the three kernels.
struct PropagatorOptions {
  core::TileSpec tiles{};
  sparse::InterpKind interp = sparse::InterpKind::Trilinear;
  double dt = 0.0;  ///< timestep (ms); 0 selects the model's critical dt

  /// Numerical health monitoring (NaN/Inf and energy blow-up scans).
  /// Disabled by default; when enabled, barrier schedules scan every
  /// `check_every` steps and temporally blocked schedules scan at time-band
  /// boundaries — the only instants a whole timestep exists under blocking.
  resilience::HealthPolicy health{};
};

}  // namespace tempest::physics
