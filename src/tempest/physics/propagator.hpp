#pragma once

// The physics-facing names of the schedule-execution engine. Schedule
// dispatch, run statistics and the option set live in core/engine.hpp —
// exactly once, for every propagator; this header re-exports them under the
// tempest::physics names the propagators, examples and benches use.

#include "tempest/core/engine.hpp"

namespace tempest::physics {

using Schedule = core::engine::Schedule;
using core::engine::schedule_from_string;
using core::engine::to_string;

using RunStats = core::engine::RunStats;
using StepCallback = core::engine::StepCallback;
using PropagatorOptions = core::engine::ExecutionOptions;

}  // namespace tempest::physics
