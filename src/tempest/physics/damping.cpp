#include "tempest/physics/damping.hpp"

#include <algorithm>
#include <cmath>

#include "tempest/util/error.hpp"

namespace tempest::physics {

grid::Grid3<real_t> make_damping(const Geometry& g, double vp_ref,
                                 double r0) {
  TEMPEST_REQUIRE(g.nbl >= 0 && vp_ref > 0.0 && r0 > 0.0 && r0 < 1.0);
  grid::Grid3<real_t> damp(g.extents, g.radius(), real_t{0});
  if (g.nbl == 0) return damp;

  const double len = g.nbl * g.spacing;                  // layer depth (m)
  const double d0 = 1.5 * vp_ref / len * std::log(1.0 / r0);  // 1/ms

  const auto& e = g.extents;
  damp.for_each_interior([&](int x, int y, int z) {
    const int dist = std::min({x, e.nx - 1 - x, y, e.ny - 1 - y, z,
                               e.nz - 1 - z});
    if (dist >= g.nbl) return;
    const double frac = static_cast<double>(g.nbl - dist) / g.nbl;
    damp(x, y, z) = static_cast<real_t>(d0 * frac * frac);
  });
  return damp;
}

}  // namespace tempest::physics
