#include "tempest/physics/acoustic.hpp"

#include <vector>

#include "tempest/core/engine.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"

namespace tempest::physics {

analysis::AccessSummary acoustic_access_summary(int space_order) {
  return {.kernel = "acoustic",
          .field = "u",
          .radius = space_order / 2,
          .substeps = 1,
          .time_reads = {0, -1},
          .write_radius = 0};
}

namespace {

/// Fold the symmetric second-derivative weights into w[0..R] (centre +
/// one weight per |offset|), stored in field precision.
std::vector<real_t> folded_weights(int space_order) {
  const stencil::Coeffs c = stencil::central(2, space_order);
  const int r = stencil::radius_for_order(space_order);
  std::vector<real_t> w(static_cast<std::size_t>(r) + 1);
  for (int k = 0; k <= r; ++k) {
    w[static_cast<std::size_t>(k)] =
        static_cast<real_t>(c.weights[static_cast<std::size_t>(r + k)]);
  }
  return w;
}

/// The hot kernel: damped acoustic update of one space block at one
/// timestep. Compile-time radius so the neighbour loop fully unrolls inside
/// the vectorized z loop. Pointers are interior origins; all fields share
/// one halo and therefore one set of strides.
template <int R>
void update_block(real_t* __restrict un, const real_t* __restrict uc,
                  const real_t* __restrict up, const real_t* __restrict m,
                  const real_t* __restrict dmp, std::ptrdiff_t sx,
                  std::ptrdiff_t sy, const grid::Box3& b,
                  const real_t* __restrict w, real_t inv_h2, real_t idt2,
                  real_t i2dt) {
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      const real_t* __restrict ucr = uc + row;
      const real_t* __restrict upr = up + row;
      const real_t* __restrict mr = m + row;
      const real_t* __restrict dr = dmp + row;
      real_t* __restrict unr = un + row;
#pragma omp simd
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        real_t acc = real_t{3} * w[0] * ucr[z];
#pragma GCC unroll 8
        for (int k = 1; k <= R; ++k) {
          acc += w[k] * (ucr[z - k] + ucr[z + k] + ucr[z - k * sy] +
                         ucr[z + k * sy] + ucr[z - k * sx] + ucr[z + k * sx]);
        }
        const real_t lap = acc * inv_h2;
        const real_t num = lap + mr[z] * idt2 * (real_t{2} * ucr[z] - upr[z]) +
                           dr[z] * i2dt * upr[z];
        unr[z] = num / (mr[z] * idt2 + dr[z] * i2dt);
      }
    }
  }
}

/// Runtime-radius fallback for space orders without a dedicated
/// instantiation. Same arithmetic and summation order as the template.
void update_block_generic(real_t* __restrict un, const real_t* __restrict uc,
                          const real_t* __restrict up,
                          const real_t* __restrict m,
                          const real_t* __restrict dmp, std::ptrdiff_t sx,
                          std::ptrdiff_t sy, const grid::Box3& b,
                          const real_t* __restrict w, int radius,
                          real_t inv_h2, real_t idt2, real_t i2dt) {
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      const real_t* __restrict ucr = uc + row;
      const real_t* __restrict upr = up + row;
      const real_t* __restrict mr = m + row;
      const real_t* __restrict dr = dmp + row;
      real_t* __restrict unr = un + row;
#pragma omp simd
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        real_t acc = real_t{3} * w[0] * ucr[z];
        for (int k = 1; k <= radius; ++k) {
          acc += w[k] * (ucr[z - k] + ucr[z + k] + ucr[z - k * sy] +
                         ucr[z + k * sy] + ucr[z - k * sx] + ucr[z + k * sx]);
        }
        const real_t lap = acc * inv_h2;
        const real_t num = lap + mr[z] * idt2 * (real_t{2} * ucr[z] - upr[z]) +
                           dr[z] * i2dt * upr[z];
        unr[z] = num / (mr[z] * idt2 + dr[z] * i2dt);
      }
    }
  }
}

/// PhysicsKernel adapter for the engine: three-slot time buffer, single
/// injection/gather field u, `dt^2 / m` injection scaling.
class AcousticKernel {
 public:
  static constexpr int kSubstepsPerStep = 1;
  static constexpr int kFirstStep = 1;

  AcousticKernel(const AcousticModel& model, grid::TimeBuffer<real_t>& u,
                 double dt)
      : model_(model),
        u_(u),
        w_(folded_weights(model.geom.space_order)),
        inv_h2_(static_cast<real_t>(
            1.0 / (model.geom.spacing * model.geom.spacing))),
        idt2_(static_cast<real_t>(1.0 / (dt * dt))),
        i2dt_(static_cast<real_t>(1.0 / (2.0 * dt))),
        dt2_(static_cast<real_t>(dt * dt)),
        sx_(u.at(0).stride_x()),
        sy_(u.at(0).stride_y()) {
    TEMPEST_REQUIRE(model.m.stride_x() == sx_ && model.m.stride_y() == sy_);
  }

  [[nodiscard]] const grid::Extents3& extents() const {
    return model_.geom.extents;
  }
  [[nodiscard]] int radius() const { return model_.geom.radius(); }
  [[nodiscard]] analysis::AccessSummary access_summary() const {
    return acoustic_access_summary(model_.geom.space_order);
  }

  void apply(int t, const grid::Box3& box) {
    real_t* un = u_.at(t + 1).origin();
    const real_t* uc = u_.at(t).origin();
    const real_t* up = u_.at(t - 1).origin();
    const real_t* m = model_.m.origin();
    const real_t* dmp = model_.damp.origin();
    switch (radius()) {
      case 1:
        update_block<1>(un, uc, up, m, dmp, sx_, sy_, box, w_.data(), inv_h2_,
                        idt2_, i2dt_);
        break;
      case 2:
        update_block<2>(un, uc, up, m, dmp, sx_, sy_, box, w_.data(), inv_h2_,
                        idt2_, i2dt_);
        break;
      case 4:
        update_block<4>(un, uc, up, m, dmp, sx_, sy_, box, w_.data(), inv_h2_,
                        idt2_, i2dt_);
        break;
      case 6:
        update_block<6>(un, uc, up, m, dmp, sx_, sy_, box, w_.data(), inv_h2_,
                        idt2_, i2dt_);
        break;
      default:
        update_block_generic(un, uc, up, m, dmp, sx_, sy_, box, w_.data(),
                             radius(), inv_h2_, idt2_, i2dt_);
        break;
    }
  }

  [[nodiscard]] real_t inject_scale(int x, int y, int z) const {
    return dt2_ / model_.m(x, y, z);
  }
  [[nodiscard]] core::engine::FieldRefs inject_fields(int t) {
    return {{&u_.at(t + 1)}, 1};
  }
  [[nodiscard]] const grid::Grid3<real_t>& gather_field(int t) const {
    return u_.at(t + 1);
  }
  [[nodiscard]] core::engine::HealthFields health_fields(int t) {
    return {{{{"u", &u_.at(t)}}}, 1};
  }

 private:
  const AcousticModel& model_;
  grid::TimeBuffer<real_t>& u_;
  std::vector<real_t> w_;
  real_t inv_h2_, idt2_, i2dt_, dt2_;
  std::ptrdiff_t sx_, sy_;
};

static_assert(core::engine::PhysicsKernel<AcousticKernel>);

}  // namespace

AcousticPropagator::AcousticPropagator(const AcousticModel& model,
                                       PropagatorOptions opts)
    : model_(model),
      opts_(opts),
      dt_(opts.dt > 0.0 ? opts.dt : model.critical_dt()),
      u_(3, model.geom.extents, model.geom.radius()) {
  TEMPEST_REQUIRE(model.geom.space_order >= 2 &&
                  model.geom.space_order % 2 == 0);
  TEMPEST_REQUIRE(opts_.tiles.valid());
  TEMPEST_REQUIRE_MSG(model.vp.halo() == model.geom.radius(),
                      "model fields must carry halo == stencil radius");
}

RunStats AcousticPropagator::run(Schedule sched,
                                 const sparse::SparseTimeSeries& src,
                                 sparse::SparseTimeSeries* rec,
                                 const StepCallback& on_step) {
  if (rec != nullptr) rec->zero();
  u_.fill(real_t{0});
  return run_from(AcousticKernel::kFirstStep, sched, src, rec, on_step);
}

RunStats AcousticPropagator::run_from(int t_begin, Schedule sched,
                                      const sparse::SparseTimeSeries& src,
                                      sparse::SparseTimeSeries* rec,
                                      const StepCallback& on_step) {
  AcousticKernel kernel(model_, u_, dt_);
  core::engine::ScheduleExecutor executor(kernel, opts_);
  return executor.run_from(t_begin, sched, src, rec, on_step);
}

resilience::Checkpoint AcousticPropagator::capture(
    int step, std::uint64_t fingerprint,
    const sparse::SparseTimeSeries* rec) const {
  std::vector<const grid::Grid3<real_t>*> slices;
  slices.reserve(static_cast<std::size_t>(u_.slots()));
  for (int s = 0; s < u_.slots(); ++s) slices.push_back(&u_.slot(s));
  return core::engine::capture_state(slices, step, AcousticKernel::kFirstStep,
                                     fingerprint, rec);
}

void AcousticPropagator::restore(const resilience::Checkpoint& ck) {
  std::vector<grid::Grid3<real_t>*> slices;
  slices.reserve(static_cast<std::size_t>(u_.slots()));
  for (int s = 0; s < u_.slots(); ++s) slices.push_back(&u_.slot(s));
  core::engine::restore_state(slices, ck);
}

}  // namespace tempest::physics
