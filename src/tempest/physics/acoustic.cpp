#include "tempest/physics/acoustic.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "tempest/core/compress.hpp"
#include "tempest/core/diamond.hpp"
#include "tempest/core/fused.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/resilience/fault.hpp"
#include "tempest/sparse/operators.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/timer.hpp"

namespace tempest::physics {

namespace {

/// Fold the symmetric second-derivative weights into w[0..R] (centre +
/// one weight per |offset|), stored in field precision.
std::vector<real_t> folded_weights(int space_order) {
  const stencil::Coeffs c = stencil::central(2, space_order);
  const int r = stencil::radius_for_order(space_order);
  std::vector<real_t> w(static_cast<std::size_t>(r) + 1);
  for (int k = 0; k <= r; ++k) {
    w[static_cast<std::size_t>(k)] =
        static_cast<real_t>(c.weights[static_cast<std::size_t>(r + k)]);
  }
  return w;
}

/// The hot kernel: damped acoustic update of one space block at one
/// timestep. Compile-time radius so the neighbour loop fully unrolls inside
/// the vectorized z loop. Pointers are interior origins; all fields share
/// one halo and therefore one set of strides.
template <int R>
void update_block(real_t* __restrict un, const real_t* __restrict uc,
                  const real_t* __restrict up, const real_t* __restrict m,
                  const real_t* __restrict dmp, std::ptrdiff_t sx,
                  std::ptrdiff_t sy, const grid::Box3& b,
                  const real_t* __restrict w, real_t inv_h2, real_t idt2,
                  real_t i2dt) {
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      const real_t* __restrict ucr = uc + row;
      const real_t* __restrict upr = up + row;
      const real_t* __restrict mr = m + row;
      const real_t* __restrict dr = dmp + row;
      real_t* __restrict unr = un + row;
#pragma omp simd
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        real_t acc = real_t{3} * w[0] * ucr[z];
#pragma GCC unroll 8
        for (int k = 1; k <= R; ++k) {
          acc += w[k] * (ucr[z - k] + ucr[z + k] + ucr[z - k * sy] +
                         ucr[z + k * sy] + ucr[z - k * sx] + ucr[z + k * sx]);
        }
        const real_t lap = acc * inv_h2;
        const real_t num = lap + mr[z] * idt2 * (real_t{2} * ucr[z] - upr[z]) +
                           dr[z] * i2dt * upr[z];
        unr[z] = num / (mr[z] * idt2 + dr[z] * i2dt);
      }
    }
  }
}

/// Runtime-radius fallback for space orders without a dedicated
/// instantiation. Same arithmetic and summation order as the template.
void update_block_generic(real_t* __restrict un, const real_t* __restrict uc,
                          const real_t* __restrict up,
                          const real_t* __restrict m,
                          const real_t* __restrict dmp, std::ptrdiff_t sx,
                          std::ptrdiff_t sy, const grid::Box3& b,
                          const real_t* __restrict w, int radius,
                          real_t inv_h2, real_t idt2, real_t i2dt) {
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      const real_t* __restrict ucr = uc + row;
      const real_t* __restrict upr = up + row;
      const real_t* __restrict mr = m + row;
      const real_t* __restrict dr = dmp + row;
      real_t* __restrict unr = un + row;
#pragma omp simd
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        real_t acc = real_t{3} * w[0] * ucr[z];
        for (int k = 1; k <= radius; ++k) {
          acc += w[k] * (ucr[z - k] + ucr[z + k] + ucr[z - k * sy] +
                         ucr[z + k * sy] + ucr[z - k * sx] + ucr[z + k * sx]);
        }
        const real_t lap = acc * inv_h2;
        const real_t num = lap + mr[z] * idt2 * (real_t{2} * ucr[z] - upr[z]) +
                           dr[z] * i2dt * upr[z];
        unr[z] = num / (mr[z] * idt2 + dr[z] * i2dt);
      }
    }
  }
}

}  // namespace

AcousticPropagator::AcousticPropagator(const AcousticModel& model,
                                       PropagatorOptions opts)
    : model_(model),
      opts_(opts),
      dt_(opts.dt > 0.0 ? opts.dt : model.critical_dt()),
      u_(3, model.geom.extents, model.geom.radius()) {
  TEMPEST_REQUIRE(model.geom.space_order >= 2 &&
                  model.geom.space_order % 2 == 0);
  TEMPEST_REQUIRE(opts_.tiles.valid());
  TEMPEST_REQUIRE_MSG(model.vp.halo() == model.geom.radius(),
                      "model fields must carry halo == stencil radius");
}

RunStats AcousticPropagator::run(Schedule sched,
                                 const sparse::SparseTimeSeries& src,
                                 sparse::SparseTimeSeries* rec,
                                 const StepCallback& on_step) {
  if (rec != nullptr) rec->zero();
  u_.fill(real_t{0});
  return run_from(1, sched, src, rec, on_step);
}

resilience::Checkpoint AcousticPropagator::capture(
    int step, std::uint64_t fingerprint,
    const sparse::SparseTimeSeries* rec) const {
  TEMPEST_REQUIRE(step >= 1);
  resilience::Checkpoint ck;
  ck.fingerprint = fingerprint;
  ck.step = step;
  ck.slots.reserve(static_cast<std::size_t>(u_.slots()));
  for (int s = 0; s < u_.slots(); ++s) ck.slots.push_back(u_.slot(s));
  if (rec != nullptr) {
    ck.has_rec = true;
    ck.rec = *rec;
  }
  return ck;
}

void AcousticPropagator::restore(const resilience::Checkpoint& ck) {
  if (static_cast<int>(ck.slots.size()) != u_.slots() || ck.slots.empty() ||
      ck.slots.front().extents() != model_.geom.extents ||
      ck.slots.front().halo() != model_.geom.radius()) {
    std::ostringstream os;
    os << "checkpoint does not fit this propagator: it holds "
       << ck.slots.size() << " slices";
    if (!ck.slots.empty()) {
      const auto& e = ck.slots.front().extents();
      os << " of " << e.nx << "x" << e.ny << "x" << e.nz << " (halo "
         << ck.slots.front().halo() << ")";
    }
    const auto& e = model_.geom.extents;
    os << ", this run needs " << u_.slots() << " of " << e.nx << "x" << e.ny
       << "x" << e.nz << " (halo " << model_.geom.radius() << ")";
    throw resilience::CheckpointMismatchError(os.str());
  }
  for (int s = 0; s < u_.slots(); ++s) {
    u_.slot(s) = ck.slots[static_cast<std::size_t>(s)];
  }
}

RunStats AcousticPropagator::run_from(int t_begin, Schedule sched,
                                      const sparse::SparseTimeSeries& src,
                                      sparse::SparseTimeSeries* rec,
                                      const StepCallback& on_step) {
  const int nt = src.nt();
  TEMPEST_REQUIRE(nt >= 2);
  TEMPEST_REQUIRE_MSG(t_begin >= 1 && t_begin < nt,
                      "resume step outside the simulated time range");
  TEMPEST_REQUIRE_MSG(
      !on_step ||
          (sched != Schedule::Wavefront && sched != Schedule::Diamond),
      "per-timestep callbacks need a schedule with a global time barrier "
      "(Reference or SpaceBlocked)");
  if (rec != nullptr) {
    TEMPEST_REQUIRE(rec->nt() >= nt);
  }

  resilience::HealthMonitor monitor(opts_.health);

  const auto& e = model_.geom.extents;
  const int radius = model_.geom.radius();
  const std::vector<real_t> w = folded_weights(model_.geom.space_order);
  const real_t inv_h2 =
      static_cast<real_t>(1.0 / (model_.geom.spacing * model_.geom.spacing));
  const real_t idt2 = static_cast<real_t>(1.0 / (dt_ * dt_));
  const real_t i2dt = static_cast<real_t>(1.0 / (2.0 * dt_));
  const real_t dt2 = static_cast<real_t>(dt_ * dt_);

  const std::ptrdiff_t sx = u_.at(0).stride_x();
  const std::ptrdiff_t sy = u_.at(0).stride_y();
  TEMPEST_REQUIRE(model_.m.stride_x() == sx && model_.m.stride_y() == sy);
  const real_t* m_ptr = model_.m.origin();
  const real_t* damp_ptr = model_.damp.origin();

  // Grid-point-local injection factor (Devito's `src * dt^2 / m`).
  const auto& m_grid = model_.m;
  auto inj_scale = [dt2, &m_grid](int x, int y, int z) {
    return dt2 / m_grid(x, y, z);
  };

  // Post-step resilience hook shared by all schedules: the deterministic
  // fault-injection site first (tests arm it; disarmed it is one int
  // compare), then the wavefield health scan. Barrier schedules gate the
  // scan on the policy cadence; temporally blocked schedules scan at every
  // band boundary, the only instants a whole timestep exists.
  auto health_point = [&](int t_done, bool cadence_gated) {
    if (resilience::fault::consume_wavefield_poison(t_done)) {
      u_.at(t_done)(e.nx / 2, e.ny / 2, e.nz / 2) =
          std::numeric_limits<real_t>::quiet_NaN();
    }
    if (monitor.enabled() && (!cadence_gated || monitor.due(t_done))) {
      monitor.check(u_.at(t_done), "u", t_done);
    }
  };

  // One block of one timestep: the unit handed to both schedules.
  auto stencil_block = [&](int t, const grid::Box3& box) {
    TEMPEST_TRACE_COUNT(CellsUpdated, box.volume());
    TEMPEST_TRACE_COUNT(
        HaloCellsTouched,
        2 * radius *
            (box.x.length() * box.y.length() + box.y.length() * box.z.length() +
             box.x.length() * box.z.length()));
    real_t* un = u_.at(t + 1).origin();
    const real_t* uc = u_.at(t).origin();
    const real_t* up = u_.at(t - 1).origin();
    switch (radius) {
      case 1:
        update_block<1>(un, uc, up, m_ptr, damp_ptr, sx, sy, box, w.data(),
                        inv_h2, idt2, i2dt);
        break;
      case 2:
        update_block<2>(un, uc, up, m_ptr, damp_ptr, sx, sy, box, w.data(),
                        inv_h2, idt2, i2dt);
        break;
      case 4:
        update_block<4>(un, uc, up, m_ptr, damp_ptr, sx, sy, box, w.data(),
                        inv_h2, idt2, i2dt);
        break;
      case 6:
        update_block<6>(un, uc, up, m_ptr, damp_ptr, sx, sy, box, w.data(),
                        inv_h2, idt2, i2dt);
        break;
      default:
        update_block_generic(un, uc, up, m_ptr, damp_ptr, sx, sy, box,
                             w.data(), radius, inv_h2, idt2, i2dt);
        break;
    }
  };

  RunStats stats;
  stats.point_updates =
      static_cast<long long>(nt - t_begin) * static_cast<long long>(e.size());

  if (sched == Schedule::Wavefront || sched == Schedule::Diamond) {
    // --- The paper's scheme: precompute, fuse, compress, time-tile. The
    // same precomputed structures legalise either temporal-blocking family
    // (wave-front or diamond). ---
    util::Timer pre;
    const core::SourceMasks masks =
        core::build_source_masks(e, src, opts_.interp);
    const core::DecomposedSource dcmp =
        core::decompose_sources(masks, src, opts_.interp);
    const core::CompressedSparse cs_src(masks.sm, masks.sid);

    core::DecomposedReceivers drec;
    core::CompressedSparse cs_rec;
    if (rec != nullptr && rec->npoints() > 0) {
      drec = core::decompose_receivers(e, *rec, opts_.interp);
      cs_rec = core::CompressedSparse(drec.rm, drec.rid);
    }
    stats.precompute_seconds = pre.seconds();

    auto fused_block = [&](int t, const grid::Box3& box) {
      {
        TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
        stencil_block(t, box);
      }
      {
        TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
        core::fused_inject(u_.at(t + 1), cs_src, dcmp, t, box.x, box.y,
                           inj_scale);
      }
      if (rec != nullptr && !cs_rec.empty()) {
        TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
        core::fused_gather(u_.at(t + 1), cs_rec, drec, rec->step(t).data(),
                           box.x, box.y);
      }
    };

    // Completed-band hook: timestep te-1 is the newest complete slice, and
    // u_.at(te) is the newest fully *written* slice (ops compute t+1).
    auto on_band = [&](int te) { health_point(te, /*cadence_gated=*/false); };

    util::Timer timer;
    if (sched == Schedule::Wavefront) {
      core::run_wavefront(e, t_begin, nt, radius, opts_.tiles, fused_block,
                          /*parallel=*/true, on_band);
    } else {
      core::DiamondSpec dspec;
      dspec.height = opts_.tiles.tile_t;
      // The x period must accommodate the band's dependency cone.
      dspec.width =
          std::max(opts_.tiles.tile_x, 2 * radius * opts_.tiles.tile_t);
      dspec.block_x = opts_.tiles.block_x;
      dspec.block_y = opts_.tiles.block_y;
      core::run_diamond(e, t_begin, nt, radius, dspec, fused_block,
                        /*parallel=*/true, on_band);
    }
    stats.seconds = timer.seconds();
    return stats;
  }

  if (sched == Schedule::SpaceBlocked) {
    // --- The paper's baseline: spatial blocking + per-timestep naive
    // sparse operators through prebuilt support caches. ---
    const sparse::SupportCache src_cache(src, opts_.interp, e);
    sparse::SupportCache rec_cache;
    if (rec != nullptr && rec->npoints() > 0) {
      rec_cache = sparse::SupportCache(*rec, opts_.interp, e);
    }

    util::Timer timer;
    const auto blocks = grid::decompose_xy(
        grid::Box3::whole(e), opts_.tiles.block_x, opts_.tiles.block_y);
    for (int t = t_begin; t < nt; ++t) {
      {
        TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
        TEMPEST_TRACE_COUNT(BlocksExecuted, blocks.size());
#pragma omp parallel for schedule(dynamic)
        for (std::size_t b = 0; b < blocks.size(); ++b) {
          stencil_block(t, blocks[b]);
        }
      }
      {
        TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
        sparse::inject_cached(u_.at(t + 1), src, t, src_cache, inj_scale);
      }
      if (rec != nullptr && rec->npoints() > 0) {
        TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
        sparse::interpolate_cached(u_.at(t + 1), *rec, t, rec_cache);
      }
      health_point(t + 1, /*cadence_gated=*/true);
      if (on_step) on_step(t + 1);
    }
    stats.seconds = timer.seconds();
    return stats;
  }

  // --- Reference: unblocked sweep + naive (uncached) sparse operators. ---
  util::Timer timer;
  for (int t = t_begin; t < nt; ++t) {
    {
      TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
      TEMPEST_TRACE_COUNT(BlocksExecuted, 1);
      stencil_block(t, grid::Box3::whole(e));
    }
    {
      TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
      sparse::inject(u_.at(t + 1), src, t, opts_.interp, inj_scale);
    }
    if (rec != nullptr && rec->npoints() > 0) {
      TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
      sparse::interpolate(u_.at(t + 1), *rec, t, opts_.interp);
    }
    health_point(t + 1, /*cadence_gated=*/true);
    if (on_step) on_step(t + 1);
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace tempest::physics
