#include "tempest/physics/vti.hpp"

#include <cmath>
#include <vector>

#include "tempest/core/engine.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"

namespace tempest::physics {

analysis::AccessSummary vti_access_summary(int space_order) {
  return {.kernel = "vti",
          .field = "u",
          .radius = space_order / 2,
          .substeps = 1,
          .time_reads = {0, -1},
          .write_radius = 0};
}

namespace {

std::vector<real_t> folded_w2(int space_order) {
  const stencil::Coeffs c = stencil::central(2, space_order);
  const int r = stencil::radius_for_order(space_order);
  std::vector<real_t> w(static_cast<std::size_t>(r) + 1);
  for (int k = 0; k <= r; ++k) {
    w[static_cast<std::size_t>(k)] =
        static_cast<real_t>(c.weights[static_cast<std::size_t>(r + k)]);
  }
  return w;
}

/// VTI block update: horizontal Laplacian of p, vertical second derivative
/// of q, coupled through the Thomsen factors.
template <int R>
void update_block(real_t* __restrict pn, const real_t* __restrict pc,
                  const real_t* __restrict pp, real_t* __restrict qn,
                  const real_t* __restrict qc, const real_t* __restrict qp,
                  const real_t* __restrict m, const real_t* __restrict damp,
                  const real_t* __restrict ah, const real_t* __restrict an,
                  std::ptrdiff_t sx, std::ptrdiff_t sy, const grid::Box3& b,
                  const real_t* __restrict w, real_t inv_h2, real_t idt2,
                  real_t i2dt) {
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
#pragma omp simd
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t hp = real_t{2} * w[0] * pc[i];  // d2x + d2y of p
        real_t hz = w[0] * qc[i];              // d2z of q
#pragma GCC unroll 8
        for (int k = 1; k <= R; ++k) {
          hp += w[k] * (pc[i - k * sx] + pc[i + k * sx] + pc[i - k * sy] +
                        pc[i + k * sy]);
          hz += w[k] * (qc[i - k] + qc[i + k]);
        }
        hp *= inv_h2;
        hz *= inv_h2;
        const real_t denom = m[i] * idt2 + damp[i] * i2dt;
        pn[i] = (ah[i] * hp + an[i] * hz +
                 m[i] * idt2 * (real_t{2} * pc[i] - pp[i]) +
                 damp[i] * i2dt * pp[i]) /
                denom;
        qn[i] = (an[i] * hp + hz +
                 m[i] * idt2 * (real_t{2} * qc[i] - qp[i]) +
                 damp[i] * i2dt * qp[i]) /
                denom;
      }
    }
  }
}

void update_block_generic(real_t* pn, const real_t* pc, const real_t* pp,
                          real_t* qn, const real_t* qc, const real_t* qp,
                          const real_t* m, const real_t* damp,
                          const real_t* ah, const real_t* an,
                          std::ptrdiff_t sx, std::ptrdiff_t sy,
                          const grid::Box3& b, const real_t* w, int radius,
                          real_t inv_h2, real_t idt2, real_t i2dt) {
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t hp = real_t{2} * w[0] * pc[i];
        real_t hz = w[0] * qc[i];
        for (int k = 1; k <= radius; ++k) {
          hp += w[k] * (pc[i - k * sx] + pc[i + k * sx] + pc[i - k * sy] +
                        pc[i + k * sy]);
          hz += w[k] * (qc[i - k] + qc[i + k]);
        }
        hp *= inv_h2;
        hz *= inv_h2;
        const real_t denom = m[i] * idt2 + damp[i] * i2dt;
        pn[i] = (ah[i] * hp + an[i] * hz +
                 m[i] * idt2 * (real_t{2} * pc[i] - pp[i]) +
                 damp[i] * i2dt * pp[i]) /
                denom;
        qn[i] = (an[i] * hp + hz +
                 m[i] * idt2 * (real_t{2} * qc[i] - qp[i]) +
                 damp[i] * i2dt * qp[i]) /
                denom;
      }
    }
  }
}

/// PhysicsKernel adapter: identical wiring to TTIKernel (coupled p/q,
/// source into both fields, receivers measure p), cheaper stencil.
class VTIKernel {
 public:
  static constexpr int kSubstepsPerStep = 1;
  static constexpr int kFirstStep = 1;

  VTIKernel(const TTIModel& model, grid::TimeBuffer<real_t>& p,
            grid::TimeBuffer<real_t>& q, const grid::Grid3<real_t>& ah,
            const grid::Grid3<real_t>& an, double dt)
      : model_(model),
        p_(p),
        q_(q),
        ah_(ah),
        an_(an),
        w_(folded_w2(model.geom.space_order)),
        inv_h2_(static_cast<real_t>(
            1.0 / (model.geom.spacing * model.geom.spacing))),
        idt2_(static_cast<real_t>(1.0 / (dt * dt))),
        i2dt_(static_cast<real_t>(1.0 / (2.0 * dt))),
        dt2_(static_cast<real_t>(dt * dt)),
        sx_(p.at(0).stride_x()),
        sy_(p.at(0).stride_y()) {
    TEMPEST_REQUIRE(model.m.stride_x() == sx_);
  }

  [[nodiscard]] const grid::Extents3& extents() const {
    return model_.geom.extents;
  }
  [[nodiscard]] int radius() const { return model_.geom.radius(); }
  [[nodiscard]] analysis::AccessSummary access_summary() const {
    return vti_access_summary(model_.geom.space_order);
  }

  void apply(int t, const grid::Box3& box) {
    real_t* pn = p_.at(t + 1).origin();
    const real_t* pc = p_.at(t).origin();
    const real_t* pp = p_.at(t - 1).origin();
    real_t* qn = q_.at(t + 1).origin();
    const real_t* qc = q_.at(t).origin();
    const real_t* qp = q_.at(t - 1).origin();
    const real_t* m = model_.m.origin();
    const real_t* damp = model_.damp.origin();
    switch (radius()) {
      case 1:
        update_block<1>(pn, pc, pp, qn, qc, qp, m, damp, ah_.origin(),
                        an_.origin(), sx_, sy_, box, w_.data(), inv_h2_,
                        idt2_, i2dt_);
        break;
      case 2:
        update_block<2>(pn, pc, pp, qn, qc, qp, m, damp, ah_.origin(),
                        an_.origin(), sx_, sy_, box, w_.data(), inv_h2_,
                        idt2_, i2dt_);
        break;
      case 4:
        update_block<4>(pn, pc, pp, qn, qc, qp, m, damp, ah_.origin(),
                        an_.origin(), sx_, sy_, box, w_.data(), inv_h2_,
                        idt2_, i2dt_);
        break;
      case 6:
        update_block<6>(pn, pc, pp, qn, qc, qp, m, damp, ah_.origin(),
                        an_.origin(), sx_, sy_, box, w_.data(), inv_h2_,
                        idt2_, i2dt_);
        break;
      default:
        update_block_generic(pn, pc, pp, qn, qc, qp, m, damp, ah_.origin(),
                             an_.origin(), sx_, sy_, box, w_.data(), radius(),
                             inv_h2_, idt2_, i2dt_);
        break;
    }
  }

  [[nodiscard]] real_t inject_scale(int x, int y, int z) const {
    return dt2_ / model_.m(x, y, z);
  }
  [[nodiscard]] core::engine::FieldRefs inject_fields(int t) {
    return {{&p_.at(t + 1), &q_.at(t + 1)}, 2};
  }
  [[nodiscard]] const grid::Grid3<real_t>& gather_field(int t) const {
    return p_.at(t + 1);
  }
  [[nodiscard]] core::engine::HealthFields health_fields(int t) {
    return {{{{"p", &p_.at(t)}, {"q", &q_.at(t)}}}, 2};
  }

 private:
  const TTIModel& model_;
  grid::TimeBuffer<real_t>& p_;
  grid::TimeBuffer<real_t>& q_;
  const grid::Grid3<real_t>& ah_;
  const grid::Grid3<real_t>& an_;
  std::vector<real_t> w_;
  real_t inv_h2_, idt2_, i2dt_, dt2_;
  std::ptrdiff_t sx_, sy_;
};

static_assert(core::engine::PhysicsKernel<VTIKernel>);

}  // namespace

VTIPropagator::VTIPropagator(const TTIModel& model, PropagatorOptions opts)
    : model_(model),
      opts_(opts),
      dt_(opts.dt > 0.0 ? opts.dt : model.critical_dt()),
      p_(3, model.geom.extents, model.geom.radius()),
      q_(3, model.geom.extents, model.geom.radius()),
      ah_(model.geom.extents, model.geom.radius(), real_t{1}),
      an_(model.geom.extents, model.geom.radius(), real_t{1}) {
  TEMPEST_REQUIRE(opts_.tiles.valid());
  TEMPEST_REQUIRE_MSG(grid::max_abs(model.theta) == 0.0 &&
                          grid::max_abs(model.phi) == 0.0,
                      "VTI requires an untilted model (theta == phi == 0); "
                      "use TTIPropagator for tilted media");
  ah_.for_each_interior([&](int x, int y, int z) {
    ah_(x, y, z) = static_cast<real_t>(1.0 + 2.0 * model_.epsilon(x, y, z));
    an_(x, y, z) =
        static_cast<real_t>(std::sqrt(1.0 + 2.0 * model_.delta(x, y, z)));
  });
}

RunStats VTIPropagator::run(Schedule sched,
                            const sparse::SparseTimeSeries& src,
                            sparse::SparseTimeSeries* rec,
                            const StepCallback& on_step) {
  if (rec != nullptr) rec->zero();
  p_.fill(real_t{0});
  q_.fill(real_t{0});
  return run_from(VTIKernel::kFirstStep, sched, src, rec, on_step);
}

RunStats VTIPropagator::run_from(int t_begin, Schedule sched,
                                 const sparse::SparseTimeSeries& src,
                                 sparse::SparseTimeSeries* rec,
                                 const StepCallback& on_step) {
  VTIKernel kernel(model_, p_, q_, ah_, an_, dt_);
  core::engine::ScheduleExecutor executor(kernel, opts_);
  return executor.run_from(t_begin, sched, src, rec, on_step);
}

resilience::Checkpoint VTIPropagator::capture(
    int step, std::uint64_t fingerprint,
    const sparse::SparseTimeSeries* rec) const {
  std::vector<const grid::Grid3<real_t>*> slices;
  slices.reserve(static_cast<std::size_t>(p_.slots() + q_.slots()));
  for (int s = 0; s < p_.slots(); ++s) slices.push_back(&p_.slot(s));
  for (int s = 0; s < q_.slots(); ++s) slices.push_back(&q_.slot(s));
  return core::engine::capture_state(slices, step, VTIKernel::kFirstStep,
                                     fingerprint, rec);
}

void VTIPropagator::restore(const resilience::Checkpoint& ck) {
  std::vector<grid::Grid3<real_t>*> slices;
  slices.reserve(static_cast<std::size_t>(p_.slots() + q_.slots()));
  for (int s = 0; s < p_.slots(); ++s) slices.push_back(&p_.slot(s));
  for (int s = 0; s < q_.slots(); ++s) slices.push_back(&q_.slot(s));
  core::engine::restore_state(slices, ck);
}

}  // namespace tempest::physics
