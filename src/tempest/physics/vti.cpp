#include "tempest/physics/vti.hpp"

#include <cmath>
#include <vector>

#include "tempest/core/compress.hpp"
#include "tempest/core/fused.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/sparse/operators.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/timer.hpp"

namespace tempest::physics {

namespace {

std::vector<real_t> folded_w2(int space_order) {
  const stencil::Coeffs c = stencil::central(2, space_order);
  const int r = stencil::radius_for_order(space_order);
  std::vector<real_t> w(static_cast<std::size_t>(r) + 1);
  for (int k = 0; k <= r; ++k) {
    w[static_cast<std::size_t>(k)] =
        static_cast<real_t>(c.weights[static_cast<std::size_t>(r + k)]);
  }
  return w;
}

/// VTI block update: horizontal Laplacian of p, vertical second derivative
/// of q, coupled through the Thomsen factors.
template <int R>
void update_block(real_t* __restrict pn, const real_t* __restrict pc,
                  const real_t* __restrict pp, real_t* __restrict qn,
                  const real_t* __restrict qc, const real_t* __restrict qp,
                  const real_t* __restrict m, const real_t* __restrict damp,
                  const real_t* __restrict ah, const real_t* __restrict an,
                  std::ptrdiff_t sx, std::ptrdiff_t sy, const grid::Box3& b,
                  const real_t* __restrict w, real_t inv_h2, real_t idt2,
                  real_t i2dt) {
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
#pragma omp simd
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t hp = real_t{2} * w[0] * pc[i];  // d2x + d2y of p
        real_t hz = w[0] * qc[i];              // d2z of q
#pragma GCC unroll 8
        for (int k = 1; k <= R; ++k) {
          hp += w[k] * (pc[i - k * sx] + pc[i + k * sx] + pc[i - k * sy] +
                        pc[i + k * sy]);
          hz += w[k] * (qc[i - k] + qc[i + k]);
        }
        hp *= inv_h2;
        hz *= inv_h2;
        const real_t denom = m[i] * idt2 + damp[i] * i2dt;
        pn[i] = (ah[i] * hp + an[i] * hz +
                 m[i] * idt2 * (real_t{2} * pc[i] - pp[i]) +
                 damp[i] * i2dt * pp[i]) /
                denom;
        qn[i] = (an[i] * hp + hz +
                 m[i] * idt2 * (real_t{2} * qc[i] - qp[i]) +
                 damp[i] * i2dt * qp[i]) /
                denom;
      }
    }
  }
}

void update_block_generic(real_t* pn, const real_t* pc, const real_t* pp,
                          real_t* qn, const real_t* qc, const real_t* qp,
                          const real_t* m, const real_t* damp,
                          const real_t* ah, const real_t* an,
                          std::ptrdiff_t sx, std::ptrdiff_t sy,
                          const grid::Box3& b, const real_t* w, int radius,
                          real_t inv_h2, real_t idt2, real_t i2dt) {
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx + y * sy;
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        const std::ptrdiff_t i = row + z;
        real_t hp = real_t{2} * w[0] * pc[i];
        real_t hz = w[0] * qc[i];
        for (int k = 1; k <= radius; ++k) {
          hp += w[k] * (pc[i - k * sx] + pc[i + k * sx] + pc[i - k * sy] +
                        pc[i + k * sy]);
          hz += w[k] * (qc[i - k] + qc[i + k]);
        }
        hp *= inv_h2;
        hz *= inv_h2;
        const real_t denom = m[i] * idt2 + damp[i] * i2dt;
        pn[i] = (ah[i] * hp + an[i] * hz +
                 m[i] * idt2 * (real_t{2} * pc[i] - pp[i]) +
                 damp[i] * i2dt * pp[i]) /
                denom;
        qn[i] = (an[i] * hp + hz +
                 m[i] * idt2 * (real_t{2} * qc[i] - qp[i]) +
                 damp[i] * i2dt * qp[i]) /
                denom;
      }
    }
  }
}

}  // namespace

VTIPropagator::VTIPropagator(const TTIModel& model, PropagatorOptions opts)
    : model_(model),
      opts_(opts),
      dt_(opts.dt > 0.0 ? opts.dt : model.critical_dt()),
      p_(3, model.geom.extents, model.geom.radius()),
      q_(3, model.geom.extents, model.geom.radius()),
      ah_(model.geom.extents, model.geom.radius(), real_t{1}),
      an_(model.geom.extents, model.geom.radius(), real_t{1}) {
  TEMPEST_REQUIRE(opts_.tiles.valid());
  TEMPEST_REQUIRE_MSG(grid::max_abs(model.theta) == 0.0 &&
                          grid::max_abs(model.phi) == 0.0,
                      "VTI requires an untilted model (theta == phi == 0); "
                      "use TTIPropagator for tilted media");
  ah_.for_each_interior([&](int x, int y, int z) {
    ah_(x, y, z) = static_cast<real_t>(1.0 + 2.0 * model_.epsilon(x, y, z));
    an_(x, y, z) =
        static_cast<real_t>(std::sqrt(1.0 + 2.0 * model_.delta(x, y, z)));
  });
}

RunStats VTIPropagator::run(Schedule sched,
                            const sparse::SparseTimeSeries& src,
                            sparse::SparseTimeSeries* rec) {
  const int nt = src.nt();
  TEMPEST_REQUIRE(nt >= 2);
  TEMPEST_REQUIRE_MSG(sched != Schedule::Diamond,
                      "diamond tiling is implemented for the acoustic "
                      "propagator only");
  if (rec != nullptr) {
    TEMPEST_REQUIRE(rec->nt() >= nt);
    rec->zero();
  }
  p_.fill(real_t{0});
  q_.fill(real_t{0});

  const auto& e = model_.geom.extents;
  const int radius = model_.geom.radius();
  const std::vector<real_t> w = folded_w2(model_.geom.space_order);
  const real_t inv_h2 =
      static_cast<real_t>(1.0 / (model_.geom.spacing * model_.geom.spacing));
  const real_t idt2 = static_cast<real_t>(1.0 / (dt_ * dt_));
  const real_t i2dt = static_cast<real_t>(1.0 / (2.0 * dt_));
  const real_t dt2 = static_cast<real_t>(dt_ * dt_);

  const std::ptrdiff_t sx = p_.at(0).stride_x();
  const std::ptrdiff_t sy = p_.at(0).stride_y();
  const auto& m_grid = model_.m;
  auto inj_scale = [dt2, &m_grid](int x, int y, int z) {
    return dt2 / m_grid(x, y, z);
  };

  auto stencil_block = [&](int t, const grid::Box3& box) {
    TEMPEST_TRACE_COUNT(CellsUpdated, box.volume());
    TEMPEST_TRACE_COUNT(
        HaloCellsTouched,
        2 * radius *
            (box.x.length() * box.y.length() + box.y.length() * box.z.length() +
             box.x.length() * box.z.length()));
    real_t* pn = p_.at(t + 1).origin();
    const real_t* pc = p_.at(t).origin();
    const real_t* pp = p_.at(t - 1).origin();
    real_t* qn = q_.at(t + 1).origin();
    const real_t* qc = q_.at(t).origin();
    const real_t* qp = q_.at(t - 1).origin();
    const real_t* m = model_.m.origin();
    const real_t* damp = model_.damp.origin();
    switch (radius) {
      case 1:
        update_block<1>(pn, pc, pp, qn, qc, qp, m, damp, ah_.origin(),
                        an_.origin(), sx, sy, box, w.data(), inv_h2, idt2,
                        i2dt);
        break;
      case 2:
        update_block<2>(pn, pc, pp, qn, qc, qp, m, damp, ah_.origin(),
                        an_.origin(), sx, sy, box, w.data(), inv_h2, idt2,
                        i2dt);
        break;
      case 4:
        update_block<4>(pn, pc, pp, qn, qc, qp, m, damp, ah_.origin(),
                        an_.origin(), sx, sy, box, w.data(), inv_h2, idt2,
                        i2dt);
        break;
      case 6:
        update_block<6>(pn, pc, pp, qn, qc, qp, m, damp, ah_.origin(),
                        an_.origin(), sx, sy, box, w.data(), inv_h2, idt2,
                        i2dt);
        break;
      default:
        update_block_generic(pn, pc, pp, qn, qc, qp, m, damp, ah_.origin(),
                             an_.origin(), sx, sy, box, w.data(), radius,
                             inv_h2, idt2, i2dt);
        break;
    }
  };

  RunStats stats;
  stats.point_updates =
      static_cast<long long>(nt - 1) * static_cast<long long>(e.size());

  if (sched == Schedule::Wavefront) {
    util::Timer pre;
    const core::SourceMasks masks =
        core::build_source_masks(e, src, opts_.interp);
    const core::DecomposedSource dcmp =
        core::decompose_sources(masks, src, opts_.interp);
    const core::CompressedSparse cs_src(masks.sm, masks.sid);
    core::DecomposedReceivers drec;
    core::CompressedSparse cs_rec;
    if (rec != nullptr && rec->npoints() > 0) {
      drec = core::decompose_receivers(e, *rec, opts_.interp);
      cs_rec = core::CompressedSparse(drec.rm, drec.rid);
    }
    stats.precompute_seconds = pre.seconds();

    util::Timer timer;
    core::run_wavefront(
        e, 1, nt, radius, opts_.tiles, [&](int t, const grid::Box3& box) {
          {
            TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
            stencil_block(t, box);
          }
          {
            TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
            core::fused_inject(p_.at(t + 1), cs_src, dcmp, t, box.x, box.y,
                               inj_scale);
            core::fused_inject(q_.at(t + 1), cs_src, dcmp, t, box.x, box.y,
                               inj_scale);
          }
          if (rec != nullptr && !cs_rec.empty()) {
            TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
            core::fused_gather(p_.at(t + 1), cs_rec, drec,
                               rec->step(t).data(), box.x, box.y);
          }
        });
    stats.seconds = timer.seconds();
    return stats;
  }

  const sparse::SupportCache src_cache(src, opts_.interp, e);
  sparse::SupportCache rec_cache;
  if (rec != nullptr && rec->npoints() > 0) {
    rec_cache = sparse::SupportCache(*rec, opts_.interp, e);
  }
  util::Timer timer;
  const bool blocked = sched == Schedule::SpaceBlocked;
  const auto blocks =
      blocked ? grid::decompose_xy(grid::Box3::whole(e), opts_.tiles.block_x,
                                   opts_.tiles.block_y)
              : std::vector<grid::Box3>{grid::Box3::whole(e)};
  for (int t = 1; t < nt; ++t) {
    {
      TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
      TEMPEST_TRACE_COUNT(BlocksExecuted, blocks.size());
#pragma omp parallel for schedule(dynamic) if (blocked)
      for (std::size_t b = 0; b < blocks.size(); ++b) {
        stencil_block(t, blocks[b]);
      }
    }
    {
      TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
      sparse::inject_cached(p_.at(t + 1), src, t, src_cache, inj_scale);
      sparse::inject_cached(q_.at(t + 1), src, t, src_cache, inj_scale);
    }
    if (rec != nullptr && rec->npoints() > 0) {
      TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
      sparse::interpolate_cached(p_.at(t + 1), *rec, t, rec_cache);
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace tempest::physics
