#include "tempest/cachesim/cache.hpp"

#include "tempest/util/error.hpp"

namespace tempest::cachesim {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheLevel::CacheLevel(CacheConfig cfg) : cfg_(cfg) {
  TEMPEST_REQUIRE(cfg.ways > 0 && cfg.line_bytes > 0);
  TEMPEST_REQUIRE(cfg.size_bytes % (static_cast<std::uint64_t>(cfg.ways) *
                                    cfg.line_bytes) ==
                  0);
  n_sets_ = cfg.size_bytes /
            (static_cast<std::uint64_t>(cfg.ways) * cfg.line_bytes);
  TEMPEST_REQUIRE_MSG(is_pow2(n_sets_), "set count must be a power of two");
  lines_.resize(n_sets_ * static_cast<std::uint64_t>(cfg.ways));
}

CacheLevel::Result CacheLevel::access(std::uint64_t addr, bool write) {
  const std::uint64_t line_addr = addr / cfg_.line_bytes;
  const std::uint64_t set = line_addr & (n_sets_ - 1);
  // Store the full line address as the tag: a few redundant bits per line
  // buys exact, reconstruction-free write-back addresses.
  const std::uint64_t tag = line_addr;
  Line* set_lines = &lines_[set * static_cast<std::uint64_t>(cfg_.ways)];
  ++clock_;

  Result r;
  Line* victim = &set_lines[0];
  for (int w = 0; w < cfg_.ways; ++w) {
    Line& line = set_lines[w];
    if (line.valid && line.tag == tag) {
      line.stamp = clock_;
      line.dirty = line.dirty || write;
      ++hits_;
      r.hit = true;
      return r;
    }
    if (!line.valid) {
      victim = &line;  // prefer an empty way
    } else if (victim->valid && line.stamp < victim->stamp) {
      victim = &line;
    }
  }

  ++misses_;
  if (victim->valid && victim->dirty) {
    ++writebacks_;
    r.writeback = true;
    r.writeback_addr = victim->tag * cfg_.line_bytes;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->stamp = clock_;
  victim->dirty = write;
  return r;
}

void CacheLevel::reset_counters() {
  hits_ = 0;
  misses_ = 0;
  writebacks_ = 0;
}

CacheHierarchy::CacheHierarchy(CacheConfig l1, CacheConfig l2, CacheConfig l3)
    : l1_(l1), l2_(l2), l3_(l3) {
  TEMPEST_REQUIRE(l1.line_bytes == l2.line_bytes &&
                  l2.line_bytes == l3.line_bytes);
}

void CacheHierarchy::access(std::uint64_t addr, unsigned bytes, bool write) {
  traffic_.l1_bytes += bytes;
  const int line = l1_.config().line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + (bytes ? bytes - 1 : 0)) / line;
  for (std::uint64_t la = first; la <= last; ++la) {
    line_access(la * line, write);
  }
}

void CacheHierarchy::line_access(std::uint64_t line_addr, bool write) {
  const int line = l1_.config().line_bytes;
  const CacheLevel::Result r1 = l1_.access(line_addr, write);
  if (r1.writeback) {
    traffic_.l2_bytes += line;
    const CacheLevel::Result wb2 = l2_.access(r1.writeback_addr, true);
    if (wb2.writeback) {
      traffic_.l3_bytes += line;
      const CacheLevel::Result wb3 = l3_.access(wb2.writeback_addr, true);
      if (wb3.writeback) traffic_.dram_bytes += line;
      if (!wb3.hit) traffic_.dram_bytes += line;  // allocate-on-writeback
    }
    if (!wb2.hit) traffic_.l3_bytes += line;
  }
  if (r1.hit) return;

  traffic_.l2_bytes += line;  // fill from L2
  const CacheLevel::Result r2 = l2_.access(line_addr, false);
  if (r2.writeback) {
    traffic_.l3_bytes += line;
    const CacheLevel::Result wb3 = l3_.access(r2.writeback_addr, true);
    if (wb3.writeback) traffic_.dram_bytes += line;
    if (!wb3.hit) traffic_.dram_bytes += line;
  }
  if (r2.hit) return;

  traffic_.l3_bytes += line;  // fill from L3
  const CacheLevel::Result r3 = l3_.access(line_addr, false);
  if (r3.writeback) traffic_.dram_bytes += line;
  if (!r3.hit) traffic_.dram_bytes += line;  // fill from DRAM
}

void CacheHierarchy::reset() {
  l1_.reset_counters();
  l2_.reset_counters();
  l3_.reset_counters();
  traffic_ = Traffic{};
}

}  // namespace tempest::cachesim
