#include "tempest/cachesim/instrumented_acoustic.hpp"

#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"

namespace tempest::cachesim {

namespace {

/// Virtual layout of one padded field, mirroring grid::Grid3<float>.
struct VirtualField {
  std::uint64_t base = 0;    ///< byte address of interior origin
  std::int64_t sx = 0;       ///< strides in elements
  std::int64_t sy = 0;

  [[nodiscard]] std::uint64_t at(int x, int y, int z) const {
    return base + 4ull * static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(x) * sx +
                             static_cast<std::int64_t>(y) * sy + z);
  }
};

}  // namespace

long long replay_acoustic_trace(const TraceConfig& cfg,
                                CacheHierarchy& hierarchy) {
  TEMPEST_REQUIRE(cfg.space_order >= 2 && cfg.space_order % 2 == 0);
  TEMPEST_REQUIRE(cfg.tiles.valid());
  const int r = stencil::radius_for_order(cfg.space_order);
  const auto& e = cfg.extents;

  // Lay the five fields (three u slots, m, damp) out back to back with a
  // page gap, exactly like separate 64-byte-aligned allocations.
  const std::int64_t sy = e.nz + 2 * r;
  const std::int64_t sx = sy * (e.ny + 2 * r);
  const std::uint64_t field_bytes =
      4ull * static_cast<std::uint64_t>(sx) *
      static_cast<std::uint64_t>(e.nx + 2 * r);
  const std::uint64_t stride_between = (field_bytes + 4096) & ~4095ull;

  auto make_field = [&](int index) {
    VirtualField f;
    f.base = 0x10000 + index * stride_between +
             4ull * static_cast<std::uint64_t>(r * sx + r * sy + r);
    f.sx = sx;
    f.sy = sy;
    return f;
  };
  const VirtualField u[3] = {make_field(0), make_field(1), make_field(2)};
  const VirtualField m = make_field(3);
  const VirtualField damp = make_field(4);

  long long updates = 0;
  auto block_trace = [&](int t, const grid::Box3& b) {
    const VirtualField& un = u[(t + 1) % 3];
    const VirtualField& uc = u[t % 3];
    const VirtualField& up = u[(t + 2) % 3];  // (t-1) mod 3
    for (int x = b.x.lo; x < b.x.hi; ++x) {
      for (int y = b.y.lo; y < b.y.hi; ++y) {
        for (int z = b.z.lo; z < b.z.hi; ++z) {
          // Laplacian gather on u(t): centre + 2r neighbours per dimension.
          hierarchy.load(uc.at(x, y, z));
          for (int k = 1; k <= r; ++k) {
            hierarchy.load(uc.at(x, y, z - k));
            hierarchy.load(uc.at(x, y, z + k));
            hierarchy.load(uc.at(x, y - k, z));
            hierarchy.load(uc.at(x, y + k, z));
            hierarchy.load(uc.at(x - k, y, z));
            hierarchy.load(uc.at(x + k, y, z));
          }
          hierarchy.load(up.at(x, y, z));
          hierarchy.load(m.at(x, y, z));
          hierarchy.load(damp.at(x, y, z));
          hierarchy.store(un.at(x, y, z));
          ++updates;
        }
      }
    }
  };

  // Serial replay: the simulated hierarchy models one core's caches, so the
  // trace must arrive in the deterministic single-thread order.
  if (cfg.wavefront) {
    core::run_wavefront(e, cfg.t_begin, cfg.t_end, r, cfg.tiles, block_trace,
                        /*parallel=*/false);
  } else {
    core::run_spaceblocked(e, cfg.t_begin, cfg.t_end, cfg.tiles, block_trace,
                           /*parallel=*/false);
  }
  return updates;
}

}  // namespace tempest::cachesim
