#pragma once

#include "tempest/cachesim/cache.hpp"
#include "tempest/core/wavefront.hpp"
#include "tempest/grid/extents.hpp"

namespace tempest::cachesim {

/// Address-trace generator for the acoustic propagator.
///
/// Replays the exact memory-access pattern of the acoustic update kernel —
/// same field layouts (halo padding, z-contiguous strides), same block
/// traversal, same schedule (space-blocked or wave-front) — into a simulated
/// cache hierarchy, without computing any field values (traffic does not
/// depend on data). This is the substitution for Intel Advisor's
/// hardware-counter traffic measurement used by the paper's Fig. 11; the
/// per-level byte counts it yields feed the cache-aware roofline.
struct TraceConfig {
  grid::Extents3 extents{64, 64, 64};
  int space_order = 4;
  int t_begin = 1;
  int t_end = 9;  ///< ops t in [t_begin, t_end), as in the propagators
  core::TileSpec tiles{};
  bool wavefront = false;  ///< false = space-blocked baseline
};

/// Replay the trace into `hierarchy` (counters are NOT reset first, so a
/// caller can aggregate several phases). Returns the number of grid-point
/// updates replayed.
long long replay_acoustic_trace(const TraceConfig& cfg,
                                CacheHierarchy& hierarchy);

}  // namespace tempest::cachesim
