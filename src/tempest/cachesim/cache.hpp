#pragma once

#include <cstdint>
#include <vector>

namespace tempest::cachesim {

/// Geometry of one cache level.
struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  int ways = 8;
  int line_bytes = 64;
};

/// One set-associative, write-back/write-allocate cache level with true LRU
/// replacement. Tracks dirty state so evictions can be propagated as
/// write-backs to the next level.
class CacheLevel {
 public:
  explicit CacheLevel(CacheConfig cfg);

  struct Result {
    bool hit = false;
    bool writeback = false;          ///< a dirty line was evicted
    std::uint64_t writeback_addr = 0;  ///< line address of the victim
  };

  /// Access the line containing `addr`. On a miss the line is filled
  /// (write-allocate) and the LRU victim, if dirty, is reported.
  Result access(std::uint64_t addr, bool write);

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t writebacks() const { return writebacks_; }

  void reset_counters();

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;  ///< LRU timestamp
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig cfg_;
  std::uint64_t n_sets_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
  std::vector<Line> lines_;  ///< n_sets * ways
};

/// Cumulative byte traffic observed at each boundary of the hierarchy, the
/// quantity the cache-aware roofline model divides flops by.
struct Traffic {
  double l1_bytes = 0.0;    ///< core <-> L1 (actual access bytes)
  double l2_bytes = 0.0;    ///< L1 <-> L2 (line fills + write-backs)
  double l3_bytes = 0.0;    ///< L2 <-> L3
  double dram_bytes = 0.0;  ///< L3 <-> memory
};

/// Three-level hierarchy: L1 misses access L2, L2 misses access L3, dirty
/// evictions propagate downward as writes.
class CacheHierarchy {
 public:
  CacheHierarchy(CacheConfig l1, CacheConfig l2, CacheConfig l3);

  /// Access `bytes` bytes starting at `addr` (split into lines).
  void access(std::uint64_t addr, unsigned bytes, bool write);

  /// Convenience for 4-byte single-precision loads/stores.
  void load(std::uint64_t addr) { access(addr, 4, false); }
  void store(std::uint64_t addr) { access(addr, 4, true); }

  [[nodiscard]] const Traffic& traffic() const { return traffic_; }
  [[nodiscard]] const CacheLevel& l1() const { return l1_; }
  [[nodiscard]] const CacheLevel& l2() const { return l2_; }
  [[nodiscard]] const CacheLevel& l3() const { return l3_; }

  void reset();

 private:
  void line_access(std::uint64_t line_addr, bool write);

  CacheLevel l1_;
  CacheLevel l2_;
  CacheLevel l3_;
  Traffic traffic_;
};

}  // namespace tempest::cachesim
