#pragma once

#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/sparse/interp.hpp"
#include "tempest/sparse/series.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/threads.hpp"

namespace tempest::sparse {

/// The *baseline* sparse operators of the paper's Listing 1: indirection
/// loops over off-the-grid point sets, run once per timestep after (or
/// before) the grid sweep. These are what space-blocked Devito code executes
/// and what the precompute pipeline in core/ replaces.

/// Scatter `src` amplitudes at timestep `t` into `u`:
///   u(p) += w_p * src[t][s] * scale(p)   for each support point p of s.
/// `scale` is the grid-point-local injection factor (e.g. dt^2/m(x,y,z) for
/// the acoustic equation); it must depend only on the target grid point so
/// the decomposed/fused variants remain exactly equivalent.
template <typename ScaleFn>
void inject(grid::Grid3<real_t>& u, const SparseTimeSeries& src, int t,
            InterpKind kind, ScaleFn&& scale) {
  long long updates = 0;
  for (int s = 0; s < src.npoints(); ++s) {
    const real_t amp = src.at(t, s);
    for (const SupportPoint& p : support(src.coord(s), kind, u.extents())) {
      u(p.x, p.y, p.z) += static_cast<real_t>(p.w) * amp *
                          static_cast<real_t>(scale(p.x, p.y, p.z));
      ++updates;
    }
  }
  TEMPEST_TRACE_COUNT(SourcesInjected, updates);
}

/// Gather field values at timestep `t` into the receiver series:
///   rec[t][r] = sum_p w_p * u(p).
void interpolate(const grid::Grid3<real_t>& u, SparseTimeSeries& rec, int t,
                 InterpKind kind);

/// Precomputed support cache: the support of each point in a series, used
/// where per-timestep recomputation of weights would dominate (the naive
/// baselines reuse it so baseline-vs-fused comparisons measure scheduling,
/// not coordinate arithmetic).
struct SupportCache {
  std::vector<std::vector<SupportPoint>> per_point;

  SupportCache() = default;
  SupportCache(const SparseTimeSeries& series, InterpKind kind,
               const grid::Extents3& extents);
};

/// inject() through a prebuilt cache.
template <typename ScaleFn>
void inject_cached(grid::Grid3<real_t>& u, const SparseTimeSeries& src, int t,
                   const SupportCache& cache, ScaleFn&& scale) {
  long long updates = 0;
  for (int s = 0; s < src.npoints(); ++s) {
    const real_t amp = src.at(t, s);
    for (const SupportPoint& p :
         cache.per_point[static_cast<std::size_t>(s)]) {
      u(p.x, p.y, p.z) += static_cast<real_t>(p.w) * amp *
                          static_cast<real_t>(scale(p.x, p.y, p.z));
      ++updates;
    }
  }
  TEMPEST_TRACE_COUNT(SourcesInjected, updates);
}

/// interpolate() through a prebuilt cache.
void interpolate_cached(const grid::Grid3<real_t>& u, SparseTimeSeries& rec,
                        int t, const SupportCache& cache);

/// Conflict-free color sets over a series' injection sites. Two sites
/// conflict when their interpolation supports share a grid point — the
/// scatter race a site-parallel inject would hit (coincident sources, or
/// neighbours closer than the support width). The partition is *layered*:
/// a site's color is 1 + the highest color among earlier conflicting
/// sites. That gives two guarantees at once:
///   * no two same-color sites share a grid point (safe to scatter a layer
///     in parallel with no atomics), and
///   * for every grid point, the sites touching it carry strictly
///     ascending colors in site order — executing layers in ascending
///     order reproduces the serial per-point accumulation order exactly,
///     so parallel injection is bitwise equal to inject_cached, not merely
///     race-free. (A smallest-available greedy coloring would use fewer
///     colors but break this: float addition does not commute bitwise.)
struct ColorSets {
  std::vector<std::vector<int>> layers;  ///< site indices, by color

  ColorSets() = default;
  ColorSets(const SupportCache& cache, const grid::Extents3& extents);

  [[nodiscard]] int colors() const { return static_cast<int>(layers.size()); }
};

/// inject_cached() partitioned by color: layers run serially in ascending
/// color order, sites within a layer scatter concurrently under `threads`
/// workers. Bitwise equal to inject_cached at any thread count.
template <typename ScaleFn>
void inject_colored(grid::Grid3<real_t>& u, const SparseTimeSeries& src, int t,
                    const SupportCache& cache, const ColorSets& colors,
                    int threads, ScaleFn&& scale) {
  for (const std::vector<int>& layer : colors.layers) {
    util::parallel_for(
        static_cast<int>(layer.size()), threads, [&](int i) {
          const int s = layer[static_cast<std::size_t>(i)];
          const real_t amp = src.at(t, s);
          const auto& pts = cache.per_point[static_cast<std::size_t>(s)];
          for (const SupportPoint& p : pts) {
            u(p.x, p.y, p.z) += static_cast<real_t>(p.w) * amp *
                                static_cast<real_t>(scale(p.x, p.y, p.z));
          }
          TEMPEST_TRACE_COUNT(SourcesInjected, pts.size());
        });
  }
}

/// interpolate_cached() with the receiver loop parallelized. Receivers are
/// embarrassingly parallel (each writes only its own trace sample) and the
/// per-receiver accumulation order is unchanged, so this too is bitwise
/// equal to the serial operator at any thread count.
void interpolate_cached(const grid::Grid3<real_t>& u, SparseTimeSeries& rec,
                        int t, const SupportCache& cache, int threads);

}  // namespace tempest::sparse
