#pragma once

#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/sparse/interp.hpp"
#include "tempest/sparse/series.hpp"
#include "tempest/trace/trace.hpp"

namespace tempest::sparse {

/// The *baseline* sparse operators of the paper's Listing 1: indirection
/// loops over off-the-grid point sets, run once per timestep after (or
/// before) the grid sweep. These are what space-blocked Devito code executes
/// and what the precompute pipeline in core/ replaces.

/// Scatter `src` amplitudes at timestep `t` into `u`:
///   u(p) += w_p * src[t][s] * scale(p)   for each support point p of s.
/// `scale` is the grid-point-local injection factor (e.g. dt^2/m(x,y,z) for
/// the acoustic equation); it must depend only on the target grid point so
/// the decomposed/fused variants remain exactly equivalent.
template <typename ScaleFn>
void inject(grid::Grid3<real_t>& u, const SparseTimeSeries& src, int t,
            InterpKind kind, ScaleFn&& scale) {
  long long updates = 0;
  for (int s = 0; s < src.npoints(); ++s) {
    const real_t amp = src.at(t, s);
    for (const SupportPoint& p : support(src.coord(s), kind, u.extents())) {
      u(p.x, p.y, p.z) += static_cast<real_t>(p.w) * amp *
                          static_cast<real_t>(scale(p.x, p.y, p.z));
      ++updates;
    }
  }
  TEMPEST_TRACE_COUNT(SourcesInjected, updates);
}

/// Gather field values at timestep `t` into the receiver series:
///   rec[t][r] = sum_p w_p * u(p).
void interpolate(const grid::Grid3<real_t>& u, SparseTimeSeries& rec, int t,
                 InterpKind kind);

/// Precomputed support cache: the support of each point in a series, used
/// where per-timestep recomputation of weights would dominate (the naive
/// baselines reuse it so baseline-vs-fused comparisons measure scheduling,
/// not coordinate arithmetic).
struct SupportCache {
  std::vector<std::vector<SupportPoint>> per_point;

  SupportCache() = default;
  SupportCache(const SparseTimeSeries& series, InterpKind kind,
               const grid::Extents3& extents);
};

/// inject() through a prebuilt cache.
template <typename ScaleFn>
void inject_cached(grid::Grid3<real_t>& u, const SparseTimeSeries& src, int t,
                   const SupportCache& cache, ScaleFn&& scale) {
  long long updates = 0;
  for (int s = 0; s < src.npoints(); ++s) {
    const real_t amp = src.at(t, s);
    for (const SupportPoint& p :
         cache.per_point[static_cast<std::size_t>(s)]) {
      u(p.x, p.y, p.z) += static_cast<real_t>(p.w) * amp *
                          static_cast<real_t>(scale(p.x, p.y, p.z));
      ++updates;
    }
  }
  TEMPEST_TRACE_COUNT(SourcesInjected, updates);
}

/// interpolate() through a prebuilt cache.
void interpolate_cached(const grid::Grid3<real_t>& u, SparseTimeSeries& rec,
                        int t, const SupportCache& cache);

}  // namespace tempest::sparse
