#pragma once

#include <vector>

#include "tempest/config.hpp"

namespace tempest::sparse {

/// Ricker (Mexican-hat) source wavelet, the standard seismic source time
/// signature: r(t) = (1 - 2 a) e^{-a}, a = (pi f0 (t - t0))^2. Peak
/// frequency f0 in kHz when t is in ms (the unit convention used by the
/// physics models). Default delay t0 = 1.5/f0 so the onset is ~zero — and
/// notably *not* zero at the very first timesteps once shifted, matching the
/// paper's assumption for the single-timestep probe.
[[nodiscard]] std::vector<real_t> ricker(int nt, double dt, double f0,
                                         double t0 = -1.0);

/// First derivative of a Gaussian; an alternative wavelet used in tests to
/// show the pipeline is signature-agnostic.
[[nodiscard]] std::vector<real_t> gaussian_derivative(int nt, double dt,
                                                      double f0,
                                                      double t0 = -1.0);

}  // namespace tempest::sparse
