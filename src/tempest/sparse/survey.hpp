#pragma once

#include <cstdint>

#include "tempest/grid/extents.hpp"
#include "tempest/sparse/points.hpp"

namespace tempest::sparse {

/// Acquisition-geometry builders for the paper's experimental setups
/// (Section IV.B and IV.E). All coordinates are in grid units and are
/// deliberately placed *off* the grid (fractional offsets) unless stated.

/// One source at the centre of the domain, offset by an irrational-ish
/// fraction so it is genuinely off-the-grid (the paper's standard setup:
/// "one time-dependent, spatially localized seismic source").
[[nodiscard]] CoordList single_center_source(const grid::Extents3& e,
                                             double depth_fraction = 0.1);

/// `n` sources scattered at random off-the-grid positions on one x–y plane
/// slice of the 3-D grid (paper Fig. 10, "sparsely located" corner case).
[[nodiscard]] CoordList plane_scatter(const grid::Extents3& e, int n,
                                      std::uint64_t seed,
                                      double depth_fraction = 0.1,
                                      int margin = 8);

/// `n` sources densely and uniformly distributed over the whole 3-D volume
/// (paper Fig. 10, "densely located" corner case that defeats sparsity).
[[nodiscard]] CoordList dense_volume(const grid::Extents3& e, int n,
                                     std::uint64_t seed, int margin = 8);

/// A horizontal line of `n` receivers near the surface spanning the x range
/// (the classic streamer/shot-gather geometry used by the examples).
[[nodiscard]] CoordList receiver_line(const grid::Extents3& e, int n,
                                      double depth_fraction = 0.05,
                                      int margin = 8);

/// A coarse x–y carpet of n_x*n_y receivers near the surface.
[[nodiscard]] CoordList receiver_carpet(const grid::Extents3& e, int n_x,
                                        int n_y, double depth_fraction = 0.05,
                                        int margin = 8);

}  // namespace tempest::sparse
