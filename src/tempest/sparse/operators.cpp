#include "tempest/sparse/operators.hpp"

namespace tempest::sparse {

void interpolate(const grid::Grid3<real_t>& u, SparseTimeSeries& rec, int t,
                 InterpKind kind) {
  long long applications = 0;
  for (int r = 0; r < rec.npoints(); ++r) {
    double acc = 0.0;
    for (const SupportPoint& p : support(rec.coord(r), kind, u.extents())) {
      acc += p.w * static_cast<double>(u(p.x, p.y, p.z));
      ++applications;
    }
    rec.at(t, r) = static_cast<real_t>(acc);
  }
  TEMPEST_TRACE_COUNT(ReceiversInterpolated, applications);
}

SupportCache::SupportCache(const SparseTimeSeries& series, InterpKind kind,
                           const grid::Extents3& extents) {
  per_point.reserve(static_cast<std::size_t>(series.npoints()));
  for (int p = 0; p < series.npoints(); ++p) {
    per_point.push_back(support(series.coord(p), kind, extents));
  }
}

void interpolate_cached(const grid::Grid3<real_t>& u, SparseTimeSeries& rec,
                        int t, const SupportCache& cache) {
  long long applications = 0;
  for (int r = 0; r < rec.npoints(); ++r) {
    double acc = 0.0;
    for (const SupportPoint& p :
         cache.per_point[static_cast<std::size_t>(r)]) {
      acc += p.w * static_cast<double>(u(p.x, p.y, p.z));
      ++applications;
    }
    rec.at(t, r) = static_cast<real_t>(acc);
  }
  TEMPEST_TRACE_COUNT(ReceiversInterpolated, applications);
}

}  // namespace tempest::sparse
