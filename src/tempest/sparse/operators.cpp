#include "tempest/sparse/operators.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

namespace tempest::sparse {

void interpolate(const grid::Grid3<real_t>& u, SparseTimeSeries& rec, int t,
                 InterpKind kind) {
  long long applications = 0;
  for (int r = 0; r < rec.npoints(); ++r) {
    double acc = 0.0;
    for (const SupportPoint& p : support(rec.coord(r), kind, u.extents())) {
      acc += p.w * static_cast<double>(u(p.x, p.y, p.z));
      ++applications;
    }
    rec.at(t, r) = static_cast<real_t>(acc);
  }
  TEMPEST_TRACE_COUNT(ReceiversInterpolated, applications);
}

SupportCache::SupportCache(const SparseTimeSeries& series, InterpKind kind,
                           const grid::Extents3& extents) {
  per_point.reserve(static_cast<std::size_t>(series.npoints()));
  for (int p = 0; p < series.npoints(); ++p) {
    per_point.push_back(support(series.coord(p), kind, extents));
  }
}

void interpolate_cached(const grid::Grid3<real_t>& u, SparseTimeSeries& rec,
                        int t, const SupportCache& cache) {
  long long applications = 0;
  for (int r = 0; r < rec.npoints(); ++r) {
    double acc = 0.0;
    for (const SupportPoint& p :
         cache.per_point[static_cast<std::size_t>(r)]) {
      acc += p.w * static_cast<double>(u(p.x, p.y, p.z));
      ++applications;
    }
    rec.at(t, r) = static_cast<real_t>(acc);
  }
  TEMPEST_TRACE_COUNT(ReceiversInterpolated, applications);
}

ColorSets::ColorSets(const SupportCache& cache, const grid::Extents3& extents) {
  // Layered coloring in site order: color(s) = 1 + max color among earlier
  // sites whose support shares a grid point with s (0 when unconflicted).
  // point_color maps a grid point (linear interior index) to 1 + the color
  // of the last site that touched it — sparse, so a hash map rather than a
  // dense volume.
  std::unordered_map<long long, int> point_color;
  point_color.reserve(cache.per_point.size() * 8);
  const long long ny = extents.ny;
  const long long nz = extents.nz;
  for (int s = 0; s < static_cast<int>(cache.per_point.size()); ++s) {
    int color = 0;
    for (const SupportPoint& p :
         cache.per_point[static_cast<std::size_t>(s)]) {
      const long long key = (static_cast<long long>(p.x) * ny + p.y) * nz + p.z;
      const auto it = point_color.find(key);
      if (it != point_color.end()) color = std::max(color, it->second);
    }
    for (const SupportPoint& p :
         cache.per_point[static_cast<std::size_t>(s)]) {
      const long long key = (static_cast<long long>(p.x) * ny + p.y) * nz + p.z;
      point_color[key] = color + 1;
    }
    if (color >= static_cast<int>(layers.size())) {
      layers.resize(static_cast<std::size_t>(color) + 1);
    }
    layers[static_cast<std::size_t>(color)].push_back(s);
  }
}

void interpolate_cached(const grid::Grid3<real_t>& u, SparseTimeSeries& rec,
                        int t, const SupportCache& cache, int threads) {
  const int n = rec.npoints();
  std::atomic<long long> applications{0};
  util::parallel_for(n, threads, [&](int r) {
    double acc = 0.0;
    long long local = 0;
    for (const SupportPoint& p :
         cache.per_point[static_cast<std::size_t>(r)]) {
      acc += p.w * static_cast<double>(u(p.x, p.y, p.z));
      ++local;
    }
    rec.at(t, r) = static_cast<real_t>(acc);
    applications.fetch_add(local, std::memory_order_relaxed);
  });
  TEMPEST_TRACE_COUNT(ReceiversInterpolated,
                      applications.load(std::memory_order_relaxed));
}

}  // namespace tempest::sparse
