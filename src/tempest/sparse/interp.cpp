#include "tempest/sparse/interp.hpp"

#include <cmath>
#include <numbers>

#include "tempest/util/error.hpp"

namespace tempest::sparse {

namespace {

/// 1-D weights of a scheme at fractional position `frac` in [0,1) relative
/// to base index `base`; returns (index, weight) pairs.
struct Weight1D {
  int index;
  double w;
};

void trilinear_1d(int base, double frac, std::vector<Weight1D>& out) {
  out.push_back({base, 1.0 - frac});
  if (frac != 0.0) out.push_back({base + 1, frac});
}

void windowed_sinc_1d(int base, double frac, std::vector<Weight1D>& out) {
  // Samples at base-1 .. base+2 (4 per dim). Hann-windowed sinc of radius 2,
  // renormalized to partition of unity so constants interpolate exactly.
  if (frac == 0.0) {  // on-grid: exact
    out.push_back({base, 1.0});
    return;
  }
  constexpr int kRadius = 2;
  double weights[2 * kRadius];
  double sum = 0.0;
  for (int i = 0; i < 2 * kRadius; ++i) {
    const double d = frac - static_cast<double>(i - kRadius + 1);
    const double pd = std::numbers::pi * d;
    const double sinc = std::sin(pd) / pd;
    const double hann =
        0.5 * (1.0 + std::cos(std::numbers::pi * d / (kRadius + 0.5)));
    weights[i] = sinc * hann;
    sum += weights[i];
  }
  for (int i = 0; i < 2 * kRadius; ++i) {
    out.push_back({base + i - kRadius + 1, weights[i] / sum});
  }
}

}  // namespace

int support_width(InterpKind kind) {
  return kind == InterpKind::Trilinear ? 2 : 4;
}

std::vector<SupportPoint> support(const Coord3& c, InterpKind kind,
                                  const grid::Extents3& extents) {
  const double coords[3] = {c.x, c.y, c.z};
  std::vector<Weight1D> per_dim[3];
  for (int d = 0; d < 3; ++d) {
    const double fl = std::floor(coords[d]);
    const int base = static_cast<int>(fl);
    const double frac = coords[d] - fl;
    if (kind == InterpKind::Trilinear) {
      trilinear_1d(base, frac, per_dim[d]);
    } else {
      windowed_sinc_1d(base, frac, per_dim[d]);
    }
  }

  std::vector<SupportPoint> out;
  out.reserve(per_dim[0].size() * per_dim[1].size() * per_dim[2].size());
  for (const auto& wx : per_dim[0]) {
    if (wx.index < 0 || wx.index >= extents.nx) continue;
    for (const auto& wy : per_dim[1]) {
      if (wy.index < 0 || wy.index >= extents.ny) continue;
      for (const auto& wz : per_dim[2]) {
        if (wz.index < 0 || wz.index >= extents.nz) continue;
        const double w = wx.w * wy.w * wz.w;
        if (w == 0.0) continue;
        out.push_back({wx.index, wy.index, wz.index, w});
      }
    }
  }
  return out;
}

}  // namespace tempest::sparse
