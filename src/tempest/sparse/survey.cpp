#include "tempest/sparse/survey.hpp"

#include <cmath>

#include "tempest/util/error.hpp"
#include "tempest/util/rng.hpp"

namespace tempest::sparse {

namespace {

double clamp_margin(double v, int extent, int margin) {
  const double lo = static_cast<double>(margin);
  const double hi = static_cast<double>(extent - 1 - margin);
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

CoordList single_center_source(const grid::Extents3& e,
                               double depth_fraction) {
  TEMPEST_REQUIRE(depth_fraction >= 0.0 && depth_fraction <= 1.0);
  // 0.37 / 0.61 fractional parts: off-the-grid in every dimension.
  return {Coord3{0.5 * (e.nx - 1) + 0.37, 0.5 * (e.ny - 1) + 0.61,
                 depth_fraction * (e.nz - 1) + 0.43}};
}

CoordList plane_scatter(const grid::Extents3& e, int n, std::uint64_t seed,
                        double depth_fraction, int margin) {
  TEMPEST_REQUIRE(n > 0 && margin >= 0);
  TEMPEST_REQUIRE(e.nx > 2 * margin && e.ny > 2 * margin);
  util::SplitMix64 rng(seed);
  const double z = clamp_margin(depth_fraction * (e.nz - 1) + 0.43, e.nz,
                                margin);
  CoordList out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(Coord3{
        rng.uniform(margin, e.nx - 1 - margin),
        rng.uniform(margin, e.ny - 1 - margin),
        z,
    });
  }
  return out;
}

CoordList dense_volume(const grid::Extents3& e, int n, std::uint64_t seed,
                       int margin) {
  TEMPEST_REQUIRE(n > 0 && margin >= 0);
  TEMPEST_REQUIRE(e.nx > 2 * margin && e.ny > 2 * margin &&
                  e.nz > 2 * margin);
  // Uniform lattice with jitter: "densely and uniformly located all over the
  // 3D grid". A jittered lattice covers the volume evenly at any n while
  // keeping every position off-the-grid.
  util::SplitMix64 rng(seed);
  const int per_dim =
      std::max(1, static_cast<int>(std::ceil(std::cbrt(static_cast<double>(n)))));
  CoordList out;
  out.reserve(static_cast<std::size_t>(n));
  for (int ix = 0; ix < per_dim && static_cast<int>(out.size()) < n; ++ix) {
    for (int iy = 0; iy < per_dim && static_cast<int>(out.size()) < n; ++iy) {
      for (int iz = 0; iz < per_dim && static_cast<int>(out.size()) < n;
           ++iz) {
        auto place = [&](int i, int extent) {
          const double cell =
              static_cast<double>(extent - 2 * margin) / per_dim;
          return clamp_margin(
              margin + (i + 0.25 + 0.5 * rng.uniform()) * cell, extent,
              margin);
        };
        out.push_back(
            Coord3{place(ix, e.nx), place(iy, e.ny), place(iz, e.nz)});
      }
    }
  }
  return out;
}

CoordList receiver_line(const grid::Extents3& e, int n, double depth_fraction,
                        int margin) {
  TEMPEST_REQUIRE(n > 0);
  CoordList out;
  out.reserve(static_cast<std::size_t>(n));
  const double z =
      clamp_margin(depth_fraction * (e.nz - 1) + 0.29, e.nz, margin);
  const double y = 0.5 * (e.ny - 1) + 0.17;
  const double span = static_cast<double>(e.nx - 1 - 2 * margin);
  for (int i = 0; i < n; ++i) {
    const double frac = (n == 1) ? 0.5 : static_cast<double>(i) / (n - 1);
    out.push_back(Coord3{margin + frac * span + 0.11, y, z});
  }
  return out;
}

CoordList receiver_carpet(const grid::Extents3& e, int n_x, int n_y,
                          double depth_fraction, int margin) {
  TEMPEST_REQUIRE(n_x > 0 && n_y > 0);
  CoordList out;
  out.reserve(static_cast<std::size_t>(n_x) * static_cast<std::size_t>(n_y));
  const double z =
      clamp_margin(depth_fraction * (e.nz - 1) + 0.29, e.nz, margin);
  const double span_x = static_cast<double>(e.nx - 1 - 2 * margin);
  const double span_y = static_cast<double>(e.ny - 1 - 2 * margin);
  for (int i = 0; i < n_x; ++i) {
    const double fx = (n_x == 1) ? 0.5 : static_cast<double>(i) / (n_x - 1);
    for (int j = 0; j < n_y; ++j) {
      const double fy = (n_y == 1) ? 0.5 : static_cast<double>(j) / (n_y - 1);
      out.push_back(Coord3{margin + fx * span_x + 0.11,
                           margin + fy * span_y + 0.23, z});
    }
  }
  return out;
}

}  // namespace tempest::sparse
