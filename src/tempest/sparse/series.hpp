#pragma once

#include <span>
#include <vector>

#include "tempest/config.hpp"
#include "tempest/sparse/points.hpp"
#include "tempest/util/align.hpp"
#include "tempest/util/error.hpp"

namespace tempest::sparse {

/// A set of off-the-grid points with one time series per point: sources
/// (series = wavelet amplitudes to inject) and receivers (series = recorded
/// measurements) share this representation, exactly like Devito's
/// SparseTimeFunction. Layout is time-major: data[t * npoints + p].
class SparseTimeSeries {
 public:
  SparseTimeSeries() = default;

  SparseTimeSeries(CoordList coords, int nt)
      : coords_(std::move(coords)),
        nt_(nt),
        data_(static_cast<std::size_t>(nt) * coords_.size(), real_t{0}) {
    TEMPEST_REQUIRE(nt > 0);
  }

  [[nodiscard]] int npoints() const { return static_cast<int>(coords_.size()); }
  [[nodiscard]] int nt() const { return nt_; }
  [[nodiscard]] const CoordList& coords() const { return coords_; }
  [[nodiscard]] const Coord3& coord(int p) const {
    return coords_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] real_t& at(int t, int p) {
    TEMPEST_REQUIRE(t >= 0 && t < nt_ && p >= 0 && p < npoints());
    return data_[static_cast<std::size_t>(t) *
                     static_cast<std::size_t>(npoints()) +
                 static_cast<std::size_t>(p)];
  }
  [[nodiscard]] real_t at(int t, int p) const {
    return const_cast<SparseTimeSeries*>(this)->at(t, p);
  }

  /// All point values at timestep t.
  [[nodiscard]] std::span<real_t> step(int t) {
    TEMPEST_REQUIRE(t >= 0 && t < nt_);
    return {data_.data() + static_cast<std::size_t>(t) *
                               static_cast<std::size_t>(npoints()),
            static_cast<std::size_t>(npoints())};
  }
  [[nodiscard]] std::span<const real_t> step(int t) const {
    return const_cast<SparseTimeSeries*>(this)->step(t);
  }

  /// Assign the same time signature to every point (the benchmark setups
  /// drive all sources with one wavelet).
  void broadcast_signature(std::span<const real_t> wavelet) {
    TEMPEST_REQUIRE(static_cast<int>(wavelet.size()) >= nt_);
    for (int t = 0; t < nt_; ++t)
      for (int p = 0; p < npoints(); ++p) at(t, p) = wavelet[static_cast<std::size_t>(t)];
  }

  void zero() { std::fill(data_.begin(), data_.end(), real_t{0}); }

 private:
  CoordList coords_;
  int nt_ = 0;
  util::aligned_vector<real_t> data_;
};

}  // namespace tempest::sparse
