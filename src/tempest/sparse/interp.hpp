#pragma once

#include <vector>

#include "tempest/grid/extents.hpp"
#include "tempest/sparse/points.hpp"

namespace tempest::sparse {

/// One grid point of an off-the-grid position's interpolation support,
/// together with its weight. Scatter (injection) adds `w * amplitude` to the
/// point; gather (measurement) accumulates `w * field(point)`.
struct SupportPoint {
  int x = 0;
  int y = 0;
  int z = 0;
  double w = 0.0;
};

/// Interpolation scheme for mapping between off-the-grid coordinates and
/// grid points. The precompute pipeline of core/ is deliberately agnostic to
/// the scheme (the paper: "Our scheme is independent of the injection and
/// interpolation type"); we provide the standard trilinear scheme plus a
/// wider Hann-windowed-sinc scheme to exercise that independence in tests.
enum class InterpKind {
  Trilinear,     ///< 8-point linear weights (paper Fig. 3)
  WindowedSinc,  ///< 4 points/dim Hann-windowed sinc, normalized
};

/// Number of support points per dimension for a scheme.
[[nodiscard]] int support_width(InterpKind kind);

/// Compute the interpolation support of coordinate `c`. Points are clipped
/// against `extents`: a support point outside the interior is dropped (the
/// physical setups always place operators well inside the absorbing layer,
/// but geometry sweeps in the benches may graze edges). Zero weights are
/// dropped, so a source exactly on a grid point yields a single support
/// point — this mirrors the paper's probe step, which only marks points the
/// injection actually touches.
[[nodiscard]] std::vector<SupportPoint> support(const Coord3& c,
                                                InterpKind kind,
                                                const grid::Extents3& extents);

}  // namespace tempest::sparse
