#include "tempest/sparse/wavelet.hpp"

#include <cmath>
#include <numbers>

#include "tempest/util/error.hpp"

namespace tempest::sparse {

std::vector<real_t> ricker(int nt, double dt, double f0, double t0) {
  TEMPEST_REQUIRE(nt > 0 && dt > 0.0 && f0 > 0.0);
  if (t0 < 0.0) t0 = 1.5 / f0;
  std::vector<real_t> w(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    const double arg = std::numbers::pi * f0 * (t * dt - t0);
    const double a = arg * arg;
    w[static_cast<std::size_t>(t)] =
        static_cast<real_t>((1.0 - 2.0 * a) * std::exp(-a));
  }
  return w;
}

std::vector<real_t> gaussian_derivative(int nt, double dt, double f0,
                                        double t0) {
  TEMPEST_REQUIRE(nt > 0 && dt > 0.0 && f0 > 0.0);
  if (t0 < 0.0) t0 = 1.5 / f0;
  std::vector<real_t> w(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    const double tau = t * dt - t0;
    const double a = std::numbers::pi * f0 * tau;
    w[static_cast<std::size_t>(t)] =
        static_cast<real_t>(-2.0 * a * std::exp(-a * a));
  }
  return w;
}

}  // namespace tempest::sparse
