#pragma once

#include <ostream>
#include <vector>

namespace tempest::sparse {

/// Continuous position in *grid units*: (1.5, 2.0, 7.25) sits halfway
/// between grid points 1 and 2 in x. Off-the-grid operators (sources,
/// receivers) live at such coordinates; conversion from physical metres is
/// a division by the grid spacing done by the caller (see physics::Model).
struct Coord3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend bool operator==(const Coord3&, const Coord3&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Coord3& c) {
  return os << '(' << c.x << ',' << c.y << ',' << c.z << ')';
}

using CoordList = std::vector<Coord3>;

}  // namespace tempest::sparse
