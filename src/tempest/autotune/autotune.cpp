#include "tempest/autotune/autotune.hpp"

#include <algorithm>
#include <limits>

#include "tempest/util/error.hpp"

namespace tempest::autotune {

std::vector<core::TileSpec> candidates(const grid::Extents3& extents,
                                       const CandidateSpace& space) {
  TEMPEST_REQUIRE(!space.tile_sizes.empty() && !space.block_sizes.empty() &&
                  !space.tile_t.empty());
  std::vector<core::TileSpec> out;
  auto admit = [&](const core::TileSpec& s) {
    if (!s.valid()) return;
    if (s.block_x > s.tile_x || s.block_y > s.tile_y) return;
    // A tile larger than twice the domain behaves identically to one
    // exactly twice the domain: skip all but the first oversize shape.
    if (s.tile_x > 2 * extents.nx || s.tile_y > 2 * extents.ny) return;
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  };

  for (int tt : space.tile_t) {
    for (int tx : space.tile_sizes) {
      for (int ty : space.tile_sizes) {
        if (space.symmetric && ty != tx) continue;
        for (int bx : space.block_sizes) {
          for (int by : space.block_sizes) {
            if (space.symmetric && by != bx) continue;
            admit(core::TileSpec{tt, tx, ty, bx, by});
          }
        }
      }
    }
  }
  TEMPEST_REQUIRE_MSG(!out.empty(), "candidate space is empty");
  return out;
}

SweepResult sweep(const std::vector<core::TileSpec>& specs,
                  const std::function<double(const core::TileSpec&)>& measure,
                  int repeats) {
  TEMPEST_REQUIRE(!specs.empty() && repeats >= 1);
  SweepResult result;
  result.best.seconds = std::numeric_limits<double>::infinity();
  for (const core::TileSpec& spec : specs) {
    double best_time = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < repeats; ++rep) {
      best_time = std::min(best_time, measure(spec));
    }
    const Candidate cand{spec, best_time};
    result.evaluated.push_back(cand);
    if (cand.seconds < result.best.seconds) result.best = cand;
  }
  return result;
}

}  // namespace tempest::autotune
