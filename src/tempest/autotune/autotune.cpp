#include "tempest/autotune/autotune.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>

#include "tempest/trace/trace.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/log.hpp"
#include "tempest/util/threads.hpp"

namespace tempest::autotune {

std::vector<core::TileSpec> candidates(const grid::Extents3& extents,
                                       const CandidateSpace& space) {
  TEMPEST_REQUIRE(!space.tile_sizes.empty() && !space.block_sizes.empty() &&
                  !space.tile_t.empty());
  std::vector<core::TileSpec> out;
  auto admit = [&](const core::TileSpec& s) {
    if (!s.valid()) return;
    if (s.block_x > s.tile_x || s.block_y > s.tile_y) return;
    // A tile larger than twice the domain behaves identically to one
    // exactly twice the domain: skip all but the first oversize shape.
    if (s.tile_x > 2 * extents.nx || s.tile_y > 2 * extents.ny) return;
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  };

  for (int tt : space.tile_t) {
    for (int tx : space.tile_sizes) {
      for (int ty : space.tile_sizes) {
        if (space.symmetric && ty != tx) continue;
        for (int bx : space.block_sizes) {
          for (int by : space.block_sizes) {
            if (space.symmetric && by != bx) continue;
            admit(core::TileSpec{tt, tx, ty, bx, by});
          }
        }
      }
    }
  }
  TEMPEST_REQUIRE_MSG(!out.empty(), "candidate space is empty");
  return out;
}

SweepResult sweep(const std::vector<core::TileSpec>& specs,
                  const std::function<double(const core::TileSpec&)>& measure,
                  int repeats) {
  TEMPEST_REQUIRE(!specs.empty() && repeats >= 1);
  SweepResult result;
  result.best.seconds = std::numeric_limits<double>::infinity();
  bool found_healthy = false;
  std::string first_error;
  for (const core::TileSpec& spec : specs) {
    Candidate cand;
    cand.spec = spec;
    cand.seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < repeats && !cand.failed; ++rep) {
      TEMPEST_TRACE_SPAN_ARG("autotune.trial", "autotune", spec.tile_x);
      TEMPEST_TRACE_COUNT(AutotuneTrials, 1);
      const perf::pmu::PmuRegion pmu_region;
      double t = 0.0;
      try {
        t = measure(spec);
      } catch (const std::exception& e) {
        cand.failed = true;
        cand.error = e.what();
        break;
      }
      const perf::pmu::Sample d = pmu_region.delta();
      cand.pmu.valid_mask = d.valid_mask;
      for (int i = 0; i < perf::pmu::kNumEvents; ++i) {
        cand.pmu.value[static_cast<std::size_t>(i)] +=
            d.value[static_cast<std::size_t>(i)];
      }
      if (!std::isfinite(t) || t < 0.0) {
        cand.failed = true;
        cand.error = "trial reported a non-finite or negative time: " +
                     std::to_string(t);
        break;
      }
      cand.seconds = std::min(cand.seconds, t);
    }
    if (cand.failed && first_error.empty()) first_error = cand.error;
    if (cand.failed) {
      util::warn("autotune: skipping failed candidate (tile " +
                 std::to_string(cand.spec.tile_x) + "x" +
                 std::to_string(cand.spec.tile_y) + "): " + cand.error);
    }
    result.evaluated.push_back(cand);
    if (!cand.failed && cand.seconds < result.best.seconds) {
      result.best = cand;
      found_healthy = true;
    }
  }
  TEMPEST_REQUIRE_MSG(found_healthy,
                      "every autotune candidate failed; first failure: " +
                          first_error);
  return result;
}

std::string RunConfig::str() const {
  std::ostringstream os;
  os << "tile " << spec.tile_x << "x" << spec.tile_y << " block "
     << spec.block_x << "x" << spec.block_y << " tile_t " << spec.tile_t
     << " threads " << threads;
  return os.str();
}

std::vector<RunConfig> run_candidates(const grid::Extents3& extents,
                                      const CandidateSpace& space) {
  TEMPEST_REQUIRE_MSG(!space.threads.empty(),
                      "thread dimension of the candidate space is empty");
  const std::vector<core::TileSpec> tiles = candidates(extents, space);
  std::vector<RunConfig> out;
  std::vector<int> seen;
  for (int t : space.threads) {
    const int resolved = util::resolve_threads(t);
    if (std::find(seen.begin(), seen.end(), resolved) != seen.end()) continue;
    seen.push_back(resolved);
    for (const core::TileSpec& spec : tiles) {
      out.push_back(RunConfig{spec, resolved});
    }
  }
  return out;
}

RunSweepResult sweep_runs(
    const std::vector<RunConfig>& configs,
    const std::function<double(const RunConfig&)>& measure, int repeats) {
  TEMPEST_REQUIRE(!configs.empty() && repeats >= 1);
  RunSweepResult result;
  result.best.seconds = std::numeric_limits<double>::infinity();
  bool found_healthy = false;
  std::string first_error;
  for (const RunConfig& config : configs) {
    RunCandidate cand;
    cand.config = config;
    cand.seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < repeats && !cand.failed; ++rep) {
      TEMPEST_TRACE_SPAN_ARG("autotune.trial", "autotune", config.threads);
      TEMPEST_TRACE_COUNT(AutotuneTrials, 1);
      const perf::pmu::PmuRegion pmu_region;
      double t = 0.0;
      try {
        t = measure(config);
      } catch (const std::exception& e) {
        cand.failed = true;
        cand.error = e.what();
        break;
      }
      const perf::pmu::Sample d = pmu_region.delta();
      cand.pmu.valid_mask = d.valid_mask;
      for (int i = 0; i < perf::pmu::kNumEvents; ++i) {
        cand.pmu.value[static_cast<std::size_t>(i)] +=
            d.value[static_cast<std::size_t>(i)];
      }
      if (!std::isfinite(t) || t < 0.0) {
        cand.failed = true;
        cand.error = "trial reported a non-finite or negative time: " +
                     std::to_string(t);
        break;
      }
      cand.seconds = std::min(cand.seconds, t);
    }
    if (cand.failed && first_error.empty()) first_error = cand.error;
    if (cand.failed) {
      util::warn("autotune: skipping failed candidate (" + config.str() +
                 "): " + cand.error);
    }
    result.evaluated.push_back(cand);
    if (!cand.failed && cand.seconds < result.best.seconds) {
      result.best = cand;
      found_healthy = true;
    }
  }
  TEMPEST_REQUIRE_MSG(found_healthy,
                      "every autotune candidate failed; first failure: " +
                          first_error);
  return result;
}

std::vector<perf::TrafficValidation> validate_scaling(
    const RunSweepResult& result, int hw_threads) {
  if (hw_threads <= 0) {
    hw_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  // Single-thread baseline per tile shape: best healthy 1-thread time.
  auto baseline_for = [&](const core::TileSpec& spec) {
    double best = std::numeric_limits<double>::infinity();
    for (const RunCandidate& c : result.evaluated) {
      if (c.failed || c.config.threads != 1 || !(c.config.spec == spec))
        continue;
      best = std::min(best, c.seconds);
    }
    return best;
  };

  std::vector<perf::TrafficValidation> out;
  for (const RunCandidate& c : result.evaluated) {
    if (c.failed || c.config.threads <= 1) continue;
    const double t1 = baseline_for(c.config.spec);
    const bool have_baseline = std::isfinite(t1);
    const double modelled =
        have_baseline ? t1 / std::min(c.config.threads, hw_threads) : 0.0;
    out.push_back(perf::validate_traffic("autotune/" + c.config.str(),
                                         modelled, c.seconds, have_baseline));
  }
  return out;
}

}  // namespace tempest::autotune
