#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tempest/core/wavefront.hpp"
#include "tempest/grid/extents.hpp"
#include "tempest/perf/pmu.hpp"
#include "tempest/perf/report.hpp"

namespace tempest::autotune {

/// One evaluated tile/block configuration.
struct Candidate {
  core::TileSpec spec;
  double seconds = 0.0;  ///< measured propagation wall time
  bool failed = false;   ///< trial threw, or timed non-finite/negative
  std::string error;     ///< why it failed (exception message or diagnosis)
  /// Hardware-counter delta accumulated over this candidate's trial reps
  /// (zeroed-but-flagged when the PMU is unavailable). Explains *why* a
  /// tile shape wins — e.g. the best shape should show the lowest
  /// LLC-miss traffic per trial, the mechanism Table I rests on.
  perf::pmu::Sample pmu{};
};

/// Outcome of a sweep: every evaluated candidate plus the fastest one.
struct SweepResult {
  Candidate best;
  std::vector<Candidate> evaluated;
};

/// Candidate-generation controls, mirroring the paper's Table I search
/// space: tile_x/tile_y in {32..256}, block_x/block_y in {4..16}, plus the
/// temporal tile height. `symmetric` restricts to tile_x == tile_y and
/// block_x == block_y (the shape almost all of Table I's optima take),
/// shrinking the sweep for quick runs; the full sweep enumerates asymmetric
/// combinations exactly as the paper's exhaustive search does.
struct CandidateSpace {
  std::vector<int> tile_sizes{32, 64, 128, 256};
  std::vector<int> block_sizes{4, 8, 16};
  std::vector<int> tile_t{8};
  bool symmetric = true;
  /// Worker counts for the task-parallel executor (the thread dimension of
  /// the sweep). Only run_candidates() consumes it; the tile-only
  /// candidates() ignores it so existing single-thread sweeps are
  /// unchanged. 0 entries mean "the resolved default"
  /// (util::resolve_threads).
  std::vector<int> threads{1};
};

/// Enumerate candidate tile specs, dropping shapes larger than the domain
/// (a tile wider than the grid duplicates an existing candidate's behaviour)
/// and blocks larger than their tile.
[[nodiscard]] std::vector<core::TileSpec> candidates(
    const grid::Extents3& extents, const CandidateSpace& space);

/// Measure every candidate with `measure` (returning seconds; lower is
/// better) and return the full record. `repeats` takes the best of N per
/// candidate to suppress timer noise.
///
/// A sweep is only as robust as its worst trial: a candidate whose measure
/// call throws, or that reports a NaN/Inf/negative time, is recorded with
/// `failed = true` and its `error` set, then skipped when picking `best` —
/// one pathological tile shape must not abort an hour-long sweep. Throws
/// PreconditionError only when *every* candidate fails, with the first
/// failure's message for diagnosis.
[[nodiscard]] SweepResult sweep(
    const std::vector<core::TileSpec>& specs,
    const std::function<double(const core::TileSpec&)>& measure,
    int repeats = 1);

/// One point of the *parallel* search space: a tile shape plus the worker
/// count the task-parallel executor runs it under.
struct RunConfig {
  core::TileSpec spec{};
  int threads = 1;

  friend bool operator==(const RunConfig&, const RunConfig&) = default;
  [[nodiscard]] std::string str() const;
};

/// The cross product of candidates(extents, space) with space.threads —
/// the full (tile shape, thread count) lattice the parallel sweep walks.
/// Thread counts are deduplicated and kept in declaration order; tile
/// shapes vary fastest so same-thread configs are adjacent (one executor
/// warm-up per thread count).
[[nodiscard]] std::vector<RunConfig> run_candidates(
    const grid::Extents3& extents, const CandidateSpace& space);

/// One evaluated (tile, threads) configuration.
struct RunCandidate {
  RunConfig config{};
  double seconds = 0.0;
  bool failed = false;
  std::string error;
  perf::pmu::Sample pmu{};
};

struct RunSweepResult {
  RunCandidate best;
  std::vector<RunCandidate> evaluated;
};

/// sweep() over the parallel search space: same robustness contract
/// (failed trials are recorded and skipped; throws only when every config
/// fails).
[[nodiscard]] RunSweepResult sweep_runs(
    const std::vector<RunConfig>& configs,
    const std::function<double(const RunConfig&)>& measure, int repeats = 1);

/// Measured-vs-modelled thread-scaling verdicts for a finished parallel
/// sweep, one per multi-thread candidate. The model is the null hypothesis
/// of ideal strong scaling capped by the machine: for a config with N
/// threads and the *same tile shape* measured at 1 thread in t1 seconds,
/// modelled time = t1 / min(N, hw_threads). The comparison reuses the
/// loose log-ratio bands of perf::validate_traffic (predicted/measured
/// carried in seconds): Pass within warn_ratio, Warn beyond it (sublinear
/// scaling — expected when oversubscribed or bandwidth-bound), Fail
/// beyond fail_ratio (a *slowdown* that big means the task graph
/// serialized or thrashed), Unavailable when the sweep holds no 1-thread
/// baseline for that tile shape. `hw_threads` <= 0 means "ask the
/// machine" (std::thread::hardware_concurrency).
[[nodiscard]] std::vector<perf::TrafficValidation> validate_scaling(
    const RunSweepResult& result, int hw_threads = 0);

}  // namespace tempest::autotune
