#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tempest/core/wavefront.hpp"
#include "tempest/grid/extents.hpp"
#include "tempest/perf/pmu.hpp"

namespace tempest::autotune {

/// One evaluated tile/block configuration.
struct Candidate {
  core::TileSpec spec;
  double seconds = 0.0;  ///< measured propagation wall time
  bool failed = false;   ///< trial threw, or timed non-finite/negative
  std::string error;     ///< why it failed (exception message or diagnosis)
  /// Hardware-counter delta accumulated over this candidate's trial reps
  /// (zeroed-but-flagged when the PMU is unavailable). Explains *why* a
  /// tile shape wins — e.g. the best shape should show the lowest
  /// LLC-miss traffic per trial, the mechanism Table I rests on.
  perf::pmu::Sample pmu{};
};

/// Outcome of a sweep: every evaluated candidate plus the fastest one.
struct SweepResult {
  Candidate best;
  std::vector<Candidate> evaluated;
};

/// Candidate-generation controls, mirroring the paper's Table I search
/// space: tile_x/tile_y in {32..256}, block_x/block_y in {4..16}, plus the
/// temporal tile height. `symmetric` restricts to tile_x == tile_y and
/// block_x == block_y (the shape almost all of Table I's optima take),
/// shrinking the sweep for quick runs; the full sweep enumerates asymmetric
/// combinations exactly as the paper's exhaustive search does.
struct CandidateSpace {
  std::vector<int> tile_sizes{32, 64, 128, 256};
  std::vector<int> block_sizes{4, 8, 16};
  std::vector<int> tile_t{8};
  bool symmetric = true;
};

/// Enumerate candidate tile specs, dropping shapes larger than the domain
/// (a tile wider than the grid duplicates an existing candidate's behaviour)
/// and blocks larger than their tile.
[[nodiscard]] std::vector<core::TileSpec> candidates(
    const grid::Extents3& extents, const CandidateSpace& space);

/// Measure every candidate with `measure` (returning seconds; lower is
/// better) and return the full record. `repeats` takes the best of N per
/// candidate to suppress timer noise.
///
/// A sweep is only as robust as its worst trial: a candidate whose measure
/// call throws, or that reports a NaN/Inf/negative time, is recorded with
/// `failed = true` and its `error` set, then skipped when picking `best` —
/// one pathological tile shape must not abort an hour-long sweep. Throws
/// PreconditionError only when *every* candidate fails, with the first
/// failure's message for diagnosis.
[[nodiscard]] SweepResult sweep(
    const std::vector<core::TileSpec>& specs,
    const std::function<double(const core::TileSpec&)>& measure,
    int repeats = 1);

}  // namespace tempest::autotune
