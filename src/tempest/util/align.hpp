#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace tempest::util {

/// Cache-line / SIMD-register friendly alignment for field storage.
/// 64 bytes covers one x86 cache line and an AVX-512 register.
inline constexpr std::size_t kAlignment = 64;

/// Minimal C++17 aligned allocator so std::vector storage starts on a
/// 64-byte boundary. Field arrays use this to keep the contiguous z-loop
/// SIMD-friendly and to make the cache simulator's line arithmetic exact.
template <typename T, std::size_t Align = kAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t alignment{Align};

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_array_new_length();
    return static_cast<T*>(::operator new(n * sizeof(T), alignment));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, alignment);
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace tempest::util
