#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tempest::util {

/// Exception thrown by TEMPEST_REQUIRE on precondition violations.
/// Carries the failing expression and source location in its message.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace tempest::util

/// Check a precondition that must hold regardless of build type.
/// Unlike assert(), this is active in Release builds: the library is driven
/// by user-supplied geometry and tile parameters, and silent out-of-bounds
/// access is never acceptable in a solver.
#define TEMPEST_REQUIRE(expr)                                                \
  do {                                                                       \
    if (!(expr))                                                             \
      ::tempest::util::detail::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TEMPEST_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                       \
    if (!(expr))                                                             \
      ::tempest::util::detail::require_failed(#expr, __FILE__, __LINE__,     \
                                              (msg));                        \
  } while (0)
