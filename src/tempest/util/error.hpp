#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tempest::util {

/// Exception thrown by TEMPEST_REQUIRE on precondition violations.
/// Carries the failing expression and source location in its message.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// A schedule/transformation parameter that can never produce a valid
/// iteration space (e.g. a non-positive wave-front slope). Distinct from
/// PreconditionError so callers probing the schedule space (autotuners,
/// CLI parsing) can catch exactly the class of mistakes that is theirs to
/// repair.
class InvalidScheduleError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

/// Failure taxonomy for retrying runtimes (the jobs layer, the JIT).
///
/// A *transient* failure is expected to clear on retry: a compiler OOM
/// kill, a checkpoint write hitting a briefly full disk, an injected test
/// fault. A *degrade* failure is deterministic under the current execution
/// strategy but may succeed under a slower one (a diverging fast-path run,
/// a watchdog stall) — the caller should step down its degradation ladder
/// instead of retrying in place. A *permanent* failure is a property of the
/// request itself (illegal schedule, CFL violation, mismatched checkpoint):
/// retrying it burns cycles to reproduce the same diagnostic, so it must be
/// quarantined with the diagnostic attached, never retried.
enum class FailureKind { Transient, Degrade, Permanent };

[[nodiscard]] constexpr const char* to_string(FailureKind k) {
  switch (k) {
    case FailureKind::Transient: return "transient";
    case FailureKind::Degrade: return "degrade";
    case FailureKind::Permanent: return "permanent";
  }
  return "?";
}

/// Base class for failures that are expected to clear on retry. Derives
/// from PreconditionError so the existing catch sites (the JIT's
/// interpreter fallback, the checkpoint save paths) keep working: a
/// transient failure *is* still a failed precondition, it just carries the
/// extra promise that retrying is rational.
class TransientError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace tempest::util

/// Check a precondition that must hold regardless of build type.
/// Unlike assert(), this is active in Release builds: the library is driven
/// by user-supplied geometry and tile parameters, and silent out-of-bounds
/// access is never acceptable in a solver.
#define TEMPEST_REQUIRE(expr)                                                \
  do {                                                                       \
    if (!(expr))                                                             \
      ::tempest::util::detail::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TEMPEST_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                       \
    if (!(expr))                                                             \
      ::tempest::util::detail::require_failed(#expr, __FILE__, __LINE__,     \
                                              (msg));                        \
  } while (0)
