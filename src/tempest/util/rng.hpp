#pragma once

#include <cstdint>

namespace tempest::util {

/// SplitMix64: tiny, fast, deterministic PRNG. Used wherever the library
/// needs reproducible pseudo-random data (source scatter geometries,
/// randomized property tests, synthetic velocity models). Deliberately not
/// std::mt19937 so that sequences are identical across standard libraries.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

}  // namespace tempest::util
