#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tempest::util {

/// Minimal streaming JSON writer for the machine-readable sinks
/// (BENCH_*.json, .tempest_ceilings.json). Emits syntactically valid JSON
/// by construction: commas and indentation are managed by the begin/end
/// scoping calls, strings are escaped, and non-finite doubles — which JSON
/// cannot represent — are written as null so downstream parsers never see
/// a bare `nan`.
///
/// Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.field("schema", "tempest-bench-v1");
///   w.key("cases"); w.begin_array(); ... w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view k) {
    separate();
    write_string(k);
    os_ << ": ";
    pending_value_ = true;
  }

  void value(std::string_view v) {
    separate();
    write_string(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
  }
  void value(double v) {
    separate();
    if (std::isfinite(v)) {
      // max_digits10 round-trips; trailing-zero noise is acceptable in a
      // machine-readable sink.
      const int prec = 17;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
      os_ << buf;
    } else {
      os_ << "null";
    }
  }
  void value(long long v) {
    separate();
    os_ << v;
  }
  void value(unsigned long long v) {
    separate();
    os_ << v;
  }
  void value(int v) { value(static_cast<long long>(v)); }
  void value(long v) { value(static_cast<long long>(v)); }
  void value(std::uint32_t v) { value(static_cast<long long>(v)); }
  void null() {
    separate();
    os_ << "null";
  }

  template <typename T>
  void field(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

 private:
  void open(char c) {
    separate();
    os_ << c;
    stack_.push_back(false);
  }

  void close(char c) {
    const bool had_items = !stack_.empty() && stack_.back();
    if (!stack_.empty()) stack_.pop_back();
    if (had_items) {
      os_ << '\n';
      write_indent();
    }
    os_ << c;
    if (stack_.empty()) os_ << '\n';
  }

  /// Emit the comma/newline/indent owed before the next item at this level.
  void separate() {
    if (pending_value_) {
      // Directly after key(): no comma, the key already separated.
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back()) os_ << ',';
    stack_.back() = true;
    os_ << '\n';
    write_indent();
  }

  void write_indent() {
    for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i)
      os_ << ' ';
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        case '\r': os_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            os_ << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
                << "0123456789abcdef"[c & 0xf];
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  int indent_;
  std::vector<bool> stack_;  ///< one entry per open scope: "has items"
  bool pending_value_ = false;
};

}  // namespace tempest::util
