#include "tempest/util/threads.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tempest/util/error.hpp"

namespace tempest::util {

bool openmp_runtime() {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

int env_threads() {
  const char* env = std::getenv("TEMPEST_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  if (v < 1) return 0;
  return static_cast<int>(v);
}

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const int env = env_threads();
  if (env >= 1) return env;
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

const char* to_string(TaskBackend b) {
  switch (b) {
    case TaskBackend::Serial: return "serial";
    case TaskBackend::OpenMP: return "openmp";
    case TaskBackend::Pool: return "pool";
  }
  return "?";
}

TaskBackend select_backend(int threads) {
  if (threads <= 1) return TaskBackend::Serial;
  return openmp_runtime() ? TaskBackend::OpenMP : TaskBackend::Pool;
}

namespace {

/// First-exception capture shared by the parallel executors: bodies run
/// under no-throw workers (std::thread would terminate), the first
/// exception is kept and rethrown on the calling thread after the join.
class ExceptionSlot {
 public:
  void capture() {
    if (armed_.exchange(true, std::memory_order_acq_rel)) return;
    ptr_ = std::current_exception();
    ready_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_acquire);
  }
  void rethrow() {
    if (!armed_.load(std::memory_order_acquire)) return;
    while (!ready_.load(std::memory_order_acquire)) std::this_thread::yield();
    std::rethrow_exception(ptr_);
  }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<bool> ready_{false};
  std::exception_ptr ptr_;
};

}  // namespace

void parallel_for(int n, int threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const int workers = std::min(threads, n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ExceptionSlot error;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(workers)
  for (int i = 0; i < n; ++i) {
    if (error.armed()) continue;
    try {
      fn(i);
    } catch (...) {
      error.capture();
    }
  }
#else
  std::atomic<int> next{0};
  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || error.armed()) return;
      try {
        fn(i);
      } catch (...) {
        error.capture();
      }
    }
  };
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) team.emplace_back(worker);
  worker();
  for (std::thread& t : team) t.join();
#endif
  error.rethrow();
}

TaskDag::TaskDag(int n) : n_(n) {
  TEMPEST_REQUIRE(n >= 0);
  preds_.resize(static_cast<std::size_t>(n));
  succs_.resize(static_cast<std::size_t>(n));
}

void TaskDag::add_edge(int pred, int succ) {
  TEMPEST_REQUIRE(pred >= 0 && succ < n_);
  TEMPEST_REQUIRE_MSG(pred < succ,
                      "task edges must point forward (pred < succ) so "
                      "ascending node order stays topological");
  preds_[static_cast<std::size_t>(succ)].push_back(pred);
  succs_[static_cast<std::size_t>(pred)].push_back(succ);
}

const std::vector<int>& TaskDag::preds(int node) const {
  return preds_[static_cast<std::size_t>(node)];
}

int TaskDag::max_preds() const {
  std::size_t m = 0;
  for (const auto& p : preds_) m = std::max(m, p.size());
  return static_cast<int>(m);
}

void TaskDag::run(int threads, const std::function<void(int)>& body) const {
  if (n_ == 0) return;
  const int workers = std::min(threads, n_);
  switch (select_backend(workers)) {
    case TaskBackend::Serial:
      for (int i = 0; i < n_; ++i) body(i);
      return;
    case TaskBackend::OpenMP:
      run_omp(workers, body);
      return;
    case TaskBackend::Pool:
      run_pool(workers, body);
      return;
  }
}

void TaskDag::run_omp(int threads, const std::function<void(int)>& body) const {
#ifdef _OPENMP
  TEMPEST_REQUIRE_MSG(max_preds() <= 2,
                      "the OpenMP task backend expresses at most two "
                      "predecessors per node (fixed-arity depend clauses); "
                      "generate a staircase-reduced graph");
  // One sentinel byte per node: tasks depend on the *addresses*, never the
  // values. All tasks bound to the parallel region complete at the implicit
  // barrier ending the single construct, so the vector outlives them.
  std::vector<char> sentinel(static_cast<std::size_t>(n_), 0);
  char* dep = sentinel.data();
  ExceptionSlot error;
#pragma omp parallel num_threads(threads) default(shared)
#pragma omp single
  {
    for (int i = 0; i < n_; ++i) {
      const auto& p = preds_[static_cast<std::size_t>(i)];
      const int a = p.empty() ? 0 : p[0];
      const int b = p.size() < 2 ? 0 : p[1];
      switch (p.size()) {
        case 0:
#pragma omp task depend(out : dep[i]) firstprivate(i) default(shared)
          {
            if (!error.armed()) {
              try {
                body(i);
              } catch (...) {
                error.capture();
              }
            }
          }
          break;
        case 1:
#pragma omp task depend(in : dep[a]) depend(out : dep[i]) \
    firstprivate(i, a) default(shared)
          {
            if (!error.armed()) {
              try {
                body(i);
              } catch (...) {
                error.capture();
              }
            }
          }
          break;
        default:
#pragma omp task depend(in : dep[a], dep[b]) depend(out : dep[i]) \
    firstprivate(i, a, b) default(shared)
          {
            if (!error.armed()) {
              try {
                body(i);
              } catch (...) {
                error.capture();
              }
            }
          }
          break;
      }
    }
  }
  error.rethrow();
#else
  run_pool(threads, body);
#endif
}

void TaskDag::run_pool(int threads, const std::function<void(int)>& body) const {
  std::vector<int> indeg(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    indeg[static_cast<std::size_t>(i)] =
        static_cast<int>(preds_[static_cast<std::size_t>(i)].size());
  }
  std::mutex m;
  std::condition_variable cv;
  std::vector<int> ready;
  for (int i = 0; i < n_; ++i) {
    if (indeg[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }
  int remaining = n_;
  ExceptionSlot error;

  auto worker = [&] {
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
      cv.wait(lk, [&] { return !ready.empty() || remaining == 0; });
      if (ready.empty()) return;  // remaining == 0: drained
      const int task = ready.back();
      ready.pop_back();
      lk.unlock();
      if (!error.armed()) {
        try {
          body(task);
        } catch (...) {
          error.capture();
        }
      }
      lk.lock();
      --remaining;
      for (const int s : succs_[static_cast<std::size_t>(task)]) {
        if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
      }
      if (remaining == 0 || !ready.empty()) cv.notify_all();
    }
  };

  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(threads) - 1);
  for (int w = 1; w < threads; ++w) team.emplace_back(worker);
  worker();
  for (std::thread& t : team) t.join();
  error.rethrow();
}

}  // namespace tempest::util
