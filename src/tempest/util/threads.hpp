#pragma once

// Thread-count policy and the task-graph execution substrate shared by the
// parallel schedules.
//
// Thread policy: one knob, `TEMPEST_THREADS`. An explicit request (CLI flag,
// ExecutionOptions::threads) wins; otherwise the environment variable;
// otherwise the OpenMP default when the runtime is linked, else 1. A
// resolved count of 1 always means the deterministic serial path — no
// parallel runtime is entered at all.
//
// Execution substrate: TaskDag is a static DAG of coarse tasks (wavefront
// tiles, diamond triangles, color layers) with two parallel backends that
// honor exactly the same edges:
//   * OpenMP tasks with `depend` clauses (the default when the OpenMP
//     runtime is present). Nodes carry at most two predecessors — the
//     engine's tile graphs are generated so the staircase set suffices —
//     which maps onto fixed-arity OpenMP 4.5 depend lists;
//   * a portable std::thread topological pool using only standard C++
//     synchronization. This is the backend the ThreadSanitizer preset
//     exercises: GCC's libgomp is not TSan-instrumented (its barriers are
//     invisible to the race detector, drowning real reports in false
//     positives), so the tsan build compiles without the OpenMP runtime
//     (keeping -fopenmp-simd) and proves race-freedom of the task bodies —
//     the code that could actually race — through this pool.
// Both backends run the same bodies under the same dependence edges, so a
// race TSan can see in the pool is a race the OpenMP schedule has too.

#include <functional>
#include <vector>

namespace tempest::util {

/// True when compiled against the OpenMP *runtime* (-fopenmp). The tsan
/// preset builds with -fopenmp-simd only: simd pragmas still vectorize,
/// but this returns false and the pool backend takes over.
[[nodiscard]] bool openmp_runtime();

/// $TEMPEST_THREADS parsed (clamped to >= 1), or 0 when unset/invalid.
[[nodiscard]] int env_threads();

/// The worker count a parallel region should use: `requested` when >= 1,
/// else $TEMPEST_THREADS, else the OpenMP runtime default, else 1.
[[nodiscard]] int resolve_threads(int requested = 0);

/// Which substrate a TaskDag/parallel_for invocation will use for a given
/// resolved worker count.
enum class TaskBackend {
  Serial,  ///< threads == 1: plain loops, bitwise-reference order
  OpenMP,  ///< OpenMP tasks / parallel-for (runtime present)
  Pool,    ///< std::thread topological pool (OpenMP runtime absent)
};

[[nodiscard]] const char* to_string(TaskBackend b);
[[nodiscard]] TaskBackend select_backend(int threads);

/// Run fn(i) for every i in [0, n). threads <= 1 runs the serial loop in
/// ascending order; otherwise the iterations execute concurrently (OpenMP
/// parallel-for or a transient std::thread team) and fn must be race-free
/// across iterations. Exceptions from fn are rethrown (first one wins).
void parallel_for(int n, int threads, const std::function<void(int)>& fn);

/// A static task DAG executed under the selected backend. Nodes are dense
/// ints [0, size); edges always point from a lower to a higher node id, so
/// ascending node order is a topological order and the serial backend is
/// simply `for (i) body(i)` — the bitwise-deterministic reference schedule.
class TaskDag {
 public:
  TaskDag() = default;
  explicit TaskDag(int n);

  /// Add edge pred -> succ (pred must complete before succ starts).
  /// Requires pred < succ: the graph stays acyclic by construction.
  void add_edge(int pred, int succ);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] const std::vector<int>& preds(int node) const;

  /// Largest predecessor-list length — the OpenMP backend requires <= 2
  /// (fixed-arity depend clauses; the engine's generators guarantee it).
  [[nodiscard]] int max_preds() const;

  /// Execute body(node) for every node honoring every edge. threads <= 1:
  /// serial ascending order. Exceptions are rethrown after the graph
  /// drains (remaining bodies are skipped, first exception wins).
  void run(int threads, const std::function<void(int)>& body) const;

 private:
  void run_omp(int threads, const std::function<void(int)>& body) const;
  void run_pool(int threads, const std::function<void(int)>& body) const;

  int n_ = 0;
  std::vector<std::vector<int>> preds_;
  std::vector<std::vector<int>> succs_;
};

}  // namespace tempest::util
