#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tempest::util {

/// Plain-text table printer used by the bench harnesses to emit the rows of
/// the paper's tables/figures. Supports an aligned ASCII rendering for human
/// reading and a CSV rendering for post-processing/plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3);

  void print_ascii(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tempest::util
