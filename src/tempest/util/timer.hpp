#pragma once

#include <chrono>

namespace tempest::util {

/// Monotonic wall-clock stopwatch used by benchmarks and the autotuner.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  clock::time_point start_;
};

/// Run `fn` once and return its wall time in seconds.
template <typename Fn>
double timed(Fn&& fn) {
  Timer t;
  fn();
  return t.seconds();
}

}  // namespace tempest::util
