#include "tempest/util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace tempest::util {

namespace {

bool looks_like_option(const std::string& s) {
  return s.size() > 2 && s.rfind("--", 0) == 0;
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_option(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      options_[arg] = "";  // bare flag
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_flag(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  return v.empty() || v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<long> Cli::get_int_list(const std::string& key,
                                    const std::vector<long>& fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  std::vector<long> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtol(tok.c_str(), nullptr, 10));
  }
  return out.empty() ? fallback : out;
}

}  // namespace tempest::util
