#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace tempest::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// protecting checkpoint files against torn writes and bit rot. Table is
/// built at compile time; the streaming Crc32 accumulator lets writers
/// checksum a file as they emit it without a second pass.
namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

class Crc32 {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state_ = detail::kCrc32Table[(state_ ^ p[i]) & 0xFFu] ^ (state_ >> 8);
    }
  }

  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n) {
  Crc32 c;
  c.update(data, n);
  return c.value();
}

}  // namespace tempest::util
