#include "tempest/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "tempest/util/error.hpp"

namespace tempest::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TEMPEST_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  TEMPEST_REQUIRE_MSG(cells.size() == headers_.size(),
                      "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print_ascii(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << ' ';
    }
    os << "|\n";
  };
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

}  // namespace tempest::util
