#pragma once

#include <map>
#include <string>
#include <vector>

namespace tempest::util {

/// Minimal command-line parser for the bench/example binaries.
///
/// Accepts `--key=value` and boolean `--flag` forms (the space-separated
/// `--key value` form is deliberately rejected: it is ambiguous with
/// positionals). Positional arguments are collected in positional(). The bench
/// harnesses share one option vocabulary (--size, --steps, --so, --full,
/// --csv, ...) documented per binary via usage().
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_flag(const std::string& key,
                              bool fallback = false) const;

  /// Comma-separated integer list, e.g. --so=4,8,12.
  [[nodiscard]] std::vector<long> get_int_list(
      const std::string& key, const std::vector<long>& fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace tempest::util
