#pragma once

#include <iostream>
#include <string_view>

namespace tempest::util {

/// Minimal diagnostics channel for recoverable conditions: the resilience
/// paths (JIT fallback, skipped autotune trials, ignored stale checkpoints)
/// must tell the operator what degraded without aborting the run. Writes to
/// stderr so stdout stays clean for the benches' CSV output.
inline void warn(std::string_view msg) {
  std::cerr << "[tempest] warning: " << msg << "\n";
}

inline void info(std::string_view msg) {
  std::cerr << "[tempest] " << msg << "\n";
}

}  // namespace tempest::util
