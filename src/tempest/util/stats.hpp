#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tempest::util {

/// Summary statistics over a series of benchmark samples.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

/// Compute min/max/mean/median/stddev of `samples`. Empty input yields a
/// zero-initialized Summary.
Summary summarize(std::span<const double> samples);

/// Best-of-N timing convention used throughout the benches: run `fn` `n`
/// times, return all wall times (seconds). Callers typically take the min,
/// matching the paper's "best performing" reporting.
template <typename Fn>
std::vector<double> sample_times(std::size_t n, Fn&& fn);

/// Relative error |a-b| / max(|a|,|b|,eps); symmetric and safe near zero.
double rel_err(double a, double b, double eps = 1e-30);

}  // namespace tempest::util

#include "tempest/util/timer.hpp"

namespace tempest::util {

template <typename Fn>
std::vector<double> sample_times(std::size_t n, Fn&& fn) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(timed(fn));
  return out;
}

}  // namespace tempest::util
