#include "tempest/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace tempest::util {

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);

  const std::size_t mid = s.count / 2;
  s.median = (s.count % 2 == 1) ? sorted[mid]
                                : 0.5 * (sorted[mid - 1] + sorted[mid]);

  double sq = 0.0;
  for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
  s.stddev = (s.count > 1)
                 ? std::sqrt(sq / static_cast<double>(s.count - 1))
                 : 0.0;
  return s;
}

double rel_err(double a, double b, double eps) {
  const double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

}  // namespace tempest::util
