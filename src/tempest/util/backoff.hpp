#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "tempest/util/rng.hpp"

namespace tempest::util {

/// Bounded exponential backoff with deterministic jitter — the one retry
/// policy shared by every layer that retries (the JIT compiler driver, the
/// jobs runtime). Delays grow as base_ms * 2^(retry-1), are clamped to
/// max_ms, and are then scattered by ±jitter deterministically: the jitter
/// stream is SplitMix64 seeded from (seed ^ retry), so two runs with the
/// same policy produce byte-identical schedules — a retried run is as
/// reproducible as an uninterrupted one.
struct BackoffPolicy {
  int max_attempts = 3;    ///< total attempts, including the first
  double base_ms = 50.0;   ///< delay before the first retry
  double max_ms = 5000.0;  ///< ceiling on any single delay
  double jitter = 0.25;    ///< ± fraction scattered around the nominal delay
  std::uint64_t seed = 0x74656d7065737421ull;  ///< jitter stream seed

  /// Delay (ms) before retry number `retry` (1 = first retry). Deterministic
  /// for a given policy: no global state, no wall clock.
  [[nodiscard]] double delay_ms(int retry) const {
    if (retry < 1) return 0.0;
    double nominal = base_ms;
    for (int i = 1; i < retry && nominal < max_ms; ++i) nominal *= 2.0;
    nominal = std::min(nominal, max_ms);
    SplitMix64 rng(seed ^ static_cast<std::uint64_t>(retry));
    const double factor = 1.0 - jitter + 2.0 * jitter * rng.uniform();
    return nominal * factor;
  }

  /// Environment-driven override: `<PREFIX>_RETRIES` replaces max_attempts
  /// (total attempts) and `<PREFIX>_RETRY_BASE_MS` replaces base_ms. Values
  /// that do not parse to a positive number are ignored, so a typo degrades
  /// to the compiled-in default instead of disabling retries.
  [[nodiscard]] static BackoffPolicy from_env(const std::string& prefix,
                                              BackoffPolicy def);
  [[nodiscard]] static BackoffPolicy from_env(const std::string& prefix) {
    return from_env(prefix, BackoffPolicy{});
  }
};

inline BackoffPolicy BackoffPolicy::from_env(const std::string& prefix,
                                             BackoffPolicy def) {
  const auto read_env = [](const std::string& name) -> double {
    const char* v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0') return 0.0;
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    return (end != v && parsed > 0.0) ? parsed : 0.0;
  };
  if (const double n = read_env(prefix + "_RETRIES"); n > 0.0) {
    def.max_attempts = static_cast<int>(n);
  }
  if (const double ms = read_env(prefix + "_RETRY_BASE_MS"); ms > 0.0) {
    def.base_ms = ms;
  }
  return def;
}

/// The one place retry delays turn into real time, so tests can keep their
/// policies at base_ms = 1 and stay fast.
inline void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace tempest::util
