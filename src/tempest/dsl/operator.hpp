#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tempest/analysis/legality.hpp"
#include "tempest/analysis/statics/interval.hpp"
#include "tempest/dsl/expr.hpp"
#include "tempest/dsl/ir.hpp"
#include "tempest/dsl/lower.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"

namespace tempest::dsl {

/// Equation class the pattern matcher recognises. Like Devito, the Operator
/// turns a symbolic specification into an optimised implementation; unlike
/// Devito (which JIT-compiles generated C), the lowering here selects among
/// the ahead-of-time-compiled kernels in physics/ — the moral equivalent of
/// dispatching to the generated code — while the IR pipeline exposes every
/// intermediate schedule for inspection.
///
/// The three hand-written classes are *fast paths*: any scalar equation
/// outside their exact pattern (extra coefficient grids, different damping
/// model, missing Laplacian, ...) classifies as Generic and runs through the
/// typed-IR frontend — dsl::lower_kernel discretises it, DslKernel executes
/// it under every schedule — instead of being rejected.
enum class KernelClass { IsoAcoustic, TTI, Elastic, Generic };

[[nodiscard]] const char* to_string(KernelClass k);

struct OperatorOptions {
  physics::Schedule schedule = physics::Schedule::SpaceBlocked;
  core::TileSpec tiles{};
  sparse::InterpKind interp = sparse::InterpKind::Trilinear;
  double dt = 0.0;  ///< 0 = model's critical dt
  /// Coefficient grids for Generic-class equations whose parameter names
  /// are not the model's own ("m", "damp", "vp" bind automatically).
  ParamBindings bindings{};

  /// Declared value intervals for fields and coefficient grids, enabling
  /// the construction-time statics passes before any model data exists:
  /// the update is abstractly interpreted over these bounds
  /// (possible-div-by-zero and unbounded growth reject the Operator), and
  /// when `dt` and `spacing` are set the von Neumann bound is checked at
  /// the space-order-2 floor — the loosest bound over admissible orders,
  /// so a construction-time rejection is definitive. Empty skips the
  /// construction-time passes; apply()/JIT always re-check sharply against
  /// the concrete model.
  analysis::statics::BoundEnv declared_bounds{};
  /// Grid spacing for the construction-time CFL check; 0 = unknown until
  /// apply() binds a model geometry.
  double spacing = 0.0;
  /// Admit a dt beyond the static von Neumann bound (deliberate divergence
  /// experiments). Every non-stability statics pass still gates.
  bool allow_unstable = false;
};

/// The mini-Devito Operator: symbolic equations in, schedules and execution
/// out.
class Operator {
 public:
  Operator(std::vector<Eq> updates,
           std::vector<SparseTimeFunction::Injection> injections,
           std::vector<SparseTimeFunction::Interpolation> interpolations,
           OperatorOptions options = {});

  [[nodiscard]] KernelClass kernel_class() const { return class_; }
  [[nodiscard]] const OperatorOptions& options() const { return options_; }

  /// The lowered schedule as pseudocode, after the passes implied by the
  /// configured schedule: SpaceBlocked prints the Listing-1 nest;
  /// Wavefront prints the precomputed + fused + compressed + time-tiled
  /// nest of Listing 6.
  [[nodiscard]] std::string ccode() const;

  /// The schedule at each lowering stage (stage 0 = Listing 1, 1 = fused,
  /// 2 = compressed, 3 = time-tiled); exposed for tests and teaching.
  [[nodiscard]] std::string ccode_stage(int stage) const;

  /// The access summary the recognised kernel class declares, at a given
  /// space order (the structural shape — which fields, which time slices,
  /// substeps — is fixed by the class; only the radius scales).
  [[nodiscard]] analysis::AccessSummary access_summary(
      int space_order = 2) const;

  /// The space-time tiling the configured schedule implies for a kernel of
  /// the given space order (slope = declared per-timestep reach).
  [[nodiscard]] analysis::ScheduleDescriptor schedule_descriptor(
      int space_order = 2) const;

  /// Run the dependence analyzer + legality verifier over the nest at one
  /// lowering stage against the configured schedule. The constructor
  /// already requires stage >= 1 to be legal for time-tiled schedules (and
  /// stage 0 to be *rejected* when sparse operators are present — the
  /// paper's Fig. 4b as a machine-checked theorem); this re-runs the proof
  /// for inspection, optionally at a concrete space order.
  [[nodiscard]] analysis::LegalityReport verify_stage(
      int stage, int space_order = 2) const;

  /// Execute against concrete data. The model type must match the
  /// recognised kernel class.
  physics::RunStats apply(const physics::AcousticModel& model,
                          const sparse::SparseTimeSeries& src,
                          sparse::SparseTimeSeries* rec = nullptr) const;
  physics::RunStats apply(const physics::TTIModel& model,
                          const sparse::SparseTimeSeries& src,
                          sparse::SparseTimeSeries* rec = nullptr) const;
  physics::RunStats apply(const physics::ElasticModel& model,
                          const sparse::SparseTimeSeries& src,
                          sparse::SparseTimeSeries* rec = nullptr) const;

 private:
  [[nodiscard]] ir::Node lower(int stage) const;

  std::vector<Eq> updates_;
  std::vector<SparseTimeFunction::Injection> injections_;
  std::vector<SparseTimeFunction::Interpolation> interpolations_;
  OperatorOptions options_;
  KernelClass class_;
  int slope_ = 1;
};

}  // namespace tempest::dsl
