#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tempest/grid/extents.hpp"
#include "tempest/sparse/points.hpp"

namespace tempest::dsl {

/// The symbolic layer of the mini-Devito DSL: enough expression structure to
/// state the paper's three wave equations the way Listing "Wave-equation
/// symbolic definition" does, have the Operator recognise them, and have the
/// interpreter evaluate scalar ones on tiny grids.

/// Discretisation grid handle (symbolic: no storage).
struct Grid {
  grid::Extents3 shape{64, 64, 64};
  double spacing = 10.0;
};

enum class DerivKind {
  Dt,        ///< first time derivative
  Dt2,       ///< second time derivative
  Laplace,   ///< isotropic spatial Laplacian
  RotLapHz,  ///< rotated second derivative along the TTI symmetry axis
  RotLapHp,  ///< rotated horizontal Laplacian (Δ − Hz)
  Div,       ///< divergence of a vector/tensor field
  GradSym,   ///< symmetrised gradient (elastic strain-rate)
  Trace,     ///< trace of a tensor expression
};

[[nodiscard]] const char* to_string(DerivKind k);

enum class BinOp { Add, Sub, Mul, Div };

class Expr;

/// Expression node (immutable tree; Exprs share subtrees).
struct ExprNode {
  enum class Kind {
    Constant,  ///< numeric literal
    Field,     ///< time-varying field reference with a time offset
    Param,     ///< time-invariant parameter field (m, damp, lam, ...)
    Deriv,     ///< derivative operator applied to a child
    Binary,    ///< arithmetic
  };

  Kind kind = Kind::Constant;
  double value = 0.0;          // Constant
  std::string name;            // Field/Param
  int time_offset = 0;         // Field: 0 = t, +1 = forward, -1 = backward
  DerivKind deriv{};           // Deriv
  BinOp op{};                  // Binary
  std::vector<Expr> children;  // Deriv: 1, Binary: 2
};

/// Value-semantics handle over a shared immutable node.
class Expr {
 public:
  Expr() : node_(std::make_shared<ExprNode>()) {}
  explicit Expr(std::shared_ptr<const ExprNode> n) : node_(std::move(n)) {}

  [[nodiscard]] const ExprNode& node() const { return *node_; }

  /// Render as human-readable text (used by Operator::ccode()).
  [[nodiscard]] std::string str() const;

 private:
  std::shared_ptr<const ExprNode> node_;
};

[[nodiscard]] Expr constant(double v);
[[nodiscard]] Expr field(std::string name, int time_offset = 0);
[[nodiscard]] Expr param(std::string name);
[[nodiscard]] Expr deriv(DerivKind k, Expr arg);
[[nodiscard]] Expr binary(BinOp op, Expr l, Expr r);

[[nodiscard]] Expr operator+(Expr a, Expr b);
[[nodiscard]] Expr operator-(Expr a, Expr b);
[[nodiscard]] Expr operator*(Expr a, Expr b);
[[nodiscard]] Expr operator/(Expr a, Expr b);
[[nodiscard]] inline Expr operator*(double a, Expr b) {
  return constant(a) * std::move(b);
}
[[nodiscard]] inline Expr operator+(double a, Expr b) {
  return constant(a) + std::move(b);
}

/// Time-varying field symbol bound to a grid, mirroring Devito's
/// TimeFunction. Methods build derivative expressions.
class TimeFunction {
 public:
  TimeFunction(std::string name, Grid grid, int space_order, int time_order);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] int space_order() const { return space_order_; }
  [[nodiscard]] int time_order() const { return time_order_; }

  [[nodiscard]] Expr now() const { return field(name_, 0); }
  [[nodiscard]] Expr forward() const { return field(name_, +1); }
  [[nodiscard]] Expr backward() const { return field(name_, -1); }
  [[nodiscard]] Expr dt() const { return deriv(DerivKind::Dt, now()); }
  [[nodiscard]] Expr dt2() const { return deriv(DerivKind::Dt2, now()); }
  [[nodiscard]] Expr laplace() const {
    return deriv(DerivKind::Laplace, now());
  }
  /// TTI rotated operators.
  [[nodiscard]] Expr hz() const { return deriv(DerivKind::RotLapHz, now()); }
  [[nodiscard]] Expr hp() const { return deriv(DerivKind::RotLapHp, now()); }

 private:
  std::string name_;
  Grid grid_;
  int space_order_;
  int time_order_;
};

/// An equation lhs = rhs. For updates the lhs is some field's forward
/// reference (possibly produced by solve()).
struct Eq {
  Expr lhs;
  Expr rhs;

  [[nodiscard]] std::string str() const {
    return lhs.str() + " = " + rhs.str();
  }
};

/// Symbolic solve of `equation == 0` for `target` (a forward field
/// reference). Handles the explicit-update form the wave kernels take:
/// the equation must be linear in `target` with the Dt/Dt2 discretisations
/// providing the target's coefficient. Returns the update Eq. Mirrors
/// devito.solve; the Operator re-derives the actual stencil from the
/// recognised equation class, so this records intent and validates shape.
[[nodiscard]] Eq solve(const Expr& equation, const Expr& target);

/// Sparse symbol: an off-the-grid point set with a time series, mirroring
/// Devito's SparseTimeFunction. inject()/interpolate() produce the sparse
/// equations of Listing 1.
class SparseTimeFunction {
 public:
  SparseTimeFunction(std::string name, sparse::CoordList coords, int nt);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const sparse::CoordList& coords() const { return coords_; }
  [[nodiscard]] int nt() const { return nt_; }

  struct Injection {
    std::string sparse_name;
    std::string field_name;  ///< field injected into
    Expr expr;               ///< per-point scaling expression
  };
  struct Interpolation {
    std::string sparse_name;
    std::string field_name;  ///< field measured
  };

  [[nodiscard]] Injection inject(const TimeFunction& target,
                                 Expr expr) const {
    return {name_, target.name(), std::move(expr)};
  }
  [[nodiscard]] Interpolation interpolate(const TimeFunction& src) const {
    return {name_, src.name()};
  }

 private:
  std::string name_;
  sparse::CoordList coords_;
  int nt_;
};

/// Structural queries used by the Operator's pattern matcher.
[[nodiscard]] bool contains_deriv(const Expr& e, DerivKind k,
                                  const std::string& field_name);
[[nodiscard]] std::vector<std::string> referenced_fields(const Expr& e);
[[nodiscard]] std::vector<std::string> referenced_params(const Expr& e);

}  // namespace tempest::dsl
