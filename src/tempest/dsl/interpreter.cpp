#include "tempest/dsl/interpreter.hpp"

#include <cmath>

#include "tempest/dsl/kernel.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/sparse/operators.hpp"
#include "tempest/stencil/apply.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"

namespace tempest::dsl {

namespace {

/// Evaluation context for one grid point at one timestep.
struct PointEnv {
  const grid::TimeBuffer<real_t>* u;
  const physics::AcousticModel* model;
  const stencil::Coeffs* c2;
  double dt;
  int t;  ///< current step: Field offsets resolve against this
  int x, y, z;
  double trial;  ///< trial value for the forward field reference
};

double eval(const ExprNode& n, const PointEnv& env);

double eval_field(const ExprNode& n, const PointEnv& env, int extra_dt) {
  // extra_dt unused placeholder for future staggered semantics.
  (void)extra_dt;
  if (n.time_offset == 1) return env.trial;
  return env.u->at(env.t + n.time_offset)(env.x, env.y, env.z);
}

double eval_deriv(const ExprNode& n, const PointEnv& env) {
  const ExprNode& arg = n.children[0].node();
  TEMPEST_REQUIRE_MSG(arg.kind == ExprNode::Kind::Field,
                      "interpreter derivatives apply to plain fields");
  switch (n.deriv) {
    case DerivKind::Dt: {
      // (u.forward - u.backward) / (2 dt)
      const double fwd = env.trial;
      const double bwd = env.u->at(env.t - 1)(env.x, env.y, env.z);
      return (fwd - bwd) / (2.0 * env.dt);
    }
    case DerivKind::Dt2: {
      const double fwd = env.trial;
      const double now = env.u->at(env.t)(env.x, env.y, env.z);
      const double bwd = env.u->at(env.t - 1)(env.x, env.y, env.z);
      return (fwd - 2.0 * now + bwd) / (env.dt * env.dt);
    }
    case DerivKind::Laplace:
      TEMPEST_REQUIRE_MSG(arg.time_offset == 0,
                          "laplace applies to the current time level");
      return stencil::laplacian(env.u->at(env.t), *env.c2,
                                env.model->geom.spacing, env.x, env.y,
                                env.z);
    default:
      TEMPEST_REQUIRE_MSG(false,
                          "interpreter supports Dt/Dt2/Laplace derivatives");
      return 0.0;
  }
}

double eval(const ExprNode& n, const PointEnv& env) {
  switch (n.kind) {
    case ExprNode::Kind::Constant: return n.value;
    case ExprNode::Kind::Field: return eval_field(n, env, 0);
    case ExprNode::Kind::Param: {
      if (n.name == "m") return env.model->m(env.x, env.y, env.z);
      if (n.name == "damp") return env.model->damp(env.x, env.y, env.z);
      if (n.name == "vp") return env.model->vp(env.x, env.y, env.z);
      TEMPEST_REQUIRE_MSG(false, "unknown parameter: " + n.name);
      return 0.0;
    }
    case ExprNode::Kind::Deriv: return eval_deriv(n, env);
    case ExprNode::Kind::Binary: {
      const double l = eval(n.children[0].node(), env);
      const double r = eval(n.children[1].node(), env);
      switch (n.op) {
        case BinOp::Add: return l + r;
        case BinOp::Sub: return l - r;
        case BinOp::Mul: return l * r;
        case BinOp::Div: return l / r;
      }
      return 0.0;
    }
  }
  return 0.0;
}

}  // namespace

Interpreter::Interpreter(Eq update, const physics::AcousticModel& model,
                         double dt)
    : update_(std::move(update)), model_(model), dt_(dt) {
  TEMPEST_REQUIRE(dt > 0.0);
  const ExprNode& lhs = update_.lhs.node();
  TEMPEST_REQUIRE_MSG(
      lhs.kind == ExprNode::Kind::Field && lhs.time_offset == 1,
      "update lhs must be a forward field reference");
  field_name_ = lhs.name;
}

grid::Grid3<real_t> Interpreter::run(const sparse::SparseTimeSeries& src,
                                     sparse::InterpKind kind) const {
  const auto& e = model_.geom.extents;
  const int r = model_.geom.radius();
  const stencil::Coeffs c2 = stencil::central(2, model_.geom.space_order);
  grid::TimeBuffer<real_t> u(3, e, r, real_t{0});
  const int nt = src.nt();

  const auto& m_grid = model_.m;
  const double dt2 = dt_ * dt_;
  auto inj_scale = [&](int x, int y, int z) {
    return dt2 / m_grid(x, y, z);
  };

  for (int t = 1; t < nt; ++t) {
    auto& next = u.at(t + 1);
    for (int x = 0; x < e.nx; ++x) {
      for (int y = 0; y < e.ny; ++y) {
        for (int z = 0; z < e.nz; ++z) {
          PointEnv env{&u, &model_, &c2, dt_, t, x, y, z, 0.0};
          // equation(trial) is linear in the trial forward value:
          // solve A*trial + B = 0 by two evaluations.
          env.trial = 0.0;
          const double b = eval(update_.rhs.node(), env);
          env.trial = 1.0;
          const double a_plus_b = eval(update_.rhs.node(), env);
          const double a = a_plus_b - b;
          TEMPEST_REQUIRE_MSG(std::fabs(a) > 1e-30,
                              "equation is independent of the forward value");
          next(x, y, z) = static_cast<real_t>(-b / a);
        }
      }
    }
    sparse::inject(next, src, t, kind, inj_scale);
  }
  // Return a copy of the final wavefield.
  return u.at(nt);
}

namespace {

/// real_t walk of a typed update tree — the same arithmetic the DslKernel
/// tape performs, expressed recursively.
real_t eval_typed(const ir::Expr& e, const grid::TimeBuffer<real_t>& u,
                  const std::vector<const grid::Grid3<real_t>*>& prm,
                  const std::vector<std::string>& names, int t, int x, int y,
                  int z, const LoadObserver& observer) {
  switch (e.kind) {
    case ir::Expr::Kind::Const:
      return static_cast<real_t>(e.value);
    case ir::Expr::Kind::Load: {
      if (observer) observer(e.name, e.dt, e.dx, e.dy, e.dz);
      return u.at(t + e.dt)(x + e.dx, y + e.dy, z + e.dz);
    }
    case ir::Expr::Kind::Param: {
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == e.name) return (*prm[i])(x, y, z);
      }
      TEMPEST_REQUIRE_MSG(false, "unknown parameter: " + e.name);
      return real_t{0};
    }
    case ir::Expr::Kind::Binary: {
      const real_t l =
          eval_typed(*e.a, u, prm, names, t, x, y, z, observer);
      const real_t r =
          eval_typed(*e.b, u, prm, names, t, x, y, z, observer);
      switch (e.op) {
        case '+': return l + r;
        case '-': return l - r;
        case '*': return l * r;
        case '/': return l / r;
        default: break;
      }
      TEMPEST_REQUIRE_MSG(false, "unknown operator in typed update tree");
      return real_t{0};
    }
  }
  return real_t{0};
}

}  // namespace

TypedInterpreter::TypedInterpreter(const LoweredKernel& lowered,
                                   const physics::AcousticModel& model,
                                   double dt, ParamBindings bindings)
    : lowered_(lowered),
      model_(model),
      dt_(dt),
      bindings_(std::move(bindings)) {
  TEMPEST_REQUIRE(dt > 0.0);
  TEMPEST_REQUIRE_MSG(lowered.update != nullptr,
                      "typed interpreter needs a lowered update tree");
}

real_t TypedInterpreter::eval_at(const grid::TimeBuffer<real_t>& u, int t,
                                 int x, int y, int z,
                                 const LoadObserver& observer) const {
  const auto prm = resolve_params(lowered_, model_, bindings_);
  return eval_typed(*lowered_.update, u, prm, lowered_.params, t, x, y, z,
                    observer);
}

grid::Grid3<real_t> TypedInterpreter::run(const sparse::SparseTimeSeries& src,
                                          sparse::InterpKind kind) const {
  const auto& e = model_.geom.extents;
  grid::TimeBuffer<real_t> u(3, e, model_.geom.radius(), real_t{0});
  const int nt = src.nt();
  const auto prm = resolve_params(lowered_, model_, bindings_);

  const auto& m_grid = model_.m;
  const double dt2 = dt_ * dt_;
  auto inj_scale = [&](int x, int y, int z) {
    return dt2 / m_grid(x, y, z);
  };

  for (int t = 1; t < nt; ++t) {
    auto& next = u.at(t + 1);
    for (int x = 0; x < e.nx; ++x) {
      for (int y = 0; y < e.ny; ++y) {
        for (int z = 0; z < e.nz; ++z) {
          next(x, y, z) = eval_typed(*lowered_.update, u, prm,
                                     lowered_.params, t, x, y, z, {});
        }
      }
    }
    sparse::inject(next, src, t, kind, inj_scale);
  }
  return u.at(nt);
}

}  // namespace tempest::dsl
