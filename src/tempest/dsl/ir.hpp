#pragma once

#include <string>
#include <vector>

namespace tempest::dsl::ir {

/// Loop-nest IR the Operator lowers equations into. Deliberately close to
/// the pseudocode listings of the paper: the transformation passes
/// (precompute-and-fuse, iteration-space compression, time tiling) are tree
/// rewrites whose printed form is asserted against Listings 1/4/5/6 shapes
/// in tests.
struct Node {
  enum class Kind { Loop, Stmt };

  Kind kind = Kind::Stmt;

  // Loop fields.
  std::string dim;   ///< iteration variable ("t", "x", "s", "z2", "tt", ...)
  std::string lo;    ///< symbolic lower bound
  std::string hi;    ///< symbolic upper bound (inclusive-style, as listings)
  std::vector<Node> body;

  // Stmt fields.
  std::string text;  ///< the statement as pseudocode
  std::string tag;   ///< semantic label: "stencil", "inject", "interp",
                     ///< "inject-fused", "interp-fused", "precompute", ...
};

[[nodiscard]] Node loop(std::string dim, std::string lo, std::string hi,
                        std::vector<Node> body);
[[nodiscard]] Node stmt(std::string text, std::string tag);

/// Render the tree as indented pseudocode (the Operator's ccode()).
[[nodiscard]] std::string print(const Node& root);

/// Depth-first search for the first loop with the given dim name; nullptr if
/// absent.
[[nodiscard]] Node* find_loop(Node& root, const std::string& dim);
[[nodiscard]] const Node* find_loop(const Node& root, const std::string& dim);

/// Collect the dim names of all loops in depth-first order (test helper: the
/// listings are characterized by their loop order).
[[nodiscard]] std::vector<std::string> loop_order(const Node& root);

/// Remove every direct or nested loop over `dim` from the tree; returns the
/// number removed.
int remove_loops(Node& root, const std::string& dim);

/// Collect all statement tags in execution order.
[[nodiscard]] std::vector<std::string> stmt_tags(const Node& root);

}  // namespace tempest::dsl::ir
