#pragma once

#include <memory>
#include <string>
#include <vector>

namespace tempest::dsl::ir {

/// One subscript dimension of a typed array access. Three shapes cover the
/// listings: an affine offset from the loop index (`x - 2`, radius-style
/// intervals collapse to lo == hi for point accesses), a bounded interval
/// (the stencil's `-r..r` halo), and an indirection through `map(s, i)` or a
/// mask table, whose target is statically unknowable (a `*` extent).
struct Subscript {
  bool star = false;  ///< indirect / statically unknowable position
  int lo = 0;         ///< affine offset interval, inclusive
  int hi = 0;

  [[nodiscard]] static Subscript affine(int offset) {
    return Subscript{false, offset, offset};
  }
  [[nodiscard]] static Subscript range(int lo, int hi) {
    return Subscript{false, lo, hi};
  }
  [[nodiscard]] static Subscript indirect() { return Subscript{true, 0, 0}; }

  friend bool operator==(const Subscript&, const Subscript&) = default;
};

/// A typed array access carried by a Stmt: which field, read or write, the
/// time offset relative to the surrounding `t` loop, and the spatial (or
/// point-index) subscripts. `grid == false` marks sparse-side arrays (`rec`,
/// `src_dcmp`, `w_dcmp`) whose subscripts never participate in spatial
/// dependence distances.
struct Access {
  std::string field;
  bool is_write = false;
  int time = 0;       ///< offset from the time-loop index (u[t+1] -> +1)
  Subscript x, y, z;  ///< spatial subscripts (ignored when !grid)
  bool grid = true;   ///< indexed by grid coordinates (vs point/record index)

  friend bool operator==(const Access&, const Access&) = default;
};

/// Discretised scalar expression tree attached to stencil statements: the
/// right-hand side of the field update after FD lowering, evaluated
/// pointwise in `real_t`. Loads address `field[t + dt, x + dx, y + dy,
/// z + dz]`; Params are pointwise coefficient grids (`m`, `damp`, ...).
struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind { Const, Load, Param, Binary };

  Kind kind = Kind::Const;
  double value = 0.0;   ///< Const: numeric literal (stored exact in double)
  std::string name;     ///< Load: field name; Param: coefficient grid name
  int dt = 0, dx = 0, dy = 0, dz = 0;  ///< Load: offsets
  char op = '+';        ///< Binary: one of + - * /
  ExprPtr a, b;         ///< Binary operands
};

[[nodiscard]] ExprPtr cnst(double v);
[[nodiscard]] ExprPtr load(std::string field, int dt, int dx, int dy, int dz);
[[nodiscard]] ExprPtr pref(std::string name);
[[nodiscard]] ExprPtr bin(char op, ExprPtr a, ExprPtr b);

/// Loop-nest IR the Operator lowers equations into. Deliberately close to
/// the pseudocode listings of the paper: the transformation passes
/// (precompute-and-fuse, iteration-space compression, time tiling) are tree
/// rewrites whose printed form is asserted against Listings 1/4/5/6 shapes
/// in tests. Statements carry *structured* semantics alongside the rendered
/// pseudocode: a typed Access list (what the statement touches) and, for
/// stencil updates, the discretised expression tree. `print` renders only
/// the text, so the typed payload never perturbs the listing goldens.
struct Node {
  enum class Kind { Loop, Stmt };

  Kind kind = Kind::Stmt;

  // Loop fields.
  std::string dim;   ///< iteration variable ("t", "x", "s", "z2", "tt", ...)
  std::string lo;    ///< symbolic lower bound
  std::string hi;    ///< symbolic upper bound (inclusive-style, as listings)
  std::vector<Node> body;

  // Stmt fields.
  std::string text;  ///< the statement as pseudocode
  std::string tag;   ///< semantic label: "stencil", "inject", "interp",
                     ///< "inject-fused", "interp-fused", "precompute", ...
  std::vector<Access> accesses;  ///< typed reads/writes, in textual order
  ExprPtr update;    ///< stencil statements: discretised RHS of the write
};

[[nodiscard]] Node loop(std::string dim, std::string lo, std::string hi,
                        std::vector<Node> body);
[[nodiscard]] Node stmt(std::string text, std::string tag);
[[nodiscard]] Node stmt(std::string text, std::string tag,
                        std::vector<Access> accesses, ExprPtr update = nullptr);

/// Render the tree as indented pseudocode (the Operator's ccode()).
[[nodiscard]] std::string print(const Node& root);

/// Depth-first search for the first loop with the given dim name; nullptr if
/// absent.
[[nodiscard]] Node* find_loop(Node& root, const std::string& dim);
[[nodiscard]] const Node* find_loop(const Node& root, const std::string& dim);

/// Collect the dim names of all loops in depth-first order (test helper: the
/// listings are characterized by their loop order).
[[nodiscard]] std::vector<std::string> loop_order(const Node& root);

/// Remove every direct or nested loop over `dim` from the tree; returns the
/// number removed.
int remove_loops(Node& root, const std::string& dim);

/// Collect all statement tags in execution order.
[[nodiscard]] std::vector<std::string> stmt_tags(const Node& root);

}  // namespace tempest::dsl::ir
