#include "tempest/dsl/operator.hpp"

#include <algorithm>

#include "tempest/analysis/statics/stability.hpp"
#include "tempest/analysis/statics/verify.hpp"
#include "tempest/dsl/kernel.hpp"
#include "tempest/dsl/passes.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/stencil/cfl.hpp"
#include "tempest/util/error.hpp"

namespace tempest::dsl {

const char* to_string(KernelClass k) {
  switch (k) {
    case KernelClass::IsoAcoustic: return "isotropic-acoustic";
    case KernelClass::TTI: return "anisotropic-acoustic-tti";
    case KernelClass::Elastic: return "isotropic-elastic";
    case KernelClass::Generic: return "generic";
  }
  return "?";
}

namespace {

/// Structural classification of the update equations, the "pattern match"
/// of the lowering. Rules:
///  * any equation using Div/GradSym derivatives  -> Elastic
///  * any equation using the rotated operators    -> TTI (two fields)
///  * a Dt2 + Laplace scalar equation whose coefficients are the acoustic
///    model's own (m, damp)                       -> IsoAcoustic (fast path)
///  * any other scalar equation with a time derivative -> Generic, handled
///    by the typed-IR frontend (lower_kernel + DslKernel) rather than a
///    hand-written kernel.
KernelClass classify(const std::vector<Eq>& updates) {
  TEMPEST_REQUIRE_MSG(!updates.empty(), "Operator needs update equations");
  bool any_rot = false, any_vec = false, any_lap = false, any_dt2 = false;
  bool any_dt = false;
  std::vector<std::string> fields;
  bool params_are_acoustic = true;
  for (const Eq& eq : updates) {
    if (contains_deriv(eq.rhs, DerivKind::Div, "") ||
        contains_deriv(eq.rhs, DerivKind::GradSym, "")) {
      any_vec = true;
    }
    if (contains_deriv(eq.rhs, DerivKind::RotLapHz, "") ||
        contains_deriv(eq.rhs, DerivKind::RotLapHp, "")) {
      any_rot = true;
    }
    if (contains_deriv(eq.rhs, DerivKind::Laplace, "")) any_lap = true;
    if (contains_deriv(eq.rhs, DerivKind::Dt2, "")) any_dt2 = true;
    if (contains_deriv(eq.rhs, DerivKind::Dt, "")) any_dt = true;
    for (const std::string& f : referenced_fields(eq.rhs)) {
      if (std::find(fields.begin(), fields.end(), f) == fields.end()) {
        fields.push_back(f);
      }
    }
    for (const std::string& p : referenced_params(eq.rhs)) {
      if (p != "m" && p != "damp") params_are_acoustic = false;
    }
  }
  if (any_vec) {
    TEMPEST_REQUIRE_MSG(!any_rot && !any_lap,
                        "cannot mix elastic and acoustic operators");
    return KernelClass::Elastic;
  }
  if (any_rot) {
    TEMPEST_REQUIRE_MSG(fields.size() == 2,
                        "TTI needs exactly two coupled wavefields");
    TEMPEST_REQUIRE_MSG(any_dt2, "TTI equations are second order in time");
    return KernelClass::TTI;
  }
  TEMPEST_REQUIRE_MSG(fields.size() == 1,
                      "scalar equations update a single wavefield");
  if (any_lap && any_dt2 && params_are_acoustic) {
    return KernelClass::IsoAcoustic;
  }
  TEMPEST_REQUIRE_MSG(any_dt2 || any_dt,
                      "unrecognised equation class: no time derivative");
  TEMPEST_REQUIRE_MSG(updates.size() == 1,
                      "generic scalar equations lower one update at a time");
  return KernelClass::Generic;
}

}  // namespace

Operator::Operator(std::vector<Eq> updates,
                   std::vector<SparseTimeFunction::Injection> injections,
                   std::vector<SparseTimeFunction::Interpolation> interps,
                   OperatorOptions options)
    : updates_(std::move(updates)),
      injections_(std::move(injections)),
      interpolations_(std::move(interps)),
      options_(options),
      class_(classify(updates_)) {
  TEMPEST_REQUIRE(options_.tiles.valid());
  // The wave-front slope is the per-(half-)step dependency radius; the
  // concrete radius is bound at apply() time from the model's space order —
  // here we record the class-level slope semantics for ccode().
  slope_ = 1;

  // Machine-check the paper's Fig. 4b at operator build time: under any
  // temporally blocked schedule the naive Listing-1 nest must be *rejected*
  // when off-the-grid sparse operators are present (their map()-indirected
  // accesses carry unbounded dependence distances), and the lowered
  // precomputed + fused nests must be accepted. A failure of either
  // direction is a lowering bug, caught before any data is touched.
  if (schedule_descriptor().time_tiled()) {
    if (!injections_.empty() || !interpolations_.empty()) {
      const analysis::LegalityReport naive = verify_stage(0);
      TEMPEST_REQUIRE_MSG(!naive.legal(),
                          "legality verifier failed to reject the naive "
                          "sparse nest under a time-tiled schedule");
    }
    analysis::require_legal(verify_stage(1));
    analysis::require_legal(verify_stage(2));
  }

  // Construction-time statics (see analysis/statics/): with declared value
  // bounds the Generic update is abstractly interpreted before any model
  // exists — possible-div-by-zero or unbounded growth rejects the Operator
  // here, not at the first apply(). The lowering uses placeholder spacing /
  // dt (the interval semantics of the update do not depend on them beyond
  // the constant weights, and stability is checked separately below).
  namespace statics = analysis::statics;
  if (!options_.declared_bounds.empty() && class_ == KernelClass::Generic) {
    statics::StaticsOptions sopts;
    sopts.bounds = options_.declared_bounds;
    sopts.check_stability = false;
    statics::require_static_ok(statics::verify_statics(
        lower_kernel(updates_.front(), /*space_order=*/2, /*spacing=*/10.0,
                     /*dt=*/1.0, "generic"),
        sopts));
  }
  // Static CFL proof at the space-order-2 floor: S1 = sum|w| grows with
  // the order, so the so=2 bound is the loosest over admissible orders —
  // a dt it rejects is unstable at *every* order, making the rejection
  // definitive with no model bound yet. apply()/JIT re-check sharply.
  if (options_.dt > 0.0 && options_.spacing > 0.0 &&
      !options_.allow_unstable) {
    const auto vp = options_.declared_bounds.find("vp");
    if (vp != options_.declared_bounds.end()) {
      statics::require_stable(
          statics::check_acoustic_stability(options_.dt, options_.spacing,
                                            /*space_order=*/2, vp->second),
          to_string(class_));
    }
  }
}

analysis::AccessSummary Operator::access_summary(int space_order) const {
  switch (class_) {
    case KernelClass::IsoAcoustic:
      return physics::acoustic_access_summary(space_order);
    case KernelClass::TTI: return physics::tti_access_summary(space_order);
    case KernelClass::Elastic:
      return physics::elastic_access_summary(space_order);
    case KernelClass::Generic:
      // The structural shape (radius, time slices read) does not depend on
      // spacing or dt; lower with placeholder values.
      return lower_kernel(updates_.front(), space_order, /*spacing=*/10.0,
                          /*dt=*/1.0, "generic")
          .summary();
  }
  TEMPEST_REQUIRE_MSG(false, "unreachable kernel class");
  return {};
}

analysis::ScheduleDescriptor Operator::schedule_descriptor(
    int space_order) const {
  // The declared radius is already the per-timestep dependence reach (the
  // elastic summary folds its two half-steps in), so it is exactly the
  // wave-front slope the engine skews by.
  const int slope = access_summary(space_order).radius;
  const int tile_t = std::max(1, options_.tiles.tile_t);
  switch (options_.schedule) {
    case physics::Schedule::Reference:
      return analysis::ScheduleDescriptor::reference();
    case physics::Schedule::SpaceBlocked:
      return analysis::ScheduleDescriptor::space_blocked();
    case physics::Schedule::Wavefront:
      return analysis::ScheduleDescriptor::wavefront(slope, tile_t);
    case physics::Schedule::Diamond:
      return analysis::ScheduleDescriptor::diamond(slope, tile_t);
  }
  TEMPEST_REQUIRE_MSG(false, "unreachable schedule");
  return {};
}

analysis::LegalityReport Operator::verify_stage(int stage,
                                                int space_order) const {
  return analysis::verify_nest(lower(stage), access_summary(space_order),
                               schedule_descriptor(space_order));
}

ir::Node Operator::lower(int stage) const {
  TEMPEST_REQUIRE(stage >= 0 && stage <= 3);
  const std::string kernel_text =
      std::string("A_") + to_string(class_) + "(t, x, y, z)";
  ir::Node root = passes::build_timestepping(
      kernel_text, !injections_.empty(), !interpolations_.empty());
  if (stage >= 1) passes::precompute_and_fuse(root);
  if (stage >= 2) passes::compress_iteration_space(root);
  if (stage >= 3) passes::time_tile(root, slope_);
  return root;
}

std::string Operator::ccode_stage(int stage) const {
  return ir::print(lower(stage));
}

std::string Operator::ccode() const {
  const int stage =
      options_.schedule == physics::Schedule::Wavefront ? 3 : 0;
  return ccode_stage(stage);
}

physics::RunStats Operator::apply(const physics::AcousticModel& model,
                                  const sparse::SparseTimeSeries& src,
                                  sparse::SparseTimeSeries* rec) const {
  TEMPEST_REQUIRE_MSG(
      class_ == KernelClass::IsoAcoustic || class_ == KernelClass::Generic,
      "equations are not a scalar wavefield update");
  if (schedule_descriptor().time_tiled()) {
    analysis::require_legal(verify_stage(2, model.geom.space_order));
  }
  // Sharp stability re-check against the concrete model: real space order,
  // velocity interval scanned from the grid interior. The construction-time
  // check used the loosest (so=2) bound; this one is exact.
  namespace statics = analysis::statics;
  if (!options_.allow_unstable) {
    const double dt = options_.dt > 0.0 ? options_.dt : model.critical_dt();
    statics::require_stable(
        statics::check_acoustic_stability(dt, model.geom.spacing,
                                          model.geom.space_order,
                                          statics::grid_interval(model.vp)),
        to_string(class_));
  }
  physics::PropagatorOptions popts;
  popts.tiles = options_.tiles;
  popts.interp = options_.interp;
  popts.dt = options_.dt;
  popts.allow_unstable = options_.allow_unstable;
  if (class_ == KernelClass::Generic) {
    DslPropagator prop(updates_.front(), model, popts, options_.bindings,
                       "generic");
    return prop.run(options_.schedule, src, rec);
  }
  physics::AcousticPropagator prop(model, popts);
  return prop.run(options_.schedule, src, rec);
}

physics::RunStats Operator::apply(const physics::TTIModel& model,
                                  const sparse::SparseTimeSeries& src,
                                  sparse::SparseTimeSeries* rec) const {
  TEMPEST_REQUIRE_MSG(class_ == KernelClass::TTI,
                      "equations are not the TTI coupled system");
  if (schedule_descriptor().time_tiled()) {
    analysis::require_legal(verify_stage(2, model.geom.space_order));
  }
  // The TTI hard bound is the acoustic one derated by the anisotropy
  // factor sqrt(1 + 2 max(eps, delta)) — scanned from the Thomsen grids.
  namespace statics = analysis::statics;
  if (!options_.allow_unstable) {
    const double dt = options_.dt > 0.0 ? options_.dt : model.critical_dt();
    const double vmax = model.vp_max();
    const double bound = stencil::tti_dt(
        model.geom.spacing, vmax, model.geom.space_order,
        grid::max_abs(model.epsilon), grid::max_abs(model.delta),
        /*safety=*/1.0);
    statics::require_stable(
        statics::check_bound(dt, bound, vmax, model.geom.spacing,
                             model.geom.space_order, "tti"),
        to_string(class_));
  }
  physics::PropagatorOptions popts;
  popts.tiles = options_.tiles;
  popts.interp = options_.interp;
  popts.dt = options_.dt;
  popts.allow_unstable = options_.allow_unstable;
  physics::TTIPropagator prop(model, popts);
  return prop.run(options_.schedule, src, rec);
}

physics::RunStats Operator::apply(const physics::ElasticModel& model,
                                  const sparse::SparseTimeSeries& src,
                                  sparse::SparseTimeSeries* rec) const {
  TEMPEST_REQUIRE_MSG(class_ == KernelClass::Elastic,
                      "equations are not the elastic velocity-stress system");
  if (schedule_descriptor().time_tiled()) {
    analysis::require_legal(verify_stage(2, model.geom.space_order));
  }
  // First-order velocity–stress bound from the staggered first-derivative
  // weights (stencil::elastic_dt at safety 1 = the hard limit).
  namespace statics = analysis::statics;
  if (!options_.allow_unstable) {
    const double dt = options_.dt > 0.0 ? options_.dt : model.critical_dt();
    const double vmax = model.vp_max();
    const double bound = stencil::elastic_dt(
        model.geom.spacing, vmax, model.geom.space_order, /*safety=*/1.0);
    statics::require_stable(
        statics::check_bound(dt, bound, vmax, model.geom.spacing,
                             model.geom.space_order, "elastic"),
        to_string(class_));
  }
  physics::PropagatorOptions popts;
  popts.tiles = options_.tiles;
  popts.interp = options_.interp;
  popts.dt = options_.dt;
  popts.allow_unstable = options_.allow_unstable;
  physics::ElasticPropagator prop(model, popts);
  return prop.run(options_.schedule, src, rec);
}

}  // namespace tempest::dsl
