#include "tempest/dsl/ir.hpp"

#include <sstream>

namespace tempest::dsl::ir {

Node loop(std::string dim, std::string lo, std::string hi,
          std::vector<Node> body) {
  Node n;
  n.kind = Node::Kind::Loop;
  n.dim = std::move(dim);
  n.lo = std::move(lo);
  n.hi = std::move(hi);
  n.body = std::move(body);
  return n;
}

Node stmt(std::string text, std::string tag) {
  Node n;
  n.kind = Node::Kind::Stmt;
  n.text = std::move(text);
  n.tag = std::move(tag);
  return n;
}

Node stmt(std::string text, std::string tag, std::vector<Access> accesses,
          ExprPtr update) {
  Node n = stmt(std::move(text), std::move(tag));
  n.accesses = std::move(accesses);
  n.update = std::move(update);
  return n;
}

ExprPtr cnst(double v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Const;
  e->value = v;
  return e;
}

ExprPtr load(std::string field, int dt, int dx, int dy, int dz) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Load;
  e->name = std::move(field);
  e->dt = dt;
  e->dx = dx;
  e->dy = dy;
  e->dz = dz;
  return e;
}

ExprPtr pref(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Param;
  e->name = std::move(name);
  return e;
}

ExprPtr bin(char op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Binary;
  e->op = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

namespace {
void render(const Node& n, std::ostringstream& os, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  if (n.kind == Node::Kind::Stmt) {
    os << pad << n.text << ";\n";
    return;
  }
  if (n.lo.empty() && n.hi.empty()) {
    // Sequence node (e.g. the precompute prologue): render children flat.
    for (const Node& c : n.body) render(c, os, depth);
    return;
  }
  os << pad << "for " << n.dim << " = " << n.lo << " to " << n.hi << " do\n";
  for (const Node& c : n.body) render(c, os, depth + 1);
}
}  // namespace

std::string print(const Node& root) {
  std::ostringstream os;
  render(root, os, 0);
  return os.str();
}

Node* find_loop(Node& root, const std::string& dim) {
  if (root.kind == Node::Kind::Loop && root.dim == dim) return &root;
  for (Node& c : root.body) {
    if (Node* f = find_loop(c, dim)) return f;
  }
  return nullptr;
}

const Node* find_loop(const Node& root, const std::string& dim) {
  return find_loop(const_cast<Node&>(root), dim);
}

namespace {
void collect_loops(const Node& n, std::vector<std::string>& out) {
  if (n.kind == Node::Kind::Loop && !(n.lo.empty() && n.hi.empty()))
    out.push_back(n.dim);
  for (const Node& c : n.body) collect_loops(c, out);
}
}  // namespace

std::vector<std::string> loop_order(const Node& root) {
  std::vector<std::string> out;
  collect_loops(root, out);
  return out;
}

int remove_loops(Node& root, const std::string& dim) {
  int removed = 0;
  for (auto it = root.body.begin(); it != root.body.end();) {
    if (it->kind == Node::Kind::Loop && it->dim == dim) {
      it = root.body.erase(it);
      ++removed;
    } else {
      removed += remove_loops(*it, dim);
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> stmt_tags(const Node& root) {
  std::vector<std::string> out;
  if (root.kind == Node::Kind::Stmt) {
    out.push_back(root.tag);
    return out;
  }
  for (const Node& c : root.body) {
    const auto child = stmt_tags(c);
    out.insert(out.end(), child.begin(), child.end());
  }
  return out;
}

}  // namespace tempest::dsl::ir
