#pragma once

// The engine adapter for DSL-authored physics: a PhysicsKernel whose
// per-block update evaluates the lowered expression tree (dsl::lower) in
// real_t via a compiled postorder tape, plus a propagator wrapper mirroring
// physics::AcousticPropagator. DSL-authored equations thereby run under
// every schedule — reference, space-blocked, wavefront, fused, diamond —
// with trace, health monitoring, checkpointing, task parallelism and the
// autotuner unchanged, and (because the tape preserves the lowering's
// operand association under the project's value-safe FP flags) the acoustic
// equation authored in the DSL is bit-identical to the hand-written kernel.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tempest/analysis/access.hpp"
#include "tempest/config.hpp"
#include "tempest/core/engine.hpp"
#include "tempest/dsl/lower.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/physics/propagator.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/sparse/series.hpp"

namespace tempest::dsl {

/// Resolve a lowering's parameter names to coefficient grids: user bindings
/// win, then the model's own fields by conventional name ("m", "damp",
/// "vp"). Throws for names neither source provides. Shared by the engine
/// adapter, the typed interpreter and the JIT driver so every execution
/// path binds identically.
[[nodiscard]] std::vector<const grid::Grid3<real_t>*> resolve_params(
    const LoweredKernel& lowered, const physics::AcousticModel& model,
    const ParamBindings& bindings);

/// PhysicsKernel over a LoweredKernel: three-slot time buffer, single
/// injection/gather field, `dt^2 / m` injection scaling (the Devito
/// convention every tempest kernel uses).
class DslKernel {
 public:
  static constexpr int kSubstepsPerStep = 1;
  static constexpr int kFirstStep = 1;

  DslKernel(const LoweredKernel& lowered, const physics::AcousticModel& model,
            const ParamBindings& bindings, grid::TimeBuffer<real_t>& u,
            double dt);

  [[nodiscard]] const grid::Extents3& extents() const {
    return model_.geom.extents;
  }
  [[nodiscard]] int radius() const { return model_.geom.radius(); }
  [[nodiscard]] analysis::AccessSummary access_summary() const {
    return lowered_.summary();
  }

  void apply(int t, const grid::Box3& box);

  [[nodiscard]] real_t inject_scale(int x, int y, int z) const {
    return dt2_ / model_.m(x, y, z);
  }
  [[nodiscard]] core::engine::FieldRefs inject_fields(int t) {
    return {{&u_.at(t + 1)}, 1};
  }
  [[nodiscard]] const grid::Grid3<real_t>& gather_field(int t) const {
    return u_.at(t + 1);
  }
  [[nodiscard]] core::engine::HealthFields health_fields(int t) {
    return {{{{field_name_.c_str(), &u_.at(t)}}}, 1};
  }

 private:
  /// One postorder tape instruction. Binary ops pop two, push one; leaves
  /// push one. Evaluation is real_t throughout, in the exact association
  /// the lowering emitted.
  struct Op {
    enum class K : std::uint8_t { Const, Load, Param, Add, Sub, Mul, Div };
    K k = K::Const;
    real_t c = 0;          ///< Const
    int slot = 0;          ///< Load: 0 = t, 1 = t-1
    std::ptrdiff_t off = 0;  ///< Load: dx*sx + dy*sy + dz
    int param = 0;         ///< Param: index into prm_
  };

  int flatten(const ir::Expr& e);

  const LoweredKernel& lowered_;
  const physics::AcousticModel& model_;
  grid::TimeBuffer<real_t>& u_;
  std::string field_name_;
  std::vector<const real_t*> prm_;  ///< param origins, lowered_.params order
  std::vector<Op> tape_;
  real_t dt2_;
  std::ptrdiff_t sx_, sy_;
};

static_assert(core::engine::PhysicsKernel<DslKernel>);

/// Propagator over a DSL-authored equation: lowers the Eq at construction
/// (space order / spacing from the model's geometry, dt resolved as every
/// propagator resolves it) and mirrors AcousticPropagator's run / resume /
/// checkpoint surface, so DSL kernels slot into surveys, RTM and the bench
/// drivers unchanged.
class DslPropagator {
 public:
  using StepCallback = physics::StepCallback;

  DslPropagator(const Eq& eq, const physics::AcousticModel& model,
                physics::PropagatorOptions opts = {},
                ParamBindings bindings = {}, std::string name = "dsl");

  physics::RunStats run(physics::Schedule sched,
                        const sparse::SparseTimeSeries& src,
                        sparse::SparseTimeSeries* rec = nullptr,
                        const StepCallback& on_step = {});

  physics::RunStats run_from(int t_begin, physics::Schedule sched,
                             const sparse::SparseTimeSeries& src,
                             sparse::SparseTimeSeries* rec = nullptr,
                             const StepCallback& on_step = {});

  [[nodiscard]] resilience::Checkpoint capture(
      int step, std::uint64_t fingerprint,
      const sparse::SparseTimeSeries* rec = nullptr) const;

  void restore(const resilience::Checkpoint& ck);

  [[nodiscard]] const grid::Grid3<real_t>& wavefield(int t) const {
    return u_.at(t);
  }

  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const LoweredKernel& lowered() const { return lowered_; }
  [[nodiscard]] const physics::AcousticModel& model() const { return model_; }
  [[nodiscard]] const physics::PropagatorOptions& options() const {
    return opts_;
  }

 private:
  const physics::AcousticModel& model_;
  physics::PropagatorOptions opts_;
  double dt_;
  LoweredKernel lowered_;
  ParamBindings bindings_;
  grid::TimeBuffer<real_t> u_;
};

}  // namespace tempest::dsl
