#include "tempest/dsl/passes.hpp"

#include <utility>

#include "tempest/util/error.hpp"

namespace tempest::dsl::passes {

using ir::Access;
using ir::loop;
using ir::Node;
using ir::stmt;
using ir::Subscript;

namespace {

// Typed-access constructors. Every statement the pipeline emits carries its
// access list structurally (the pseudocode text is display-only); the
// subscript taxonomy matches the paper's: affine point/interval accesses,
// mask-guarded accesses pinned to the column, and `map(s, i)`-style
// indirection whose target is statically unknowable.
Access on_grid(std::string field, bool is_write, int time, Subscript x,
               Subscript y, Subscript z) {
  Access a;
  a.field = std::move(field);
  a.is_write = is_write;
  a.time = time;
  a.x = x;
  a.y = y;
  a.z = z;
  return a;
}

Access on_table(std::string field, bool is_write, int time) {
  Access a;
  a.field = std::move(field);
  a.is_write = is_write;
  a.time = time;
  a.grid = false;
  return a;
}

constexpr bool kW = true;
constexpr bool kR = false;

const Subscript kC0 = Subscript::affine(0);
const Subscript kStar = Subscript::indirect();

}  // namespace

ir::Node build_timestepping(const std::string& kernel_stmt, bool has_sources,
                            bool has_receivers) {
  // Listing 1: the grid sweep, then the non-affine sparse indirection loops.
  std::vector<Node> time_body;
  time_body.push_back(loop(
      "x", "1", "nx",
      {loop("y", "1", "ny", {loop("z", "1", "nz", {stmt(kernel_stmt, "stencil")})})}));
  if (has_sources) {
    time_body.push_back(loop(
        "s", "1", "len(sources)",
        {loop("i", "1", "np",
              {stmt("xs, ys, zs = map(s, i)", "inject"),
               stmt("u[t+1, xs, ys, zs] += f(src(t, s))", "inject",
                    {on_grid("u", kW, 1, kStar, kStar, kStar),
                     on_grid("u", kR, 1, kStar, kStar, kStar)})})}));
  }
  if (has_receivers) {
    time_body.push_back(loop(
        "r", "1", "len(receivers)",
        {loop("i", "1", "np",
              {stmt("xr, yr, zr = map(r, i)", "interp"),
               stmt("rec[t, r] += w(r, i) * u[t+1, xr, yr, zr]", "interp",
                    {on_table("rec", kW, 0), on_table("rec", kR, 0),
                     on_grid("u", kR, 1, kStar, kStar, kStar)})})}));
  }
  return loop("t", "1", "nt", std::move(time_body));
}

void precompute_and_fuse(ir::Node& root) {
  Node* tloop = ir::find_loop(root, "t");
  TEMPEST_REQUIRE_MSG(tloop != nullptr, "no time loop to transform");

  const bool had_sources = ir::remove_loops(*tloop, "s") > 0;
  const bool had_receivers = ir::remove_loops(*tloop, "r") > 0;

  Node* yloop = ir::find_loop(*tloop, "y");
  TEMPEST_REQUIRE_MSG(yloop != nullptr, "no y loop to fuse into");

  // Fused sparse operators at the same loop level as the stencil z loop
  // (Listing 4): one z2 sweep guarded by the binary mask SM, indirected
  // through SID.
  if (had_sources) {
    yloop->body.push_back(loop(
        "z2", "1", "nz",
        {stmt("u[t+1, x, y, z2] += SM[x, y, z2] * src_dcmp[t, SID[x, y, z2]]",
              "inject-fused",
              {on_grid("u", kW, 1, kC0, kC0, kC0),
               on_grid("u", kR, 1, kC0, kC0, kC0),
               on_grid("SM", kR, 0, kC0, kC0, kC0),
               on_table("src_dcmp", kR, 0),
               on_grid("SID", kR, 0, kC0, kC0, kC0)})}));
  }
  if (had_receivers) {
    // The RID table appears inside the write's subscript: the lowering
    // treats an indirection table read on the left of the assignment as a
    // (conservative) write as well — the schedule may not reorder it past a
    // later read of the same table.
    yloop->body.push_back(loop(
        "z3", "1", "nz",
        {stmt("rec[t, RID[x, y, z3]] += RM[x, y, z3] * w_dcmp[RID[x, y, z3]]"
              " * u[t+1, x, y, z3]",
              "interp-fused",
              {on_table("rec", kW, 0), on_table("rec", kR, 0),
               on_grid("RID", kW, 0, kC0, kC0, kC0),
               on_grid("RID", kR, 0, kC0, kC0, kC0),
               on_grid("RM", kR, 0, kC0, kC0, kC0),
               on_table("w_dcmp", kR, 0),
               on_grid("RID", kR, 0, kC0, kC0, kC0),
               on_grid("u", kR, 1, kC0, kC0, kC0)})}));
  }

  // Precompute prologue (Listings 2 and 3), hoisted before the time loop by
  // wrapping the whole nest in a sequence. The root becomes a zero-trip
  // pseudo-loop acting as a statement list, printed as-is.
  Node seq = loop("<prologue>", "", "", {});
  if (had_sources) {
    seq.body.push_back(
        stmt("probe: inject unit sources over an empty grid (Listing 2)",
             "precompute"));
    seq.body.push_back(
        stmt("build SM (binary mask) and SID (unique ids) from non-zeros",
             "precompute"));
    seq.body.push_back(
        stmt("decompose wavelets: src_dcmp[t, SID[xs,ys,zs]] += f(src(t, s))"
             " (Listing 3)",
             "precompute",
             {on_table("src_dcmp", kW, 0), on_table("src_dcmp", kR, 0),
              on_grid("SID", kW, 0, kStar, kStar, kStar),
              on_grid("SID", kR, 0, kStar, kStar, kStar)}));
  }
  if (had_receivers) {
    seq.body.push_back(
        stmt("build RM/RID and per-point receiver weights w_dcmp",
             "precompute"));
  }
  seq.body.push_back(std::move(root));
  root = std::move(seq);
}

void compress_iteration_space(ir::Node& root) {
  // Listing 5: z2 runs over the column's non-zero count only; Sp_SID packs
  // (z index, id) pairs per column.
  if (Node* z2 = ir::find_loop(root, "z2")) {
    z2->hi = "nnz_mask[x][y]";
    z2->body.clear();
    z2->body.push_back(stmt("zind = Sp_SID[x, y, z2].z", "inject-fused",
                            {on_grid("Sp_SID", kR, 0, kC0, kC0, kC0)}));
    // The packed column keeps (x, y) grid-aligned; the z target comes from
    // the table, so the write lands at an unknowable z within the column.
    z2->body.push_back(
        stmt("u[t+1, x, y, zind] += src_dcmp[t, Sp_SID[x, y, z2].id]",
             "inject-fused",
             {on_grid("u", kW, 1, kC0, kC0, kStar),
              on_grid("u", kR, 1, kC0, kC0, kStar),
              on_table("src_dcmp", kR, 0),
              on_grid("Sp_SID", kR, 0, kC0, kC0, kC0)}));
  }
  if (Node* z3 = ir::find_loop(root, "z3")) {
    z3->hi = "rnnz_mask[x][y]";
    z3->body.clear();
    z3->body.push_back(stmt("zind = Sp_RID[x, y, z3].z", "interp-fused",
                            {on_grid("Sp_RID", kR, 0, kC0, kC0, kC0)}));
    z3->body.push_back(
        stmt("rec[t, Sp_RID[x, y, z3].rec] += Sp_RID[x, y, z3].w"
             " * u[t+1, x, y, zind]",
             "interp-fused",
             {on_table("rec", kW, 0), on_table("rec", kR, 0),
              on_grid("Sp_RID", kW, 0, kC0, kC0, kC0),
              on_grid("Sp_RID", kR, 0, kC0, kC0, kC0),
              on_grid("Sp_RID", kR, 0, kC0, kC0, kC0),
              on_grid("u", kR, 1, kC0, kC0, kStar)}));
  }
}

void time_tile(ir::Node& root, int slope) {
  // slope <= 0 used to be accepted and silently emitted a degenerate nest
  // whose wave-front windows never move (slope 0) or move backwards
  // (negative): the tiled loops would visit cells before their
  // dependencies are computed.
  if (slope <= 0) {
    throw util::InvalidScheduleError(
        "time_tile: wave-front slope must be positive (the skew must cover "
        "the stencil radius per timestep), got " + std::to_string(slope));
  }
  // Locate the time loop (possibly under the precompute prologue).
  Node* tloop = ir::find_loop(root, "t");
  TEMPEST_REQUIRE_MSG(tloop != nullptr, "no time loop to tile");

  // Clip the spatial loops to the tile's wave-front window.
  Node* xloop = ir::find_loop(*tloop, "x");
  Node* yloop = xloop ? ir::find_loop(*xloop, "y") : nullptr;
  TEMPEST_REQUIRE_MSG(xloop != nullptr && yloop != nullptr,
                      "no spatial nest to tile");
  const std::string s = std::to_string(slope);
  xloop->lo = "max(1, xs - " + s + "*t)";
  xloop->hi = "min(nx, xs + tile_x - " + s + "*t)";
  yloop->lo = "max(1, ys - " + s + "*t)";
  yloop->hi = "min(ny, ys + tile_y - " + s + "*t)";

  // Rebuild: tt / xs / ys tile loops around the (shortened) time loop.
  Node inner_t = *tloop;
  inner_t.lo = "tt";
  inner_t.hi = "min(tt + tile_t, nt)";
  Node tiled =
      loop("tt", "1", "nt",
           {loop("xs", "slope*tt", "nx + slope*(tt+tile_t)",
                 {loop("ys", "slope*tt", "ny + slope*(tt+tile_t)",
                       {std::move(inner_t)})})});
  *tloop = std::move(tiled);
}

}  // namespace tempest::dsl::passes
