#pragma once

#include "tempest/dsl/ir.hpp"

namespace tempest::dsl::passes {

/// The lowering pipeline of the mini-compiler, mirroring Section II of the
/// paper. Each pass is a standalone tree rewrite; the Operator composes them
/// according to the requested schedule, and tests assert the printed shape
/// of each stage against the corresponding paper listing.

/// Stage 0 (Listing 1): canonical time-stepping nest — the grid sweep with
/// the stencil update, followed by the off-the-grid sparse operator loops
/// (source indirection loop, receiver indirection loop).
[[nodiscard]] ir::Node build_timestepping(const std::string& kernel_stmt,
                                          bool has_sources,
                                          bool has_receivers);

/// Stage 1 (Listings 2–4): precompute the sparse operators' effect (probe,
/// masks, decomposition — emitted as a prologue before the time loop) and
/// fuse the now grid-aligned injection/interpolation into the stencil nest
/// at the z-loop level, guarded by the source mask SM / indirected by SID.
void precompute_and_fuse(ir::Node& root);

/// Stage 2 (Listing 5, Fig. 6): shrink the fused z2 loop from the full z
/// extent to the per-column non-zero count nnz_mask[x][y], indirecting
/// through the packed Sp_SID.
void compress_iteration_space(ir::Node& root);

/// Stage 3 (Listing 6): wave-front temporal blocking — wrap the nest in
/// (time-tile, skewed x-tile, skewed y-tile) loops and clip the inner
/// spatial loops to the tile's wave-front window.
void time_tile(ir::Node& root, int slope);

}  // namespace tempest::dsl::passes
