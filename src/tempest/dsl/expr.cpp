#include "tempest/dsl/expr.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "tempest/util/error.hpp"

namespace tempest::dsl {

const char* to_string(DerivKind k) {
  switch (k) {
    case DerivKind::Dt: return "dt";
    case DerivKind::Dt2: return "dt2";
    case DerivKind::Laplace: return "laplace";
    case DerivKind::RotLapHz: return "Hz";
    case DerivKind::RotLapHp: return "Hp";
    case DerivKind::Div: return "div";
    case DerivKind::GradSym: return "grad_sym";
    case DerivKind::Trace: return "tr";
  }
  return "?";
}

namespace {
const char* op_str(BinOp op) {
  switch (op) {
    case BinOp::Add: return " + ";
    case BinOp::Sub: return " - ";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
  }
  return "?";
}

int precedence(BinOp op) {
  return (op == BinOp::Add || op == BinOp::Sub) ? 1 : 2;
}

void render(const ExprNode& n, std::ostream& os, int parent_prec) {
  switch (n.kind) {
    case ExprNode::Kind::Constant: os << n.value; return;
    case ExprNode::Kind::Param: os << n.name; return;
    case ExprNode::Kind::Field:
      os << n.name;
      if (n.time_offset == 1) os << ".forward";
      if (n.time_offset == -1) os << ".backward";
      return;
    case ExprNode::Kind::Deriv:
      os << to_string(n.deriv) << '(';
      render(n.children[0].node(), os, 0);
      os << ')';
      return;
    case ExprNode::Kind::Binary: {
      const int prec = precedence(n.op);
      const bool parens = prec < parent_prec;
      if (parens) os << '(';
      render(n.children[0].node(), os, prec);
      os << op_str(n.op);
      render(n.children[1].node(), os, prec + 1);
      if (parens) os << ')';
      return;
    }
  }
}
}  // namespace

std::string Expr::str() const {
  std::ostringstream os;
  render(node(), os, 0);
  return os.str();
}

Expr constant(double v) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Constant;
  n->value = v;
  return Expr(std::move(n));
}

Expr field(std::string name, int time_offset) {
  TEMPEST_REQUIRE(time_offset >= -1 && time_offset <= 1);
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Field;
  n->name = std::move(name);
  n->time_offset = time_offset;
  return Expr(std::move(n));
}

Expr param(std::string name) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Param;
  n->name = std::move(name);
  return Expr(std::move(n));
}

Expr deriv(DerivKind k, Expr arg) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Deriv;
  n->deriv = k;
  n->children.push_back(std::move(arg));
  return Expr(std::move(n));
}

Expr binary(BinOp op, Expr l, Expr r) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Binary;
  n->op = op;
  n->children.push_back(std::move(l));
  n->children.push_back(std::move(r));
  return Expr(std::move(n));
}

Expr operator+(Expr a, Expr b) { return binary(BinOp::Add, std::move(a), std::move(b)); }
Expr operator-(Expr a, Expr b) { return binary(BinOp::Sub, std::move(a), std::move(b)); }
Expr operator*(Expr a, Expr b) { return binary(BinOp::Mul, std::move(a), std::move(b)); }
Expr operator/(Expr a, Expr b) { return binary(BinOp::Div, std::move(a), std::move(b)); }

TimeFunction::TimeFunction(std::string name, Grid grid, int space_order,
                           int time_order)
    : name_(std::move(name)),
      grid_(grid),
      space_order_(space_order),
      time_order_(time_order) {
  TEMPEST_REQUIRE(space_order >= 2 && space_order % 2 == 0);
  TEMPEST_REQUIRE(time_order == 1 || time_order == 2);
  TEMPEST_REQUIRE(!name_.empty());
}

SparseTimeFunction::SparseTimeFunction(std::string name,
                                       sparse::CoordList coords, int nt)
    : name_(std::move(name)), coords_(std::move(coords)), nt_(nt) {
  TEMPEST_REQUIRE(nt > 0);
  TEMPEST_REQUIRE(!name_.empty());
}

namespace {
void walk(const ExprNode& n, const std::function<void(const ExprNode&)>& fn) {
  fn(n);
  for (const Expr& c : n.children) walk(c.node(), fn);
}
}  // namespace

bool contains_deriv(const Expr& e, DerivKind k,
                    const std::string& field_name) {
  bool found = false;
  walk(e.node(), [&](const ExprNode& n) {
    if (n.kind == ExprNode::Kind::Deriv && n.deriv == k) {
      const ExprNode& arg = n.children[0].node();
      if (field_name.empty() ||
          (arg.kind == ExprNode::Kind::Field && arg.name == field_name)) {
        found = true;
      }
    }
  });
  return found;
}

std::vector<std::string> referenced_fields(const Expr& e) {
  std::vector<std::string> out;
  walk(e.node(), [&](const ExprNode& n) {
    if (n.kind == ExprNode::Kind::Field &&
        std::find(out.begin(), out.end(), n.name) == out.end()) {
      out.push_back(n.name);
    }
  });
  return out;
}

std::vector<std::string> referenced_params(const Expr& e) {
  std::vector<std::string> out;
  walk(e.node(), [&](const ExprNode& n) {
    if (n.kind == ExprNode::Kind::Param &&
        std::find(out.begin(), out.end(), n.name) == out.end()) {
      out.push_back(n.name);
    }
  });
  return out;
}

Eq solve(const Expr& equation, const Expr& target) {
  // The explicit wave updates are linear in the target with the target's
  // coefficient supplied by the Dt/Dt2 discretisation. We validate the
  // shape: the target must be a forward field reference, and the equation
  // must involve a time derivative of that field (otherwise there is
  // nothing to step).
  const ExprNode& t = target.node();
  TEMPEST_REQUIRE_MSG(
      t.kind == ExprNode::Kind::Field && t.time_offset == 1,
      "solve() target must be a field's forward reference");
  const bool has_time_deriv = contains_deriv(equation, DerivKind::Dt, t.name) ||
                              contains_deriv(equation, DerivKind::Dt2, t.name);
  TEMPEST_REQUIRE_MSG(has_time_deriv,
                      "equation has no time derivative of the target field");
  // Record the solved form symbolically: target = solved(equation). The
  // Operator lowers the recognised equation class to its discretised update.
  return Eq{target, equation};
}

}  // namespace tempest::dsl
