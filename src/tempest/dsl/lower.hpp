#pragma once

// Finite-difference lowering of symbolic equations into the typed IR — the
// generic frontend path that removes the three-way KernelClass bottleneck.
//
// `lower_kernel` takes a solved Eq (target = some field's forward reference,
// rhs = the residual equation, as produced by dsl::solve) and discretises
// Dt/Dt2/Laplace with stencil::coefficients at the requested space order,
// producing a LoweredKernel: a pointwise update expression tree
// (ir::ExprPtr), the typed access footprint of the stencil statement, and
// the analysis::AccessSummary the legality verifier and engine consume.
//
// The lowering is *association-preserving*: the emitted tree reproduces the
// operand order and grouping of the hand-written physics kernels (Laplacian
// flux first, then the remaining equation terms in authoring order; factor
// products folded left-to-right), so evaluating it in real_t — whether by
// the DslKernel tape, the scalar interpreter's typed path, or the emitted C
// — is bit-identical to the AOT kernels under the project's value-safe FP
// flags.

#include <map>
#include <string>
#include <vector>

#include "tempest/analysis/access.hpp"
#include "tempest/config.hpp"
#include "tempest/dsl/expr.hpp"
#include "tempest/dsl/ir.hpp"
#include "tempest/grid/grid3.hpp"

namespace tempest::dsl {

/// Coefficient grids referenced by the equation beyond the model's own
/// (`m`, `damp`, `vp` resolve against the AcousticModel automatically).
/// Every bound grid must share the model fields' extents and halo.
using ParamBindings = std::map<std::string, const grid::Grid3<real_t>*>;

/// A symbolic equation discretised into typed IR: everything downstream
/// (analysis, engine adapter, codegen, interpreter) consumes this instead of
/// pattern-matched kernel classes.
struct LoweredKernel {
  std::string name = "dsl";    ///< kernel name (display, generated symbols)
  std::string field = "u";     ///< the wavefield the update writes
  int space_order = 4;
  double spacing = 10.0;       ///< grid spacing h
  double dt = 1.0;             ///< timestep (ms)

  /// Pointwise update: field[t+1, x, y, z] = update, evaluated in real_t.
  ir::ExprPtr update;

  /// Coefficient grids referenced by the update, in first-use order. The
  /// runtime adapter binds each name to a Grid3 (model fields or user
  /// bindings).
  std::vector<std::string> params;

  /// Typed accesses of the stencil statement: the write at the centre plus
  /// per-time-slice read hulls derived from the update tree's loads.
  std::vector<ir::Access> accesses;

  /// Stencil radius: max |spatial offset| over the update's loads.
  [[nodiscard]] int radius() const;

  /// Summary for the legality verifier / engine (radius, time_reads, ...).
  [[nodiscard]] analysis::AccessSummary summary() const;

  /// The opaque call rendered into the listings: "A_<name>(t, x, y, z)".
  [[nodiscard]] std::string stencil_text() const;

  /// The typed stencil statement (text + tag + accesses + update tree).
  [[nodiscard]] ir::Node stencil_stmt() const;
};

/// Discretise `eq` (lhs must be a forward field reference; rhs the residual
/// equation that equals zero) at the given space order / spacing / timestep.
/// Supports any equation that is linear in the target's forward value with
/// Dt/Dt2/Laplace derivatives of the target field and pointwise Param
/// coefficients. Throws util::PreconditionError for shapes outside that
/// fragment (tensor derivatives, multi-field coupling, division by the
/// unknown).
[[nodiscard]] LoweredKernel lower_kernel(const Eq& eq, int space_order,
                                         double spacing, double dt,
                                         std::string name = "dsl");

}  // namespace tempest::dsl
