#include "tempest/dsl/lower.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "tempest/config.hpp"
#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"

namespace tempest::dsl {

namespace {

using ir::bin;
using ir::cnst;
using ir::ExprPtr;
using ir::load;
using ir::pref;

/// One additive term of the residual equation: sign * (left-associated
/// product of factors). `is_fwd` terms multiply the unknown forward value,
/// so their factor product is the unknown's coefficient; `spatial` marks
/// terms containing the discretised Laplacian flux, which the emission
/// orders first in the numerator (the hand-written kernels compute `lap`
/// before the time-history terms, and float addition is not associative).
struct Term {
  int sign = 1;
  std::vector<ExprPtr> factors;
  bool is_fwd = false;
  bool spatial = false;
};

struct Ctx {
  std::string field;
  int space_order = 4;
  double spacing = 10.0;
  double dt = 1.0;
  std::vector<std::string> params;
};

/// Second-derivative weight for |offset| k, folded to field precision the
/// way the physics kernels fold it (cast to real_t, stored back in double —
/// every real_t is exactly representable, so evaluation casts round-trip).
double folded_weight(const stencil::Coeffs& c, int r, int k) {
  return static_cast<double>(
      static_cast<real_t>(c.weights[static_cast<std::size_t>(r + k)]));
}

/// The isotropic Laplacian flux: acc = 3*w0*u + sum_k wk*(z∓k + y∓k + x∓k),
/// scaled by 1/h^2. Operand order and grouping reproduce
/// physics::update_block exactly.
ExprPtr laplace_tree(const Ctx& ctx) {
  const stencil::Coeffs c = stencil::central(2, ctx.space_order);
  const int r = stencil::radius_for_order(ctx.space_order);
  ExprPtr acc = bin('*', bin('*', cnst(3.0), cnst(folded_weight(c, r, 0))),
                    load(ctx.field, 0, 0, 0, 0));
  for (int k = 1; k <= r; ++k) {
    ExprPtr six =
        bin('+', load(ctx.field, 0, 0, 0, -k), load(ctx.field, 0, 0, 0, k));
    six = bin('+', six, load(ctx.field, 0, 0, -k, 0));
    six = bin('+', six, load(ctx.field, 0, 0, k, 0));
    six = bin('+', six, load(ctx.field, 0, -k, 0, 0));
    six = bin('+', six, load(ctx.field, 0, k, 0, 0));
    acc = bin('+', acc, bin('*', cnst(folded_weight(c, r, k)), six));
  }
  return bin('*', acc, cnst(1.0 / (ctx.spacing * ctx.spacing)));
}

bool has_fwd(const std::vector<Term>& ts) {
  return std::any_of(ts.begin(), ts.end(),
                     [](const Term& t) { return t.is_fwd; });
}

ExprPtr product(const Term& t) {
  if (t.factors.empty()) return cnst(1.0);
  ExprPtr p = t.factors.front();
  for (std::size_t i = 1; i < t.factors.size(); ++i) {
    p = bin('*', p, t.factors[i]);
  }
  return p;
}

/// Signed left-associated sum of terms.
ExprPtr chain(const std::vector<Term>& ts) {
  TEMPEST_REQUIRE(!ts.empty());
  ExprPtr e = ts.front().sign > 0
                  ? product(ts.front())
                  : bin('-', cnst(0.0), product(ts.front()));
  for (std::size_t i = 1; i < ts.size(); ++i) {
    e = bin(ts[i].sign > 0 ? '+' : '-', e, product(ts[i]));
  }
  return e;
}

/// Collapse a fwd-free side of a product into a (sign, factors, spatial)
/// prefix/suffix: a single term passes its factor list through (so
/// `m * dt2(u)` lowers to the hand-written `(m*idt2)*(...)` grouping), a
/// multi-term side folds into one parenthesised factor.
struct Folded {
  int sign = 1;
  std::vector<ExprPtr> factors;
  bool spatial = false;
};

Folded fold_side(std::vector<Term> ts) {
  if (ts.size() == 1) {
    return {ts.front().sign, std::move(ts.front().factors),
            ts.front().spatial};
  }
  const bool spatial =
      std::any_of(ts.begin(), ts.end(), [](const Term& t) { return t.spatial; });
  return {1, {chain(ts)}, spatial};
}

std::vector<Term> linearize(const ExprNode& n, Ctx& ctx);

std::vector<Term> lower_deriv(const ExprNode& n, Ctx& ctx) {
  const ExprNode& arg = n.children[0].node();
  TEMPEST_REQUIRE_MSG(arg.kind == ExprNode::Kind::Field &&
                          arg.name == ctx.field && arg.time_offset == 0,
                      "lower_kernel: derivatives must apply to the target "
                      "field at time t");
  switch (n.deriv) {
    case DerivKind::Dt2: {
      // (u[t+1] - 2 u[t] + u[t-1]) / dt^2, split into the unknown's
      // coefficient and the history part: idt2*fwd - idt2*(2u - up).
      const double idt2 = 1.0 / (ctx.dt * ctx.dt);
      Term a;
      a.is_fwd = true;
      a.factors = {cnst(idt2)};
      Term b;
      b.sign = -1;
      b.factors = {cnst(idt2),
                   bin('-', bin('*', cnst(2.0), load(ctx.field, 0, 0, 0, 0)),
                       load(ctx.field, -1, 0, 0, 0))};
      return {std::move(a), std::move(b)};
    }
    case DerivKind::Dt: {
      // (u[t+1] - u[t-1]) / (2 dt): i2dt*fwd - i2dt*up.
      const double i2dt = 1.0 / (2.0 * ctx.dt);
      Term a;
      a.is_fwd = true;
      a.factors = {cnst(i2dt)};
      Term b;
      b.sign = -1;
      b.factors = {cnst(i2dt), load(ctx.field, -1, 0, 0, 0)};
      return {std::move(a), std::move(b)};
    }
    case DerivKind::Laplace: {
      Term t;
      t.spatial = true;
      t.factors = {laplace_tree(ctx)};
      return {std::move(t)};
    }
    default:
      throw util::PreconditionError(
          std::string("lower_kernel: unsupported derivative in the typed "
                      "lowering: ") +
          to_string(n.deriv));
  }
}

std::vector<Term> linearize(const ExprNode& n, Ctx& ctx) {
  switch (n.kind) {
    case ExprNode::Kind::Constant: {
      Term t;
      t.factors = {cnst(n.value)};
      return {std::move(t)};
    }
    case ExprNode::Kind::Param: {
      if (std::find(ctx.params.begin(), ctx.params.end(), n.name) ==
          ctx.params.end()) {
        ctx.params.push_back(n.name);
      }
      Term t;
      t.factors = {pref(n.name)};
      return {std::move(t)};
    }
    case ExprNode::Kind::Field: {
      TEMPEST_REQUIRE_MSG(n.name == ctx.field,
                          "lower_kernel: coupled multi-field equations are "
                          "not supported by the typed lowering (field '" +
                              n.name + "')");
      Term t;
      if (n.time_offset == 1) {
        t.is_fwd = true;
      } else {
        t.factors = {load(ctx.field, n.time_offset, 0, 0, 0)};
      }
      return {std::move(t)};
    }
    case ExprNode::Kind::Deriv:
      return lower_deriv(n, ctx);
    case ExprNode::Kind::Binary: {
      auto lhs = linearize(n.children[0].node(), ctx);
      auto rhs = linearize(n.children[1].node(), ctx);
      switch (n.op) {
        case BinOp::Add: {
          lhs.insert(lhs.end(), std::make_move_iterator(rhs.begin()),
                     std::make_move_iterator(rhs.end()));
          return lhs;
        }
        case BinOp::Sub: {
          for (Term& t : rhs) t.sign = -t.sign;
          lhs.insert(lhs.end(), std::make_move_iterator(rhs.begin()),
                     std::make_move_iterator(rhs.end()));
          return lhs;
        }
        case BinOp::Mul: {
          const bool lf = has_fwd(lhs);
          const bool rf = has_fwd(rhs);
          TEMPEST_REQUIRE_MSG(!(lf && rf),
                              "lower_kernel: equation is nonlinear in the "
                              "target field");
          if (!lf) {
            // Coefficient on the left: prefix its factors (m * dt2(u)
            // becomes (m*idt2)*..., matching the hand-written grouping).
            Folded f = fold_side(std::move(lhs));
            for (Term& t : rhs) {
              t.sign *= f.sign;
              t.factors.insert(t.factors.begin(), f.factors.begin(),
                               f.factors.end());
              t.spatial = t.spatial || f.spatial;
            }
            return rhs;
          }
          Folded f = fold_side(std::move(rhs));
          for (Term& t : lhs) {
            t.sign *= f.sign;
            t.factors.insert(t.factors.end(), f.factors.begin(),
                             f.factors.end());
            t.spatial = t.spatial || f.spatial;
          }
          return lhs;
        }
        case BinOp::Div: {
          TEMPEST_REQUIRE_MSG(
              !has_fwd(lhs) && !has_fwd(rhs),
              "lower_kernel: division involving the unknown forward value "
              "is not supported (solve for the target first)");
          Term t;
          t.spatial = std::any_of(lhs.begin(), lhs.end(),
                                  [](const Term& a) { return a.spatial; });
          t.factors = {bin('/', chain(lhs), chain(rhs))};
          return {std::move(t)};
        }
      }
      break;
    }
  }
  throw util::PreconditionError("lower_kernel: unsupported expression node");
}

/// Per-time-slice hull of the update tree's loads of the target field.
struct AxisHull {
  int lo[3] = {0, 0, 0};
  int hi[3] = {0, 0, 0};

  void expand(int dx, int dy, int dz) {
    const int off[3] = {dx, dy, dz};
    for (int a = 0; a < 3; ++a) {
      lo[a] = std::min(lo[a], off[a]);
      hi[a] = std::max(hi[a], off[a]);
    }
  }

  [[nodiscard]] int radius() const {
    int r = 0;
    for (int a = 0; a < 3; ++a) {
      r = std::max({r, std::abs(lo[a]), std::abs(hi[a])});
    }
    return r;
  }
};

void collect_loads(const ir::Expr& e, const std::string& field,
                   std::map<int, AxisHull>& hulls) {
  if (e.kind == ir::Expr::Kind::Load && e.name == field) {
    hulls[e.dt].expand(e.dx, e.dy, e.dz);
  }
  if (e.a) collect_loads(*e.a, field, hulls);
  if (e.b) collect_loads(*e.b, field, hulls);
}

/// Read slices ordered the way the kernel summaries declare them: widest
/// hull first, ties broken by the later time slice ({0, -1} for the second
/// -order wave equations).
std::vector<int> ordered_reads(const std::map<int, AxisHull>& hulls) {
  std::vector<int> dts;
  dts.reserve(hulls.size());
  for (const auto& [dt, hull] : hulls) dts.push_back(dt);
  std::stable_sort(dts.begin(), dts.end(), [&](int a, int b) {
    const int ra = hulls.at(a).radius();
    const int rb = hulls.at(b).radius();
    if (ra != rb) return ra > rb;
    return a > b;
  });
  return dts;
}

}  // namespace

int LoweredKernel::radius() const {
  int r = 0;
  for (const ir::Access& a : accesses) {
    for (const ir::Subscript& s : {a.x, a.y, a.z}) {
      if (!s.star) r = std::max({r, std::abs(s.lo), std::abs(s.hi)});
    }
  }
  return r;
}

analysis::AccessSummary LoweredKernel::summary() const {
  analysis::AccessSummary s;
  s.kernel = name;
  s.field = field;
  s.radius = radius();
  s.substeps = 1;
  s.time_reads.clear();
  for (const ir::Access& a : accesses) {
    if (!a.is_write) s.time_reads.push_back(a.time);
  }
  s.write_radius = 0;
  return s;
}

std::string LoweredKernel::stencil_text() const {
  return "A_" + name + "(t, x, y, z)";
}

ir::Node LoweredKernel::stencil_stmt() const {
  return ir::stmt(stencil_text(), "stencil", accesses, update);
}

LoweredKernel lower_kernel(const Eq& eq, int space_order, double spacing,
                           double dt, std::string name) {
  const ExprNode& lhs = eq.lhs.node();
  TEMPEST_REQUIRE_MSG(lhs.kind == ExprNode::Kind::Field &&
                          lhs.time_offset == 1,
                      "lower_kernel: lhs must be a field's forward reference "
                      "(use dsl::solve)");
  TEMPEST_REQUIRE(space_order >= 2 && space_order % 2 == 0);
  TEMPEST_REQUIRE(spacing > 0.0 && dt > 0.0);

  Ctx ctx;
  ctx.field = lhs.name;
  ctx.space_order = space_order;
  ctx.spacing = spacing;
  ctx.dt = dt;

  std::vector<Term> terms = linearize(eq.rhs.node(), ctx);
  std::vector<Term> coeff;
  std::vector<Term> rest;
  for (Term& t : terms) {
    (t.is_fwd ? coeff : rest).push_back(std::move(t));
  }
  TEMPEST_REQUIRE_MSG(!coeff.empty(),
                      "lower_kernel: equation has no time derivative of the "
                      "target field (nothing to step)");
  TEMPEST_REQUIRE_MSG(!rest.empty(),
                      "lower_kernel: equation determines the target "
                      "identically zero");

  // eq = A*fwd + rest = 0  =>  fwd = (-rest) / A. The numerator orders the
  // spatial flux first (hand-written kernels compute `lap` before the
  // history terms), then the remaining terms in authoring order.
  for (Term& t : rest) t.sign = -t.sign;
  std::stable_partition(rest.begin(), rest.end(),
                        [](const Term& t) { return t.spatial; });

  LoweredKernel k;
  k.name = std::move(name);
  k.field = ctx.field;
  k.space_order = space_order;
  k.spacing = spacing;
  k.dt = dt;
  k.update = bin('/', chain(rest), chain(coeff));
  k.params = std::move(ctx.params);

  std::map<int, AxisHull> hulls;
  collect_loads(*k.update, k.field, hulls);
  ir::Access w;
  w.field = k.field;
  w.is_write = true;
  w.time = 1;
  k.accesses.push_back(std::move(w));
  for (int dt_read : ordered_reads(hulls)) {
    const AxisHull& h = hulls.at(dt_read);
    ir::Access r;
    r.field = k.field;
    r.time = dt_read;
    r.x = ir::Subscript::range(h.lo[0], h.hi[0]);
    r.y = ir::Subscript::range(h.lo[1], h.hi[1]);
    r.z = ir::Subscript::range(h.lo[2], h.hi[2]);
    k.accesses.push_back(std::move(r));
  }
  return k;
}

}  // namespace tempest::dsl
