#pragma once

#include <functional>

#include "tempest/config.hpp"
#include "tempest/dsl/expr.hpp"
#include "tempest/dsl/lower.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/grid/time_buffer.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/sparse/interp.hpp"
#include "tempest/sparse/series.hpp"

namespace tempest::dsl {

/// Reference interpreter for scalar second-order-in-time equations.
///
/// Evaluates the *symbolic equation tree* point-by-point on tiny grids —
/// no pattern matching, no hand-written kernel — and is therefore an
/// independent oracle for the compiled acoustic kernel: tests assert the
/// optimised propagator and the interpreter agree.
///
/// Semantics: each timestep solves equation(u.forward) == 0 for u.forward at
/// every interior point. The equation must be *linear* in the forward value
/// (true of every explicit FD update); linearity lets the interpreter solve
/// by evaluating the tree at two trial values:
///   A = eq(1) - eq(0),  B = eq(0),  u.forward = -B / A.
/// Derivative nodes are evaluated with the reference stencil helpers;
/// Param nodes resolve by name against the model ("m", "damp").
class Interpreter {
 public:
  /// `update` is the Eq produced by solve(); `space_order` controls the
  /// derivative stencils; `dt` the timestep.
  Interpreter(Eq update, const physics::AcousticModel& model, double dt);

  /// Propagate src for src.nt() steps with naive injection (scale dt^2/m)
  /// and return the final wavefield. O(points * nt * tree) — tiny grids.
  [[nodiscard]] grid::Grid3<real_t> run(const sparse::SparseTimeSeries& src,
                                        sparse::InterpKind kind) const;

 private:
  Eq update_;
  const physics::AcousticModel& model_;
  double dt_;
  std::string field_name_;
};

/// Callback invoked for every grid load the typed evaluator performs:
/// (field, dt, dx, dy, dz). Lets tests observe the *dynamic* access
/// footprint of an update tree and compare it against the structural one
/// the lowering declared.
using LoadObserver =
    std::function<void(const std::string& field, int dt, int dx, int dy,
                       int dz)>;

/// Tree-walking evaluator for *typed IR* update trees (dsl::lower output) —
/// the second interpreter path of the frontend. Unlike Interpreter, which
/// walks the symbolic equation in double and re-discretises derivatives on
/// the fly, this one evaluates the already-discretised ir::Expr in real_t
/// with the exact operand association the lowering emitted, so its results
/// are bit-identical to the DslKernel tape and to JIT-compiled DSL kernels.
/// Used as the cross-check oracle for both.
class TypedInterpreter {
 public:
  TypedInterpreter(const LoweredKernel& lowered,
                   const physics::AcousticModel& model, double dt,
                   ParamBindings bindings = {});

  /// Evaluate the update at one interior point. `observer`, when set, is
  /// called for every Load the walk performs.
  [[nodiscard]] real_t eval_at(const grid::TimeBuffer<real_t>& u, int t,
                               int x, int y, int z,
                               const LoadObserver& observer = {}) const;

  /// Propagate src for src.nt() steps with naive injection (scale dt^2/m)
  /// and return the final wavefield — same driver loop as Interpreter::run,
  /// but through the typed tree.
  [[nodiscard]] grid::Grid3<real_t> run(const sparse::SparseTimeSeries& src,
                                        sparse::InterpKind kind) const;

 private:
  const LoweredKernel& lowered_;
  const physics::AcousticModel& model_;
  double dt_;
  ParamBindings bindings_;
};

}  // namespace tempest::dsl
