#pragma once

#include "tempest/config.hpp"
#include "tempest/dsl/expr.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/sparse/interp.hpp"
#include "tempest/sparse/series.hpp"

namespace tempest::dsl {

/// Reference interpreter for scalar second-order-in-time equations.
///
/// Evaluates the *symbolic equation tree* point-by-point on tiny grids —
/// no pattern matching, no hand-written kernel — and is therefore an
/// independent oracle for the compiled acoustic kernel: tests assert the
/// optimised propagator and the interpreter agree.
///
/// Semantics: each timestep solves equation(u.forward) == 0 for u.forward at
/// every interior point. The equation must be *linear* in the forward value
/// (true of every explicit FD update); linearity lets the interpreter solve
/// by evaluating the tree at two trial values:
///   A = eq(1) - eq(0),  B = eq(0),  u.forward = -B / A.
/// Derivative nodes are evaluated with the reference stencil helpers;
/// Param nodes resolve by name against the model ("m", "damp").
class Interpreter {
 public:
  /// `update` is the Eq produced by solve(); `space_order` controls the
  /// derivative stencils; `dt` the timestep.
  Interpreter(Eq update, const physics::AcousticModel& model, double dt);

  /// Propagate src for src.nt() steps with naive injection (scale dt^2/m)
  /// and return the final wavefield. O(points * nt * tree) — tiny grids.
  [[nodiscard]] grid::Grid3<real_t> run(const sparse::SparseTimeSeries& src,
                                        sparse::InterpKind kind) const;

 private:
  Eq update_;
  const physics::AcousticModel& model_;
  double dt_;
  std::string field_name_;
};

}  // namespace tempest::dsl
