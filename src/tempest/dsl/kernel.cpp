#include "tempest/dsl/kernel.hpp"

#include <optional>
#include <utility>

#include "tempest/analysis/statics/lint.hpp"
#include "tempest/analysis/statics/verify.hpp"
#include "tempest/util/error.hpp"

namespace tempest::dsl {

namespace {

constexpr int kMaxStack = 64;

/// Fold constant subtrees in *field precision*: (3 * w0) folds to the same
/// real_t the hand-written kernel computes at runtime (float multiply of
/// float operands), so folding never perturbs bits — it only shortens the
/// tape.
std::optional<real_t> fold(const ir::Expr& e) {
  switch (e.kind) {
    case ir::Expr::Kind::Const:
      return static_cast<real_t>(e.value);
    case ir::Expr::Kind::Binary: {
      const auto a = fold(*e.a);
      if (!a) return std::nullopt;
      const auto b = fold(*e.b);
      if (!b) return std::nullopt;
      switch (e.op) {
        case '+': return *a + *b;
        case '-': return *a - *b;
        case '*': return *a * *b;
        case '/': return *a / *b;
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

std::vector<const grid::Grid3<real_t>*> resolve_params(
    const LoweredKernel& lowered, const physics::AcousticModel& model,
    const ParamBindings& bindings) {
  std::vector<const grid::Grid3<real_t>*> prm;
  prm.reserve(lowered.params.size());
  for (const std::string& p : lowered.params) {
    const grid::Grid3<real_t>* g = nullptr;
    if (const auto it = bindings.find(p); it != bindings.end()) {
      g = it->second;
    } else if (p == "m") {
      g = &model.m;
    } else if (p == "damp") {
      g = &model.damp;
    } else if (p == "vp") {
      g = &model.vp;
    }
    TEMPEST_REQUIRE_MSG(g != nullptr, "unknown parameter: " + p);
    prm.push_back(g);
  }
  return prm;
}

int DslKernel::flatten(const ir::Expr& e) {
  if (const auto c = fold(e)) {
    Op op;
    op.k = Op::K::Const;
    op.c = *c;
    tape_.push_back(op);
    return 1;
  }
  switch (e.kind) {
    case ir::Expr::Kind::Load: {
      TEMPEST_REQUIRE_MSG(e.name == field_name_,
                          "DslKernel: update loads unknown field '" + e.name +
                              "'");
      TEMPEST_REQUIRE_MSG(e.dt == 0 || e.dt == -1,
                          "DslKernel: update may read only t and t-1");
      Op op;
      op.k = Op::K::Load;
      op.slot = e.dt == 0 ? 0 : 1;
      op.off = e.dx * sx_ + e.dy * sy_ + e.dz;
      tape_.push_back(op);
      return 1;
    }
    case ir::Expr::Kind::Param: {
      int idx = -1;
      for (std::size_t i = 0; i < lowered_.params.size(); ++i) {
        if (lowered_.params[i] == e.name) {
          idx = static_cast<int>(i);
          break;
        }
      }
      TEMPEST_REQUIRE_MSG(idx >= 0, "DslKernel: unbound parameter '" +
                                        e.name + "'");
      Op op;
      op.k = Op::K::Param;
      op.param = idx;
      tape_.push_back(op);
      return 1;
    }
    case ir::Expr::Kind::Binary: {
      const int da = flatten(*e.a);
      const int db = flatten(*e.b);
      Op op;
      switch (e.op) {
        case '+': op.k = Op::K::Add; break;
        case '-': op.k = Op::K::Sub; break;
        case '*': op.k = Op::K::Mul; break;
        case '/': op.k = Op::K::Div; break;
        default:
          TEMPEST_REQUIRE_MSG(false, "DslKernel: unknown operator");
      }
      tape_.push_back(op);
      // Left subtree evaluates with the right one's operands still pending.
      return std::max(da, 1 + db);
    }
    case ir::Expr::Kind::Const:
      break;  // handled by fold()
  }
  TEMPEST_REQUIRE_MSG(false, "DslKernel: malformed update tree");
  return 0;
}

DslKernel::DslKernel(const LoweredKernel& lowered,
                     const physics::AcousticModel& model,
                     const ParamBindings& bindings,
                     grid::TimeBuffer<real_t>& u, double dt)
    : lowered_(lowered),
      model_(model),
      u_(u),
      field_name_(lowered.field),
      dt2_(static_cast<real_t>(dt * dt)),
      sx_(u.at(0).stride_x()),
      sy_(u.at(0).stride_y()) {
  TEMPEST_REQUIRE_MSG(lowered.update != nullptr,
                      "DslKernel: lowered kernel has no update tree");
  TEMPEST_REQUIRE_MSG(lowered.space_order == model.geom.space_order,
                      "DslKernel: lowering space order does not match the "
                      "model geometry");
  TEMPEST_REQUIRE(model.m.stride_x() == sx_ && model.m.stride_y() == sy_);

  // Statics lint gate: a lowered tree whose loads outrun the allocated
  // halo (or its own declared access hulls) would read unowned memory in
  // the tape walk below — reject it here, with the offending offsets
  // named, before any data is touched. resolve_params() covers the
  // unbound-param case, so the lint runs without a resolvable set.
  {
    namespace statics = analysis::statics;
    statics::LintOptions lopts;
    lopts.declared_radius = model.geom.radius();
    const statics::LintReport lint_report =
        statics::lint_kernel(lowered, lopts);
    if (!lint_report.clean()) {
      statics::StaticsReport report;
      report.kernel = lowered.name;
      report.lint = lint_report;
      throw statics::StaticVerificationError(std::move(report));
    }
  }

  // Resolve coefficient grids: the model's own fields by convention, user
  // bindings for everything else (the sponge scenario binds its own "eta").
  const auto grids = resolve_params(lowered, model, bindings);
  for (std::size_t i = 0; i < grids.size(); ++i) {
    TEMPEST_REQUIRE_MSG(
        grids[i]->stride_x() == sx_ && grids[i]->stride_y() == sy_,
        "parameter grid '" + lowered.params[i] +
            "' does not match the wavefield layout");
    prm_.push_back(grids[i]->origin());
  }

  const int depth = flatten(*lowered.update);
  TEMPEST_REQUIRE_MSG(depth <= kMaxStack,
                      "DslKernel: update expression too deep");
}

void DslKernel::apply(int t, const grid::Box3& b) {
  real_t* __restrict un = u_.at(t + 1).origin();
  const real_t* base[2] = {u_.at(t).origin(), u_.at(t - 1).origin()};
  const Op* const tape = tape_.data();
  const std::size_t n = tape_.size();
  for (int x = b.x.lo; x < b.x.hi; ++x) {
    for (int y = b.y.lo; y < b.y.hi; ++y) {
      const std::ptrdiff_t row = x * sx_ + y * sy_;
      for (int z = b.z.lo; z < b.z.hi; ++z) {
        real_t st[kMaxStack];
        int sp = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const Op& op = tape[i];
          switch (op.k) {
            case Op::K::Const: st[sp++] = op.c; break;
            case Op::K::Load: st[sp++] = base[op.slot][row + z + op.off]; break;
            case Op::K::Param: st[sp++] = prm_[static_cast<std::size_t>(
                                   op.param)][row + z]; break;
            case Op::K::Add: st[sp - 2] += st[sp - 1]; --sp; break;
            case Op::K::Sub: st[sp - 2] -= st[sp - 1]; --sp; break;
            case Op::K::Mul: st[sp - 2] *= st[sp - 1]; --sp; break;
            case Op::K::Div: st[sp - 2] /= st[sp - 1]; --sp; break;
          }
        }
        un[row + z] = st[0];
      }
    }
  }
}

DslPropagator::DslPropagator(const Eq& eq, const physics::AcousticModel& model,
                             physics::PropagatorOptions opts,
                             ParamBindings bindings, std::string name)
    : model_(model),
      opts_(opts),
      dt_(opts.dt > 0.0 ? opts.dt : model.critical_dt()),
      lowered_(lower_kernel(eq, model.geom.space_order, model.geom.spacing,
                            dt_, std::move(name))),
      bindings_(std::move(bindings)),
      u_(3, model.geom.extents, model.geom.radius()) {
  TEMPEST_REQUIRE(model.geom.space_order >= 2 &&
                  model.geom.space_order % 2 == 0);
  TEMPEST_REQUIRE(opts_.tiles.valid());
  TEMPEST_REQUIRE_MSG(model.vp.halo() == model.geom.radius(),
                      "model fields must carry halo == stencil radius");

  // Full statics verdict over the freshly lowered kernel, with the
  // sharpest bounds available: value intervals scanned from the concrete
  // model (and user-bound) grids, the von Neumann proof at the real space
  // order and resolved dt, and the IR lint against the model's halo. A
  // failing spec never reaches the engine.
  namespace statics = analysis::statics;
  statics::StaticsOptions sopts;
  sopts.bounds = statics::model_bounds(model, bindings_, lowered_.field);
  sopts.resolvable = statics::resolvable_names(bindings_);
  sopts.declared_radius = model.geom.radius();
  sopts.dt = dt_;
  sopts.allow_unstable = opts_.allow_unstable;
  statics::require_static_ok(statics::verify_statics(lowered_, sopts));
}

physics::RunStats DslPropagator::run(physics::Schedule sched,
                                     const sparse::SparseTimeSeries& src,
                                     sparse::SparseTimeSeries* rec,
                                     const StepCallback& on_step) {
  if (rec != nullptr) rec->zero();
  u_.fill(real_t{0});
  return run_from(DslKernel::kFirstStep, sched, src, rec, on_step);
}

physics::RunStats DslPropagator::run_from(int t_begin, physics::Schedule sched,
                                          const sparse::SparseTimeSeries& src,
                                          sparse::SparseTimeSeries* rec,
                                          const StepCallback& on_step) {
  DslKernel kernel(lowered_, model_, bindings_, u_, dt_);
  core::engine::ScheduleExecutor executor(kernel, opts_);
  return executor.run_from(t_begin, sched, src, rec, on_step);
}

resilience::Checkpoint DslPropagator::capture(
    int step, std::uint64_t fingerprint,
    const sparse::SparseTimeSeries* rec) const {
  std::vector<const grid::Grid3<real_t>*> slices;
  slices.reserve(static_cast<std::size_t>(u_.slots()));
  for (int s = 0; s < u_.slots(); ++s) slices.push_back(&u_.slot(s));
  return core::engine::capture_state(slices, step, DslKernel::kFirstStep,
                                     fingerprint, rec);
}

void DslPropagator::restore(const resilience::Checkpoint& ck) {
  std::vector<grid::Grid3<real_t>*> slices;
  slices.reserve(static_cast<std::size_t>(u_.slots()));
  for (int s = 0; s < u_.slots(); ++s) slices.push_back(&u_.slot(s));
  core::engine::restore_state(slices, ck);
}

}  // namespace tempest::dsl
