#include "tempest/stencil/coefficients.hpp"

#include <cmath>
#include <cstddef>

#include "tempest/util/error.hpp"

namespace tempest::stencil {

namespace {

/// Fornberg's recursion (Generation of Finite Difference Formulas on
/// Arbitrarily Spaced Grids, Math. Comp. 51, 1988): numerically stable
/// generation of the weights of the `deriv`-th derivative at x0 = 0 from
/// samples at `offsets`, without ever forming the ill-conditioned
/// Vandermonde moment matrix.
std::vector<double> fornberg_weights(const std::vector<double>& offsets,
                                     int deriv) {
  const int n = static_cast<int>(offsets.size());
  TEMPEST_REQUIRE(n > deriv);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      TEMPEST_REQUIRE_MSG(offsets[static_cast<std::size_t>(i)] !=
                              offsets[static_cast<std::size_t>(j)],
                          "duplicate stencil offsets");
    }
  }

  const int m = deriv;
  std::vector<double> c(static_cast<std::size_t>(n) * (m + 1), 0.0);
  auto C = [&](int i, int k) -> double& {
    return c[static_cast<std::size_t>(i) * (m + 1) + k];
  };

  double c1 = 1.0;
  double c4 = offsets[0];
  C(0, 0) = 1.0;
  for (int i = 1; i < n; ++i) {
    const int mn = std::min(i, m);
    double c2 = 1.0;
    const double c5 = c4;
    c4 = offsets[static_cast<std::size_t>(i)];
    for (int j = 0; j < i; ++j) {
      const double c3 =
          offsets[static_cast<std::size_t>(i)] - offsets[static_cast<std::size_t>(j)];
      c2 *= c3;
      if (j == i - 1) {
        for (int k = mn; k >= 1; --k) {
          C(i, k) = c1 * (k * C(i - 1, k - 1) - c5 * C(i - 1, k)) / c2;
        }
        C(i, 0) = -c1 * c5 * C(i - 1, 0) / c2;
      }
      for (int k = mn; k >= 1; --k) {
        C(j, k) = (c4 * C(j, k) - k * C(j, k - 1)) / c3;
      }
      C(j, 0) = c4 * C(j, 0) / c3;
    }
    c1 = c2;
  }

  std::vector<double> w(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) w[static_cast<std::size_t>(i)] = C(i, m);
  return w;
}

}  // namespace

double Coeffs::abs_sum() const {
  double s = 0.0;
  for (double w : weights) s += std::fabs(w);
  return s;
}

Coeffs for_offsets(int deriv, std::vector<double> offsets) {
  TEMPEST_REQUIRE(deriv >= 0);
  Coeffs c;
  c.deriv = deriv;
  c.weights = fornberg_weights(offsets, deriv);
  c.offsets = std::move(offsets);
  return c;
}

Coeffs central(int deriv, int space_order) {
  TEMPEST_REQUIRE_MSG(space_order >= 2 && space_order % 2 == 0,
                      "space order must be even and >= 2");
  TEMPEST_REQUIRE(deriv == 1 || deriv == 2);
  const int r = radius_for_order(space_order);
  std::vector<double> offsets;
  offsets.reserve(static_cast<std::size_t>(2 * r + 1));
  for (int o = -r; o <= r; ++o) offsets.push_back(static_cast<double>(o));
  Coeffs c = for_offsets(deriv, std::move(offsets));
  // Enforce the exact (anti)symmetry the moment solve delivers only to
  // rounding: symmetric for deriv==2, antisymmetric with zero centre for
  // deriv==1. Keeps downstream kernels' folded formulations exact.
  const std::size_t n = c.weights.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    const std::size_t j = n - 1 - i;
    const double avg = 0.5 * (c.weights[i] + (deriv == 2 ? c.weights[j]
                                                         : -c.weights[j]));
    c.weights[i] = avg;
    c.weights[j] = (deriv == 2) ? avg : -avg;
  }
  if (deriv == 1) c.weights[n / 2] = 0.0;
  return c;
}

Coeffs staggered_first(int space_order) {
  TEMPEST_REQUIRE_MSG(space_order >= 2 && space_order % 2 == 0,
                      "space order must be even and >= 2");
  const int r = radius_for_order(space_order);
  std::vector<double> offsets;
  offsets.reserve(static_cast<std::size_t>(2 * r));
  for (int o = -r; o < r; ++o) offsets.push_back(static_cast<double>(o) + 0.5);
  return for_offsets(1, std::move(offsets));
}

}  // namespace tempest::stencil
