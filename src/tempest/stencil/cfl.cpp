#include "tempest/stencil/cfl.hpp"

#include <cmath>

#include "tempest/stencil/coefficients.hpp"
#include "tempest/util/error.hpp"

namespace tempest::stencil {

double acoustic_dt(double h, double c_max, int space_order, double safety) {
  TEMPEST_REQUIRE(h > 0.0 && c_max > 0.0 && safety > 0.0 && safety <= 1.0);
  const double s = central(2, space_order).abs_sum();
  return safety * 2.0 * h / (c_max * std::sqrt(3.0 * s));
}

double elastic_dt(double h, double vp_max, int space_order, double safety) {
  TEMPEST_REQUIRE(h > 0.0 && vp_max > 0.0 && safety > 0.0 && safety <= 1.0);
  const double s1 = staggered_first(space_order).abs_sum();
  return safety * h / (vp_max * std::sqrt(3.0) * s1);
}

double tti_dt(double h, double c_max, int space_order, double max_eps,
              double max_delta, double safety) {
  const double aniso = std::sqrt(1.0 + 2.0 * std::max(max_eps, max_delta));
  return acoustic_dt(h, c_max, space_order, safety) / aniso;
}

int steps_for(double time_ms, double dt_ms) {
  TEMPEST_REQUIRE(time_ms > 0.0 && dt_ms > 0.0);
  return static_cast<int>(std::ceil(time_ms / dt_ms));
}

}  // namespace tempest::stencil
